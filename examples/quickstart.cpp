/**
 * @file
 * Quickstart: solve a sparse SPD system on the memristive
 * accelerator model and compare against the GPU baseline.
 *
 *   1. build (or load) a sparse matrix,
 *   2. run the blocking preprocessor + placement via
 *      Accelerator::prepare(),
 *   3. solve with conjugate gradient,
 *   4. map the solve through the accelerator and GPU cost models.
 */

#include <cstdio>

#include "core/msc.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    // A banded FEM-style SPD system (~100k nonzeros). Matrix Market
    // files load the same way via readMatrixMarket("file.mtx").
    TiledParams gen;
    gen.rows = 10000;
    gen.tile = 48;
    gen.tileDensity = 0.25;
    gen.scatterPerRow = 0.3;
    gen.spd = true;
    gen.symmetricPattern = true;
    gen.diagDominance = 0.02;
    gen.seed = 42;
    const Csr a = genTiled(gen);
    std::printf("system: %d x %d, %zu nonzeros\n", a.rows(), a.cols(),
                a.nnz());

    // Preprocess and place onto the heterogeneous crossbar substrate.
    Accelerator accel;
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 1.0);
    const PrepareResult prep = accel.prepare(a, b);
    std::printf("blocking: %.1f%% of nonzeros in %zu blocks "
                "(%zu left for the local processors)\n",
                100.0 * prep.blocking.blockingEfficiency(),
                prep.placedBlocks, prep.csrNnz);
    if (prep.gpuFallback) {
        std::printf("matrix does not block; it would be routed to "
                    "the GPU\n");
        return 0;
    }

    // Solve. The accelerator computes IEEE-754-identical results
    // (see the cluster model), so the reference CSR operator gives
    // the same iteration count.
    std::vector<double> x(b.size(), 0.0);
    CsrOperator op(a);
    const SolverResult run = conjugateGradient(op, b, x,
                                               {1e-10, 5000});
    std::printf("CG: %s in %d iterations (rel. residual %.2e)\n",
                run.converged ? "converged" : "stopped",
                run.iterations, run.relResidual);

    // Cost on both platforms.
    const AccelCost accelCost = accel.solveCost(run);
    const GpuModel gpu;
    const GpuCost gpuCost = gpu.solve(computeStats(a), run);
    std::printf("accelerator: %8.2f ms, %7.3f J\n",
                accelCost.time * 1e3, accelCost.energy);
    std::printf("P100 model : %8.2f ms, %7.3f J\n",
                gpuCost.time * 1e3, gpuCost.energy);
    std::printf("speedup %.1fx, energy improvement %.1fx\n",
                gpuCost.time / accelCost.time,
                gpuCost.energy / accelCost.energy);
    return 0;
}
