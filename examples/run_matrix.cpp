/**
 * @file
 * Command-line driver: run the full accelerator-vs-GPU experiment on
 * a user-supplied Matrix Market file.
 *
 *   run_matrix [matrix.mtx] [--bicgstab|--cg|--gmres] [--rcm]
 *              [--config file.json]
 *
 * Without arguments a demonstration system is generated, written to
 * /tmp/mscsim_demo.mtx, and then loaded back through the same path a
 * real matrix would take. The solver defaults to CG for numerically
 * symmetric inputs and BiCG-STAB otherwise (the paper's policy).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/msc.hh"

namespace {

using namespace msc;

Csr
demoMatrix()
{
    TiledParams p;
    p.rows = 12000;
    p.tile = 48;
    p.tileDensity = 0.25;
    p.scatterPerRow = 0.6;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.03;
    p.seed = 99;
    return genTiled(p);
}

} // namespace

int
main(int argc, char **argv)
{
    setLogQuiet(true);

    std::string path;
    std::string solverArg;
    std::string configPath;
    bool useRcm = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--rcm") == 0) {
            useRcm = true;
        } else if (std::strcmp(argv[i], "--config") == 0 &&
                   i + 1 < argc) {
            configPath = argv[++i];
        } else if (std::strncmp(argv[i], "--", 2) == 0) {
            solverArg = argv[i];
        } else {
            path = argv[i];
        }
    }

    ExperimentConfig cfg;
    if (!configPath.empty()) {
        try {
            cfg = loadExperimentConfig(configPath);
            std::printf("loaded configuration from %s\n",
                        configPath.c_str());
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }
    if (cfg.threads != 0)
        setGlobalThreads(cfg.threads);

    Csr m;
    if (path.empty()) {
        std::printf("no input given; generating a demo system\n");
        path = "/tmp/mscsim_demo.mtx";
        writeMatrixMarket(demoMatrix(), path);
    }
    try {
        m = readMatrixMarket(path);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    if (useRcm) {
        const auto perm = reverseCuthillMcKee(m);
        m = permuteSymmetric(m, perm);
        std::printf("applied reverse Cuthill-McKee reordering\n");
    }
    const MatrixStats stats = computeStats(m);
    std::printf("%s: %s\n", path.c_str(),
                stats.toString().c_str());

    const bool symmetric = m.isSymmetric(1e-12);
    std::string solver = solverArg.empty()
        ? (symmetric ? "--cg" : "--bicgstab")
        : solverArg;
    std::printf("solver: %s (matrix is %ssymmetric)\n",
                solver.c_str() + 2, symmetric ? "" : "not ");

    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);

    Accelerator accel(cfg.accel);
    const PrepareResult prep = accel.prepare(m, b);
    std::printf("blocking: %.1f%% (%zu blocks; %zu nnz to the local "
                "processors)%s\n",
                100.0 * prep.blocking.blockingEfficiency(),
                prep.placedBlocks, prep.csrNnz,
                prep.gpuFallback ? "  [would run on the GPU]" : "");

    CsrOperator op(m);
    SolverConfig scfg = cfg.solver;
    SolverResult run;
    if (solver == "--cg") {
        run = conjugateGradient(op, b, x, scfg);
    } else if (solver == "--bicgstab") {
        run = biCgStab(op, b, x, scfg);
    } else if (solver == "--gmres") {
        run = gmres(op, b, x, scfg);
    } else {
        std::fprintf(stderr, "unknown solver flag %s\n",
                     solver.c_str());
        return 1;
    }
    std::printf("%s in %d iterations (rel. residual %.2e)\n",
                run.converged ? "converged" : "stopped",
                run.iterations, run.relResidual);

    const GpuModel gpu(cfg.gpu);
    const GpuCost g = gpu.solve(stats, run);
    if (prep.gpuFallback) {
        std::printf("accelerator routes this matrix to the GPU: "
                    "%.2f ms, %.3f J\n", g.time * 1e3, g.energy);
        return 0;
    }
    const AccelCost a = accel.solveCost(run);
    std::printf("accelerator : %10.2f ms  %9.3f J\n", a.time * 1e3,
                a.energy);
    std::printf("P100 model  : %10.2f ms  %9.3f J\n", g.time * 1e3,
                g.energy);
    std::printf("speedup %.2fx, energy improvement %.2fx\n",
                g.time / a.time, g.energy / a.energy);
    return 0;
}
