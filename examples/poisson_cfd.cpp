/**
 * @file
 * Pressure-Poisson example: the computational-fluid-dynamics
 * workload that motivates the paper (its Pres_Poisson matrix comes
 * from exactly this class of problems).
 *
 * Discretizes the 2D Poisson equation -lap(u) = f on an n x n grid
 * with the standard 5-point stencil, solves it with CG on the
 * accelerator model, and reports how the fixed-point machinery
 * behaves on a physical system: exponent ranges, operand widths,
 * early-termination savings.
 */

#include <cmath>
#include <cstdio>

#include "core/msc.hh"

namespace {

using namespace msc;

/**
 * 5-point Laplacian on an n x n grid: SPD, 4 on the diagonal.
 *
 * Unknowns are numbered patch by patch (8x8 subdomains) rather than
 * lexicographically: physical solvers use locality-preserving
 * orderings, and the dense in-patch couplings are exactly what the
 * blocking preprocessor captures.
 */
Csr
poisson2d(std::int32_t n)
{
    constexpr std::int32_t patch = 8;
    Coo coo;
    coo.rows = coo.cols = n * n;
    const std::int32_t patchesAcross = n / patch;
    auto id = [=](std::int32_t i, std::int32_t j) {
        const std::int32_t pi = i / patch, pj = j / patch;
        const std::int32_t li = i % patch, lj = j % patch;
        return (pi * patchesAcross + pj) * patch * patch +
               li * patch + lj;
    };
    for (std::int32_t i = 0; i < n; ++i) {
        for (std::int32_t j = 0; j < n; ++j) {
            coo.add(id(i, j), id(i, j), 4.0);
            if (i > 0)
                coo.add(id(i, j), id(i - 1, j), -1.0);
            if (i + 1 < n)
                coo.add(id(i, j), id(i + 1, j), -1.0);
            if (j > 0)
                coo.add(id(i, j), id(i, j - 1), -1.0);
            if (j + 1 < n)
                coo.add(id(i, j), id(i, j + 1), -1.0);
        }
    }
    return Csr::fromCoo(coo);
}

} // namespace

int
main()
{
    setLogQuiet(true);
    const std::int32_t n = 96; // 9216 unknowns
    const Csr a = poisson2d(n);
    const MatrixStats stats = computeStats(a);
    std::printf("2D Poisson, %d x %d grid: %d unknowns, %zu "
                "nonzeros\n", n, n, a.rows(), a.nnz());
    std::printf("exponent range of the coefficients: [%d, %d] -- "
                "physical systems are local,\nso the fixed-point pad "
                "is tiny (the paper's 'exponent range locality')\n",
                stats.expMin, stats.expMax);

    // A smooth source term.
    std::vector<double> b(static_cast<std::size_t>(a.rows()));
    for (std::int32_t i = 0; i < n; ++i) {
        for (std::int32_t j = 0; j < n; ++j) {
            const double xx = (i + 1.0) / (n + 1.0);
            const double yy = (j + 1.0) / (n + 1.0);
            // A source that is not a Laplacian eigenfunction.
            b[static_cast<std::size_t>(i * n + j)] =
                std::sin(M_PI * xx) * std::sin(2 * M_PI * yy) +
                0.3 * std::exp(-40.0 * ((xx - 0.3) * (xx - 0.3) +
                                        (yy - 0.7) * (yy - 0.7)));
        }
    }

    Accelerator accel;
    const PrepareResult prep = accel.prepare(a, b);
    std::printf("\nblocking: %.1f%% captured (%zu blocks; census "
                "512/256/128/64 = %zu/%zu/%zu/%zu)\n",
                100.0 * prep.blocking.blockingEfficiency(),
                prep.placedBlocks,
                prep.blocking.blocksPerSize[0],
                prep.blocking.blocksPerSize[1],
                prep.blocking.blocksPerSize[2],
                prep.blocking.blocksPerSize[3]);

    std::vector<double> x(b.size(), 0.0);
    CsrOperator op(a);
    const SolverResult run =
        conjugateGradient(op, b, x, {1e-10, 10000});
    std::printf("CG %s in %d iterations\n",
                run.converged ? "converged" : "stopped",
                run.iterations);

    const AccelCost ac = accel.solveCost(run);
    const GpuCost gc = GpuModel().solve(stats, run);
    std::printf("accelerator %0.2f ms / %.3f J vs GPU %0.2f ms / "
                "%.3f J -> %.1fx / %.1fx\n", ac.time * 1e3,
                ac.energy, gc.time * 1e3, gc.energy,
                gc.time / ac.time, gc.energy / ac.energy);

    // Zoom into one cluster: how the bit-slice machinery handles a
    // physical block (exact functional model).
    const BlockPlan plan = planBlocks(a);
    if (!plan.blocks.empty()) {
        const MatrixBlock &blk = plan.blocks.front();
        ClusterConfig ccfg;
        ccfg.size = blk.size;
        Cluster cluster(ccfg);
        const ClusterProgramInfo info = cluster.program(blk);
        std::vector<double> xl(blk.size), yl(blk.size);
        for (unsigned j = 0; j < blk.size; ++j) {
            const std::size_t col =
                static_cast<std::size_t>(blk.colOrigin) + j;
            xl[j] = col < b.size() ? b[col] : 0.0;
        }
        const ClusterStats cs = cluster.multiply(xl, yl);
        std::printf("\nfirst block on a %ux%u cluster: %u matrix "
                    "slices (of 127), %u vector slices\n", blk.size,
                    blk.size, info.matrixSlices, cs.vectorSlices);
        std::printf("early termination: %llu of %llu groups "
                    "executed, %llu conversions skipped (%.1f%%)\n",
                    static_cast<unsigned long long>(
                        cs.groupsExecuted),
                    static_cast<unsigned long long>(cs.groupsTotal),
                    static_cast<unsigned long long>(
                        cs.conversionsSkipped),
                    100.0 * cs.conversionsSkipped /
                        (cs.conversionsSkipped + cs.adcConversions));
    }
    return 0;
}
