/**
 * @file
 * Precision explorer: a guided tour of the machinery that lets
 * fixed-point crossbars produce IEEE-754 double precision results
 * (Section IV of the paper).
 *
 * Walks one dot product through alignment, bias encoding, AN coding,
 * bit-sliced evaluation with early termination under each scheduling
 * policy and rounding mode, and demonstrates error correction.
 */

#include <cstdio>

#include "core/msc.hh"

int
main()
{
    using namespace msc;

    // --- 1. exponent range locality ---------------------------------
    std::printf("1. Alignment and exponent range locality\n");
    const std::vector<double> vals{3.25, -0.0078125, 104.0, -6.5e4};
    const AlignedSet aligned = alignValues(vals);
    std::printf("   values span exponents [%d, %d] -> operands of "
                "%u bits (53-bit mantissa + %d pad)\n",
                aligned.range.minExp, aligned.range.maxExp,
                aligned.magBits,
                static_cast<int>(aligned.magBits) - 53);
    for (std::size_t i = 0; i < vals.size(); ++i) {
        std::printf("   %12g -> %s%s * 2^%d\n", vals[i],
                    aligned.neg[i] ? "-" : "+",
                    aligned.mag[i].toHex().c_str(), aligned.scale);
    }

    // --- 2. bias encoding -------------------------------------------
    std::printf("\n2. Bias encoding for negative numbers "
                "(Section IV-C)\n");
    const BiasedSet biased = biasEncode(aligned);
    std::printf("   per-block bias = 2^%u; stored operands are "
                "unsigned, %u bits wide\n", biased.biasBits,
                biased.width());

    // --- 3. AN code --------------------------------------------------
    std::printf("\n3. AN-code protection (Section IV-E)\n");
    const AnCode code;
    U256 word = code.encode(biased.stored[0]);
    std::printf("   A = %llu encodes %u-bit operands into %u bits "
                "(the paper's 127 crossbars)\n",
                static_cast<unsigned long long>(code.a()),
                code.dataBits(), code.codeBits());
    word.flipBit(97);
    const auto outcome = code.correct(word);
    std::printf("   flipped bit 97 of a stored operand: %s\n",
                outcome == AnCode::Outcome::Corrected
                    ? "corrected" : "NOT corrected");

    // --- 4. early termination and scheduling -------------------------
    std::printf("\n4. Bit-sliced MVM with early termination\n");
    Rng rng(2024);
    MatrixBlock block;
    block.size = 32;
    for (std::int32_t r = 0; r < 32; ++r) {
        for (std::int32_t c = 0; c < 32; ++c) {
            if (rng.chance(0.4)) {
                block.elems.push_back({r, c,
                    std::ldexp(rng.uniform(1.0, 2.0),
                               static_cast<int>(rng.range(0, 24))) *
                        (rng.chance(0.5) ? -1.0 : 1.0)});
            }
        }
    }
    std::vector<double> x(32);
    for (auto &v : x)
        v = rng.uniform(-2.0, 2.0);

    std::printf("   policy    groups  activations  conversions  "
                "skipped\n");
    for (auto policy : {SchedulePolicy::Vertical,
                        SchedulePolicy::Diagonal,
                        SchedulePolicy::Hybrid}) {
        ClusterConfig cfg;
        cfg.size = 32;
        cfg.schedule = policy;
        Cluster cluster(cfg);
        cluster.program(block);
        std::vector<double> y(32);
        const ClusterStats s = cluster.multiply(x, y);
        std::printf("   %-9s %3llu/%-3llu %12llu %12llu %8llu\n",
                    toString(policy),
                    static_cast<unsigned long long>(
                        s.groupsExecuted),
                    static_cast<unsigned long long>(s.groupsTotal),
                    static_cast<unsigned long long>(
                        s.xbarActivations),
                    static_cast<unsigned long long>(
                        s.adcConversions),
                    static_cast<unsigned long long>(
                        s.conversionsSkipped));
    }

    // --- 5. rounding modes match a single exact rounding --------------
    std::printf("\n5. IEEE-754 rounding modes (Section IV-D)\n");
    const char *names[] = {"toward -inf", "toward +inf",
                           "toward zero", "nearest-even"};
    const RoundingMode modes[] = {
        RoundingMode::TowardNegInf, RoundingMode::TowardPosInf,
        RoundingMode::TowardZero, RoundingMode::NearestEven};
    for (int mi = 0; mi < 4; ++mi) {
        ClusterConfig cfg;
        cfg.size = 32;
        cfg.rounding = modes[mi];
        Cluster cluster(cfg);
        cluster.program(block);
        std::vector<double> y(32);
        cluster.multiply(x, y);
        // Verify row 0 against the exact-dot oracle.
        std::vector<double> a0, x0;
        for (const auto &el : block.elems) {
            if (el.row == 0) {
                a0.push_back(el.val);
                x0.push_back(x[static_cast<std::size_t>(el.col)]);
            }
        }
        const double oracle =
            exactDot(a0.data(), x0.data(), a0.size(), modes[mi]);
        std::printf("   %-12s row0 = %24.17g  %s\n", names[mi], y[0],
                    y[0] == oracle ? "(bit-exact vs oracle)"
                                   : "(MISMATCH!)");
    }

    std::printf("\nThe computation forms a data-dependent subset of "
                "the floating-point format\nwithout losing a single "
                "bit -- the central claim of the paper.\n");
    return 0;
}
