/**
 * @file
 * Matrix analysis tool: everything the accelerator's preprocessing
 * pipeline learns about a system, in one report.
 *
 *   analyze_matrix [matrix.mtx]
 *
 * Prints structural statistics, the exponent histogram that governs
 * fixed-point alignment cost, the blocking census and efficiency,
 * placement/spill behavior, and the resulting recommendation
 * (accelerate or route to the GPU) with estimated per-kernel costs.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "core/msc.hh"

int
main(int argc, char **argv)
{
    using namespace msc;
    setLogQuiet(true);

    Csr m;
    std::string label;
    if (argc > 1) {
        label = argv[1];
        try {
            m = readMatrixMarket(label);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    } else {
        label = "venkat25 (generated)";
        m = buildSuiteMatrix(suiteEntry("venkat25"));
    }

    const MatrixStats stats = computeStats(m);
    std::printf("== %s ==\n%s\n", label.c_str(),
                stats.toString().c_str());
    std::printf("structurally symmetric: %s; numerically symmetric: "
                "%s\n", stats.structurallySymmetric ? "yes" : "no",
                m.isSymmetric(1e-12) ? "yes" : "no");

    // Exponent histogram (the alignment-cost driver, Section IV-B).
    std::map<int, std::size_t> expHist;
    for (double v : m.values()) {
        const Fp64Parts p = decompose(v);
        if (!p.isZero())
            ++expHist[p.exp / 8 * 8];
    }
    std::printf("\nexponent histogram (8-wide bins):\n");
    std::size_t maxCount = 1;
    for (const auto &[bin, count] : expHist)
        maxCount = std::max(maxCount, count);
    for (const auto &[bin, count] : expHist) {
        const int bars = static_cast<int>(
            50.0 * static_cast<double>(count) /
            static_cast<double>(maxCount));
        std::printf("  2^%+5d %9zu |%.*s\n", bin, count, bars,
                    "#################################################"
                    "#");
    }
    std::printf("  span %d bits (alignment window is %d)\n",
                stats.expRange, fxp::maxExpRange);

    // Blocking and placement.
    Accelerator accel;
    const PrepareResult prep = accel.prepare(m);
    std::printf("\nblocking: %.2f%% of %zu nnz captured; census "
                "512/256/128/64 = %zu/%zu/%zu/%zu\n",
                100.0 * prep.blocking.blockingEfficiency(),
                prep.blocking.totalNnz,
                prep.blocking.blocksPerSize[0],
                prep.blocking.blocksPerSize[1],
                prep.blocking.blocksPerSize[2],
                prep.blocking.blocksPerSize[3]);
    std::printf("preprocessing visited %.2fx NNZ (worst case 4x); "
                "%zu exponent evictions\n",
                prep.blocking.visitsPerNnz(),
                prep.blocking.expRangeEvictions);
    std::printf("placement: %zu blocks (%zu spilled to larger "
                "clusters, %zu dissolved); %d banks\n",
                prep.placedBlocks, prep.spilledBlocks,
                prep.dissolvedBlocks, prep.banksUsed);

    if (prep.gpuFallback) {
        std::printf("\n=> RECOMMENDATION: route to the GPU "
                    "(blocking below threshold; the decision\n   "
                    "costs only the preprocessing pass, Section "
                    "VIII-A)\n");
        return 0;
    }
    std::printf("\nper-kernel estimates: SpMV %.2f us / %.2f uJ; "
                "dot %.2f us; AXPY %.2f us\n",
                prep.spmv.time * 1e6, prep.spmv.energy * 1e6,
                prep.dotOp.time * 1e6, prep.axpyOp.time * 1e6);
    std::printf("one-time setup: program %.2f ms (%.1f%% of arrays "
                "rewritten per time step costs\nproportionally "
                "less), preprocess %.2f ms\n",
                prep.programTime * 1e3, 100.0,
                prep.preprocessTime * 1e3);
    std::printf("\n=> RECOMMENDATION: accelerate "
                "(est. %.1fx SpMV speedup vs the P100 model)\n",
                GpuModel().spmv(stats).time / prep.spmv.time);
    return 0;
}
