/**
 * @file
 * Circuit transient example: a non-symmetric circuit system solved
 * with BiCG-STAB over multiple time steps.
 *
 * Demonstrates the amortization the paper highlights in Section
 * VIII-D: in time-stepped computations the matrix structure is
 * preserved and only a subset of coefficients changes per step, so
 * the crossbars are programmed once and the write/preprocessing
 * overhead shrinks with the number of steps.
 */

#include <cstdio>

#include "core/msc.hh"

int
main()
{
    using namespace msc;
    setLogQuiet(true);

    // Circuit-style system: clustered subcircuits plus long-range
    // nets (compare the bcircuit / ASIC_100K entries of Table II).
    TiledParams gen;
    gen.rows = 20000;
    gen.tile = 16;
    gen.tileDensity = 0.32;
    gen.tileRowProb = 0.7;
    gen.scatterPerRow = 1.2;
    gen.symmetricPattern = false;
    gen.diagDominance = 0.08;
    gen.seed = 777;
    const Csr a = genTiled(gen);
    const MatrixStats stats = computeStats(a);
    std::printf("circuit system: %d nodes, %zu nonzeros\n", a.rows(),
                a.nnz());

    Accelerator accel;
    std::vector<double> b(static_cast<std::size_t>(a.rows()), 0.0);
    const PrepareResult prep = accel.prepare(a);
    std::printf("blocked %.1f%%; programming the arrays once costs "
                "%.2f ms\n",
                100.0 * prep.blocking.blockingEfficiency(),
                prep.programTime * 1e3);

    // Transient loop: each time step changes the excitation (and in
    // a real flow a few coefficients), reusing the programmed
    // matrix.
    const int steps = 8;
    const GpuModel gpu;
    double accelTotal = prep.programTime + prep.preprocessTime;
    double gpuTotal = 0.0;
    std::vector<double> x(b.size(), 0.0);
    CsrOperator op(a);
    for (int step = 0; step < steps; ++step) {
        // Excitation for this step.
        for (std::size_t i = 0; i < b.size(); ++i)
            b[i] = (i % 97 == static_cast<std::size_t>(step)) ? 1.0
                                                              : 0.1;
        const SolverResult run = biCgStab(op, b, x, {1e-8, 4000});
        const AccelCost ac = accel.solveCost(run, false);
        const GpuCost gc = gpu.solve(stats, run);
        accelTotal += ac.time;
        gpuTotal += gc.time;
        std::printf("  step %d: %4d iterations, accel %7.2f ms, "
                    "gpu %8.2f ms\n", step, run.iterations,
                    ac.time * 1e3, gc.time * 1e3);
    }

    std::printf("\ntotal over %d steps (incl. one-time setup): "
                "accel %.1f ms vs gpu %.1f ms -> %.1fx\n", steps,
                accelTotal * 1e3, gpuTotal * 1e3,
                gpuTotal / accelTotal);
    std::printf("setup amortized to %.2f%% of the accelerator "
                "total\n",
                100.0 * (prep.programTime + prep.preprocessTime) /
                    accelTotal);
    return 0;
}
