#include "device/noisy.hh"

#include <cmath>

#include "util/logging.hh"

namespace msc {

namespace {

/** Representative bit-slice counts of double-precision operands
 *  (53-bit mantissa + pad + sign + AN code). */
constexpr int repMatrixSlices = 75;
constexpr int repVectorSlices = 70;

/** Average fraction of rows driven by one vector bit slice. The
 *  paper measures vector densities of 30-100%; averaged over the
 *  bit positions of biased operands the per-slice density is ~0.4. */
constexpr double activeFraction = 0.40;

} // namespace

ConversionErrorModel
conversionError(const CellParams &cell, double activeRows,
                double setCells)
{
    ConversionErrorModel out;
    // Leakage in LSB units: every active row conducts gOff; one LSB
    // is one level step of (gOn - gOff) / (levels - 1).
    const double maxLevel = cell.levels() - 1;
    const double leakPerCell =
        maxLevel / (cell.dynamicRange() - 1.0);
    const double mu = activeRows * leakPerCell;

    // Popcount variation of the applied slice (binomial), programming
    // noise over the set cells of the column (mean-square level), in
    // LSB units.
    const double nRows = activeRows / activeFraction;
    const double sigmaActive =
        std::sqrt(nRows * activeFraction * (1.0 - activeFraction));
    double meanSquareLevel = 0.0;
    for (unsigned l = 1; l <= static_cast<unsigned>(maxLevel); ++l)
        meanSquareLevel += static_cast<double>(l) * l;
    meanSquareLevel /= maxLevel;
    const double sigma = std::sqrt(
        sigmaActive * leakPerCell * sigmaActive * leakPerCell +
        cell.progErrorSigma * cell.progErrorSigma * setCells *
            meanSquareLevel);

    // The ADC rounds (ideal + leak + noise) to the nearest level;
    // evaluate the moments of round(mu + sigma Z) numerically.
    if (sigma < 1e-12) {
        out.mean = std::nearbyint(mu);
        out.sigma = 0.0;
        out.errProb = out.mean != 0.0 ? 1.0 : 0.0;
        out.meanAbs = std::fabs(out.mean);
        return out;
    }
    const auto phi = [](double z) {
        return 0.5 * std::erfc(-z / std::sqrt(2.0));
    };
    double mean = 0.0, second = 0.0, pErr = 0.0, meanAbs = 0.0;
    const int lo = static_cast<int>(std::floor(mu - 8 * sigma));
    const int hi = static_cast<int>(std::ceil(mu + 8 * sigma));
    for (int j = lo; j <= hi; ++j) {
        const double p = phi((j + 0.5 - mu) / sigma) -
                         phi((j - 0.5 - mu) / sigma);
        mean += p * j;
        second += p * j * j;
        if (j != 0) {
            pErr += p;
            meanAbs += p * std::fabs(j);
        }
    }
    out.mean = mean;
    out.sigma = std::sqrt(std::max(0.0, second - mean * mean));
    out.errProb = pErr;
    out.meanAbs = pErr > 0.0 ? meanAbs / pErr : 0.0;
    return out;
}

NoisyCsrOperator::NoisyCsrOperator(const Csr &m,
                                   const CellParams &cell,
                                   std::uint64_t seed,
                                   unsigned crossbarRows)
    : mat(&m), cellParams(cell), rng(seed)
{
    // Set cells per column: roughly the block's nonzeros per row
    // (spread over bit slices, about half set) plus the bias pattern
    // bits stored in zero cells.
    const double nnzPerRow =
        static_cast<double>(m.nnz()) / std::max(1, m.rows());
    const double setCells = 2.0 + nnzPerRow * 0.5;
    conv = conversionError(cellParams,
                           activeFraction * crossbarRows, setCells);

    // AN-code survival: a reduced word with exactly one erroneous
    // conversion is corrected; an error only survives when another
    // error lands in the same word.
    anSurvival = 1.0 - std::pow(1.0 - conv.errProb,
                                repMatrixSlices - 1);

    rowMaxAbs.assign(static_cast<std::size_t>(m.rows()), 0.0);
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        for (double v : m.rowVals(r)) {
            rowMaxAbs[static_cast<std::size_t>(r)] =
                std::max(rowMaxAbs[static_cast<std::size_t>(r)],
                         std::fabs(v));
        }
    }

    // Programming error is static: one Monte Carlo run = one
    // programming of the arrays, so surviving misreads behave as a
    // fixed perturbation of the mapped coefficients, not as fresh
    // noise on every MVM (which would stall the solver outright).
    // Materialize them as glitch entries: row i gains a spurious
    // coefficient of magnitude ~ conv.meanAbs * 4 * maxA_i *
    // 2^-(db+dk) tied to a random column. Only the top significance
    // window matters; lower slices are far below the mantissa.
    if (conv.errProb > 0.0 && conv.errProb <= 0.5) {
        const double pSurv = conv.errProb * anSurvival;
        constexpr int window = 13; // db + dk < window
        for (std::int32_t r = 0; r < m.rows(); ++r) {
            if (rowMaxAbs[static_cast<std::size_t>(r)] == 0.0)
                continue;
            for (int db = 0; db < window; ++db) {
                for (int dk = 0; db + dk < window; ++dk) {
                    if (!rng.chance(pSurv))
                        continue;
                    Glitch g;
                    g.row = r;
                    g.col = static_cast<std::int32_t>(
                        rng.below(static_cast<std::uint64_t>(
                            m.cols())));
                    g.value = (rng.chance(0.5) ? 1.0 : -1.0) *
                        conv.meanAbs * 4.0 *
                        rowMaxAbs[static_cast<std::size_t>(r)] *
                        std::ldexp(1.0, -(db + dk));
                    glitches.push_back(g);
                }
            }
        }
    }
}

std::int32_t
NoisyCsrOperator::rows() const
{
    return mat->rows();
}

std::int32_t
NoisyCsrOperator::cols() const
{
    return mat->cols();
}

void
NoisyCsrOperator::apply(std::span<const double> x, std::span<double> y)
{
    mat->spmv(x, y);
    if (conv.errProb <= 0.0)
        return;
    double maxX = 0.0;
    for (double v : x)
        maxX = std::max(maxX, std::fabs(v));
    if (maxX == 0.0)
        return;

    if (conv.errProb > 0.5) {
        // Dense-error regime (e.g. 2-bit cells at low dynamic
        // range): leakage pushes essentially every conversion past
        // the ADC half-step and the aggregate over the slice grid is
        // systematic; the AN code cannot help multi-error words.
        for (std::size_t i = 0; i < y.size(); ++i) {
            const double scale = rowMaxAbs[i] * maxX;
            if (scale == 0.0)
                continue;
            const double mean = 4.0 * conv.mean * scale;
            const double sigma = (4.0 / 3.0) * conv.sigma * scale;
            y[i] += mean +
                    (sigma > 0.0 ? rng.normal(0.0, sigma) : 0.0);
        }
        return;
    }

    // Sparse-error regime: the static glitch coefficients drawn at
    // programming time act as a fixed perturbation of the matrix.
    for (const Glitch &g : glitches) {
        y[static_cast<std::size_t>(g.row)] +=
            g.value * x[static_cast<std::size_t>(g.col)];
    }
}

} // namespace msc
