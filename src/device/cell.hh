/**
 * @file
 * Memristor cell model (TaOx, Table I of the paper).
 *
 * Cells are modeled as resistors during computation. The two device
 * non-idealities evaluated in Section VIII-G are captured here:
 *
 *  - finite dynamic range: an off cell still conducts Ron/Roff of an
 *    on cell, so a column read accumulates off-state leakage that can
 *    push the analog sum past the ADC's half-LSB margin;
 *  - programming error: each programmed conductance deviates from its
 *    target by a zero-mean Gaussian fraction (1-5 % in Figure 13).
 */

#ifndef MSC_DEVICE_CELL_HH
#define MSC_DEVICE_CELL_HH

#include <cstdint>

#include "util/bitvec.hh"
#include "util/random.hh"

namespace msc {

/** TaOx cell parameters per Table I / [18], [40]. */
struct CellParams
{
    unsigned bitsPerCell = 1;
    double rOn = 2.0e3;            //!< ohms
    double rOff = 3.0e6;           //!< ohms (dynamic range 1500)
    double vRead = 0.2;            //!< volts
    double vSet = -2.6;
    double vReset = 2.6;
    double writeEnergy = 3.91e-9;  //!< joules per cell write
    double writeTime = 50.88e-9;   //!< seconds per row write
    double writeEndurance = 1.0e9; //!< switching cycles
    /** Fractional (1 sigma) programming error on conductance. */
    double progErrorSigma = 0.0;

    double dynamicRange() const { return rOff / rOn; }
    unsigned levels() const { return 1u << bitsPerCell; }
};

/**
 * Analog column read with device non-idealities.
 *
 * Computes the quantized output of one crossbar column: the ideal
 * weighted sum of activated cell levels, plus off-state leakage and
 * programming noise, rounded to the nearest ADC step. With default
 * (ideal) parameters the result equals the exact integer sum.
 */
class ColumnReadModel
{
  public:
    explicit ColumnReadModel(const CellParams &cell) : params(cell)
    {
        // Normalized conductances: a cell at level L out of
        // (levels-1) has conductance gOff + L * (gOn - gOff)/(max).
        // In ADC-LSB units (one unit = one full-on cell at L=1 for
        // 1-bit cells, or one level step generally):
        const double gOn = 1.0 / params.rOn;
        const double gOff = 1.0 / params.rOff;
        const double maxLevel = params.levels() - 1;
        unitG = (gOn - gOff) / maxLevel;
        leakPerCell = gOff / unitG; //!< leakage in level units
    }

    /** Off-state leakage per activated cell, in ADC level units. */
    double leakPerCell_() const { return leakPerCell; }

    /**
     * Read a column given per-cell levels and the activated rows.
     *
     * @param levels   cell level per crossbar row (size = rows)
     * @param active   vector bit slice applied to the rows
     * @param rng      noise source; nullptr disables programming noise
     * @return quantized level-sum seen by the ADC
     */
    std::int64_t
    read(const std::vector<std::uint8_t> &levels, const BitVec &active,
         Rng *rng) const
    {
        double analog = 0.0;
        std::int64_t ideal = 0;
        for (std::size_t j = 0; j < levels.size(); ++j) {
            if (!active.get(j))
                continue;
            const double target = levels[j] + leakPerCell;
            double g = target;
            if (rng && params.progErrorSigma > 0.0)
                g = target * (1.0 + rng->normal(0.0,
                                                params.progErrorSigma));
            analog += g;
            ideal += levels[j];
        }
        const auto quantized =
            static_cast<std::int64_t>(analog + 0.5);
        // With ideal devices the two agree; the caller may compare.
        (void)ideal;
        return quantized;
    }

    /**
     * Allocation-free form for 1-bit cells packed in a BitVec (the
     * binary crossbar's native column storage): cell level of row j
     * is storedBits.get(j). The iteration visits active rows in
     * ascending order, so both the rng draw sequence and the
     * floating-point accumulation order match the vector overload
     * exactly -- results are bitwise identical.
     */
    std::int64_t
    read(const BitVec &storedBits, const BitVec &active,
         Rng *rng) const
    {
        double analog = 0.0;
        const bool noisy = rng && params.progErrorSigma > 0.0;
        active.forEachSetBit([&](std::size_t j) {
            const double target =
                (storedBits.get(j) ? 1.0 : 0.0) + leakPerCell;
            double g = target;
            if (noisy) {
                g = target * (1.0 + rng->normal(0.0,
                                                params.progErrorSigma));
            }
            analog += g;
        });
        return static_cast<std::int64_t>(analog + 0.5);
    }

    /**
     * Statistical form: sample the ADC error of a column read
     * without materializing cells. Given the ideal level-sum and the
     * number of activated cells, the analog value is
     * ideal + nActive*leak + N(0, sigma^2 * sum(level^2 approx)).
     * Used by the Monte Carlo convergence experiments (Fig. 12/13)
     * at scale.
     *
     * @param idealSum      exact level sum of the column
     * @param nActive       number of activated rows
     * @param sumLevelsSq   sum of squared (level+leak) of activated
     *                      cells (noise scales with conductance)
     */
    std::int64_t
    sampleRead(std::int64_t idealSum, std::size_t nActive,
               double sumLevelsSq, Rng *rng) const
    {
        double analog = static_cast<double>(idealSum) +
                        static_cast<double>(nActive) * leakPerCell;
        if (rng && params.progErrorSigma > 0.0) {
            analog += rng->normal(
                0.0, params.progErrorSigma * std::sqrt(sumLevelsSq));
        }
        return static_cast<std::int64_t>(analog + 0.5);
    }

    const CellParams &cell() const { return params; }

  private:
    CellParams params;
    double unitG = 1.0;
    double leakPerCell = 0.0;
};

} // namespace msc

#endif // MSC_DEVICE_CELL_HH
