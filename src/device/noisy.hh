/**
 * @file
 * Statistical device-noise injection for convergence experiments
 * (Section VIII-G, Figures 12 and 13).
 *
 * Each crossbar column conversion can misread when off-state leakage
 * plus programming noise crosses half an ADC step:
 *
 *  - leakage: every activated row conducts gOff even when its cell
 *    stores zero, so a vector slice with ~N/2 ones accumulates
 *    N/2 * leakPerCell LSBs. With 1-bit cells and the Table I
 *    dynamic range (1500) this stays below 0.5 LSB up to N = 512 --
 *    exactly why the paper limits blocks to 512 -- while 2-bit cells
 *    at reduced range cross the threshold deterministically;
 *  - programming error: a zero-mean Gaussian fraction E of each
 *    target conductance, aggregated over the set cells of a column.
 *
 * Per-conversion errors aggregate over the (matrix slice, vector
 * slice) grid with weights 2^(b+k); the resulting per-output error
 * is mean 4*mu*maxA*maxX and sigma (4/3)*sig*maxA*maxX in value
 * units. NoisyCsrOperator injects exactly that into an otherwise
 * exact SpMV, which is what the Monte Carlo iteration-count
 * experiments measure.
 */

#ifndef MSC_DEVICE_NOISY_HH
#define MSC_DEVICE_NOISY_HH

#include <vector>

#include "device/cell.hh"
#include "solver/solver.hh"

namespace msc {

/** Statistics of a single column conversion error, in LSBs. */
struct ConversionErrorModel
{
    double mean = 0.0;    //!< E[round(leak + noise)]
    double sigma = 0.0;   //!< std dev of the rounded error
    double errProb = 0.0; //!< P(error != 0)
    double meanAbs = 0.0; //!< E[|error|] given an error occurred
};

/**
 * Error statistics of one column conversion.
 *
 * @param cell         device parameters (bits/cell, range, E)
 * @param activeRows   rows driven by the vector slice (~N/2)
 * @param setCells     cells storing a nonzero level in the column
 */
ConversionErrorModel conversionError(const CellParams &cell,
                                     double activeRows,
                                     double setCells);

/** CSR operator with device-noise injection per output element. */
class NoisyCsrOperator : public LinearOperator
{
  public:
    /**
     * @param crossbarRows  N of the modeled crossbars (512 default)
     */
    NoisyCsrOperator(const Csr &m, const CellParams &cell,
                     std::uint64_t seed, unsigned crossbarRows = 512);

    std::int32_t rows() const override;
    std::int32_t cols() const override;
    void apply(std::span<const double> x,
               std::span<double> y) override;

    const ConversionErrorModel &model() const { return conv; }

    /** Number of static glitch coefficients this programming drew. */
    std::size_t glitchCount() const { return glitches.size(); }

  private:
    /** A surviving misread, fixed at programming time. */
    struct Glitch
    {
        std::int32_t row = 0;
        std::int32_t col = 0;
        double value = 0.0;
    };

    const Csr *mat;
    CellParams cellParams;
    Rng rng;
    ConversionErrorModel conv;
    double anSurvival = 0.0; //!< P(a second error defeats the AN fix)
    std::vector<double> rowMaxAbs;
    std::vector<Glitch> glitches;
};

} // namespace msc

#endif // MSC_DEVICE_NOISY_HH
