/**
 * @file
 * Keyed prepare cache: content hash of (matrix, operator config) ->
 * shared immutable prepared operator, with refcounted LRU eviction.
 *
 * Preparation -- blocking, placement, crossbar programming, cost
 * estimation -- dominates short solves on the accelerator (the
 * paper models it at four baseline-MVM equivalents per matrix, plus
 * programming). A service seeing the same system from many tenants
 * must pay it once: the cache keys each prepared operator by a
 * 128-bit content hash over the matrix structure AND values AND the
 * operator configuration, so two tenants submitting bit-identical
 * systems share one entry, while the same matrix under a different
 * device config (different blocking sizes, cluster arithmetic,
 * bank counts) hashes to a distinct entry.
 *
 * Keying contract: the key is a pure function of matrix + config
 * bytes -- never of thread count, addresses, or submission order --
 * so it is stable across MSC_THREADS settings and across runs.
 *
 * Entries are handed out as shared_ptr<PreparedOperator>; eviction
 * under the memory cap walks the LRU order but never frees an entry
 * with live external references (use_count > 1), so a solve in
 * flight can never have its operator deleted underneath it. The
 * accelerator backends allow one logical operation at a time
 * (Accelerator::opGuard); concurrent users of one shared entry
 * serialize on the entry's exec mutex.
 */

#ifndef MSC_SERVICE_PREPARE_CACHE_HH
#define MSC_SERVICE_PREPARE_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "accel/accel.hh"
#include "blocking/blocking.hh"
#include "cluster/cluster.hh"
#include "solver/solver.hh"
#include "sparse/csr.hh"
#include "util/hash128.hh"

namespace msc {

class MultiAccelerator;
class MappedArtifact;

/** Which arithmetic backend a prepared operator runs on. */
enum class ServiceBackend
{
    Csr,             //!< exact CSR reference arithmetic
    Accel,           //!< functional accelerator (fast model)
    ClusterBitExact, //!< bit-level cluster arithmetic (slow, exact
                     //!< hardware behavior; the coalescing win)
    MultiAccel,      //!< row-slab fleet of accelerators (sharding)
};

/** Placement/device configuration half of the cache key. */
struct OperatorConfig
{
    ServiceBackend backend = ServiceBackend::Csr;
    int devices = 2; //!< MultiAccel only: row-slab shard count
    /** Accel / MultiAccel: full accelerator configuration. */
    AcceleratorConfig accel;
    /** ClusterBitExact: blocking + cluster template. */
    BlockingConfig blocking;
    ClusterConfig cluster;
};

/** 128-bit content-hash cache key. */
struct CacheKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool
    operator==(const CacheKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
};

struct CacheKeyHash
{
    std::size_t
    operator()(const CacheKey &k) const
    {
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
};

/**
 * Content hash of (matrix, config): dimensions, row pointers,
 * column indices, value bit patterns, then every config field that
 * changes the prepared state. The matrix half is csrContentKey
 * (sparse/binio.hh) -- the same 128-bit digest packed artifacts
 * store -- so operatorKey(matrix, cfg) ==
 * operatorKeyFrom(csrContentKey(matrix), cfg) always holds, and an
 * artifact resolves to a cache key without re-hashing the matrix
 * bytes.
 */
CacheKey operatorKey(const Csr &matrix, const OperatorConfig &cfg);

/** Continue the key from a precomputed matrix content digest (the
 *  artifact warm path: the O(nnz) matrix hash is skipped). */
CacheKey operatorKeyFrom(Digest128 matrixKey,
                         const OperatorConfig &cfg);

/**
 * One immutable prepared entry: an owned copy of the matrix, the
 * backend state (accelerator / fleet / cluster operator), and the
 * LinearOperator view the solvers run against. Immutable after
 * construction except for the operator's internal scratch, which is
 * why opMutex() serializes appliers.
 */
class PreparedOperator
{
  public:
    PreparedOperator(const Csr &matrix, const OperatorConfig &config,
                     CacheKey key);

    /**
     * Build from a mapped artifact: the matrix is a zero-copy view
     * over the mapping (held alive by this entry), and a stored
     * blocking plan whose key matches the backend's configuration
     * skips planBlocks entirely (telemetry `binio.plan_reuse`).
     */
    PreparedOperator(std::shared_ptr<const MappedArtifact> artifact,
                     const OperatorConfig &config, CacheKey key);

    const Csr &matrix() const { return mat; }
    const OperatorConfig &config() const { return cfg; }
    CacheKey key() const { return id; }

    /** The solver-facing operator (valid for this entry's life). */
    LinearOperator &op() { return *oper; }

    /** Serializes concurrent solves over this shared entry: the
     *  accelerator backends support one logical op at a time. */
    std::mutex &opMutex() { return mu; }

    /** Rough resident-bytes estimate used by the eviction cap. */
    std::size_t bytes() const { return byteEstimate; }

  private:
    /** Shared ctor body; @p artifactPlan enables plan reuse. */
    void build();

    Csr mat;
    OperatorConfig cfg;
    CacheKey id;
    std::size_t byteEstimate = 0;
    std::mutex mu;
    /** Mapping backing a zero-copy `mat` (artifact ctor only). */
    std::shared_ptr<const MappedArtifact> art;
    // Backend state; exactly one is populated per backend kind.
    std::unique_ptr<Accelerator> accel;
    std::unique_ptr<MultiAccelerator> fleet;
    std::unique_ptr<LinearOperator> oper;
};

/**
 * The keyed cache. acquire() is thread-safe; a miss prepares the
 * entry while holding a build lock, so concurrent same-key acquires
 * prepare exactly once (distinct-key builds serialize on the same
 * lock -- preparation is already a batch-grade operation and the
 * simplicity buys an obvious no-duplicate-build guarantee).
 */
class PrepareCache
{
  public:
    explicit PrepareCache(std::size_t memoryCapBytes = 256ull << 20)
        : capBytes(memoryCapBytes)
    {}

    /**
     * Look up (or build) the entry for (matrix, cfg). @p hit, when
     * non-null, reports whether the entry existed. The returned
     * shared_ptr keeps the entry alive regardless of eviction.
     *
     * @p replica selects an independent prepared instance of the
     * same key (per-dispatch-shard replicas): each replica owns its
     * own backend state and opMutex, so shards solving the same
     * operator concurrently do not serialize on one entry's exec
     * mutex. Replica 0 is the classic single-pipeline behavior; a
     * given (key, replica) pair builds at most once, and a hit is
     * reported only when that exact replica already exists.
     */
    std::shared_ptr<PreparedOperator>
    acquire(const Csr &matrix, const OperatorConfig &cfg,
            bool *hit = nullptr, unsigned replica = 0);

    /**
     * Artifact-keyed lookup: the key continues from the artifact's
     * stored matrix digest (no O(nnz) hash), and a miss builds the
     * entry from the mapping -- zero-copy matrix view, and the
     * stored placement plan when its blocking key matches @p cfg.
     * Keys are interchangeable with the parse path: the same system
     * submitted as text and as artifact share one entry.
     */
    std::shared_ptr<PreparedOperator>
    acquire(const std::shared_ptr<const MappedArtifact> &artifact,
            const OperatorConfig &cfg, bool *hit = nullptr,
            unsigned replica = 0);

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::size_t entries = 0; //!< distinct keys (not replicas)
        std::size_t bytes = 0; //!< resident estimate, all replicas
    };

    Stats stats() const;

    /** Drop every entry without live external references. */
    void clear();

  private:
    /** Shared hit/build-once/insert machinery of both acquires. */
    std::shared_ptr<PreparedOperator> acquireKeyed(
        CacheKey key, const OperatorConfig &cfg, bool *hit,
        unsigned replica,
        const std::function<
            std::shared_ptr<PreparedOperator>(CacheKey)> &build);

    void evictOverCap(); //!< callers hold mu

    mutable std::mutex mu;
    std::mutex buildMu; //!< serializes misses (build once per key)
    std::size_t capBytes;
    struct Entry
    {
        /** Per-shard prepared instances, indexed by replica; slots
         *  build lazily (null until first acquired). One LRU slot
         *  and one eviction decision cover the whole key. */
        std::vector<std::shared_ptr<PreparedOperator>> replicas;
        /** Position in lruOrder (most recent at front). */
        std::list<CacheKey>::iterator lruPos;

        std::size_t
        bytes() const
        {
            std::size_t b = 0;
            for (const auto &r : replicas)
                if (r)
                    b += r->bytes();
            return b;
        }

        bool
        referenced() const
        {
            for (const auto &r : replicas)
                if (r && r.use_count() > 1)
                    return true;
            return false;
        }
    };
    std::unordered_map<CacheKey, Entry, CacheKeyHash> map;
    std::list<CacheKey> lruOrder;
    Stats counters;
};

} // namespace msc

#endif // MSC_SERVICE_PREPARE_CACHE_HH
