#include "service/prepare_cache.hh"

#include <bit>
#include <cstring>

#include "accel/cluster_operator.hh"
#include "core/multi_accel.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrHits{"service.cache_hits"};
constinit telemetry::Counter ctrMisses{"service.cache_misses"};
constinit telemetry::Counter ctrEvictions{"service.cache_evictions"};

/** Two independent FNV-1a streams -> one 128-bit key. */
class Fnv128
{
  public:
    void
    byte(std::uint8_t b)
    {
        a = (a ^ b) * 0x100000001b3ULL;
        c = (c ^ b) * 0x00000100000001b3ULL ^ (c >> 47);
        c = c * 0x9e3779b97f4a7c15ULL + b;
    }

    void
    bytes(const void *p, std::size_t len)
    {
        const auto *q = static_cast<const std::uint8_t *>(p);
        for (std::size_t i = 0; i < len; ++i)
            byte(q[i]);
    }

    void
    u64(std::uint64_t v)
    {
        bytes(&v, sizeof v);
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    CacheKey
    key() const
    {
        return CacheKey{a, c};
    }

  private:
    std::uint64_t a = 0xcbf29ce484222325ULL; //!< FNV-1a offset
    std::uint64_t c = 0x6c62272e07bb0142ULL; //!< independent stream
};

void
hashBlocking(Fnv128 &h, const BlockingConfig &b)
{
    h.u64(b.sizes.size());
    for (unsigned s : b.sizes)
        h.u64(s);
    h.f64(b.densityFactor);
    h.u64(static_cast<std::uint64_t>(b.maxExpRange));
}

void
hashCluster(Fnv128 &h, const ClusterConfig &c)
{
    h.u64(c.size);
    h.u64(static_cast<std::uint64_t>(c.schedule));
    h.u64(c.hybridSkew);
    h.u64(static_cast<std::uint64_t>(c.rounding));
    h.u64(c.targetMantissaBits);
    h.u64(c.earlyTermination);
    h.u64(c.anProtect);
    h.u64(c.anConstant);
    h.u64(c.cic);
    h.u64(c.adcHeadstart);
}

void
hashAccel(Fnv128 &h, const AcceleratorConfig &a)
{
    h.u64(a.banks);
    h.u64(a.rowsPerBank);
    h.u64(a.clustersPerBank.size());
    for (const auto &[size, count] : a.clustersPerBank) {
        h.u64(size);
        h.u64(count);
    }
    hashCluster(h, a.cluster);
    hashBlocking(h, a.blocking);
    h.f64(a.gpuFallbackThreshold);
    h.u64(a.estimateSamplesPerSize);
}

} // namespace

CacheKey
operatorKey(const Csr &matrix, const OperatorConfig &cfg)
{
    Fnv128 h;
    // Matrix content: dimensions, structure, value bit patterns.
    h.u64(static_cast<std::uint64_t>(matrix.rows()));
    h.u64(static_cast<std::uint64_t>(matrix.cols()));
    h.u64(matrix.nnz());
    const auto rp = matrix.rowPtr();
    h.bytes(rp.data(), rp.size_bytes());
    const auto ci = matrix.colIndex();
    h.bytes(ci.data(), ci.size_bytes());
    const auto vals = matrix.values();
    h.bytes(vals.data(), vals.size_bytes());
    // Placement/device configuration: every field that changes the
    // prepared state (blocking decisions, placement, arithmetic).
    // Pure performance-model knobs (proc/mem timing parameters) are
    // deliberately excluded: they change cost estimates, not the
    // prepared operator's answers or placement.
    h.u64(static_cast<std::uint64_t>(cfg.backend));
    h.u64(static_cast<std::uint64_t>(cfg.devices));
    hashAccel(h, cfg.accel);
    hashBlocking(h, cfg.blocking);
    hashCluster(h, cfg.cluster);
    return h.key();
}

PreparedOperator::PreparedOperator(const Csr &matrix,
                                   const OperatorConfig &config,
                                   CacheKey keyIn)
    : mat(matrix), cfg(config), id(keyIn)
{
    // Matrix copy: nnz * (8B value + 4B col) + rowPtr.
    byteEstimate = mat.nnz() * 12 +
                   (static_cast<std::size_t>(mat.rows()) + 1) * 4;
    switch (cfg.backend) {
      case ServiceBackend::Csr:
        oper = std::make_unique<CsrOperator>(mat);
        break;
      case ServiceBackend::Accel: {
        accel = std::make_unique<Accelerator>(cfg.accel);
        accel->prepare(mat);
        oper = std::make_unique<AcceleratorOperator>(*accel);
        // Placed blocks resident on crossbars, leftovers in CSR:
        // call it one more matrix copy plus per-placement scratch.
        byteEstimate += mat.nnz() * 12;
        break;
      }
      case ServiceBackend::ClusterBitExact:
        oper = std::make_unique<ClusterArithmeticOperator>(
            mat, cfg.blocking, cfg.cluster);
        // Contribution tables dominate: rough per-nnz slice state.
        byteEstimate += mat.nnz() * 64;
        break;
      case ServiceBackend::MultiAccel: {
        MultiAcceleratorConfig mc;
        mc.devices = cfg.devices;
        mc.device = cfg.accel;
        fleet = std::make_unique<MultiAccelerator>(mc);
        fleet->prepare(mat);
        oper = std::make_unique<MultiAcceleratorOperator>(*fleet);
        byteEstimate += mat.nnz() * 12;
        break;
      }
    }
    if (!oper)
        panic("PreparedOperator: unknown backend");
}

std::shared_ptr<PreparedOperator>
PrepareCache::acquire(const Csr &matrix, const OperatorConfig &cfg,
                      bool *hit)
{
    const CacheKey key = operatorKey(matrix, cfg);
    {
        std::lock_guard lock(mu);
        auto it = map.find(key);
        if (it != map.end()) {
            ++counters.hits;
            ctrHits.add();
            lruOrder.splice(lruOrder.begin(), lruOrder,
                            it->second.lruPos);
            if (hit)
                *hit = true;
            return it->second.op;
        }
    }
    // Miss: build outside the cache lock, under the build lock so
    // concurrent same-key misses prepare exactly once.
    std::lock_guard build(buildMu);
    {
        std::lock_guard lock(mu);
        auto it = map.find(key);
        if (it != map.end()) {
            // Another thread built it while we waited.
            ++counters.hits;
            ctrHits.add();
            lruOrder.splice(lruOrder.begin(), lruOrder,
                            it->second.lruPos);
            if (hit)
                *hit = true;
            return it->second.op;
        }
    }
    auto entry = std::make_shared<PreparedOperator>(matrix, cfg, key);
    {
        std::lock_guard lock(mu);
        ++counters.misses;
        ctrMisses.add();
        lruOrder.push_front(key);
        map.emplace(key, Entry{entry, lruOrder.begin()});
        evictOverCap();
        if (hit)
            *hit = false;
    }
    return entry;
}

void
PrepareCache::evictOverCap()
{
    std::size_t resident = 0;
    for (const auto &[key, e] : map)
        resident += e.op->bytes();
    // Least-recently-used first, skipping entries a caller still
    // holds: a live reference must never be freed underneath its
    // solve (the ASan-verified satellite invariant).
    auto it = lruOrder.end();
    while (resident > capBytes && it != lruOrder.begin()) {
        --it;
        auto mapIt = map.find(*it);
        if (mapIt == map.end())
            continue;
        if (mapIt->second.op.use_count() > 1)
            continue; // live external reference: skip
        resident -= mapIt->second.op->bytes();
        map.erase(mapIt);
        it = lruOrder.erase(it);
        ++counters.evictions;
        ctrEvictions.add();
    }
}

PrepareCache::Stats
PrepareCache::stats() const
{
    std::lock_guard lock(mu);
    Stats s = counters;
    s.entries = map.size();
    s.bytes = 0;
    for (const auto &[key, e] : map)
        s.bytes += e.op->bytes();
    return s;
}

void
PrepareCache::clear()
{
    std::lock_guard lock(mu);
    for (auto it = lruOrder.begin(); it != lruOrder.end();) {
        auto mapIt = map.find(*it);
        if (mapIt != map.end() &&
            mapIt->second.op.use_count() == 1) {
            map.erase(mapIt);
            it = lruOrder.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace msc
