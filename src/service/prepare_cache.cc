#include "service/prepare_cache.hh"

#include "accel/cluster_operator.hh"
#include "core/multi_accel.hh"
#include "sparse/binio.hh"
#include "util/hash128.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrHits{"service.cache_hits"};
constinit telemetry::Counter ctrMisses{"service.cache_misses"};
constinit telemetry::Counter ctrEvictions{"service.cache_evictions"};
constinit telemetry::Counter ctrPlanReuse{"binio.plan_reuse"};

void
hashBlocking(Hash128 &h, const BlockingConfig &b)
{
    const Digest128 d = blockingConfigKey(b);
    h.u64(d.hi);
    h.u64(d.lo);
}

void
hashCluster(Hash128 &h, const ClusterConfig &c)
{
    h.u64(c.size);
    h.u64(static_cast<std::uint64_t>(c.schedule));
    h.u64(c.hybridSkew);
    h.u64(static_cast<std::uint64_t>(c.rounding));
    h.u64(c.targetMantissaBits);
    h.u64(c.earlyTermination);
    h.u64(c.anProtect);
    h.u64(c.anConstant);
    h.u64(c.cic);
    h.u64(c.adcHeadstart);
}

void
hashAccel(Hash128 &h, const AcceleratorConfig &a)
{
    h.u64(a.banks);
    h.u64(a.rowsPerBank);
    h.u64(a.clustersPerBank.size());
    for (const auto &[size, count] : a.clustersPerBank) {
        h.u64(size);
        h.u64(count);
    }
    hashCluster(h, a.cluster);
    hashBlocking(h, a.blocking);
    h.f64(a.gpuFallbackThreshold);
    h.u64(a.estimateSamplesPerSize);
}

} // namespace

CacheKey
operatorKeyFrom(Digest128 matrixKey, const OperatorConfig &cfg)
{
    Hash128 h;
    h.u64(matrixKey.hi);
    h.u64(matrixKey.lo);
    // Placement/device configuration: every field that changes the
    // prepared state (blocking decisions, placement, arithmetic).
    // Pure performance-model knobs (proc/mem timing parameters) are
    // deliberately excluded: they change cost estimates, not the
    // prepared operator's answers or placement.
    h.u64(static_cast<std::uint64_t>(cfg.backend));
    h.u64(static_cast<std::uint64_t>(cfg.devices));
    hashAccel(h, cfg.accel);
    hashBlocking(h, cfg.blocking);
    hashCluster(h, cfg.cluster);
    const Digest128 d = h.digest();
    return CacheKey{d.hi, d.lo};
}

CacheKey
operatorKey(const Csr &matrix, const OperatorConfig &cfg)
{
    return operatorKeyFrom(csrContentKey(matrix), cfg);
}

PreparedOperator::PreparedOperator(const Csr &matrix,
                                   const OperatorConfig &config,
                                   CacheKey keyIn)
    : mat(matrix), cfg(config), id(keyIn)
{
    build();
}

PreparedOperator::PreparedOperator(
    std::shared_ptr<const MappedArtifact> artifact,
    const OperatorConfig &config, CacheKey keyIn)
    : cfg(config), id(keyIn), art(std::move(artifact))
{
    mat = art->matrixView(); // move-assign preserves the view
    build();
}

void
PreparedOperator::build()
{
    // Matrix footprint: nnz * (8B value + 4B col) + 64-bit rowPtr.
    // Counted for views too -- mapped pages are resident while the
    // entry is hot, so the eviction cap should see them.
    byteEstimate = mat.nnz() * 12 +
                   (static_cast<std::size_t>(mat.rows()) + 1) * 8;

    // A stored plan is only usable when it was computed under the
    // exact blocking configuration this backend would use.
    BlockPlan artifactPlan;
    bool havePlan = false;
    if (art && art->hasPlan()) {
        const Digest128 want =
            cfg.backend == ServiceBackend::ClusterBitExact
                ? blockingConfigKey(cfg.blocking)
                : blockingConfigKey(cfg.accel.blocking);
        if (art->blockingKey() == want &&
            (cfg.backend == ServiceBackend::ClusterBitExact ||
             cfg.backend == ServiceBackend::Accel)) {
            artifactPlan = art->decodePlan();
            havePlan = true;
            ctrPlanReuse.add();
        }
    }

    switch (cfg.backend) {
      case ServiceBackend::Csr:
        oper = std::make_unique<CsrOperator>(mat);
        break;
      case ServiceBackend::Accel: {
        accel = std::make_unique<Accelerator>(cfg.accel);
        accel->prepare(mat, {}, havePlan ? &artifactPlan : nullptr);
        oper = std::make_unique<AcceleratorOperator>(*accel);
        // Placed blocks resident on crossbars, leftovers in CSR:
        // call it one more matrix copy plus per-placement scratch.
        byteEstimate += mat.nnz() * 12;
        break;
      }
      case ServiceBackend::ClusterBitExact:
        if (havePlan) {
            oper = std::make_unique<ClusterArithmeticOperator>(
                mat, std::move(artifactPlan), cfg.cluster);
        } else {
            oper = std::make_unique<ClusterArithmeticOperator>(
                mat, cfg.blocking, cfg.cluster);
        }
        // Contribution tables dominate: rough per-nnz slice state.
        byteEstimate += mat.nnz() * 64;
        break;
      case ServiceBackend::MultiAccel: {
        MultiAcceleratorConfig mc;
        mc.devices = cfg.devices;
        mc.device = cfg.accel;
        fleet = std::make_unique<MultiAccelerator>(mc);
        fleet->prepare(mat);
        oper = std::make_unique<MultiAcceleratorOperator>(*fleet);
        byteEstimate += mat.nnz() * 12;
        break;
      }
    }
    if (!oper)
        panic("PreparedOperator: unknown backend");
}

std::shared_ptr<PreparedOperator>
PrepareCache::acquire(const Csr &matrix, const OperatorConfig &cfg,
                      bool *hit, unsigned replica)
{
    return acquireKeyed(
        operatorKey(matrix, cfg), cfg, hit, replica,
        [&](CacheKey key) {
            return std::make_shared<PreparedOperator>(matrix, cfg,
                                                      key);
        });
}

std::shared_ptr<PreparedOperator>
PrepareCache::acquire(
    const std::shared_ptr<const MappedArtifact> &artifact,
    const OperatorConfig &cfg, bool *hit, unsigned replica)
{
    if (!artifact)
        panic("PrepareCache::acquire: null artifact");
    return acquireKeyed(
        operatorKeyFrom(artifact->matrixKey(), cfg), cfg, hit,
        replica,
        [&](CacheKey key) {
            return std::make_shared<PreparedOperator>(artifact, cfg,
                                                      key);
        });
}

std::shared_ptr<PreparedOperator>
PrepareCache::acquireKeyed(
    CacheKey key, const OperatorConfig &,
    bool *hit, unsigned replica,
    const std::function<std::shared_ptr<PreparedOperator>(CacheKey)>
        &build)
{
    // A hit means THIS replica already exists; other replicas of
    // the key warm nothing for it (each owns its backend state).
    auto lookup = [&]() -> std::shared_ptr<PreparedOperator> {
        auto it = map.find(key);
        if (it == map.end())
            return nullptr;
        Entry &e = it->second;
        if (replica >= e.replicas.size() || !e.replicas[replica])
            return nullptr;
        lruOrder.splice(lruOrder.begin(), lruOrder, e.lruPos);
        return e.replicas[replica];
    };
    {
        std::lock_guard lock(mu);
        if (auto found = lookup()) {
            ++counters.hits;
            ctrHits.add();
            if (hit)
                *hit = true;
            return found;
        }
    }
    // Miss: build outside the cache lock, under the build lock so
    // concurrent same-(key, replica) misses prepare exactly once.
    std::lock_guard buildLock(buildMu);
    {
        std::lock_guard lock(mu);
        if (auto found = lookup()) {
            // Another thread built it while we waited.
            ++counters.hits;
            ctrHits.add();
            if (hit)
                *hit = true;
            return found;
        }
    }
    auto built = build(key);
    {
        std::lock_guard lock(mu);
        ++counters.misses;
        ctrMisses.add();
        auto it = map.find(key);
        if (it == map.end()) {
            lruOrder.push_front(key);
            Entry e;
            e.lruPos = lruOrder.begin();
            it = map.emplace(key, std::move(e)).first;
        } else {
            lruOrder.splice(lruOrder.begin(), lruOrder,
                            it->second.lruPos);
        }
        Entry &e = it->second;
        if (e.replicas.size() <= replica)
            e.replicas.resize(replica + 1);
        e.replicas[replica] = built;
        evictOverCap();
        if (hit)
            *hit = false;
    }
    return built;
}

void
PrepareCache::evictOverCap()
{
    std::size_t resident = 0;
    for (const auto &[key, e] : map)
        resident += e.bytes();
    // Least-recently-used first, skipping entries a caller still
    // holds: a live reference must never be freed underneath its
    // solve (the ASan-verified satellite invariant). A key is
    // pinned while ANY of its replicas has an external reference.
    auto it = lruOrder.end();
    while (resident > capBytes && it != lruOrder.begin()) {
        --it;
        auto mapIt = map.find(*it);
        if (mapIt == map.end())
            continue;
        if (mapIt->second.referenced())
            continue; // live external reference: skip
        resident -= mapIt->second.bytes();
        map.erase(mapIt);
        it = lruOrder.erase(it);
        ++counters.evictions;
        ctrEvictions.add();
    }
}

PrepareCache::Stats
PrepareCache::stats() const
{
    std::lock_guard lock(mu);
    Stats s = counters;
    s.entries = map.size();
    s.bytes = 0;
    for (const auto &[key, e] : map)
        s.bytes += e.bytes();
    return s;
}

void
PrepareCache::clear()
{
    std::lock_guard lock(mu);
    for (auto it = lruOrder.begin(); it != lruOrder.end();) {
        auto mapIt = map.find(*it);
        if (mapIt != map.end() && !mapIt->second.referenced()) {
            map.erase(mapIt);
            it = lruOrder.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace msc
