#include "service/service.hh"

#include <algorithm>
#include <filesystem>
#include <list>
#include <new>

#include "solver/block.hh"
#include "sparse/binio.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrSubmitted{"service.submitted"};
constinit telemetry::Counter ctrCompleted{"service.completed"};
constinit telemetry::Counter ctrCancelled{"service.cancelled"};
constinit telemetry::Counter
    ctrDeadlineExpired{"service.deadline_expired"};
constinit telemetry::Counter ctrFailed{"service.failed"};
constinit telemetry::Counter ctrBatches{"service.batches"};
constinit telemetry::Histogram hLatency{"service.latency_us"};
constinit telemetry::Histogram hQueueWait{"service.queue_wait_us"};
constinit telemetry::Histogram hSolve{"service.solve_us"};

} // namespace

namespace servicedetail {

struct PendingRequest
{
    std::uint64_t id = 0;
    SolveRequest req;
    ExecContext ctx;
    CacheKey key;
    /** CG preemption state: valid between a checkpoint yield and
     *  the resuming dispatch. Touched only by the thread executing
     *  the request (one dispatch at a time). */
    SolverCheckpoint ckpt;
    unsigned preemptions = 0;
    /** File-resolved system (matrixFile submissions): pins the
     *  parsed matrix or artifact mapping while the request lives;
     *  req.matrix points into it. */
    std::shared_ptr<const LoadedMatrix> loaded;
    std::int64_t submitNs = 0;
    std::int64_t dispatchNs = 0;

    std::mutex mu;
    std::condition_variable cv;
    RequestState state = RequestState::Queued; //!< guarded by mu
    RequestResult result;                      //!< valid once Done
};

struct ServiceCore
{
    explicit ServiceCore(const ServiceConfig &cfg)
        : sched(cfg.scheduler), cache(cfg.cacheBytes),
          loadedCapBytes(cfg.loadedCapBytes)
    {
        runningPreemptible.resize(sched.shardCount());
        shardBusyNs.assign(sched.shardCount(), 0);
    }

    /** Resolve @p path through the bounded loaded-matrix LRU:
     *  reuse a fresh entry, reload a path whose file mtime changed
     *  (a regenerated matrix must never be served stale), and evict
     *  least-recently-used unreferenced entries past the byte cap
     *  -- tenant-supplied paths must not grow memory without bound.
     *  Throws FatalError (MatrixMarketError/BinioError) on a bad
     *  file. */
    std::shared_ptr<const LoadedMatrix>
    resolveMatrixFile(const std::string &path);

    std::mutex mu;
    std::condition_variable work; //!< workers: queue or stop signal
    AdmissionScheduler sched;
    PrepareCache cache;
    /** Bounded path -> resolved matrix LRU, so repeat submissions
     *  share one mapping/parse. Guarded by loadMu, not mu: loading
     *  parses files and must not stall the dispatch path. */
    std::mutex loadMu;
    struct LoadedEntry
    {
        std::shared_ptr<const LoadedMatrix> loaded;
        std::filesystem::file_time_type mtime{};
        std::size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };
    std::unordered_map<std::string, LoadedEntry> loadedByPath;
    std::list<std::string> loadedLru; //!< most recent first
    std::size_t loadedBytes = 0;
    const std::size_t loadedCapBytes;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<PendingRequest>>
        pendings; //!< queued + running
    /** Per shard: the singleton CG solve it is executing, when that
     *  solve honors checkpoints (the preempt trigger's victims).
     *  Guarded by mu; null when the shard is idle or running
     *  non-preemptible work. */
    std::vector<std::shared_ptr<PendingRequest>> runningPreemptible;
    std::vector<std::uint64_t> shardBusyNs; //!< wall ns, guarded by mu
    ServiceStats stats;
    std::uint64_t nextId = 1;
    bool stopping = false;
};

std::shared_ptr<const LoadedMatrix>
ServiceCore::resolveMatrixFile(const std::string &path)
{
    std::lock_guard lock(loadMu);
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);

    auto it = loadedByPath.find(path);
    if (it != loadedByPath.end()) {
        // Freshness gate: a rewritten file invalidates the pinned
        // entry. An unreadable timestamp keeps it (the file may be
        // gone while its bytes are still wanted).
        if (ec || mtime == it->second.mtime) {
            loadedLru.splice(loadedLru.begin(), loadedLru,
                             it->second.lruPos);
            return it->second.loaded;
        }
        loadedBytes -= it->second.bytes;
        loadedLru.erase(it->second.lruPos);
        loadedByPath.erase(it);
    }

    auto loaded = std::make_shared<const LoadedMatrix>(
        loadMatrixFile(path));
    LoadedEntry entry;
    entry.loaded = loaded;
    entry.mtime =
        ec ? std::filesystem::file_time_type{} : mtime;
    // Artifact entries hold mapped file pages; parsed entries hold
    // the owning CSR arrays.
    entry.bytes =
        loaded->artifact
            ? loaded->artifact->fileBytes()
            : loaded->csr.nnz() * 12 +
                  (static_cast<std::size_t>(loaded->csr.rows()) + 1) *
                      8;
    loadedBytes += entry.bytes;
    loadedLru.push_front(path);
    entry.lruPos = loadedLru.begin();
    loadedByPath.emplace(path, std::move(entry));

    // Least-recently-used first, skipping entries a live request
    // (or caller) still references: an eviction must never unmap a
    // matrix underneath its solve.
    auto lru = loadedLru.end();
    while (loadedBytes > loadedCapBytes &&
           lru != loadedLru.begin()) {
        --lru;
        auto mapIt = loadedByPath.find(*lru);
        if (mapIt == loadedByPath.end())
            continue;
        if (mapIt->second.loaded.use_count() > 1)
            continue; // pinned by a request: skip
        loadedBytes -= mapIt->second.bytes;
        loadedByPath.erase(mapIt);
        lru = loadedLru.erase(lru);
    }
    return loaded;
}

namespace {

/** Mark @p p terminal and wake its waiters. Never called twice. */
void
finalize(PendingRequest &p, RequestResult result)
{
    {
        std::lock_guard lock(p.mu);
        p.result = std::move(result);
        p.state = RequestState::Done;
    }
    p.cv.notify_all();
    const double latencyUs =
        double(telemetry::nowNs() - p.submitNs) / 1000.0;
    hLatency.observe(latencyUs);
    telemetry::addCounterNamed(
        "service.tenant." + p.req.tenant + ".completed");
}

/** Book a terminal status into the aggregate stats (core.mu held). */
void
bookStatus(ServiceStats &stats, SolveStatus status)
{
    switch (status) {
      case SolveStatus::Cancelled:
        ++stats.cancelled;
        ctrCancelled.add();
        break;
      case SolveStatus::DeadlineExceeded:
        ++stats.deadlineExpired;
        ctrDeadlineExpired.add();
        break;
      case SolveStatus::Failed:
        ++stats.failed;
        ctrFailed.add();
        break;
      case SolveStatus::Overloaded:
        ++stats.rejected;
        break;
      default:
        ++stats.completed;
        ctrCompleted.add();
        break;
    }
}

/** Reap queued requests whose cancel/deadline fired before
 *  dispatch (core.mu held). Returns the reaped requests with their
 *  terminal status already decided. */
std::vector<std::pair<std::shared_ptr<PendingRequest>, SolveStatus>>
reapQueued(ServiceCore &core)
{
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    for (std::uint64_t id : core.sched.queuedIds()) {
        auto it = core.pendings.find(id);
        if (it == core.pendings.end())
            continue;
        PendingRequest &p = *it->second;
        const bool cancelled = p.ctx.cancelled();
        if (!cancelled && !p.ctx.expired())
            continue;
        const SolveStatus status = cancelled
                                       ? SolveStatus::Cancelled
                                       : SolveStatus::DeadlineExceeded;
        core.sched.drop(id, status);
        bookStatus(core.stats, status);
        reaped.emplace_back(it->second, status);
        core.pendings.erase(it);
    }
    return reaped;
}

RequestResult
stoppedResult(SolveStatus status, std::size_t n)
{
    RequestResult r;
    r.status = status;
    r.solve.status = status;
    r.solve.vectorLength = n;
    r.x.assign(n, 0.0);
    return r;
}

/** Run one dispatched batch to completion (no core lock held);
 *  @p shard is the executing shard (prepare-cache replica index,
 *  busy accounting, preempt-victim registry). */
void
executeBatch(
    ServiceCore &core,
    const std::vector<std::shared_ptr<PendingRequest>> &batch,
    unsigned shard)
{
    PendingRequest &head = *batch.front();
    const auto k = static_cast<unsigned>(batch.size());
    const std::int64_t execT0 = telemetry::nowNs();

    bool cacheHit = false;
    std::shared_ptr<PreparedOperator> entry;
    std::vector<RequestResult> results(k);
    bool failed = false;
    std::string error;
    try {
        // Each shard solves on its own prepared replica, so shards
        // never serialize on one entry's exec mutex.
        entry = (head.loaded && head.loaded->artifact)
                    ? core.cache.acquire(head.loaded->artifact,
                                         head.req.op, &cacheHit,
                                         shard)
                    : core.cache.acquire(*head.req.matrix,
                                         head.req.op, &cacheHit,
                                         shard);
        const auto n =
            static_cast<std::size_t>(entry->matrix().rows());
        // One logical operation at a time per shared entry: the
        // accelerator backends' scratch is per-instance.
        std::lock_guard opLock(entry->opMutex());
        telemetry::Timer solveTimer(hSolve);
        if (k == 1) {
            RequestResult &res = results[0];
            res.x.assign(n, 0.0);
            SolverConfig scfg;
            scfg.tolerance = head.req.tolerance;
            scfg.maxIterations = head.req.maxIterations;
            scfg.exec = &head.ctx;
            switch (head.req.kind) {
              case SolverKind::Cg:
                // Singleton CG honors checkpoints: a yield raised
                // by the preempt trigger (or yieldAfterChecks)
                // parks the recurrence in head.ckpt. Stale flags
                // from a previous segment are cleared first.
                scfg.checkpoint = &head.ckpt;
                head.ctx.clearYield();
                res.solve = conjugateGradient(entry->op(),
                                              head.req.b, res.x,
                                              scfg);
                break;
              case SolverKind::Gmres:
                res.solve = gmres(entry->op(), head.req.b, res.x,
                                  scfg);
                break;
              case SolverKind::BiCgStab:
              case SolverKind::Auto:
              default:
                res.solve = biCgStab(entry->op(), head.req.b,
                                     res.x, scfg);
                break;
            }
            res.status = res.solve.status;
        } else {
            // Coalesced CG panel: pack the columns, advance every
            // request's independent recurrence in lockstep. Bitwise
            // identical per column to a solo solve.
            std::vector<double> B(n * k), X(n * k, 0.0);
            std::vector<LockstepColumnControl> ctl(k);
            for (unsigned c = 0; c < k; ++c) {
                const PendingRequest &p = *batch[c];
                std::copy_n(p.req.b.data(), n, B.data() + c * n);
                ctl[c].tolerance = p.req.tolerance;
                ctl[c].maxIterations = p.req.maxIterations;
                ctl[c].exec = &batch[c]->ctx;
            }
            const std::vector<SolverResult> colRes =
                lockstepConjugateGradient(entry->op(), B, X, k,
                                          ctl);
            for (unsigned c = 0; c < k; ++c) {
                RequestResult &res = results[c];
                res.solve = colRes[c];
                res.status = colRes[c].status;
                res.coalesced = true;
                res.x.assign(X.data() + c * n,
                             X.data() + (c + 1) * n);
            }
        }
    } catch (const PanicError &) {
        throw; // programming error: never absorb
    } catch (const BinioError &e) {
        // A bad artifact surfacing at prepare time (e.g. a forged
        // plan that decodePlan rejects): the tenant's input, not a
        // service invariant -- fail the request, keep serving.
        failed = true;
        error = e.what();
    } catch (const FatalError &) {
        throw; // config/usage error: never absorb
    } catch (const CancelledError &e) {
        // A stop that fired inside prepare() (cache build) rather
        // than inside a solve: the solvers translate their own.
        failed = true;
        for (auto &res : results) {
            res.status = e.status();
            res.solve.status = e.status();
        }
    } catch (const std::bad_alloc &) {
        failed = true;
        error = "allocation failure";
    } catch (const std::exception &e) {
        failed = true;
        error = e.what();
    }
    if (failed && !error.empty()) {
        for (auto &res : results) {
            res.status = SolveStatus::Failed;
            res.solve.status = SolveStatus::Failed;
            res.error = error;
        }
    }

    const std::int64_t execNs = telemetry::nowNs() - execT0;
    const bool preempted =
        !failed && k == 1 &&
        results[0].solve.status == SolveStatus::Preempted;

    if (preempted) {
        bool requeued = false;
        {
            std::lock_guard lock(core.mu);
            if (shard < core.runningPreemptible.size())
                core.runningPreemptible[shard] = nullptr;
            core.shardBusyNs[shard] +=
                static_cast<std::uint64_t>(execNs);
            ++core.stats.batches;
            ctrBatches.add();
            if (!core.stopping) {
                // Park it back in its home shard's queue: the
                // ticket and pendings entry stay held, so a resume
                // can never be rejected or lost. coalescable=false:
                // a mid-recurrence resume must not join a panel.
                QueueEntry entry;
                entry.id = head.id;
                entry.tenant = head.req.tenant;
                entry.priority = head.req.priority;
                entry.coalescable = false;
                entry.key = head.key;
                entry.deadlineNs =
                    head.req.deadline.count() > 0
                        ? static_cast<std::uint64_t>(
                              head.req.deadline.count())
                        : 0;
                core.sched.requeuePreempted(entry);
                ++core.stats.preempted;
                ++head.preemptions;
                {
                    std::lock_guard plock(head.mu);
                    head.state = RequestState::Queued;
                }
                requeued = true;
            } else {
                // Stopping: a parked recurrence has no dispatcher
                // left to resume it -- finish it as Cancelled and
                // release its ticket (the stop/drain contract: no
                // stranded pendings, no leaked tickets).
                core.sched.complete(head.req.tenant);
                bookStatus(core.stats, SolveStatus::Cancelled);
                core.pendings.erase(head.id);
            }
        }
        if (requeued) {
            core.work.notify_all();
        } else {
            finalize(head, stoppedResult(SolveStatus::Cancelled,
                                         head.req.b.size()));
        }
        return;
    }

    for (unsigned c = 0; c < k; ++c) {
        results[c].cacheHit = cacheHit;
        results[c].batchWidth = k;
        results[c].preemptions = batch[c]->preemptions;
        hQueueWait.observe(
            double(batch[c]->dispatchNs - batch[c]->submitNs) /
            1000.0);
    }

    {
        std::lock_guard lock(core.mu);
        if (shard < core.runningPreemptible.size())
            core.runningPreemptible[shard] = nullptr;
        core.shardBusyNs[shard] +=
            static_cast<std::uint64_t>(execNs);
        if (telemetry::metricsActive())
            telemetry::setGaugeNamed(
                "service.shard." + std::to_string(shard) +
                    ".busy_ns",
                static_cast<double>(core.shardBusyNs[shard]));
        for (unsigned c = 0; c < k; ++c) {
            core.sched.complete(batch[c]->req.tenant);
            bookStatus(core.stats, results[c].status);
            core.pendings.erase(batch[c]->id);
        }
        ++core.stats.batches;
        ctrBatches.add();
        if (k > 1)
            ++core.stats.coalescedBatches;
    }
    for (unsigned c = 0; c < k; ++c)
        finalize(*batch[c], std::move(results[c]));
}

/** One dispatch cycle for @p shard. Returns false when nothing was
 *  dispatched or reaped. */
bool
pumpOne(ServiceCore &core, unsigned shard)
{
    std::vector<std::shared_ptr<PendingRequest>> batch;
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    {
        std::lock_guard lock(core.mu);
        reaped = reapQueued(core);
        for (const QueueEntry &e : core.sched.nextBatch(shard)) {
            auto it = core.pendings.find(e.id);
            if (it != core.pendings.end())
                batch.push_back(it->second);
        }
        // Register the preempt-trigger victim while still under the
        // lock that admits new requests: a shorter-deadline submit
        // sees this solve as running the moment we dispatch it.
        if (batch.size() == 1 &&
            batch.front()->req.kind == SolverKind::Cg &&
            shard < core.runningPreemptible.size())
            core.runningPreemptible[shard] = batch.front();
    }
    for (auto &[p, status] : reaped)
        finalize(*p, stoppedResult(status, p->req.b.size()));
    if (batch.empty())
        return !reaped.empty();

    const std::int64_t now = telemetry::nowNs();
    for (auto &p : batch) {
        std::lock_guard lock(p->mu);
        p->state = RequestState::Running;
        p->dispatchNs = now;
    }
    executeBatch(core, batch, shard);
    return true;
}

} // namespace

} // namespace servicedetail

using servicedetail::PendingRequest;
using servicedetail::ServiceCore;

std::uint64_t
RequestHandle::id() const
{
    return p ? p->id : 0;
}

RequestState
RequestHandle::state() const
{
    if (!p)
        return RequestState::Done;
    std::lock_guard lock(p->mu);
    return p->state;
}

const RequestResult &
RequestHandle::wait() const
{
    if (!p)
        panic("RequestHandle::wait: invalid handle");
    std::unique_lock lock(p->mu);
    p->cv.wait(lock,
               [&] { return p->state == RequestState::Done; });
    return p->result;
}

void
RequestHandle::cancel()
{
    if (!p)
        return;
    p->ctx.token().cancel();
    if (core)
        core->work.notify_all();
}

SolverService::SolverService(const ServiceConfig &config)
    : cfg(config),
      core(std::make_shared<ServiceCore>(config))
{
    // Worker w serves shard w mod shards: every shard keeps a
    // dispatch stream, surplus workers double up on low shards.
    const unsigned shards = core->sched.shardCount();
    for (int w = 0; w < cfg.workers; ++w) {
        const unsigned shard = static_cast<unsigned>(w) % shards;
        workers.emplace_back([c = core, shard] {
            for (;;) {
                if (servicedetail::pumpOne(*c, shard))
                    continue;
                std::unique_lock lock(c->mu);
                if (c->stopping)
                    return;
                c->work.wait(lock, [&] {
                    return c->stopping ||
                           c->sched.runnable(shard);
                });
                if (c->stopping)
                    return;
            }
        });
    }
}

SolverService::~SolverService()
{
    stop();
}

void
SolverService::setTenantTickets(const std::string &tenant,
                                int tickets)
{
    std::lock_guard lock(core->mu);
    core->sched.setTenantTickets(tenant, tickets);
}

void
SolverService::setTenantWeight(const std::string &tenant,
                               double weight)
{
    std::lock_guard lock(core->mu);
    core->sched.setTenantWeight(tenant, weight);
}

RequestHandle
SolverService::submit(SolveRequest req)
{
    auto p = std::make_shared<PendingRequest>();
    p->req = std::move(req);
    p->submitNs = telemetry::nowNs();

    RequestHandle handle;
    handle.p = p;
    handle.core = core;

    SolveRequest &r = p->req;
    std::string loadError;
    if (r.matrix == nullptr && !r.matrixFile.empty()) {
        try {
            p->loaded = core->resolveMatrixFile(r.matrixFile);
            r.matrix = &p->loaded->csr;
        } catch (const FatalError &e) {
            // MatrixMarketError / BinioError: a bad file is the
            // tenant's input, not a service invariant -- surface it
            // as a Failed result, keep serving.
            loadError = e.what();
        }
    }
    if (r.matrix == nullptr || r.matrix->rows() != r.matrix->cols() ||
        r.b.size() != static_cast<std::size_t>(r.matrix->rows())) {
        RequestResult bad;
        bad.status = SolveStatus::Failed;
        bad.error = loadError.empty()
                        ? "malformed request: matrix/RHS mismatch"
                        : loadError;
        {
            std::lock_guard lock(core->mu);
            ++core->stats.submitted;
            servicedetail::bookStatus(core->stats, SolveStatus::Failed);
        }
        servicedetail::finalize(*p, std::move(bad));
        return handle;
    }

    if (r.deadline.count() > 0)
        p->ctx.setDeadline(ExecContext::Clock::now() + r.deadline);
    if (r.cancelAfterChecks > 0)
        p->ctx.cancelAfterChecks(r.cancelAfterChecks);
    if (r.yieldAfterChecks > 0)
        p->ctx.yieldAfterChecks(r.yieldAfterChecks);
    // Artifact submissions key from the stored digest: admission
    // cost is O(1) in the matrix size instead of an O(nnz) hash.
    p->key = (p->loaded && p->loaded->artifact)
                 ? operatorKeyFrom(p->loaded->artifact->matrixKey(),
                                   r.op)
                 : operatorKey(*r.matrix, r.op);

    QueueEntry entry;
    entry.tenant = r.tenant;
    entry.priority = r.priority;
    entry.coalescable = r.kind == SolverKind::Cg;
    entry.key = p->key;
    entry.deadlineNs =
        r.deadline.count() > 0
            ? static_cast<std::uint64_t>(r.deadline.count())
            : 0;

    bool admitted = false;
    {
        std::lock_guard lock(core->mu);
        ++core->stats.submitted;
        ctrSubmitted.add();
        if (!core->stopping) {
            p->id = core->nextId++;
            entry.id = p->id;
            admitted = core->sched.tryAdmit(entry);
        }
        if (admitted) {
            core->pendings.emplace(p->id, p);
            // Preempt trigger: a deadline request asks any running
            // preemptible solve with no deadline (or a later one)
            // and no higher priority to yield at its next
            // checkpoint. Cooperative and best-effort: the victim
            // re-queues, this request overtakes it by EDF. In
            // manual-pump mode nothing runs during submit, so the
            // trigger is inert there (tests use yieldAfterChecks).
            if (entry.deadlineNs > 0) {
                for (const auto &running :
                     core->runningPreemptible) {
                    if (!running || running->id == p->id)
                        continue;
                    const auto victimNs =
                        running->req.deadline.count();
                    const bool laterDeadline =
                        victimNs <= 0 ||
                        static_cast<std::uint64_t>(victimNs) >
                            entry.deadlineNs;
                    if (laterDeadline &&
                        running->req.priority <= r.priority)
                        running->ctx.requestYield();
                }
            }
        } else {
            servicedetail::bookStatus(core->stats, SolveStatus::Overloaded);
        }
    }
    if (!admitted) {
        RequestResult rejected;
        rejected.status = SolveStatus::Overloaded;
        rejected.solve.status = SolveStatus::Overloaded;
        servicedetail::finalize(*p, std::move(rejected));
        return handle;
    }
    core->work.notify_all();
    return handle;
}

void
SolverService::runUntilIdle()
{
    const unsigned shards = core->sched.shardCount();
    for (;;) {
        bool any = false;
        for (unsigned s = 0; s < shards; ++s)
            if (servicedetail::pumpOne(*core, s))
                any = true;
        if (!any)
            return;
    }
}

bool
SolverService::pumpShard(unsigned shard)
{
    if (shard >= core->sched.shardCount())
        return false;
    return servicedetail::pumpOne(*core, shard);
}

void
SolverService::stop()
{
    std::vector<std::shared_ptr<PendingRequest>> dropped;
    {
        std::lock_guard lock(core->mu);
        core->stopping = true;
        for (std::uint64_t id : core->sched.queuedIds()) {
            auto it = core->pendings.find(id);
            if (it == core->pendings.end())
                continue;
            core->sched.drop(id, SolveStatus::Cancelled);
            servicedetail::bookStatus(core->stats, SolveStatus::Cancelled);
            dropped.push_back(it->second);
            core->pendings.erase(it);
        }
    }
    core->work.notify_all();
    for (auto &p : dropped)
        servicedetail::finalize(
            *p, servicedetail::stoppedResult(SolveStatus::Cancelled,
                                             p->req.b.size()));
    for (std::thread &t : workers)
        t.join();
    workers.clear();
}

ServiceStats
SolverService::stats() const
{
    std::lock_guard lock(core->mu);
    ServiceStats s = core->stats;
    s.migrated = core->sched.migrations();
    s.shardDispatches = core->sched.shardDispatches();
    return s;
}

PrepareCache::Stats
SolverService::cacheStats() const
{
    return core->cache.stats();
}

std::size_t
SolverService::loadedMatrixCount() const
{
    std::lock_guard lock(core->loadMu);
    return core->loadedByPath.size();
}

std::size_t
SolverService::loadedMatrixBytes() const
{
    std::lock_guard lock(core->loadMu);
    return core->loadedBytes;
}

std::size_t
SolverService::queueDepth() const
{
    std::lock_guard lock(core->mu);
    return core->sched.queueDepth();
}

std::vector<Decision>
SolverService::decisionLog() const
{
    std::lock_guard lock(core->mu);
    return core->sched.decisions();
}

std::string
SolverService::decisionLogText() const
{
    std::lock_guard lock(core->mu);
    return core->sched.dumpDecisions();
}

} // namespace msc
