#include "service/service.hh"

#include <algorithm>
#include <filesystem>
#include <list>
#include <new>

#include "solver/block.hh"
#include "sparse/binio.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrSubmitted{"service.submitted"};
constinit telemetry::Counter ctrCompleted{"service.completed"};
constinit telemetry::Counter ctrCancelled{"service.cancelled"};
constinit telemetry::Counter
    ctrDeadlineExpired{"service.deadline_expired"};
constinit telemetry::Counter ctrFailed{"service.failed"};
constinit telemetry::Counter ctrBatches{"service.batches"};
constinit telemetry::Histogram hLatency{"service.latency_us"};
constinit telemetry::Histogram hQueueWait{"service.queue_wait_us"};
constinit telemetry::Histogram hSolve{"service.solve_us"};

} // namespace

namespace servicedetail {

struct PendingRequest
{
    std::uint64_t id = 0;
    SolveRequest req;
    ExecContext ctx;
    CacheKey key;
    /** File-resolved system (matrixFile submissions): pins the
     *  parsed matrix or artifact mapping while the request lives;
     *  req.matrix points into it. */
    std::shared_ptr<const LoadedMatrix> loaded;
    std::int64_t submitNs = 0;
    std::int64_t dispatchNs = 0;

    std::mutex mu;
    std::condition_variable cv;
    RequestState state = RequestState::Queued; //!< guarded by mu
    RequestResult result;                      //!< valid once Done
};

struct ServiceCore
{
    explicit ServiceCore(const ServiceConfig &cfg)
        : sched(cfg.scheduler), cache(cfg.cacheBytes),
          loadedCapBytes(cfg.loadedCapBytes)
    {}

    /** Resolve @p path through the bounded loaded-matrix LRU:
     *  reuse a fresh entry, reload a path whose file mtime changed
     *  (a regenerated matrix must never be served stale), and evict
     *  least-recently-used unreferenced entries past the byte cap
     *  -- tenant-supplied paths must not grow memory without bound.
     *  Throws FatalError (MatrixMarketError/BinioError) on a bad
     *  file. */
    std::shared_ptr<const LoadedMatrix>
    resolveMatrixFile(const std::string &path);

    std::mutex mu;
    std::condition_variable work; //!< workers: queue or stop signal
    AdmissionScheduler sched;
    PrepareCache cache;
    /** Bounded path -> resolved matrix LRU, so repeat submissions
     *  share one mapping/parse. Guarded by loadMu, not mu: loading
     *  parses files and must not stall the dispatch path. */
    std::mutex loadMu;
    struct LoadedEntry
    {
        std::shared_ptr<const LoadedMatrix> loaded;
        std::filesystem::file_time_type mtime{};
        std::size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };
    std::unordered_map<std::string, LoadedEntry> loadedByPath;
    std::list<std::string> loadedLru; //!< most recent first
    std::size_t loadedBytes = 0;
    const std::size_t loadedCapBytes;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<PendingRequest>>
        pendings; //!< queued + running
    ServiceStats stats;
    std::uint64_t nextId = 1;
    bool stopping = false;
};

std::shared_ptr<const LoadedMatrix>
ServiceCore::resolveMatrixFile(const std::string &path)
{
    std::lock_guard lock(loadMu);
    std::error_code ec;
    const auto mtime = std::filesystem::last_write_time(path, ec);

    auto it = loadedByPath.find(path);
    if (it != loadedByPath.end()) {
        // Freshness gate: a rewritten file invalidates the pinned
        // entry. An unreadable timestamp keeps it (the file may be
        // gone while its bytes are still wanted).
        if (ec || mtime == it->second.mtime) {
            loadedLru.splice(loadedLru.begin(), loadedLru,
                             it->second.lruPos);
            return it->second.loaded;
        }
        loadedBytes -= it->second.bytes;
        loadedLru.erase(it->second.lruPos);
        loadedByPath.erase(it);
    }

    auto loaded = std::make_shared<const LoadedMatrix>(
        loadMatrixFile(path));
    LoadedEntry entry;
    entry.loaded = loaded;
    entry.mtime =
        ec ? std::filesystem::file_time_type{} : mtime;
    // Artifact entries hold mapped file pages; parsed entries hold
    // the owning CSR arrays.
    entry.bytes =
        loaded->artifact
            ? loaded->artifact->fileBytes()
            : loaded->csr.nnz() * 12 +
                  (static_cast<std::size_t>(loaded->csr.rows()) + 1) *
                      8;
    loadedBytes += entry.bytes;
    loadedLru.push_front(path);
    entry.lruPos = loadedLru.begin();
    loadedByPath.emplace(path, std::move(entry));

    // Least-recently-used first, skipping entries a live request
    // (or caller) still references: an eviction must never unmap a
    // matrix underneath its solve.
    auto lru = loadedLru.end();
    while (loadedBytes > loadedCapBytes &&
           lru != loadedLru.begin()) {
        --lru;
        auto mapIt = loadedByPath.find(*lru);
        if (mapIt == loadedByPath.end())
            continue;
        if (mapIt->second.loaded.use_count() > 1)
            continue; // pinned by a request: skip
        loadedBytes -= mapIt->second.bytes;
        loadedByPath.erase(mapIt);
        lru = loadedLru.erase(lru);
    }
    return loaded;
}

namespace {

/** Mark @p p terminal and wake its waiters. Never called twice. */
void
finalize(PendingRequest &p, RequestResult result)
{
    {
        std::lock_guard lock(p.mu);
        p.result = std::move(result);
        p.state = RequestState::Done;
    }
    p.cv.notify_all();
    const double latencyUs =
        double(telemetry::nowNs() - p.submitNs) / 1000.0;
    hLatency.observe(latencyUs);
    telemetry::addCounterNamed(
        "service.tenant." + p.req.tenant + ".completed");
}

/** Book a terminal status into the aggregate stats (core.mu held). */
void
bookStatus(ServiceStats &stats, SolveStatus status)
{
    switch (status) {
      case SolveStatus::Cancelled:
        ++stats.cancelled;
        ctrCancelled.add();
        break;
      case SolveStatus::DeadlineExceeded:
        ++stats.deadlineExpired;
        ctrDeadlineExpired.add();
        break;
      case SolveStatus::Failed:
        ++stats.failed;
        ctrFailed.add();
        break;
      case SolveStatus::Overloaded:
        ++stats.rejected;
        break;
      default:
        ++stats.completed;
        ctrCompleted.add();
        break;
    }
}

/** Reap queued requests whose cancel/deadline fired before
 *  dispatch (core.mu held). Returns the reaped requests with their
 *  terminal status already decided. */
std::vector<std::pair<std::shared_ptr<PendingRequest>, SolveStatus>>
reapQueued(ServiceCore &core)
{
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    for (std::uint64_t id : core.sched.queuedIds()) {
        auto it = core.pendings.find(id);
        if (it == core.pendings.end())
            continue;
        PendingRequest &p = *it->second;
        const bool cancelled = p.ctx.cancelled();
        if (!cancelled && !p.ctx.expired())
            continue;
        const SolveStatus status = cancelled
                                       ? SolveStatus::Cancelled
                                       : SolveStatus::DeadlineExceeded;
        core.sched.drop(id, status);
        bookStatus(core.stats, status);
        reaped.emplace_back(it->second, status);
        core.pendings.erase(it);
    }
    return reaped;
}

RequestResult
stoppedResult(SolveStatus status, std::size_t n)
{
    RequestResult r;
    r.status = status;
    r.solve.status = status;
    r.solve.vectorLength = n;
    r.x.assign(n, 0.0);
    return r;
}

/** Run one dispatched batch to completion (no core lock held). */
void
executeBatch(
    ServiceCore &core,
    const std::vector<std::shared_ptr<PendingRequest>> &batch)
{
    PendingRequest &head = *batch.front();
    const auto k = static_cast<unsigned>(batch.size());

    bool cacheHit = false;
    std::shared_ptr<PreparedOperator> entry;
    std::vector<RequestResult> results(k);
    bool failed = false;
    std::string error;
    try {
        entry = (head.loaded && head.loaded->artifact)
                    ? core.cache.acquire(head.loaded->artifact,
                                         head.req.op, &cacheHit)
                    : core.cache.acquire(*head.req.matrix,
                                         head.req.op, &cacheHit);
        const auto n =
            static_cast<std::size_t>(entry->matrix().rows());
        // One logical operation at a time per shared entry: the
        // accelerator backends' scratch is per-instance.
        std::lock_guard opLock(entry->opMutex());
        telemetry::Timer solveTimer(hSolve);
        if (k == 1) {
            RequestResult &res = results[0];
            res.x.assign(n, 0.0);
            SolverConfig scfg;
            scfg.tolerance = head.req.tolerance;
            scfg.maxIterations = head.req.maxIterations;
            scfg.exec = &head.ctx;
            switch (head.req.kind) {
              case SolverKind::Cg:
                res.solve = conjugateGradient(entry->op(),
                                              head.req.b, res.x,
                                              scfg);
                break;
              case SolverKind::Gmres:
                res.solve = gmres(entry->op(), head.req.b, res.x,
                                  scfg);
                break;
              case SolverKind::BiCgStab:
              case SolverKind::Auto:
              default:
                res.solve = biCgStab(entry->op(), head.req.b,
                                     res.x, scfg);
                break;
            }
            res.status = res.solve.status;
        } else {
            // Coalesced CG panel: pack the columns, advance every
            // request's independent recurrence in lockstep. Bitwise
            // identical per column to a solo solve.
            std::vector<double> B(n * k), X(n * k, 0.0);
            std::vector<LockstepColumnControl> ctl(k);
            for (unsigned c = 0; c < k; ++c) {
                const PendingRequest &p = *batch[c];
                std::copy_n(p.req.b.data(), n, B.data() + c * n);
                ctl[c].tolerance = p.req.tolerance;
                ctl[c].maxIterations = p.req.maxIterations;
                ctl[c].exec = &batch[c]->ctx;
            }
            const std::vector<SolverResult> colRes =
                lockstepConjugateGradient(entry->op(), B, X, k,
                                          ctl);
            for (unsigned c = 0; c < k; ++c) {
                RequestResult &res = results[c];
                res.solve = colRes[c];
                res.status = colRes[c].status;
                res.coalesced = true;
                res.x.assign(X.data() + c * n,
                             X.data() + (c + 1) * n);
            }
        }
    } catch (const PanicError &) {
        throw; // programming error: never absorb
    } catch (const BinioError &e) {
        // A bad artifact surfacing at prepare time (e.g. a forged
        // plan that decodePlan rejects): the tenant's input, not a
        // service invariant -- fail the request, keep serving.
        failed = true;
        error = e.what();
    } catch (const FatalError &) {
        throw; // config/usage error: never absorb
    } catch (const CancelledError &e) {
        // A stop that fired inside prepare() (cache build) rather
        // than inside a solve: the solvers translate their own.
        failed = true;
        for (auto &res : results) {
            res.status = e.status();
            res.solve.status = e.status();
        }
    } catch (const std::bad_alloc &) {
        failed = true;
        error = "allocation failure";
    } catch (const std::exception &e) {
        failed = true;
        error = e.what();
    }
    if (failed && !error.empty()) {
        for (auto &res : results) {
            res.status = SolveStatus::Failed;
            res.solve.status = SolveStatus::Failed;
            res.error = error;
        }
    }

    for (unsigned c = 0; c < k; ++c) {
        results[c].cacheHit = cacheHit;
        results[c].batchWidth = k;
        hQueueWait.observe(
            double(batch[c]->dispatchNs - batch[c]->submitNs) /
            1000.0);
    }

    {
        std::lock_guard lock(core.mu);
        for (unsigned c = 0; c < k; ++c) {
            core.sched.complete(batch[c]->req.tenant);
            bookStatus(core.stats, results[c].status);
            core.pendings.erase(batch[c]->id);
        }
        ++core.stats.batches;
        ctrBatches.add();
        if (k > 1)
            ++core.stats.coalescedBatches;
    }
    for (unsigned c = 0; c < k; ++c)
        finalize(*batch[c], std::move(results[c]));
}

/** One dispatch cycle. Returns false when nothing was dispatched. */
bool
pumpOne(ServiceCore &core)
{
    std::vector<std::shared_ptr<PendingRequest>> batch;
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    {
        std::lock_guard lock(core.mu);
        reaped = reapQueued(core);
        for (const QueueEntry &e : core.sched.nextBatch()) {
            auto it = core.pendings.find(e.id);
            if (it != core.pendings.end())
                batch.push_back(it->second);
        }
    }
    for (auto &[p, status] : reaped)
        finalize(*p, stoppedResult(status, p->req.b.size()));
    if (batch.empty())
        return !reaped.empty();

    const std::int64_t now = telemetry::nowNs();
    for (auto &p : batch) {
        std::lock_guard lock(p->mu);
        p->state = RequestState::Running;
        p->dispatchNs = now;
    }
    executeBatch(core, batch);
    return true;
}

} // namespace

} // namespace servicedetail

using servicedetail::PendingRequest;
using servicedetail::ServiceCore;

std::uint64_t
RequestHandle::id() const
{
    return p ? p->id : 0;
}

RequestState
RequestHandle::state() const
{
    if (!p)
        return RequestState::Done;
    std::lock_guard lock(p->mu);
    return p->state;
}

const RequestResult &
RequestHandle::wait() const
{
    if (!p)
        panic("RequestHandle::wait: invalid handle");
    std::unique_lock lock(p->mu);
    p->cv.wait(lock,
               [&] { return p->state == RequestState::Done; });
    return p->result;
}

void
RequestHandle::cancel()
{
    if (!p)
        return;
    p->ctx.token().cancel();
    if (core)
        core->work.notify_all();
}

SolverService::SolverService(const ServiceConfig &config)
    : cfg(config),
      core(std::make_shared<ServiceCore>(config))
{
    for (int w = 0; w < cfg.workers; ++w) {
        workers.emplace_back([c = core] {
            for (;;) {
                if (servicedetail::pumpOne(*c))
                    continue;
                std::unique_lock lock(c->mu);
                if (c->stopping)
                    return;
                c->work.wait(lock, [&] {
                    return c->stopping ||
                           c->sched.queueDepth() > 0;
                });
                if (c->stopping)
                    return;
            }
        });
    }
}

SolverService::~SolverService()
{
    stop();
}

void
SolverService::setTenantTickets(const std::string &tenant,
                                int tickets)
{
    std::lock_guard lock(core->mu);
    core->sched.setTenantTickets(tenant, tickets);
}

RequestHandle
SolverService::submit(SolveRequest req)
{
    auto p = std::make_shared<PendingRequest>();
    p->req = std::move(req);
    p->submitNs = telemetry::nowNs();

    RequestHandle handle;
    handle.p = p;
    handle.core = core;

    SolveRequest &r = p->req;
    std::string loadError;
    if (r.matrix == nullptr && !r.matrixFile.empty()) {
        try {
            p->loaded = core->resolveMatrixFile(r.matrixFile);
            r.matrix = &p->loaded->csr;
        } catch (const FatalError &e) {
            // MatrixMarketError / BinioError: a bad file is the
            // tenant's input, not a service invariant -- surface it
            // as a Failed result, keep serving.
            loadError = e.what();
        }
    }
    if (r.matrix == nullptr || r.matrix->rows() != r.matrix->cols() ||
        r.b.size() != static_cast<std::size_t>(r.matrix->rows())) {
        RequestResult bad;
        bad.status = SolveStatus::Failed;
        bad.error = loadError.empty()
                        ? "malformed request: matrix/RHS mismatch"
                        : loadError;
        {
            std::lock_guard lock(core->mu);
            ++core->stats.submitted;
            servicedetail::bookStatus(core->stats, SolveStatus::Failed);
        }
        servicedetail::finalize(*p, std::move(bad));
        return handle;
    }

    if (r.deadline.count() > 0)
        p->ctx.setDeadline(ExecContext::Clock::now() + r.deadline);
    if (r.cancelAfterChecks > 0)
        p->ctx.cancelAfterChecks(r.cancelAfterChecks);
    // Artifact submissions key from the stored digest: admission
    // cost is O(1) in the matrix size instead of an O(nnz) hash.
    p->key = (p->loaded && p->loaded->artifact)
                 ? operatorKeyFrom(p->loaded->artifact->matrixKey(),
                                   r.op)
                 : operatorKey(*r.matrix, r.op);

    QueueEntry entry;
    entry.tenant = r.tenant;
    entry.priority = r.priority;
    entry.coalescable = r.kind == SolverKind::Cg;
    entry.key = p->key;

    bool admitted = false;
    {
        std::lock_guard lock(core->mu);
        ++core->stats.submitted;
        ctrSubmitted.add();
        if (!core->stopping) {
            p->id = core->nextId++;
            entry.id = p->id;
            admitted = core->sched.tryAdmit(entry);
        }
        if (admitted) {
            core->pendings.emplace(p->id, p);
        } else {
            servicedetail::bookStatus(core->stats, SolveStatus::Overloaded);
        }
    }
    if (!admitted) {
        RequestResult rejected;
        rejected.status = SolveStatus::Overloaded;
        rejected.solve.status = SolveStatus::Overloaded;
        servicedetail::finalize(*p, std::move(rejected));
        return handle;
    }
    core->work.notify_one();
    return handle;
}

void
SolverService::runUntilIdle()
{
    while (servicedetail::pumpOne(*core)) {
    }
}

void
SolverService::stop()
{
    std::vector<std::shared_ptr<PendingRequest>> dropped;
    {
        std::lock_guard lock(core->mu);
        core->stopping = true;
        for (std::uint64_t id : core->sched.queuedIds()) {
            auto it = core->pendings.find(id);
            if (it == core->pendings.end())
                continue;
            core->sched.drop(id, SolveStatus::Cancelled);
            servicedetail::bookStatus(core->stats, SolveStatus::Cancelled);
            dropped.push_back(it->second);
            core->pendings.erase(it);
        }
    }
    core->work.notify_all();
    for (auto &p : dropped)
        servicedetail::finalize(
            *p, servicedetail::stoppedResult(SolveStatus::Cancelled,
                                             p->req.b.size()));
    for (std::thread &t : workers)
        t.join();
    workers.clear();
}

ServiceStats
SolverService::stats() const
{
    std::lock_guard lock(core->mu);
    return core->stats;
}

PrepareCache::Stats
SolverService::cacheStats() const
{
    return core->cache.stats();
}

std::size_t
SolverService::loadedMatrixCount() const
{
    std::lock_guard lock(core->loadMu);
    return core->loadedByPath.size();
}

std::size_t
SolverService::loadedMatrixBytes() const
{
    std::lock_guard lock(core->loadMu);
    return core->loadedBytes;
}

std::size_t
SolverService::queueDepth() const
{
    std::lock_guard lock(core->mu);
    return core->sched.queueDepth();
}

std::vector<Decision>
SolverService::decisionLog() const
{
    std::lock_guard lock(core->mu);
    return core->sched.decisions();
}

} // namespace msc
