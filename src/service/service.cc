#include "service/service.hh"

#include <algorithm>
#include <new>

#include "solver/block.hh"
#include "sparse/binio.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrSubmitted{"service.submitted"};
constinit telemetry::Counter ctrCompleted{"service.completed"};
constinit telemetry::Counter ctrCancelled{"service.cancelled"};
constinit telemetry::Counter
    ctrDeadlineExpired{"service.deadline_expired"};
constinit telemetry::Counter ctrFailed{"service.failed"};
constinit telemetry::Counter ctrBatches{"service.batches"};
constinit telemetry::Histogram hLatency{"service.latency_us"};
constinit telemetry::Histogram hQueueWait{"service.queue_wait_us"};
constinit telemetry::Histogram hSolve{"service.solve_us"};

} // namespace

namespace servicedetail {

struct PendingRequest
{
    std::uint64_t id = 0;
    SolveRequest req;
    ExecContext ctx;
    CacheKey key;
    /** File-resolved system (matrixFile submissions): pins the
     *  parsed matrix or artifact mapping while the request lives;
     *  req.matrix points into it. */
    std::shared_ptr<const LoadedMatrix> loaded;
    std::int64_t submitNs = 0;
    std::int64_t dispatchNs = 0;

    std::mutex mu;
    std::condition_variable cv;
    RequestState state = RequestState::Queued; //!< guarded by mu
    RequestResult result;                      //!< valid once Done
};

struct ServiceCore
{
    explicit ServiceCore(const ServiceConfig &cfg)
        : sched(cfg.scheduler), cache(cfg.cacheBytes)
    {}

    std::mutex mu;
    std::condition_variable work; //!< workers: queue or stop signal
    AdmissionScheduler sched;
    PrepareCache cache;
    /** Path -> resolved matrix, pinned for the service lifetime so
     *  repeat submissions share one mapping/parse. Guarded by
     *  loadMu, not mu: loading parses files and must not stall the
     *  dispatch path. */
    std::mutex loadMu;
    std::unordered_map<std::string,
                       std::shared_ptr<const LoadedMatrix>>
        loadedByPath;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<PendingRequest>>
        pendings; //!< queued + running
    ServiceStats stats;
    std::uint64_t nextId = 1;
    bool stopping = false;
};

namespace {

/** Mark @p p terminal and wake its waiters. Never called twice. */
void
finalize(PendingRequest &p, RequestResult result)
{
    {
        std::lock_guard lock(p.mu);
        p.result = std::move(result);
        p.state = RequestState::Done;
    }
    p.cv.notify_all();
    const double latencyUs =
        double(telemetry::nowNs() - p.submitNs) / 1000.0;
    hLatency.observe(latencyUs);
    telemetry::addCounterNamed(
        "service.tenant." + p.req.tenant + ".completed");
}

/** Book a terminal status into the aggregate stats (core.mu held). */
void
bookStatus(ServiceStats &stats, SolveStatus status)
{
    switch (status) {
      case SolveStatus::Cancelled:
        ++stats.cancelled;
        ctrCancelled.add();
        break;
      case SolveStatus::DeadlineExceeded:
        ++stats.deadlineExpired;
        ctrDeadlineExpired.add();
        break;
      case SolveStatus::Failed:
        ++stats.failed;
        ctrFailed.add();
        break;
      case SolveStatus::Overloaded:
        ++stats.rejected;
        break;
      default:
        ++stats.completed;
        ctrCompleted.add();
        break;
    }
}

/** Reap queued requests whose cancel/deadline fired before
 *  dispatch (core.mu held). Returns the reaped requests with their
 *  terminal status already decided. */
std::vector<std::pair<std::shared_ptr<PendingRequest>, SolveStatus>>
reapQueued(ServiceCore &core)
{
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    for (std::uint64_t id : core.sched.queuedIds()) {
        auto it = core.pendings.find(id);
        if (it == core.pendings.end())
            continue;
        PendingRequest &p = *it->second;
        const bool cancelled = p.ctx.cancelled();
        if (!cancelled && !p.ctx.expired())
            continue;
        const SolveStatus status = cancelled
                                       ? SolveStatus::Cancelled
                                       : SolveStatus::DeadlineExceeded;
        core.sched.drop(id, status);
        bookStatus(core.stats, status);
        reaped.emplace_back(it->second, status);
        core.pendings.erase(it);
    }
    return reaped;
}

RequestResult
stoppedResult(SolveStatus status, std::size_t n)
{
    RequestResult r;
    r.status = status;
    r.solve.status = status;
    r.solve.vectorLength = n;
    r.x.assign(n, 0.0);
    return r;
}

/** Run one dispatched batch to completion (no core lock held). */
void
executeBatch(
    ServiceCore &core,
    const std::vector<std::shared_ptr<PendingRequest>> &batch)
{
    PendingRequest &head = *batch.front();
    const auto k = static_cast<unsigned>(batch.size());

    bool cacheHit = false;
    std::shared_ptr<PreparedOperator> entry;
    std::vector<RequestResult> results(k);
    bool failed = false;
    std::string error;
    try {
        entry = (head.loaded && head.loaded->artifact)
                    ? core.cache.acquire(head.loaded->artifact,
                                         head.req.op, &cacheHit)
                    : core.cache.acquire(*head.req.matrix,
                                         head.req.op, &cacheHit);
        const auto n =
            static_cast<std::size_t>(entry->matrix().rows());
        // One logical operation at a time per shared entry: the
        // accelerator backends' scratch is per-instance.
        std::lock_guard opLock(entry->opMutex());
        telemetry::Timer solveTimer(hSolve);
        if (k == 1) {
            RequestResult &res = results[0];
            res.x.assign(n, 0.0);
            SolverConfig scfg;
            scfg.tolerance = head.req.tolerance;
            scfg.maxIterations = head.req.maxIterations;
            scfg.exec = &head.ctx;
            switch (head.req.kind) {
              case SolverKind::Cg:
                res.solve = conjugateGradient(entry->op(),
                                              head.req.b, res.x,
                                              scfg);
                break;
              case SolverKind::Gmres:
                res.solve = gmres(entry->op(), head.req.b, res.x,
                                  scfg);
                break;
              case SolverKind::BiCgStab:
              case SolverKind::Auto:
              default:
                res.solve = biCgStab(entry->op(), head.req.b,
                                     res.x, scfg);
                break;
            }
            res.status = res.solve.status;
        } else {
            // Coalesced CG panel: pack the columns, advance every
            // request's independent recurrence in lockstep. Bitwise
            // identical per column to a solo solve.
            std::vector<double> B(n * k), X(n * k, 0.0);
            std::vector<LockstepColumnControl> ctl(k);
            for (unsigned c = 0; c < k; ++c) {
                const PendingRequest &p = *batch[c];
                std::copy_n(p.req.b.data(), n, B.data() + c * n);
                ctl[c].tolerance = p.req.tolerance;
                ctl[c].maxIterations = p.req.maxIterations;
                ctl[c].exec = &batch[c]->ctx;
            }
            const std::vector<SolverResult> colRes =
                lockstepConjugateGradient(entry->op(), B, X, k,
                                          ctl);
            for (unsigned c = 0; c < k; ++c) {
                RequestResult &res = results[c];
                res.solve = colRes[c];
                res.status = colRes[c].status;
                res.coalesced = true;
                res.x.assign(X.data() + c * n,
                             X.data() + (c + 1) * n);
            }
        }
    } catch (const PanicError &) {
        throw; // programming error: never absorb
    } catch (const FatalError &) {
        throw; // config/usage error: never absorb
    } catch (const CancelledError &e) {
        // A stop that fired inside prepare() (cache build) rather
        // than inside a solve: the solvers translate their own.
        failed = true;
        for (auto &res : results) {
            res.status = e.status();
            res.solve.status = e.status();
        }
    } catch (const std::bad_alloc &) {
        failed = true;
        error = "allocation failure";
    } catch (const std::exception &e) {
        failed = true;
        error = e.what();
    }
    if (failed && !error.empty()) {
        for (auto &res : results) {
            res.status = SolveStatus::Failed;
            res.solve.status = SolveStatus::Failed;
            res.error = error;
        }
    }

    for (unsigned c = 0; c < k; ++c) {
        results[c].cacheHit = cacheHit;
        results[c].batchWidth = k;
        hQueueWait.observe(
            double(batch[c]->dispatchNs - batch[c]->submitNs) /
            1000.0);
    }

    {
        std::lock_guard lock(core.mu);
        for (unsigned c = 0; c < k; ++c) {
            core.sched.complete(batch[c]->req.tenant);
            bookStatus(core.stats, results[c].status);
            core.pendings.erase(batch[c]->id);
        }
        ++core.stats.batches;
        ctrBatches.add();
        if (k > 1)
            ++core.stats.coalescedBatches;
    }
    for (unsigned c = 0; c < k; ++c)
        finalize(*batch[c], std::move(results[c]));
}

/** One dispatch cycle. Returns false when nothing was dispatched. */
bool
pumpOne(ServiceCore &core)
{
    std::vector<std::shared_ptr<PendingRequest>> batch;
    std::vector<std::pair<std::shared_ptr<PendingRequest>,
                          SolveStatus>>
        reaped;
    {
        std::lock_guard lock(core.mu);
        reaped = reapQueued(core);
        for (const QueueEntry &e : core.sched.nextBatch()) {
            auto it = core.pendings.find(e.id);
            if (it != core.pendings.end())
                batch.push_back(it->second);
        }
    }
    for (auto &[p, status] : reaped)
        finalize(*p, stoppedResult(status, p->req.b.size()));
    if (batch.empty())
        return !reaped.empty();

    const std::int64_t now = telemetry::nowNs();
    for (auto &p : batch) {
        std::lock_guard lock(p->mu);
        p->state = RequestState::Running;
        p->dispatchNs = now;
    }
    executeBatch(core, batch);
    return true;
}

} // namespace

} // namespace servicedetail

using servicedetail::PendingRequest;
using servicedetail::ServiceCore;

std::uint64_t
RequestHandle::id() const
{
    return p ? p->id : 0;
}

RequestState
RequestHandle::state() const
{
    if (!p)
        return RequestState::Done;
    std::lock_guard lock(p->mu);
    return p->state;
}

const RequestResult &
RequestHandle::wait() const
{
    if (!p)
        panic("RequestHandle::wait: invalid handle");
    std::unique_lock lock(p->mu);
    p->cv.wait(lock,
               [&] { return p->state == RequestState::Done; });
    return p->result;
}

void
RequestHandle::cancel()
{
    if (!p)
        return;
    p->ctx.token().cancel();
    if (core)
        core->work.notify_all();
}

SolverService::SolverService(const ServiceConfig &config)
    : cfg(config),
      core(std::make_shared<ServiceCore>(config))
{
    for (int w = 0; w < cfg.workers; ++w) {
        workers.emplace_back([c = core] {
            for (;;) {
                if (servicedetail::pumpOne(*c))
                    continue;
                std::unique_lock lock(c->mu);
                if (c->stopping)
                    return;
                c->work.wait(lock, [&] {
                    return c->stopping ||
                           c->sched.queueDepth() > 0;
                });
                if (c->stopping)
                    return;
            }
        });
    }
}

SolverService::~SolverService()
{
    stop();
}

void
SolverService::setTenantTickets(const std::string &tenant,
                                int tickets)
{
    std::lock_guard lock(core->mu);
    core->sched.setTenantTickets(tenant, tickets);
}

RequestHandle
SolverService::submit(SolveRequest req)
{
    auto p = std::make_shared<PendingRequest>();
    p->req = std::move(req);
    p->submitNs = telemetry::nowNs();

    RequestHandle handle;
    handle.p = p;
    handle.core = core;

    SolveRequest &r = p->req;
    std::string loadError;
    if (r.matrix == nullptr && !r.matrixFile.empty()) {
        try {
            std::lock_guard lock(core->loadMu);
            auto &slot = core->loadedByPath[r.matrixFile];
            if (!slot) {
                slot = std::make_shared<const LoadedMatrix>(
                    loadMatrixFile(r.matrixFile));
            }
            p->loaded = slot;
            r.matrix = &slot->csr;
        } catch (const FatalError &e) {
            // MatrixMarketError / BinioError: a bad file is the
            // tenant's input, not a service invariant -- surface it
            // as a Failed result, keep serving.
            loadError = e.what();
        }
    }
    if (r.matrix == nullptr || r.matrix->rows() != r.matrix->cols() ||
        r.b.size() != static_cast<std::size_t>(r.matrix->rows())) {
        RequestResult bad;
        bad.status = SolveStatus::Failed;
        bad.error = loadError.empty()
                        ? "malformed request: matrix/RHS mismatch"
                        : loadError;
        {
            std::lock_guard lock(core->mu);
            ++core->stats.submitted;
            servicedetail::bookStatus(core->stats, SolveStatus::Failed);
        }
        servicedetail::finalize(*p, std::move(bad));
        return handle;
    }

    if (r.deadline.count() > 0)
        p->ctx.setDeadline(ExecContext::Clock::now() + r.deadline);
    if (r.cancelAfterChecks > 0)
        p->ctx.cancelAfterChecks(r.cancelAfterChecks);
    // Artifact submissions key from the stored digest: admission
    // cost is O(1) in the matrix size instead of an O(nnz) hash.
    p->key = (p->loaded && p->loaded->artifact)
                 ? operatorKeyFrom(p->loaded->artifact->matrixKey(),
                                   r.op)
                 : operatorKey(*r.matrix, r.op);

    QueueEntry entry;
    entry.tenant = r.tenant;
    entry.priority = r.priority;
    entry.coalescable = r.kind == SolverKind::Cg;
    entry.key = p->key;

    bool admitted = false;
    {
        std::lock_guard lock(core->mu);
        ++core->stats.submitted;
        ctrSubmitted.add();
        if (!core->stopping) {
            p->id = core->nextId++;
            entry.id = p->id;
            admitted = core->sched.tryAdmit(entry);
        }
        if (admitted) {
            core->pendings.emplace(p->id, p);
        } else {
            servicedetail::bookStatus(core->stats, SolveStatus::Overloaded);
        }
    }
    if (!admitted) {
        RequestResult rejected;
        rejected.status = SolveStatus::Overloaded;
        rejected.solve.status = SolveStatus::Overloaded;
        servicedetail::finalize(*p, std::move(rejected));
        return handle;
    }
    core->work.notify_one();
    return handle;
}

void
SolverService::runUntilIdle()
{
    while (servicedetail::pumpOne(*core)) {
    }
}

void
SolverService::stop()
{
    std::vector<std::shared_ptr<PendingRequest>> dropped;
    {
        std::lock_guard lock(core->mu);
        core->stopping = true;
        for (std::uint64_t id : core->sched.queuedIds()) {
            auto it = core->pendings.find(id);
            if (it == core->pendings.end())
                continue;
            core->sched.drop(id, SolveStatus::Cancelled);
            servicedetail::bookStatus(core->stats, SolveStatus::Cancelled);
            dropped.push_back(it->second);
            core->pendings.erase(it);
        }
    }
    core->work.notify_all();
    for (auto &p : dropped)
        servicedetail::finalize(
            *p, servicedetail::stoppedResult(SolveStatus::Cancelled,
                                             p->req.b.size()));
    for (std::thread &t : workers)
        t.join();
    workers.clear();
}

ServiceStats
SolverService::stats() const
{
    std::lock_guard lock(core->mu);
    return core->stats;
}

PrepareCache::Stats
SolverService::cacheStats() const
{
    return core->cache.stats();
}

std::size_t
SolverService::queueDepth() const
{
    std::lock_guard lock(core->mu);
    return core->sched.queueDepth();
}

std::vector<Decision>
SolverService::decisionLog() const
{
    std::lock_guard lock(core->mu);
    return core->sched.decisions();
}

} // namespace msc
