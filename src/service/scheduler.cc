#include "service/scheduler.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrAdmitted{"service.admitted"};
constinit telemetry::Counter ctrRejected{"service.rejected"};
constinit telemetry::Counter ctrDropped{"service.dropped"};
constinit telemetry::Counter ctrDispatches{"service.dispatches"};
constinit telemetry::Counter
    ctrCoalesced{"service.coalesced_requests"};
constinit telemetry::Counter ctrMigrated{"service.migrated"};
constinit telemetry::Counter ctrPreempted{"service.preempted"};
constinit telemetry::Gauge gQueueDepth{"service.queue_depth"};

/** EDF sort key: no deadline sorts last. */
std::uint64_t
deadlineKey(const QueueEntry &e)
{
    return e.deadlineNs == 0
               ? std::numeric_limits<std::uint64_t>::max()
               : e.deadlineNs;
}

} // namespace

const char *
toString(DecisionKind kind)
{
    switch (kind) {
      case DecisionKind::Admit:
        return "admit";
      case DecisionKind::Reject:
        return "reject";
      case DecisionKind::Dispatch:
        return "dispatch";
      case DecisionKind::Drop:
        return "drop";
      case DecisionKind::Preempt:
        return "preempt";
    }
    return "unknown";
}

int
AdmissionScheduler::ticketLimit(const std::string &tenant) const
{
    auto it = limits.find(tenant);
    return it == limits.end() ? cfg.defaultTickets : it->second;
}

double
AdmissionScheduler::tenantWeight(const std::string &tenant) const
{
    auto it = weights.find(tenant);
    return it == weights.end() ? 1.0 : it->second;
}

void
AdmissionScheduler::publishDepth(unsigned shard) const
{
    gQueueDepth.set(static_cast<double>(queueDepth()));
    if (telemetry::metricsActive()) {
        telemetry::setGaugeNamed(
            "service.shard." + std::to_string(shard) +
                ".queue_depth",
            static_cast<double>(queues[shard].size()));
    }
}

bool
AdmissionScheduler::tryAdmit(const QueueEntry &entry)
{
    Decision d;
    d.seq = nextSeq++;
    d.requestId = entry.id;
    d.tenant = entry.tenant;
    d.priority = entry.priority;
    d.shard = shardOf(entry.key);
    const bool queueFull = queueDepth() >= cfg.queueCapacity;
    const bool outOfTickets =
        tenantLive(entry.tenant) >= ticketLimit(entry.tenant);
    if (queueFull || outOfTickets) {
        d.kind = DecisionKind::Reject;
        d.reason = SolveStatus::Overloaded;
        log.push_back(std::move(d));
        ctrRejected.add();
        return false;
    }
    d.kind = DecisionKind::Admit;
    // SFQ stamp: start at the later of virtual time and the
    // tenant's last finish; charge the tenant 1/weight of virtual
    // service for this request.
    Slot slot;
    slot.entry = entry;
    double &fin = lastFinish[entry.tenant];
    slot.startTag = std::max(virtualTime, fin);
    fin = slot.startTag + 1.0 / tenantWeight(entry.tenant);
    log.push_back(std::move(d));
    ++live[entry.tenant];
    const unsigned shard = shardOf(entry.key);
    queues[shard].push_back(std::move(slot));
    ctrAdmitted.add();
    publishDepth(shard);
    return true;
}

std::vector<QueueEntry>
AdmissionScheduler::nextBatch(unsigned shard)
{
    std::vector<QueueEntry> batch;
    if (shard >= queues.size())
        return batch;
    unsigned src = shard;
    bool migrated = false;
    if (queues[src].empty()) {
        // Work migration: steal from the deepest other queue, but
        // only when it holds a backlog (>= 2) -- a single queued
        // entry is about to be served by its own shard and moving
        // it would just forfeit prepare-cache locality.
        std::size_t best = queues.size();
        for (std::size_t s = 0; s < queues.size(); ++s) {
            if (s == shard || queues[s].size() < 2)
                continue;
            if (best == queues.size() ||
                queues[s].size() > queues[best].size())
                best = s;
        }
        if (best == queues.size())
            return batch;
        src = static_cast<unsigned>(best);
        migrated = true;
    }
    std::deque<Slot> &q = queues[src];

    // 1. Highest priority band present.
    int band = q.front().entry.priority;
    for (const Slot &s : q)
        band = std::max(band, s.entry.priority);

    // 2. Fair share: the band entry with the minimum start tag
    //    (tie: submission order) names the tenant to serve.
    std::size_t minTag = q.size();
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (q[i].entry.priority != band)
            continue;
        if (minTag == q.size() ||
            q[i].startTag < q[minTag].startTag ||
            (q[i].startTag == q[minTag].startTag &&
             q[i].entry.id < q[minTag].entry.id))
            minTag = i;
    }

    // 3. EDF among that tenant's band entries (tie: submission
    //    order).
    const std::string tenant = q[minTag].entry.tenant;
    std::size_t pick = q.size();
    for (std::size_t i = 0; i < q.size(); ++i) {
        if (q[i].entry.priority != band ||
            q[i].entry.tenant != tenant)
            continue;
        if (pick == q.size() ||
            deadlineKey(q[i].entry) < deadlineKey(q[pick].entry) ||
            (deadlineKey(q[i].entry) == deadlineKey(q[pick].entry) &&
             q[i].entry.id < q[pick].entry.id))
            pick = i;
    }

    // Virtual time advances to the served start tag (SFQ).
    virtualTime = std::max(virtualTime, q[minTag].startTag);

    const QueueEntry head = q[pick].entry;
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    batch.push_back(head);

    // Coalesce: same prepare-cache key, CG-kind, already queued in
    // the source shard -- the window counts requests present NOW
    // and never waits.
    if (head.coalescable && cfg.batchWindow > 1) {
        for (auto it = q.begin();
             it != q.end() && batch.size() < cfg.batchWindow;) {
            if (it->entry.coalescable &&
                it->entry.key == head.key) {
                batch.push_back(it->entry);
                it = q.erase(it);
            } else {
                ++it;
            }
        }
    }

    Decision d;
    d.kind = DecisionKind::Dispatch;
    d.seq = nextSeq++;
    d.requestId = head.id;
    d.tenant = head.tenant;
    d.priority = head.priority;
    d.shard = shard;
    d.migrated = migrated;
    for (const QueueEntry &e : batch)
        d.batch.push_back(e.id);
    log.push_back(std::move(d));
    ++dispatchesPerShard[shard];
    if (migrated) {
        ++migrationCount;
        ctrMigrated.add();
    }
    ctrDispatches.add();
    if (batch.size() > 1)
        ctrCoalesced.add(batch.size());
    publishDepth(src);
    return batch;
}

void
AdmissionScheduler::requeuePreempted(const QueueEntry &entry)
{
    Decision d;
    d.kind = DecisionKind::Preempt;
    d.seq = nextSeq++;
    d.requestId = entry.id;
    d.tenant = entry.tenant;
    d.priority = entry.priority;
    d.shard = shardOf(entry.key);
    d.reason = SolveStatus::Preempted;
    log.push_back(std::move(d));
    // No tryAdmit: the request already holds a ticket and had a
    // queue slot before dispatch, so capacity cannot reject it.
    // Start tag = current virtual time: it resumes at fair-share
    // parity without charging the tenant a second finish increment.
    Slot slot;
    slot.entry = entry;
    slot.startTag = virtualTime;
    const unsigned shard = shardOf(entry.key);
    queues[shard].push_back(std::move(slot));
    ctrPreempted.add();
    publishDepth(shard);
}

bool
AdmissionScheduler::drop(std::uint64_t id, SolveStatus reason)
{
    for (std::size_t s = 0; s < queues.size(); ++s) {
        std::deque<Slot> &q = queues[s];
        auto it = std::find_if(q.begin(), q.end(),
                               [&](const Slot &e) {
                                   return e.entry.id == id;
                               });
        if (it == q.end())
            continue;
        Decision d;
        d.kind = DecisionKind::Drop;
        d.seq = nextSeq++;
        d.requestId = it->entry.id;
        d.tenant = it->entry.tenant;
        d.priority = it->entry.priority;
        d.shard = static_cast<unsigned>(s);
        d.reason = reason;
        log.push_back(std::move(d));
        complete(it->entry.tenant);
        q.erase(it);
        ctrDropped.add();
        publishDepth(static_cast<unsigned>(s));
        return true;
    }
    return false;
}

void
AdmissionScheduler::complete(const std::string &tenant)
{
    auto it = live.find(tenant);
    if (it != live.end() && it->second > 0)
        --it->second;
}

std::string
AdmissionScheduler::dumpDecisions() const
{
    std::ostringstream out;
    for (const Decision &d : log) {
        out << d.seq << ' ' << toString(d.kind) << " req="
            << d.requestId << " tenant=" << d.tenant
            << " prio=" << d.priority << " shard=" << d.shard;
        if (d.migrated)
            out << " migrated";
        if (d.kind == DecisionKind::Dispatch) {
            out << " batch=[";
            for (std::size_t i = 0; i < d.batch.size(); ++i)
                out << (i ? "," : "") << d.batch[i];
            out << ']';
        }
        if (d.kind == DecisionKind::Reject ||
            d.kind == DecisionKind::Drop ||
            d.kind == DecisionKind::Preempt)
            out << " reason=" << toString(d.reason);
        out << '\n';
    }
    return out.str();
}

} // namespace msc
