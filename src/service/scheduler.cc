#include "service/scheduler.hh"

#include <algorithm>

#include "util/telemetry.hh"

namespace msc {

namespace {

constinit telemetry::Counter ctrAdmitted{"service.admitted"};
constinit telemetry::Counter ctrRejected{"service.rejected"};
constinit telemetry::Counter ctrDropped{"service.dropped"};
constinit telemetry::Counter ctrDispatches{"service.dispatches"};
constinit telemetry::Counter
    ctrCoalesced{"service.coalesced_requests"};
constinit telemetry::Gauge gQueueDepth{"service.queue_depth"};

} // namespace

const char *
toString(DecisionKind kind)
{
    switch (kind) {
      case DecisionKind::Admit:
        return "admit";
      case DecisionKind::Reject:
        return "reject";
      case DecisionKind::Dispatch:
        return "dispatch";
      case DecisionKind::Drop:
        return "drop";
    }
    return "unknown";
}

int
AdmissionScheduler::ticketLimit(const std::string &tenant) const
{
    auto it = limits.find(tenant);
    return it == limits.end() ? cfg.defaultTickets : it->second;
}

bool
AdmissionScheduler::tryAdmit(const QueueEntry &entry)
{
    Decision d;
    d.seq = nextSeq++;
    d.requestId = entry.id;
    d.tenant = entry.tenant;
    d.priority = entry.priority;
    const bool queueFull = queue.size() >= cfg.queueCapacity;
    const bool outOfTickets =
        tenantLive(entry.tenant) >= ticketLimit(entry.tenant);
    if (queueFull || outOfTickets) {
        d.kind = DecisionKind::Reject;
        d.reason = SolveStatus::Overloaded;
        log.push_back(std::move(d));
        ctrRejected.add();
        return false;
    }
    d.kind = DecisionKind::Admit;
    log.push_back(std::move(d));
    ++live[entry.tenant];
    queue.push_back(entry);
    ctrAdmitted.add();
    gQueueDepth.set(static_cast<double>(queue.size()));
    return true;
}

std::vector<QueueEntry>
AdmissionScheduler::nextBatch()
{
    std::vector<QueueEntry> batch;
    if (queue.empty())
        return batch;

    // Head: highest priority, first-come within a priority.
    std::size_t headIdx = 0;
    for (std::size_t i = 1; i < queue.size(); ++i)
        if (queue[i].priority > queue[headIdx].priority)
            headIdx = i;
    const QueueEntry head = queue[headIdx];
    queue.erase(queue.begin() +
                static_cast<std::ptrdiff_t>(headIdx));
    batch.push_back(head);

    // Coalesce: same prepare-cache key, CG-kind, already queued --
    // the window counts requests present NOW and never waits.
    if (head.coalescable && cfg.batchWindow > 1) {
        for (auto it = queue.begin();
             it != queue.end() && batch.size() < cfg.batchWindow;) {
            if (it->coalescable && it->key == head.key) {
                batch.push_back(*it);
                it = queue.erase(it);
            } else {
                ++it;
            }
        }
    }

    Decision d;
    d.kind = DecisionKind::Dispatch;
    d.seq = nextSeq++;
    d.requestId = head.id;
    d.tenant = head.tenant;
    d.priority = head.priority;
    for (const QueueEntry &e : batch)
        d.batch.push_back(e.id);
    log.push_back(std::move(d));
    ctrDispatches.add();
    if (batch.size() > 1)
        ctrCoalesced.add(batch.size());
    gQueueDepth.set(static_cast<double>(queue.size()));
    return batch;
}

bool
AdmissionScheduler::drop(std::uint64_t id, SolveStatus reason)
{
    auto it =
        std::find_if(queue.begin(), queue.end(),
                     [&](const QueueEntry &e) { return e.id == id; });
    if (it == queue.end())
        return false;
    Decision d;
    d.kind = DecisionKind::Drop;
    d.seq = nextSeq++;
    d.requestId = it->id;
    d.tenant = it->tenant;
    d.priority = it->priority;
    d.reason = reason;
    log.push_back(std::move(d));
    complete(it->tenant);
    queue.erase(it);
    ctrDropped.add();
    gQueueDepth.set(static_cast<double>(queue.size()));
    return true;
}

void
AdmissionScheduler::complete(const std::string &tenant)
{
    auto it = live.find(tenant);
    if (it != live.end() && it->second > 0)
        --it->second;
}

} // namespace msc
