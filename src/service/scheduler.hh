/**
 * @file
 * Admission scheduler: ticket-style per-tenant accounting, a bounded
 * queue with structured Overloaded rejection, weighted fair-share
 * dispatch (start-time fair queueing) with earliest-deadline-first
 * ordering inside a priority band, sharded per-accelerator queues
 * with work migration, and same-operator coalescing within a
 * request-count batching window.
 *
 * The scheduler is a pure data structure -- no threads, no clocks.
 * The service drives it under one lock, and every decision depends
 * only on the sequence of calls, so a fixed submission order replays
 * an identical decision log (the replay-determinism contract the
 * tests pin). That is also why the batching window is counted in
 * requests present in the queue at dispatch time, never in wall
 * time: a window of w coalesces min(w, queued same-key requests)
 * and NEVER waits for more to arrive, so w = 1 degenerates to
 * sequential dispatch and timing cannot change any decision. For
 * the same reason EDF keys on the *relative* deadline each request
 * was submitted with (0 = none, sorted last), not on an absolute
 * wall-clock expiry: the ordering is a pure function of the
 * submission sequence. That is a deliberate approximation -- two
 * requests with equal relative deadlines submitted far apart tie on
 * the EDF key and fall back to submission order -- bought for
 * byte-identical replay.
 *
 * Ticket accounting (after the accelerator-allocation scheme in
 * virtual-acc-app): each tenant holds a fixed number of tickets;
 * one live (queued or running) request consumes one ticket, ticket
 * exhaustion -- like queue overflow -- rejects at admission with
 * SolveStatus::Overloaded rather than blocking, so a flooding
 * tenant saturates its own allowance while others keep being
 * admitted (the fairness-under-saturation contract).
 *
 * Weighted fair share (start-time fair queueing, SFQ): each tenant
 * carries a weight (default 1). Admission stamps the request with a
 * start tag S = max(virtual time, tenant's last finish tag) and
 * advances the tenant's finish tag by 1/weight; dispatch picks, in
 * the highest priority band present, the tenant owning the minimum
 * start tag, then the earliest-deadline request of that tenant in
 * the band, and advances virtual time to the served start tag. A
 * tenant that floods only pushes its *own* tags into the future, so
 * a light tenant's requests keep dispatching at its weighted share.
 * Tickets bound live requests per tenant on top (admission control);
 * weights shape the order among admitted requests (dispatch).
 *
 * Sharding: entries are routed at admission by operator key
 * (shard = key mod shards), so repeated solves on one operator land
 * on one shard -- its prepare-cache replica stays warm and
 * same-operator coalescing stays shard-local. A shard whose queue
 * is empty migrates work from the deepest other queue (>= 2 deep,
 * lowest index on ties) instead of idling; the decision log records
 * the executing shard and the migration.
 */

#ifndef MSC_SERVICE_SCHEDULER_HH
#define MSC_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/exec_context.hh"
#include "service/prepare_cache.hh"

namespace msc {

/** One queued unit of work, as the scheduler sees it. */
struct QueueEntry
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;        //!< higher dispatches first
    bool coalescable = false; //!< CG-kind: may join a lockstep panel
    CacheKey key;            //!< prepare-cache key (coalesce match)
    /** Relative deadline at submission in nanoseconds; 0 = none
     *  (sorts last). The EDF key inside a priority band. */
    std::uint64_t deadlineNs = 0;
};

enum class DecisionKind
{
    Admit,    //!< ticket + queue slot granted
    Reject,   //!< Overloaded: queue full or tenant out of tickets
    Dispatch, //!< entry (or coalesced batch) handed to a shard
    Drop,     //!< reaped from the queue (cancel / deadline)
    Preempt,  //!< yielded at a checkpoint and re-queued (keeps its
              //!< ticket; bypasses the capacity bound)
};

const char *toString(DecisionKind kind);

/** One replayable scheduler decision. */
struct Decision
{
    DecisionKind kind = DecisionKind::Admit;
    std::uint64_t seq = 0;       //!< decision sequence number
    std::uint64_t requestId = 0; //!< head request
    std::string tenant;
    int priority = 0;
    /** Admit: home shard. Dispatch/Preempt: executing shard. */
    unsigned shard = 0;
    /** Dispatch only: batch was stolen from another shard's queue. */
    bool migrated = false;
    /** Dispatch: every coalesced request id, head first, in queue
     *  order. Singleton dispatches carry just the head. */
    std::vector<std::uint64_t> batch;
    /** Reject: Overloaded. Drop: Cancelled / DeadlineExceeded.
     *  Preempt: Preempted. */
    SolveStatus reason = SolveStatus::Converged;
};

class AdmissionScheduler
{
  public:
    struct Config
    {
        std::size_t queueCapacity = 64;
        int defaultTickets = 4;  //!< per-tenant live-request bound
        unsigned batchWindow = 1; //!< max requests per coalesced
                                  //!< dispatch (1 = no coalescing)
        unsigned shards = 1;      //!< dispatch queues (>= 1)
    };

    explicit AdmissionScheduler(const Config &config) : cfg(config)
    {
        queues.resize(cfg.shards == 0 ? 1 : cfg.shards);
        dispatchesPerShard.assign(queues.size(), 0);
    }

    const Config &config() const { return cfg; }

    unsigned
    shardCount() const
    {
        return static_cast<unsigned>(queues.size());
    }

    /** Home shard of an operator key (admission routing). */
    unsigned
    shardOf(const CacheKey &key) const
    {
        return static_cast<unsigned>((key.hi ^ key.lo) %
                                     queues.size());
    }

    /**
     * Override one tenant's ticket allowance. Safe mid-traffic:
     * the limit only gates future admissions -- live requests
     * (queued or running) keep the tickets they already hold and
     * drain normally, so lowering a limit below a tenant's current
     * live count never strands a queued request; it just blocks new
     * admissions until enough complete. Negative values clamp to 0.
     */
    void
    setTenantTickets(const std::string &tenant, int tickets)
    {
        limits[tenant] = tickets < 0 ? 0 : tickets;
    }

    /**
     * Fair-share weight (default 1.0; clamped to >= 1e-6). A tenant
     * with weight w receives a w-proportional share of dispatches
     * under contention. Takes effect for admissions after the call;
     * already-stamped start tags are not rewritten (determinism).
     */
    void
    setTenantWeight(const std::string &tenant, double weight)
    {
        weights[tenant] = weight < 1e-6 ? 1e-6 : weight;
    }

    /**
     * Admission: grants a queue slot + one tenant ticket, stamps the
     * fair-share start tag, and routes the entry to its home shard;
     * or records a Reject decision and returns false (the caller
     * completes the request as Overloaded).
     */
    bool tryAdmit(const QueueEntry &entry);

    /**
     * Dispatch for @p shard: in the highest priority band present,
     * the tenant owning the minimum fair-share start tag is served,
     * taking its earliest-deadline entry in the band (deadline 0
     * sorts last; ties fall back to request id, i.e. submission
     * order). When the shard's own queue is empty, the batch is
     * migrated from the deepest other queue (>= 2 entries). When
     * the dispatched head is coalescable and the window allows,
     * every same-key coalescable entry already in the *source*
     * queue (any tenant, any priority -- riding along only ever
     * helps them) joins the batch, up to batchWindow entries, in
     * queue order. Returns the batch in dispatch order (empty when
     * nothing is runnable). Tickets stay held until complete().
     */
    std::vector<QueueEntry> nextBatch(unsigned shard = 0);

    /**
     * Re-queue a dispatched request that yielded at a solver
     * checkpoint. Keeps the ticket it already holds and bypasses
     * the capacity bound (it had a slot before the preemption), so
     * it can never be rejected. Re-enters its home shard's queue
     * with a fresh start tag at the current virtual time -- the
     * tenant is not charged a second finish-tag increment for the
     * same request. Records a Preempt decision.
     */
    void requeuePreempted(const QueueEntry &entry);

    /**
     * Reap one queued entry (cancelled / expired before dispatch):
     * removes it, records a Drop decision, and releases its ticket.
     * Returns false when @p id is not queued.
     */
    bool drop(std::uint64_t id, SolveStatus reason);

    /** Release the ticket of a dispatched request that finished. */
    void complete(const std::string &tenant);

    std::size_t
    queueDepth() const
    {
        std::size_t n = 0;
        for (const auto &q : queues)
            n += q.size();
        return n;
    }

    std::size_t
    queueDepth(unsigned shard) const
    {
        return shard < queues.size() ? queues[shard].size() : 0;
    }

    /** Would nextBatch(shard) dispatch something right now? True
     *  when the shard's own queue is non-empty or another shard
     *  holds a migratable backlog (>= 2). The worker wait
     *  predicate: sleeping on this never misses runnable work and
     *  never spins on work it cannot steal. */
    bool
    runnable(unsigned shard) const
    {
        if (shard < queues.size() && !queues[shard].empty())
            return true;
        for (std::size_t s = 0; s < queues.size(); ++s)
            if (s != shard && queues[s].size() >= 2)
                return true;
        return false;
    }

    /** Ids of every queued entry, shard-major in queue order
     *  (reap scans). */
    std::vector<std::uint64_t>
    queuedIds() const
    {
        std::vector<std::uint64_t> ids;
        for (const auto &q : queues)
            for (const Slot &s : q)
                ids.push_back(s.entry.id);
        return ids;
    }

    /** Live (queued + running) requests a tenant holds tickets for. */
    int
    tenantLive(const std::string &tenant) const
    {
        auto it = live.find(tenant);
        return it == live.end() ? 0 : it->second;
    }

    /** Dispatches executed by each shard (migrated batches count
     *  for the executing shard, not the donor). */
    const std::vector<std::uint64_t> &
    shardDispatches() const
    {
        return dispatchesPerShard;
    }

    /** Batches stolen by an idle shard from another's queue. */
    std::uint64_t migrations() const { return migrationCount; }

    const std::vector<Decision> &decisions() const { return log; }
    void clearDecisions() { log.clear(); }

    /** Canonical one-line-per-decision serialization of the log --
     *  byte-identical across replays of the same call sequence. */
    std::string dumpDecisions() const;

  private:
    /** Queued entry plus its fair-share start tag. */
    struct Slot
    {
        QueueEntry entry;
        double startTag = 0.0;
    };

    int ticketLimit(const std::string &tenant) const;
    double tenantWeight(const std::string &tenant) const;
    void publishDepth(unsigned shard) const;

    Config cfg;
    std::vector<std::deque<Slot>> queues; //!< one per shard
    std::unordered_map<std::string, int> limits;
    std::unordered_map<std::string, int> live;
    std::unordered_map<std::string, double> weights;
    /** SFQ virtual time / per-tenant last finish tag. */
    double virtualTime = 0.0;
    std::unordered_map<std::string, double> lastFinish;
    std::vector<Decision> log;
    std::uint64_t nextSeq = 0;
    std::vector<std::uint64_t> dispatchesPerShard;
    std::uint64_t migrationCount = 0;
};

} // namespace msc

#endif // MSC_SERVICE_SCHEDULER_HH
