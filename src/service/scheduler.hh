/**
 * @file
 * Admission scheduler: ticket-style per-tenant accounting, a bounded
 * queue with structured Overloaded rejection, priority + FIFO
 * dispatch, and same-operator coalescing within a request-count
 * batching window.
 *
 * The scheduler is a pure data structure -- no threads, no clocks.
 * The service drives it under one lock, and every decision depends
 * only on the sequence of calls, so a fixed submission order replays
 * an identical decision log (the replay-determinism contract the
 * tests pin). That is also why the batching window is counted in
 * requests present in the queue at dispatch time, never in wall
 * time: a window of w coalesces min(w, queued same-key requests)
 * and NEVER waits for more to arrive, so w = 1 degenerates to
 * sequential dispatch and timing cannot change any decision.
 *
 * Ticket accounting (after the accelerator-allocation scheme in
 * virtual-acc-app): each tenant holds a fixed number of tickets;
 * one live (queued or running) request consumes one ticket, ticket
 * exhaustion -- like queue overflow -- rejects at admission with
 * SolveStatus::Overloaded rather than blocking, so a flooding
 * tenant saturates its own allowance while others keep being
 * admitted (the fairness-under-saturation contract).
 */

#ifndef MSC_SERVICE_SCHEDULER_HH
#define MSC_SERVICE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/exec_context.hh"
#include "service/prepare_cache.hh"

namespace msc {

/** One queued unit of work, as the scheduler sees it. */
struct QueueEntry
{
    std::uint64_t id = 0;
    std::string tenant;
    int priority = 0;        //!< higher dispatches first
    bool coalescable = false; //!< CG-kind: may join a lockstep panel
    CacheKey key;            //!< prepare-cache key (coalesce match)
};

enum class DecisionKind
{
    Admit,    //!< ticket + queue slot granted
    Reject,   //!< Overloaded: queue full or tenant out of tickets
    Dispatch, //!< entry (or coalesced batch) handed to a shard
    Drop,     //!< reaped from the queue (cancel / deadline)
};

const char *toString(DecisionKind kind);

/** One replayable scheduler decision. */
struct Decision
{
    DecisionKind kind = DecisionKind::Admit;
    std::uint64_t seq = 0;       //!< decision sequence number
    std::uint64_t requestId = 0; //!< head request
    std::string tenant;
    int priority = 0;
    /** Dispatch: every coalesced request id, head first, in queue
     *  order. Singleton dispatches carry just the head. */
    std::vector<std::uint64_t> batch;
    /** Reject: Overloaded. Drop: Cancelled / DeadlineExceeded. */
    SolveStatus reason = SolveStatus::Converged;
};

class AdmissionScheduler
{
  public:
    struct Config
    {
        std::size_t queueCapacity = 64;
        int defaultTickets = 4;  //!< per-tenant live-request bound
        unsigned batchWindow = 1; //!< max requests per coalesced
                                  //!< dispatch (1 = no coalescing)
    };

    explicit AdmissionScheduler(const Config &config) : cfg(config)
    {}

    const Config &config() const { return cfg; }

    /** Override one tenant's ticket allowance (before traffic). */
    void
    setTenantTickets(const std::string &tenant, int tickets)
    {
        limits[tenant] = tickets;
    }

    /**
     * Admission: grants a queue slot + one tenant ticket, or
     * records a Reject decision and returns false (the caller
     * completes the request as Overloaded).
     */
    bool tryAdmit(const QueueEntry &entry);

    /**
     * Dispatch: highest priority first, FIFO within a priority.
     * When the head is coalescable and the window allows, every
     * same-key coalescable entry already in the queue (any tenant,
     * any priority -- riding along only ever helps them) joins the
     * batch, up to batchWindow entries, in queue order. Returns the
     * batch in dispatch order (empty when the queue is empty).
     * Tickets stay held until complete().
     */
    std::vector<QueueEntry> nextBatch();

    /**
     * Reap one queued entry (cancelled / expired before dispatch):
     * removes it, records a Drop decision, and releases its ticket.
     * Returns false when @p id is not queued.
     */
    bool drop(std::uint64_t id, SolveStatus reason);

    /** Release the ticket of a dispatched request that finished. */
    void complete(const std::string &tenant);

    std::size_t queueDepth() const { return queue.size(); }

    /** Ids of every queued entry, in queue order (reap scans). */
    std::vector<std::uint64_t>
    queuedIds() const
    {
        std::vector<std::uint64_t> ids;
        ids.reserve(queue.size());
        for (const QueueEntry &e : queue)
            ids.push_back(e.id);
        return ids;
    }

    /** Live (queued + running) requests a tenant holds tickets for. */
    int
    tenantLive(const std::string &tenant) const
    {
        auto it = live.find(tenant);
        return it == live.end() ? 0 : it->second;
    }

    const std::vector<Decision> &decisions() const { return log; }
    void clearDecisions() { log.clear(); }

  private:
    int ticketLimit(const std::string &tenant) const;

    Config cfg;
    std::deque<QueueEntry> queue;
    std::unordered_map<std::string, int> limits;
    std::unordered_map<std::string, int> live;
    std::vector<Decision> log;
    std::uint64_t nextSeq = 0;
};

} // namespace msc

#endif // MSC_SERVICE_SCHEDULER_HH
