/**
 * @file
 * SolverService: the long-running, multi-tenant solver runtime the
 * ROADMAP's north star calls for, embedded as a library.
 *
 * A request names a tenant, a system (matrix + RHS + operator
 * config), a solver kind, and per-request execution controls
 * (deadline, priority, cancellation). submit() returns a
 * RequestHandle immediately: admission either grants a queue slot
 * and a tenant ticket, or completes the handle right away with
 * SolveStatus::Overloaded -- the service never blocks a caller on a
 * full queue. Admission routes the request to its home shard by
 * operator key; dispatch serves, within the highest priority band,
 * the tenant owed service under weighted fair share, earliest
 * deadline first (scheduler.hh), coalesces same-operator CG
 * requests already in the shard's queue into one lockstep panel
 * (lockstepConjugateGradient), resolves the prepared operator
 * through the keyed PrepareCache (one replica per shard), and runs
 * the solve with the request's ExecContext attached, so cancel()
 * and deadlines land mid-iteration -- and a short-deadline arrival
 * can ask a long-running solve to yield at its next CG checkpoint
 * boundary and re-queue (cooperative preemption; the resumed solve
 * is bitwise identical to an uninterrupted one).
 *
 * Determinism: with workers = 0 the service runs no threads; the
 * caller pumps dispatches on its own thread with runUntilIdle(),
 * and every scheduler decision, cache population, and solve result
 * is a pure function of the submission sequence -- the replay tests
 * pin exactly that. With workers >= 1 the same pump runs on
 * background shard threads; per-request RESULTS stay bit-identical
 * (the lockstep/batch bitwise contracts), while decision interleaving
 * follows real scheduling.
 *
 * Coalescing changes no answer bit: a lockstep panel advances k
 * independent CG recurrences through one applyBatch per iteration,
 * and applyBatch is pinned bitwise to the k sequential applies, so
 * a coalesced request returns exactly the bits a solo solve
 * produces -- the batching window is purely a throughput lever.
 */

#ifndef MSC_SERVICE_SERVICE_HH
#define MSC_SERVICE_SERVICE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/exec_context.hh"
#include "service/prepare_cache.hh"
#include "service/scheduler.hh"
#include "solver/solver.hh"

namespace msc {

/** One solve, as a tenant submits it. */
struct SolveRequest
{
    std::string tenant = "default";
    int priority = 0; //!< higher dispatches first
    /** The system. Not owned; must stay alive until the request is
     *  terminal (the prepare cache copies it on first sight of the
     *  content key, but admission hashes it in place). */
    const Csr *matrix = nullptr;
    /**
     * Alternative to `matrix`: resolve the system from a file at
     * submission. A valid sidecar artifact (path + ".mscbin", see
     * sparse/binio.hh) or a direct .mscbin path is mapped zero-copy
     * -- admission then keys the cache from the artifact's stored
     * digest and a cache miss skips parse+preprocess -- while plain
     * Matrix Market text falls back to parsing. Loaded matrices are
     * kept in a bounded LRU (ServiceConfig::loadedCapBytes), so
     * repeat submissions of the same path share one mapping without
     * letting many distinct paths grow memory without bound; a path
     * whose file mtime changed since it was loaded is reloaded, so
     * a regenerated matrix is never served stale. Ignored when
     * `matrix` is set; a load failure completes the request as
     * Failed.
     */
    std::string matrixFile;
    OperatorConfig op; //!< backend + placement/device config
    std::vector<double> b; //!< right-hand side (owned)
    SolverKind kind = SolverKind::Cg;
    double tolerance = 1e-10;
    int maxIterations = 5000;
    /** Relative deadline, armed at submission; zero = none. Expires
     *  queued requests at dispatch and running solves at the next
     *  iteration poll. */
    std::chrono::nanoseconds deadline{0};
    /** Chaos/testing surface: fire the request's cancel token on
     *  the n-th ExecContext poll (see cancelAfterChecks). */
    std::uint64_t cancelAfterChecks = 0;
    /** Chaos/testing surface: raise the request's yield flag on the
     *  n-th ExecContext poll, forcing a cooperative preemption at
     *  the next CG checkpoint boundary (the deterministic stand-in
     *  for the deadline-driven trigger, which needs real worker
     *  concurrency to fire). Zero = never. */
    std::uint64_t yieldAfterChecks = 0;
};

enum class RequestState
{
    Queued,
    Running,
    Done,
};

/** Terminal record of one request. */
struct RequestResult
{
    /** Structured outcome. Overloaded = rejected at admission;
     *  Failed = an execution fault (alloc failure, worker crash)
     *  surfaced as a status instead of an exception. */
    SolveStatus status = SolveStatus::Failed;
    SolverResult solve;    //!< solver record (when a solve ran)
    std::vector<double> x; //!< solution iterate (empty if rejected)
    bool coalesced = false; //!< ran inside a lockstep panel
    unsigned batchWidth = 1; //!< panel width it dispatched in
    bool cacheHit = false;  //!< prepared operator came from cache
    /** Times the solve yielded at a checkpoint and was re-queued
     *  before reaching this terminal state. The result is bitwise
     *  identical to an uninterrupted solve regardless. */
    unsigned preemptions = 0;
    std::string error;      //!< Failed: what happened
};

namespace servicedetail {
struct PendingRequest;
struct ServiceCore;
} // namespace servicedetail

/**
 * Caller-side view of one submitted request. Copyable; all copies
 * observe the same request. A default-constructed handle is
 * invalid.
 */
class RequestHandle
{
  public:
    RequestHandle() = default;

    bool valid() const { return static_cast<bool>(p); }
    std::uint64_t id() const;
    RequestState state() const;
    bool done() const { return state() == RequestState::Done; }

    /**
     * Block until terminal and return the result (valid for the
     * handle's lifetime). With workers = 0 nothing advances the
     * queue in the background: pump SolverService::runUntilIdle()
     * before waiting.
     */
    const RequestResult &wait() const;

    /**
     * Fire the request's cancel token. A queued request is reaped
     * at the next dispatch; a running one stops at its next
     * iteration poll with the last completed iterate. Idempotent.
     */
    void cancel();

  private:
    friend class SolverService;
    std::shared_ptr<servicedetail::PendingRequest> p;
    std::shared_ptr<servicedetail::ServiceCore> core;
};

struct ServiceConfig
{
    /** Shard worker threads. 0 = deterministic manual mode: the
     *  caller pumps with runUntilIdle() (all shards, round-robin)
     *  or pumpShard(). Worker w serves shard w mod shards, so
     *  workers >= scheduler.shards keeps every shard draining. */
    int workers = 0;
    AdmissionScheduler::Config scheduler;
    std::size_t cacheBytes = 256ull << 20;
    /** Cap on matrices resolved from `matrixFile` paths (parsed
     *  bytes or mapped artifact file bytes). Least-recently-used
     *  unreferenced entries are evicted past the cap; entries still
     *  pinned by a live request are never evicted underneath it. */
    std::size_t loadedCapBytes = 256ull << 20;
};

/** Aggregate service counters (monotonic since construction). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t rejected = 0; //!< Overloaded at admission
    std::uint64_t completed = 0; //!< solver ran to a terminal state
    std::uint64_t cancelled = 0;
    std::uint64_t deadlineExpired = 0;
    std::uint64_t failed = 0;  //!< execution faults
    std::uint64_t batches = 0; //!< dispatches (any width)
    std::uint64_t coalescedBatches = 0; //!< dispatches with k > 1
    /** Cooperative checkpoint yields that were re-queued. */
    std::uint64_t preempted = 0;
    /** Batches an idle shard stole from another shard's queue. */
    std::uint64_t migrated = 0;
    /** Dispatches executed per shard (index = shard). */
    std::vector<std::uint64_t> shardDispatches;
};

class SolverService
{
  public:
    explicit SolverService(const ServiceConfig &config = {});
    ~SolverService();

    SolverService(const SolverService &) = delete;
    SolverService &operator=(const SolverService &) = delete;

    const ServiceConfig &config() const { return cfg; }

    /**
     * Override one tenant's ticket allowance. Safe mid-traffic:
     * live requests keep their tickets and drain normally; the new
     * limit gates admissions from the next submit on.
     */
    void setTenantTickets(const std::string &tenant, int tickets);

    /** Fair-share weight for one tenant (default 1.0). Dispatch
     *  order under contention follows weights; tickets still bound
     *  live requests. */
    void setTenantWeight(const std::string &tenant, double weight);

    /**
     * Admit a request. Never blocks: a full queue or an
     * out-of-tickets tenant yields an immediately-terminal handle
     * with SolveStatus::Overloaded.
     */
    RequestHandle submit(SolveRequest req);

    /**
     * Drain the queue on the calling thread: dispatch-and-solve
     * across all shards, round-robin, until no dispatchable work
     * remains. The manual-mode pump; safe (if pointless) to call
     * while workers run.
     */
    void runUntilIdle();

    /**
     * One dispatch cycle for @p shard on the calling thread (reap,
     * then dispatch-and-solve one batch; an empty shard migrates
     * work per the scheduler's policy). Returns false when nothing
     * was dispatched or reaped. Deterministic single-shard stepping
     * for tests and benches.
     */
    bool pumpShard(unsigned shard);

    /**
     * Stop accepting work, reap every queued request as Cancelled,
     * finish in-flight solves, and join the workers. Idempotent;
     * the destructor calls it.
     */
    void stop();

    ServiceStats stats() const;
    PrepareCache::Stats cacheStats() const;
    /** Entries / bytes currently held by the matrixFile LRU. */
    std::size_t loadedMatrixCount() const;
    std::size_t loadedMatrixBytes() const;
    std::size_t queueDepth() const;
    /** Snapshot of the scheduler's replayable decision log. */
    std::vector<Decision> decisionLog() const;
    /** Canonical serialization of the decision log (replays of one
     *  submission sequence produce byte-identical text). */
    std::string decisionLogText() const;

  private:
    ServiceConfig cfg;
    std::shared_ptr<servicedetail::ServiceCore> core;
    std::vector<std::thread> workers;
};

} // namespace msc

#endif // MSC_SERVICE_SERVICE_HH
