/**
 * @file
 * System-level chaos harness for execution-fault testing.
 *
 * PR 1's fault campaigns perturb the *device* (stuck cells, dead
 * crossbars); this harness perturbs the *execution*: worker-task
 * delays, thrown worker exceptions, workspace allocation failures,
 * and forced mid-solve cancellations. Together with
 * runtime/exec_context.hh it lets the tests prove the three
 * robustness claims the service runtime needs:
 *
 *  - cancellation is prompt (one iteration / one block batch);
 *  - every injected failure is either absorbed by the
 *    ResilientSolver ladder or surfaces as a structured status --
 *    never a crash, leak, or hang (verified under ASan/TSan);
 *  - with no chaos armed, results are byte-identical to an
 *    uninstrumented run.
 *
 * Injection sites are the process-global hooks the production code
 * already pays one relaxed load for: ThreadPool::setTaskHook (per
 * chunk) and SolverWorkspace::setAllocHook (per scratch-vector
 * grant). Draws are pure functions of (campaign seed, site,
 * parallel-section sequence, chunk index) or of the allocation
 * sequence number, so a campaign at a fixed seed and thread count
 * injects the same faults at the same sites on every run -- chaos
 * runs are reproducible, which is what makes their failures
 * debuggable.
 *
 * The engine is RAII and exclusive: constructing it installs the
 * hooks, destruction uninstalls them. At most one engine may exist
 * at a time (enforced with panic()).
 */

#ifndef MSC_FAULT_CHAOS_HH
#define MSC_FAULT_CHAOS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "runtime/exec_context.hh"

namespace msc {

/** What to inject, and how often. Rates are per injection site
 *  (per chunk / per allocation), in [0, 1]. */
struct ChaosCampaign
{
    std::uint64_t seed = 1;
    /** Worker-task delay: rate per chunk, busy duration. Models a
     *  hung or slow shard without stopping the campaign. */
    double taskDelayRate = 0.0;
    unsigned taskDelayUs = 20;
    /** Worker-task exception (ChaosTaskError) rate per chunk:
     *  models a crashing shard; the pool must contain it. */
    double taskThrowRate = 0.0;
    /** std::bad_alloc rate per SolverWorkspace::vec() grant:
     *  models memory pressure mid-solve. */
    double allocFailRate = 0.0;
    /** When > 0: arm(ctx) fires the context's cancel token on the
     *  n-th shouldStop() poll -- a deterministic forced mid-solve
     *  cancellation. */
    std::uint64_t cancelAfterChecks = 0;
};

/** Thrown from inside a worker task by the chaos engine. */
class ChaosTaskError : public std::runtime_error
{
  public:
    explicit ChaosTaskError(std::uint64_t section,
                            std::size_t chunk)
        : std::runtime_error("chaos: injected worker-task failure"),
          sect(section), chunkBegin(chunk)
    {}

    std::uint64_t section() const { return sect; }
    std::size_t chunk() const { return chunkBegin; }

  private:
    std::uint64_t sect;
    std::size_t chunkBegin;
};

/** Injection tally (snapshot via ChaosEngine::stats()). */
struct ChaosStats
{
    std::uint64_t taskDelays = 0;
    std::uint64_t taskThrows = 0;
    std::uint64_t allocFailures = 0;
    std::uint64_t armedCancels = 0;
};

/**
 * RAII installer of the chaos hooks. Scope it around the code under
 * test:
 *
 *   ChaosCampaign camp;
 *   camp.taskThrowRate = 0.01;
 *   ChaosEngine chaos(camp);
 *   auto res = resilient.solve(b, x);   // faults injected here
 *   // chaos.stats().taskThrows > 0, res.status is structured
 */
class ChaosEngine
{
  public:
    explicit ChaosEngine(const ChaosCampaign &campaign);
    ~ChaosEngine();

    ChaosEngine(const ChaosEngine &) = delete;
    ChaosEngine &operator=(const ChaosEngine &) = delete;

    /** Arm the campaign's forced cancellation on @p ctx
     *  (no-op when cancelAfterChecks == 0). */
    void arm(ExecContext &ctx);

    const ChaosCampaign &campaign() const { return camp; }

    /** Snapshot of the injection tally so far. */
    ChaosStats stats() const;

  private:
    static void taskHook(std::uint64_t section,
                         std::size_t chunkBegin);
    static void allocHook(std::size_t n);

    void onTask(std::uint64_t section, std::size_t chunkBegin);
    void onAlloc();

    ChaosCampaign camp;
    /** Section sequence at install time: draws key on the offset, so
     *  a campaign replays identically however many parallel sections
     *  ran before the engine existed. */
    std::uint64_t sectionBase = 0;
    std::atomic<std::uint64_t> allocSeq{0};
    std::atomic<std::uint64_t> taskDelays{0};
    std::atomic<std::uint64_t> taskThrows{0};
    std::atomic<std::uint64_t> allocFailures{0};
    std::atomic<std::uint64_t> armedCancels{0};
};

} // namespace msc

#endif // MSC_FAULT_CHAOS_HH
