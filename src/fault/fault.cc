#include "fault/fault.hh"

#include <algorithm>
#include <set>
#include <string>

#include "cluster/hw_cluster.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace msc {

namespace {

/** splitmix64 step, for deriving per-unit sub-seeds. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

void
checkRate(double v, const char *name)
{
    if (v < 0.0 || v > 1.0)
        fatal("fault campaign: ", name, " must be in [0, 1], got ",
              v);
}

} // namespace

FaultCampaign
faultCampaignFromJson(const JsonValue &j)
{
    static const std::set<std::string> allowed = {
        "seed",           "stuckCellRate",
        "stuckAtOneFraction", "transientUpsetRate",
        "saturationRate", "driftPerRead",
        "driftScrubThreshold", "stuckColumnRate",
        "deadCrossbarRate", "forcedDeadBlock",
    };
    for (const auto &[key, value] : j.asObject()) {
        (void)value;
        if (allowed.find(key) == allowed.end())
            fatal("fault campaign: unknown key '", key, "'");
    }

    FaultCampaign c;
    c.seed = static_cast<std::uint64_t>(
        j.numberOr("seed", static_cast<double>(c.seed)));
    c.stuckCellRate = j.numberOr("stuckCellRate", c.stuckCellRate);
    c.stuckAtOneFraction =
        j.numberOr("stuckAtOneFraction", c.stuckAtOneFraction);
    c.transientUpsetRate =
        j.numberOr("transientUpsetRate", c.transientUpsetRate);
    c.saturationRate = j.numberOr("saturationRate", c.saturationRate);
    c.driftPerRead = j.numberOr("driftPerRead", c.driftPerRead);
    c.driftScrubThreshold =
        j.numberOr("driftScrubThreshold", c.driftScrubThreshold);
    c.stuckColumnRate =
        j.numberOr("stuckColumnRate", c.stuckColumnRate);
    c.deadCrossbarRate =
        j.numberOr("deadCrossbarRate", c.deadCrossbarRate);
    c.forcedDeadBlock = static_cast<int>(
        j.numberOr("forcedDeadBlock", c.forcedDeadBlock));

    checkRate(c.stuckCellRate, "stuckCellRate");
    checkRate(c.stuckAtOneFraction, "stuckAtOneFraction");
    checkRate(c.transientUpsetRate, "transientUpsetRate");
    checkRate(c.saturationRate, "saturationRate");
    checkRate(c.stuckColumnRate, "stuckColumnRate");
    checkRate(c.deadCrossbarRate, "deadCrossbarRate");
    if (c.driftPerRead < 0.0)
        fatal("fault campaign: driftPerRead must be >= 0");
    return c;
}

FaultInjector::FaultInjector(const FaultCampaign &campaign)
    : camp(campaign), transientRng(mix(campaign.seed ^ ~0ULL))
{
}

Rng
FaultInjector::streamFor(std::uint64_t unit) const
{
    return Rng(mix(camp.seed) ^ mix(unit + 1));
}

FaultStats
FaultInjector::inject(HwCluster &hw, std::uint64_t unit)
{
    Rng rng = streamFor(unit);
    FaultStats drawn;
    const unsigned slices = hw.matrixSlices();
    const unsigned size = hw.config().size;

    if (camp.stuckCellRate > 0.0) {
        for (unsigned b = 0; b < slices; ++b) {
            for (unsigned r = 0; r < size; ++r) {
                for (unsigned c = 0; c < size; ++c) {
                    if (!rng.chance(camp.stuckCellRate))
                        continue;
                    hw.injectStuckCell(
                        b, r, c, rng.chance(camp.stuckAtOneFraction));
                    ++drawn.stuckCells;
                }
            }
        }
    }
    if (slices > 0 && rng.chance(camp.stuckColumnRate)) {
        stuckCols.push_back(
            {static_cast<unsigned>(rng.below(slices)),
             static_cast<unsigned>(rng.below(size))});
        ++drawn.stuckColumns;
    }
    if (slices > 0 && (rng.chance(camp.deadCrossbarRate) ||
                       camp.forcedDeadBlock ==
                           static_cast<int>(unit))) {
        hw.killSlice(static_cast<unsigned>(rng.below(slices)));
        ++drawn.deadCrossbars;
    }

    hw.attachInjector(this);
    totals.stuckCells += drawn.stuckCells;
    totals.stuckColumns += drawn.stuckColumns;
    totals.deadCrossbars += drawn.deadCrossbars;
    return drawn;
}

bool
FaultInjector::columnStuck(unsigned slice, unsigned col) const
{
    return std::find(stuckCols.begin(), stuckCols.end(),
                     std::make_pair(slice, col)) != stuckCols.end();
}

std::int64_t
FaultInjector::faultedRead(unsigned slice, unsigned col,
                           std::int64_t count, std::int64_t fullScale)
{
    if (columnStuck(slice, col)) {
        ++totals.saturatedConversions;
        return fullScale;
    }
    if (camp.transientUpsetRate > 0.0 &&
        transientRng.chance(camp.transientUpsetRate)) {
        if (transientRng.chance(camp.saturationRate)) {
            ++totals.saturatedConversions;
            return fullScale;
        }
        // Flip one bit of the converted count; the ADC output width
        // is ceil(log2(fullScale + 1)) bits.
        unsigned bits = 1;
        while ((std::int64_t{1} << bits) <= fullScale)
            ++bits;
        const auto p =
            static_cast<unsigned>(transientRng.below(bits));
        count ^= std::int64_t{1} << p;
        count = std::clamp<std::int64_t>(count, 0, fullScale);
        ++totals.transientUpsets;
    }
    return count;
}

} // namespace msc
