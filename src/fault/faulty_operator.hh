/**
 * @file
 * Fast functional solver operator with value-level fault injection.
 *
 * ClusterArithmeticOperator proves the arithmetic bit-exactly but is
 * orders of magnitude too slow for solver-scale fault campaigns.
 * FaultyAccelOperator keeps the same structure -- blocking
 * preprocessor, one mapped unit per block, exact local-processor CSR
 * for the leftovers -- and injects the *surviving* (post-AN-
 * correction) manifestation of each fault mechanism directly on the
 * block outputs:
 *
 *  - stuck cells  -> static coefficient perturbations, cleared by a
 *                    rewrite with spare-row remapping (reprogram);
 *  - drift        -> relative output error growing with the number
 *                    of MVMs since the last program();
 *  - transients   -> sporadic large output errors, occasionally a
 *                    saturated (non-finite) conversion;
 *  - stuck ADC column  -> one block row pinned at full scale; a
 *                    rewrite cannot fix the converter;
 *  - dead crossbar     -> the whole block contributes nothing.
 *
 * It implements RecoverableOperator, so ResilientSolver can scrub,
 * reprogram, and degrade it mid-solve. All randomness derives from
 * the campaign seed (per-block programming streams + one transient
 * stream per (apply, block)), making campaigns bit-reproducible for
 * any thread count: apply() fans the blocks across the global
 * thread pool and reduces the partial outputs in fixed block order.
 */

#ifndef MSC_FAULT_FAULTY_OPERATOR_HH
#define MSC_FAULT_FAULTY_OPERATOR_HH

#include <cstdint>
#include <vector>

#include "blocking/blocking.hh"
#include "fault/fault.hh"
#include "solver/resilient.hh"

namespace msc {

class FaultyAccelOperator : public RecoverableOperator
{
  public:
    FaultyAccelOperator(const Csr &m, const FaultCampaign &campaign,
                        const BlockingConfig &blocking
                        = defaultBlocking());

    std::int32_t rows() const override { return matRows; }
    std::int32_t cols() const override { return matCols; }
    void apply(std::span<const double> x,
               std::span<double> y) override;

    /**
     * Batched multi-RHS apply: column c replays the transient stream
     * of apply sequence (entry applySeq + c) and the drift level of
     * read count (entry reads + c), so outputs, fault counters, and
     * block read counts are bitwise identical to k apply() calls in
     * column order -- for any thread count.
     */
    void applyBatch(std::span<const double> X, std::span<double> Y,
                    unsigned k) override;

    /** Polled per block batch inside apply() (see LinearOperator). */
    void
    setExecContext(const ExecContext *ctx) override
    {
        exec = ctx;
    }

    // RecoverableOperator maintenance surface.
    std::size_t blockCount() const override;
    std::vector<std::size_t> scrub() override;
    bool reprogram(std::size_t block) override;
    void degrade(std::size_t block) override;
    bool isDegraded(std::size_t block) const override;

    const BlockPlan &blockPlan() const { return plan; }
    const FaultCampaign &campaign() const { return camp; }
    /** Faults injected at programming time (all blocks). */
    const FaultStats &injected() const { return programStats; }
    /** Run-time (transient) fault counters so far. */
    const FaultStats &runtimeStats() const { return applyStats; }

    // Per-block introspection (tests, benches).
    bool blockDead(std::size_t block) const;
    int blockStuckColumn(std::size_t block) const;
    std::size_t blockStuckCells(std::size_t block) const;
    std::uint64_t blockReads(std::size_t block) const;

    /** Block sizes suited to the small matrices fault campaigns
     *  run on (mirrors ClusterArithmeticOperator::smallSizes). */
    static BlockingConfig
    defaultBlocking()
    {
        BlockingConfig cfg;
        cfg.sizes = {64, 32, 16};
        cfg.densityFactor = 2.0;
        return cfg;
    }

  private:
    /** A surviving stuck-cell error on one mapped coefficient. */
    struct StuckGlitch
    {
        std::size_t elem = 0; //!< index into the block's elems
        double delta = 0.0;   //!< additive coefficient error
    };

    struct BlockState
    {
        bool dead = false;
        bool exact = false;   //!< degraded to the digital CSR path
        int stuckColumn = -1; //!< block row pinned by a bad ADC
        double stuckValue = 0.0;
        std::vector<StuckGlitch> stuck;
        std::vector<std::int8_t> driftDir; //!< per block row, +/-1
        std::uint64_t reads = 0; //!< MVMs since last program()
    };

    /** Per-block partial output and fault counters for one apply();
     *  written concurrently, merged in fixed block order. */
    struct ApplyScratch
    {
        std::vector<double> yLocal;
        FaultStats stats;
        /** Batched apply: per-column fault tallies (yLocal then
         *  holds a block.size x k column-major panel). */
        std::vector<FaultStats> colStats;
    };

    void drawProgrammingFaults(std::size_t block);

    FaultCampaign camp;
    FaultInjector injector;
    BlockPlan plan;
    std::vector<BlockState> state;
    std::vector<ApplyScratch> scratch;
    FaultStats programStats;
    FaultStats applyStats;
    /** apply() calls so far: transient-upset streams derive from
     *  (campaign seed, apply sequence, block), so run-time faults are
     *  reproducible for any thread count. */
    std::uint64_t applySeq = 0;
    std::int32_t matRows = 0;
    std::int32_t matCols = 0;
    const ExecContext *exec = nullptr; //!< optional, not owned
};

} // namespace msc

#endif // MSC_FAULT_FAULTY_OPERATOR_HH
