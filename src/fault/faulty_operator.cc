#include "fault/faulty_operator.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

// Injected- and corrected-fault tallies. Apply-time counters fold
// from per-block scratch in fixed block order; programming-time
// counters fire once per drawn fault. Both are lane-count
// independent (streams are keyed by block / apply sequence).
constinit telemetry::Counter
    ctrTransients{"fault.transient_upsets"};
constinit telemetry::Counter
    ctrSaturated{"fault.saturated_conversions"};
constinit telemetry::Counter ctrStuckCells{"fault.stuck_cells"};
constinit telemetry::Counter
    ctrStuckColumns{"fault.stuck_columns"};
constinit telemetry::Counter
    ctrDeadCrossbars{"fault.dead_crossbars"};
constinit telemetry::Counter ctrReprograms{"fault.reprograms"};
constinit telemetry::Counter ctrDegrades{"fault.degrades"};
constinit telemetry::Counter ctrScrubScans{"fault.scrub_scans"};
constinit telemetry::Counter
    ctrBlockSpans{"fault.block_spans"};

/** Full-scale value a saturated ADC column pins its output to:
 *  far outside any well-scaled block's range, but finite, so the
 *  failure surfaces as divergence/stagnation rather than NaN. */
constexpr double stuckFullScale = 1e30;

/** Stream-id space for run-time transient upsets: offset past the
 *  per-block programming units (block indices are < 2^32), then one
 *  unit per (apply sequence, block). */
std::uint64_t
transientUnit(std::uint64_t seq, std::size_t nBlocks, std::size_t k)
{
    return (std::uint64_t{1} << 32) +
           seq * static_cast<std::uint64_t>(nBlocks) +
           static_cast<std::uint64_t>(k);
}

} // namespace

FaultyAccelOperator::FaultyAccelOperator(
    const Csr &m, const FaultCampaign &campaign,
    const BlockingConfig &blocking)
    : camp(campaign), injector(campaign),
      plan(planBlocks(m, blocking)),
      matRows(m.rows()), matCols(m.cols())
{
    state.resize(plan.blocks.size());
    scratch.resize(plan.blocks.size());
    for (std::size_t k = 0; k < plan.blocks.size(); ++k)
        drawProgrammingFaults(k);
}

void
FaultyAccelOperator::drawProgrammingFaults(std::size_t block)
{
    const MatrixBlock &blk = plan.blocks[block];
    BlockState &st = state[block];
    Rng rng = injector.streamFor(block);

    st.dead = rng.chance(camp.deadCrossbarRate) ||
              camp.forcedDeadBlock == static_cast<int>(block);
    if (st.dead) {
        ++programStats.deadCrossbars;
        ctrDeadCrossbars.add();
    }

    if (rng.chance(camp.stuckColumnRate)) {
        st.stuckColumn =
            static_cast<int>(rng.below(blk.size));
        st.stuckValue =
            (rng.chance(0.5) ? 1.0 : -1.0) * stuckFullScale;
        ++programStats.stuckColumns;
        ctrStuckColumns.add();
    }

    if (camp.stuckCellRate > 0.0) {
        for (std::size_t e = 0; e < blk.elems.size(); ++e) {
            if (!rng.chance(camp.stuckCellRate))
                continue;
            // A stuck cell the AN code could not absorb perturbs the
            // mapped coefficient by a bit-weighted fraction of its
            // magnitude.
            const double mag = std::fabs(blk.elems[e].val);
            StuckGlitch g;
            g.elem = e;
            g.delta = (rng.chance(0.5) ? 1.0 : -1.0) *
                      std::ldexp(mag != 0.0 ? mag : 1.0,
                                 -static_cast<int>(rng.range(0, 10)));
            st.stuck.push_back(g);
            ++programStats.stuckCells;
            ctrStuckCells.add();
        }
    }

    st.driftDir.assign(blk.size, 1);
    if (camp.driftPerRead > 0.0) {
        for (auto &d : st.driftDir)
            d = rng.chance(0.5) ? 1 : -1;
    }
}

void
FaultyAccelOperator::apply(std::span<const double> x,
                           std::span<double> y)
{
    if (x.size() != static_cast<std::size_t>(matCols) ||
        y.size() != static_cast<std::size_t>(matRows))
        fatal("FaultyAccelOperator: dimension mismatch");

    telemetry::Span span("fault.apply");

    // Local-processor part: unblockable leftovers, always exact.
    plan.unblocked.spmv(x, y);

    const double inf = std::numeric_limits<double>::infinity();
    const std::uint64_t seq = applySeq++;

    // Every block works against its own scratch slot and its own
    // transient stream, keyed by (apply sequence, block), so the
    // injected faults and the partial sums are independent of the
    // lane count. The execution context is polled per block batch.
    parallelFor(
        plan.blocks.size(),
        [&](std::size_t k) {
        telemetry::Span blockSpan("fault.block");
        ctrBlockSpans.add();
        const MatrixBlock &blk = plan.blocks[k];
        BlockState &st = state[k];
        ApplyScratch &sc = scratch[k];
        sc.stats = FaultStats{};
        sc.yLocal.assign(blk.size, 0.0);
        std::vector<double> &yLocal = sc.yLocal;

        if (st.exact) {
            // Degraded: the digital CSR path computes this block.
            for (const Triplet &el : blk.elems) {
                const std::int64_t row = blk.rowOrigin + el.row;
                const std::int64_t col = blk.colOrigin + el.col;
                if (row < matRows && col < matCols) {
                    yLocal[static_cast<std::size_t>(el.row)] +=
                        el.val *
                        x[static_cast<std::size_t>(col)];
                }
            }
            return;
        }
        if (st.dead) {
            // A dead crossbar silently contributes nothing.
            ++st.reads;
            return;
        }

        for (const Triplet &el : blk.elems) {
            const std::int64_t col = blk.colOrigin + el.col;
            if (col < matCols) {
                yLocal[static_cast<std::size_t>(el.row)] +=
                    el.val * x[static_cast<std::size_t>(col)];
            }
        }
        for (const StuckGlitch &g : st.stuck) {
            const Triplet &el = blk.elems[g.elem];
            const std::int64_t col = blk.colOrigin + el.col;
            if (col < matCols) {
                yLocal[static_cast<std::size_t>(el.row)] +=
                    g.delta * x[static_cast<std::size_t>(col)];
            }
        }
        if (camp.driftPerRead > 0.0) {
            const double level =
                camp.driftPerRead * static_cast<double>(st.reads);
            for (unsigned i = 0; i < blk.size; ++i)
                yLocal[i] += st.driftDir[i] * level * yLocal[i];
        }
        if (st.stuckColumn >= 0)
            yLocal[static_cast<std::size_t>(st.stuckColumn)] =
                st.stuckValue;
        if (camp.transientUpsetRate > 0.0) {
            Rng transient = injector.streamFor(
                transientUnit(seq, plan.blocks.size(), k));
            if (transient.chance(camp.transientUpsetRate)) {
                const auto row = static_cast<std::size_t>(
                    transient.below(blk.size));
                if (transient.chance(camp.saturationRate)) {
                    yLocal[row] = inf;
                    ++sc.stats.saturatedConversions;
                } else {
                    // A surviving multi-bit upset lands near the top
                    // of the output's significance window.
                    const double mag = std::fabs(yLocal[row]);
                    yLocal[row] +=
                        (transient.chance(0.5) ? 1.0 : -1.0) *
                        std::ldexp(mag != 0.0 ? mag : 1.0,
                                   static_cast<int>(
                                       transient.range(-2, 8)));
                    ++sc.stats.transientUpsets;
                }
            }
        }
        ++st.reads;
        },
        1, exec);

    // Fixed block-order reduction: y and the fault counters come out
    // bit-identical for any thread count.
    for (std::size_t k = 0; k < plan.blocks.size(); ++k) {
        const MatrixBlock &blk = plan.blocks[k];
        const BlockState &st = state[k];
        const ApplyScratch &sc = scratch[k];
        applyStats.transientUpsets += sc.stats.transientUpsets;
        applyStats.saturatedConversions +=
            sc.stats.saturatedConversions;
        ctrTransients.add(sc.stats.transientUpsets);
        ctrSaturated.add(sc.stats.saturatedConversions);
        if (st.dead && !st.exact)
            continue;
        for (unsigned i = 0; i < blk.size; ++i) {
            const std::int64_t row = blk.rowOrigin + i;
            if (row < matRows)
                y[static_cast<std::size_t>(row)] += sc.yLocal[i];
        }
    }
}

void
FaultyAccelOperator::applyBatch(std::span<const double> X,
                                std::span<double> Y, unsigned k)
{
    const auto nc = static_cast<std::size_t>(matCols);
    const auto nr = static_cast<std::size_t>(matRows);
    if (k == 0)
        fatal("FaultyAccelOperator: empty batch");
    if (X.size() != nc * k || Y.size() != nr * k)
        fatal("FaultyAccelOperator: panel size mismatch");

    telemetry::Span span("fault.apply_batch");

    // Local-processor part, per column in column order.
    for (unsigned c = 0; c < k; ++c) {
        plan.unblocked.spmv(X.subspan(c * nc, nc),
                            Y.subspan(c * nr, nr));
    }

    const double inf = std::numeric_limits<double>::infinity();
    const std::uint64_t seq0 = applySeq;
    applySeq += k;

    // Each block replays the k sequential applies against its own
    // scratch panel: column c draws from the transient stream of
    // apply sequence seq0 + c and sees the drift level of read count
    // reads0 + c, so every injected fault lands positionally where
    // k apply() calls would have put it, for any thread count.
    parallelFor(
        plan.blocks.size(),
        [&](std::size_t kb) {
        telemetry::Span blockSpan("fault.block");
        ctrBlockSpans.add(k);
        const MatrixBlock &blk = plan.blocks[kb];
        BlockState &st = state[kb];
        ApplyScratch &sc = scratch[kb];
        sc.colStats.assign(k, FaultStats{});
        sc.yLocal.assign(static_cast<std::size_t>(blk.size) * k,
                         0.0);
        const std::uint64_t reads0 = st.reads;

        for (unsigned c = 0; c < k; ++c) {
            double *yLocal = sc.yLocal.data() +
                             static_cast<std::size_t>(c) * blk.size;
            const std::span<const double> x =
                X.subspan(c * nc, nc);

            if (st.exact) {
                // Degraded: the digital CSR path computes this
                // block (and performs no crossbar read).
                for (const Triplet &el : blk.elems) {
                    const std::int64_t row = blk.rowOrigin + el.row;
                    const std::int64_t col = blk.colOrigin + el.col;
                    if (row < matRows && col < matCols) {
                        yLocal[static_cast<std::size_t>(el.row)] +=
                            el.val *
                            x[static_cast<std::size_t>(col)];
                    }
                }
                continue;
            }
            if (st.dead) {
                // A dead crossbar contributes nothing; its read
                // counter still ticks once per column (below).
                continue;
            }

            for (const Triplet &el : blk.elems) {
                const std::int64_t col = blk.colOrigin + el.col;
                if (col < matCols) {
                    yLocal[static_cast<std::size_t>(el.row)] +=
                        el.val * x[static_cast<std::size_t>(col)];
                }
            }
            for (const StuckGlitch &g : st.stuck) {
                const Triplet &el = blk.elems[g.elem];
                const std::int64_t col = blk.colOrigin + el.col;
                if (col < matCols) {
                    yLocal[static_cast<std::size_t>(el.row)] +=
                        g.delta * x[static_cast<std::size_t>(col)];
                }
            }
            if (camp.driftPerRead > 0.0) {
                const double level =
                    camp.driftPerRead *
                    static_cast<double>(reads0 + c);
                for (unsigned i = 0; i < blk.size; ++i)
                    yLocal[i] += st.driftDir[i] * level * yLocal[i];
            }
            if (st.stuckColumn >= 0)
                yLocal[static_cast<std::size_t>(st.stuckColumn)] =
                    st.stuckValue;
            if (camp.transientUpsetRate > 0.0) {
                Rng transient = injector.streamFor(transientUnit(
                    seq0 + c, plan.blocks.size(), kb));
                if (transient.chance(camp.transientUpsetRate)) {
                    const auto row = static_cast<std::size_t>(
                        transient.below(blk.size));
                    if (transient.chance(camp.saturationRate)) {
                        yLocal[row] = inf;
                        ++sc.colStats[c].saturatedConversions;
                    } else {
                        const double mag = std::fabs(yLocal[row]);
                        yLocal[row] +=
                            (transient.chance(0.5) ? 1.0 : -1.0) *
                            std::ldexp(mag != 0.0 ? mag : 1.0,
                                       static_cast<int>(
                                           transient.range(-2, 8)));
                        ++sc.colStats[c].transientUpsets;
                    }
                }
            }
        }
        // k sequential applies tick reads once each, except on a
        // degraded block (the single path returns before the tick).
        if (!st.exact)
            st.reads += k;
        },
        1, exec);

    // Reduction in (column, block) order -- exactly the order k
    // sequential apply() calls fold, so y and the fault counters are
    // bit-identical for any thread count.
    for (unsigned c = 0; c < k; ++c) {
        const std::span<double> y = Y.subspan(c * nr, nr);
        for (std::size_t kb = 0; kb < plan.blocks.size(); ++kb) {
            const MatrixBlock &blk = plan.blocks[kb];
            const BlockState &st = state[kb];
            const ApplyScratch &sc = scratch[kb];
            const FaultStats &fs = sc.colStats[c];
            applyStats.transientUpsets += fs.transientUpsets;
            applyStats.saturatedConversions +=
                fs.saturatedConversions;
            ctrTransients.add(fs.transientUpsets);
            ctrSaturated.add(fs.saturatedConversions);
            if (st.dead && !st.exact)
                continue;
            const double *yLocal =
                sc.yLocal.data() +
                static_cast<std::size_t>(c) * blk.size;
            for (unsigned i = 0; i < blk.size; ++i) {
                const std::int64_t row = blk.rowOrigin + i;
                if (row < matRows)
                    y[static_cast<std::size_t>(row)] += yLocal[i];
            }
        }
    }
}

std::size_t
FaultyAccelOperator::blockCount() const
{
    return plan.blocks.size();
}

std::vector<std::size_t>
FaultyAccelOperator::scrub()
{
    // AN-readback scan: persistent damage is visible by reading the
    // stored words back and checking residues; transient upsets
    // leave no trace. Degraded blocks have no mapped hardware left.
    ctrScrubScans.add();
    std::vector<std::size_t> suspects;
    for (std::size_t k = 0; k < state.size(); ++k) {
        const BlockState &st = state[k];
        if (st.exact)
            continue;
        const bool drifted =
            camp.driftPerRead > 0.0 &&
            camp.driftPerRead * static_cast<double>(st.reads) >
                camp.driftScrubThreshold;
        if (st.dead || st.stuckColumn >= 0 || !st.stuck.empty() ||
            drifted)
            suspects.push_back(k);
    }
    return suspects;
}

bool
FaultyAccelOperator::reprogram(std::size_t block)
{
    if (block >= state.size())
        fatal("FaultyAccelOperator::reprogram: no such block");
    BlockState &st = state[block];
    if (st.exact)
        return true;
    ctrReprograms.add();
    // A rewrite with spare-row remapping clears cell-level damage
    // and resets drift; it cannot resurrect dead periphery.
    st.stuck.clear();
    st.reads = 0;
    return !st.dead && st.stuckColumn < 0;
}

void
FaultyAccelOperator::degrade(std::size_t block)
{
    if (block >= state.size())
        fatal("FaultyAccelOperator::degrade: no such block");
    if (!state[block].exact)
        ctrDegrades.add();
    state[block].exact = true;
}

bool
FaultyAccelOperator::isDegraded(std::size_t block) const
{
    if (block >= state.size())
        fatal("FaultyAccelOperator::isDegraded: no such block");
    return state[block].exact;
}

bool
FaultyAccelOperator::blockDead(std::size_t block) const
{
    return state.at(block).dead;
}

int
FaultyAccelOperator::blockStuckColumn(std::size_t block) const
{
    return state.at(block).stuckColumn;
}

std::size_t
FaultyAccelOperator::blockStuckCells(std::size_t block) const
{
    return state.at(block).stuck.size();
}

std::uint64_t
FaultyAccelOperator::blockReads(std::size_t block) const
{
    return state.at(block).reads;
}

} // namespace msc
