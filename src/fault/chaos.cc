#include "fault/chaos.hh"

#include <chrono>
#include <new>
#include <thread>

#include "solver/solver.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

/** The one live engine; hooks are stateless function pointers, so
 *  they route through this. */
std::atomic<ChaosEngine *> gActive{nullptr};

std::uint64_t
mix(std::uint64_t state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Deterministic Bernoulli draw: true with probability @p rate. */
bool
hits(std::uint64_t key, double rate)
{
    if (rate <= 0.0)
        return false;
    if (rate >= 1.0)
        return true;
    // Top 53 bits -> uniform double in [0, 1).
    const double u =
        static_cast<double>(mix(key) >> 11) * 0x1.0p-53;
    return u < rate;
}

// Site tags keep the per-site streams decorrelated.
constexpr std::uint64_t kSiteDelay = 0x64656c6179ULL; // "delay"
constexpr std::uint64_t kSiteThrow = 0x7468726f77ULL; // "throw"
constexpr std::uint64_t kSiteAlloc = 0x616c6c6f63ULL; // "alloc"

} // namespace

ChaosEngine::ChaosEngine(const ChaosCampaign &campaign)
    : camp(campaign)
{
    ChaosEngine *expected = nullptr;
    if (!gActive.compare_exchange_strong(expected, this))
        panic("ChaosEngine: another engine is already active");
    sectionBase = ThreadPool::sectionCount();
    if (camp.taskDelayRate > 0.0 || camp.taskThrowRate > 0.0)
        ThreadPool::setTaskHook(&ChaosEngine::taskHook);
    if (camp.allocFailRate > 0.0)
        SolverWorkspace::setAllocHook(&ChaosEngine::allocHook);
}

ChaosEngine::~ChaosEngine()
{
    ThreadPool::setTaskHook(nullptr);
    SolverWorkspace::setAllocHook(nullptr);
    gActive.store(nullptr, std::memory_order_release);
}

void
ChaosEngine::arm(ExecContext &ctx)
{
    if (camp.cancelAfterChecks == 0)
        return;
    ctx.cancelAfterChecks(camp.cancelAfterChecks);
    armedCancels.fetch_add(1, std::memory_order_relaxed);
}

ChaosStats
ChaosEngine::stats() const
{
    ChaosStats s;
    s.taskDelays = taskDelays.load(std::memory_order_relaxed);
    s.taskThrows = taskThrows.load(std::memory_order_relaxed);
    s.allocFailures =
        allocFailures.load(std::memory_order_relaxed);
    s.armedCancels =
        armedCancels.load(std::memory_order_relaxed);
    return s;
}

void
ChaosEngine::taskHook(std::uint64_t section,
                      std::size_t chunkBegin)
{
    if (ChaosEngine *eng =
            gActive.load(std::memory_order_acquire))
        eng->onTask(section, chunkBegin);
}

void
ChaosEngine::allocHook(std::size_t n)
{
    (void)n;
    if (ChaosEngine *eng =
            gActive.load(std::memory_order_acquire))
        eng->onAlloc();
}

void
ChaosEngine::onTask(std::uint64_t section, std::size_t chunkBegin)
{
    // Draws are keyed by (seed, site, section offset, chunk), never
    // by scheduling: the same chunks fail on every run of a
    // campaign, and keying on the offset from install time makes a
    // campaign replayable later in the same process.
    const std::uint64_t key =
        mix(camp.seed ^ mix(section - sectionBase)) ^
        mix(static_cast<std::uint64_t>(chunkBegin));
    if (hits(key ^ kSiteDelay, camp.taskDelayRate)) {
        taskDelays.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::microseconds(camp.taskDelayUs));
    }
    if (hits(key ^ kSiteThrow, camp.taskThrowRate)) {
        taskThrows.fetch_add(1, std::memory_order_relaxed);
        throw ChaosTaskError(section, chunkBegin);
    }
}

void
ChaosEngine::onAlloc()
{
    // Keyed by allocation sequence: workspace grants happen on the
    // solve thread in program order, so this stream is
    // deterministic too.
    const std::uint64_t seq =
        allocSeq.fetch_add(1, std::memory_order_relaxed);
    if (hits(mix(camp.seed ^ kSiteAlloc) ^ mix(seq),
             camp.allocFailRate)) {
        allocFailures.fetch_add(1, std::memory_order_relaxed);
        throw std::bad_alloc();
    }
}

} // namespace msc
