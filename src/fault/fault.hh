/**
 * @file
 * Unified fault model for the memristive accelerator (Sections IV-E,
 * VIII-G, and beyond the paper).
 *
 * The paper's reliability story rests on AN-code correction plus the
 * statistical device-noise model; the fault subsystem generalizes
 * both into one seeded, deterministic campaign covering the failure
 * modes a deployed crossbar accelerator actually sees:
 *
 *  - stuck-at cells: programming-time hard faults in individual
 *    memristors (stuck on / stuck off), persistent until the array is
 *    rewritten with spare-row remapping;
 *  - transient read upsets: per-conversion bit flips at the ADC
 *    (particle strikes, sense-amp metastability) -- the single-bit
 *    additive errors the AN code is designed to absorb;
 *  - conductance drift: read-disturb accumulating with the number of
 *    MVMs since the last program(), repaired by reprogramming;
 *  - stuck/saturated ADC columns: peripheral hard faults; a rewrite
 *    of the array cannot repair the converter;
 *  - whole-crossbar death: driver/selector failure taking out an
 *    entire bit-slice array.
 *
 * One FaultCampaign (JSON-loadable through core/config) drives both
 * simulation fidelities: FaultInjector attaches bit-exactly to
 * HwCluster, where upsets flow through the real shift-and-add and
 * AN-correction path, and value-level to FaultyAccelOperator
 * (fault/faulty_operator.hh), which models the *surviving* post-AN
 * errors on the fast functional path so full solver campaigns stay
 * cheap. All draws come from per-unit xoshiro streams derived from
 * the campaign seed, so campaigns are bit-reproducible from a config
 * file alone.
 */

#ifndef MSC_FAULT_FAULT_HH
#define MSC_FAULT_FAULT_HH

#include <cstdint>
#include <vector>

#include "util/random.hh"

namespace msc {

class JsonValue;
class HwCluster;

/** Fault taxonomy (DESIGN.md "Fault tolerance & recovery"). */
enum class FaultKind
{
    StuckCell,      //!< programming-time stuck-at memristor
    TransientUpset, //!< per-conversion ADC bit flip
    Drift,          //!< read-disturb conductance drift
    StuckColumn,    //!< saturated ADC column (peripheral)
    DeadCrossbar,   //!< whole bit-slice array dead
};

/**
 * Seeded description of one fault-injection experiment. Rates of 0
 * (the defaults) disable the corresponding mechanism, so a
 * default-constructed campaign is fault-free.
 */
struct FaultCampaign
{
    std::uint64_t seed = 1;

    /** P(stuck-at) per stored element (bit-exact path: per cell). */
    double stuckCellRate = 0.0;
    /** Of the stuck cells, fraction stuck at 1 (vs stuck at 0). */
    double stuckAtOneFraction = 0.5;

    /** Bit-exact path: P(bit flip) per ADC conversion. Functional
     *  path: P(a surviving upset) per block MVM -- the post-AN
     *  residue of the same mechanism. */
    double transientUpsetRate = 0.0;
    /** Fraction of transient upsets that saturate the conversion
     *  (full-scale / non-finite output) instead of flipping one bit. */
    double saturationRate = 0.0;

    /** Relative output error accumulated per MVM since program(). */
    double driftPerRead = 0.0;
    /** Accumulated drift level at which a scrub flags the block. */
    double driftScrubThreshold = 1e-10;

    /** P(one saturated ADC column) per block/cluster programming. */
    double stuckColumnRate = 0.0;
    /** P(whole-crossbar death) per block/cluster programming. */
    double deadCrossbarRate = 0.0;
    /** Force this block index dead (deterministic experiments);
     *  -1 disables. */
    int forcedDeadBlock = -1;

    bool
    anyEnabled() const
    {
        return stuckCellRate > 0.0 || transientUpsetRate > 0.0 ||
               driftPerRead > 0.0 || stuckColumnRate > 0.0 ||
               deadCrossbarRate > 0.0 || forcedDeadBlock >= 0;
    }
};

/** Build a campaign from a JSON object; unknown keys are fatal. */
FaultCampaign faultCampaignFromJson(const JsonValue &j);

/** Injection counters, by mechanism. */
struct FaultStats
{
    std::uint64_t stuckCells = 0;
    std::uint64_t transientUpsets = 0;
    std::uint64_t saturatedConversions = 0;
    std::uint64_t stuckColumns = 0;
    std::uint64_t deadCrossbars = 0;

    std::uint64_t
    total() const
    {
        return stuckCells + transientUpsets + saturatedConversions +
               stuckColumns + deadCrossbars;
    }
};

/**
 * Deterministic fault source for one campaign.
 *
 * Programming-time draws use per-unit streams (streamFor), so the
 * faults landing on block k do not depend on how many draws other
 * blocks consumed; run-time (transient) draws use one sequential
 * stream, deterministic given the apply order.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultCampaign &campaign);

    const FaultCampaign &campaign() const { return camp; }
    const FaultStats &stats() const { return totals; }

    /** Independent deterministic stream for programming unit @p unit. */
    Rng streamFor(std::uint64_t unit) const;

    /**
     * Bit-exact attachment: draw programming-time faults for a
     * freshly programmed HwCluster (stuck cells, stuck ADC columns,
     * dead bit-slice crossbars) and register the injector for
     * per-conversion transients. Call again after re-program() to
     * model a fresh write of the same physical arrays.
     */
    FaultStats inject(HwCluster &hw, std::uint64_t unit = 0);

    /** True when ADC column @p col of slice @p slice is saturated. */
    bool columnStuck(unsigned slice, unsigned col) const;

    /**
     * Run one raw ADC conversion result through the transient and
     * stuck-column models. @p fullScale is the converter full-scale
     * count (crossbar rows).
     */
    std::int64_t faultedRead(unsigned slice, unsigned col,
                             std::int64_t count,
                             std::int64_t fullScale);

  private:
    FaultCampaign camp;
    Rng transientRng;
    std::vector<std::pair<unsigned, unsigned>> stuckCols;
    FaultStats totals;
};

} // namespace msc

#endif // MSC_FAULT_FAULT_HH
