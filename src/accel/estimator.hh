/**
 * @file
 * Fast per-block cost estimator.
 *
 * The exact cluster model (cluster/cluster.hh) simulates every
 * (matrix slice, vector slice) group and is the verification
 * vehicle; running it for every block of a full matrix on every
 * solver iteration would be needlessly slow. The estimator computes
 * the same cost quantities -- executed groups, activations, ADC
 * conversions, latency, energy -- from a vector-slice-granularity
 * early-termination trajectory plus the static schedule geometry.
 * Tests check it against the exact model.
 */

#ifndef MSC_ACCEL_ESTIMATOR_HH
#define MSC_ACCEL_ESTIMATOR_HH

#include <span>

#include "cluster/cluster.hh"

namespace msc {

/** Estimated cost of one block MVM on a cluster. */
struct BlockCost
{
    unsigned matrixSlices = 0;
    unsigned vectorSlices = 0;
    std::uint64_t groupsExecuted = 0;
    std::uint64_t groupsTotal = 0;
    std::uint64_t xbarActivations = 0;
    std::uint64_t adcConversions = 0;
    std::uint64_t cycles = 0;
    double latency = 0.0; //!< seconds
    double energy = 0.0;  //!< joules
    std::uint64_t peeledVectorElements = 0;

    /** Programming cost (once per solve). */
    std::uint64_t cellsWritten = 0;
    double programTime = 0.0;
    double programEnergy = 0.0;
};

/**
 * Estimate the cost of multiplying @p block by the local vector
 * @p x under the given cluster configuration.
 *
 * @param clusterSize  physical crossbar size the block is placed on
 *                     (>= block.size; spilled blocks run on larger
 *                     crossbars at their latency/energy).
 */
BlockCost estimateBlockCost(const MatrixBlock &block,
                            std::span<const double> x,
                            const ClusterConfig &cfg,
                            unsigned clusterSize);

} // namespace msc

#endif // MSC_ACCEL_ESTIMATOR_HH
