/**
 * @file
 * System-level accelerator model (Sections III, VI, VIII).
 *
 * 128 banks, each with a heterogeneous set of clusters (Table I) and
 * a LEON3-class local processor. prepare() runs the blocking
 * preprocessor, places blocks onto the system-wide cluster pools
 * (spilling small blocks into larger free clusters, dissolving true
 * overflow into the local-processor CSR), and estimates per-kernel
 * time and energy. The solver-facing operator computes y = Ax in
 * IEEE double (the cluster model proves bit-level equivalence; see
 * tests/test_cluster.cc), while time and energy come from the
 * calibrated analytic models.
 */

#ifndef MSC_ACCEL_ACCEL_HH
#define MSC_ACCEL_ACCEL_HH

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "accel/estimator.hh"
#include "bank/bank.hh"
#include "sim/spmv_sim.hh"
#include "blocking/blocking.hh"
#include "solver/solver.hh"
#include "sparse/stats.hh"

namespace msc {

struct AcceleratorConfig
{
    unsigned banks = 128;
    unsigned rowsPerBank = 1200; //!< solution-vector section size
    /** (crossbar size, clusters of that size per bank), Table I. */
    std::vector<std::pair<unsigned, unsigned>> clustersPerBank =
        {{512, 2}, {256, 4}, {128, 6}, {64, 8}};
    ClusterConfig cluster;
    BlockingConfig blocking;
    ProcessorModelParams proc;
    MemoryModelParams mem;
    double staticPower = 120.0; //!< watts: eDRAM refresh, ADC
                                //!< static share, clocks, drivers
    /** Blocking efficiency below which the matrix is routed to the
     *  GPU instead (Section VIII-A). */
    double gpuFallbackThreshold = 0.10;
    /** Blocks sampled per size class for cost estimation. */
    unsigned estimateSamplesPerSize = 24;
};

/** Cost of one kernel invocation or one solve on the accelerator. */
struct AccelCost
{
    double time = 0.0;
    double energy = 0.0;
};

/** Everything prepare() learns about a matrix. */
struct PrepareResult
{
    BlockingStats blocking;
    std::size_t placedBlocks = 0;
    std::size_t spilledBlocks = 0;  //!< placed on a larger cluster
    std::size_t dissolvedBlocks = 0;
    std::size_t dissolvedNnz = 0;   //!< overflow sent back to CSR
    bool gpuFallback = false;
    int banksUsed = 0;

    double programTime = 0.0;   //!< seconds, all clusters (parallel)
    double programEnergy = 0.0;
    std::uint64_t cellsWritten = 0;
    double preprocessTime = 0.0; //!< modeled: 4 baseline-MVM equiv.

    double maxClusterLatency = 0.0; //!< slowest cluster chain, s
    AccelCost spmv;  //!< per sparse-MVM estimate
    AccelCost dotOp; //!< per dot product
    AccelCost axpyOp;

    /** Effective unblocked nonzeros after dissolution. */
    std::size_t csrNnz = 0;
};

/** Area breakdown for Section VIII-C. */
struct AreaBreakdown
{
    double crossbarsAndAdcs = 0.0; //!< mm^2, all bit-slice crossbars
    double adcsOnly = 0.0;
    double bankBuffers = 0.0;
    double processors = 0.0;
    double globalMemory = 0.0;

    double
    total() const
    {
        return crossbarsAndAdcs + bankBuffers + processors +
               globalMemory;
    }
};

class Accelerator
{
  public:
    explicit Accelerator(const AcceleratorConfig &config = {});

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Preprocess, place, and estimate costs for a matrix.
     *
     * @param sampleX  representative input vector for the
     *                 data-dependent early-termination estimate
     *                 (e.g. the solver's b); defaults to ones.
     * @param precomputed  optional blocking plan to adopt (moved
     *                 from) instead of running planBlocks -- the
     *                 packed-artifact warm path. Must be the plan of
     *                 @p matrix under this accelerator's blocking
     *                 configuration; callers gate on
     *                 blockingConfigKey equality.
     */
    PrepareResult prepare(const Csr &matrix,
                          std::span<const double> sampleX = {},
                          BlockPlan *precomputed = nullptr);

    bool prepared() const { return isPrepared; }
    const PrepareResult &info() const { return prep; }

    /** Dimensions of the prepared matrix (0 before prepare()). */
    std::int32_t rows() const { return matRows; }
    std::int32_t cols() const { return matCols; }

    /** Functional y = A x (all placed blocks + CSR leftovers). */
    void spmv(std::span<const double> x, std::span<double> y) const;

    /**
     * Functional multi-RHS Y = A X over column-major k-column
     * panels (X: k columns of matCols, Y: k columns of matRows),
     * bitwise identical to k spmv() calls in column order. Placed
     * blocks fan out over the thread pool at (placement,
     * column-chunk) granularity with private scratch per work item;
     * the partials fold per column in fixed placement order, so the
     * result is bit-identical for any lane count.
     */
    void spmm(std::span<const double> X, std::span<double> Y,
              unsigned k) const;

    /**
     * Execution context polled per block batch inside prepare() and
     * spmv() (runtime/exec_context.hh): a cancel or deadline aborts
     * mid-operation with CancelledError instead of finishing the
     * fan-out. Not owned; must outlive the calls it governs, and
     * nullptr (the default) detaches. Operator adapters
     * (ClusterArithmeticOperator, FaultyAccelOperator) forward
     * their own setExecContext() here.
     */
    void setExecContext(const ExecContext *ctx) { exec = ctx; }

    /** Map a finished solver run to accelerator time and energy,
     *  including programming and preprocessing overhead. */
    AccelCost solveCost(const SolverResult &run,
                        bool includeSetup = true) const;

    /** Per-kernel costs (after prepare()). */
    AccelCost spmvCost() const { return prep.spmv; }
    AccelCost dotCost() const { return prep.dotOp; }
    AccelCost axpyCost() const { return prep.axpyOp; }

    /** Total cluster pool capacity per size class. */
    std::vector<std::pair<unsigned, unsigned>> poolCapacity() const;

    /**
     * Cost of reprogramming after a time step in which only
     * @p fractionChanged of the coefficients changed (Section
     * VIII-D: structure preserved, subset of values updated).
     * Write time scales with the changed rows; energy with the
     * changed cells.
     */
    AccelCost reprogramCost(double fractionChanged) const;

    /**
     * Event-driven replay of one sparse MVM (sim/spmv_sim.hh):
     * cluster completions, interrupt servicing, barriers. Validates
     * the closed-form spmvCost() and exposes interrupt backlog.
     */
    SpmvSimResult simulateSpmv() const;

    /** Chip area model (Section VIII-C). */
    AreaBreakdown area() const;

    /**
     * System lifetime in years under the paper's conservative
     * assumption: every array fully rewritten between solves, the
     * system solving back-to-back (Section VIII-E).
     */
    double enduranceYears(double solveTime) const;

  private:
    struct Placement
    {
        std::size_t blockIdx = 0;
        unsigned clusterSize = 0;
        double latency = 0.0; //!< class-average MVM latency, seconds
        BlockCost cost;       //!< filled for sampled blocks only
    };

    AccelCost estimateSpmvCost() const;

    AcceleratorConfig cfg;
    bool isPrepared = false;
    PrepareResult prep;
    BlockPlan plan;
    Csr effectiveCsr; //!< unblocked + dissolved
    std::vector<Placement> placements;
    std::int32_t matRows = 0;
    std::int32_t matCols = 0;
    /** Per-placement partial outputs for the parallel spmv fan-out;
     *  sized by prepare(). spmv()/spmm() are internally parallel but
     *  each is a single logical operation sharing this scratch:
     *  concurrent spmv()/spmm() calls on one Accelerator are not
     *  supported, and opGuard makes a violation a deterministic
     *  fatal instead of silent corruption. */
    mutable std::vector<std::vector<double>> spmvScratch;
    /** Per-(placement, column-chunk) partials for spmm(). */
    mutable std::vector<std::vector<double>> spmmScratch;
    /** Set while an spmv()/spmm() fan-out is in flight. */
    mutable std::atomic<bool> opGuard{false};
    const ExecContext *exec = nullptr; //!< optional, not owned
};

/**
 * LinearOperator adapter over a prepared Accelerator, so the Krylov
 * solvers (and the service runtime's prepare cache) can drive the
 * functional accelerator directly: apply() -> spmv(), applyBatch()
 * -> spmm() (bitwise identical to the k sequential applies), and
 * setExecContext() forwards to the accelerator's per-block-batch
 * polls. Does not own the accelerator; one logical operation at a
 * time (the accelerator's opGuard enforces it).
 */
class AcceleratorOperator : public LinearOperator
{
  public:
    explicit AcceleratorOperator(Accelerator &a) : acc(&a) {}

    std::int32_t rows() const override { return acc->rows(); }
    std::int32_t cols() const override { return acc->cols(); }

    void
    apply(std::span<const double> x, std::span<double> y) override
    {
        acc->spmv(x, y);
    }

    void
    applyBatch(std::span<const double> X, std::span<double> Y,
               unsigned k) override
    {
        acc->spmm(X, Y, k);
    }

    void
    setExecContext(const ExecContext *ctx) override
    {
        acc->setExecContext(ctx);
    }

  private:
    Accelerator *acc;
};

} // namespace msc

#endif // MSC_ACCEL_ACCEL_HH
