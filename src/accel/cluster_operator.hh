/**
 * @file
 * A solver operator that computes through the functional cluster
 * models: every blocked coefficient goes through alignment, bias
 * encoding, AN coding, bit-sliced evaluation with early termination,
 * and rounding -- exactly what the hardware produces -- while
 * unblockable leftovers run on the (IEEE-754 FPU) local-processor
 * path, as in Section VI-A1.
 *
 * This is the high-fidelity arithmetic mode: plugging it into the
 * Krylov solvers demonstrates the paper's Section VII-C claim that
 * "the solvers running on the proposed accelerator converge in the
 * same number of iterations as they do when running on the GPU."
 * It is bit-level and therefore orders of magnitude slower than
 * CsrOperator; intended for verification and small systems.
 */

#ifndef MSC_ACCEL_CLUSTER_OPERATOR_HH
#define MSC_ACCEL_CLUSTER_OPERATOR_HH

#include <memory>
#include <vector>

#include "blocking/blocking.hh"
#include "cluster/cluster.hh"
#include "solver/solver.hh"

namespace msc {

class ClusterArithmeticOperator : public LinearOperator
{
  public:
    /**
     * Block @p m and program one functional cluster per block.
     *
     * @param blocking   preprocessor configuration; sizes must be
     *                   powers of two
     * @param base       cluster configuration template (schedule,
     *                   rounding, AN, ...); the size field is set
     *                   per block
     */
    explicit ClusterArithmeticOperator(
        const Csr &m, const BlockingConfig &blocking = smallSizes(),
        const ClusterConfig &base = ClusterConfig{});

    /**
     * Program from a precomputed plan (a packed artifact's, or a
     * streaming-preprocessor result) instead of running planBlocks.
     * @p precomputed must be the plan of @p m under some blocking
     * configuration -- callers gate on blockingConfigKey equality.
     * A plan whose unblocked CSR is a zero-copy view keeps its
     * backing mapping alive through the caller.
     */
    ClusterArithmeticOperator(const Csr &m, BlockPlan precomputed,
                              const ClusterConfig &base
                              = ClusterConfig{});

    std::int32_t rows() const override { return mat->rows(); }
    std::int32_t cols() const override { return mat->cols(); }

    void apply(std::span<const double> x,
               std::span<double> y) override;

    /**
     * Batched multi-RHS apply: each block's cluster runs one batched
     * multiply over the whole panel (tables and schedules amortized
     * across columns), and the reduction folds per (column, block)
     * in the sequential order, so outputs AND the running aggregate
     * stats are bitwise identical to k apply() calls.
     */
    void applyBatch(std::span<const double> X, std::span<double> Y,
                    unsigned k) override;

    /** Polled per block batch inside apply() (see LinearOperator). */
    void
    setExecContext(const ExecContext *ctx) override
    {
        exec = ctx;
    }

    const BlockPlan &blockPlan() const { return plan; }

    /** Aggregate cluster statistics since construction. */
    const ClusterStats &totals() const { return aggregate; }

    /** A blocking configuration suited to small test systems. */
    static BlockingConfig
    smallSizes()
    {
        BlockingConfig cfg;
        cfg.sizes = {64, 32, 16};
        cfg.densityFactor = 2.0;
        return cfg;
    }

  private:
    /** Shared ctor body: program one cluster per planned block. */
    void programClusters(const ClusterConfig &base);

    /** Per-block partial results, written concurrently by the block
     *  fan-out and reduced into y in fixed block order. */
    struct BlockScratch
    {
        std::vector<double> xLocal;
        std::vector<double> yLocal;
        std::vector<std::int32_t> peeled;
        std::vector<std::uint8_t> peeledMask; //!< per block column
        ClusterStats stats;
        /** Batched apply: per-column peel lists and stats. */
        std::vector<std::vector<std::int32_t>> peeledCols;
        std::vector<ClusterStats> colStats;
    };

    /** Fold one block's result for one RHS column into y and the
     *  aggregate stats: the shared reduction step of apply() and
     *  applyBatch(), so the two fold orders cannot diverge. */
    void reduceBlock(const MatrixBlock &block, const ClusterStats &s,
                     const double *yLocal,
                     const std::vector<std::int32_t> &peeled,
                     std::vector<std::uint8_t> &peeledMask,
                     std::span<const double> x, std::span<double> y);

    const Csr *mat;
    BlockPlan plan;
    std::vector<std::unique_ptr<Cluster>> clusters;
    ClusterStats aggregate;
    std::vector<BlockScratch> scratch;
    const ExecContext *exec = nullptr; //!< optional, not owned
};

} // namespace msc

#endif // MSC_ACCEL_CLUSTER_OPERATOR_HH
