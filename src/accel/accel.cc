#include "accel/accel.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

// Per-block spans fire once per placed block per spmv, so the
// accel.block_spans total is deterministic across lane counts.
constinit telemetry::Counter ctrBlockSpans{"accel.block_spans"};
constinit telemetry::Counter ctrSpmvCalls{"accel.spmv_calls"};
constinit telemetry::Counter
    ctrSampledBlocks{"accel.sampled_blocks"};
constinit telemetry::Counter
    ctrPlacedBlocks{"accel.placed_blocks"};
constinit telemetry::Histogram hSpmvUs{"accel.spmv_us"};
constinit telemetry::Counter ctrSpmmCalls{"accel.spmm_calls"};
constinit telemetry::Histogram hSpmmUs{"accel.spmm_us"};

/**
 * RAII exclusivity guard over the shared spmv/spmm scratch: entering
 * while another fan-out is in flight is a caller bug (the partials
 * would be silently corrupted), so it dies loudly instead.
 */
class OpGuard
{
  public:
    OpGuard(std::atomic<bool> &flag, const char *what) : f(flag)
    {
        if (f.exchange(true, std::memory_order_acquire)) {
            fatal(what, ": concurrent spmv()/spmm() on one "
                  "Accelerator (shared scratch) is not supported");
        }
    }
    ~OpGuard() { f.store(false, std::memory_order_release); }

  private:
    std::atomic<bool> &f;
};

} // namespace

Accelerator::Accelerator(const AcceleratorConfig &config) : cfg(config)
{
    if (cfg.banks == 0 || cfg.clustersPerBank.empty())
        fatal("Accelerator: empty configuration");
    for (std::size_t i = 0; i + 1 < cfg.clustersPerBank.size(); ++i) {
        if (cfg.clustersPerBank[i].first <=
            cfg.clustersPerBank[i + 1].first)
            fatal("Accelerator: cluster sizes must be decreasing");
    }
}

std::vector<std::pair<unsigned, unsigned>>
Accelerator::poolCapacity() const
{
    std::vector<std::pair<unsigned, unsigned>> pools;
    pools.reserve(cfg.clustersPerBank.size());
    for (const auto &[size, count] : cfg.clustersPerBank)
        pools.push_back({size, count * cfg.banks});
    return pools;
}

PrepareResult
Accelerator::prepare(const Csr &matrix, std::span<const double> sampleX,
                     BlockPlan *precomputed)
{
    telemetry::Span span("accel.prepare");
    prep = PrepareResult{};
    matRows = matrix.rows();
    matCols = matrix.cols();

    // --- blocking -----------------------------------------------------
    if (precomputed != nullptr) {
        if (precomputed->rows != matrix.rows() ||
            precomputed->cols != matrix.cols())
            fatal("Accelerator::prepare: precomputed plan "
                  "dimensions disagree with the matrix");
        plan = std::move(*precomputed);
    } else {
        plan = planBlocks(matrix, cfg.blocking);
    }
    prep.blocking = plan.stats;
    prep.banksUsed = static_cast<int>(std::min<std::int64_t>(
        cfg.banks,
        std::max<std::int64_t>(
            1, (matrix.rows() + cfg.rowsPerBank - 1) /
                   cfg.rowsPerBank)));

    // Preprocessing cost: worst case 4x NNZ element visits on the
    // host; modeled at a calibrated preprocessing throughput.
    constexpr double visitsPerSecond = 500e6;
    prep.preprocessTime =
        static_cast<double>(plan.stats.elementVisits) /
        visitsPerSecond;

    // --- per-class cost estimation -------------------------------
    // Blocks are estimated at their own size: a small block packed
    // diagonally into a larger crossbar drives only its own rows and
    // scans only its own columns.
    std::vector<double> ones;
    if (sampleX.empty()) {
        ones.assign(static_cast<std::size_t>(matrix.cols()), 1.0);
        sampleX = ones;
    }
    if (sampleX.size() != static_cast<std::size_t>(matrix.cols()))
        fatal("Accelerator::prepare: sampleX size mismatch");

    struct ClassAgg
    {
        std::size_t count = 0;
        std::size_t sampled = 0;
        double energy = 0.0;      //!< summed over samples
        double latency = 0.0;     //!< summed over samples
        double programTime = 0.0; //!< max over samples
        double programEnergy = 0.0;
        std::uint64_t cellsWritten = 0;

        double avgEnergy() const { return energy / sampled; }
        double avgLatency() const { return latency / sampled; }
    };
    std::map<unsigned, ClassAgg> classes; // keyed by block size
    for (const auto &b : plan.blocks)
        ++classes[b.size].count;
    // Sample selection is sequential (first N blocks of each size
    // class, in block order); the cost estimation itself -- the
    // expensive early-termination trajectory -- fans out across the
    // pool and is aggregated back in sample order, so the estimates
    // are independent of the lane count.
    std::vector<std::size_t> sampleIdx;
    for (std::size_t i = 0; i < plan.blocks.size(); ++i) {
        ClassAgg &agg = classes[plan.blocks[i].size];
        if (agg.sampled >= cfg.estimateSamplesPerSize)
            continue;
        ++agg.sampled;
        sampleIdx.push_back(i);
    }
    ctrSampledBlocks.add(sampleIdx.size());
    std::vector<BlockCost> sampleCost(sampleIdx.size());
    parallelFor(
        sampleIdx.size(),
        [&](std::size_t s) {
        telemetry::Span blockSpan("accel.sample_block");
        const MatrixBlock &b = plan.blocks[sampleIdx[s]];
        std::vector<double> xLocal(b.size, 0.0);
        for (unsigned j = 0; j < b.size; ++j) {
            const std::int64_t col = b.colOrigin + j;
            if (col < matrix.cols())
                xLocal[j] = sampleX[static_cast<std::size_t>(col)];
        }
        sampleCost[s] =
            estimateBlockCost(b, xLocal, cfg.cluster, b.size);
        },
        1, exec);
    for (std::size_t s = 0; s < sampleIdx.size(); ++s) {
        ClassAgg &agg = classes[plan.blocks[sampleIdx[s]].size];
        const BlockCost &cost = sampleCost[s];
        agg.energy += cost.energy;
        agg.latency += cost.latency;
        agg.programTime = std::max(agg.programTime, cost.programTime);
        agg.programEnergy += cost.programEnergy;
        agg.cellsWritten += cost.cellsWritten;
    }
    for (auto &[size, agg] : classes) {
        if (agg.count == 0)
            continue;
        if (agg.sampled == 0)
            panic("Accelerator::prepare: class without samples");
        const double scale =
            static_cast<double>(agg.count) / agg.sampled;
        prep.programEnergy += agg.programEnergy * scale;
        prep.cellsWritten += static_cast<std::uint64_t>(
            static_cast<double>(agg.cellsWritten) * scale);
    }

    // --- placement onto the cluster pools ---------------------------
    // Capacity is measured in crossbar rows: a size-S cluster hosts
    // one S block or S/s diagonally packed s blocks, which then run
    // sequentially on that cluster.
    struct Pool
    {
        unsigned size = 0;
        unsigned clusters = 0;
        std::uint64_t units = 0;  //!< remaining row capacity
        double busy = 0.0;        //!< summed MVM latency placed here
        double progBusy = 0.0;    //!< summed program time placed here
        std::size_t blocks = 0;
    };
    std::vector<Pool> pools; // descending size, like the config
    for (const auto &[size, count] : cfg.clustersPerBank) {
        Pool p;
        p.size = size;
        p.clusters = count * cfg.banks;
        p.units = static_cast<std::uint64_t>(p.clusters) * size;
        pools.push_back(p);
    }

    placements.clear();
    std::vector<std::size_t> dissolved;
    std::vector<std::size_t> order(plan.blocks.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return plan.blocks[a].size > plan.blocks[b].size;
              });
    for (std::size_t idx : order) {
        const unsigned want = plan.blocks[idx].size;
        const ClassAgg &agg = classes[want];
        bool placed = false;
        // Smallest suitable pool first: exact size, then larger.
        for (std::size_t p = pools.size(); p-- > 0;) {
            if (pools[p].size < want || pools[p].units < want)
                continue;
            pools[p].units -= want;
            pools[p].busy += agg.avgLatency();
            pools[p].progBusy += agg.programTime;
            ++pools[p].blocks;
            Placement pl;
            pl.blockIdx = idx;
            pl.clusterSize = pools[p].size;
            pl.latency = agg.avgLatency();
            placements.push_back(pl);
            if (pools[p].size != want)
                ++prep.spilledBlocks;
            placed = true;
            break;
        }
        if (!placed) {
            dissolved.push_back(idx);
            ++prep.dissolvedBlocks;
            prep.dissolvedNnz += plan.blocks[idx].elems.size();
        }
    }
    prep.placedBlocks = placements.size();

    double maxClusterLatency = 0.0;
    double clusterEnergyPerSpmv = 0.0;
    for (const Pool &p : pools) {
        if (p.clusters == 0 || p.blocks == 0)
            continue;
        // Blocks spread over the pool's clusters; the busiest
        // cluster hosts ceil(blocks/clusters) of them and runs them
        // sequentially. (Dividing total busy time by all clusters
        // would dilute the latency when the pool is underfull.)
        const double perCluster = std::ceil(
            static_cast<double>(p.blocks) / p.clusters);
        maxClusterLatency = std::max(
            maxClusterLatency,
            (p.busy / static_cast<double>(p.blocks)) * perCluster);
        prep.programTime = std::max(
            prep.programTime,
            (p.progBusy / static_cast<double>(p.blocks)) *
                perCluster);
    }
    for (const auto &pl : placements)
        clusterEnergyPerSpmv +=
            classes[plan.blocks[pl.blockIdx].size].avgEnergy();
    prep.maxClusterLatency = maxClusterLatency;

    // Rebuild the local-processor CSR with dissolved blocks folded in.
    if (dissolved.empty()) {
        effectiveCsr = plan.unblocked;
    } else {
        Coo coo = plan.unblocked.toCoo();
        for (std::size_t idx : dissolved) {
            const MatrixBlock &b = plan.blocks[idx];
            for (const auto &el : b.elems) {
                coo.add(b.rowOrigin + el.row, b.colOrigin + el.col,
                        el.val);
            }
        }
        effectiveCsr = Csr::fromCoo(coo);
    }
    prep.csrNnz = effectiveCsr.nnz();

    const double blockedFraction = plan.stats.totalNnz == 0
        ? 0.0
        : static_cast<double>(plan.stats.totalNnz - prep.csrNnz) /
              plan.stats.totalNnz;
    prep.gpuFallback = blockedFraction < cfg.gpuFallbackThreshold;

    // --- kernel cost models ---------------------------------------
    const Bank bank(cfg.proc, cfg.mem);
    const auto &mem = cfg.mem;

    // Sparse MVM: clusters in parallel vs the local processors'
    // leftover CSR work; the owning banks service completion
    // interrupts and the system barriers at the end (Section VI-A1).
    {
        const double csrPerBank = static_cast<double>(prep.csrNnz) /
                                  prep.banksUsed;
        const double tCsr = bank.csrTime(csrPerBank);
        const double tService = bank.serviceTime(
            static_cast<double>(placements.size()) /
            std::max(1, prep.banksUsed));
        double blockBytes = 0.0;
        for (const auto &pl : placements)
            blockBytes += 16.0 * plan.blocks[pl.blockIdx].size;
        const double tMem = blockBytes / mem.globalBandwidth;
        prep.spmv.time = std::max(maxClusterLatency, tCsr) +
                         tService + mem.barrierLatency + tMem;
        const double procCycles =
            bank.csrCycles(static_cast<double>(prep.csrNnz)) +
            placements.size() * cfg.proc.clusterServiceCycles +
            prep.banksUsed * cfg.proc.kernelStartupCycles;
        prep.spmv.energy = clusterEnergyPerSpmv +
                           bank.procEnergy(procCycles) +
                           blockBytes * mem.eDramEnergyPerByte +
                           blockBytes * mem.sramEnergyPerByte;
    }

    // Dot product: local partial dots, global exchange, barrier x2
    // (Section VI-A2).
    {
        const double perBank =
            std::ceil(static_cast<double>(matrix.rows()) /
                      prep.banksUsed);
        prep.dotOp.time = bank.dotTime(perBank) +
                          2 * mem.barrierLatency +
                          prep.banksUsed * 8.0 / mem.globalBandwidth;
        prep.dotOp.energy =
            bank.procEnergy(
                bank.dotCycles(static_cast<double>(matrix.rows())) +
                prep.banksUsed * cfg.proc.kernelStartupCycles) +
            static_cast<double>(matrix.rows()) * 16.0 *
                mem.sramEnergyPerByte +
            prep.banksUsed * prep.banksUsed * 8.0 *
                mem.eDramEnergyPerByte;
    }

    // AXPY: purely local + end barrier (Section VI-A3).
    {
        const double perBank =
            std::ceil(static_cast<double>(matrix.rows()) /
                      prep.banksUsed);
        prep.axpyOp.time = bank.axpyTime(perBank) +
                           mem.barrierLatency;
        prep.axpyOp.energy =
            bank.procEnergy(
                bank.axpyCycles(static_cast<double>(matrix.rows())) +
                prep.banksUsed * cfg.proc.kernelStartupCycles) +
            static_cast<double>(matrix.rows()) * 24.0 *
                mem.sramEnergyPerByte;
    }

    spmvScratch.assign(placements.size(), {});
    ctrPlacedBlocks.add(placements.size());
    isPrepared = true;
    return prep;
}

void
Accelerator::spmv(std::span<const double> x, std::span<double> y) const
{
    if (!isPrepared)
        fatal("Accelerator::spmv: prepare() first");
    if (x.size() != static_cast<std::size_t>(matCols) ||
        y.size() != static_cast<std::size_t>(matRows))
        fatal("Accelerator::spmv: dimension mismatch");
    const OpGuard guard(opGuard, "Accelerator::spmv");
    telemetry::Span span("accel.spmv");
    telemetry::Timer timer(hSpmvUs);
    ctrSpmvCalls.add();
    effectiveCsr.spmv(x, y);
    // Placed blocks accumulate into per-placement partials in
    // parallel; the partials fold into y in fixed placement order,
    // so the result is bit-identical for any lane count.
    parallelFor(
        placements.size(),
        [&](std::size_t p) {
        telemetry::Span blockSpan("accel.block");
        ctrBlockSpans.add();
        const MatrixBlock &b = plan.blocks[placements[p].blockIdx];
        std::vector<double> &part = spmvScratch[p];
        part.assign(b.size, 0.0);
        for (const auto &el : b.elems) {
            part[static_cast<std::size_t>(el.row)] +=
                el.val *
                x[static_cast<std::size_t>(b.colOrigin + el.col)];
        }
        },
        1, exec);
    for (std::size_t p = 0; p < placements.size(); ++p) {
        const MatrixBlock &b = plan.blocks[placements[p].blockIdx];
        const std::vector<double> &part = spmvScratch[p];
        // Edge blocks extend past the last matrix row; their padded
        // tail is empty, so clamp instead of folding it into memory
        // beyond y.
        const unsigned limit = static_cast<unsigned>(std::min(
            static_cast<std::int64_t>(b.size),
            static_cast<std::int64_t>(matRows) - b.rowOrigin));
        for (unsigned i = 0; i < limit; ++i)
            y[static_cast<std::size_t>(b.rowOrigin + i)] += part[i];
    }
}

void
Accelerator::spmm(std::span<const double> X, std::span<double> Y,
                  unsigned k) const
{
    if (!isPrepared)
        fatal("Accelerator::spmm: prepare() first");
    if (k == 0)
        fatal("Accelerator::spmm: batch needs at least one column");
    const auto nCols = static_cast<std::size_t>(matCols);
    const auto nRows = static_cast<std::size_t>(matRows);
    if (X.size() != nCols * k || Y.size() != nRows * k)
        fatal("Accelerator::spmm: panel size mismatch");
    const OpGuard guard(opGuard, "Accelerator::spmm");
    telemetry::Span span("accel.spmm");
    telemetry::Timer timer(hSpmmUs);
    ctrSpmmCalls.add();

    // CSR leftovers, per column in column order (independent
    // outputs; identical to the k spmv() prologues).
    for (unsigned c = 0; c < k; ++c) {
        effectiveCsr.spmv(X.subspan(c * nCols, nCols),
                          Y.subspan(c * nRows, nRows));
    }

    // Placed blocks fan out at (placement, column-chunk)
    // granularity: enough work items to fill the pool even for few
    // large blocks, each writing only its private scratch. The
    // execution context is polled at every item boundary by
    // parallelFor.
    constexpr unsigned chunkCols = 4;
    const std::size_t nChunks = (k + chunkCols - 1) / chunkCols;
    const std::size_t nItems = placements.size() * nChunks;
    spmmScratch.resize(nItems);
    parallelFor(
        nItems,
        [&](std::size_t item) {
        telemetry::Span blockSpan("accel.block");
        ctrBlockSpans.add();
        const std::size_t p = item / nChunks;
        const unsigned c0 = static_cast<unsigned>(
            (item % nChunks) * chunkCols);
        const unsigned cEnd = std::min(k, c0 + chunkCols);
        const MatrixBlock &b = plan.blocks[placements[p].blockIdx];
        std::vector<double> &part = spmmScratch[item];
        part.assign(static_cast<std::size_t>(b.size) *
                        (cEnd - c0),
                    0.0);
        for (const auto &el : b.elems) {
            const auto row = static_cast<std::size_t>(el.row);
            const auto col =
                static_cast<std::size_t>(b.colOrigin + el.col);
            for (unsigned c = c0; c < cEnd; ++c) {
                part[static_cast<std::size_t>(c - c0) * b.size +
                     row] += el.val * X[c * nCols + col];
            }
        }
        },
        1, exec);

    // Fold per column in fixed placement order -- for each column
    // this is exactly the spmv() reduction, so the result is
    // bitwise the k sequential calls for any lane count.
    for (unsigned c = 0; c < k; ++c) {
        const std::size_t chunk = c / chunkCols;
        const unsigned cInChunk = c % chunkCols;
        const std::span<double> yc = Y.subspan(c * nRows, nRows);
        for (std::size_t p = 0; p < placements.size(); ++p) {
            const MatrixBlock &b =
                plan.blocks[placements[p].blockIdx];
            const std::vector<double> &part =
                spmmScratch[p * nChunks + chunk];
            const double *pc =
                part.data() +
                static_cast<std::size_t>(cInChunk) * b.size;
            const unsigned limit = static_cast<unsigned>(std::min(
                static_cast<std::int64_t>(b.size),
                static_cast<std::int64_t>(matRows) - b.rowOrigin));
            for (unsigned i = 0; i < limit; ++i)
                yc[static_cast<std::size_t>(b.rowOrigin + i)] +=
                    pc[i];
        }
    }
}

AccelCost
Accelerator::solveCost(const SolverResult &run, bool includeSetup) const
{
    if (!isPrepared)
        fatal("Accelerator::solveCost: prepare() first");
    AccelCost total;
    total.time = run.spmvCalls * prep.spmv.time +
                 run.dotCalls * prep.dotOp.time +
                 run.axpyCalls * prep.axpyOp.time;
    total.energy = run.spmvCalls * prep.spmv.energy +
                   run.dotCalls * prep.dotOp.energy +
                   run.axpyCalls * prep.axpyOp.energy;
    if (includeSetup) {
        total.time += prep.programTime + prep.preprocessTime;
        total.energy += prep.programEnergy;
    }
    total.energy += total.time * cfg.staticPower;
    return total;
}

AccelCost
Accelerator::reprogramCost(double fractionChanged) const
{
    if (!isPrepared)
        fatal("Accelerator::reprogramCost: prepare() first");
    if (fractionChanged < 0.0 || fractionChanged > 1.0)
        fatal("Accelerator::reprogramCost: fraction out of range");
    AccelCost c;
    c.time = prep.programTime * fractionChanged;
    c.energy = prep.programEnergy * fractionChanged;
    return c;
}

SpmvSimResult
Accelerator::simulateSpmv() const
{
    if (!isPrepared)
        fatal("Accelerator::simulateSpmv: prepare() first");
    SpmvSimConfig sim;
    sim.proc = cfg.proc;
    sim.mem = cfg.mem;
    sim.banks = std::max(1, prep.banksUsed);
    sim.csrNnzPerBank.assign(
        static_cast<std::size_t>(sim.banks),
        static_cast<double>(prep.csrNnz) / sim.banks);
    std::vector<SimClusterOp> ops;
    ops.reserve(placements.size());
    int rr = 0;
    for (const auto &pl : placements) {
        SimClusterOp op;
        op.bank = rr;
        op.latency = pl.latency;
        rr = (rr + 1) % sim.banks;
        ops.push_back(op);
    }
    return msc::simulateSpmv(sim, ops);
}

AreaBreakdown
Accelerator::area() const
{
    AreaBreakdown a;
    for (const auto &[size, count] : cfg.clustersPerBank) {
        const XbarModel model(size, cfg.cluster.xbar,
                              cfg.cluster.cic);
        const double xbars = static_cast<double>(cfg.banks) * count *
                             fxp::encodedBits;
        a.crossbarsAndAdcs += xbars * model.area();
        a.adcsOnly += xbars * model.adcArea();
    }
    a.bankBuffers = cfg.banks * cfg.mem.bankBufferAreaMm2;
    a.processors = cfg.banks * cfg.proc.areaMm2;
    a.globalMemory = cfg.mem.globalMemAreaMm2;
    return a;
}

double
Accelerator::enduranceYears(double solveTime) const
{
    // Conservative: full rewrite of every array between back-to-back
    // solves (Section VIII-E).
    const double cycleTime = solveTime + prep.programTime;
    const double writesPerYear =
        cycleTime > 0.0 ? (365.25 * 86400.0) / cycleTime : 0.0;
    if (writesPerYear == 0.0)
        return 0.0;
    return cfg.cluster.xbar.cell.writeEndurance / writesPerYear;
}

} // namespace msc
