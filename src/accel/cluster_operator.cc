#include "accel/cluster_operator.hh"

#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

// Scheduling and early-termination tallies, folded from the
// per-block ClusterStats inside the fixed-order reduction so the
// totals are deterministic across lane counts.
constinit telemetry::Counter
    ctrGroupsExecuted{"cluster.groups_executed"};
constinit telemetry::Counter
    ctrGroupsTotal{"cluster.groups_total"};
constinit telemetry::Counter
    ctrEarlyTerminated{"cluster.columns_early_terminated"};
constinit telemetry::Counter
    ctrConversionsSkipped{"cluster.conversions_skipped"};
constinit telemetry::Counter
    ctrPeeledElements{"cluster.peeled_vector_elements"};
constinit telemetry::Counter ctrApplies{"cluster.applies"};
constinit telemetry::Counter
    ctrXbarActivations{"cluster.xbar_activations"};
constinit telemetry::Counter
    ctrAdcConversions{"cluster.adc_conversions"};

} // namespace

ClusterArithmeticOperator::ClusterArithmeticOperator(
    const Csr &m, const BlockingConfig &blocking,
    const ClusterConfig &base)
    : mat(&m), plan(planBlocks(m, blocking))
{
    programClusters(base);
}

ClusterArithmeticOperator::ClusterArithmeticOperator(
    const Csr &m, BlockPlan precomputed, const ClusterConfig &base)
    : mat(&m), plan(std::move(precomputed))
{
    if (plan.rows != m.rows() || plan.cols != m.cols())
        fatal("ClusterArithmeticOperator: precomputed plan "
              "dimensions disagree with the matrix");
    programClusters(base);
}

void
ClusterArithmeticOperator::programClusters(const ClusterConfig &base)
{
    clusters.reserve(plan.blocks.size());
    for (const MatrixBlock &block : plan.blocks) {
        ClusterConfig cfg = base;
        cfg.size = block.size;
        clusters.push_back(std::make_unique<Cluster>(cfg));
    }
    // Programming is embarrassingly parallel: one cluster per block,
    // no shared state.
    scratch.resize(plan.blocks.size());
    parallelFor(plan.blocks.size(), [&](std::size_t bi) {
        clusters[bi]->program(plan.blocks[bi]);
    });
}

void
ClusterArithmeticOperator::apply(std::span<const double> x,
                                 std::span<double> y)
{
    if (x.size() != static_cast<std::size_t>(mat->cols()) ||
        y.size() != static_cast<std::size_t>(mat->rows()))
        fatal("ClusterArithmeticOperator: dimension mismatch");

    telemetry::Span span("cluster.apply");
    ctrApplies.add();

    // Local-processor part: unblockable leftovers on the FPU.
    plan.unblocked.spmv(x, y);

    // Fan the block MVMs across the pool; every block writes only
    // its own scratch slot. The execution context is polled per
    // block batch: a cancel mid-apply abandons the remaining blocks
    // before the reduction below ever runs.
    parallelFor(
        plan.blocks.size(),
        [&](std::size_t bi) {
        telemetry::Span blockSpan("cluster.block");
        const MatrixBlock &block = plan.blocks[bi];
        BlockScratch &sc = scratch[bi];
        sc.xLocal.assign(block.size, 0.0);
        for (unsigned j = 0; j < block.size; ++j) {
            const std::int64_t col = block.colOrigin + j;
            if (col < mat->cols())
                sc.xLocal[j] = x[static_cast<std::size_t>(col)];
        }
        sc.yLocal.assign(block.size, 0.0);
        sc.peeled.clear();
        sc.stats =
            clusters[bi]->multiply(sc.xLocal, sc.yLocal, &sc.peeled);
        },
        1, exec);

    // Deterministic reduction in fixed block order: the sums landing
    // in y are bit-identical regardless of the lane count.
    for (std::size_t bi = 0; bi < plan.blocks.size(); ++bi) {
        BlockScratch &sc = scratch[bi];
        reduceBlock(plan.blocks[bi], sc.stats, sc.yLocal.data(),
                    sc.peeled, sc.peeledMask, x, y);
    }
}

void
ClusterArithmeticOperator::reduceBlock(
    const MatrixBlock &block, const ClusterStats &s,
    const double *yLocal, const std::vector<std::int32_t> &peeled,
    std::vector<std::uint8_t> &peeledMask, std::span<const double> x,
    std::span<double> y)
{
    aggregate.groupsExecuted += s.groupsExecuted;
    aggregate.groupsTotal += s.groupsTotal;
    aggregate.xbarActivations += s.xbarActivations;
    aggregate.adcConversions += s.adcConversions;
    aggregate.conversionsSkipped += s.conversionsSkipped;
    aggregate.columnsEarlyTerminated += s.columnsEarlyTerminated;
    aggregate.peeledVectorElements += s.peeledVectorElements;
    aggregate.energy += s.energy;
    aggregate.latency += s.latency;

    ctrGroupsExecuted.add(s.groupsExecuted);
    ctrGroupsTotal.add(s.groupsTotal);
    ctrXbarActivations.add(s.xbarActivations);
    ctrAdcConversions.add(s.adcConversions);
    ctrEarlyTerminated.add(s.columnsEarlyTerminated);
    ctrConversionsSkipped.add(s.conversionsSkipped);
    ctrPeeledElements.add(s.peeledVectorElements);

    for (unsigned i = 0; i < block.size; ++i) {
        const std::int64_t row = block.rowOrigin + i;
        if (row < mat->rows())
            y[static_cast<std::size_t>(row)] += yLocal[i];
    }
    // Columns whose vector exponents fell outside the alignment
    // window: their contributions were not computed in-situ; the
    // local processor adds them digitally (Section VI-A1). A
    // column bitmap turns the scan into a single pass over the
    // block's elements.
    if (!peeled.empty()) {
        peeledMask.assign(block.size, 0);
        for (std::int32_t pj : peeled)
            peeledMask[static_cast<std::size_t>(pj)] = 1;
        for (const Triplet &el : block.elems) {
            if (!peeledMask[static_cast<std::size_t>(el.col)])
                continue;
            y[static_cast<std::size_t>(block.rowOrigin + el.row)] +=
                el.val *
                x[static_cast<std::size_t>(block.colOrigin +
                                           el.col)];
        }
    }
}

void
ClusterArithmeticOperator::applyBatch(std::span<const double> X,
                                      std::span<double> Y,
                                      unsigned k)
{
    const auto nc = static_cast<std::size_t>(mat->cols());
    const auto nr = static_cast<std::size_t>(mat->rows());
    if (k == 0)
        fatal("ClusterArithmeticOperator: empty batch");
    if (X.size() != nc * k || Y.size() != nr * k)
        fatal("ClusterArithmeticOperator: panel size mismatch");

    telemetry::Span span("cluster.apply_batch");
    ctrApplies.add(k);

    // Local-processor part, per column in column order.
    for (unsigned c = 0; c < k; ++c) {
        plan.unblocked.spmv(X.subspan(c * nc, nc),
                            Y.subspan(c * nr, nr));
    }

    // One batched cluster multiply per block over the whole panel:
    // the contribution tables, schedules, and gate transposes are
    // shared across all k columns. Each block still writes only its
    // own scratch slot; a cancel mid-apply abandons the remaining
    // blocks before the reduction runs.
    parallelFor(
        plan.blocks.size(),
        [&](std::size_t bi) {
        telemetry::Span blockSpan("cluster.block");
        const MatrixBlock &block = plan.blocks[bi];
        BlockScratch &sc = scratch[bi];
        sc.xLocal.assign(static_cast<std::size_t>(block.size) * k,
                         0.0);
        for (unsigned c = 0; c < k; ++c) {
            for (unsigned j = 0; j < block.size; ++j) {
                const std::int64_t col = block.colOrigin + j;
                if (col < mat->cols()) {
                    sc.xLocal[static_cast<std::size_t>(c) *
                                  block.size + j] =
                        X[c * nc + static_cast<std::size_t>(col)];
                }
            }
        }
        sc.yLocal.assign(static_cast<std::size_t>(block.size) * k,
                         0.0);
        clusters[bi]->multiply(std::span<const double>(sc.xLocal),
                               std::span<double>(sc.yLocal), k,
                               &sc.peeledCols, &sc.colStats);
        },
        1, exec);

    // Reduction in (column, block) order -- exactly the order k
    // sequential apply() calls fold, so y AND the aggregate stats
    // (floating-point sums included) are bitwise identical.
    for (unsigned c = 0; c < k; ++c) {
        const std::span<const double> xc = X.subspan(c * nc, nc);
        const std::span<double> yc = Y.subspan(c * nr, nr);
        for (std::size_t bi = 0; bi < plan.blocks.size(); ++bi) {
            const MatrixBlock &block = plan.blocks[bi];
            BlockScratch &sc = scratch[bi];
            reduceBlock(block, sc.colStats[c],
                        sc.yLocal.data() +
                            static_cast<std::size_t>(c) * block.size,
                        sc.peeledCols[c], sc.peeledMask, xc, yc);
        }
    }
}

} // namespace msc
