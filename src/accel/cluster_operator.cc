#include "accel/cluster_operator.hh"

#include "util/logging.hh"

namespace msc {

ClusterArithmeticOperator::ClusterArithmeticOperator(
    const Csr &m, const BlockingConfig &blocking,
    const ClusterConfig &base)
    : mat(&m), plan(planBlocks(m, blocking))
{
    clusters.reserve(plan.blocks.size());
    for (const MatrixBlock &block : plan.blocks) {
        ClusterConfig cfg = base;
        cfg.size = block.size;
        clusters.push_back(std::make_unique<Cluster>(cfg));
        clusters.back()->program(block);
    }
}

void
ClusterArithmeticOperator::apply(std::span<const double> x,
                                 std::span<double> y)
{
    if (x.size() != static_cast<std::size_t>(mat->cols()) ||
        y.size() != static_cast<std::size_t>(mat->rows()))
        fatal("ClusterArithmeticOperator: dimension mismatch");

    // Local-processor part: unblockable leftovers on the FPU.
    plan.unblocked.spmv(x, y);

    std::vector<std::int32_t> peeled;
    for (std::size_t bi = 0; bi < plan.blocks.size(); ++bi) {
        const MatrixBlock &block = plan.blocks[bi];
        xLocal.assign(block.size, 0.0);
        for (unsigned j = 0; j < block.size; ++j) {
            const std::int64_t col = block.colOrigin + j;
            if (col < mat->cols())
                xLocal[j] = x[static_cast<std::size_t>(col)];
        }
        yLocal.assign(block.size, 0.0);
        const ClusterStats s =
            clusters[bi]->multiply(xLocal, yLocal, &peeled);

        aggregate.groupsExecuted += s.groupsExecuted;
        aggregate.groupsTotal += s.groupsTotal;
        aggregate.xbarActivations += s.xbarActivations;
        aggregate.adcConversions += s.adcConversions;
        aggregate.conversionsSkipped += s.conversionsSkipped;
        aggregate.columnsEarlyTerminated += s.columnsEarlyTerminated;
        aggregate.peeledVectorElements += s.peeledVectorElements;
        aggregate.energy += s.energy;
        aggregate.latency += s.latency;

        for (unsigned i = 0; i < block.size; ++i) {
            const std::int64_t row = block.rowOrigin + i;
            if (row < mat->rows())
                y[static_cast<std::size_t>(row)] += yLocal[i];
        }
        // Columns whose vector exponents fell outside the alignment
        // window: their contributions were not computed in-situ; the
        // local processor adds them digitally (Section VI-A1).
        if (!peeled.empty()) {
            for (const Triplet &el : block.elems) {
                for (std::int32_t pj : peeled) {
                    if (el.col == pj) {
                        y[static_cast<std::size_t>(
                            block.rowOrigin + el.row)] +=
                            el.val *
                            x[static_cast<std::size_t>(
                                block.colOrigin + el.col)];
                    }
                }
            }
        }
    }
}

} // namespace msc
