#include "accel/estimator.hh"

#include <algorithm>
#include <bit>

#include "util/intlog.hh"
#include "util/logging.hh"

namespace msc {

namespace {

/** Signed accumulator (duplicated from Cluster, intentionally local:
 *  the estimator is independent of the exact model). */
struct SignedAcc
{
    bool neg = false;
    U256 mag;

    void
    add(bool vNeg, const U256 &v)
    {
        if (vNeg == neg) {
            mag += v;
        } else if (mag >= v) {
            mag -= v;
        } else {
            mag = v - mag;
            neg = vNeg;
        }
        if (mag.isZero())
            neg = false;
    }
};

} // namespace

BlockCost
estimateBlockCost(const MatrixBlock &block, std::span<const double> x,
                  const ClusterConfig &cfg, unsigned clusterSize)
{
    if (clusterSize < block.size)
        fatal("estimateBlockCost: cluster smaller than block");
    if (x.size() != block.size)
        fatal("estimateBlockCost: vector size mismatch");

    BlockCost cost;

    // --- matrix alignment and widths --------------------------------
    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems)
        vals.push_back(t.val);
    const AlignedSet am = alignValues(vals);
    const BiasedSet bm = biasEncode(am);
    unsigned matSlices = bm.width();
    if (cfg.anProtect) {
        // Exact encoded width: the widest stored operand is the
        // biased maximum, scaled by A.
        U128 maxStored = bm.bias();
        for (const auto &w : bm.stored)
            maxStored = std::max(maxStored, w);
        U256 enc = U256::from(maxStored);
        enc.mulSmall(cfg.anConstant);
        matSlices = std::min(enc.bitLength(), fxp::encodedBits);
    }
    cost.matrixSlices = matSlices;

    // --- vector alignment with peeling ------------------------------
    std::vector<double> masked(x.begin(), x.end());
    {
        std::vector<int> exps;
        for (double v : masked) {
            const Fp64Parts p = decompose(v);
            if (p.isZero())
                continue;
            exps.push_back(p.exp -
                (52 - (63 - std::countl_zero(p.mant))));
        }
        std::sort(exps.begin(), exps.end());
        if (!exps.empty() &&
            exps.back() - exps.front() > fxp::maxExpRange) {
            std::size_t bestLo = 0, bestCount = 0, lo = 0;
            for (std::size_t hi = 0; hi < exps.size(); ++hi) {
                while (exps[hi] - exps[lo] > fxp::maxExpRange)
                    ++lo;
                if (hi - lo + 1 > bestCount) {
                    bestCount = hi - lo + 1;
                    bestLo = lo;
                }
            }
            const int wLo = exps[bestLo];
            for (auto &v : masked) {
                const Fp64Parts p = decompose(v);
                if (p.isZero())
                    continue;
                const int lead = p.exp -
                    (52 - (63 - std::countl_zero(p.mant)));
                if (lead < wLo || lead - wLo > fxp::maxExpRange) {
                    v = 0.0;
                    ++cost.peeledVectorElements;
                }
            }
        }
    }
    const AlignedSet av = alignValues(masked);
    const BiasedSet uv = biasEncode(av);
    const unsigned vecSlices = uv.width();
    cost.vectorSlices = vecSlices;

    // --- per-output-column settle thresholds -------------------------
    // Early termination fires once the remaining-contribution bound
    // falls ~56 bits (mantissa + guard) below the running sum's
    // leading one, provided absorption bits exist in the gap. The
    // final exact sum's magnitude predicts that point independent of
    // the schedule: a column settles at remaining significance
    //   t ~ finalLen - 56 - log2(N) - margin.
    std::vector<std::vector<std::size_t>> rowElems(block.size);
    for (std::size_t e = 0; e < block.elems.size(); ++e)
        rowElems[static_cast<std::size_t>(block.elems[e].row)]
            .push_back(e);

    const unsigned nBits = bitsForCount(clusterSize);
    constexpr int settleMargin = 10;
    // Per column: minimum significance that must be computed
    // (0 = everything); -1 = empty column (never alive).
    std::vector<int> needSig(block.size, 0);
    for (unsigned i = 0; i < block.size; ++i) {
        if (rowElems[i].empty()) {
            needSig[i] = -1;
            continue;
        }
        // Exact signed sum_j FA_ij * Fx_j in the aligned domain.
        SignedAcc acc;
        for (std::size_t e : rowElems[i]) {
            const auto col = static_cast<std::size_t>(
                block.elems[e].col);
            if (av.mag[col].isZero() || am.mag[e].isZero())
                continue;
            const U256 prod = am.mag[e].mulWide(av.mag[col]);
            acc.add(am.neg[e] != av.neg[col], prod);
        }
        if (!cfg.earlyTermination) {
            needSig[i] = 0; // every slice must run
            continue;
        }
        const int len = static_cast<int>(acc.mag.bitLength());
        const int t = len -
                      static_cast<int>(cfg.targetMantissaBits + 3) -
                      static_cast<int>(nBits) - settleMargin;
        needSig[i] = std::max(t, 0);
    }

    // --- map thresholds through the schedule -------------------------
    const ActivationSchedule sched(matSlices, vecSlices, cfg.schedule,
                                   cfg.hybridSkew);
    const auto &groups = sched.groups();
    cost.groupsTotal = groups.size();

    // Last group each column needs.
    std::vector<std::int64_t> lastGroup(block.size, -1);
    std::int64_t maxLast = -1;
    for (unsigned i = 0; i < block.size; ++i) {
        if (needSig[i] < 0)
            continue; // empty
        std::int64_t last = -1;
        for (std::size_t g = 0; g < groups.size(); ++g) {
            if (static_cast<int>(groups[g].maxSignificance) >=
                needSig[i])
                last = static_cast<std::int64_t>(g);
        }
        if (last < 0)
            last = 0;
        lastGroup[i] = last;
        maxLast = std::max(maxLast, last);
    }
    if (maxLast < 0) {
        // Block with only empty rows: nothing executes.
        return cost;
    }

    cost.groupsExecuted = static_cast<std::uint64_t>(maxLast) + 1;
    // Alive columns per group (alive while g <= lastGroup[i]).
    std::vector<std::uint32_t> aliveAt(cost.groupsExecuted, 0);
    for (unsigned i = 0; i < block.size; ++i) {
        if (lastGroup[i] < 0)
            continue;
        for (std::int64_t g = 0; g <= lastGroup[i]; ++g)
            ++aliveAt[static_cast<std::size_t>(g)];
    }

    const XbarModel model(clusterSize, cfg.xbar, cfg.cic);
    double adcEnergy = 0.0;
    // Average headstart: mean stored-ones per column approximated by
    // blocked density times half the rows, bias cells included.
    const double avgOnes =
        (static_cast<double>(block.elems.size()) / block.size) * 0.5 +
        2.0;
    const unsigned startBits = cfg.adcHeadstart
        ? bitsForCount(static_cast<unsigned>(avgOnes))
        : model.adcResolutionBits();
    for (std::size_t g = 0; g < cost.groupsExecuted; ++g) {
        const std::uint64_t acts = groups[g].activations();
        cost.xbarActivations += acts;
        cost.adcConversions += acts * aliveAt[g];
        adcEnergy += static_cast<double>(acts) * aliveAt[g] *
                     model.conversionEnergy(startBits);
    }
    cost.cycles = cost.groupsExecuted * clusterSize + 12;
    cost.latency = static_cast<double>(cost.cycles) / cfg.xbar.fClkHz;
    cost.energy = adcEnergy + static_cast<double>(
        cost.xbarActivations) * model.arrayOpEnergy();

    // --- programming -------------------------------------------------
    // Set-bit count: nonzero operands average half their bits set;
    // zero cells store the (sparse) bias pattern, counted as one SET
    // per cell.
    const std::uint64_t setBits =
        block.elems.size() * (matSlices / 2) +
        (static_cast<std::uint64_t>(block.size) * block.size -
         block.elems.size());
    cost.cellsWritten = setBits;
    cost.programTime = matSlices * model.programTime();
    cost.programEnergy = model.programEnergy(setBits);
    return cost;
}

} // namespace msc
