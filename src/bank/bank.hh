/**
 * @file
 * Bank-level models: the LEON3-class local processor and the
 * memory/buffer system of one bank (paper Sections III-A, VI, VII-B).
 *
 * Each bank owns a 1200-element section of the solution vector and
 * runs three kernels on its local processor: the CSR part of the
 * sparse MVM (elements the crossbars could not take), its share of
 * dense dot products, and its share of AXPY updates. The Bank class
 * turns element counts into seconds and joules; the Accelerator
 * composes banks into system-level kernel costs.
 */

#ifndef MSC_BANK_BANK_HH
#define MSC_BANK_BANK_HH

#include <cstdint>

namespace msc {

/** LEON3-class local processor cost model (Section VII-B). */
struct ProcessorModelParams
{
    double clockHz = 1.2e9;
    double cyclesPerCsrNnz = 4.0;   //!< load idx, load x, FMA, store
    double cyclesPerDotElem = 2.0;
    double cyclesPerAxpyElem = 2.5;
    double kernelStartupCycles = 200.0;
    double clusterServiceCycles = 150.0; //!< interrupt per cluster op
    double energyPerCycle = 40e-12;      //!< joules
    double areaMm2 = 0.15;               //!< core + FPU + L1, 15 nm
};

/** Global memory / buffer model (eDRAM per Table I, CACTI-class). */
struct MemoryModelParams
{
    double globalBandwidth = 1.0e12;     //!< bytes/s aggregate
    double eDramEnergyPerByte = 10e-12;
    double sramEnergyPerByte = 1.2e-12;
    double barrierLatency = 0.25e-6;     //!< cross-bank barrier
    double globalMemAreaMm2 = 54.0;
    double bankBufferAreaMm2 = 0.34;     //!< SRAM + reduction, per bank
};

/**
 * Cost model of one bank's digital side. All methods are pure
 * functions of the parameters; Bank carries no mutable state.
 */
class Bank
{
  public:
    Bank(const ProcessorModelParams &proc,
         const MemoryModelParams &mem)
        : procParams(proc), memParams(mem)
    {}

    const ProcessorModelParams &proc() const { return procParams; }
    const MemoryModelParams &mem() const { return memParams; }

    /** Seconds for this bank's processor to chew @p nnz CSR
     *  elements (Section VI-A1). */
    double
    csrTime(double nnz) const
    {
        return (procParams.kernelStartupCycles +
                nnz * procParams.cyclesPerCsrNnz) /
               procParams.clockHz;
    }

    /** Seconds to service completion interrupts of @p clusterOps
     *  cluster operations. */
    double
    serviceTime(double clusterOps) const
    {
        return clusterOps * procParams.clusterServiceCycles /
               procParams.clockHz;
    }

    /** Seconds for a local dot product over @p elems elements. */
    double
    dotTime(double elems) const
    {
        return (procParams.kernelStartupCycles +
                elems * procParams.cyclesPerDotElem) /
               procParams.clockHz;
    }

    /** Seconds for a local AXPY over @p elems elements. */
    double
    axpyTime(double elems) const
    {
        return (procParams.kernelStartupCycles +
                elems * procParams.cyclesPerAxpyElem) /
               procParams.clockHz;
    }

    /** Joules for @p cycles of processor work. */
    double
    procEnergy(double cycles) const
    {
        return cycles * procParams.energyPerCycle;
    }

    /** Processor cycles per kernel type, exposed so the system model
     *  can aggregate energies across banks. */
    double
    csrCycles(double nnz) const
    {
        return nnz * procParams.cyclesPerCsrNnz;
    }

    double
    dotCycles(double elems) const
    {
        return elems * procParams.cyclesPerDotElem;
    }

    double
    axpyCycles(double elems) const
    {
        return elems * procParams.cyclesPerAxpyElem;
    }

  private:
    ProcessorModelParams procParams;
    MemoryModelParams memParams;
};

} // namespace msc

#endif // MSC_BANK_BANK_HH
