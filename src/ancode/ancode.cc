#include "ancode/ancode.hh"

#include "util/logging.hh"

namespace msc {

AnCode::AnCode(std::uint64_t a, unsigned dataBits)
    : codeA(a), maxDataBits(dataBits)
{
    if (a < 3 || a % 2 == 0)
        fatal("AnCode: A must be an odd constant >= 3, got ", a);
    unsigned checkBits = 0;
    while ((std::uint64_t{1} << checkBits) < a)
        ++checkBits;
    maxCodeBits = maxDataBits + checkBits;
    if (maxCodeBits > 250)
        fatal("AnCode: operand too wide for syndrome table");

    plusSyndrome.assign(a, -1);
    minusSyndrome.assign(a, -1);
    std::uint64_t pow = 1 % a;
    for (unsigned p = 0; p < maxCodeBits; ++p) {
        if (plusSyndrome[pow] < 0)
            plusSyndrome[pow] = static_cast<int>(p);
        const std::uint64_t negSyn = (a - pow) % a;
        if (minusSyndrome[negSyn] < 0)
            minusSyndrome[negSyn] = static_cast<int>(p);
        pow = (pow * 2) % a;
    }
}

U256
AnCode::encode(const U128 &value) const
{
    if (value.bitLength() > maxDataBits) {
        panic("AnCode::encode: value wider (", value.bitLength(),
              ") than dataBits (", maxDataBits, ")");
    }
    U256 w = U256::from(value);
    w.mulSmall(codeA);
    return w;
}

bool
AnCode::check(const U256 &word) const
{
    return word.modSmall(codeA) == 0;
}

U128
AnCode::decode(const U256 &word) const
{
    U256 w = word;
    const std::uint64_t rem = w.divSmall(codeA);
    if (rem != 0)
        panic("AnCode::decode: not a code word (residue ", rem, ")");
    return U128::from(w);
}

unsigned
AnCode::ord2() const
{
    std::uint64_t x = 2 % codeA;
    unsigned k = 1;
    while (x != 1) {
        x = (x * 2) % codeA;
        ++k;
    }
    return k;
}

unsigned
AnCode::uniqueWindow() const
{
    // +2^p collides with +2^q at |p-q| = ord, and with -2^q at
    // |p-q| = ord/2 when 2^(ord/2) == -1 (A odd prime case).
    const unsigned ord = ord2();
    std::uint64_t half = 1;
    for (unsigned i = 0; i < ord / 2; ++i)
        half = (half * 2) % codeA;
    if (ord % 2 == 0 && half == codeA - 1)
        return ord / 2;
    return ord;
}

AnCode::Outcome
AnCode::correct(U256 &word, unsigned maxBits) const
{
    if (maxBits == 0)
        maxBits = maxCodeBits;
    const std::uint64_t syn = word.modSmall(codeA);
    if (syn == 0)
        return Outcome::Clean;

    // Errors are additive (+/- 2^p): a cell or ADC bit flip before
    // the shift-and-add reduction lands in the final word with carry
    // propagation, so correction adds or subtracts 2^p rather than
    // flipping the bit. With the default A = 269 the syndromes are
    // unique across the full 127-bit operand (uniqueWindow() == 134);
    // for constants with smaller windows (e.g. the paper's 251) the
    // lowest-position interpretation is chosen, additive-fix first.
    const int minusPos = minusSyndrome[syn];
    if (minusPos >= 0 && static_cast<unsigned>(minusPos) < maxBits) {
        const U256 fix = U256(1) << static_cast<unsigned>(minusPos);
        U256 candidate = word + fix;
        if (candidate.bitLength() <= maxCodeBits && check(candidate)) {
            word = candidate;
            return Outcome::Corrected;
        }
    }
    const int plusPos = plusSyndrome[syn];
    if (plusPos >= 0 && static_cast<unsigned>(plusPos) < maxBits) {
        const U256 fix = U256(1) << static_cast<unsigned>(plusPos);
        if (word >= fix) {
            U256 candidate = word - fix;
            if (check(candidate)) {
                word = candidate;
                return Outcome::Corrected;
            }
        }
    }
    return Outcome::Uncorrectable;
}

AnCode::Outcome
AnCode::correctSigned(U256 &mag, bool &neg, unsigned maxBits) const
{
    if (maxBits == 0)
        maxBits = maxCodeBits;
    const std::uint64_t magSyn = mag.modSmall(codeA);
    if (magSyn == 0) {
        if (mag.isZero())
            neg = false;
        return Outcome::Clean;
    }
    // Residue of the signed value.
    const std::uint64_t syn = neg ? (codeA - magSyn) % codeA : magSyn;

    // Signed add/subtract of 2^p in sign-magnitude form.
    const auto addSigned = [&](bool fixNeg, const U256 &fix,
                               U256 &m, bool &n) {
        if (fixNeg == n) {
            m += fix;
        } else if (m >= fix) {
            m -= fix;
        } else {
            m = fix - m;
            n = fixNeg;
        }
        if (m.isZero())
            n = false;
    };

    // The error subtracted 2^p: add it back (signed).
    const int minusPos = minusSyndrome[syn];
    if (minusPos >= 0 && static_cast<unsigned>(minusPos) < maxBits) {
        U256 m = mag;
        bool n = neg;
        addSigned(false, U256(1) << static_cast<unsigned>(minusPos),
                  m, n);
        if (m.bitLength() <= maxCodeBits && m.modSmall(codeA) == 0) {
            mag = m;
            neg = n;
            return Outcome::Corrected;
        }
    }
    // The error added 2^p: remove it (signed).
    const int plusPos = plusSyndrome[syn];
    if (plusPos >= 0 && static_cast<unsigned>(plusPos) < maxBits) {
        U256 m = mag;
        bool n = neg;
        addSigned(true, U256(1) << static_cast<unsigned>(plusPos),
                  m, n);
        if (m.bitLength() <= maxCodeBits && m.modSmall(codeA) == 0) {
            mag = m;
            neg = n;
            return Outcome::Corrected;
        }
    }
    return Outcome::Uncorrectable;
}

} // namespace msc
