/**
 * @file
 * AN-code arithmetic error detection and correction.
 *
 * Following Feinberg et al. (HPCA 2018), adopted with modifications in
 * Section IV-E of the ISCA 2018 paper: a single A = 251 code protects
 * each 118-bit fixed-point operand with eight bits of correction and
 * one bit of detection, for a full operand width of up to 127 bits.
 * AN codes are preserved by addition, so the shift-and-add reduction
 * of partial dot products keeps the code word property; correction is
 * applied after the reduction and before leading-one detection.
 *
 * A single-bit error at position p turns a code word N = A*v into
 * N +/- 2^p. The residue mod A uniquely identifies (p, direction)
 * only when the powers +/-2^p mod A are pairwise distinct over the
 * operand width, i.e. when ord_2(A) >= 2 * width.
 *
 * Deviation from the paper: the paper names A = 251, but
 * ord_2(251) = 50, so +/-2^p syndromes repeat every 25 bits and a
 * single-bit error in a 127-bit operand cannot be uniquely located.
 * The default here is A = 269 (prime, ord_2 = 268), which yields
 * unique correction over the full operand and still costs exactly
 * nine check bits: 118 data bits + 9 = the paper's 127-bit operand.
 * A = 251 remains constructible for the ambiguity ablation test.
 */

#ifndef MSC_ANCODE_ANCODE_HH
#define MSC_ANCODE_ANCODE_HH

#include <cstdint>
#include <vector>

#include "wideint/wideint.hh"

namespace msc {

class AnCode
{
  public:
    /**
     * @param a          the code constant (default 269; see above)
     * @param dataBits   maximum protected operand width in bits
     */
    explicit AnCode(std::uint64_t a = 269, unsigned dataBits = 118);

    /** Multiplicative order of 2 modulo A. */
    unsigned ord2() const;

    /**
     * Largest window (in bits) within which every single-bit error
     * has a unique syndrome: min distance between colliding +/-2^p
     * residues.
     */
    unsigned uniqueWindow() const;

    std::uint64_t a() const { return codeA; }
    unsigned dataBits() const { return maxDataBits; }
    /** Width of an encoded operand: dataBits + ceil(log2(A)). */
    unsigned codeBits() const { return maxCodeBits; }

    /** Encode a value: N = A * v. Value must fit in dataBits. */
    U256 encode(const U128 &value) const;

    /** True when @p word is a valid code word (residue 0). */
    bool check(const U256 &word) const;

    /** Decode a valid code word back to its value; fatal if invalid. */
    U128 decode(const U256 &word) const;

    /** Result of a correction attempt. */
    enum class Outcome
    {
        Clean,          //!< residue zero, no error
        Corrected,      //!< single-bit error fixed
        Uncorrectable,  //!< residue matches no single-bit syndrome
    };

    /**
     * Correct an (at most) single-bit error in place.
     *
     * @param word      possibly corrupted code word
     * @param maxBits   highest bit position + 1 that may be in error
     *                  (defaults to codeBits())
     */
    Outcome correct(U256 &word, unsigned maxBits = 0) const;

    /**
     * Correct a signed (sign-magnitude) code word in place.
     *
     * De-biased partial dot products are signed; an additive error
     * larger than the word's magnitude flips its sign, which
     * magnitude-only correction cannot undo. This variant performs
     * the +-2^p candidate arithmetic in the signed domain, exactly
     * as a two's-complement ECU would.
     */
    Outcome correctSigned(U256 &mag, bool &neg,
                          unsigned maxBits = 0) const;

  private:
    std::uint64_t codeA;
    unsigned maxDataBits;
    unsigned maxCodeBits;
    /** syndrome -> bit position for +2^p errors; -1 if unused. */
    std::vector<int> plusSyndrome;
    /** syndrome -> bit position for -2^p errors; -1 if unused. */
    std::vector<int> minusSyndrome;
};

} // namespace msc

#endif // MSC_ANCODE_ANCODE_HH
