/**
 * @file
 * Fixed-width big unsigned integers for aligned fixed-point arithmetic.
 *
 * The accelerator of Feinberg et al. (ISCA 2018) converts IEEE-754
 * doubles into aligned fixed-point operands of up to 118 bits, encodes
 * them with a 9-bit AN code into up to 127 bits, and accumulates
 * partial dot products whose width can exceed 128 bits. WideUInt<NW>
 * provides the exact integer arithmetic needed to model this at the
 * bit level: NW 64-bit words in little-endian word order.
 */

#ifndef MSC_WIDEINT_WIDEINT_HH
#define MSC_WIDEINT_WIDEINT_HH

#include <array>
#include <bit>
#include <compare>
#include <cstdint>
#include <string>

#include "util/logging.hh"

namespace msc {

template <unsigned NW>
class WideUInt
{
    static_assert(NW >= 1, "WideUInt needs at least one word");

  public:
    static constexpr unsigned numWords = NW;
    static constexpr unsigned numBits = NW * 64;

    constexpr WideUInt() : w{} {}

    constexpr WideUInt(std::uint64_t v) : w{} { w[0] = v; } // NOLINT

    /** Construct from a word array (little endian). */
    explicit constexpr WideUInt(const std::array<std::uint64_t, NW> &words)
        : w(words)
    {}

    /** Widen or truncate from another width. Truncation keeps low bits. */
    template <unsigned MW>
    static constexpr WideUInt
    from(const WideUInt<MW> &other)
    {
        WideUInt r;
        for (unsigned i = 0; i < NW && i < MW; ++i)
            r.w[i] = other.word(i);
        return r;
    }

    constexpr std::uint64_t word(unsigned i) const { return w[i]; }
    constexpr void setWord(unsigned i, std::uint64_t v) { w[i] = v; }

    constexpr bool
    isZero() const
    {
        for (auto word : w)
            if (word)
                return false;
        return true;
    }

    /** Value of bit @p pos (0 = LSB); out-of-range bits read as 0. */
    constexpr bool
    bit(unsigned pos) const
    {
        if (pos >= numBits)
            return false;
        return (w[pos / 64] >> (pos % 64)) & 1;
    }

    constexpr void
    setBit(unsigned pos, bool v = true)
    {
        if (pos >= numBits)
            panic("WideUInt::setBit out of range: ", pos);
        if (v)
            w[pos / 64] |= (std::uint64_t{1} << (pos % 64));
        else
            w[pos / 64] &= ~(std::uint64_t{1} << (pos % 64));
    }

    /**
     * Bits [pos, pos+width) as a 64-bit value, width <= 64.
     * Bits beyond numBits read as zero. Used by the slice-group
     * kernels to extract narrow bit-range operands without
     * materializing wide masked temporaries.
     */
    constexpr std::uint64_t
    extractBits(unsigned pos, unsigned width) const
    {
        const unsigned wi = pos / 64;
        const unsigned bi = pos % 64;
        std::uint64_t v = wi < NW ? (w[wi] >> bi) : 0;
        if (bi && wi + 1 < NW)
            v |= w[wi + 1] << (64 - bi);
        if (width < 64)
            v &= (std::uint64_t{1} << width) - 1;
        return v;
    }

    /** Flip bit @p pos; models a single-bit transmission/storage error. */
    constexpr void
    flipBit(unsigned pos)
    {
        if (pos >= numBits)
            panic("WideUInt::flipBit out of range: ", pos);
        w[pos / 64] ^= (std::uint64_t{1} << (pos % 64));
    }

    /** Number of significant bits; 0 for the value zero. */
    constexpr unsigned
    bitLength() const
    {
        for (int i = NW - 1; i >= 0; --i) {
            if (w[i])
                return static_cast<unsigned>(i) * 64 +
                       (64 - std::countl_zero(w[i]));
        }
        return 0;
    }

    /** Number of significant 64-bit words; 0 for the value zero.
     *  The width-aware arithmetic paths below use this to skip zero
     *  high limbs: accumulators rarely fill all NW words. */
    constexpr unsigned
    sigWords() const
    {
        for (int i = NW - 1; i >= 0; --i) {
            if (w[i])
                return static_cast<unsigned>(i) + 1;
        }
        return 0;
    }

    constexpr unsigned
    popcount() const
    {
        unsigned n = 0;
        for (auto word : w)
            n += static_cast<unsigned>(std::popcount(word));
        return n;
    }

    /** Index of the lowest set bit, or numBits when zero. */
    constexpr unsigned
    countTrailingZeros() const
    {
        for (unsigned i = 0; i < NW; ++i) {
            if (w[i])
                return i * 64 +
                       static_cast<unsigned>(std::countr_zero(w[i]));
        }
        return numBits;
    }

    // --- addition / subtraction -------------------------------------

    constexpr WideUInt &
    operator+=(const WideUInt &o)
    {
        const unsigned n = o.sigWords();
        unsigned __int128 carry = 0;
        for (unsigned i = 0; i < n; ++i) {
            carry += w[i];
            carry += o.w[i];
            w[i] = static_cast<std::uint64_t>(carry);
            carry >>= 64;
        }
        for (unsigned i = n; carry && i < NW; ++i) {
            carry += w[i];
            w[i] = static_cast<std::uint64_t>(carry);
            carry >>= 64;
        }
        return *this;
    }

    constexpr WideUInt &
    operator-=(const WideUInt &o)
    {
        const unsigned n = o.sigWords();
        unsigned __int128 borrow = 0;
        for (unsigned i = 0; i < n; ++i) {
            unsigned __int128 lhs = w[i];
            unsigned __int128 rhs =
                static_cast<unsigned __int128>(o.w[i]) + borrow;
            if (lhs >= rhs) {
                w[i] = static_cast<std::uint64_t>(lhs - rhs);
                borrow = 0;
            } else {
                w[i] = static_cast<std::uint64_t>(
                    (lhs + (static_cast<unsigned __int128>(1) << 64)) - rhs);
                borrow = 1;
            }
        }
        for (unsigned i = n; borrow && i < NW; ++i) {
            if (w[i]) {
                --w[i];
                borrow = 0;
            } else {
                w[i] = ~std::uint64_t{0};
            }
        }
        return *this;
    }

    friend constexpr WideUInt
    operator+(WideUInt a, const WideUInt &b)
    {
        a += b;
        return a;
    }

    friend constexpr WideUInt
    operator-(WideUInt a, const WideUInt &b)
    {
        a -= b;
        return a;
    }

    /** this += (o << shift), without materializing the shifted value. */
    constexpr void
    addShifted(const WideUInt &o, unsigned shift)
    {
        const unsigned n = o.sigWords();
        if (n == 0)
            return;
        const unsigned wordShift = shift / 64;
        const unsigned bitShift = shift % 64;
        unsigned __int128 carry = 0;
        for (unsigned i = wordShift; i < NW; ++i) {
            const unsigned src = i - wordShift;
            // Beyond o's significant words every piece is zero; only
            // a pending carry still needs to ripple.
            if (src > n && !carry)
                break;
            std::uint64_t piece = 0;
            if (src < n)
                piece = o.w[src] << bitShift;
            if (bitShift && src >= 1 && src - 1 < n)
                piece |= o.w[src - 1] >> (64 - bitShift);
            carry += w[i];
            carry += piece;
            w[i] = static_cast<std::uint64_t>(carry);
            carry >>= 64;
        }
    }

    // --- shifts -------------------------------------------------------

    constexpr WideUInt &
    operator<<=(unsigned s)
    {
        if (s >= numBits) {
            w = {};
            return *this;
        }
        const unsigned wordShift = s / 64;
        const unsigned bitShift = s % 64;
        const unsigned n = sigWords();
        for (int i = NW - 1; i >= 0; --i) {
            const int src = i - static_cast<int>(wordShift);
            // Source words at or above n are zero: skip the shifts.
            if (src >= static_cast<int>(n) + 1 || src < -1) {
                w[i] = 0;
                continue;
            }
            std::uint64_t v = 0;
            if (src >= 0 && src < static_cast<int>(n))
                v = w[src] << bitShift;
            if (bitShift && src - 1 >= 0 &&
                src - 1 < static_cast<int>(n))
                v |= w[src - 1] >> (64 - bitShift);
            w[i] = v;
        }
        return *this;
    }

    constexpr WideUInt &
    operator>>=(unsigned s)
    {
        if (s >= numBits) {
            w = {};
            return *this;
        }
        const unsigned wordShift = s / 64;
        const unsigned bitShift = s % 64;
        const unsigned n = sigWords();
        for (unsigned i = 0; i < NW; ++i) {
            const unsigned src = i + wordShift;
            // Source words at or above n are zero: skip the shifts.
            if (src >= n) {
                w[i] = 0;
                continue;
            }
            std::uint64_t v = w[src] >> bitShift;
            if (bitShift && src + 1 < n)
                v |= w[src + 1] << (64 - bitShift);
            w[i] = v;
        }
        return *this;
    }

    friend constexpr WideUInt
    operator<<(WideUInt a, unsigned s)
    {
        a <<= s;
        return a;
    }

    friend constexpr WideUInt
    operator>>(WideUInt a, unsigned s)
    {
        a >>= s;
        return a;
    }

    // --- bitwise ------------------------------------------------------

    constexpr WideUInt &
    operator&=(const WideUInt &o)
    {
        for (unsigned i = 0; i < NW; ++i)
            w[i] &= o.w[i];
        return *this;
    }

    constexpr WideUInt &
    operator|=(const WideUInt &o)
    {
        for (unsigned i = 0; i < NW; ++i)
            w[i] |= o.w[i];
        return *this;
    }

    constexpr WideUInt &
    operator^=(const WideUInt &o)
    {
        for (unsigned i = 0; i < NW; ++i)
            w[i] ^= o.w[i];
        return *this;
    }

    friend constexpr WideUInt
    operator&(WideUInt a, const WideUInt &b)
    {
        a &= b;
        return a;
    }

    friend constexpr WideUInt
    operator|(WideUInt a, const WideUInt &b)
    {
        a |= b;
        return a;
    }

    friend constexpr WideUInt
    operator^(WideUInt a, const WideUInt &b)
    {
        a ^= b;
        return a;
    }

    constexpr WideUInt
    operator~() const
    {
        WideUInt r;
        for (unsigned i = 0; i < NW; ++i)
            r.w[i] = ~w[i];
        return r;
    }

    // --- comparison -----------------------------------------------------

    friend constexpr bool
    operator==(const WideUInt &a, const WideUInt &b)
    {
        return a.w == b.w;
    }

    friend constexpr std::strong_ordering
    operator<=>(const WideUInt &a, const WideUInt &b)
    {
        for (int i = NW - 1; i >= 0; --i) {
            if (a.w[i] != b.w[i])
                return a.w[i] <=> b.w[i];
        }
        return std::strong_ordering::equal;
    }

    // --- multiplication / division --------------------------------------

    /** Multiply by a 64-bit value in place; overflow bits are dropped. */
    constexpr WideUInt &
    mulSmall(std::uint64_t m)
    {
        const unsigned n = sigWords();
        unsigned __int128 carry = 0;
        for (unsigned i = 0; i < n; ++i) {
            unsigned __int128 p =
                static_cast<unsigned __int128>(w[i]) * m + carry;
            w[i] = static_cast<std::uint64_t>(p);
            carry = p >> 64;
        }
        // The carry out of a 64x64 multiply-add fits one word.
        if (carry && n < NW)
            w[n] = static_cast<std::uint64_t>(carry);
        return *this;
    }

    /** Remainder modulo a small (<2^32 recommended) divisor. */
    constexpr std::uint64_t
    modSmall(std::uint64_t d) const
    {
        unsigned __int128 rem = 0;
        for (int i = static_cast<int>(sigWords()) - 1; i >= 0; --i) {
            rem = ((rem << 64) | w[i]) % d;
        }
        return static_cast<std::uint64_t>(rem);
    }

    /** Divide in place by a 64-bit divisor; returns the remainder. */
    constexpr std::uint64_t
    divSmall(std::uint64_t d)
    {
        if (d == 0)
            panic("WideUInt::divSmall by zero");
        unsigned __int128 rem = 0;
        for (int i = static_cast<int>(sigWords()) - 1; i >= 0; --i) {
            unsigned __int128 cur = (rem << 64) | w[i];
            w[i] = static_cast<std::uint64_t>(cur / d);
            rem = cur % d;
        }
        return static_cast<std::uint64_t>(rem);
    }

    /**
     * Full widening multiply of two WideUInts.
     *
     * @return a WideUInt wide enough to hold the exact product.
     */
    template <unsigned MW>
    constexpr WideUInt<NW + MW>
    mulWide(const WideUInt<MW> &o) const
    {
        WideUInt<NW + MW> r;
        for (unsigned i = 0; i < NW; ++i) {
            if (!w[i])
                continue;
            std::uint64_t carry = 0;
            for (unsigned j = 0; j < MW; ++j) {
                unsigned __int128 p =
                    static_cast<unsigned __int128>(w[i]) * o.word(j);
                p += r.word(i + j);
                p += carry;
                r.setWord(i + j, static_cast<std::uint64_t>(p));
                carry = static_cast<std::uint64_t>(p >> 64);
            }
            unsigned k = i + MW;
            while (carry) {
                unsigned __int128 p =
                    static_cast<unsigned __int128>(r.word(k)) + carry;
                r.setWord(k, static_cast<std::uint64_t>(p));
                carry = static_cast<std::uint64_t>(p >> 64);
                ++k;
            }
        }
        return r;
    }

    // --- conversions -----------------------------------------------------

    /** Low 64 bits. */
    constexpr std::uint64_t low() const { return w[0]; }

    /** Approximate conversion to double (round-to-nearest by ladder). */
    double
    toDouble() const
    {
        double r = 0.0;
        for (int i = NW - 1; i >= 0; --i)
            r = r * 0x1.0p64 + static_cast<double>(w[i]);
        return r;
    }

    std::string
    toHex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string s;
        bool started = false;
        for (int i = NW - 1; i >= 0; --i) {
            for (int nib = 15; nib >= 0; --nib) {
                unsigned d =
                    static_cast<unsigned>((w[i] >> (nib * 4)) & 0xf);
                if (d != 0)
                    started = true;
                if (started)
                    s.push_back(digits[d]);
            }
        }
        if (!started)
            s = "0";
        return "0x" + s;
    }

  private:
    std::array<std::uint64_t, NW> w;
};

using U128 = WideUInt<2>;
using U192 = WideUInt<3>;
using U256 = WideUInt<4>;
using U320 = WideUInt<5>;

} // namespace msc

#endif // MSC_WIDEINT_WIDEINT_HH
