#include "xbar/model.hh"

#include <cmath>

#include "util/intlog.hh"
#include "util/logging.hh"

namespace msc {

XbarModel::XbarModel(unsigned n, const XbarModelParams &params, bool c)
    : size(n), prm(params), cic(c)
{
    if (n < 2 || (n & (n - 1)) != 0)
        fatal("XbarModel: crossbar size must be a power of two >= 2, "
              "got ", n);
}

unsigned
XbarModel::adcResolutionBits() const
{
    // ceil(log2(N+1)) bits to cover outputs 0..N; CIC statically
    // bounds columns to < N/2 ones, saving one bit (Section V-B2).
    unsigned bits = bitsForCount(size);
    if (cic)
        --bits;
    return bits;
}

double
XbarModel::conversionLatency() const
{
    return 1.0 / prm.fClkHz;
}

double
XbarModel::opLatency() const
{
    // One column conversion per cycle, N columns, fully pipelined.
    return size * conversionLatency();
}

double
XbarModel::opEnergy() const
{
    // Equals the Table III calibration when CIC is on; disabling CIC
    // pays one extra ADC bit on top of the unchanged array share.
    return arrayOpEnergy() + adcOpEnergy();
}

double
XbarModel::adcPowerScale(unsigned bits) const
{
    // 20% static + 7% exponential + 73% linear, referenced to 10 bits
    // (Section VII-A, from the Kull et al. pipelined SAR design).
    const double r = static_cast<double>(bits);
    const double ref = static_cast<double>(prm.refAdcBits);
    return 0.20 + 0.07 * std::pow(2.0, r - ref) + 0.73 * (r / ref);
}

double
XbarModel::adcAreaScale(unsigned bits) const
{
    const double r = static_cast<double>(bits);
    const double ref = static_cast<double>(prm.refAdcBits);
    return 0.23 * std::pow(2.0, r - ref) + 0.77 * (r / ref);
}

double
XbarModel::adcEnergyAtBits(unsigned bits) const
{
    // Share calibrated at N=512 with CIC on (the design point of
    // Table III); other sizes and configurations follow the power
    // scale and their conversion count (N per op).
    const XbarModel ref(512, prm, true);
    const double refAdc = ref.tableOpEnergy() * prm.adcEnergyShare512;
    const double perConvRef =
        refAdc / (512.0 * adcPowerScale(ref.adcResolutionBits()));
    return perConvRef * size * adcPowerScale(bits);
}

double
XbarModel::tableOpEnergy() const
{
    return prm.energyPerNlogN * 1e-12 * size * std::log2(size);
}

double
XbarModel::adcOpEnergy() const
{
    return adcEnergyAtBits(adcResolutionBits());
}

double
XbarModel::arrayOpEnergy() const
{
    // The array/driver/S&H share is independent of the ADC
    // resolution: subtract the calibrated (CIC-on) ADC share from
    // the Table III total.
    const XbarModel cicOn(size, prm, true);
    const double adcRef = adcEnergyAtBits(cicOn.adcResolutionBits());
    const double total = tableOpEnergy();
    return total > adcRef ? total - adcRef : 0.0;
}

double
XbarModel::conversionEnergy(unsigned startBits) const
{
    const unsigned res = adcResolutionBits();
    const double full = adcOpEnergy() / size;
    if (startBits >= res)
        return full;
    // The SAR search resolves one bit per internal step; starting at
    // the highest possible output bit skips (res - startBits) steps.
    // 20% of the ADC energy is static (burned regardless, since the
    // conversion slot is synchronous).
    const double dynamic = 0.8 * full;
    const double frac = static_cast<double>(startBits) / res;
    return 0.2 * full + dynamic * frac;
}

double
XbarModel::area() const
{
    return prm.areaConst + prm.areaPerN * size +
           prm.areaPerN2 * static_cast<double>(size) * size;
}

double
XbarModel::adcArea() const
{
    const XbarModel ref(512, prm, true);
    const double refAdcArea = ref.area() * prm.adcAreaShare512;
    const double perRef = refAdcArea /
        adcAreaScale(ref.adcResolutionBits());
    return perRef * adcAreaScale(adcResolutionBits());
}

double
XbarModel::programTime() const
{
    return size * prm.cell.writeTime;
}

double
XbarModel::programEnergy(std::uint64_t cellsWritten) const
{
    return static_cast<double>(cellsWritten) * prm.cell.writeEnergy;
}

} // namespace msc
