#include "xbar/crossbar.hh"

#include "util/intlog.hh"
#include "util/logging.hh"

namespace msc {

BinaryCrossbar::BinaryCrossbar(unsigned rows, unsigned cols)
    : nRows(rows), nCols(cols),
      colBits(cols, BitVec(rows)), inverted(cols, 0)
{
    if (rows == 0 || cols == 0)
        fatal("BinaryCrossbar: zero dimension");
}

void
BinaryCrossbar::set(unsigned row, unsigned col, bool v)
{
    if (row >= nRows || col >= nCols)
        panic("BinaryCrossbar::set out of range");
    colBits[col].set(row, v);
}

bool
BinaryCrossbar::get(unsigned row, unsigned col) const
{
    if (row >= nRows || col >= nCols)
        panic("BinaryCrossbar::get out of range");
    return colBits[col].get(row);
}

void
BinaryCrossbar::clear()
{
    for (auto &col : colBits)
        col.resize(nRows);
}

unsigned
BinaryCrossbar::applyCic()
{
    unsigned flipped = 0;
    cornerCases = 0;
    for (unsigned c = 0; c < nCols; ++c) {
        const std::size_t ones = colBits[c].popcount();
        if (2 * ones > nRows) {
            colBits[c].invert();
            inverted[c] = 1;
            ++flipped;
        } else if (2 * ones == nRows) {
            // Exactly half: still needs log2(N) bits; the system
            // evicts one element to the local processor to erase the
            // corner case (Section V-B2). Recorded for the caller.
            ++cornerCases;
        }
    }
    return flipped;
}

bool
BinaryCrossbar::columnInverted(unsigned col) const
{
    return inverted[col] != 0;
}

unsigned
BinaryCrossbar::columnOnes(unsigned col) const
{
    return static_cast<unsigned>(colBits[col].popcount());
}

unsigned
BinaryCrossbar::columnMaxOutputBits(unsigned col) const
{
    return bitsForCount(columnOnes(col));
}

std::int64_t
BinaryCrossbar::readColumn(unsigned col, const BitVec &input) const
{
    return static_cast<std::int64_t>(colBits[col].dot(input));
}

std::int64_t
BinaryCrossbar::readColumnNoisy(unsigned col, const BitVec &input,
                                const ColumnReadModel &model,
                                Rng *rng) const
{
    // Read straight off the packed column bits: no per-call level
    // buffer. The BitVec overload preserves the draw and accumulation
    // order of the materialized form bit for bit.
    return model.read(colBits[col], input, rng);
}

std::int64_t
BinaryCrossbar::logicalColumn(unsigned col, const BitVec &input) const
{
    const std::int64_t raw = readColumn(col, input);
    if (!inverted[col])
        return raw;
    return static_cast<std::int64_t>(input.popcount()) - raw;
}

} // namespace msc
