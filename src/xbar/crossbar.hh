/**
 * @file
 * Functional model of a single bit-slice crossbar.
 *
 * Terminology follows the paper's memory-system convention: matrix
 * rows are mapped to crossbar *columns*; the vector bit slice is
 * applied to crossbar *rows*. A column read returns the number of
 * activated on-cells in that column (the binary dot product), either
 * exactly or through the device noise model.
 */

#ifndef MSC_XBAR_CROSSBAR_HH
#define MSC_XBAR_CROSSBAR_HH

#include <cstdint>
#include <vector>

#include "device/cell.hh"
#include "util/bitvec.hh"

namespace msc {

class BinaryCrossbar
{
  public:
    BinaryCrossbar(unsigned rows, unsigned cols);

    unsigned rows() const { return nRows; }
    unsigned cols() const { return nCols; }

    void set(unsigned row, unsigned col, bool v = true);
    bool get(unsigned row, unsigned col) const;

    /**
     * Zero every stored cell, keeping the CIC inversion flags: a
     * dead array reads no current, but the digital invert-coding
     * correction downstream still fires. Models whole-crossbar
     * death (driver/selector failure) for the fault subsystem.
     */
    void clear();

    /**
     * Computational invert coding (Section V-B2): store the
     * complement of any column with more than rows/2 ones, so the
     * ADC never needs the full log2(N+1) bits. Returns the number of
     * columns inverted. Columns with exactly rows/2 ones are counted
     * by denseCornerCases(); the blocking preprocessor is expected
     * to evict one element in that case.
     */
    unsigned applyCic();

    bool columnInverted(unsigned col) const;
    unsigned denseCornerCases() const { return cornerCases; }

    /** Ones in the stored (possibly inverted) column. */
    unsigned columnOnes(unsigned col) const;

    /** Max output bits of a column: ceil(log2(ones+1)); the ADC
     *  headstart preset (Section V-B2). */
    unsigned columnMaxOutputBits(unsigned col) const;

    /**
     * Exact column read: popcount of (stored column AND input). The
     * caller is responsible for the CIC digital correction
     * (pc(input) - result) when columnInverted().
     */
    std::int64_t readColumn(unsigned col, const BitVec &input) const;

    /** Column read through the analog device model. */
    std::int64_t readColumnNoisy(unsigned col, const BitVec &input,
                                 const ColumnReadModel &model,
                                 Rng *rng) const;

    /**
     * Logical dot product of column @p col with @p input: the exact
     * read with CIC correction already applied.
     */
    std::int64_t logicalColumn(unsigned col, const BitVec &input) const;

    /**
     * Packed stored bits of column @p col (post-CIC). Lets batch
     * readers flatten many columns into a contiguous word matrix and
     * popcount against it directly instead of paying the
     * vector-of-BitVec indirections once per read.
     */
    const BitVec &column(unsigned col) const { return colBits[col]; }

  private:
    unsigned nRows;
    unsigned nCols;
    std::vector<BitVec> colBits;          //!< per column, length rows
    std::vector<std::uint8_t> inverted;
    unsigned cornerCases = 0;
};

} // namespace msc

#endif // MSC_XBAR_CROSSBAR_HH
