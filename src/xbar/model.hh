/**
 * @file
 * Analytic area, energy, and latency models of a bit-slice crossbar
 * with its ADC and peripheral circuitry.
 *
 * Scaling laws follow Section V-A of the paper:
 *   - conversion latency: M ADC conversions, one per cycle, so a
 *     crossbar operation takes N cycles at fClk (427 ns at N=512);
 *   - per-operation energy grows with N log2 N (ADC-dominated, CIC
 *     included); calibrated to Table III;
 *   - area grows as a + bN + dN^2 (drivers + cells + ADC);
 *     calibrated to Table III.
 *
 * The ADC sub-model implements the resolution scaling of Section
 * VII-A: of the reference 10-bit 1.2 GHz pipelined SAR ADC power,
 * 20% is static, 7% scales exponentially with resolution, and the
 * rest linearly; 23% of area scales exponentially, the rest linearly.
 */

#ifndef MSC_XBAR_MODEL_HH
#define MSC_XBAR_MODEL_HH

#include <cstdint>

#include "device/cell.hh"

namespace msc {

/** Crossbar/ADC design parameters (Table I defaults). */
struct XbarModelParams
{
    double fClkHz = 1.2e9;          //!< ADC and pipeline clock
    double vdd = 0.80;
    /** Calibrated per-op energy coefficient: E = c * N log2 N [pJ]. */
    double energyPerNlogN = 0.0729;
    /** Area fit A(N) = a + b N + d N^2 [mm^2] (Table III). */
    double areaConst = 6.80e-4;
    double areaPerN = 1.797e-6;
    double areaPerN2 = 7.324e-9;
    /** Fraction of per-op energy spent in the ADC at N = 512. */
    double adcEnergyShare512 = 0.459;
    /** Fraction of crossbar area that is ADC at N = 512, chosen so
     *  that the ADC share aggregated over the heterogeneous cluster
     *  mix lands at 45.9% and crossbars+periphery dominate at 54.1%
     *  (Section VIII-C). */
    double adcAreaShare512 = 0.265;
    /** Reference ADC resolution the shares are quoted at. */
    unsigned refAdcBits = 10;
    CellParams cell;
};

/**
 * Per-size analytic model of one bit-slice crossbar (N x N cells,
 * one pipelined SAR ADC, 2N drivers, N sample-and-hold circuits).
 */
class XbarModel
{
  public:
    XbarModel(unsigned n, const XbarModelParams &params = {},
              bool cic = true);

    unsigned n() const { return size; }
    bool cicEnabled() const { return cic; }

    /** ADC resolution in bits: ceil(log2(N+1)), minus one with CIC
     *  (computational invert coding, Section V-B2). */
    unsigned adcResolutionBits() const;

    /** Latency of one crossbar operation (apply one vector slice,
     *  scan all N columns), in seconds. */
    double opLatency() const;

    /** Seconds per single column conversion (one clock). */
    double conversionLatency() const;

    /** Energy of one full crossbar operation in joules (Table III
     *  calibration, includes the ADC at full resolution). */
    double opEnergy() const;

    /** ADC portion of opEnergy(). */
    double adcOpEnergy() const;

    /** Crossbar array + drivers + S/H portion of opEnergy(). */
    double arrayOpEnergy() const;

    /**
     * Energy of one column conversion when the ADC starts its binary
     * search at @p startBits instead of full resolution (ADC
     * headstart, Section V-B2). startBits >= resolution means no
     * saving.
     */
    double conversionEnergy(unsigned startBits) const;

    /** Total area of the crossbar + periphery + ADC in mm^2. */
    double area() const;

    /** ADC portion of area(). */
    double adcArea() const;

    /** Programming time for the full array (row-parallel writes):
     *  N * writeTime seconds. */
    double programTime() const;

    /** Energy to program @p cellsWritten cells. */
    double programEnergy(std::uint64_t cellsWritten) const;

    const XbarModelParams &params() const { return prm; }

  private:
    /** Table III calibrated per-op total (the CIC-on design point). */
    double tableOpEnergy() const;

    /** ADC energy of one op at an arbitrary resolution. */
    double adcEnergyAtBits(unsigned bits) const;

    /** Resolution-dependent ADC power scale factor, normalized to
     *  the reference resolution. */
    double adcPowerScale(unsigned bits) const;
    double adcAreaScale(unsigned bits) const;

    unsigned size;
    XbarModelParams prm;
    bool cic;
};

} // namespace msc

#endif // MSC_XBAR_MODEL_HH
