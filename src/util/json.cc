#include "util/json.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace msc {

namespace {

[[noreturn]] void
syntaxError(const std::string &what, std::size_t pos)
{
    fatal("json: ", what, " at offset ", pos);
}

} // namespace

/** Recursive-descent parser over a string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : src(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos != src.size())
            syntaxError("trailing characters", pos);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos < src.size() &&
               std::isspace(static_cast<unsigned char>(src[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= src.size())
            syntaxError("unexpected end of input", pos);
        return src[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            syntaxError(std::string("expected '") + c + "'", pos);
        ++pos;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
            return parseBool();
          case 'n':
            return parseNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        v.valueKind = JsonValue::Kind::Object;
        expect('{');
        if (peek() == '}') {
            ++pos;
            return v;
        }
        while (true) {
            const JsonValue key = parseString();
            expect(':');
            v.objectValue.emplace(key.stringValue, parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        v.valueKind = JsonValue::Kind::Array;
        expect('[');
        if (peek() == ']') {
            ++pos;
            return v;
        }
        while (true) {
            v.arrayValue.push_back(parseValue());
            const char c = peek();
            if (c == ',') {
                ++pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue v;
        v.valueKind = JsonValue::Kind::String;
        std::string &out = v.stringValue;
        while (true) {
            if (pos >= src.size())
                syntaxError("unterminated string", pos);
            const char c = src[pos++];
            if (c == '"')
                break;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= src.size())
                syntaxError("unterminated escape", pos);
            const char esc = src[pos++];
            switch (esc) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                if (pos + 4 > src.size())
                    syntaxError("bad \\u escape", pos);
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = src[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        syntaxError("bad hex digit", pos);
                }
                // UTF-8 encode (BMP only; surrogate pairs are out of
                // scope for config files).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(
                        0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(
                        0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(
                        0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(
                        0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                syntaxError("unknown escape", pos);
            }
        }
        return v;
    }

    JsonValue
    parseBool()
    {
        JsonValue v;
        v.valueKind = JsonValue::Kind::Bool;
        if (src.compare(pos, 4, "true") == 0) {
            v.boolValue = true;
            pos += 4;
        } else if (src.compare(pos, 5, "false") == 0) {
            v.boolValue = false;
            pos += 5;
        } else {
            syntaxError("bad literal", pos);
        }
        return v;
    }

    JsonValue
    parseNull()
    {
        if (src.compare(pos, 4, "null") != 0)
            syntaxError("bad literal", pos);
        pos += 4;
        return JsonValue{};
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos;
        if (pos < src.size() && (src[pos] == '-' || src[pos] == '+'))
            ++pos;
        bool any = false;
        auto digits = [&] {
            while (pos < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[pos]))) {
                ++pos;
                any = true;
            }
        };
        digits();
        if (pos < src.size() && src[pos] == '.') {
            ++pos;
            digits();
        }
        if (pos < src.size() && (src[pos] == 'e' || src[pos] == 'E')) {
            ++pos;
            if (pos < src.size() &&
                (src[pos] == '-' || src[pos] == '+'))
                ++pos;
            digits();
        }
        if (!any)
            syntaxError("bad number", start);
        JsonValue v;
        v.valueKind = JsonValue::Kind::Number;
        v.numberValue = std::strtod(src.c_str() + start, nullptr);
        return v;
    }

    const std::string &src;
    std::size_t pos = 0;
};

bool
JsonValue::asBool() const
{
    if (valueKind != Kind::Bool)
        fatal("json: not a bool");
    return boolValue;
}

double
JsonValue::asNumber() const
{
    if (valueKind != Kind::Number)
        fatal("json: not a number");
    return numberValue;
}

const std::string &
JsonValue::asString() const
{
    if (valueKind != Kind::String)
        fatal("json: not a string");
    return stringValue;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (valueKind != Kind::Array)
        fatal("json: not an array");
    return arrayValue;
}

const std::map<std::string, JsonValue> &
JsonValue::asObject() const
{
    if (valueKind != Kind::Object)
        fatal("json: not an object");
    return objectValue;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const auto &obj = asObject();
    const auto it = obj.find(key);
    if (it == obj.end())
        fatal("json: missing key '", key, "'");
    return it->second;
}

bool
JsonValue::has(const std::string &key) const
{
    return valueKind == Kind::Object &&
           objectValue.find(key) != objectValue.end();
}

double
JsonValue::numberOr(const std::string &key, double dflt) const
{
    return has(key) ? at(key).asNumber() : dflt;
}

bool
JsonValue::boolOr(const std::string &key, bool dflt) const
{
    return has(key) ? at(key).asBool() : dflt;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &dflt) const
{
    return has(key) ? at(key).asString() : dflt;
}

JsonValue
JsonValue::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

JsonValue
JsonValue::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("json: cannot open ", path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

} // namespace msc
