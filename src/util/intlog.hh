/**
 * @file
 * Integer-log helpers shared by the ADC sizing and scheduling paths.
 *
 * Several layers need "bits to represent the counts 0..n", i.e.
 * ceil(log2(n+1)): ADC resolution for an N-row column read, the ADC
 * headstart preset from a column's ones census, and the
 * remaining-contribution bound of the early-termination check. Each
 * used to hand-roll the loop `while ((1 << bits) < n + 1) ++bits;`,
 * which overflows (or never terminates) once n approaches the shift
 * width. std::bit_width is exact and total over the whole range.
 */

#ifndef MSC_UTIL_INTLOG_HH
#define MSC_UTIL_INTLOG_HH

#include <bit>
#include <cstdint>

namespace msc {

/**
 * Bits needed to represent every count in 0..n: ceil(log2(n+1)).
 *
 * bitsForCount(0) == 0, bitsForCount(1) == 1, bitsForCount(2^k) ==
 * k+1, bitsForCount(2^k - 1) == k; total over all 64-bit inputs
 * (no `1 << bits` overflow for n >= 2^31).
 */
constexpr unsigned
bitsForCount(std::uint64_t n)
{
    return static_cast<unsigned>(std::bit_width(n));
}

} // namespace msc

#endif // MSC_UTIL_INTLOG_HH
