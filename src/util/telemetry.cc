/**
 * @file
 * Telemetry registry internals: interned metric cells, per-thread
 * span buffers, and the JSON exporters.
 */

#include "util/telemetry.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <unordered_map>

namespace msc::telemetry {

namespace detail {

std::atomic<bool> metricsOn{false};
std::atomic<bool> spansOn{false};

} // namespace detail

namespace {

struct CounterCell
{
    std::string name;
    std::atomic<std::uint64_t> value{0};
};

struct GaugeCell
{
    std::string name;
    std::atomic<std::uint64_t> bits{0}; //!< bit_cast'ed double
};

struct HistCell
{
    std::string name;
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets>
        buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sumBits{0}; //!< CAS-updated double
};

struct SpanBuffer
{
    std::uint64_t tid = 0;
    std::uint32_t depth = 0; //!< touched only by the owning thread
    std::mutex mu;           //!< guards events against the merger
    std::vector<SpanRecord> events;
};

/**
 * Process-wide registry. Created on first use and never destroyed:
 * pool worker threads (and their span buffers) can outlive any
 * static-destruction order, so tearing the registry down would be a
 * use-after-free waiting to happen.
 */
struct Registry
{
    std::mutex mu;
    std::deque<CounterCell> counters; //!< deque: stable addresses
    std::deque<GaugeCell> gauges;
    std::deque<HistCell> hists;
    std::unordered_map<std::string_view, CounterCell *> counterByName;
    std::unordered_map<std::string_view, GaugeCell *> gaugeByName;
    std::unordered_map<std::string_view, HistCell *> histByName;

    std::mutex spanMu;
    std::deque<SpanBuffer> spanBuffers; //!< one per thread, kept
    std::atomic<std::uint64_t> spanSeq{0};

    template <typename Cell>
    static Cell *
    intern(std::deque<Cell> &cells,
           std::unordered_map<std::string_view, Cell *> &byName,
           const char *name)
    {
        auto it = byName.find(name);
        if (it != byName.end())
            return it->second;
        Cell &cell = cells.emplace_back();
        cell.name = name;
        byName.emplace(cell.name, &cell);
        return &cell;
    }
};

Registry &
registry()
{
    static Registry *r = new Registry; // leaked on purpose
    return *r;
}

/** The calling thread's span buffer, registering it on first use. */
SpanBuffer &
threadSpanBuffer()
{
    thread_local SpanBuffer *buf = nullptr;
    if (!buf) {
        Registry &r = registry();
        std::lock_guard lock(r.spanMu);
        buf = &r.spanBuffers.emplace_back();
        buf->tid = r.spanBuffers.size() - 1;
    }
    return *buf;
}

/** MSC_TELEMETRY: "1"/"on"/"true" -> metrics + spans, "metrics" ->
 *  metrics only, anything else (or unset) -> disabled. */
bool
initFromEnv()
{
    const char *env = std::getenv("MSC_TELEMETRY");
    if (!env || !*env)
        return false;
    std::string v(env);
    for (char &c : v)
        c = char(std::tolower((unsigned char)c));
    if (v == "1" || v == "on" || v == "true" || v == "spans") {
        detail::metricsOn.store(true, std::memory_order_relaxed);
        detail::spansOn.store(true, std::memory_order_relaxed);
    } else if (v == "metrics") {
        detail::metricsOn.store(true, std::memory_order_relaxed);
    }
    return true;
}

const bool envInitDone = initFromEnv();

void
atomicAddDouble(std::atomic<std::uint64_t> &bits, double delta)
{
    std::uint64_t cur = bits.load(std::memory_order_relaxed);
    for (;;) {
        const double next = std::bit_cast<double>(cur) + delta;
        if (bits.compare_exchange_weak(
                cur, std::bit_cast<std::uint64_t>(next),
                std::memory_order_relaxed))
            return;
    }
}

/** Shortest round-trip double formatting (matches json.cc idiom). */
std::string
formatDouble(double v)
{
    char tmp[64];
    std::snprintf(tmp, sizeof(tmp), "%.17g", v);
    double back = 0;
    std::sscanf(tmp, "%lf", &back);
    if (back == v) {
        for (int prec = 1; prec <= 16; ++prec) {
            char shorter[64];
            std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
            std::sscanf(shorter, "%lf", &back);
            if (back == v) {
                std::memcpy(tmp, shorter, sizeof(shorter));
                break;
            }
        }
    }
    return tmp;
}

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if ((unsigned char)c < 0x20) {
                char tmp[8];
                std::snprintf(tmp, sizeof(tmp), "\\u%04x", c);
                out += tmp;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
configure(const Config &cfg)
{
    (void)envInitDone;
    detail::metricsOn.store(cfg.enabled, std::memory_order_relaxed);
    detail::spansOn.store(cfg.enabled && cfg.spans,
                          std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    detail::metricsOn.store(on, std::memory_order_relaxed);
    detail::spansOn.store(on, std::memory_order_relaxed);
}

void
reset()
{
    Registry &r = registry();
    {
        std::lock_guard lock(r.mu);
        for (CounterCell &c : r.counters)
            c.value.store(0, std::memory_order_relaxed);
        for (GaugeCell &g : r.gauges)
            g.bits.store(0, std::memory_order_relaxed);
        for (HistCell &h : r.hists) {
            for (auto &b : h.buckets)
                b.store(0, std::memory_order_relaxed);
            h.count.store(0, std::memory_order_relaxed);
            h.sumBits.store(0, std::memory_order_relaxed);
        }
    }
    {
        std::lock_guard lock(r.spanMu);
        for (SpanBuffer &b : r.spanBuffers) {
            std::lock_guard bl(b.mu);
            b.events.clear();
        }
        r.spanSeq.store(0, std::memory_order_relaxed);
    }
}

std::int64_t
nowNs()
{
    using namespace std::chrono;
    return duration_cast<nanoseconds>(
               steady_clock::now().time_since_epoch())
        .count();
}

std::size_t
histogramBucket(double us)
{
    const std::size_t nBounds = kHistogramBuckets - 1;
    for (std::size_t i = 0; i < nBounds; ++i)
        if (us <= kHistogramBoundsUs[i])
            return i;
    return nBounds;
}

void
Counter::slowAdd(std::uint64_t delta) const
{
    auto *c = static_cast<CounterCell *>(
        cell.load(std::memory_order_acquire));
    if (!c) {
        Registry &r = registry();
        std::lock_guard lock(r.mu);
        c = Registry::intern(r.counters, r.counterByName, nm);
        cell.store(c, std::memory_order_release);
    }
    c->value.fetch_add(delta, std::memory_order_relaxed);
}

void
addCounterNamed(std::string_view name, std::uint64_t delta)
{
    if (!metricsActive())
        return;
    Registry &r = registry();
    CounterCell *c = nullptr;
    {
        std::lock_guard lock(r.mu);
        auto it = r.counterByName.find(name);
        if (it != r.counterByName.end()) {
            c = it->second;
        } else {
            CounterCell &cell = r.counters.emplace_back();
            cell.name = std::string(name);
            r.counterByName.emplace(cell.name, &cell);
            c = &cell;
        }
    }
    c->value.fetch_add(delta, std::memory_order_relaxed);
}

void
setGaugeNamed(std::string_view name, double value)
{
    if (!metricsActive())
        return;
    Registry &r = registry();
    GaugeCell *g = nullptr;
    {
        std::lock_guard lock(r.mu);
        auto it = r.gaugeByName.find(name);
        if (it != r.gaugeByName.end()) {
            g = it->second;
        } else {
            GaugeCell &cell = r.gauges.emplace_back();
            cell.name = std::string(name);
            r.gaugeByName.emplace(cell.name, &cell);
            g = &cell;
        }
    }
    g->bits.store(std::bit_cast<std::uint64_t>(value),
                  std::memory_order_relaxed);
}

double
histogramQuantile(const HistogramSnapshot &h, double q)
{
    if (h.count == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    const auto target = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(h.count)));
    const std::uint64_t want = target == 0 ? 1 : target;
    std::uint64_t cum = 0;
    const std::size_t nBounds = kHistogramBuckets - 1;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
        cum += h.buckets[i];
        if (cum >= want)
            return kHistogramBoundsUs[std::min(i, nBounds - 1)];
    }
    return kHistogramBoundsUs[nBounds - 1];
}

void
Gauge::slowSet(double value) const
{
    auto *g = static_cast<GaugeCell *>(
        cell.load(std::memory_order_acquire));
    if (!g) {
        Registry &r = registry();
        std::lock_guard lock(r.mu);
        g = Registry::intern(r.gauges, r.gaugeByName, nm);
        cell.store(g, std::memory_order_release);
    }
    g->bits.store(std::bit_cast<std::uint64_t>(value),
                  std::memory_order_relaxed);
}

void
Histogram::slowObserve(double us) const
{
    auto *h = static_cast<HistCell *>(
        cell.load(std::memory_order_acquire));
    if (!h) {
        Registry &r = registry();
        std::lock_guard lock(r.mu);
        h = Registry::intern(r.hists, r.histByName, nm);
        cell.store(h, std::memory_order_release);
    }
    h->buckets[histogramBucket(us)].fetch_add(
        1, std::memory_order_relaxed);
    h->count.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(h->sumBits, us);
}

void
Span::start(const char *name)
{
    SpanBuffer &b = threadSpanBuffer();
    buf = &b;
    nm = name;
    t0 = nowNs();
    ++b.depth;
}

void
Span::finish()
{
    auto &b = *static_cast<SpanBuffer *>(buf);
    const std::int64_t t1 = nowNs();
    SpanRecord rec;
    rec.name = nm;
    rec.tid = b.tid;
    rec.seq = registry().spanSeq.fetch_add(
        1, std::memory_order_relaxed);
    rec.depth = --b.depth;
    rec.startNs = t0;
    rec.durNs = t1 - t0;
    std::lock_guard lock(b.mu);
    b.events.push_back(std::move(rec));
}

std::uint64_t
counterValue(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.counterByName.find(name);
    if (it == r.counterByName.end())
        return 0;
    return it->second->value.load(std::memory_order_relaxed);
}

double
gaugeValue(std::string_view name)
{
    Registry &r = registry();
    std::lock_guard lock(r.mu);
    auto it = r.gaugeByName.find(name);
    if (it == r.gaugeByName.end())
        return 0.0;
    return std::bit_cast<double>(
        it->second->bits.load(std::memory_order_relaxed));
}

std::vector<std::pair<std::string, std::uint64_t>>
snapshotCounters()
{
    Registry &r = registry();
    std::vector<std::pair<std::string, std::uint64_t>> out;
    {
        std::lock_guard lock(r.mu);
        out.reserve(r.counters.size());
        for (CounterCell &c : r.counters)
            out.emplace_back(
                c.name, c.value.load(std::memory_order_relaxed));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::string, double>>
snapshotGauges()
{
    Registry &r = registry();
    std::vector<std::pair<std::string, double>> out;
    {
        std::lock_guard lock(r.mu);
        out.reserve(r.gauges.size());
        for (GaugeCell &g : r.gauges)
            out.emplace_back(
                g.name, std::bit_cast<double>(g.bits.load(
                            std::memory_order_relaxed)));
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<HistogramSnapshot>
snapshotHistograms()
{
    Registry &r = registry();
    std::vector<HistogramSnapshot> out;
    {
        std::lock_guard lock(r.mu);
        out.reserve(r.hists.size());
        for (HistCell &h : r.hists) {
            HistogramSnapshot snap;
            snap.name = h.name;
            snap.count = h.count.load(std::memory_order_relaxed);
            snap.sum = std::bit_cast<double>(
                h.sumBits.load(std::memory_order_relaxed));
            snap.buckets.reserve(kHistogramBuckets);
            for (const auto &b : h.buckets)
                snap.buckets.push_back(
                    b.load(std::memory_order_relaxed));
            out.push_back(std::move(snap));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const auto &a, const auto &b) {
                  return a.name < b.name;
              });
    return out;
}

std::vector<SpanRecord>
snapshotSpans()
{
    Registry &r = registry();
    std::vector<SpanRecord> out;
    {
        std::lock_guard lock(r.spanMu);
        for (SpanBuffer &b : r.spanBuffers) {
            std::lock_guard bl(b.mu);
            out.insert(out.end(), b.events.begin(),
                       b.events.end());
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord &a, const SpanRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

void
writeMetricsJson(std::ostream &out)
{
    const auto counters = snapshotCounters();
    const auto gauges = snapshotGauges();
    const auto hists = snapshotHistograms();

    out << "{\n  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << escapeJson(counters[i].first)
            << "\": " << counters[i].second;
    }
    out << (counters.empty() ? "},\n" : "\n  },\n");

    out << "  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        out << (i ? ",\n    " : "\n    ") << '"'
            << escapeJson(gauges[i].first)
            << "\": " << formatDouble(gauges[i].second);
    }
    out << (gauges.empty() ? "},\n" : "\n  },\n");

    out << "  \"histograms\": {";
    for (std::size_t i = 0; i < hists.size(); ++i) {
        const HistogramSnapshot &h = hists[i];
        out << (i ? ",\n    " : "\n    ") << '"'
            << escapeJson(h.name) << "\": {\"count\": " << h.count
            << ", \"sum_us\": " << formatDouble(h.sum)
            << ", \"buckets\": [";
        for (std::size_t b = 0; b < h.buckets.size(); ++b)
            out << (b ? ", " : "") << h.buckets[b];
        out << "]}";
    }
    out << (hists.empty() ? "}\n" : "\n  }\n");
    out << "}\n";
}

void
writeChromeTrace(std::ostream &out)
{
    const auto spans = snapshotSpans();
    std::int64_t base = 0;
    for (const SpanRecord &s : spans)
        base = base == 0 ? s.startNs : std::min(base, s.startNs);

    out << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord &s = spans[i];
        out << (i ? ",\n  " : "\n  ") << "{\"name\": \""
            << escapeJson(s.name)
            << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << s.tid
            << ", \"ts\": "
            << formatDouble(double(s.startNs - base) / 1000.0)
            << ", \"dur\": "
            << formatDouble(double(s.durNs) / 1000.0)
            << ", \"args\": {\"seq\": " << s.seq
            << ", \"depth\": " << s.depth << "}}";
    }
    out << (spans.empty() ? "],\n" : "\n],\n");
    out << " \"displayTimeUnit\": \"ms\"}\n";
}

} // namespace msc::telemetry
