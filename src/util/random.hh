/**
 * @file
 * Deterministic pseudo-random number generation for mscsim.
 *
 * A small xoshiro256++ implementation is used instead of <random>
 * engines so that streams are reproducible across standard library
 * implementations; Monte Carlo experiments (Figures 12 and 13 of the
 * paper) depend on stable seeds.
 */

#ifndef MSC_UTIL_RANDOM_HH
#define MSC_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace msc {

/** xoshiro256++ generator with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 expansion of the scalar seed into 256 bits of state.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result =
            rotl(state[0] + state[3], 23) + state[0];
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        // Rejection-free Lemire reduction; bias is < 2^-64 per draw
        // which is negligible for simulation purposes.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * n) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Standard normal draw (Box-Muller, one value per call). */
    double
    normal()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = uniform();
        double u2 = uniform();
        while (u1 <= 1e-300) u1 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        spare = r * std::sin(theta);
        haveSpare = true;
        return r * std::cos(theta);
    }

    /** Normal draw with given mean and standard deviation. */
    double
    normal(double mean, double sigma)
    {
        return mean + sigma * normal();
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t v, int k)
    {
        return (v << k) | (v >> (64 - k));
    }

    std::uint64_t state[4];
    double spare = 0.0;
    bool haveSpare = false;
};

} // namespace msc

#endif // MSC_UTIL_RANDOM_HH
