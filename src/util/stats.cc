#include "util/stats.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace msc::stats {

Stat::Stat(Group &parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    parent.stats.push_back(this);
}

void
Scalar::print(std::ostream &os) const
{
    os << std::left << std::setw(28) << name() << std::right
       << std::setw(14) << total;
    if (samples > 1)
        os << "  (mean " << mean() << " over " << samples << ")";
    os << "  # " << description();
}

Distribution::Distribution(Group &parent, std::string name,
                           std::string desc, unsigned buckets)
    : Stat(parent, std::move(name), std::move(desc)),
      hist(buckets, 0)
{
}

void
Distribution::sample(double v)
{
    if (n == 0) {
        minV = maxV = v;
    } else {
        minV = std::min(minV, v);
        maxV = std::max(maxV, v);
    }
    ++n;
    sum += v;
    sumSq += v * v;
    // log2 bucket of |v|; bucket 0 holds |v| <= 1.
    unsigned idx = 0;
    double mag = std::fabs(v);
    while (mag > 1.0 && idx + 1 < hist.size()) {
        mag /= 2.0;
        ++idx;
    }
    ++hist[idx];
}

double
Distribution::stddev() const
{
    if (n < 2)
        return 0.0;
    const double m = mean();
    const double var =
        std::max(0.0, sumSq / static_cast<double>(n) - m * m);
    return std::sqrt(var);
}

void
Distribution::print(std::ostream &os) const
{
    os << std::left << std::setw(28) << name() << std::right
       << " n=" << n;
    if (n > 0) {
        os << " min=" << minV << " mean=" << mean()
           << " max=" << maxV << " sd=" << stddev();
    }
    os << "  # " << description();
}

void
Distribution::reset()
{
    std::fill(hist.begin(), hist.end(), 0);
    n = 0;
    sum = sumSq = minV = maxV = 0.0;
}

Formula::Formula(Group &parent, std::string name, std::string desc,
                 std::function<double()> f)
    : Stat(parent, std::move(name), std::move(desc)),
      fn(std::move(f))
{
}

void
Formula::print(std::ostream &os) const
{
    os << std::left << std::setw(28) << name() << std::right
       << std::setw(14) << value() << "  # " << description();
}

Group::Group(Group &parent, std::string name)
    : groupName(std::move(name))
{
    parent.subGroups.push_back(this);
}

void
Group::dump(std::ostream &os, int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    os << pad << "---------- " << groupName << " ----------\n";
    for (const Stat *s : stats) {
        os << pad;
        s->print(os);
        os << "\n";
    }
    for (const Group *g : subGroups)
        g->dump(os, indent + 1);
}

void
Group::resetAll()
{
    for (Stat *s : stats)
        s->reset();
    for (Group *g : subGroups)
        g->resetAll();
}

} // namespace msc::stats
