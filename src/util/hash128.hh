/**
 * @file
 * 128-bit content hashing shared by the prepare cache and the binary
 * matrix artifact format.
 *
 * Two independent 64-bit mixing streams (FNV-1a plus a
 * multiply-xorshift companion) form one 128-bit digest. The digest is
 * a pure function of the fed bytes -- no addresses, thread ids, or
 * clocks -- so it is stable across runs, MSC_THREADS settings, and
 * processes, which is what lets the on-disk artifact (sparse/binio)
 * reuse the exact keying of the in-process PrepareCache
 * (service/prepare_cache): an artifact packed once hashes to the same
 * 128-bit matrix key every service instance computes from the parsed
 * bytes.
 *
 * bytes() consumes 8-byte little-endian words with a zero-padded,
 * length-tagged tail, so hashing a multi-megabyte matrix payload runs
 * at word speed instead of byte speed (the artifact loader checksums
 * the whole payload on every map; see binio.cc). The word-wise walk
 * reads the buffer via memcpy, so alignment is irrelevant; the
 * little-endian interpretation matches the artifact's declared byte
 * order (big-endian hosts are rejected at map time, not silently
 * re-hashed).
 */

#ifndef MSC_UTIL_HASH128_HH
#define MSC_UTIL_HASH128_HH

#include <cstdint>
#include <cstring>

namespace msc {

/** One 128-bit digest (also the PrepareCache key payload). */
struct Digest128
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool
    operator==(const Digest128 &o) const
    {
        return hi == o.hi && lo == o.lo;
    }

    bool
    operator!=(const Digest128 &o) const
    {
        return !(*this == o);
    }
};

/** Two independent mixing streams -> one 128-bit digest. */
class Hash128
{
  public:
    void
    u64(std::uint64_t v)
    {
        a = (a ^ v) * 0x100000001b3ULL;
        a ^= a >> 29;
        c = (c ^ v) * 0x9e3779b97f4a7c15ULL;
        c ^= (c >> 47) + v;
    }

    /** Word-wise walk: 8-byte little-endian chunks, zero-padded
     *  length-tagged tail (so "ab" and "ab\0" hash differently). */
    void
    bytes(const void *p, std::size_t len)
    {
        const auto *q = static_cast<const std::uint8_t *>(p);
        std::size_t i = 0;
        for (; i + 8 <= len; i += 8) {
            std::uint64_t w;
            std::memcpy(&w, q + i, 8);
            u64(w);
        }
        if (i < len) {
            std::uint64_t w = 0;
            std::memcpy(&w, q + i, len - i);
            u64(w);
        }
        u64(static_cast<std::uint64_t>(len));
    }

    void
    f64(double v)
    {
        std::uint64_t w;
        std::memcpy(&w, &v, sizeof w);
        u64(w);
    }

    Digest128
    digest() const
    {
        return Digest128{a, c};
    }

  private:
    std::uint64_t a = 0xcbf29ce484222325ULL; //!< FNV-1a offset basis
    std::uint64_t c = 0x6c62272e07bb0142ULL; //!< independent stream
};

} // namespace msc

#endif // MSC_UTIL_HASH128_HH
