/**
 * @file
 * Status and error reporting helpers for mscsim.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (simulator bugs), fatal() is for user errors (bad
 * configuration or inputs). Both throw so that tests can assert on
 * them; warn() and inform() only print.
 */

#ifndef MSC_UTIL_LOGGING_HH
#define MSC_UTIL_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace msc {

/** Thrown by panic(): an internal invariant of the simulator broke. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to user input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail {

/** Concatenate a list of stream-formattable values into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

} // namespace detail

/** Report an internal simulator bug and abort the computation. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat("panic: ",
                                    std::forward<Args>(args)...));
}

/** Report an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

/** Enable or disable inform()/warn() output (tests silence them). */
void setLogQuiet(bool quiet);

} // namespace msc

#endif // MSC_UTIL_LOGGING_HH
