/**
 * @file
 * Compact dynamic bit vector used for binary crossbar contents and
 * vector bit slices.
 *
 * A crossbar with single-bit cells is a binary matrix; applying a
 * vector bit slice and reading a column current is a binary dot
 * product, i.e. popcount(rowBits AND sliceBits). BitVec provides
 * exactly the operations the functional crossbar model needs.
 */

#ifndef MSC_UTIL_BITVEC_HH
#define MSC_UTIL_BITVEC_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace msc {

class BitVec
{
  public:
    BitVec() = default;

    explicit BitVec(std::size_t n) : nbits(n), words((n + 63) / 64, 0) {}

    std::size_t size() const { return nbits; }

    void
    resize(std::size_t n)
    {
        nbits = n;
        words.assign((n + 63) / 64, 0);
    }

    bool
    get(std::size_t i) const
    {
        return (words[i / 64] >> (i % 64)) & 1;
    }

    void
    set(std::size_t i, bool v = true)
    {
        if (v)
            words[i / 64] |= (std::uint64_t{1} << (i % 64));
        else
            words[i / 64] &= ~(std::uint64_t{1} << (i % 64));
    }

    void
    flip(std::size_t i)
    {
        words[i / 64] ^= (std::uint64_t{1} << (i % 64));
    }

    /** Invert every bit (used by computational invert coding). */
    void
    invert()
    {
        for (auto &w : words)
            w = ~w;
        trimTail();
    }

    std::size_t
    popcount() const
    {
        std::size_t n = 0;
        for (auto w : words)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** popcount(this AND other): the binary dot product. */
    std::size_t
    dot(const BitVec &other) const
    {
        if (other.nbits != nbits)
            panic("BitVec::dot length mismatch");
        std::size_t n = 0;
        for (std::size_t i = 0; i < words.size(); ++i)
            n += static_cast<std::size_t>(
                std::popcount(words[i] & other.words[i]));
        return n;
    }

    bool
    any() const
    {
        for (auto w : words)
            if (w)
                return true;
        return false;
    }

    /**
     * Invoke @p fn(index) for every set bit, in ascending index
     * order, skipping zero words entirely. The word-at-a-time scan
     * is what makes sparse vector slices cheap to apply: a slice
     * with few active rows costs O(words + popcount), not O(bits).
     */
    template <typename Fn>
    void
    forEachSetBit(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi];
            while (w) {
                const auto bit = static_cast<std::size_t>(
                    std::countr_zero(w));
                fn(wi * 64 + bit);
                w &= w - 1;
            }
        }
    }

    void
    clearAll()
    {
        for (auto &w : words)
            w = 0;
    }

    const std::vector<std::uint64_t> &raw() const { return words; }

  private:
    void
    trimTail()
    {
        const unsigned rem = nbits % 64;
        if (rem && !words.empty())
            words.back() &= (std::uint64_t{1} << rem) - 1;
    }

    std::size_t nbits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace msc

#endif // MSC_UTIL_BITVEC_HH
