/**
 * @file
 * A minimal JSON reader.
 *
 * Supports the full JSON value grammar (objects, arrays, strings
 * with escapes, numbers, booleans, null); no external dependencies.
 * Used by the configuration loader (core/config.hh) so accelerator
 * design points can be described in files instead of code.
 */

#ifndef MSC_UTIL_JSON_HH
#define MSC_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace msc {

class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isBool() const { return valueKind == Kind::Bool; }
    bool isNumber() const { return valueKind == Kind::Number; }
    bool isString() const { return valueKind == Kind::String; }
    bool isArray() const { return valueKind == Kind::Array; }
    bool isObject() const { return valueKind == Kind::Object; }

    /** Typed accessors; fatal on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;
    const std::map<std::string, JsonValue> &asObject() const;

    /** Object member lookup; fatal if absent or not an object. */
    const JsonValue &at(const std::string &key) const;

    /** True when this is an object containing @p key. */
    bool has(const std::string &key) const;

    /** Convenience: object member with a default when absent. */
    double numberOr(const std::string &key, double dflt) const;
    bool boolOr(const std::string &key, bool dflt) const;
    std::string stringOr(const std::string &key,
                         const std::string &dflt) const;

    /** Parse a complete JSON document; fatal on syntax errors. */
    static JsonValue parse(const std::string &text);

    /** Parse the contents of a file. */
    static JsonValue parseFile(const std::string &path);

  private:
    friend class JsonParser;

    Kind valueKind = Kind::Null;
    bool boolValue = false;
    double numberValue = 0.0;
    std::string stringValue;
    std::vector<JsonValue> arrayValue;
    std::map<std::string, JsonValue> objectValue;
};

} // namespace msc

#endif // MSC_UTIL_JSON_HH
