/**
 * @file
 * A small gem5-flavored statistics package.
 *
 * Simulation components register named statistics in groups; a group
 * dumps a human-readable report. Three kinds are provided:
 *
 *  - Scalar: a counter / accumulator with mean support,
 *  - Distribution: min/max/mean/stddev plus log2 buckets,
 *  - Formula: a derived value computed from other stats at dump time.
 */

#ifndef MSC_UTIL_STATS_HH
#define MSC_UTIL_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace msc::stats {

class Group;

/** Base class for all statistics. */
class Stat
{
  public:
    Stat(Group &parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDesc; }

    virtual void print(std::ostream &os) const = 0;
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** Plain accumulating scalar. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &
    operator+=(double v)
    {
        total += v;
        ++samples;
        return *this;
    }

    Scalar &
    operator++()
    {
        return *this += 1.0;
    }

    void set(double v) { total = v; samples = 1; }
    double value() const { return total; }
    double
    mean() const
    {
        return samples ? total / static_cast<double>(samples) : 0.0;
    }
    std::uint64_t count() const { return samples; }

    void print(std::ostream &os) const override;
    void
    reset() override
    {
        total = 0.0;
        samples = 0;
    }

  private:
    double total = 0.0;
    std::uint64_t samples = 0;
};

/** Sample distribution with power-of-two buckets. */
class Distribution : public Stat
{
  public:
    Distribution(Group &parent, std::string name, std::string desc,
                 unsigned buckets = 24);

    void sample(double v);

    std::uint64_t count() const { return n; }
    double
    mean() const
    {
        return n ? sum / static_cast<double>(n) : 0.0;
    }
    double minValue() const { return minV; }
    double maxValue() const { return maxV; }
    double stddev() const;

    void print(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::uint64_t> hist;
    std::uint64_t n = 0;
    double sum = 0.0;
    double sumSq = 0.0;
    double minV = 0.0;
    double maxV = 0.0;
};

/** Value derived from other statistics at dump time. */
class Formula : public Stat
{
  public:
    Formula(Group &parent, std::string name, std::string desc,
            std::function<double()> fn);

    double value() const { return fn ? fn() : 0.0; }

    void print(std::ostream &os) const override;
    void reset() override {}

  private:
    std::function<double()> fn;
};

/** A named collection of statistics (and subgroups). */
class Group
{
  public:
    explicit Group(std::string name) : groupName(std::move(name)) {}
    Group(Group &parent, std::string name);

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return groupName; }

    /** Dump this group and its subgroups. */
    void dump(std::ostream &os, int indent = 0) const;

    /** Reset every stat in this group and its subgroups. */
    void resetAll();

  private:
    friend class Stat;

    std::string groupName;
    std::vector<Stat *> stats;      //!< non-owning, insertion order
    std::vector<Group *> subGroups; //!< non-owning
};

} // namespace msc::stats

#endif // MSC_UTIL_STATS_HH
