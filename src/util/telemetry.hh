/**
 * @file
 * Low-overhead observability: metrics registry and trace spans.
 *
 * Two facilities share one process-wide, leaked registry:
 *
 *  - Metrics: monotonic counters, last-value gauges, and fixed-bucket
 *    latency histograms, addressed by interned string keys. Handles
 *    (Counter / Gauge / Histogram) are declared `constinit` at the
 *    call site and cache a pointer to their interned cell after the
 *    first touch, so a hot-loop add is one relaxed atomic
 *    fetch-and-add.
 *  - Trace spans: scoped RAII Span objects record (name, thread,
 *    start, duration, depth) events onto per-thread buffers -- pool
 *    workers included -- which merge into one stream exportable as
 *    Chrome `trace_event` JSON (load it in chrome://tracing or
 *    Perfetto).
 *
 * Telemetry is off by default. When disabled, every call site
 * reduces to one relaxed atomic load and a predictable branch:
 * no allocation, no interning, no clock reads (tests assert the
 * zero-allocation guarantee). Enable via the config JSON
 * `telemetry` section, telemetry::configure(), or the
 * MSC_TELEMETRY environment variable ("1" / "on" enables metrics
 * and spans, "metrics" enables metrics only).
 *
 * Determinism: counter increments issued from parallelFor bodies
 * are per-index, and every index executes exactly once regardless
 * of lane count, so counter totals are bit-identical for 1..N
 * threads (pool self-metrics such as steal counts and idle time
 * are scheduling-dependent and excluded from that contract). Span
 * timestamps are wall-clock and never feed back into simulation
 * results; the merged stream is ordered by a global close sequence
 * so the export order itself is well-defined.
 *
 * The registry is created on first use and intentionally leaked:
 * worker threads (and their thread_local span buffers) may outlive
 * any static destruction order the registry could otherwise race
 * with.
 */

#ifndef MSC_UTIL_TELEMETRY_HH
#define MSC_UTIL_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace msc::telemetry {

namespace detail {

extern std::atomic<bool> metricsOn;
extern std::atomic<bool> spansOn;

} // namespace detail

/** True when metric recording is enabled (one relaxed load). */
inline bool
metricsActive()
{
    return detail::metricsOn.load(std::memory_order_relaxed);
}

/** True when span recording is enabled (one relaxed load). */
inline bool
spansActive()
{
    return detail::spansOn.load(std::memory_order_relaxed);
}

/** Runtime configuration, mirrored by the config JSON `telemetry`
 *  section. */
struct Config
{
    bool enabled = false; //!< master switch for metrics
    bool spans = true;    //!< also record trace spans when enabled
};

/** Apply @p cfg to the process-wide switches. */
void configure(const Config &cfg);

/** Convenience: enable or disable both metrics and spans. */
void setEnabled(bool on);

/** Zero every counter/gauge/histogram and drop all recorded spans.
 *  Interned cells (and cached handle pointers) stay valid. */
void reset();

/** Monotonic steady-clock nanoseconds (used by spans and timers). */
std::int64_t nowNs();

/** Histogram bucket upper bounds in microseconds; one extra
 *  overflow bucket follows the last bound. */
inline constexpr double kHistogramBoundsUs[] = {
    1,     2,     5,      10,     20,     50,      100,
    200,   500,   1000,   2000,   5000,   10000,   20000,
    50000, 100000, 200000, 500000, 1000000, 2000000, 5000000,
    10000000,
};
inline constexpr std::size_t kHistogramBuckets =
    sizeof(kHistogramBoundsUs) / sizeof(double) + 1;

/** Bucket index a value lands in: the first bucket whose bound is
 *  >= @p us, or the overflow bucket. Exposed for tests. */
std::size_t histogramBucket(double us);

/**
 * Monotonic counter handle. Declare `constinit` (namespace scope or
 * function-local static) with a string-literal name; the first add()
 * while metrics are enabled interns the name and caches the cell.
 */
class Counter
{
  public:
    constexpr explicit Counter(const char *name) : nm(name) {}

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(std::uint64_t delta = 1) const
    {
        if (metricsActive()) [[unlikely]]
            slowAdd(delta);
    }

    const char *name() const { return nm; }

  private:
    void slowAdd(std::uint64_t delta) const;

    const char *nm;
    mutable std::atomic<void *> cell{nullptr};
};

/** Last-value gauge handle (stores a double). */
class Gauge
{
  public:
    constexpr explicit Gauge(const char *name) : nm(name) {}

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void
    set(double value) const
    {
        if (metricsActive()) [[unlikely]]
            slowSet(value);
    }

    const char *name() const { return nm; }

  private:
    void slowSet(double value) const;

    const char *nm;
    mutable std::atomic<void *> cell{nullptr};
};

/** Fixed-bucket latency histogram handle (values in microseconds,
 *  bucketed per kHistogramBoundsUs). */
class Histogram
{
  public:
    constexpr explicit Histogram(const char *name) : nm(name) {}

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void
    observe(double us) const
    {
        if (metricsActive()) [[unlikely]]
            slowObserve(us);
    }

    const char *name() const { return nm; }

  private:
    void slowObserve(double us) const;

    const char *nm;
    mutable std::atomic<void *> cell{nullptr};
};

/** RAII timer: observes the elapsed microseconds into a Histogram
 *  when it leaves scope. No clock read when metrics are off. */
class Timer
{
  public:
    explicit Timer(const Histogram &h)
        : hist(metricsActive() ? &h : nullptr),
          t0(hist ? nowNs() : 0)
    {}

    ~Timer()
    {
        if (hist)
            hist->observe(double(nowNs() - t0) / 1000.0);
    }

    Timer(const Timer &) = delete;
    Timer &operator=(const Timer &) = delete;

  private:
    const Histogram *hist;
    std::int64_t t0;
};

/**
 * Scoped trace span. Records onto the calling thread's buffer when
 * span recording is enabled; otherwise one relaxed load. @p name
 * must be a string literal (events keep the pointer).
 */
class Span
{
  public:
    explicit Span(const char *name)
    {
        if (spansActive()) [[unlikely]]
            start(name);
    }

    ~Span()
    {
        if (buf)
            finish();
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    void start(const char *name);
    void finish();

    void *buf = nullptr;
    const char *nm = nullptr;
    std::int64_t t0 = 0;
};

/** One recorded span in merge order. */
struct SpanRecord
{
    std::string name;
    std::uint64_t tid = 0;   //!< stable per-thread buffer id
    std::uint64_t seq = 0;   //!< global close sequence
    std::uint32_t depth = 0; //!< nesting depth on its thread
    std::int64_t startNs = 0;
    std::int64_t durNs = 0;
};

/** Snapshot of one histogram. */
struct HistogramSnapshot
{
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::vector<std::uint64_t> buckets; //!< kHistogramBuckets wide
};

/**
 * Add to a counter addressed by a runtime-built name (e.g. the
 * service's per-tenant counters, "service.tenant.<id>.completed").
 * Interns the name on first use; unlike the constinit Counter
 * handle there is no cached cell, so every call takes the registry
 * lock -- use for low-rate events only. No-op (one relaxed load)
 * while metrics are disabled.
 */
void addCounterNamed(std::string_view name, std::uint64_t delta = 1);

/**
 * Set a gauge addressed by a runtime-built name (e.g. the service's
 * per-shard depth gauges, "service.shard.<i>.queue_depth"). Same
 * interning and locking behavior as addCounterNamed: every call
 * takes the registry lock, so use for low-rate observations only.
 * No-op while metrics are disabled.
 */
void setGaugeNamed(std::string_view name, double value);

/**
 * Quantile estimate from a histogram snapshot: the upper bound (in
 * microseconds) of the first bucket at which the cumulative count
 * reaches ceil(q * count). Values in the overflow bucket report the
 * last finite bound, so the estimate is a lower bound there.
 * Returns 0.0 for an empty histogram.
 */
double histogramQuantile(const HistogramSnapshot &h, double q);

/** Current value of a counter (0 when never interned). */
std::uint64_t counterValue(std::string_view name);

/** Current value of a gauge (0.0 when never interned). */
double gaugeValue(std::string_view name);

/** All counters, sorted by name. */
std::vector<std::pair<std::string, std::uint64_t>> snapshotCounters();

/** All gauges, sorted by name. */
std::vector<std::pair<std::string, double>> snapshotGauges();

/** All histograms, sorted by name. */
std::vector<HistogramSnapshot> snapshotHistograms();

/** Every recorded span, merged across threads and sorted by the
 *  global close sequence. */
std::vector<SpanRecord> snapshotSpans();

/** Flat metrics JSON: {"counters":{...},"gauges":{...},
 *  "histograms":{...}} with keys sorted by name. */
void writeMetricsJson(std::ostream &out);

/** Chrome trace_event JSON ({"traceEvents":[...]}); timestamps are
 *  microseconds relative to the earliest recorded span. */
void writeChromeTrace(std::ostream &out);

} // namespace msc::telemetry

#endif // MSC_UTIL_TELEMETRY_HH
