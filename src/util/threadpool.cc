#include "util/threadpool.hh"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

// Pool self-metrics. Chunk/steal/idle tallies depend on scheduling,
// so they sit outside the bit-determinism contract (see
// util/telemetry.hh); pool.jobs and pool.inline_sections are
// deterministic.
constinit telemetry::Counter ctrJobs{"pool.jobs"};
constinit telemetry::Counter ctrInline{"pool.inline_sections"};
constinit telemetry::Counter ctrChunks{"pool.chunks"};
constinit telemetry::Counter ctrSteals{"pool.steals"};
constinit telemetry::Counter ctrIdleNs{"pool.idle_ns"};

thread_local bool inSection = false;

/** RAII flag so nested parallel sections run inline. */
struct SectionGuard
{
    bool saved;
    SectionGuard() : saved(inSection) { inSection = true; }
    ~SectionGuard() { inSection = saved; }
};

// Chaos-harness task hook (one relaxed load per chunk when unset)
// and the process-wide parallel-section sequence its injections are
// keyed on. The sequence covers inline sections too, so a chaos
// draw for "section S, chunk C" is independent of whether the loop
// ran pooled or inline.
std::atomic<ThreadPool::TaskHook> gTaskHook{nullptr};
std::atomic<std::uint64_t> gSectionSeq{0};

} // namespace

bool
ThreadPool::inParallelSection()
{
    return inSection;
}

void
ThreadPool::setTaskHook(TaskHook hook)
{
    gTaskHook.store(hook, std::memory_order_release);
}

std::uint64_t
ThreadPool::sectionCount()
{
    return gSectionSeq.load(std::memory_order_relaxed);
}

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("MSC_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(std::min(v, 512L));
        warn("MSC_THREADS='", env, "' is not a positive integer; "
             "using hardware concurrency");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned lanes)
    : laneCount(lanes > 0 ? lanes : defaultThreadCount())
{
    workers.reserve(laneCount - 1);
    for (unsigned w = 0; w + 1 < laneCount; ++w)
        workers.emplace_back([this, w] { workerLoop(w + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    wake.notify_all();
    for (std::thread &t : workers)
        t.join();
}

void
ThreadPool::workerLoop(unsigned lane)
{
    std::uint64_t seen = 0;
    for (;;) {
        Job *j = nullptr;
        {
            const bool timed = telemetry::metricsActive();
            const std::int64_t t0 = timed ? telemetry::nowNs() : 0;
            std::unique_lock<std::mutex> lk(mu);
            wake.wait(lk, [&] {
                return stopping || jobSeq != seen;
            });
            if (timed)
                ctrIdleNs.add(
                    std::uint64_t(telemetry::nowNs() - t0));
            if (stopping)
                return;
            seen = jobSeq;
            j = job;
        }
        {
            SectionGuard guard;
            help(*j, static_cast<unsigned>(
                         lane % j->ranges.size()));
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            if (--j->pending == 0)
                finished.notify_all();
        }
    }
}

void
ThreadPool::help(Job &j, unsigned homeLane)
{
    // Drain the home range first, then steal chunks from the others.
    // Chunk/steal tallies fold into the shared counters once per
    // help() call: a per-chunk atomic add would put every lane on
    // the same cacheline inside the hot loop.
    std::uint64_t chunks = 0, steals = 0;
    const auto drain = [&] {
        const std::size_t nRanges = j.ranges.size();
        for (std::size_t off = 0; off < nRanges; ++off) {
            Range &r = j.ranges[(homeLane + off) % nRanges];
            for (;;) {
                if (j.cancelled.load(std::memory_order_relaxed))
                    return;
                const std::size_t begin = r.next.fetch_add(
                    j.grain, std::memory_order_relaxed);
                if (begin >= r.end)
                    break;
                const std::size_t end =
                    std::min(r.end, begin + j.grain);
                ++chunks;
                if (off != 0)
                    ++steals;
                try {
                    if (execShouldStop(j.exec))
                        throw CancelledError(j.exec->stopStatus());
                    if (const TaskHook hook = gTaskHook.load(
                            std::memory_order_acquire))
                        hook(j.section, begin);
                    (*j.body)(begin, end);
                } catch (...) {
                    std::lock_guard<std::mutex> lk(j.errorMu);
                    if (!j.error)
                        j.error = std::current_exception();
                    j.cancelled.store(true,
                                      std::memory_order_relaxed);
                    return;
                }
            }
        }
    };
    drain();
    if (chunks != 0) {
        ctrChunks.add(chunks);
        ctrSteals.add(steals);
    }
}

void
ThreadPool::forRange(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t,
                                              std::size_t)> &body,
                     const ExecContext *exec)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    // Inline when parallelism cannot help: a single lane, a loop
    // that fits one chunk, or a nested section (the outer loop
    // already owns every lane).
    if (laneCount == 1 || n <= grain || inSection) {
        ctrInline.add();
        SectionGuard guard;
        const TaskHook hook =
            gTaskHook.load(std::memory_order_acquire);
        if (exec == nullptr && hook == nullptr) {
            body(0, n);
            return;
        }
        // Controlled inline section: run chunk by chunk so the
        // cancellation promptness bound and the chaos hook's
        // per-chunk injection sites match the pooled path.
        const std::uint64_t section =
            gSectionSeq.fetch_add(1, std::memory_order_relaxed) + 1;
        for (std::size_t begin = 0; begin < n; begin += grain) {
            if (execShouldStop(exec))
                throw CancelledError(exec->stopStatus());
            if (hook != nullptr)
                hook(section, begin);
            body(begin, std::min(n, begin + grain));
        }
        return;
    }

    ctrJobs.add();
    std::lock_guard<std::mutex> submit(submitMu);
    Job j;
    j.grain = grain;
    j.body = &body;
    j.exec = exec;
    j.section =
        gSectionSeq.fetch_add(1, std::memory_order_relaxed) + 1;
    // One contiguous range per lane (never more ranges than chunks):
    // owners start disjoint, stealers wrap around.
    const std::size_t chunks = (n + grain - 1) / grain;
    const std::size_t nRanges =
        std::min<std::size_t>(laneCount, chunks);
    j.ranges = std::vector<Range>(nRanges);
    const std::size_t per = n / nRanges;
    const std::size_t extra = n % nRanges;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < nRanges; ++i) {
        const std::size_t len = per + (i < extra ? 1 : 0);
        j.ranges[i].next.store(pos, std::memory_order_relaxed);
        j.ranges[i].end = pos + len;
        pos += len;
    }

    {
        std::lock_guard<std::mutex> lk(mu);
        j.pending = laneCount - 1;
        job = &j;
        ++jobSeq;
    }
    wake.notify_all();
    {
        SectionGuard guard;
        help(j, 0);
    }
    {
        std::unique_lock<std::mutex> lk(mu);
        finished.wait(lk, [&] { return j.pending == 0; });
        job = nullptr;
    }
    if (j.error)
        std::rethrow_exception(j.error);
}

namespace {

std::mutex gPoolMu;
std::unique_ptr<ThreadPool> gPool;

} // namespace

ThreadPool &
globalPool()
{
    std::lock_guard<std::mutex> lk(gPoolMu);
    if (!gPool)
        gPool = std::make_unique<ThreadPool>();
    return *gPool;
}

void
setGlobalThreads(unsigned lanes)
{
    std::lock_guard<std::mutex> lk(gPoolMu);
    gPool.reset(); // join the old workers before spawning new ones
    gPool = std::make_unique<ThreadPool>(lanes);
}

unsigned
globalThreads()
{
    return globalPool().lanes();
}

} // namespace msc
