#include "util/logging.hh"

#include <atomic>
#include <iostream>
#include <mutex>

namespace msc {

namespace {

std::atomic<bool> quiet{false};

/** Serializes whole messages: warn()/inform() may be called from
 *  thread-pool workers and interleaved lines are unreadable. */
std::mutex outputMu;

} // namespace

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

namespace detail {

void
emitWarn(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(outputMu);
        std::cerr << "warn: " << msg << "\n";
    }
}

void
emitInform(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed)) {
        const std::lock_guard<std::mutex> lock(outputMu);
        std::cout << "info: " << msg << "\n";
    }
}

} // namespace detail

} // namespace msc
