#include "util/logging.hh"

#include <atomic>
#include <iostream>

namespace msc {

namespace {

std::atomic<bool> quiet{false};

} // namespace

void
setLogQuiet(bool q)
{
    quiet.store(q, std::memory_order_relaxed);
}

namespace detail {

void
emitWarn(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed))
        std::cerr << "warn: " << msg << "\n";
}

void
emitInform(const std::string &msg)
{
    if (!quiet.load(std::memory_order_relaxed))
        std::cout << "info: " << msg << "\n";
}

} // namespace detail

} // namespace msc
