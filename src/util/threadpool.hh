/**
 * @file
 * Work-stealing thread pool and deterministic parallel facades.
 *
 * The accelerator executes thousands of crossbar clusters across 128
 * banks concurrently; the simulator models that concurrency with a
 * strictly block-granular decomposition, so every hot path (cluster
 * MVMs, placed-block accumulation, fault-campaign applies, per-slice
 * ADC scans, per-matrix experiment fan-out) is an independent-task
 * loop. This pool runs those loops across a fixed set of worker
 * lanes with range stealing: the iteration space is pre-split into
 * one contiguous range per lane and idle lanes drain chunks from
 * whichever ranges still hold work.
 *
 * Determinism contract: the pool schedules nondeterministically, so
 * callers must write per-index results into disjoint slots and
 * reduce them on the calling thread in fixed index order.
 * parallelReduce() packages that pattern: the shard decomposition
 * depends only on the trip count and grain -- never on the lane
 * count -- so a reduction is bit-identical for 1, 2, or 64 threads.
 *
 * Lane count resolution (first use of the global pool):
 *   1. setGlobalThreads(n) -- config JSON ("threads") or tests;
 *   2. the MSC_THREADS environment variable;
 *   3. std::thread::hardware_concurrency().
 *
 * Nested parallel sections run inline on the calling lane (the outer
 * loop already owns all lanes), so operators that parallelize
 * internally compose with a parallel bench harness without deadlock
 * or oversubscription.
 *
 * Execution control: forRange() accepts an optional ExecContext.
 * Between chunks every lane polls it; when the context wants the
 * work stopped (cancel token fired, deadline passed) the remaining
 * shards early-exit through the job's cancelled flag and the caller
 * receives a CancelledError -- the same path that rethrows the
 * first exception thrown by a worker task, so a throwing body never
 * terminates the process. A process-global task hook (setTaskHook)
 * lets the chaos harness (fault/chaos.hh) inject per-chunk delays
 * and exceptions; it costs one relaxed load per chunk when unset.
 */

#ifndef MSC_UTIL_THREADPOOL_HH
#define MSC_UTIL_THREADPOOL_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/exec_context.hh"

namespace msc {

class ThreadPool
{
  public:
    /** @param lanes  worker lanes including the caller; 0 resolves
     *                via MSC_THREADS / hardware_concurrency. */
    explicit ThreadPool(unsigned lanes = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned lanes() const { return laneCount; }

    /**
     * Invoke body(begin, end) over disjoint chunks covering [0, n).
     * Chunks are at most @p grain long; the caller participates and
     * the call returns when every index has been processed. The
     * first exception thrown by any chunk is rethrown here. Runs
     * inline when the pool has one lane, when n <= grain, or when
     * called from inside another parallel section.
     *
     * When @p exec is non-null, every lane polls it between chunks;
     * a fired token or an expired deadline early-exits the remaining
     * shards and rethrows CancelledError on the caller. Indexes
     * already dispatched still complete (one-chunk promptness bound).
     */
    void forRange(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>
                      &body,
                  const ExecContext *exec = nullptr);

    /** True on a thread currently executing inside a parallel
     *  section (nested calls run inline). */
    static bool inParallelSection();

    /**
     * Per-chunk fault-injection hook (chaos harness). Called before
     * every chunk body as hook(section, chunkBegin), where section
     * is a process-wide parallel-section sequence number; a thrown
     * exception propagates to the forRange() caller exactly like a
     * body exception. nullptr uninstalls. Not for production use.
     */
    using TaskHook = void (*)(std::uint64_t section,
                              std::size_t chunkBegin);
    static void setTaskHook(TaskHook hook);

    /** Current value of the process-wide parallel-section sequence.
     *  The chaos harness snapshots it at install time and keys its
     *  draws on the offset, so a campaign replays identically no
     *  matter how many sections ran earlier in the process. */
    static std::uint64_t sectionCount();

  private:
    /** One lane's slice of the iteration space; idle lanes steal
     *  chunks from ranges that still hold work. */
    struct Range
    {
        std::atomic<std::size_t> next{0};
        std::size_t end = 0;
    };

    struct Job
    {
        std::vector<Range> ranges;
        std::size_t grain = 1;
        const std::function<void(std::size_t, std::size_t)> *body =
            nullptr;
        const ExecContext *exec = nullptr; //!< polled between chunks
        std::uint64_t section = 0; //!< task-hook sequence number
        std::atomic<bool> cancelled{false};
        std::exception_ptr error;
        std::mutex errorMu;
        unsigned pending = 0; //!< workers still to finish (under mu)
    };

    void workerLoop(unsigned lane);
    void help(Job &job, unsigned homeLane);

    unsigned laneCount = 1;
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable wake;     //!< new job / shutdown
    std::condition_variable finished; //!< job drained
    std::mutex submitMu;              //!< serializes forRange callers
    Job *job = nullptr;
    std::uint64_t jobSeq = 0;
    bool stopping = false;
};

/** MSC_THREADS env (when set and > 0) or hardware_concurrency. */
unsigned defaultThreadCount();

/** The process-wide pool, created on first use. */
ThreadPool &globalPool();

/** Replace the global pool with one of @p lanes lanes (0 = resolve
 *  the default again). Callers must not hold references to the old
 *  pool across this call. */
void setGlobalThreads(unsigned lanes);

/** Lane count of the global pool (creates it if needed). */
unsigned globalThreads();

/** body(i) for every i in [0, n), in parallel. Results must go to
 *  disjoint slots; reduce them afterwards in fixed index order.
 *  A non-null @p exec is polled between chunks (see forRange). */
template <typename Body>
void
parallelFor(std::size_t n, Body &&body, std::size_t grain = 1,
            const ExecContext *exec = nullptr)
{
    globalPool().forRange(
        n, grain,
        [&body](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                body(i);
        },
        exec);
}

/**
 * Deterministic parallel reduction: map(i) values are combined
 * within fixed shards of @p grain consecutive indices, and the shard
 * partials are combined on the calling thread in ascending shard
 * order. The shard decomposition depends only on (n, grain), so the
 * result -- including floating-point rounding -- is independent of
 * the lane count and of scheduling.
 */
template <typename T, typename Map, typename Combine>
T
parallelReduce(std::size_t n, T identity, Map &&map,
               Combine &&combine, std::size_t grain = 1,
               const ExecContext *exec = nullptr)
{
    if (n == 0)
        return identity;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t shards = (n + g - 1) / g;
    std::vector<T> partials(shards, identity);
    globalPool().forRange(
        shards, 1,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
                T acc = partials[s];
                const std::size_t lo = s * g;
                const std::size_t hi = std::min(n, lo + g);
                for (std::size_t i = lo; i < hi; ++i)
                    acc = combine(std::move(acc), map(i));
                partials[s] = std::move(acc);
            }
        },
        exec);
    T total = std::move(partials[0]);
    for (std::size_t s = 1; s < shards; ++s)
        total = combine(std::move(total), std::move(partials[s]));
    return total;
}

} // namespace msc

#endif // MSC_UTIL_THREADPOOL_HH
