/**
 * @file
 * Analytic Tesla P100 baseline model.
 *
 * Substitutes for the paper's GPGPUSim + GPUWattch baseline (Section
 * VII-B). Krylov solver kernels on GPUs are memory-bound, so each
 * kernel is modeled as streamed bytes over an effective bandwidth
 * plus a fixed launch/sync overhead; SpMV additionally pays a
 * gather penalty for the irregular x[] accesses whose cache locality
 * depends on the matrix bandwidth. Energy is busy-power times busy
 * time plus idle power. Constants are calibrated to published
 * P100 SpMV/CG measurements (cuSPARSE-class efficiency; Anzt et al.
 * [53] report launch/sync-dominated Krylov iterations at these
 * problem sizes).
 */

#ifndef MSC_GPU_GPU_HH
#define MSC_GPU_GPU_HH

#include "solver/solver.hh"
#include "sparse/stats.hh"

namespace msc {

struct GpuModelParams
{
    double memBandwidth = 732e9;   //!< HBM2 peak, bytes/s
    double streamEfficiency = 0.35; //!< achieved fraction, streaming
    /** Gather efficiency bounds: wide-band random access vs
     *  cache-friendly narrow band. */
    double gatherEffLow = 0.05;
    double gatherEffHigh = 0.25;
    /** Matrix bandwidth (in columns) at which gather locality decays
     *  by 1/e. */
    double gatherLocalityScale = 16384.0;
    double kernelLaunch = 18e-6;   //!< seconds per launch (+ driver)
    double reduceSync = 35e-6;     //!< host-blocking reduction sync
    double busyPower = 160.0;      //!< watts while kernels run
    double idlePower = 30.0;       //!< watts baseline
    double dieAreaMm2 = 610.0;     //!< P100 die (Section VIII-C)
};

/** Time and energy of one kernel or one solve on the GPU. */
struct GpuCost
{
    double time = 0.0;   //!< seconds
    double energy = 0.0; //!< joules

    GpuCost &
    operator+=(const GpuCost &o)
    {
        time += o.time;
        energy += o.energy;
        return *this;
    }
};

class GpuModel
{
  public:
    explicit GpuModel(const GpuModelParams &params = {})
        : prm(params)
    {}

    const GpuModelParams &params() const { return prm; }

    /** One CSR SpMV y = A x. */
    GpuCost spmv(const MatrixStats &stats) const;

    /** One dense dot product of length n (includes reduction sync). */
    GpuCost dotProduct(std::uint64_t n) const;

    /** One AXPY of length n. */
    GpuCost axpy(std::uint64_t n) const;

    /**
     * A full solve: kernel-call counts from a SolverResult mapped
     * through the per-kernel models.
     */
    GpuCost solve(const MatrixStats &stats,
                  const SolverResult &run) const;

  private:
    double gatherEfficiency(const MatrixStats &stats) const;

    GpuModelParams prm;
};

} // namespace msc

#endif // MSC_GPU_GPU_HH
