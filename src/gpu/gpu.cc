#include "gpu/gpu.hh"

#include <cmath>

namespace msc {

double
GpuModel::gatherEfficiency(const MatrixStats &stats) const
{
    // Narrow-band matrices reuse cached x[] lines; wide or scattered
    // patterns approach random HBM access.
    const double locality =
        std::exp(-static_cast<double>(stats.bandwidth) /
                 prm.gatherLocalityScale);
    return prm.gatherEffLow +
           (prm.gatherEffHigh - prm.gatherEffLow) * locality;
}

GpuCost
GpuModel::spmv(const MatrixStats &stats) const
{
    // Streamed: values (8B) + column indices (4B) per nonzero, row
    // pointers (4B) + y write (8B, allocate-on-write read adds 8B)
    // per row.
    const double streamBytes =
        static_cast<double>(stats.nnz) * 12.0 +
        static_cast<double>(stats.rows) * 20.0;
    // Gathered: one 8B x element per nonzero at gather efficiency.
    const double gatherBytes = static_cast<double>(stats.nnz) * 8.0;

    GpuCost c;
    c.time = prm.kernelLaunch +
             streamBytes / (prm.streamEfficiency * prm.memBandwidth) +
             gatherBytes /
                 (gatherEfficiency(stats) * prm.memBandwidth);
    c.energy = c.time * prm.busyPower;
    return c;
}

GpuCost
GpuModel::dotProduct(std::uint64_t n) const
{
    GpuCost c;
    const double bytes = static_cast<double>(n) * 16.0;
    c.time = prm.kernelLaunch + prm.reduceSync +
             bytes / (prm.streamEfficiency * prm.memBandwidth);
    c.energy = c.time * prm.busyPower;
    return c;
}

GpuCost
GpuModel::axpy(std::uint64_t n) const
{
    GpuCost c;
    const double bytes = static_cast<double>(n) * 24.0;
    c.time = prm.kernelLaunch +
             bytes / (prm.streamEfficiency * prm.memBandwidth);
    c.energy = c.time * prm.busyPower;
    return c;
}

GpuCost
GpuModel::solve(const MatrixStats &stats, const SolverResult &run) const
{
    GpuCost total;
    const GpuCost perSpmv = spmv(stats);
    const GpuCost perDot = dotProduct(run.vectorLength);
    const GpuCost perAxpy = axpy(run.vectorLength);
    total.time = run.spmvCalls * perSpmv.time +
                 run.dotCalls * perDot.time +
                 run.axpyCalls * perAxpy.time;
    total.energy = run.spmvCalls * perSpmv.energy +
                   run.dotCalls * perDot.energy +
                   run.axpyCalls * perAxpy.energy;
    // Idle/baseline power over the whole solve.
    total.energy += total.time * prm.idlePower;
    return total;
}

} // namespace msc
