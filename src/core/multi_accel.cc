#include "core/multi_accel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace msc {

MultiAccelerator::MultiAccelerator(
    const MultiAcceleratorConfig &config)
    : cfg(config)
{
    if (cfg.devices < 1)
        fatal("MultiAccelerator: need at least one device");
}

MultiPrepareResult
MultiAccelerator::prepare(const Csr &matrix,
                          std::span<const double> sampleX)
{
    prep = MultiPrepareResult{};
    prep.rows = matrix.rows();
    cols = matrix.cols();

    devices.clear();
    slabs.clear();
    slabMatrices.clear();

    const std::int32_t rowsPerDevice =
        (matrix.rows() + cfg.devices - 1) / cfg.devices;
    for (int d = 0; d < cfg.devices; ++d) {
        const std::int32_t lo = d * rowsPerDevice;
        const std::int32_t hi =
            std::min<std::int32_t>(lo + rowsPerDevice,
                                   matrix.rows());
        if (lo >= hi)
            break;
        slabs.push_back({lo, hi});

        // Extract the slab as its own matrix (full column span).
        Coo coo;
        coo.rows = hi - lo;
        coo.cols = matrix.cols();
        for (std::int32_t r = lo; r < hi; ++r) {
            const auto rowCols = matrix.rowCols(r);
            const auto rowVals = matrix.rowVals(r);
            for (std::size_t k = 0; k < rowCols.size(); ++k)
                coo.add(r - lo, rowCols[k], rowVals[k]);
        }
        slabMatrices.push_back(Csr::fromCoo(coo));
    }

    double maxSpmvTime = 0.0, sumSpmvEnergy = 0.0;
    double maxDotTime = 0.0, sumDotEnergy = 0.0;
    double maxAxpyTime = 0.0, sumAxpyEnergy = 0.0;
    for (std::size_t d = 0; d < slabMatrices.size(); ++d) {
        devices.push_back(std::make_unique<Accelerator>(cfg.device));
        const PrepareResult r =
            devices.back()->prepare(slabMatrices[d], sampleX);
        prep.perDevice.push_back(r);
        prep.anyGpuFallback |= r.gpuFallback;
        prep.programTime = std::max(prep.programTime, r.programTime);
        prep.preprocessTime += r.preprocessTime;
        maxSpmvTime = std::max(maxSpmvTime, r.spmv.time);
        sumSpmvEnergy += r.spmv.energy;
        maxDotTime = std::max(maxDotTime, r.dotOp.time);
        sumDotEnergy += r.dotOp.energy;
        maxAxpyTime = std::max(maxAxpyTime, r.axpyOp.time);
        sumAxpyEnergy += r.axpyOp.energy;
    }

    // Post-MVM exchange: each device broadcasts its updated slab of
    // the derived vector to the others (ring all-gather: every link
    // carries the full remote data once).
    const double exchangeBytes =
        static_cast<double>(matrix.rows()) * 8.0;
    const double exchangeTime = slabMatrices.size() > 1
        ? exchangeBytes / cfg.interChipBandwidth +
              cfg.interChipLatency
        : 0.0;

    prep.spmv.time = maxSpmvTime + exchangeTime;
    prep.spmv.energy = sumSpmvEnergy +
        (slabMatrices.size() > 1
             ? exchangeBytes * 20e-12 // link energy, ~20 pJ/B
             : 0.0);
    // Dot products add one scalar reduction across devices.
    prep.dotOp.time = maxDotTime +
        (slabMatrices.size() > 1 ? cfg.interChipLatency : 0.0);
    prep.dotOp.energy = sumDotEnergy;
    prep.axpyOp.time = maxAxpyTime;
    prep.axpyOp.energy = sumAxpyEnergy;

    isPrepared = true;
    return prep;
}

void
MultiAccelerator::spmv(std::span<const double> x,
                       std::span<double> y) const
{
    if (!isPrepared)
        fatal("MultiAccelerator::spmv: prepare() first");
    if (x.size() != static_cast<std::size_t>(cols) ||
        y.size() != static_cast<std::size_t>(prep.rows))
        fatal("MultiAccelerator::spmv: dimension mismatch");
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const auto [lo, hi] = slabs[d];
        devices[d]->spmv(
            x, y.subspan(static_cast<std::size_t>(lo),
                         static_cast<std::size_t>(hi - lo)));
    }
}

void
MultiAccelerator::spmm(std::span<const double> X,
                       std::span<double> Y, unsigned k) const
{
    if (!isPrepared)
        fatal("MultiAccelerator::spmm: prepare() first");
    if (k == 0)
        fatal("MultiAccelerator::spmm: empty panel");
    if (X.size() != static_cast<std::size_t>(cols) * k ||
        Y.size() != static_cast<std::size_t>(prep.rows) * k)
        fatal("MultiAccelerator::spmm: panel size mismatch");
    const auto nRows = static_cast<std::size_t>(prep.rows);
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const auto [lo, hi] = slabs[d];
        const auto slabRows = static_cast<std::size_t>(hi - lo);
        // The device writes a k-column panel of its slab; Y's
        // columns are full-height, so the slab panel lands in a
        // local buffer and scatters out column by column (a copy,
        // never an arithmetic op -- the bitwise contract holds).
        std::vector<double> local(slabRows * k);
        devices[d]->spmm(X, local, k);
        for (unsigned c = 0; c < k; ++c)
            std::copy_n(local.data() + c * slabRows, slabRows,
                        Y.data() + c * nRows +
                            static_cast<std::size_t>(lo));
    }
}

void
MultiAccelerator::setExecContext(const ExecContext *ctx)
{
    for (auto &dev : devices)
        dev->setExecContext(ctx);
}

AccelCost
MultiAccelerator::solveCost(const SolverResult &run,
                            bool includeSetup) const
{
    if (!isPrepared)
        fatal("MultiAccelerator::solveCost: prepare() first");
    AccelCost total;
    total.time = run.spmvCalls * prep.spmv.time +
                 run.dotCalls * prep.dotOp.time +
                 run.axpyCalls * prep.axpyOp.time;
    total.energy = run.spmvCalls * prep.spmv.energy +
                   run.dotCalls * prep.dotOp.energy +
                   run.axpyCalls * prep.axpyOp.energy;
    if (includeSetup) {
        total.time += prep.programTime + prep.preprocessTime;
        for (const auto &r : prep.perDevice)
            total.energy += r.programEnergy;
    }
    total.energy += total.time * cfg.device.staticPower *
                    static_cast<double>(devices.size());
    return total;
}

} // namespace msc
