/**
 * @file
 * JSON configuration loading for experiment setups.
 *
 * Every knob of the accelerator, GPU baseline, and solver can be set
 * from a JSON file so that design points are data, not code. Absent
 * keys keep the Table I defaults; unknown keys are fatal (they are
 * almost always typos).
 *
 * Example:
 * @code{.json}
 * {
 *   "seed": 1234,
 *   "accelerator": {
 *     "banks": 128,
 *     "clustersPerBank": [[512, 2], [256, 4], [128, 6], [64, 8]],
 *     "cluster": {"schedule": "hybrid", "targetMantissaBits": 53},
 *     "staticPower": 120.0
 *   },
 *   "gpu": {"memBandwidth": 732e9},
 *   "solver": {"tolerance": 1e-8, "maxIterations": 2500},
 *   "device": {"bitsPerCell": 1, "progErrorSigma": 0.02},
 *   "fault": {"transientUpsetRate": 1e-3, "deadCrossbarRate": 0.01}
 * }
 * @endcode
 *
 * The top-level "seed" is the experiment-level RNG seed: the noisy
 * operator, the fault injector (unless "fault.seed" overrides it),
 * and the Monte Carlo benches all derive their streams from it, so
 * campaigns are bit-reproducible from the config file alone.
 */

#ifndef MSC_CORE_CONFIG_HH
#define MSC_CORE_CONFIG_HH

#include <string>

#include "core/experiment.hh"
#include "util/json.hh"

namespace msc {

/** Build an ExperimentConfig from parsed JSON. */
ExperimentConfig configFromJson(const JsonValue &root);

/** Build an ExperimentConfig from a JSON file. */
ExperimentConfig loadExperimentConfig(const std::string &path);

} // namespace msc

#endif // MSC_CORE_CONFIG_HH
