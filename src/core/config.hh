/**
 * @file
 * JSON configuration loading for experiment setups.
 *
 * Every knob of the accelerator, GPU baseline, and solver can be set
 * from a JSON file so that design points are data, not code. Absent
 * keys keep the Table I defaults; unknown keys are fatal (they are
 * almost always typos).
 *
 * Example:
 * @code{.json}
 * {
 *   "accelerator": {
 *     "banks": 128,
 *     "clustersPerBank": [[512, 2], [256, 4], [128, 6], [64, 8]],
 *     "cluster": {"schedule": "hybrid", "targetMantissaBits": 53},
 *     "staticPower": 120.0
 *   },
 *   "gpu": {"memBandwidth": 732e9},
 *   "solver": {"tolerance": 1e-8, "maxIterations": 2500}
 * }
 * @endcode
 */

#ifndef MSC_CORE_CONFIG_HH
#define MSC_CORE_CONFIG_HH

#include <string>

#include "core/experiment.hh"
#include "util/json.hh"

namespace msc {

/** Build an ExperimentConfig from parsed JSON. */
ExperimentConfig configFromJson(const JsonValue &root);

/** Build an ExperimentConfig from a JSON file. */
ExperimentConfig loadExperimentConfig(const std::string &path);

} // namespace msc

#endif // MSC_CORE_CONFIG_HH
