/**
 * @file
 * Multi-accelerator partitioning (Section VI).
 *
 * "On problems that are too large for a single accelerator, the MVM
 * can be split in a manner analogous to the partitioning on GPUs:
 * each accelerator handles a portion of the MVM, and the
 * accelerators synchronize between iterations."
 *
 * The matrix is split into contiguous row slabs, one per
 * accelerator. Each device owns its slab's rows of the solution and
 * derived vectors; after every MVM the devices exchange their slab
 * of x (an all-gather over the inter-chip links) and synchronize.
 * Dot products reduce partial scalars across devices.
 */

#ifndef MSC_CORE_MULTI_ACCEL_HH
#define MSC_CORE_MULTI_ACCEL_HH

#include <memory>
#include <vector>

#include "accel/accel.hh"

namespace msc {

struct MultiAcceleratorConfig
{
    int devices = 2;
    AcceleratorConfig device;       //!< per-device configuration
    double interChipBandwidth = 100e9; //!< bytes/s per link
    double interChipLatency = 1.5e-6;  //!< per synchronization
};

struct MultiPrepareResult
{
    std::vector<PrepareResult> perDevice;
    std::int32_t rows = 0;
    /** Per-iteration-kernel costs (slowest device + exchange). */
    AccelCost spmv;
    AccelCost dotOp;
    AccelCost axpyOp;
    double programTime = 0.0;
    double preprocessTime = 0.0;
    bool anyGpuFallback = false;
};

/**
 * A row-partitioned fleet of accelerators.
 */
class MultiAccelerator
{
  public:
    explicit MultiAccelerator(const MultiAcceleratorConfig &config);

    const MultiAcceleratorConfig &config() const { return cfg; }

    /** Partition, block, and place @p matrix across the devices. */
    MultiPrepareResult prepare(const Csr &matrix,
                               std::span<const double> sampleX = {});

    bool prepared() const { return isPrepared; }
    const MultiPrepareResult &info() const { return prep; }

    /** Functional y = A x across the fleet. */
    void spmv(std::span<const double> x, std::span<double> y) const;

    /** Map a solver run to fleet time/energy, including setup. */
    AccelCost solveCost(const SolverResult &run,
                        bool includeSetup = true) const;

  private:
    MultiAcceleratorConfig cfg;
    bool isPrepared = false;
    MultiPrepareResult prep;
    std::vector<std::unique_ptr<Accelerator>> devices;
    /** Row slab [start, end) per device. */
    std::vector<std::pair<std::int32_t, std::int32_t>> slabs;
    std::vector<Csr> slabMatrices;
    std::int32_t cols = 0;
};

} // namespace msc

#endif // MSC_CORE_MULTI_ACCEL_HH
