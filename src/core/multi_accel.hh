/**
 * @file
 * Multi-accelerator partitioning (Section VI).
 *
 * "On problems that are too large for a single accelerator, the MVM
 * can be split in a manner analogous to the partitioning on GPUs:
 * each accelerator handles a portion of the MVM, and the
 * accelerators synchronize between iterations."
 *
 * The matrix is split into contiguous row slabs, one per
 * accelerator. Each device owns its slab's rows of the solution and
 * derived vectors; after every MVM the devices exchange their slab
 * of x (an all-gather over the inter-chip links) and synchronize.
 * Dot products reduce partial scalars across devices.
 */

#ifndef MSC_CORE_MULTI_ACCEL_HH
#define MSC_CORE_MULTI_ACCEL_HH

#include <memory>
#include <vector>

#include "accel/accel.hh"

namespace msc {

struct MultiAcceleratorConfig
{
    int devices = 2;
    AcceleratorConfig device;       //!< per-device configuration
    double interChipBandwidth = 100e9; //!< bytes/s per link
    double interChipLatency = 1.5e-6;  //!< per synchronization
};

struct MultiPrepareResult
{
    std::vector<PrepareResult> perDevice;
    std::int32_t rows = 0;
    /** Per-iteration-kernel costs (slowest device + exchange). */
    AccelCost spmv;
    AccelCost dotOp;
    AccelCost axpyOp;
    double programTime = 0.0;
    double preprocessTime = 0.0;
    bool anyGpuFallback = false;
};

/**
 * A row-partitioned fleet of accelerators.
 */
class MultiAccelerator
{
  public:
    explicit MultiAccelerator(const MultiAcceleratorConfig &config);

    const MultiAcceleratorConfig &config() const { return cfg; }

    /** Partition, block, and place @p matrix across the devices. */
    MultiPrepareResult prepare(const Csr &matrix,
                               std::span<const double> sampleX = {});

    bool prepared() const { return isPrepared; }
    const MultiPrepareResult &info() const { return prep; }

    /** Dimensions of the prepared matrix (0 before prepare()). */
    std::int32_t rows() const { return prep.rows; }
    std::int32_t matrixCols() const { return cols; }

    /** Functional y = A x across the fleet. */
    void spmv(std::span<const double> x, std::span<double> y) const;

    /**
     * Functional multi-RHS Y = A X over column-major k-column
     * panels, bitwise identical to k spmv() calls in column order:
     * each device runs its slab's spmm (which carries the PR 7
     * bitwise batch contract) into a local panel and the slabs
     * scatter into Y's columns without rounding.
     */
    void spmm(std::span<const double> X, std::span<double> Y,
              unsigned k) const;

    /**
     * Forward an execution context to every device so a cancel or
     * deadline lands mid-spmv on whichever slab is in flight. Call
     * after prepare(); nullptr detaches. Not owned.
     */
    void setExecContext(const ExecContext *ctx);

    /** Map a solver run to fleet time/energy, including setup. */
    AccelCost solveCost(const SolverResult &run,
                        bool includeSetup = true) const;

  private:
    MultiAcceleratorConfig cfg;
    bool isPrepared = false;
    MultiPrepareResult prep;
    std::vector<std::unique_ptr<Accelerator>> devices;
    /** Row slab [start, end) per device. */
    std::vector<std::pair<std::int32_t, std::int32_t>> slabs;
    std::vector<Csr> slabMatrices;
    std::int32_t cols = 0;
};

/**
 * LinearOperator adapter over a prepared MultiAccelerator: the
 * sharding backend of the service runtime. apply()/applyBatch()
 * route to the fleet's spmv()/spmm(); setExecContext() forwards to
 * every device. Does not own the fleet.
 */
class MultiAcceleratorOperator : public LinearOperator
{
  public:
    explicit MultiAcceleratorOperator(MultiAccelerator &f)
        : fleet(&f)
    {}

    std::int32_t rows() const override { return fleet->rows(); }
    std::int32_t cols() const override
    {
        return fleet->matrixCols();
    }

    void
    apply(std::span<const double> x, std::span<double> y) override
    {
        fleet->spmv(x, y);
    }

    void
    applyBatch(std::span<const double> X, std::span<double> Y,
               unsigned k) override
    {
        fleet->spmm(X, Y, k);
    }

    void
    setExecContext(const ExecContext *ctx) override
    {
        fleet->setExecContext(ctx);
    }

  private:
    MultiAccelerator *fleet;
};

} // namespace msc

#endif // MSC_CORE_MULTI_ACCEL_HH
