#include "core/experiment.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace msc {

ExperimentResult
runExperiment(const std::string &name, const Csr &m, bool spd,
              const ExperimentConfig &cfg)
{
    ExperimentResult res;
    res.name = name;
    res.usedCg = spd;
    res.stats = computeStats(m);

    // The b vector: all ones when the collection provides none
    // (Section VII-C).
    std::vector<double> b(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> x(b.size(), 0.0);

    // Accelerator preparation (blocking + placement + estimation).
    Accelerator accel(cfg.accel);
    const PrepareResult prep = accel.prepare(m, b);
    res.blocking = prep.blocking;
    res.gpuFallback = prep.gpuFallback;
    res.banksUsed = prep.banksUsed;
    res.programTime = prep.programTime;
    // Preprocessing is charged at the paper's convention: its worst
    // case (4x NNZ element visits) is "comparable to performing four
    // MVM operations on the baseline system" (Section VII-B).
    const GpuModel gpuForPre(cfg.gpu);
    res.preprocessTime = 4.0 * gpuForPre.spmv(res.stats).time *
        (prep.blocking.visitsPerNnz() / 4.0);

    // Solve once; both platforms converge in the same number of
    // iterations since they compute at the same precision (VII-C).
    CsrOperator op(m);
    SolverKind kind = cfg.solverKind;
    if (kind == SolverKind::Auto)
        kind = spd ? SolverKind::Cg : SolverKind::BiCgStab;
    res.usedCg = (kind == SolverKind::Cg);
    switch (kind) {
      case SolverKind::Auto: // resolved above
      case SolverKind::Cg:
        res.solve = conjugateGradient(op, b, x, cfg.solver);
        break;
      case SolverKind::BiCgStab:
        res.solve = biCgStab(op, b, x, cfg.solver);
        break;
      case SolverKind::Gmres:
        res.solve = gmres(op, b, x, cfg.solver, cfg.gmresRestart);
        break;
    }
    if (!res.solve.converged) {
        warn("experiment ", name, ": solver did not converge (",
             res.solve.iterations, " iters, rel res ",
             res.solve.relResidual, ")");
    }

    // Cost on both platforms.
    const GpuModel gpu(cfg.gpu);
    const GpuCost gpuCost = gpu.solve(res.stats, res.solve);
    res.gpuTime = gpuCost.time;
    res.gpuEnergy = gpuCost.energy;

    if (prep.gpuFallback) {
        // The blocking pass reached its worst case and the matrix is
        // routed to the GPU; the accelerator-side cost is the GPU
        // solve plus the wasted preprocessing (Section VIII-A).
        res.accelTime = res.gpuTime + res.preprocessTime;
        res.accelEnergy =
            res.gpuEnergy +
            res.preprocessTime * cfg.accel.staticPower;
        res.programTime = 0.0;
    } else {
        const AccelCost cost = accel.solveCost(res.solve, false);
        res.accelTime =
            cost.time + prep.programTime + res.preprocessTime;
        res.accelEnergy = cost.energy + prep.programEnergy +
            (prep.programTime + res.preprocessTime) *
                cfg.accel.staticPower;
    }
    return res;
}

ExperimentResult
runExperiment(const SuiteEntry &entry, const ExperimentConfig &cfg)
{
    const Csr m = buildSuiteMatrix(entry);
    return runExperiment(entry.name, m, entry.spd, cfg);
}

std::vector<ExperimentResult>
runSuiteExperiments(const ExperimentConfig &cfg)
{
    if (cfg.threads != 0)
        setGlobalThreads(cfg.threads);
    if (cfg.telemetry)
        telemetry::configure(*cfg.telemetry);
    const std::vector<SuiteEntry> &entries = suiteMatrices();
    std::vector<ExperimentResult> results(entries.size());
    // Whole experiments are the coarsest profitable granularity for
    // the bench harness: one matrix per task, results stored by
    // suite index, so the output order (and every result in it) is
    // independent of the lane count.
    parallelFor(entries.size(), [&](std::size_t i) {
        results[i] = runExperiment(entries[i], cfg);
    });
    return results;
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double logSum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            fatal("geometricMean: non-positive value");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

} // namespace msc
