#include "core/config.hh"

#include <set>

#include "util/logging.hh"

namespace msc {

namespace {

/** Fatal on unknown keys: config typos should not silently no-op. */
void
checkKeys(const JsonValue &obj, const std::set<std::string> &allowed,
          const char *where)
{
    for (const auto &[key, value] : obj.asObject()) {
        (void)value;
        if (allowed.find(key) == allowed.end())
            fatal("config: unknown key '", key, "' in ", where);
    }
}

SchedulePolicy
parseSchedule(const std::string &name)
{
    if (name == "vertical")
        return SchedulePolicy::Vertical;
    if (name == "diagonal")
        return SchedulePolicy::Diagonal;
    if (name == "hybrid")
        return SchedulePolicy::Hybrid;
    fatal("config: unknown schedule '", name, "'");
}

RoundingMode
parseRounding(const std::string &name)
{
    if (name == "toward-neg-inf")
        return RoundingMode::TowardNegInf;
    if (name == "toward-pos-inf")
        return RoundingMode::TowardPosInf;
    if (name == "toward-zero")
        return RoundingMode::TowardZero;
    if (name == "nearest-even")
        return RoundingMode::NearestEven;
    fatal("config: unknown rounding mode '", name, "'");
}

SolverKind
parseSolverKind(const std::string &name)
{
    if (name == "auto")
        return SolverKind::Auto;
    if (name == "cg")
        return SolverKind::Cg;
    if (name == "bicgstab")
        return SolverKind::BiCgStab;
    if (name == "gmres")
        return SolverKind::Gmres;
    fatal("config: unknown solver '", name, "'");
}

void
applyCluster(const JsonValue &j, ClusterConfig &c)
{
    checkKeys(j,
              {"schedule", "hybridSkew", "rounding",
               "targetMantissaBits", "earlyTermination", "anProtect",
               "anConstant", "cic", "adcHeadstart"},
              "cluster");
    if (j.has("schedule"))
        c.schedule = parseSchedule(j.at("schedule").asString());
    c.hybridSkew = static_cast<unsigned>(
        j.numberOr("hybridSkew", c.hybridSkew));
    if (j.has("rounding"))
        c.rounding = parseRounding(j.at("rounding").asString());
    c.targetMantissaBits = static_cast<unsigned>(
        j.numberOr("targetMantissaBits", c.targetMantissaBits));
    c.earlyTermination =
        j.boolOr("earlyTermination", c.earlyTermination);
    c.anProtect = j.boolOr("anProtect", c.anProtect);
    c.anConstant = static_cast<std::uint64_t>(
        j.numberOr("anConstant", static_cast<double>(c.anConstant)));
    c.cic = j.boolOr("cic", c.cic);
    c.adcHeadstart = j.boolOr("adcHeadstart", c.adcHeadstart);
}

void
applyAccelerator(const JsonValue &j, AcceleratorConfig &a)
{
    checkKeys(j,
              {"banks", "rowsPerBank", "clustersPerBank", "cluster",
               "staticPower", "gpuFallbackThreshold",
               "densityFactor"},
              "accelerator");
    a.banks = static_cast<unsigned>(j.numberOr("banks", a.banks));
    a.rowsPerBank = static_cast<unsigned>(
        j.numberOr("rowsPerBank", a.rowsPerBank));
    if (j.has("clustersPerBank")) {
        a.clustersPerBank.clear();
        std::vector<unsigned> sizes;
        for (const JsonValue &pair :
             j.at("clustersPerBank").asArray()) {
            const auto &arr = pair.asArray();
            if (arr.size() != 2)
                fatal("config: clustersPerBank entries are "
                      "[size, count] pairs");
            a.clustersPerBank.push_back(
                {static_cast<unsigned>(arr[0].asNumber()),
                 static_cast<unsigned>(arr[1].asNumber())});
            sizes.push_back(
                static_cast<unsigned>(arr[0].asNumber()));
        }
        // The blocking preprocessor may only use sizes that exist.
        a.blocking.sizes = sizes;
    }
    if (j.has("cluster"))
        applyCluster(j.at("cluster"), a.cluster);
    a.staticPower = j.numberOr("staticPower", a.staticPower);
    a.gpuFallbackThreshold =
        j.numberOr("gpuFallbackThreshold", a.gpuFallbackThreshold);
    a.blocking.densityFactor =
        j.numberOr("densityFactor", a.blocking.densityFactor);
}

void
applyGpu(const JsonValue &j, GpuModelParams &g)
{
    checkKeys(j,
              {"memBandwidth", "streamEfficiency", "gatherEffLow",
               "gatherEffHigh", "kernelLaunch", "reduceSync",
               "busyPower", "idlePower"},
              "gpu");
    g.memBandwidth = j.numberOr("memBandwidth", g.memBandwidth);
    g.streamEfficiency =
        j.numberOr("streamEfficiency", g.streamEfficiency);
    g.gatherEffLow = j.numberOr("gatherEffLow", g.gatherEffLow);
    g.gatherEffHigh = j.numberOr("gatherEffHigh", g.gatherEffHigh);
    g.kernelLaunch = j.numberOr("kernelLaunch", g.kernelLaunch);
    g.reduceSync = j.numberOr("reduceSync", g.reduceSync);
    g.busyPower = j.numberOr("busyPower", g.busyPower);
    g.idlePower = j.numberOr("idlePower", g.idlePower);
}

void
applyDevice(const JsonValue &j, CellParams &c)
{
    checkKeys(j,
              {"bitsPerCell", "rOn", "rOff", "vRead", "writeEnergy",
               "writeTime", "writeEndurance", "progErrorSigma"},
              "device");
    c.bitsPerCell = static_cast<unsigned>(
        j.numberOr("bitsPerCell", c.bitsPerCell));
    c.rOn = j.numberOr("rOn", c.rOn);
    c.rOff = j.numberOr("rOff", c.rOff);
    c.vRead = j.numberOr("vRead", c.vRead);
    c.writeEnergy = j.numberOr("writeEnergy", c.writeEnergy);
    c.writeTime = j.numberOr("writeTime", c.writeTime);
    c.writeEndurance =
        j.numberOr("writeEndurance", c.writeEndurance);
    c.progErrorSigma =
        j.numberOr("progErrorSigma", c.progErrorSigma);
}

void
applySolver(const JsonValue &j, ExperimentConfig &cfg)
{
    checkKeys(j, {"tolerance", "maxIterations", "kind", "restart"},
              "solver");
    cfg.solver.tolerance =
        j.numberOr("tolerance", cfg.solver.tolerance);
    cfg.solver.maxIterations = static_cast<int>(
        j.numberOr("maxIterations", cfg.solver.maxIterations));
    if (j.has("kind"))
        cfg.solverKind = parseSolverKind(j.at("kind").asString());
    cfg.gmresRestart = static_cast<int>(
        j.numberOr("restart", cfg.gmresRestart));
}

void
applyTelemetry(const JsonValue &j, ExperimentConfig &cfg)
{
    checkKeys(j, {"enabled", "spans"}, "telemetry");
    telemetry::Config t;
    t.enabled = j.boolOr("enabled", t.enabled);
    t.spans = j.boolOr("spans", t.spans);
    cfg.telemetry = t;
}

void
applyIo(const JsonValue &j, ExperimentConfig &cfg)
{
    checkKeys(j, {"matrixArtifact", "preferArtifacts"}, "io");
    if (j.has("matrixArtifact"))
        cfg.io.matrixArtifact = j.at("matrixArtifact").asString();
    cfg.io.preferArtifacts =
        j.boolOr("preferArtifacts", cfg.io.preferArtifacts);
}

} // namespace

ExperimentConfig
configFromJson(const JsonValue &root)
{
    ExperimentConfig cfg;
    checkKeys(root,
              {"accelerator", "gpu", "solver", "seed", "device",
               "fault", "threads", "telemetry", "io"},
              "document");
    if (root.has("accelerator"))
        applyAccelerator(root.at("accelerator"), cfg.accel);
    if (root.has("gpu"))
        applyGpu(root.at("gpu"), cfg.gpu);
    if (root.has("solver"))
        applySolver(root.at("solver"), cfg);
    // One experiment-level seed: NoisyCsrOperator, FaultInjector,
    // and the benches all derive from it, so a campaign is
    // reproducible from the config file alone.
    cfg.seed = static_cast<std::uint64_t>(
        root.numberOr("seed", static_cast<double>(cfg.seed)));
    // Worker threads for the parallel execution engine; 0 keeps the
    // MSC_THREADS / hardware-concurrency default. Results never
    // depend on this value, only wall-clock time does.
    cfg.threads = static_cast<unsigned>(
        root.numberOr("threads", static_cast<double>(cfg.threads)));
    if (root.has("device"))
        applyDevice(root.at("device"), cfg.cell);
    // Observability switches; absent section = leave the process
    // state (MSC_TELEMETRY or a prior configure()) untouched.
    if (root.has("telemetry"))
        applyTelemetry(root.at("telemetry"), cfg);
    // Binary-artifact I/O: where msc_pack writes, whether loaders
    // map sidecars. Never changes any solver answer bit.
    if (root.has("io"))
        applyIo(root.at("io"), cfg);
    cfg.fault.seed = cfg.seed; // inherited unless "fault" overrides
    if (root.has("fault")) {
        const std::uint64_t inherited = cfg.fault.seed;
        cfg.fault = faultCampaignFromJson(root.at("fault"));
        if (!root.at("fault").has("seed"))
            cfg.fault.seed = inherited;
    }
    return cfg;
}

ExperimentConfig
loadExperimentConfig(const std::string &path)
{
    return configFromJson(JsonValue::parseFile(path));
}

} // namespace msc
