/**
 * @file
 * End-to-end experiment driver: builds a suite matrix, runs the
 * solver the paper prescribes (CG for SPD, BiCG-STAB otherwise),
 * and maps the run through the accelerator and GPU cost models.
 * This is the engine behind Figures 8, 9, and 10.
 */

#ifndef MSC_CORE_EXPERIMENT_HH
#define MSC_CORE_EXPERIMENT_HH

#include <optional>
#include <string>

#include "accel/accel.hh"
#include "device/cell.hh"
#include "fault/fault.hh"
#include "gpu/gpu.hh"
#include "sparse/suite.hh"
#include "util/telemetry.hh"

namespace msc {

struct ExperimentConfig
{
    AcceleratorConfig accel;
    GpuModelParams gpu;
    SolverConfig solver{1e-8, 2500};
    /** SolverKind lives in solver/solver.hh; Auto = CG for SPD
     *  entries, BiCG-STAB otherwise (the paper's prescription). */
    SolverKind solverKind = SolverKind::Auto;
    int gmresRestart = 30;
    /** Experiment-level RNG seed: NoisyCsrOperator, FaultInjector,
     *  and the Monte Carlo benches all derive their streams from
     *  this one value, so runs are reproducible from the config. */
    std::uint64_t seed = 1;
    /** Device model for noisy-arithmetic experiments (Fig. 12/13). */
    CellParams cell;
    /** Fault-injection campaign (src/fault); default = fault-free. */
    FaultCampaign fault;
    /** Worker threads for the parallel execution engine
     *  (util/threadpool.hh). 0 = keep the current global setting
     *  (MSC_THREADS or hardware concurrency). */
    unsigned threads = 0;
    /** Observability switches (util/telemetry.hh). Unset = leave
     *  the process state (MSC_TELEMETRY or a prior configure())
     *  untouched. */
    std::optional<telemetry::Config> telemetry;
    /** Artifact I/O knobs (sparse/binio.hh). */
    struct Io
    {
        /** Explicit artifact output path for tools/msc_pack; empty
         *  = the matrix path's ".mscbin" sidecar. */
        std::string matrixArtifact;
        /** When false, loaders ignore sidecar artifacts and always
         *  parse the Matrix Market text (differential-testing
         *  escape hatch). */
        bool preferArtifacts = true;
    } io;
};

struct ExperimentResult
{
    std::string name;
    bool usedCg = false;
    MatrixStats stats;
    BlockingStats blocking;
    SolverResult solve;
    bool gpuFallback = false;
    int banksUsed = 0;

    double accelTime = 0.0;   //!< seconds, includes setup
    double accelEnergy = 0.0; //!< joules
    double gpuTime = 0.0;
    double gpuEnergy = 0.0;

    double programTime = 0.0;
    double preprocessTime = 0.0;

    double
    speedup() const
    {
        return accelTime > 0.0 ? gpuTime / accelTime : 0.0;
    }

    double
    energyRatio() const
    {
        return accelEnergy > 0.0 ? gpuEnergy / accelEnergy : 0.0;
    }

    /** Setup overhead as a fraction of total accelerator time
     *  (Figure 10). */
    double
    setupOverhead() const
    {
        return accelTime > 0.0
            ? (programTime + preprocessTime) / accelTime
            : 0.0;
    }
};

/** Run one suite entry end to end. */
ExperimentResult runExperiment(const SuiteEntry &entry,
                               const ExperimentConfig &cfg = {});

/** Run a caller-provided matrix end to end. */
ExperimentResult runExperiment(const std::string &name, const Csr &m,
                               bool spd,
                               const ExperimentConfig &cfg = {});

/**
 * Run every suite entry (sparse/suite.hh) and return the results in
 * suite order. Matrices are fanned out across the global thread
 * pool -- each experiment is independent -- while per-experiment
 * internals run sequentially (nested parallel sections execute
 * inline). Applies cfg.threads to the global pool first when
 * nonzero.
 */
std::vector<ExperimentResult>
runSuiteExperiments(const ExperimentConfig &cfg = {});

/** Geometric mean helper for the summary rows. */
double geometricMean(const std::vector<double> &values);

} // namespace msc

#endif // MSC_CORE_EXPERIMENT_HH
