/**
 * @file
 * Umbrella header: the public API of mscsim.
 *
 * #include "core/msc.hh" pulls in the full stack: sparse containers
 * and generators, the fixed-point/bit-slice machinery, the cluster
 * and accelerator models, the GPU baseline, the Krylov solvers, and
 * the experiment driver.
 */

#ifndef MSC_CORE_MSC_HH
#define MSC_CORE_MSC_HH

#include "accel/accel.hh"
#include "accel/cluster_operator.hh"
#include "accel/estimator.hh"
#include "ancode/ancode.hh"
#include "bank/bank.hh"
#include "blocking/blocking.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"
#include "cluster/schedule.hh"
#include "core/config.hh"
#include "core/experiment.hh"
#include "core/multi_accel.hh"
#include "device/cell.hh"
#include "device/noisy.hh"
#include "fixedpoint/align.hh"
#include "fp/float64.hh"
#include "gpu/gpu.hh"
#include "sim/event_queue.hh"
#include "sim/spmv_sim.hh"
#include "solver/precond.hh"
#include "solver/solver.hh"
#include "solver/stationary.hh"
#include "sparse/csr.hh"
#include "sparse/gen.hh"
#include "sparse/matrix_market.hh"
#include "sparse/reorder.hh"
#include "sparse/stats.hh"
#include "sparse/suite.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"
#include "wideint/wideint.hh"
#include "xbar/crossbar.hh"
#include "xbar/model.hh"

#endif // MSC_CORE_MSC_HH
