#include "fp/float64.hh"

#include <bit>
#include <limits>

#include "util/logging.hh"

namespace msc {

Fp64Parts
decompose(double v)
{
    const auto bits = std::bit_cast<std::uint64_t>(v);
    Fp64Parts p;
    p.sign = (bits >> 63) & 1;
    const unsigned expField = static_cast<unsigned>((bits >> 52) & 0x7ff);
    const std::uint64_t frac = bits & ((std::uint64_t{1} << 52) - 1);

    if (expField == 0x7ff) {
        p.inf = (frac == 0);
        p.nan = (frac != 0);
        return p;
    }
    if (expField == 0) {
        // Subnormal (or zero): no implicit leading 1.
        p.mant = frac;
        p.exp = -1022;
        return p;
    }
    p.mant = frac | (std::uint64_t{1} << 52);
    p.exp = static_cast<int>(expField) - 1023;
    return p;
}

double
compose(const Fp64Parts &parts)
{
    if (parts.nan)
        return std::numeric_limits<double>::quiet_NaN();
    if (parts.inf) {
        return parts.sign ? -std::numeric_limits<double>::infinity()
                          : std::numeric_limits<double>::infinity();
    }
    if (parts.mant == 0)
        return parts.sign ? -0.0 : 0.0;

    std::uint64_t mant = parts.mant;
    int exp = parts.exp;
    // Canonicalize: callers may pass denormalized mantissas.
    while (mant >= (std::uint64_t{1} << 53)) {
        if (mant & 1)
            panic("compose: mantissa wider than 53 significant bits");
        mant >>= 1;
        ++exp;
    }
    while (mant < (std::uint64_t{1} << 52) && exp > -1022) {
        mant <<= 1;
        --exp;
    }

    if (exp > 1023)
        panic("compose: exponent out of range: ", exp);

    std::uint64_t bits = parts.sign ? (std::uint64_t{1} << 63) : 0;
    if (mant < (std::uint64_t{1} << 52)) {
        // Subnormal: exponent field zero.
        bits |= mant;
    } else {
        bits |= (static_cast<std::uint64_t>(exp + 1023) << 52);
        bits |= mant & ((std::uint64_t{1} << 52) - 1);
    }
    return std::bit_cast<double>(bits);
}

namespace detail {

double
overflowResult(bool sign, RoundingMode mode)
{
    const double inf = std::numeric_limits<double>::infinity();
    const double maxf = std::numeric_limits<double>::max();
    switch (mode) {
      case RoundingMode::NearestEven:
        return sign ? -inf : inf;
      case RoundingMode::TowardZero:
        return sign ? -maxf : maxf;
      case RoundingMode::TowardPosInf:
        return sign ? -maxf : inf;
      case RoundingMode::TowardNegInf:
        return sign ? -inf : maxf;
    }
    panic("overflowResult: bad rounding mode");
}

std::uint64_t
roundSignificand(std::uint64_t head, bool roundBit, bool sticky,
                 bool sign, RoundingMode mode)
{
    bool inc = false;
    switch (mode) {
      case RoundingMode::NearestEven:
        inc = roundBit && (sticky || (head & 1));
        break;
      case RoundingMode::TowardZero:
        inc = false;
        break;
      case RoundingMode::TowardPosInf:
        inc = !sign && (roundBit || sticky);
        break;
      case RoundingMode::TowardNegInf:
        inc = sign && (roundBit || sticky);
        break;
    }
    return head + (inc ? 1 : 0);
}

} // namespace detail

double
exactDot(const double *a, const double *x, std::size_t n,
         RoundingMode mode, unsigned mantissaBits)
{
    // A fixed global scale wide enough for any finite double product:
    // products range over 2^-2148 .. 2^2048 with 106-bit mantissas.
    constexpr int fixedScale = -2200;
    using Acc = WideUInt<68>; // 4352 bits

    Acc pos, neg;
    for (std::size_t i = 0; i < n; ++i) {
        const Fp64Parts pa = decompose(a[i]);
        const Fp64Parts px = decompose(x[i]);
        if (!pa.isFinite() || !px.isFinite())
            fatal("exactDot: non-finite input at index ", i);
        if (pa.mant == 0 || px.mant == 0)
            continue;
        const U256 prod =
            U128(pa.mant).mulWide(U128(px.mant)); // <= 106 bits
        const int scale = (pa.exp - 52) + (px.exp - 52);
        const unsigned shift =
            static_cast<unsigned>(scale - fixedScale);
        Acc &acc = (pa.sign != px.sign) ? neg : pos;
        acc.addShifted(Acc::from(prod), shift);
    }

    if (pos >= neg) {
        return fixedToDouble(false, pos - neg, fixedScale, mode,
                             mantissaBits);
    }
    return fixedToDouble(true, neg - pos, fixedScale, mode,
                         mantissaBits);
}

} // namespace msc
