/**
 * @file
 * IEEE-754 double precision decomposition and exact recomposition.
 *
 * The accelerator converts doubles into sign/exponent/mantissa triples
 * before aligning them into block-local fixed point (paper Section
 * IV-A), and converts wide fixed-point dot products back into IEEE-754
 * with a configurable rounding mode (Section IV-D). Both directions
 * are implemented here exactly, including subnormals, overflow to
 * infinity, and underflow.
 */

#ifndef MSC_FP_FLOAT64_HH
#define MSC_FP_FLOAT64_HH

#include <cmath>
#include <cstdint>

#include "wideint/wideint.hh"

namespace msc {

/** IEEE-754 rounding modes supported by the accelerator. */
enum class RoundingMode
{
    /**
     * Truncation of the biased running sum; the accelerator's native
     * mode (biasing makes truncation round toward -inf, IV-D).
     */
    TowardNegInf,
    TowardPosInf,
    TowardZero,
    /** Round to nearest, ties to even; needs 3 extra settled bits. */
    NearestEven,
};

/**
 * A decomposed double: value = (-1)^sign * mant * 2^(exp - 52).
 *
 * Normal numbers have mant in [2^52, 2^53); subnormals have smaller
 * mantissas with exp pinned at -1022. Zero is mant == 0.
 */
struct Fp64Parts
{
    bool sign = false;
    int exp = 0;            //!< unbiased exponent of the implicit-1 bit
    std::uint64_t mant = 0; //!< up to 53 significant bits
    bool inf = false;
    bool nan = false;

    bool isZero() const { return !inf && !nan && mant == 0; }
    bool isFinite() const { return !inf && !nan; }
};

/** Split a double into sign / exponent / mantissa. */
Fp64Parts decompose(double v);

/** Reassemble parts produced by decompose(); exact inverse. */
double compose(const Fp64Parts &parts);

namespace detail {

/** Saturated result on exponent overflow, honoring the rounding mode. */
double overflowResult(bool sign, RoundingMode mode);

/**
 * Round an exact integer significand.
 *
 * @param head      the kept bits (< 2^53)
 * @param roundBit  first dropped bit
 * @param sticky    OR of all lower dropped bits
 * @return head, possibly incremented per the rounding mode
 */
std::uint64_t roundSignificand(std::uint64_t head, bool roundBit,
                               bool sticky, bool sign, RoundingMode mode);

} // namespace detail

/**
 * Convert an exact signed fixed-point value into a double.
 *
 * The value is (-1)^sign * mag * 2^scale. This models the final
 * conversion from the accelerator's intermediate floating-point
 * format into IEEE-754: overflow saturates per the rounding mode with
 * the exponent field all 1s, underflow goes through subnormals to
 * zero, and rounding follows @p mode (Section IV-D).
 */
template <unsigned NW>
double
fixedToDouble(bool sign, const WideUInt<NW> &mag, int scale,
              RoundingMode mode = RoundingMode::NearestEven,
              unsigned mantissaBits = 53)
{
    if (mantissaBits == 0 || mantissaBits > 53)
        panic("fixedToDouble: mantissaBits must be in [1, 53]");
    const unsigned len = mag.bitLength();
    if (len == 0)
        return sign ? -0.0 : 0.0;

    // Exponent of the leading bit of the value.
    const int lead = scale + static_cast<int>(len) - 1;
    if (lead > 1023)
        return detail::overflowResult(sign, mode);

    // Precision available at this magnitude: mantissaBits for
    // normals (53 for IEEE double; the accelerator can be architected
    // to arbitrary targets), fewer in the subnormal range.
    int keep = static_cast<int>(mantissaBits);
    if (lead < -1022)
        keep -= (-1022 - lead);

    if (keep <= 0) {
        // The leading bit sits at (keep == 0) or below (keep < 0) the
        // round position of the smallest subnormal; round from zero.
        const bool roundBit = (keep == 0);
        const bool sticky = (keep < 0) || len > 1;
        std::uint64_t head = detail::roundSignificand(
            0, roundBit, sticky, sign, mode);
        double tiny = head ? 0x1.0p-1074 : 0.0;
        return sign ? -tiny : tiny;
    }

    const int drop = static_cast<int>(len) - keep;
    std::uint64_t head;
    bool roundBit = false;
    bool sticky = false;
    if (drop <= 0) {
        head = (WideUInt<NW>(mag) << static_cast<unsigned>(-drop)).low();
    } else {
        head = (mag >> static_cast<unsigned>(drop)).low();
        roundBit = mag.bit(static_cast<unsigned>(drop) - 1);
        if (drop >= 2) {
            // sticky = any set bit strictly below the round bit
            WideUInt<NW> below = mag << (NW * 64 - (drop - 1));
            sticky = !below.isZero();
        }
    }

    head = detail::roundSignificand(head, roundBit, sticky, sign, mode);
    if (head == 0)
        return sign ? -0.0 : 0.0;

    // The head's least significant bit sits at absolute position
    // scale + drop; rounding may have widened the head by one bit
    // (e.g. 0b111 -> 0b1000), which the exponent check below covers.
    const int headLen = 64 - std::countl_zero(head);
    const int resExp = scale + drop + headLen - 1;
    if (resExp > 1023)
        return detail::overflowResult(sign, mode);
    double d = std::ldexp(static_cast<double>(head), scale + drop);
    return sign ? -d : d;
}

/**
 * Reference dot product with a single exact accumulation.
 *
 * Computes round(sum_i a_i * x_i) where the sum is formed with
 * infinite intermediate precision and rounded once at the end. This
 * is what the accelerator computes for one matrix row within a block
 * (the partial result buffer holds the exact running sum), and is the
 * oracle used by the cluster tests. All inputs must be finite.
 */
double exactDot(const double *a, const double *x, std::size_t n,
                RoundingMode mode = RoundingMode::NearestEven,
                unsigned mantissaBits = 53);

} // namespace msc

#endif // MSC_FP_FLOAT64_HH
