#include "check/bignum.hh"

#include "util/logging.hh"

namespace msc::check {

void
BigNat::trim()
{
    while (!limbs.empty() && limbs.back() == 0)
        limbs.pop_back();
}

BigNat
BigNat::fromU64(std::uint64_t v)
{
    BigNat r;
    if (v) {
        r.limbs.push_back(static_cast<std::uint32_t>(v));
        if (v >> 32)
            r.limbs.push_back(static_cast<std::uint32_t>(v >> 32));
    }
    return r;
}

BigNat
BigNat::fromWords(const std::uint64_t *words, unsigned n)
{
    BigNat r;
    r.limbs.reserve(static_cast<std::size_t>(n) * 2);
    for (unsigned i = 0; i < n; ++i) {
        r.limbs.push_back(static_cast<std::uint32_t>(words[i]));
        r.limbs.push_back(static_cast<std::uint32_t>(words[i] >> 32));
    }
    r.trim();
    return r;
}

unsigned
BigNat::bitLength() const
{
    if (limbs.empty())
        return 0;
    std::uint32_t top = limbs.back();
    unsigned bits = 0;
    while (top) {
        ++bits;
        top >>= 1;
    }
    return static_cast<unsigned>(limbs.size() - 1) * 32 + bits;
}

bool
BigNat::bit(unsigned pos) const
{
    const unsigned limb = pos / 32;
    if (limb >= limbs.size())
        return false;
    return (limbs[limb] >> (pos % 32)) & 1;
}

unsigned
BigNat::popcount() const
{
    unsigned n = 0;
    for (std::uint32_t l : limbs) {
        while (l) {
            n += l & 1;
            l >>= 1;
        }
    }
    return n;
}

unsigned
BigNat::countTrailingZeros() const
{
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        if (limbs[i] == 0)
            continue;
        unsigned off = 0;
        std::uint32_t l = limbs[i];
        while (!(l & 1)) {
            ++off;
            l >>= 1;
        }
        return static_cast<unsigned>(i) * 32 + off;
    }
    return 0;
}

std::uint64_t
BigNat::word64(unsigned i) const
{
    const std::size_t lo = static_cast<std::size_t>(i) * 2;
    std::uint64_t v = 0;
    if (lo < limbs.size())
        v = limbs[lo];
    if (lo + 1 < limbs.size())
        v |= static_cast<std::uint64_t>(limbs[lo + 1]) << 32;
    return v;
}

BigNat
BigNat::add(const BigNat &o) const
{
    BigNat r;
    const std::size_t n = std::max(limbs.size(), o.limbs.size());
    r.limbs.reserve(n + 1);
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t s = carry;
        if (i < limbs.size())
            s += limbs[i];
        if (i < o.limbs.size())
            s += o.limbs[i];
        r.limbs.push_back(static_cast<std::uint32_t>(s));
        carry = s >> 32;
    }
    if (carry)
        r.limbs.push_back(static_cast<std::uint32_t>(carry));
    return r;
}

BigNat
BigNat::sub(const BigNat &o) const
{
    if (compare(o) < 0)
        panic("BigNat::sub: would go negative");
    BigNat r;
    r.limbs.reserve(limbs.size());
    std::int64_t borrow = 0;
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        std::int64_t d = static_cast<std::int64_t>(limbs[i]) - borrow;
        if (i < o.limbs.size())
            d -= o.limbs[i];
        if (d < 0) {
            d += std::int64_t{1} << 32;
            borrow = 1;
        } else {
            borrow = 0;
        }
        r.limbs.push_back(static_cast<std::uint32_t>(d));
    }
    r.trim();
    return r;
}

BigNat
BigNat::shl(unsigned s) const
{
    if (limbs.empty())
        return {};
    const unsigned limbShift = s / 32;
    const unsigned bitShift = s % 32;
    BigNat r;
    r.limbs.assign(limbs.size() + limbShift + 1, 0);
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(limbs[i]) << bitShift;
        r.limbs[i + limbShift] |= static_cast<std::uint32_t>(v);
        r.limbs[i + limbShift + 1] |=
            static_cast<std::uint32_t>(v >> 32);
    }
    r.trim();
    return r;
}

BigNat
BigNat::shr(unsigned s) const
{
    const unsigned limbShift = s / 32;
    const unsigned bitShift = s % 32;
    if (limbShift >= limbs.size())
        return {};
    BigNat r;
    r.limbs.assign(limbs.size() - limbShift, 0);
    for (std::size_t i = 0; i < r.limbs.size(); ++i) {
        std::uint64_t v = limbs[i + limbShift] >> bitShift;
        if (bitShift && i + limbShift + 1 < limbs.size())
            v |= static_cast<std::uint64_t>(limbs[i + limbShift + 1])
                 << (32 - bitShift);
        r.limbs[i] = static_cast<std::uint32_t>(v);
    }
    r.trim();
    return r;
}

BigNat
BigNat::mul(const BigNat &o) const
{
    if (limbs.empty() || o.limbs.empty())
        return {};
    BigNat r;
    r.limbs.assign(limbs.size() + o.limbs.size(), 0);
    for (std::size_t i = 0; i < limbs.size(); ++i) {
        std::uint64_t carry = 0;
        for (std::size_t j = 0; j < o.limbs.size(); ++j) {
            std::uint64_t cur = r.limbs[i + j] + carry +
                static_cast<std::uint64_t>(limbs[i]) * o.limbs[j];
            r.limbs[i + j] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
        }
        std::size_t k = i + o.limbs.size();
        while (carry) {
            std::uint64_t cur = r.limbs[k] + carry;
            r.limbs[k] = static_cast<std::uint32_t>(cur);
            carry = cur >> 32;
            ++k;
        }
    }
    r.trim();
    return r;
}

void
BigNat::divmod(const BigNat &d, BigNat &q, BigNat &r) const
{
    if (d.isZero())
        panic("BigNat::divmod by zero");
    q = BigNat{};
    r = BigNat{};
    const unsigned len = bitLength();
    // Binary long division, most significant bit first.
    for (unsigned pos = len; pos-- > 0;) {
        r = r.shl(1);
        if (bit(pos)) {
            if (r.limbs.empty())
                r.limbs.push_back(1);
            else
                r.limbs[0] |= 1;
        }
        if (r.compare(d) >= 0) {
            r = r.sub(d);
            const unsigned limb = pos / 32;
            if (q.limbs.size() <= limb)
                q.limbs.resize(limb + 1, 0);
            q.limbs[limb] |= std::uint32_t{1} << (pos % 32);
        }
    }
    q.trim();
    r.trim();
}

BigNat
BigNat::truncate(unsigned bits) const
{
    BigNat r = *this;
    const std::size_t fullLimbs = bits / 32;
    if (r.limbs.size() > fullLimbs) {
        r.limbs.resize(fullLimbs + 1);
        const unsigned rem = bits % 32;
        r.limbs.back() &= rem
            ? (std::uint32_t{1} << rem) - 1 : 0;
    }
    r.trim();
    return r;
}

int
BigNat::compare(const BigNat &o) const
{
    if (limbs.size() != o.limbs.size())
        return limbs.size() < o.limbs.size() ? -1 : 1;
    for (std::size_t i = limbs.size(); i-- > 0;) {
        if (limbs[i] != o.limbs[i])
            return limbs[i] < o.limbs[i] ? -1 : 1;
    }
    return 0;
}

std::string
BigNat::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    if (limbs.empty())
        return "0x0";
    std::string s;
    bool started = false;
    for (std::size_t i = limbs.size(); i-- > 0;) {
        for (int nib = 7; nib >= 0; --nib) {
            const unsigned d = (limbs[i] >> (nib * 4)) & 0xf;
            if (d)
                started = true;
            if (started)
                s.push_back(digits[d]);
        }
    }
    return "0x" + s;
}

} // namespace msc::check
