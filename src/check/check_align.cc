/**
 * @file
 * Differential checks: block alignment and bias encoding vs exact
 * IEEE-754 decomposition.
 *
 * alignValues() claims a lossless mapping of a value set onto a
 * common fixed-point scale (paper Section IV-A); biasEncode() claims
 * an invertible nonnegative encoding (Section IV-C). Both are
 * validated against the doubles they came from, bit for bit, with
 * value sets spanning normals, subnormals, zeros, and the full
 * 64-exponent alignment window.
 */

#include <bit>
#include <cmath>

#include "check/check.hh"
#include "fixedpoint/align.hh"
#include "fp/float64.hh"

namespace msc::check {

namespace {

/** A random double whose leading bit sits at exponent @p lead. */
double
doubleWithLead(Rng &rng, int lead)
{
    // Random 53-bit mantissa with the implicit bit forced.
    std::uint64_t mant =
        (rng.next() & ((std::uint64_t{1} << 52) - 1)) |
        (std::uint64_t{1} << 52);
    double v = std::ldexp(static_cast<double>(mant), lead - 52);
    if (rng.chance(0.5))
        v = -v;
    return v;
}

void
iterate(Context &ctx)
{
    Rng &rng = ctx.rng();
    const std::size_t n = rng.below(48) + 1;
    // Exponent window: at most maxExpRange wide, placed anywhere in
    // the normal range; one iteration in ten dives into the
    // subnormal floor with a narrower window (subnormal rounding can
    // nudge a leading bit up one exponent, so leave headroom).
    int span, base;
    if (rng.chance(0.1)) {
        span = static_cast<int>(rng.below(21));
        base = static_cast<int>(rng.range(-1073, -1050 - span));
    } else {
        span = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(fxp::maxExpRange) + 1));
        base = static_cast<int>(rng.range(-1010, 1000 - span));
    }

    std::vector<double> values(n, 0.0);
    for (double &v : values) {
        if (rng.chance(0.15))
            continue; // keep a zero
        const int lead = base + static_cast<int>(
            rng.below(static_cast<std::uint64_t>(span) + 1));
        v = doubleWithLead(rng, lead);
    }

    // --- exponent-range oracle -----------------------------------
    const ExpRange range = expRangeOf(values);
    int minLead = 0, maxLead = 0;
    bool any = false;
    for (double v : values) {
        if (v == 0.0)
            continue;
        const int lead = std::ilogb(v);
        if (!any) {
            minLead = maxLead = lead;
            any = true;
        } else {
            minLead = std::min(minLead, lead);
            maxLead = std::max(maxLead, lead);
        }
    }
    ctx.expect(range.anyNonZero == any, "anyNonZero mismatch");
    if (any) {
        ctx.expect(range.minExp == minLead && range.maxExp == maxLead,
                   "exp range mismatch: [", range.minExp, ", ",
                   range.maxExp, "] vs ilogb [", minLead, ", ",
                   maxLead, "]");
    }

    // --- alignment is lossless -----------------------------------
    const AlignedSet aligned = alignValues(values);
    ctx.expect(aligned.size() == n, "aligned size mismatch");
    ctx.expect(aligned.magBits <= fxp::maxMagBits,
               "operand width ", aligned.magBits, " over budget");
    for (std::size_t i = 0; i < n; ++i) {
        const double back = aligned.valueOf(i);
        ctx.expect(std::bit_cast<std::uint64_t>(back) ==
                           std::bit_cast<std::uint64_t>(values[i]) ||
                       (back == 0.0 && values[i] == 0.0),
                   "alignment not exact at ", i, ": ", values[i],
                   " -> ", back);
        // Independent reconstruction: mag * 2^scale via ldexp over
        // the magnitude words (exact because mag has < 118 bits and
        // each word contributes an exact power-of-two multiple).
        const double mag =
            std::ldexp(static_cast<double>(aligned.mag[i].word(1)), 64) +
            static_cast<double>(aligned.mag[i].word(0));
        if (aligned.mag[i].bitLength() <= 53) {
            const double recon = std::ldexp(
                aligned.neg[i] ? -mag : mag, aligned.scale);
            ctx.expect(recon == values[i],
                       "ldexp reconstruction mismatch at ", i);
        }
    }

    // --- bit slices reassemble the magnitudes --------------------
    if (n > 0 && aligned.magBits > 0) {
        const unsigned k =
            static_cast<unsigned>(rng.below(aligned.magBits));
        const BitVec slice = aligned.bitSlice(k);
        for (std::size_t i = 0; i < n; ++i) {
            ctx.expect(slice.get(i) == aligned.mag[i].bit(k),
                       "bitSlice mismatch at (", i, ", ", k, ")");
        }
    }

    // --- bias encoding round-trips -------------------------------
    const BiasedSet biased = biasEncode(aligned);
    ctx.expect(biased.biasBits >= std::max(aligned.magBits, 1u),
               "bias narrower than magnitudes");
    ctx.expect(biased.width() == biased.biasBits + 1,
               "stored width must be biasBits + 1");
    for (std::size_t i = 0; i < n; ++i) {
        U128 mag;
        bool neg = false;
        biasDecode(biased, i, mag, neg);
        ctx.expect(mag == aligned.mag[i],
                   "bias decode magnitude mismatch at ", i);
        const bool negExpected =
            aligned.neg[i] != 0 && !aligned.mag[i].isZero();
        ctx.expect(neg == negExpected,
                   "bias decode sign mismatch at ", i);
        // Every stored operand is nonnegative and fits width().
        ctx.expect(biased.stored[i].bitLength() <= biased.width(),
                   "stored operand wider than declared at ", i);
        // Zeros store exactly the bias pattern.
        if (values[i] == 0.0) {
            ctx.expect(biased.stored[i] == biased.bias(),
                       "zero does not store the bias at ", i);
        }
    }
}

} // namespace

void
addAlignChecks(std::vector<Module> &out)
{
    out.push_back({"align", iterate});
}

} // namespace msc::check
