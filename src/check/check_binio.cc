/**
 * @file
 * Differential checks of the binary artifact pipeline
 * (sparse/binio + blocking/stream) against the in-core path.
 *
 * Three oracles per iteration, on a random matrix and blocking
 * configuration:
 *
 *   1. planBlocksStreaming == planBlocks, bit for bit (the
 *      strip-locality claim in blocking/stream.hh);
 *   2. writeArtifact -> map round-trips the CSR arrays, the
 *      content keys, and the plan bitwise;
 *   3. a corrupted artifact (random byte flip or truncation) either
 *      fails with a structured BinioError or still maps to the
 *      bit-identical matrix (header bytes outside the checksummed
 *      payload, e.g. padding, may flip benignly) -- never garbage,
 *      never UB.
 *
 * Scratch files live under /tmp, keyed by pid + iteration so
 * concurrent sweeps do not collide; messages never embed the path,
 * keeping reports byte-stable.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "blocking/blocking.hh"
#include "blocking/stream.hh"
#include "check/check.hh"
#include "sparse/binio.hh"
#include "sparse/csr.hh"

#if __has_include(<unistd.h>)
#include <unistd.h>
#endif

namespace msc::check {

namespace {

std::string
scratchPath(std::uint64_t iter)
{
#if __has_include(<unistd.h>)
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    return "/tmp/msc_check_binio_" + std::to_string(pid) + "_" +
           std::to_string(iter) + ".mscbin";
}

bool
sameCsr(const Csr &a, const Csr &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.nnz() != b.nnz())
        return false;
    const auto arp = a.rowPtr(), brp = b.rowPtr();
    const auto aci = a.colIndex(), bci = b.colIndex();
    const auto av = a.values(), bv = b.values();
    return std::memcmp(arp.data(), brp.data(),
                       arp.size_bytes()) == 0 &&
           (a.nnz() == 0 ||
            (std::memcmp(aci.data(), bci.data(),
                         aci.size_bytes()) == 0 &&
             std::memcmp(av.data(), bv.data(),
                         av.size_bytes()) == 0));
}

bool
samePlan(const BlockPlan &a, const BlockPlan &b)
{
    if (a.rows != b.rows || a.cols != b.cols ||
        a.blocks.size() != b.blocks.size() ||
        a.stats.totalNnz != b.stats.totalNnz ||
        a.stats.blockedNnz != b.stats.blockedNnz ||
        a.stats.unblockedNnz != b.stats.unblockedNnz ||
        a.stats.expRangeEvictions != b.stats.expRangeEvictions ||
        a.stats.blocksPerSize != b.stats.blocksPerSize)
        return false;
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
        const MatrixBlock &x = a.blocks[i];
        const MatrixBlock &y = b.blocks[i];
        if (x.rowOrigin != y.rowOrigin ||
            x.colOrigin != y.colOrigin || x.size != y.size ||
            x.elems.size() != y.elems.size())
            return false;
        if (!x.elems.empty() &&
            std::memcmp(x.elems.data(), y.elems.data(),
                        x.elems.size() * sizeof(Triplet)) != 0)
            return false;
    }
    return sameCsr(a.unblocked, b.unblocked);
}

void
iterate(Context &ctx)
{
    Rng &rng = ctx.rng();

    // Random matrix: dimensions a few multiples of the block sizes,
    // plus ragged remainders; duplicate coordinates one iteration in
    // four (accumulation order is part of the bitwise contract).
    const std::int32_t rows = static_cast<std::int32_t>(
        rng.range(1, 96));
    const std::int32_t cols = static_cast<std::int32_t>(
        rng.range(1, 96));
    const std::size_t wanted = rng.below(
        static_cast<std::uint64_t>(rows) * cols / 2 + 1);
    Coo coo{rows, cols, {}};
    for (std::size_t k = 0; k < wanted; ++k) {
        coo.add(static_cast<std::int32_t>(rng.below(rows)),
                static_cast<std::int32_t>(rng.below(cols)),
                rng.uniform(-8.0, 8.0));
    }
    if (!coo.entries.empty() && rng.chance(0.25)) {
        const std::size_t dups = rng.below(8) + 1;
        for (std::size_t k = 0; k < dups; ++k) {
            const Triplet t =
                coo.entries[rng.below(coo.entries.size())];
            coo.add(t.row, t.col, rng.uniform(-8.0, 8.0));
        }
    }
    const Csr m = Csr::fromCoo(coo);

    BlockingConfig cfg;
    switch (rng.below(3)) {
      case 0:
        cfg.sizes = {8, 4};
        break;
      case 1:
        cfg.sizes = {16, 8};
        break;
      default:
        cfg.sizes = {16, 8, 4};
        break;
    }
    cfg.densityFactor = rng.chance(0.5) ? 0.5 : 0.25;

    // --- streaming preprocessor vs in-core oracle ----------------
    const BlockPlan incore = planBlocks(m, cfg);
    const EntrySource source = [&](const EntrySink &sink) {
        for (const Triplet &t : coo.entries)
            sink(t.row, t.col, t.val);
    };
    const std::int32_t lcmStrip = stripHeightFor(cfg);
    const std::int32_t strip =
        lcmStrip * static_cast<std::int32_t>(rng.range(1, 3));
    const BlockPlan streamed =
        planBlocksStreaming(rows, cols, source, cfg, strip);
    ctx.expect(samePlan(streamed, incore),
               "streaming plan differs from planBlocks (", rows,
               "x", cols, ", nnz ", m.nnz(), ", strip ", strip, ")");

    // --- artifact round-trip -------------------------------------
    const std::string path = scratchPath(ctx.iter());
    const bool withPlan = rng.chance(0.8);
    writeArtifact(path, m, withPlan ? &incore : nullptr, cfg);
    try {
        const auto art = MappedArtifact::map(path);
        ctx.expect(sameCsr(art->matrixView(), m),
                   "mapped matrix differs from source");
        ctx.expect(art->matrixKey() == csrContentKey(m),
                   "stored matrix key differs from csrContentKey");
        ctx.expect(art->hasPlan() == withPlan,
                   "hasPlan flag round-trip mismatch");
        if (withPlan) {
            ctx.expect(art->blockingKey() == blockingConfigKey(cfg),
                       "stored blocking key mismatch");
            ctx.expect(samePlan(art->decodePlan(), incore),
                       "decoded plan differs from planBlocks");
        }
    } catch (const BinioError &e) {
        ctx.expect(false, "round-trip map failed: ", e.what());
    }

    // --- corruption: structured failure or benign, never garbage --
    std::vector<char> bytes;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        bytes.resize(static_cast<std::size_t>(in.tellg()));
        in.seekg(0);
        in.read(bytes.data(),
                static_cast<std::streamsize>(bytes.size()));
    }
    const bool chop = rng.chance(0.5);
    if (chop) {
        bytes.resize(rng.below(bytes.size()));
    } else {
        const std::size_t at = rng.below(bytes.size());
        bytes[at] = static_cast<char>(
            bytes[at] ^ static_cast<char>(1u << rng.below(8)));
    }
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    try {
        const auto art = MappedArtifact::map(path);
        // Only a flip in alignment padding may map benignly: the
        // checksum covers the header's semantic fields and every
        // section byte, so whatever maps is the same matrix.
        ctx.expect(sameCsr(art->matrixView(), m),
                   "corrupted artifact mapped to different matrix");
        if (art->hasPlan())
            (void)art->decodePlan(); // must not crash
    } catch (const BinioError &) {
        // Structured rejection is the expected outcome.
    }
    std::remove(path.c_str());
}

} // namespace

void
addBinioChecks(std::vector<Module> &out)
{
    out.push_back({"binio", iterate});
}

} // namespace msc::check
