/**
 * @file
 * Differential checks: Accelerator::spmv vs Csr::spmv under an error
 * budget, plus exact power-of-two scale equivariance.
 *
 * The accelerator computes each placed block's partial products with
 * one rounding of the exact block sum (cluster model), then combines
 * partials and CSR leftovers in plain double arithmetic; Csr::spmv
 * accumulates sequentially. Neither is "the" answer, but both must
 * sit within a few units of sequential summation error of the true
 * row sum, so their difference is bounded by
 *
 *     |y_accel[i] - y_csr[i]| <= c * (nnz_i + 2) * eps * sum_j
 *                                 |a_ij x_j|
 *
 * with a small constant c. Scaling (A, x) by 2^k commutes exactly
 * with every rounding step, so that transform is checked bitwise.
 */

#include <cmath>
#include <memory>
#include <vector>

#include "accel/accel.hh"
#include "check/check.hh"
#include "sparse/gen.hh"

namespace msc::check {

namespace {

/** Iterations sharing one prepared accelerator (prepare() is the
 *  expensive step; the sweep amortizes it across a group). */
constexpr std::uint64_t groupSize = 32;

struct Fixture
{
    Csr mat;
    std::unique_ptr<Accelerator> accel;
    std::uint64_t group = ~std::uint64_t{0};
};

void
iterate(Context &ctx, Fixture &fx)
{
    Rng &rng = ctx.rng();

    if (ctx.iter() / groupSize != fx.group) {
        // First iteration of a group: derive a fresh system from this
        // iteration's seed (deterministic in (run seed, iteration)).
        fx.group = ctx.iter() / groupSize;
        TiledParams p;
        p.rows = static_cast<std::int32_t>(64 + rng.below(97));
        p.tile = static_cast<std::int32_t>(8 + 4 * rng.below(3));
        p.tileDensity = rng.uniform(0.3, 0.7);
        p.scatterPerRow = rng.uniform(0.0, 2.0);
        p.symmetricPattern = rng.chance(0.5);
        // genTiled requires spd => symmetricPattern.
        p.spd = p.symmetricPattern && rng.chance(0.3);
        p.values.tileExpSigma = rng.uniform(0.5, 6.0);
        p.values.elemExpSigma = rng.uniform(0.5, 2.0);
        // Occasional exponent outliers force dissolution into the
        // local-processor CSR, covering the hybrid path.
        p.values.outlierProb = rng.chance(0.5) ? 0.02 : 0.0;
        p.seed = rng.next();
        fx.mat = genTiled(p);
        fx.accel = std::make_unique<Accelerator>();
        fx.accel->prepare(fx.mat);
    }

    const auto n = static_cast<std::size_t>(fx.mat.rows());
    std::vector<double> x(n);
    for (auto &v : x) {
        if (rng.chance(0.1)) {
            v = 0.0;
            continue;
        }
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(-8, 8))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }

    std::vector<double> ya(n), yc(n);
    fx.accel->spmv(x, ya);
    fx.mat.spmv(x, yc);

    constexpr double eps = 0x1.0p-52;
    for (std::size_t i = 0; i < n; ++i) {
        const auto row = static_cast<std::int32_t>(i);
        const auto cols = fx.mat.rowCols(row);
        const auto vals = fx.mat.rowVals(row);
        double absSum = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k)
            absSum += std::fabs(
                vals[k] * x[static_cast<std::size_t>(cols[k])]);
        const double budget =
            4.0 * (static_cast<double>(cols.size()) + 2.0) * eps *
            absSum;
        if (!ctx.expect(std::fabs(ya[i] - yc[i]) <= budget,
                        "row ", i, ": accel ", ya[i], " vs csr ",
                        yc[i], " exceeds budget ", budget))
            break;
    }

    // Zero in, zero out -- no block may leak a rounding artifact.
    std::vector<double> zero(n, 0.0), yz(n, 1.0);
    fx.accel->spmv(zero, yz);
    for (std::size_t i = 0; i < n; ++i) {
        if (!ctx.expect(yz[i] == 0.0, "spmv(0) row ", i,
                        " is nonzero: ", yz[i]))
            break;
    }

    // Power-of-two scaling of x commutes bitwise with the pipeline:
    // alignment shifts the scale, every rounding keeps its relative
    // position, and the final double combine scales exactly.
    const int k = static_cast<int>(rng.range(-2, 2));
    std::vector<double> xs(n), ys(n);
    for (std::size_t i = 0; i < n; ++i)
        xs[i] = std::ldexp(x[i], k);
    fx.accel->spmv(xs, ys);
    for (std::size_t i = 0; i < n; ++i) {
        if (!ctx.expect(ys[i] == std::ldexp(ya[i], k),
                        "2^", k, " scaling not exact at row ", i,
                        ": ", ys[i], " vs ", std::ldexp(ya[i], k)))
            break;
    }
}

} // namespace

void
addAccelChecks(std::vector<Module> &out)
{
    auto fx = std::make_shared<Fixture>();
    out.push_back({"accel", [fx](Context &ctx) { iterate(ctx, *fx); }});
}

} // namespace msc::check
