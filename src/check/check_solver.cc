/**
 * @file
 * Metamorphic checks on full solver runs and the SpMV kernels.
 *
 * No oracle knows the "right" iterate sequence of a Krylov solve, but
 * invariant-preserving transforms do pin it down:
 *
 *  - power-of-two scaling: solving (2^k A) x = (2^k b) multiplies
 *    every intermediate by an exact power of two, so CG and GMRES
 *    produce bitwise-identical iterates, iteration counts, and
 *    relative residuals;
 *  - symmetric permutation: P A P^T with P b relabels the unknowns;
 *    the permuted solve must converge to the relabeled solution
 *    (compared through residuals, since accumulation order changes);
 *  - transpose consistency: A.transpose().spmv(w) accumulates the
 *    same products in the same order as A.spmvTranspose(w), hence
 *    bitwise equality; and the bilinear identity w^T(Ax) = (A^T w)^T x
 *    holds within sequential-summation error. A skew-symmetric matrix
 *    additionally satisfies spmvTranspose(x) == -spmv(x) exactly.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include "check/check.hh"
#include "solver/solver.hh"
#include "sparse/gen.hh"

namespace msc::check {

namespace {

Csr
spdMatrix(Rng &rng, std::int32_t n)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.diagDominance = 0.05;
    p.seed = rng.next();
    return genTiled(p);
}

Csr
generalMatrix(Rng &rng, std::int32_t n)
{
    TiledParams p;
    p.rows = n;
    p.tile = 16;
    p.tileDensity = 0.3;
    p.scatterPerRow = 1.0;
    p.symmetricPattern = false;
    p.diagDominance = 0.2;
    p.seed = rng.next();
    return genTiled(p);
}

std::vector<double>
randomRhs(Rng &rng, std::size_t n)
{
    std::vector<double> b(n);
    for (auto &v : b)
        v = rng.uniform(-1.0, 1.0);
    return b;
}

/** Csr with every coefficient multiplied by 2^k (exact). */
Csr
scaled(const Csr &a, int k)
{
    Csr s = a;
    for (double &v : s.values())
        v = std::ldexp(v, k);
    return s;
}

double
trueRelResidual(const Csr &a, std::span<const double> b,
                std::span<const double> x)
{
    std::vector<double> ax(b.size());
    a.spmv(x, ax);
    for (std::size_t i = 0; i < b.size(); ++i)
        ax[i] = b[i] - ax[i];
    return norm2(ax) / norm2(b);
}

/** Solving (2^k A) x = (2^k b) is bitwise the same solve. */
void
checkScaling(Context &ctx, bool useGmres)
{
    Rng &rng = ctx.rng();
    const auto n = static_cast<std::int32_t>(32 + rng.below(33));
    const Csr a = useGmres ? generalMatrix(rng, n) : spdMatrix(rng, n);
    const auto b = randomRhs(rng, static_cast<std::size_t>(n));
    const int k = static_cast<int>(rng.range(-8, 8));
    const Csr a2 = scaled(a, k);
    std::vector<double> b2(b.size());
    for (std::size_t i = 0; i < b.size(); ++i)
        b2[i] = std::ldexp(b[i], k);

    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    cfg.maxIterations = 400;
    const int restart = static_cast<int>(10 + rng.below(21));

    CsrOperator op1(a), op2(a2);
    std::vector<double> x1(b.size(), 0.0), x2(b.size(), 0.0);
    SolverResult r1, r2;
    if (useGmres) {
        r1 = gmres(op1, b, x1, cfg, restart);
        r2 = gmres(op2, b2, x2, cfg, restart);
    } else {
        r1 = conjugateGradient(op1, b, x1, cfg);
        r2 = conjugateGradient(op2, b2, x2, cfg);
    }

    const char *name = useGmres ? "gmres" : "cg";
    ctx.expect(r1.iterations == r2.iterations, name, " 2^", k,
               " scaling changed iterations: ", r1.iterations,
               " vs ", r2.iterations);
    ctx.expect(r1.converged == r2.converged, name, " 2^", k,
               " scaling changed convergence");
    ctx.expect(r1.relResidual == r2.relResidual, name, " 2^", k,
               " scaling changed relResidual: ", r1.relResidual,
               " vs ", r2.relResidual);
    for (std::size_t i = 0; i < b.size(); ++i) {
        if (!ctx.expect(x1[i] == x2[i], name, " 2^", k,
                        " scaling not bitwise at ", i, ": ", x1[i],
                        " vs ", x2[i]))
            break;
    }
}

/** P A P^T with P b is the same system with relabeled unknowns. */
void
checkPermutation(Context &ctx)
{
    Rng &rng = ctx.rng();
    const auto n = static_cast<std::int32_t>(32 + rng.below(33));
    const auto un = static_cast<std::size_t>(n);
    const Csr a = spdMatrix(rng, n);

    std::vector<std::int32_t> perm(un);
    for (std::size_t i = 0; i < un; ++i)
        perm[i] = static_cast<std::int32_t>(i);
    for (std::size_t i = un; i-- > 1;) {
        std::swap(perm[i],
                  perm[static_cast<std::size_t>(rng.below(i + 1))]);
    }

    Coo coo;
    coo.rows = coo.cols = n;
    coo.entries.reserve(a.nnz());
    for (std::int32_t r = 0; r < n; ++r) {
        const auto cols = a.rowCols(r);
        const auto vals = a.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            coo.add(perm[static_cast<std::size_t>(r)],
                    perm[static_cast<std::size_t>(cols[k])], vals[k]);
        }
    }
    const Csr ap = Csr::fromCoo(coo);

    // SpMV level: Ap (P x) must equal P (A x) within row-sum error
    // (the permuted row accumulates the same products in a different
    // order).
    const auto x = randomRhs(rng, un);
    std::vector<double> xp(un);
    for (std::size_t i = 0; i < un; ++i)
        xp[static_cast<std::size_t>(perm[i])] = x[i];
    std::vector<double> y(un), yp(un);
    a.spmv(x, y);
    ap.spmv(xp, yp);
    constexpr double eps = 0x1.0p-52;
    for (std::size_t i = 0; i < un; ++i) {
        const auto r = static_cast<std::int32_t>(i);
        const auto cols = a.rowCols(r);
        const auto vals = a.rowVals(r);
        double absSum = 0.0;
        for (std::size_t k = 0; k < cols.size(); ++k)
            absSum += std::fabs(
                vals[k] * x[static_cast<std::size_t>(cols[k])]);
        const double budget =
            4.0 * (static_cast<double>(cols.size()) + 2.0) * eps *
            absSum;
        const double got = yp[static_cast<std::size_t>(perm[i])];
        if (!ctx.expect(std::fabs(got - y[i]) <= budget,
                        "permuted spmv row ", i, ": ", got, " vs ",
                        y[i], " exceeds budget ", budget))
            break;
    }

    // Solver level: both systems converge, and the permuted solution
    // solves the original system (compared through the true residual;
    // iterate-level comparison would need bitwise-identical dot
    // products, which reordering forfeits).
    const auto b = randomRhs(rng, un);
    std::vector<double> bp(un);
    for (std::size_t i = 0; i < un; ++i)
        bp[static_cast<std::size_t>(perm[i])] = b[i];
    SolverConfig cfg;
    cfg.tolerance = 1e-10;
    cfg.maxIterations = 500;
    CsrOperator op(a), opp(ap);
    std::vector<double> xs(un, 0.0), xps(un, 0.0);
    const SolverResult r1 = conjugateGradient(op, b, xs, cfg);
    const SolverResult r2 = conjugateGradient(opp, bp, xps, cfg);
    ctx.expect(r1.converged, "original CG did not converge");
    ctx.expect(r2.converged, "permuted CG did not converge");
    if (r1.converged && r2.converged) {
        std::vector<double> back(un);
        for (std::size_t i = 0; i < un; ++i)
            back[i] = xps[static_cast<std::size_t>(perm[i])];
        const double res = trueRelResidual(a, b, back);
        ctx.expect(res <= 100.0 * cfg.tolerance,
                   "permuted solution does not solve the original "
                   "system: residual ", res);
    }
}

void
checkTranspose(Context &ctx)
{
    Rng &rng = ctx.rng();
    const auto n = static_cast<std::int32_t>(24 + rng.below(41));
    const auto un = static_cast<std::size_t>(n);
    const Csr a = generalMatrix(rng, n);
    const auto w = randomRhs(rng, un);
    const auto x = randomRhs(rng, un);

    // transpose().spmv and spmvTranspose accumulate the same products
    // in the same (row-major source) order: bitwise equality.
    const Csr at = a.transpose();
    std::vector<double> y1(un), y2(un);
    at.spmv(w, y1);
    a.spmvTranspose(w, y2);
    for (std::size_t i = 0; i < un; ++i) {
        if (!ctx.expect(y1[i] == y2[i],
                        "transpose().spmv vs spmvTranspose differ at ",
                        i, ": ", y1[i], " vs ", y2[i]))
            break;
    }

    // Bilinear identity w^T (A x) == (A^T w)^T x within the
    // sequential-summation error over all products.
    std::vector<double> ax(un);
    a.spmv(x, ax);
    const double lhs = dot(w, ax);
    const double rhs = dot(y2, x);
    double absTotal = 0.0;
    for (std::int32_t r = 0; r < n; ++r) {
        const auto cols = a.rowCols(r);
        const auto vals = a.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            absTotal += std::fabs(
                vals[k] * w[static_cast<std::size_t>(r)] *
                x[static_cast<std::size_t>(cols[k])]);
        }
    }
    constexpr double eps = 0x1.0p-52;
    const double budget =
        8.0 * (static_cast<double>(a.nnz()) +
               static_cast<double>(un) + 4.0) * eps * absTotal;
    ctx.expect(std::fabs(lhs - rhs) <= budget,
               "bilinear identity violated: ", lhs, " vs ", rhs,
               " exceeds budget ", budget);

    // Skew-symmetric matrix: A^T = -A, term by term, so the transpose
    // product is the exact negation.
    Coo skew;
    skew.rows = skew.cols = n;
    for (std::int32_t i = 0; i < n; ++i) {
        for (int t = 0; t < 3; ++t) {
            const auto j = static_cast<std::int32_t>(rng.below(un));
            if (j == i)
                continue;
            const double v = rng.uniform(-2.0, 2.0);
            skew.add(i, j, v);
            skew.add(j, i, -v);
        }
    }
    const Csr sk = Csr::fromCoo(skew);
    std::vector<double> ys(un), yst(un);
    sk.spmv(x, ys);
    sk.spmvTranspose(x, yst);
    for (std::size_t i = 0; i < un; ++i) {
        if (!ctx.expect(yst[i] == -ys[i],
                        "skew spmvTranspose != -spmv at ", i, ": ",
                        yst[i], " vs ", -ys[i]))
            break;
    }
}

void
iterate(Context &ctx)
{
    switch (ctx.rng().below(4)) {
      case 0:
        checkScaling(ctx, /*useGmres=*/false);
        break;
      case 1:
        checkScaling(ctx, /*useGmres=*/true);
        break;
      case 2:
        checkPermutation(ctx);
        break;
      default:
        checkTranspose(ctx);
        break;
    }
}

} // namespace

void
addSolverChecks(std::vector<Module> &out)
{
    out.push_back({"solver", iterate});
}

} // namespace msc::check
