/**
 * @file
 * Minimal schoolbook big natural number, used ONLY as a differential
 * oracle for WideUInt (src/check).
 *
 * Deliberately shares nothing with wideint.hh: 32-bit limbs instead
 * of 64-bit words, dynamically sized instead of fixed width, carries
 * propagated with plain 64-bit arithmetic instead of __int128, and
 * division done by binary long division instead of a per-word
 * short-division ladder. A bug would have to be made twice, in two
 * different shapes, to slip past the differential checks.
 */

#ifndef MSC_CHECK_BIGNUM_HH
#define MSC_CHECK_BIGNUM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace msc::check {

/** Arbitrary-precision natural number, little-endian 32-bit limbs. */
class BigNat
{
  public:
    BigNat() = default;

    static BigNat fromU64(std::uint64_t v);

    /** From little-endian 64-bit words (a WideUInt's storage). */
    static BigNat fromWords(const std::uint64_t *words, unsigned n);

    bool isZero() const { return limbs.empty(); }
    unsigned bitLength() const;
    bool bit(unsigned pos) const;
    unsigned popcount() const;
    /** Index of the lowest set bit; meaningless (0) for zero. */
    unsigned countTrailingZeros() const;

    /** Word @p i of the value seen as little-endian 64-bit words. */
    std::uint64_t word64(unsigned i) const;

    BigNat add(const BigNat &o) const;
    /** this - o; requires this >= o. */
    BigNat sub(const BigNat &o) const;
    BigNat shl(unsigned s) const;
    BigNat shr(unsigned s) const;
    BigNat mul(const BigNat &o) const;
    /** Binary long division: q = this / d, r = this % d. */
    void divmod(const BigNat &d, BigNat &q, BigNat &r) const;

    /** Keep only the low @p bits (mimics fixed-width truncation). */
    BigNat truncate(unsigned bits) const;

    /** -1, 0, +1 as this <=> o. */
    int compare(const BigNat &o) const;

    std::string toHex() const;

  private:
    void trim();

    std::vector<std::uint32_t> limbs; //!< no trailing zero limbs
};

} // namespace msc::check

#endif // MSC_CHECK_BIGNUM_HH
