#include "check/check.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <sstream>

#include "runtime/exec_context.hh"

namespace msc::check {

namespace {

std::uint64_t
splitmix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Escape a string for a JSON literal. */
void
appendEscaped(std::ostringstream &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out << ' ';
            else
                out << c;
        }
    }
}

} // namespace

std::uint64_t
iterationSeed(std::uint64_t seed, const std::string &module,
              std::uint64_t iter)
{
    // FNV-1a over the module name decorrelates modules; splitmix
    // scrambles the (seed, iter) lattice.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : module) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return splitmix(seed ^ splitmix(h ^ (iter * 0x9e3779b97f4a7c15ULL)));
}

std::uint64_t
ulpDistance(double a, double b)
{
    if (a == b)
        return 0;
    if (std::isnan(a) || std::isnan(b))
        return ~std::uint64_t{0};
    // Map to a monotone integer line: negatives mirror below zero.
    const auto key = [](double v) {
        std::int64_t bits =
            static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(v));
        // INT64_MIN - bits sends -0.0 to 0 (same key as +0.0), so a
        // zero crossing counts the two subnormal steps, not one.
        return bits < 0
            ? std::numeric_limits<std::int64_t>::min() - bits
            : bits;
    };
    const std::int64_t ka = key(a);
    const std::int64_t kb = key(b);
    return ka > kb ? static_cast<std::uint64_t>(ka) - kb
                   : static_cast<std::uint64_t>(kb) - ka;
}

std::vector<Module>
makeModules()
{
    std::vector<Module> mods;
    addWideIntChecks(mods);
    addAlignChecks(mods);
    addXbarChecks(mods);
    addClusterChecks(mods);
    addAccelChecks(mods);
    addSpmmChecks(mods);
    addSolverChecks(mods);
    addBinioChecks(mods);
    return mods;
}

std::vector<std::string>
moduleNames()
{
    std::vector<std::string> names;
    for (const Module &m : makeModules())
        names.push_back(m.name);
    return names;
}

Report
runChecks(const Options &opt)
{
    Report report;
    report.seed = opt.seed;
    report.iters = opt.iters;

    // Wall-clock budget (0 disables): polled between iterations, so
    // a partial module still lands in the report when it expires.
    ExecContext deadline;
    const bool timed = opt.timeoutSec > 0.0;
    if (timed) {
        deadline.setDeadline(
            ExecContext::Clock::now() +
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::duration<double>(opt.timeoutSec)));
    }

    std::vector<Module> mods = makeModules();
    for (Module &mod : mods) {
        if (report.interrupted)
            break;
        if (!opt.module.empty() &&
            mod.name.find(opt.module) == std::string::npos)
            continue;
        ModuleReport rep;
        rep.name = mod.name;
        for (std::uint64_t it = 0; it < opt.iters; ++it) {
            if (timed && deadline.shouldStop()) {
                report.interrupted = true;
                break;
            }
            ++rep.iters;
            Context ctx(Rng(iterationSeed(opt.seed, mod.name, it)),
                        it, rep, opt.maxMessages);
            try {
                mod.iteration(ctx);
            } catch (const std::exception &e) {
                // A panic/fatal out of the checked code is itself a
                // finding: count it like a failed assertion.
                ctx.expect(false, "unexpected exception: ", e.what());
            }
        }
        report.totalChecks += rep.checks;
        report.totalFailures += rep.failures;
        report.modules.push_back(std::move(rep));
    }
    return report;
}

std::string
Report::toJson() const
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"seed\": " << seed << ",\n";
    out << "  \"iters\": " << iters << ",\n";
    out << "  \"total_checks\": " << totalChecks << ",\n";
    out << "  \"total_failures\": " << totalFailures << ",\n";
    out << "  \"ok\": " << (ok() ? "true" : "false") << ",\n";
    // Emitted only on expiry: untimed reports must stay
    // byte-identical across this key's introduction.
    if (interrupted)
        out << "  \"interrupted\": true,\n";
    out << "  \"modules\": [\n";
    for (std::size_t i = 0; i < modules.size(); ++i) {
        const ModuleReport &m = modules[i];
        out << "    {\"name\": \"";
        appendEscaped(out, m.name);
        out << "\", \"iters\": " << m.iters
            << ", \"checks\": " << m.checks
            << ", \"failures\": " << m.failures
            << ", \"messages\": [";
        for (std::size_t k = 0; k < m.messages.size(); ++k) {
            out << (k ? ", " : "") << "\"";
            appendEscaped(out, m.messages[k]);
            out << "\"";
        }
        out << "]}" << (i + 1 < modules.size() ? "," : "") << "\n";
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

} // namespace msc::check
