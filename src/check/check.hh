/**
 * @file
 * Differential-and-metamorphic validation harness (the "oracle
 * sweep").
 *
 * The paper's central claim is bit-exact equivalence between the
 * memristive pipeline (align -> slice -> crossbar -> shift-add ->
 * AN-code -> reduce) and plain FP64 SpMV feeding the Krylov solvers
 * (PAPER Sections IV and VI). Each module here pits one layer of
 * that pipeline against an independent oracle:
 *
 *   wideint  - WideUInt arithmetic vs a schoolbook bignum (bignum.hh)
 *   align    - alignValues/biasEncode vs exact FP64 decomposition
 *   xbar     - BinaryCrossbar column reads vs a naive dense popcount
 *   cluster  - Cluster and HwCluster block MVM vs exactDot
 *   accel    - Accelerator::spmv vs Csr::spmv under a ULP budget
 *   spmm     - batched multi-RHS path (Cluster/HwCluster batch
 *              multiply, Accelerator::spmm) vs k independent
 *              single-RHS invocations, bitwise
 *   solver   - metamorphic solver/SpMV transforms: P*A*P^T symmetric
 *              permutation, power-of-two scaling equivariance
 *              (bitwise), and x^T(Ay) == (A^T x)^T y consistency
 *   binio    - binary artifact round-trip and streaming blocking
 *              (sparse/binio, blocking/stream) vs the in-core
 *              parse + planBlocks path, bitwise, plus corrupted
 *              artifacts failing structurally
 *
 * Determinism contract: every iteration of every module draws from
 * an Rng seeded purely by (run seed, module name, iteration index).
 * Modules never read wall clock, thread ids, or shared mutable
 * state, so a report is byte-identical for any MSC_THREADS value --
 * the thread pool only parallelizes inside the checked components,
 * which carry their own bit-determinism contract (DESIGN.md 2d).
 */

#ifndef MSC_CHECK_CHECK_HH
#define MSC_CHECK_CHECK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace msc::check {

/** Options of one harness run. */
struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t iters = 1000;
    /** Substring filter on module names; empty runs every module. */
    std::string module;
    /** Failure messages kept per module (counting never stops). */
    std::size_t maxMessages = 8;
    /**
     * Wall-clock budget in seconds (0 disables). Implemented on an
     * ExecContext deadline polled between iterations: on expiry the
     * sweep stops where it is and the report carries the partial
     * results with Report::interrupted set -- CI sweeps cannot hang.
     */
    double timeoutSec = 0.0;
};

/** Per-module outcome. */
struct ModuleReport
{
    std::string name;
    std::uint64_t iters = 0;
    std::uint64_t checks = 0;   //!< assertions evaluated
    std::uint64_t failures = 0; //!< assertions that did not hold
    std::vector<std::string> messages; //!< first few failures
};

/** Whole-run outcome; toJson() is byte-stable for a fixed outcome. */
struct Report
{
    std::uint64_t seed = 0;
    std::uint64_t iters = 0;
    std::uint64_t totalChecks = 0;
    std::uint64_t totalFailures = 0;
    /** The timeout budget expired: the counts below are partial.
     *  toJson() emits an "interrupted" key only when set, so
     *  untimed reports stay byte-identical. */
    bool interrupted = false;
    std::vector<ModuleReport> modules;

    bool ok() const { return totalFailures == 0; }
    std::string toJson() const;
};

/**
 * Per-iteration context handed to a module: the seeded generator
 * plus the failure recorder.
 */
class Context
{
  public:
    Context(Rng rngIn, std::uint64_t iterIn, ModuleReport &rep,
            std::size_t maxMessages)
        : gen(rngIn), iterIdx(iterIn), report(rep),
          msgCap(maxMessages)
    {}

    Rng &rng() { return gen; }
    std::uint64_t iter() const { return iterIdx; }

    /** Record one assertion; the message is built only on failure. */
    template <typename... Args>
    bool
    expect(bool cond, Args &&...args)
    {
        ++report.checks;
        if (cond)
            return true;
        ++report.failures;
        if (report.messages.size() < msgCap) {
            report.messages.push_back(detail::concat(
                "iter ", iterIdx, ": ",
                std::forward<Args>(args)...));
        }
        return false;
    }

  private:
    Rng gen;
    std::uint64_t iterIdx;
    ModuleReport &report;
    std::size_t msgCap;
};

/**
 * One oracle module. makeModules() constructs fresh instances per
 * run, so the iteration closure may cache expensive fixtures (e.g.
 * a prepared Accelerator) across iterations of the same run.
 */
struct Module
{
    std::string name;
    std::function<void(Context &)> iteration;
};

/** Layer factories (one translation unit per checked layer). */
void addWideIntChecks(std::vector<Module> &out);
void addAlignChecks(std::vector<Module> &out);
void addXbarChecks(std::vector<Module> &out);
void addClusterChecks(std::vector<Module> &out);
void addAccelChecks(std::vector<Module> &out);
void addSpmmChecks(std::vector<Module> &out);
void addSolverChecks(std::vector<Module> &out);
void addBinioChecks(std::vector<Module> &out);

/** All registered modules, in fixed report order. */
std::vector<Module> makeModules();

/** Names of every registered module (for --list and filters). */
std::vector<std::string> moduleNames();

/** Run the sweep. Never throws on check failures (see Report::ok);
 *  panics/fatals from the checked code are caught and counted. */
Report runChecks(const Options &opt);

// --- shared helpers for the check modules -------------------------

/** Seed for (run seed, module, iteration): splitmix64-style mix. */
std::uint64_t iterationSeed(std::uint64_t seed,
                            const std::string &module,
                            std::uint64_t iter);

/** ULP distance between two finite doubles (huge when signs differ
 *  and both are nonzero). */
std::uint64_t ulpDistance(double a, double b);

} // namespace msc::check

#endif // MSC_CHECK_CHECK_HH
