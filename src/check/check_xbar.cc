/**
 * @file
 * Differential checks: BinaryCrossbar vs a naive dense bit matrix.
 *
 * A column read is popcount(stored AND input) by definition (paper
 * Section III-B); computational invert coding (Section V-B2) stores
 * complements of dense columns and corrects digitally. The oracle
 * here is the obvious O(rows) loop over a plain byte matrix, kept
 * through every mutation the crossbar sees (set, applyCic, clear).
 */

#include <vector>

#include "check/check.hh"
#include "xbar/crossbar.hh"

namespace msc::check {

namespace {

void
iterate(Context &ctx)
{
    Rng &rng = ctx.rng();
    const unsigned rows = static_cast<unsigned>(rng.below(64) + 1);
    const unsigned cols = static_cast<unsigned>(rng.below(32) + 1);
    const double density = rng.uniform(0.0, 1.0);

    BinaryCrossbar xbar(rows, cols);
    // Dense mirror of the logical (pre-inversion) contents.
    std::vector<std::uint8_t> dense(
        static_cast<std::size_t>(rows) * cols, 0);
    for (unsigned r = 0; r < rows; ++r) {
        for (unsigned c = 0; c < cols; ++c) {
            if (rng.chance(density)) {
                xbar.set(r, c);
                dense[static_cast<std::size_t>(r) * cols + c] = 1;
            }
        }
    }
    // Exercise explicit clearing of individual cells too.
    if (rng.chance(0.5)) {
        const unsigned r = static_cast<unsigned>(rng.below(rows));
        const unsigned c = static_cast<unsigned>(rng.below(cols));
        xbar.set(r, c, false);
        dense[static_cast<std::size_t>(r) * cols + c] = 0;
    }

    BitVec input(rows);
    for (unsigned r = 0; r < rows; ++r) {
        if (rng.chance(0.5))
            input.set(r);
    }

    const auto naiveOnes = [&](unsigned c) {
        std::int64_t n = 0;
        for (unsigned r = 0; r < rows; ++r)
            n += dense[static_cast<std::size_t>(r) * cols + c];
        return n;
    };
    const auto naiveDot = [&](unsigned c) {
        std::int64_t n = 0;
        for (unsigned r = 0; r < rows; ++r) {
            if (dense[static_cast<std::size_t>(r) * cols + c] &&
                input.get(r))
                ++n;
        }
        return n;
    };

    // --- pre-CIC: stored == logical ------------------------------
    for (unsigned c = 0; c < cols; ++c) {
        ctx.expect(xbar.readColumn(c, input) == naiveDot(c),
                   "readColumn mismatch at column ", c);
        ctx.expect(xbar.logicalColumn(c, input) == naiveDot(c),
                   "pre-CIC logicalColumn mismatch at column ", c);
        ctx.expect(xbar.columnOnes(c) ==
                       static_cast<unsigned>(naiveOnes(c)),
                   "columnOnes mismatch at column ", c);
        ctx.expect(!xbar.columnInverted(c),
                   "column inverted before applyCic: ", c);
    }
    {
        const unsigned r = static_cast<unsigned>(rng.below(rows));
        const unsigned c = static_cast<unsigned>(rng.below(cols));
        ctx.expect(xbar.get(r, c) ==
                       (dense[static_cast<std::size_t>(r) * cols + c]
                        != 0),
                   "get round-trip mismatch at (", r, ", ", c, ")");
    }

    // --- CIC: dense columns invert, reads correct digitally ------
    unsigned expectInverted = 0;
    unsigned expectCorners = 0;
    for (unsigned c = 0; c < cols; ++c) {
        const std::int64_t ones = naiveOnes(c);
        if (2 * ones > rows)
            ++expectInverted;
        else if (2 * ones == rows)
            ++expectCorners;
    }
    const unsigned flipped = xbar.applyCic();
    ctx.expect(flipped == expectInverted,
               "applyCic inverted ", flipped, " columns, expected ",
               expectInverted);
    ctx.expect(xbar.denseCornerCases() == expectCorners,
               "denseCornerCases mismatch: ", xbar.denseCornerCases(),
               " vs ", expectCorners);
    for (unsigned c = 0; c < cols; ++c) {
        const std::int64_t ones = naiveOnes(c);
        ctx.expect(xbar.columnInverted(c) == (2 * ones > rows),
                   "inversion flag mismatch at column ", c);
        const unsigned storedOnes = xbar.columnInverted(c)
            ? rows - static_cast<unsigned>(ones)
            : static_cast<unsigned>(ones);
        ctx.expect(xbar.columnOnes(c) == storedOnes,
                   "post-CIC columnOnes mismatch at column ", c);
        // The whole point of CIC: stored density <= 1/2.
        ctx.expect(2 * xbar.columnOnes(c) <= rows,
                   "CIC left a dense column: ", c);
        // ADC headstart preset: smallest b with 2^b >= ones + 1.
        unsigned bits = 0;
        while ((1ull << bits) < storedOnes + 1ull)
            ++bits;
        ctx.expect(xbar.columnMaxOutputBits(c) == bits,
                   "columnMaxOutputBits mismatch at column ", c);
        // The digital correction makes inversion transparent.
        ctx.expect(xbar.logicalColumn(c, input) == naiveDot(c),
                   "post-CIC logicalColumn mismatch at column ", c);
        if (xbar.columnInverted(c)) {
            const std::int64_t raw = xbar.readColumn(c, input);
            ctx.expect(raw == static_cast<std::int64_t>(
                                  input.popcount()) - naiveDot(c),
                       "inverted raw read mismatch at column ", c);
        }
    }

    // --- clear() kills cells but keeps inversion flags -----------
    xbar.clear();
    for (unsigned c = 0; c < cols; ++c) {
        const std::int64_t ones = naiveOnes(c);
        ctx.expect(xbar.readColumn(c, input) == 0,
                   "cleared column still reads current: ", c);
        ctx.expect(xbar.columnOnes(c) == 0,
                   "cleared column still has ones: ", c);
        ctx.expect(xbar.columnInverted(c) == (2 * ones > rows),
                   "clear() dropped the inversion flag of ", c);
        // Dead array + surviving CIC flag: the correction fires on
        // zero current, so inverted columns read popcount(input).
        const std::int64_t expect = xbar.columnInverted(c)
            ? static_cast<std::int64_t>(input.popcount())
            : 0;
        ctx.expect(xbar.logicalColumn(c, input) == expect,
                   "cleared logicalColumn mismatch at column ", c);
    }
}

} // namespace

void
addXbarChecks(std::vector<Module> &out)
{
    out.push_back({"xbar", iterate});
}

} // namespace msc::check
