/**
 * @file
 * Differential checks: WideUInt<NW> vs the schoolbook BigNat oracle.
 *
 * Operands are drawn with random bit lengths (biased toward the
 * edges: zero, single high bit, all-ones runs) so carry chains,
 * word-boundary shifts, and truncation paths all get exercised.
 */

#include "check/bignum.hh"
#include "check/check.hh"
#include "wideint/wideint.hh"

namespace msc::check {

namespace {

template <unsigned NW>
WideUInt<NW>
randomWide(Rng &rng)
{
    WideUInt<NW> v;
    // Shape mix: 0 = sparse random, 1 = dense random, 2 = all-ones
    // low run, 3 = single bit, 4 = zero.
    const std::uint64_t shape = rng.below(5);
    switch (shape) {
      case 0: {
        const unsigned bits =
            static_cast<unsigned>(rng.below(NW * 64 + 1));
        const unsigned setCount =
            static_cast<unsigned>(rng.below(bits + 1) / 4 + 1);
        for (unsigned i = 0; bits && i < setCount; ++i)
            v.setBit(static_cast<unsigned>(rng.below(bits)));
        break;
      }
      case 1: {
        const unsigned words =
            static_cast<unsigned>(rng.below(NW) + 1);
        for (unsigned i = 0; i < words; ++i)
            v.setWord(i, rng.next());
        break;
      }
      case 2: {
        const unsigned run =
            static_cast<unsigned>(rng.below(NW * 64) + 1);
        for (unsigned i = 0; i < run; ++i)
            v.setBit(i);
        break;
      }
      case 3:
        v.setBit(static_cast<unsigned>(rng.below(NW * 64)));
        break;
      default:
        break;
    }
    return v;
}

template <unsigned NW>
BigNat
toBig(const WideUInt<NW> &v)
{
    std::uint64_t words[NW];
    for (unsigned i = 0; i < NW; ++i)
        words[i] = v.word(i);
    return BigNat::fromWords(words, NW);
}

template <unsigned NW>
bool
sameValue(const WideUInt<NW> &v, const BigNat &o)
{
    if (o.bitLength() > NW * 64)
        return false;
    for (unsigned i = 0; i < NW; ++i) {
        if (v.word(i) != o.word64(i))
            return false;
    }
    return true;
}

template <unsigned NW>
void
checkWidth(Context &ctx)
{
    Rng &rng = ctx.rng();
    const WideUInt<NW> a = randomWide<NW>(rng);
    const WideUInt<NW> b = randomWide<NW>(rng);
    const BigNat ba = toBig(a);
    const BigNat bb = toBig(b);

    // Structure probes.
    ctx.expect(a.bitLength() == ba.bitLength(),
               "bitLength mismatch: ", a.toHex());
    ctx.expect(a.popcount() == ba.popcount(),
               "popcount mismatch: ", a.toHex());
    if (!a.isZero()) {
        ctx.expect(a.countTrailingZeros() == ba.countTrailingZeros(),
                   "ctz mismatch: ", a.toHex());
    } else {
        ctx.expect(a.countTrailingZeros() == NW * 64,
                   "ctz of zero must be numBits");
    }
    ctx.expect(ba.compare(bb) ==
                   (a < b ? -1 : (a == b ? 0 : 1)),
               "compare mismatch: ", a.toHex(), " vs ", b.toHex());

    // Addition (mod 2^numBits) and subtraction (wrapping).
    ctx.expect(sameValue(a + b, ba.add(bb).truncate(NW * 64)),
               "add mismatch: ", a.toHex(), " + ", b.toHex());
    if (ba.compare(bb) >= 0) {
        ctx.expect(sameValue(a - b, ba.sub(bb)),
                   "sub mismatch: ", a.toHex(), " - ", b.toHex());
    } else {
        // Wrap-around: a - b == a + (2^numBits - b).
        const BigNat modulus = BigNat::fromU64(1).shl(NW * 64);
        ctx.expect(sameValue(a - b, modulus.sub(bb).add(ba)
                                        .truncate(NW * 64)),
                   "wrapping sub mismatch: ", a.toHex(), " - ",
                   b.toHex());
    }

    // Shifts, including word-boundary and out-of-range amounts.
    const unsigned s =
        static_cast<unsigned>(rng.below(NW * 64 + 8));
    ctx.expect(sameValue(a << s, ba.shl(s).truncate(NW * 64)),
               "shl mismatch: ", a.toHex(), " << ", s);
    ctx.expect(sameValue(a >> s, ba.shr(s)),
               "shr mismatch: ", a.toHex(), " >> ", s);

    // addShifted: r += (b << k) without materializing.
    {
        const unsigned k =
            static_cast<unsigned>(rng.below(NW * 64));
        WideUInt<NW> r = a;
        r.addShifted(b, k);
        ctx.expect(sameValue(r, ba.add(bb.shl(k)).truncate(NW * 64)),
                   "addShifted mismatch: ", a.toHex(), " += ",
                   b.toHex(), " << ", k);
    }

    // Small multiply (truncating) and full widening multiply.
    {
        const std::uint64_t m = rng.next();
        WideUInt<NW> r = a;
        r.mulSmall(m);
        ctx.expect(sameValue(r, ba.mul(BigNat::fromU64(m))
                                    .truncate(NW * 64)),
                   "mulSmall mismatch: ", a.toHex(), " * ", m);
    }
    {
        const WideUInt<NW + 2> wide = a.mulWide(WideUInt<2>::from(b));
        ctx.expect(sameValue(wide, ba.mul(bb.truncate(128))),
                   "mulWide mismatch: ", a.toHex());
    }

    // Division / remainder by a small divisor.
    {
        std::uint64_t d = rng.below(3) == 0
            ? rng.below(1000) + 1 : rng.next() | 1;
        BigNat q, r;
        ba.divmod(BigNat::fromU64(d), q, r);
        ctx.expect(a.modSmall(d) == r.word64(0) &&
                       r.bitLength() <= 64,
                   "modSmall mismatch: ", a.toHex(), " % ", d);
        WideUInt<NW> quot = a;
        const std::uint64_t rem = quot.divSmall(d);
        ctx.expect(sameValue(quot, q) && rem == r.word64(0),
                   "divSmall mismatch: ", a.toHex(), " / ", d);
    }

    // Bitwise ops are self-evident per word but cheap to cross-check
    // through identities: (a ^ b) ^ b == a, a & b <= a | b.
    ctx.expect(((a ^ b) ^ b) == a, "xor involution failed");
    ctx.expect((a & b) <= (a | b), "and/or ordering failed");
    ctx.expect((~(~a)) == a, "not involution failed");
}

void
iterate(Context &ctx)
{
    // One width per iteration keeps the per-iteration cost flat;
    // U256 is the width the cluster pipeline leans on hardest.
    switch (ctx.rng().below(4)) {
      case 0:
        checkWidth<2>(ctx);
        break;
      case 1:
        checkWidth<3>(ctx);
        break;
      case 2:
        checkWidth<5>(ctx);
        break;
      default:
        checkWidth<4>(ctx);
        break;
    }
}

} // namespace

void
addWideIntChecks(std::vector<Module> &out)
{
    out.push_back({"wideint", iterate});
}

} // namespace msc::check
