/**
 * @file
 * Differential checks: Cluster and HwCluster block MVM vs exactDot.
 *
 * The central claim of the pipeline (paper Sections III-B, IV): with
 * ideal devices, a block MVM equals round(sum_j A_ij x_j) with one
 * rounding of the infinitely-precise sum -- for every rounding mode,
 * schedule policy, precision target, and with AN protection, CIC,
 * and early termination toggled freely. exactDot() accumulates in a
 * wide integer through a completely different code path
 * (fp/float64.cc), so it serves as the independent oracle here.
 */

#include <cmath>
#include <vector>

#include "check/check.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"

namespace msc::check {

namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const double v =
                std::ldexp(rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.range(0, expSpread))) *
                (rng.chance(0.5) ? -1.0 : 1.0);
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c), v});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        if (rng.chance(0.1)) {
            v = 0.0;
            continue;
        }
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, expSpread))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

/** round(sum_j block[i][j] x[j]) per row, via exactDot. */
void
oracle(const MatrixBlock &b, const std::vector<double> &x,
       RoundingMode mode, unsigned mantissaBits,
       std::vector<double> &out)
{
    const unsigned n = b.size;
    out.assign(n, 0.0);
    std::vector<std::vector<double>> rowsA(n), rowsX(n);
    for (const auto &t : b.elems) {
        rowsA[static_cast<std::size_t>(t.row)].push_back(t.val);
        rowsX[static_cast<std::size_t>(t.row)].push_back(
            x[static_cast<std::size_t>(t.col)]);
    }
    for (unsigned i = 0; i < n; ++i) {
        if (!rowsA[i].empty()) {
            out[i] = exactDot(rowsA[i].data(), rowsX[i].data(),
                              rowsA[i].size(), mode, mantissaBits);
        }
    }
}

RoundingMode
randomRounding(Rng &rng)
{
    switch (rng.below(4)) {
      case 0:
        return RoundingMode::TowardNegInf;
      case 1:
        return RoundingMode::TowardPosInf;
      case 2:
        return RoundingMode::TowardZero;
      default:
        return RoundingMode::NearestEven;
    }
}

void
iterate(Context &ctx)
{
    Rng &rng = ctx.rng();
    const unsigned size = rng.chance(0.5) ? 8 : 16;
    const double density = rng.uniform(0.15, 0.7);
    const int spread = static_cast<int>(rng.below(61));

    const MatrixBlock b = randomBlock(rng, size, density, spread);
    const auto x = randomVector(rng, size, spread);

    // --- functional cluster across the whole config space --------
    ClusterConfig cfg;
    cfg.size = size;
    cfg.rounding = randomRounding(rng);
    switch (rng.below(3)) {
      case 0:
        cfg.schedule = SchedulePolicy::Vertical;
        break;
      case 1:
        cfg.schedule = SchedulePolicy::Diagonal;
        break;
      default:
        cfg.schedule = SchedulePolicy::Hybrid;
        break;
    }
    cfg.earlyTermination = rng.chance(0.75);
    cfg.anProtect = rng.chance(0.75);
    cfg.cic = rng.chance(0.75);
    cfg.adcHeadstart = rng.chance(0.75);
    static const unsigned targets[] = {53, 53, 53, 44, 24, 12};
    cfg.targetMantissaBits = targets[rng.below(6)];

    Cluster cluster(cfg);
    cluster.program(b);
    std::vector<double> y(size), ref;
    std::vector<std::int32_t> peeled;
    cluster.multiply(x, y, &peeled);
    ctx.expect(peeled.empty(),
               "unexpected peel with spread ", spread);
    oracle(b, x, cfg.rounding, cfg.targetMantissaBits, ref);
    for (unsigned i = 0; i < size; ++i) {
        ctx.expect(y[i] == ref[i], "cluster row ", i, ": ", y[i],
                   " vs oracle ", ref[i], " (mode ",
                   static_cast<int>(cfg.rounding), ", target ",
                   cfg.targetMantissaBits, ")");
    }

    // --- hardware-faithful cluster (bit-slice crossbars) ---------
    // Slower than the functional model, so run it on every other
    // iteration and only at size 8.
    if (rng.chance(0.5)) {
        HwCluster::Config hwCfg;
        hwCfg.size = 8;
        hwCfg.rounding = randomRounding(rng);
        hwCfg.anProtect = rng.chance(0.75);
        hwCfg.cic = rng.chance(0.75);
        HwCluster hw(hwCfg);
        const MatrixBlock hb = randomBlock(rng, 8, density, spread);
        const auto hx = randomVector(rng, 8, spread);
        hw.program(hb);
        std::vector<double> hy(8), href;
        const HwClusterStats stats = hw.multiply(hx, hy);
        oracle(hb, hx, hwCfg.rounding, 53, href);
        for (unsigned i = 0; i < 8; ++i) {
            ctx.expect(hy[i] == href[i], "hw row ", i, ": ", hy[i],
                       " vs oracle ", href[i]);
        }
        ctx.expect(stats.correctedWords == 0 &&
                       stats.uncorrectableWords == 0,
                   "clean hardware reported corrections");
        ctx.expect(hw.scrub() == 0,
                   "clean hardware failed the AN scrub");
    }
}

} // namespace

void
addClusterChecks(std::vector<Module> &out)
{
    out.push_back({"cluster", iterate});
}

} // namespace msc::check
