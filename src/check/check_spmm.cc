/**
 * @file
 * Differential checks: the batched multi-RHS path vs k independent
 * single-RHS invocations.
 *
 * The batch path's whole contract is "amortize the setup, change no
 * bit": Cluster::multiply(X), HwCluster::multiply(X), and
 * Accelerator::spmm must produce outputs, per-column side channels
 * (peeled indices), and statistics bitwise identical to k calls of
 * the retained single-RHS path in column order. The single-RHS path
 * is itself pinned to an exact oracle by the cluster/accel modules,
 * so this module only needs the self-differential: batched vs
 * sequential, swept across schedule x rounding x AN x early-
 * termination corners and random panel widths.
 */

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "accel/accel.hh"
#include "check/check.hh"
#include "cluster/cluster.hh"
#include "cluster/hw_cluster.hh"
#include "sparse/gen.hh"

namespace msc::check {

namespace {

MatrixBlock
randomBlock(Rng &rng, unsigned size, double density, int expSpread)
{
    MatrixBlock b;
    b.size = size;
    for (unsigned r = 0; r < size; ++r) {
        for (unsigned c = 0; c < size; ++c) {
            if (!rng.chance(density))
                continue;
            const double v =
                std::ldexp(rng.uniform(1.0, 2.0),
                           static_cast<int>(rng.range(0, expSpread))) *
                (rng.chance(0.5) ? -1.0 : 1.0);
            b.elems.push_back({static_cast<std::int32_t>(r),
                               static_cast<std::int32_t>(c), v});
        }
    }
    return b;
}

std::vector<double>
randomVector(Rng &rng, unsigned size, int expSpread)
{
    std::vector<double> x(size);
    for (auto &v : x) {
        if (rng.chance(0.1)) {
            v = 0.0;
            continue;
        }
        v = std::ldexp(rng.uniform(1.0, 2.0),
                       static_cast<int>(rng.range(0, expSpread))) *
            (rng.chance(0.5) ? -1.0 : 1.0);
    }
    return x;
}

/** Bitwise double equality (0.0 vs -0.0 must not slip through). */
bool
bitEqual(double a, double b)
{
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

RoundingMode
randomRounding(Rng &rng)
{
    switch (rng.below(4)) {
      case 0:
        return RoundingMode::TowardNegInf;
      case 1:
        return RoundingMode::TowardPosInf;
      case 2:
        return RoundingMode::TowardZero;
      default:
        return RoundingMode::NearestEven;
    }
}

void
expectClusterStatsEqual(Context &ctx, const ClusterStats &a,
                        const ClusterStats &b)
{
    ctx.expect(a.matrixSlices == b.matrixSlices &&
                   a.vectorSlices == b.vectorSlices &&
                   a.groupsTotal == b.groupsTotal &&
                   a.groupsExecuted == b.groupsExecuted &&
                   a.xbarActivations == b.xbarActivations &&
                   a.adcConversions == b.adcConversions &&
                   a.conversionsSkipped == b.conversionsSkipped &&
                   a.columnsEarlyTerminated ==
                       b.columnsEarlyTerminated &&
                   a.emptyColumns == b.emptyColumns &&
                   a.peeledVectorElements == b.peeledVectorElements &&
                   a.cycles == b.cycles,
               "cluster stats counters diverge");
    ctx.expect(bitEqual(a.latency, b.latency) &&
                   bitEqual(a.energy, b.energy) &&
                   bitEqual(a.adcEnergy, b.adcEnergy) &&
                   bitEqual(a.arrayEnergy, b.arrayEnergy),
               "cluster stats energy/latency sums diverge");
}

/** Batched Cluster::multiply vs k singles across config corners. */
void
checkClusterBatch(Context &ctx, Rng &rng)
{
    const unsigned size = rng.chance(0.5) ? 8 : 16;
    const double density = rng.uniform(0.15, 0.7);

    ClusterConfig cfg;
    cfg.size = size;
    cfg.rounding = randomRounding(rng);
    switch (rng.below(3)) {
      case 0:
        cfg.schedule = SchedulePolicy::Vertical;
        break;
      case 1:
        cfg.schedule = SchedulePolicy::Diagonal;
        break;
      default:
        cfg.schedule = SchedulePolicy::Hybrid;
        break;
    }
    cfg.earlyTermination = rng.chance(0.75);
    cfg.anProtect = rng.chance(0.75);
    cfg.cic = rng.chance(0.75);
    cfg.adcHeadstart = rng.chance(0.75);
    static const unsigned targets[] = {53, 53, 53, 44, 24, 12};
    cfg.targetMantissaBits = targets[rng.below(6)];

    Cluster cluster(cfg);
    cluster.program(randomBlock(rng, size, density, 20));

    const unsigned k = 2 + static_cast<unsigned>(rng.below(5));
    std::vector<double> X;
    for (unsigned c = 0; c < k; ++c) {
        // Mixed spreads: distinct vector widths (distinct schedule
        // groups) and the occasional 64-bit-window overflow (peel).
        const int spread =
            rng.chance(0.25) ? 75 : static_cast<int>(rng.below(31));
        const auto xc = randomVector(rng, size, spread);
        X.insert(X.end(), xc.begin(), xc.end());
    }

    std::vector<double> yRef(size * k);
    std::vector<std::vector<std::int32_t>> peelRef(k);
    ClusterStats statsRef;
    for (unsigned c = 0; c < k; ++c) {
        statsRef += cluster.multiply(
            std::span<const double>(X).subspan(c * size, size),
            std::span<double>(yRef).subspan(c * size, size),
            &peelRef[c]);
    }
    std::vector<double> yBatch(size * k, -1.0);
    std::vector<std::vector<std::int32_t>> peelBatch;
    const ClusterStats statsBatch =
        cluster.multiply(std::span<const double>(X),
                         std::span<double>(yBatch), k, &peelBatch);

    for (std::size_t i = 0; i < yRef.size(); ++i) {
        if (!ctx.expect(bitEqual(yRef[i], yBatch[i]),
                        "cluster k=", k, " elem ", i, ": single ",
                        yRef[i], " vs batch ", yBatch[i]))
            break;
    }
    expectClusterStatsEqual(ctx, statsRef, statsBatch);
    ctx.expect(peelBatch.size() == k, "peel column count");
    for (unsigned c = 0; c < k && peelBatch.size() == k; ++c) {
        ctx.expect(peelRef[c] == peelBatch[c],
                   "peel list diverges at column ", c);
    }
}

/** Batched HwCluster::multiply vs k singles (AN x CIC corners). */
void
checkHwClusterBatch(Context &ctx, Rng &rng)
{
    HwCluster::Config cfg;
    cfg.size = 8;
    cfg.rounding = randomRounding(rng);
    cfg.anProtect = rng.chance(0.75);
    cfg.cic = rng.chance(0.75);
    HwCluster hw(cfg);
    hw.program(randomBlock(rng, 8, rng.uniform(0.2, 0.7), 12));

    const unsigned k = 2 + static_cast<unsigned>(rng.below(4));
    std::vector<double> X;
    for (unsigned c = 0; c < k; ++c) {
        const auto xc = randomVector(
            rng, 8, 8 + static_cast<int>(rng.below(8)));
        X.insert(X.end(), xc.begin(), xc.end());
    }

    std::vector<double> yRef(8 * k);
    HwClusterStats statsRef;
    for (unsigned c = 0; c < k; ++c) {
        statsRef += hw.multiply(
            std::span<const double>(X).subspan(c * 8, 8),
            std::span<double>(yRef).subspan(c * 8, 8));
    }
    std::vector<double> yBatch(8 * k, -1.0);
    const HwClusterStats statsBatch = hw.multiply(
        std::span<const double>(X), std::span<double>(yBatch), k);

    for (std::size_t i = 0; i < yRef.size(); ++i) {
        if (!ctx.expect(bitEqual(yRef[i], yBatch[i]), "hw k=", k,
                        " elem ", i, ": single ", yRef[i],
                        " vs batch ", yBatch[i]))
            break;
    }
    ctx.expect(statsRef.sliceWords == statsBatch.sliceWords &&
                   statsRef.cleanWords == statsBatch.cleanWords &&
                   statsRef.correctedWords ==
                       statsBatch.correctedWords &&
                   statsRef.uncorrectableWords ==
                       statsBatch.uncorrectableWords &&
                   statsRef.cicInvertedColumns ==
                       statsBatch.cicInvertedColumns,
               "hw stats diverge");
}

/** Iterations sharing one prepared accelerator (prepare() is the
 *  expensive step; the sweep amortizes it across a group). */
constexpr std::uint64_t groupSize = 32;

struct Fixture
{
    Csr mat;
    std::unique_ptr<Accelerator> accel;
    std::uint64_t group = ~std::uint64_t{0};
};

/** Accelerator::spmm vs k spmv calls in column order. */
void
checkAccelSpmm(Context &ctx, Rng &rng, Fixture &fx)
{
    if (ctx.iter() / groupSize != fx.group) {
        fx.group = ctx.iter() / groupSize;
        TiledParams p;
        p.rows = static_cast<std::int32_t>(96 + rng.below(161));
        p.tile = static_cast<std::int32_t>(8 + 4 * rng.below(3));
        p.tileDensity = rng.uniform(0.3, 0.7);
        p.scatterPerRow = rng.uniform(0.0, 2.0);
        p.symmetricPattern = rng.chance(0.5);
        p.spd = p.symmetricPattern && rng.chance(0.3);
        p.values.outlierProb = rng.chance(0.5) ? 0.02 : 0.0;
        p.seed = rng.next();
        fx.mat = genTiled(p);
        fx.accel = std::make_unique<Accelerator>();
        fx.accel->prepare(fx.mat);
    }

    const auto n = static_cast<std::size_t>(fx.mat.rows());
    // Straddle the column-chunk width (4) so partial chunks and
    // multi-chunk fans are both exercised.
    const unsigned k = 1 + static_cast<unsigned>(rng.below(6));
    std::vector<double> X(n * k);
    for (auto &v : X) {
        v = rng.chance(0.1)
                ? 0.0
                : std::ldexp(rng.uniform(1.0, 2.0),
                             static_cast<int>(rng.range(-8, 8))) *
                      (rng.chance(0.5) ? -1.0 : 1.0);
    }

    std::vector<double> yRef(n * k), yBatch(n * k, -1.0);
    for (unsigned c = 0; c < k; ++c) {
        fx.accel->spmv(
            std::span<const double>(X).subspan(c * n, n),
            std::span<double>(yRef).subspan(c * n, n));
    }
    fx.accel->spmm(std::span<const double>(X),
                   std::span<double>(yBatch), k);
    for (std::size_t i = 0; i < yRef.size(); ++i) {
        if (!ctx.expect(bitEqual(yRef[i], yBatch[i]), "spmm k=", k,
                        " elem ", i, ": spmv ", yRef[i],
                        " vs spmm ", yBatch[i]))
            break;
    }
}

void
iterate(Context &ctx, Fixture &fx)
{
    Rng &rng = ctx.rng();
    checkClusterBatch(ctx, rng);
    // The bit-slice hardware model is slower: every other iteration.
    if (rng.chance(0.5))
        checkHwClusterBatch(ctx, rng);
    checkAccelSpmm(ctx, rng, fx);
}

} // namespace

void
addSpmmChecks(std::vector<Module> &out)
{
    auto fx = std::make_shared<Fixture>();
    out.push_back({"spmm", [fx](Context &ctx) { iterate(ctx, *fx); }});
}

} // namespace msc::check
