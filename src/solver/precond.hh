/**
 * @file
 * Preconditioners for the Krylov solvers.
 *
 * The paper runs unpreconditioned CG / BiCG-STAB; production solver
 * stacks almost always precondition, and on the accelerator the
 * preconditioner application is one more local vector kernel on the
 * bank processors (Jacobi) or a short sweep (symmetric
 * Gauss-Seidel). Both are provided so downstream users can reproduce
 * realistic end-to-end solves.
 */

#ifndef MSC_SOLVER_PRECOND_HH
#define MSC_SOLVER_PRECOND_HH

#include <vector>

#include "solver/solver.hh"

namespace msc {

/** Abstract left preconditioner: z = M^-1 r. */
class Preconditioner
{
  public:
    virtual ~Preconditioner() = default;

    virtual void apply(std::span<const double> r,
                       std::span<double> z) const = 0;

    /** Elementwise work per application, for the cost models. */
    virtual double opsPerApply() const = 0;
};

/** Identity (no preconditioning). */
class IdentityPreconditioner : public Preconditioner
{
  public:
    void
    apply(std::span<const double> r,
          std::span<double> z) const override
    {
        std::copy(r.begin(), r.end(), z.begin());
    }

    double opsPerApply() const override { return 0.0; }
};

/** Jacobi: z_i = r_i / a_ii. Fatal on a zero diagonal. */
class JacobiPreconditioner : public Preconditioner
{
  public:
    explicit JacobiPreconditioner(const Csr &m);

    void apply(std::span<const double> r,
               std::span<double> z) const override;

    double
    opsPerApply() const override
    {
        return static_cast<double>(invDiag.size());
    }

  private:
    std::vector<double> invDiag;
};

/**
 * Symmetric Gauss-Seidel: one forward and one backward sweep of
 * (D + L) D^-1 (D + U). Requires a nonzero diagonal; intended for
 * (nearly) symmetric matrices.
 */
class SymmetricGaussSeidelPreconditioner : public Preconditioner
{
  public:
    explicit SymmetricGaussSeidelPreconditioner(const Csr &m);

    void apply(std::span<const double> r,
               std::span<double> z) const override;

    double
    opsPerApply() const override
    {
        return 2.0 * static_cast<double>(mat->nnz());
    }

  private:
    const Csr *mat;
    std::vector<double> diag;
};

/**
 * Incomplete LU factorization with zero fill-in, ILU(0): L and U
 * keep exactly the sparsity pattern of A. The workhorse
 * preconditioner for non-symmetric systems; for SPD inputs it
 * reduces to incomplete Cholesky up to scaling.
 */
class Ilu0Preconditioner : public Preconditioner
{
  public:
    explicit Ilu0Preconditioner(const Csr &m);

    void apply(std::span<const double> r,
               std::span<double> z) const override;

    double
    opsPerApply() const override
    {
        return 2.0 * static_cast<double>(factors.nnz());
    }

    /** The combined LU factor matrix (unit-diagonal L below, U on
     *  and above the diagonal), for inspection in tests. */
    const Csr &combinedFactors() const { return factors; }

  private:
    Csr factors;                 //!< L (strict lower) + U
    std::vector<double> invDiagU; //!< 1 / U(i, i)
};

/**
 * Preconditioned conjugate gradient. With an
 * IdentityPreconditioner this reduces exactly to
 * conjugateGradient(). Preconditioner applications are counted in
 * SolverResult::axpyCalls-equivalent work via precondApplies.
 */
SolverResult preconditionedCg(LinearOperator &a,
                              const Preconditioner &m,
                              std::span<const double> b,
                              std::span<double> x,
                              const SolverConfig &cfg = {});

} // namespace msc

#endif // MSC_SOLVER_PRECOND_HH
