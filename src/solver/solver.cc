#include "solver/solver.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

std::atomic<SolverWorkspace::AllocHook>
    SolverWorkspace::allocHook{nullptr};

namespace {

// One iteration tick + residual gauge per Krylov step; totals are
// deterministic because every step runs exactly once regardless of
// the pool's lane count.
constinit telemetry::Counter ctrIterations{"solver.iterations"};
constinit telemetry::Gauge gResidual{"solver.residual"};

/**
 * RAII: attach cfg.exec to the operator for the duration of one
 * solve so block-batched operators (accel/, fault/) poll it
 * mid-apply, and detach on exit -- the context may not outlive the
 * operator. No virtual call in the default (nullptr) path.
 */
class ExecBinding
{
  public:
    ExecBinding(LinearOperator &op, const ExecContext *ctx)
        : a(op), bound(ctx != nullptr)
    {
        if (bound)
            a.setExecContext(ctx);
    }

    ~ExecBinding()
    {
        if (bound)
            a.setExecContext(nullptr);
    }

    ExecBinding(const ExecBinding &) = delete;
    ExecBinding &operator=(const ExecBinding &) = delete;

  private:
    LinearOperator &a;
    bool bound;
};

void
checkSystem(const LinearOperator &a, std::span<const double> b,
            std::span<double> x)
{
    if (a.rows() != a.cols())
        fatal("solver: operator must be square");
    if (b.size() != static_cast<std::size_t>(a.rows()) ||
        x.size() != b.size())
        fatal("solver: dimension mismatch");
}

/** Breakdown guard: denominators this small (or non-finite) would
 *  amplify the next update into garbage rather than progress. */
bool
breakdown(double denom)
{
    return !std::isfinite(denom) ||
           std::fabs(denom) < 1e-300;
}

} // namespace

SolverResult
conjugateGradient(LinearOperator &a, std::span<const double> b,
                  std::span<double> x, const SolverConfig &cfg,
                  SolverWorkspace *ws)
{
    checkSystem(a, b, x);
    telemetry::Span span("solver.cg");
    const std::size_t n = b.size();
    SolverResult res;
    res.vectorLength = n;

    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<double> &r = wsp.vec(0, n);
    std::vector<double> &p = wsp.vec(1, n);
    std::vector<double> &ap = wsp.vec(2, n);

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;
    double bNorm = 0.0;
    double rr = 0.0;
    SolverCheckpoint *ckpt = cfg.checkpoint;
    const bool resuming = ckpt != nullptr && ckpt->valid &&
                          ckpt->x.size() == n;
    try {
        if (resuming) {
            // Restore the exact recurrence state of the preempted
            // segment: the concatenated segments walk the same
            // iterate sequence an uninterrupted solve would.
            std::copy(ckpt->x.begin(), ckpt->x.end(), x.begin());
            std::copy(ckpt->r.begin(), ckpt->r.end(), r.begin());
            std::copy(ckpt->p.begin(), ckpt->p.end(), p.begin());
            rr = ckpt->rr;
            bNorm = ckpt->bNorm;
            res.iterations = ckpt->iterationsDone;
            res.spmvCalls = ckpt->spmvCalls;
            res.dotCalls = ckpt->dotCalls;
            res.axpyCalls = ckpt->axpyCalls;
            ckpt->valid = false;
        } else {
            execCheckpoint(cfg.exec);
            // r = b - A x
            a.apply(x, r);
            ++res.spmvCalls;
            for (std::size_t i = 0; i < n; ++i)
                r[i] = b[i] - r[i];
            p = r;

            bNorm = norm2(b);
            ++res.dotCalls;
            if (bNorm == 0.0) {
                std::fill(x.begin(), x.end(), 0.0);
                res.converged = true;
                res.status = SolveStatus::Converged;
                return res;
            }

            rr = dot(r, r);
            ++res.dotCalls;
        }
        for (int it = res.iterations; it < cfg.maxIterations;
             ++it) {
            if (std::sqrt(rr) / bNorm <= cfg.tolerance) {
                res.converged = true;
                break;
            }
            execCheckpoint(cfg.exec);
            if (ckpt != nullptr && cfg.exec != nullptr &&
                cfg.exec->yieldRequested()) {
                // Cooperative preemption: save the full state at
                // this iteration boundary and step aside. No
                // arithmetic has run for iteration `it`, so the
                // resumed segment re-enters the loop exactly here.
                ckpt->iterationsDone = res.iterations;
                ckpt->rr = rr;
                ckpt->bNorm = bNorm;
                ckpt->x.assign(x.begin(), x.end());
                ckpt->r = r;
                ckpt->p = p;
                ckpt->spmvCalls = res.spmvCalls;
                ckpt->dotCalls = res.dotCalls;
                ckpt->axpyCalls = res.axpyCalls;
                ckpt->valid = true;
                res.relResidual = std::sqrt(rr) / bNorm;
                res.status = SolveStatus::Preempted;
                return res;
            }
            a.apply(p, ap);
            ++res.spmvCalls;
            const double pap = dot(p, ap);
            ++res.dotCalls;
            if (pap <= 0.0) {
                warn("CG: operator not positive definite (p'Ap = ",
                     pap, "); aborting");
                stop = SolveStatus::Breakdown;
                break;
            }
            const double alpha = rr / pap;
            axpy(alpha, p, x);
            axpy(-alpha, ap, r);
            res.axpyCalls += 2;
            const double rrNew = dot(r, r);
            ++res.dotCalls;
            const double beta = rrNew / rr;
            // p = r + beta p
            for (std::size_t i = 0; i < n; ++i)
                p[i] = r[i] + beta * p[i];
            ++res.axpyCalls;
            rr = rrNew;
            ++res.iterations;
            ctrIterations.add();
            gResidual.set(std::sqrt(rr) / bNorm);
        }
    } catch (const CancelledError &e) {
        // x only moves through the serial axpy above, so it holds
        // the last completed iterate regardless of where inside the
        // iteration the stop landed.
        stop = e.status();
        interrupted = true;
    }
    if (interrupted) {
        res.relResidual = (bNorm > 0.0 && rr > 0.0)
                              ? std::sqrt(rr) / bNorm
                              : 1.0;
        res.status = stop;
        return res;
    }
    res.relResidual = std::sqrt(rr) / bNorm;
    res.converged = res.relResidual <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

SolverResult
biCgStab(LinearOperator &a, std::span<const double> b,
         std::span<double> x, const SolverConfig &cfg,
         SolverWorkspace *ws)
{
    checkSystem(a, b, x);
    telemetry::Span span("solver.bicgstab");
    const std::size_t n = b.size();
    SolverResult res;
    res.vectorLength = n;

    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<double> &r = wsp.vec(0, n);
    std::vector<double> &rHat = wsp.vec(1, n);
    std::vector<double> &p = wsp.vec(2, n);
    std::vector<double> &v = wsp.vec(3, n);
    std::vector<double> &s = wsp.vec(4, n);
    std::vector<double> &t = wsp.vec(5, n);
    // Last iterate whose residual was finite: breakdown must return
    // a finite residual and never leave NaN in x, even when the
    // operator itself misbehaves (fault injection).
    std::vector<double> &xSafe = wsp.vec(6, n);

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;
    double bNorm = 0.0;
    double resNorm = 0.0;
    double safeNorm = -1.0; //!< < 0 until xSafe holds an iterate
    try {
        execCheckpoint(cfg.exec);
        a.apply(x, r);
        ++res.spmvCalls;
        for (std::size_t i = 0; i < n; ++i)
            r[i] = b[i] - r[i];
        rHat = r;

        bNorm = norm2(b);
        ++res.dotCalls;
        if (bNorm == 0.0) {
            std::fill(x.begin(), x.end(), 0.0);
            res.converged = true;
            res.status = SolveStatus::Converged;
            return res;
        }

        double rho = 1.0, alpha = 1.0, omega = 1.0;
        std::fill(p.begin(), p.end(), 0.0);
        std::fill(v.begin(), v.end(), 0.0);

        resNorm = norm2(r);
        ++res.dotCalls;
        std::copy(x.begin(), x.end(), xSafe.begin());
        safeNorm = resNorm;
        for (int it = 0; it < cfg.maxIterations; ++it) {
            if (resNorm / bNorm <= cfg.tolerance) {
                res.converged = true;
                break;
            }
            execCheckpoint(cfg.exec);
            const double rhoNew = dot(rHat, r);
            ++res.dotCalls;
            if (breakdown(rhoNew)) {
                warn("BiCG-STAB: breakdown (rho = ", rhoNew,
                     ") at iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            const double beta = (rhoNew / rho) * (alpha / omega);
            if (!std::isfinite(beta)) {
                warn("BiCG-STAB: breakdown (beta not finite) at "
                     "iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            rho = rhoNew;
            // p = r + beta (p - omega v)
            for (std::size_t i = 0; i < n; ++i)
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            res.axpyCalls += 2;
            a.apply(p, v);
            ++res.spmvCalls;
            const double rHatV = dot(rHat, v);
            ++res.dotCalls;
            if (breakdown(rHatV)) {
                warn("BiCG-STAB: breakdown (rHat'v = ", rHatV,
                     ") at iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            alpha = rho / rHatV;
            if (!std::isfinite(alpha)) {
                warn("BiCG-STAB: breakdown (alpha not finite) at "
                     "iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            for (std::size_t i = 0; i < n; ++i)
                s[i] = r[i] - alpha * v[i];
            ++res.axpyCalls;
            const double sNorm = norm2(s);
            ++res.dotCalls;
            if (sNorm / bNorm <= cfg.tolerance) {
                axpy(alpha, p, x);
                ++res.axpyCalls;
                ++res.iterations;
                ctrIterations.add();
                gResidual.set(sNorm / bNorm);
                resNorm = sNorm;
                res.converged = true;
                break;
            }
            a.apply(s, t);
            ++res.spmvCalls;
            const double tt = dot(t, t);
            const double ts = dot(t, s);
            res.dotCalls += 2;
            if (breakdown(tt)) {
                warn("BiCG-STAB: breakdown (t't = ", tt,
                     ") at iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            omega = ts / tt;
            if (!std::isfinite(omega)) {
                warn("BiCG-STAB: breakdown (omega not finite) at "
                     "iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            // x += alpha p + omega s ; r = s - omega t
            for (std::size_t i = 0; i < n; ++i) {
                x[i] += alpha * p[i] + omega * s[i];
                r[i] = s[i] - omega * t[i];
            }
            res.axpyCalls += 3;
            resNorm = norm2(r);
            ++res.dotCalls;
            ++res.iterations;
            ctrIterations.add();
            gResidual.set(resNorm / bNorm);
            if (std::isfinite(resNorm)) {
                std::copy(x.begin(), x.end(), xSafe.begin());
                safeNorm = resNorm;
            }
            if (breakdown(omega)) {
                // omega ~ 0: the next beta would blow up; stop with
                // the update already applied.
                warn("BiCG-STAB: breakdown (omega = ", omega,
                     ") at iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
        }
    } catch (const CancelledError &e) {
        stop = e.status();
        interrupted = true;
    }
    if (!std::isfinite(resNorm) && safeNorm >= 0.0) {
        // The operator injected non-finite values (device faults):
        // report the last finite state instead of propagating NaN.
        std::copy(xSafe.begin(), xSafe.end(), x.begin());
        resNorm = safeNorm;
    }
    if (interrupted) {
        res.relResidual = (bNorm > 0.0 && resNorm > 0.0)
                              ? resNorm / bNorm
                              : 1.0;
        res.status = stop;
        return res;
    }
    res.relResidual = resNorm / bNorm;
    res.converged = res.relResidual <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

SolverResult
biCg(TransposableOperator &a, std::span<const double> b,
     std::span<double> x, const SolverConfig &cfg,
     SolverWorkspace *ws)
{
    checkSystem(a, b, x);
    telemetry::Span span("solver.bicg");
    const std::size_t n = b.size();
    SolverResult res;
    res.vectorLength = n;

    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<double> &r = wsp.vec(0, n);
    std::vector<double> &rT = wsp.vec(1, n);
    std::vector<double> &p = wsp.vec(2, n);
    std::vector<double> &pT = wsp.vec(3, n);
    std::vector<double> &ap = wsp.vec(4, n);
    std::vector<double> &atp = wsp.vec(5, n);

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;
    double bNorm = 0.0;
    double resNorm = 0.0;
    try {
        execCheckpoint(cfg.exec);
        a.apply(x, r);
        ++res.spmvCalls;
        for (std::size_t i = 0; i < n; ++i)
            r[i] = b[i] - r[i];
        rT = r;
        p = r;
        pT = rT;

        bNorm = norm2(b);
        ++res.dotCalls;
        if (bNorm == 0.0) {
            std::fill(x.begin(), x.end(), 0.0);
            res.converged = true;
            res.status = SolveStatus::Converged;
            return res;
        }

        double rho = dot(rT, r);
        ++res.dotCalls;
        resNorm = norm2(r);
        ++res.dotCalls;
        for (int it = 0; it < cfg.maxIterations; ++it) {
            if (resNorm / bNorm <= cfg.tolerance) {
                res.converged = true;
                break;
            }
            execCheckpoint(cfg.exec);
            if (rho == 0.0) {
                warn("BiCG: breakdown (rho = 0) at iteration ", it);
                stop = SolveStatus::Breakdown;
                break;
            }
            a.apply(p, ap);
            a.applyTranspose(pT, atp);
            res.spmvCalls += 2;
            const double pTap = dot(pT, ap);
            ++res.dotCalls;
            if (pTap == 0.0) {
                warn("BiCG: breakdown (pT'Ap = 0) at iteration ",
                     it);
                stop = SolveStatus::Breakdown;
                break;
            }
            const double alpha = rho / pTap;
            axpy(alpha, p, x);
            axpy(-alpha, ap, r);
            axpy(-alpha, atp, rT);
            res.axpyCalls += 3;
            const double rhoNew = dot(rT, r);
            ++res.dotCalls;
            const double beta = rhoNew / rho;
            for (std::size_t i = 0; i < n; ++i) {
                p[i] = r[i] + beta * p[i];
                pT[i] = rT[i] + beta * pT[i];
            }
            res.axpyCalls += 2;
            rho = rhoNew;
            resNorm = norm2(r);
            ++res.dotCalls;
            ++res.iterations;
            ctrIterations.add();
            gResidual.set(resNorm / bNorm);
        }
    } catch (const CancelledError &e) {
        stop = e.status();
        interrupted = true;
    }
    if (interrupted) {
        res.relResidual = (bNorm > 0.0 && resNorm > 0.0)
                              ? resNorm / bNorm
                              : 1.0;
        res.status = stop;
        return res;
    }
    res.relResidual = resNorm / bNorm;
    res.converged = res.relResidual <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

SolverResult
gmres(LinearOperator &a, std::span<const double> b,
      std::span<double> x, const SolverConfig &cfg, int restart,
      SolverWorkspace *ws)
{
    checkSystem(a, b, x);
    telemetry::Span span("solver.gmres");
    if (restart < 1)
        fatal("gmres: restart must be >= 1");
    const std::size_t n = b.size();
    const auto m = static_cast<std::size_t>(restart);
    SolverResult res;
    res.vectorLength = n;

    const double bNorm = norm2(b);
    ++res.dotCalls;
    if (bNorm == 0.0) {
        std::fill(x.begin(), x.end(), 0.0);
        res.converged = true;
        res.status = SolveStatus::Converged;
        return res;
    }

    // The Krylov basis dominates the memory traffic: m+1 n-length
    // vectors plus the work vector come from the workspace so
    // repeated calls (segmented solves) reuse their storage. The
    // O(m^2) Hessenberg factors are small and stay local.
    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<std::vector<double> *> v(m + 1);
    for (std::size_t i = 0; i <= m; ++i)
        v[i] = &wsp.vec(i, n);
    std::vector<double> &w = wsp.vec(m + 1, n);
    std::vector<std::vector<double>> h(m + 1,
                                       std::vector<double>(m, 0.0));
    std::vector<double> cs(m, 0.0), sn(m, 0.0), g(m + 1, 0.0);
    // Triangular-solve coefficients, hoisted out of the restart
    // loop; assign() below never reallocates past the first cycle.
    std::vector<double> y;
    y.reserve(m);

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;
    double resNorm = bNorm;
    // Residual matching the committed x (cycle boundaries only): a
    // mid-cycle stop abandons the partial Krylov basis, so the
    // recurrence residual of uncommitted columns must not be
    // reported for an x that never received them.
    double committed = -1.0;
    try {
    while (res.iterations < cfg.maxIterations) {
        execCheckpoint(cfg.exec);
        // r = b - A x
        a.apply(x, w);
        ++res.spmvCalls;
        for (std::size_t i = 0; i < n; ++i)
            (*v[0])[i] = b[i] - w[i];
        resNorm = norm2(*v[0]);
        ++res.dotCalls;
        committed = resNorm;
        if (resNorm / bNorm <= cfg.tolerance) {
            res.converged = true;
            break;
        }
        for (std::size_t i = 0; i < n; ++i)
            (*v[0])[i] /= resNorm;
        std::fill(g.begin(), g.end(), 0.0);
        g[0] = resNorm;

        std::size_t j = 0;
        bool lucky = false;
        for (; j < m && res.iterations < cfg.maxIterations; ++j) {
            execCheckpoint(cfg.exec);
            a.apply(*v[j], w);
            ++res.spmvCalls;
            // Modified Gram-Schmidt.
            for (std::size_t i = 0; i <= j; ++i) {
                h[i][j] = dot(w, *v[i]);
                ++res.dotCalls;
                axpy(-h[i][j], *v[i], w);
                ++res.axpyCalls;
            }
            h[j + 1][j] = norm2(w);
            ++res.dotCalls;
            if (h[j + 1][j] != 0.0) {
                for (std::size_t i = 0; i < n; ++i)
                    (*v[j + 1])[i] = w[i] / h[j + 1][j];
            } else {
                // Lucky (happy) breakdown: A V_j already lies in
                // span(V_j), so the Krylov subspace is invariant and
                // no further basis vector exists. Fold column j into
                // the least-squares problem and stop the cycle --
                // continuing would feed the next Arnoldi step
                // whatever v[j+1] held from a previous restart cycle.
                lucky = true;
            }
            // Apply accumulated Givens rotations to column j.
            for (std::size_t i = 0; i < j; ++i) {
                const double t1 = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t1;
            }
            const double denom = std::hypot(h[j][j], h[j + 1][j]);
            if (denom == 0.0) {
                cs[j] = 1.0;
                sn[j] = 0.0;
            } else {
                cs[j] = h[j][j] / denom;
                sn[j] = h[j + 1][j] / denom;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] = cs[j] * g[j];
            ++res.iterations;
            resNorm = std::fabs(g[j + 1]);
            ctrIterations.add();
            gResidual.set(resNorm / bNorm);
            if (lucky || resNorm / bNorm <= cfg.tolerance) {
                ++j;
                break;
            }
        }
        // Solve the triangular system and update x.
        y.assign(j, 0.0);
        for (std::size_t i = j; i-- > 0;) {
            double sum = g[i];
            for (std::size_t k = i + 1; k < j; ++k)
                sum -= h[i][k] * y[k];
            if (h[i][i] != 0.0) {
                y[i] = sum / h[i][i];
            } else {
                // Rank-deficient Hessenberg (singular operator): the
                // residual component in g[i] cannot be annihilated.
                if (sum != 0.0) {
                    warn("GMRES: singular Hessenberg pivot h[", i,
                         "][", i, "]; keeping y[", i, "] = 0");
                }
                y[i] = 0.0;
            }
        }
        for (std::size_t i = 0; i < j; ++i) {
            axpy(y[i], *v[i], x);
            ++res.axpyCalls;
        }
        committed = resNorm;
        if (lucky) {
            // The subspace is invariant, so restarting regenerates
            // the same space: x cannot improve further. The rotated
            // recurrence residual |g[j]| is meaningless when the
            // Hessenberg went rank deficient (the zero column left
            // the rotation an identity), so report the true residual
            // of the updated iterate instead.
            a.apply(x, w);
            ++res.spmvCalls;
            for (std::size_t i = 0; i < n; ++i)
                w[i] = b[i] - w[i];
            resNorm = norm2(w);
            ++res.dotCalls;
            break;
        }
        if (resNorm / bNorm <= cfg.tolerance) {
            res.converged = true;
            break;
        }
    }
    } catch (const CancelledError &e) {
        stop = e.status();
        interrupted = true;
    }
    if (interrupted) {
        res.relResidual =
            committed >= 0.0 ? committed / bNorm : 1.0;
        res.status = stop;
        return res;
    }
    res.relResidual = resNorm / bNorm;
    res.converged = res.relResidual <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

} // namespace msc
