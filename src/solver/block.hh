/**
 * @file
 * Block-Krylov solvers over column-major multi-RHS panels.
 *
 * Scientific workloads routinely solve one system against many right
 * hand sides (load cases, time steps, probing vectors). On the
 * accelerator a block method is the natural fit for the batched SpMM
 * path (Accelerator::spmm, LinearOperator::applyBatch): every
 * iteration issues ONE panel apply, so the crossbar programming,
 * contribution tables, and schedules are amortized over all k
 * columns instead of being re-driven per RHS.
 *
 * blockConjugateGradient implements the classic block CG of O'Leary
 * (1980): the search directions of all k columns share one Krylov
 * space, the step and orthogonalization coefficients become k x k
 * systems, and -- beyond the SpMM amortization -- the shared space
 * typically converges in fewer iterations than k independent CG
 * runs. Rank deficiency of the RHS block (linearly dependent
 * columns) surfaces as SolveStatus::Breakdown, the standard behavior
 * of an undeflated block method; callers fall back to independent
 * solves (ResilientSolver::solveBatch) for such panels.
 *
 * Determinism contract: all reductions (k x k Gram matrices, the
 * small Gaussian solves, the panel updates) run serially on the
 * solve thread; the only fanned-out work is the operator's own
 * applyBatch, which is bit-deterministic for any lane count. Block
 * trajectories are therefore bit-identical across thread counts.
 */

#ifndef MSC_SOLVER_BLOCK_HH
#define MSC_SOLVER_BLOCK_HH

#include <vector>

#include "solver/solver.hh"

namespace msc {

/** Result of a block (multi-RHS) solve. */
struct BlockSolverResult
{
    bool converged = false; //!< every column met the tolerance
    int iterations = 0;     //!< block iterations (each = one SpMM)
    /** Why the solve ended. Cancelled/DeadlineExceeded results hold
     *  the last completed block iterate in X, never a partial
     *  update. */
    SolveStatus status = SolveStatus::MaxIterations;
    /** ||b_c - A x_c|| / ||b_c|| per column at exit. */
    std::vector<double> relResiduals;
    /** Kernel-call counts for the platform timing models. One
     *  spmmCall covers the whole k-column panel. */
    std::uint64_t spmmCalls = 0;
    std::uint64_t dotCalls = 0;
    std::uint64_t axpyCalls = 0;
    std::uint64_t vectorLength = 0;
    unsigned columns = 0;

    /** Largest per-column relative residual at exit. */
    double
    worstResidual() const
    {
        double worst = 0.0;
        for (double r : relResiduals)
            worst = r > worst ? r : worst;
        return worst;
    }
};

/**
 * Block conjugate gradient for symmetric positive definite A over a
 * column-major k-column panel: solves A X_c = B_c for all c at once.
 *
 * @param B   column-major n x k right-hand-side panel
 * @param X   column-major n x k iterate panel (initial guess in,
 *            solution out)
 * @param ws  optional workspace reusing the panel-sized scratch
 *            across calls (results are identical either way)
 *
 * Exactly-zero columns of B are deflated upfront (their X column is
 * zeroed and reported converged) so they cannot make the block Gram
 * matrices singular; a rank-deficient residual block among the live
 * columns stops with SolveStatus::Breakdown. cfg.exec is polled once
 * per block iteration and forwarded to the operator for
 * per-block-batch polls.
 */
BlockSolverResult blockConjugateGradient(
    LinearOperator &a, std::span<const double> B, std::span<double> X,
    unsigned k, const SolverConfig &cfg = {},
    SolverWorkspace *ws = nullptr);

} // namespace msc

#endif // MSC_SOLVER_BLOCK_HH
