/**
 * @file
 * Block-Krylov solvers over column-major multi-RHS panels.
 *
 * Scientific workloads routinely solve one system against many right
 * hand sides (load cases, time steps, probing vectors). On the
 * accelerator a block method is the natural fit for the batched SpMM
 * path (Accelerator::spmm, LinearOperator::applyBatch): every
 * iteration issues ONE panel apply, so the crossbar programming,
 * contribution tables, and schedules are amortized over all k
 * columns instead of being re-driven per RHS.
 *
 * blockConjugateGradient implements the classic block CG of O'Leary
 * (1980): the search directions of all k columns share one Krylov
 * space, the step and orthogonalization coefficients become k x k
 * systems, and -- beyond the SpMM amortization -- the shared space
 * typically converges in fewer iterations than k independent CG
 * runs. Rank deficiency of the RHS block (linearly dependent
 * columns) surfaces as SolveStatus::Breakdown, the standard behavior
 * of an undeflated block method; callers fall back to independent
 * solves (ResilientSolver::solveBatch) for such panels.
 *
 * Determinism contract: all reductions (k x k Gram matrices, the
 * small Gaussian solves, the panel updates) run serially on the
 * solve thread; the only fanned-out work is the operator's own
 * applyBatch, which is bit-deterministic for any lane count. Block
 * trajectories are therefore bit-identical across thread counts.
 */

#ifndef MSC_SOLVER_BLOCK_HH
#define MSC_SOLVER_BLOCK_HH

#include <vector>

#include "solver/solver.hh"

namespace msc {

/** Result of a block (multi-RHS) solve. */
struct BlockSolverResult
{
    bool converged = false; //!< every column met the tolerance
    int iterations = 0;     //!< block iterations (each = one SpMM)
    /** Why the solve ended. Cancelled/DeadlineExceeded results hold
     *  the last completed block iterate in X, never a partial
     *  update. */
    SolveStatus status = SolveStatus::MaxIterations;
    /** ||b_c - A x_c|| / ||b_c|| per column at exit. */
    std::vector<double> relResiduals;
    /** Kernel-call counts for the platform timing models. One
     *  spmmCall covers the whole k-column panel. */
    std::uint64_t spmmCalls = 0;
    std::uint64_t dotCalls = 0;
    std::uint64_t axpyCalls = 0;
    std::uint64_t vectorLength = 0;
    unsigned columns = 0;

    /** Largest per-column relative residual at exit. */
    double
    worstResidual() const
    {
        double worst = 0.0;
        for (double r : relResiduals)
            worst = r > worst ? r : worst;
        return worst;
    }
};

/**
 * Block conjugate gradient for symmetric positive definite A over a
 * column-major k-column panel: solves A X_c = B_c for all c at once.
 *
 * @param B   column-major n x k right-hand-side panel
 * @param X   column-major n x k iterate panel (initial guess in,
 *            solution out)
 * @param ws  optional workspace reusing the panel-sized scratch
 *            across calls (results are identical either way)
 *
 * Exactly-zero columns of B are deflated upfront (their X column is
 * zeroed and reported converged) so they cannot make the block Gram
 * matrices singular; a rank-deficient residual block among the live
 * columns stops with SolveStatus::Breakdown. cfg.exec is polled once
 * per block iteration and forwarded to the operator for
 * per-block-batch polls.
 */
BlockSolverResult blockConjugateGradient(
    LinearOperator &a, std::span<const double> B, std::span<double> X,
    unsigned k, const SolverConfig &cfg = {},
    SolverWorkspace *ws = nullptr);

/** Per-column controls of a lockstep panel solve. */
struct LockstepColumnControl
{
    double tolerance = 1e-10;
    int maxIterations = 5000;
    /** Optional per-column execution context, polled at the same
     *  points standalone CG polls cfg.exec (before the initial
     *  apply and once per iteration). Not owned. */
    const ExecContext *exec = nullptr;
};

/**
 * Lockstep conjugate gradient: k INDEPENDENT CG recurrences advanced
 * side by side, one panel applyBatch per iteration.
 *
 * Unlike blockConjugateGradient (whose columns share one Krylov
 * space and therefore follow different trajectories than standalone
 * CG), every column here runs the exact scalar recurrence of
 * conjugateGradient() -- same dot/axpy kernels, same order -- and
 * only the operator applies are batched. Since applyBatch is pinned
 * bitwise to the k sequential applies (the PR 7 contract), each
 * column's iterate sequence, and hence its result, is bit-identical
 * to a standalone conjugateGradient() call on that column alone.
 * This is what lets the service runtime coalesce same-operator
 * requests for the panel-amortization win without changing a single
 * answer bit.
 *
 * Columns terminate individually (convergence, breakdown, their own
 * maxIterations, or their own exec context firing) and simply leave
 * the lockstep set; remaining columns are unaffected -- in
 * particular, cancelling one request of a coalesced batch leaves
 * its siblings' results bitwise unchanged.
 *
 * @param ctl  per-column controls; when shorter than k (or empty)
 *             the last entry (or a default) applies to the rest
 * @return one SolverResult per column, exactly what standalone CG
 *         would have produced (iteration counts, statuses, kernel
 *         tallies; operator-level exec polls excepted)
 */
std::vector<SolverResult> lockstepConjugateGradient(
    LinearOperator &a, std::span<const double> B, std::span<double> X,
    unsigned k, std::span<const LockstepColumnControl> ctl = {},
    SolverWorkspace *ws = nullptr);

} // namespace msc

#endif // MSC_SOLVER_BLOCK_HH
