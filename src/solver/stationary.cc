#include "solver/stationary.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace msc {

namespace {

std::vector<double>
diagonalOf(const Csr &a)
{
    if (a.rows() != a.cols())
        fatal("stationary solver: matrix must be square");
    std::vector<double> d(static_cast<std::size_t>(a.rows()), 0.0);
    for (std::int32_t r = 0; r < a.rows(); ++r) {
        const auto cols = a.rowCols(r);
        const auto vals = a.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == r)
                d[static_cast<std::size_t>(r)] = vals[k];
        }
        if (d[static_cast<std::size_t>(r)] == 0.0)
            fatal("stationary solver: zero diagonal at row ", r);
    }
    return d;
}

double
relResidualNorm(const Csr &a, std::span<const double> b,
                std::span<const double> x, double bNorm,
                std::vector<double> &scratch)
{
    a.spmv(x, scratch);
    double acc = 0.0;
    for (std::size_t i = 0; i < b.size(); ++i) {
        const double r = b[i] - scratch[i];
        acc += r * r;
    }
    return std::sqrt(acc) / bNorm;
}

} // namespace

SolverResult
jacobiIteration(const Csr &a, std::span<const double> b,
                std::span<double> x, const SolverConfig &cfg)
{
    const auto d = diagonalOf(a);
    if (b.size() != d.size() || x.size() != d.size())
        fatal("jacobiIteration: dimension mismatch");
    SolverResult res;
    res.vectorLength = b.size();
    const double bNorm = norm2(b);
    ++res.dotCalls;
    if (bNorm == 0.0) {
        std::fill(x.begin(), x.end(), 0.0);
        res.converged = true;
        res.status = SolveStatus::Converged;
        return res;
    }

    std::vector<double> ax(b.size());
    for (int it = 0; it < cfg.maxIterations; ++it) {
        // Polled before the sweep: a stop leaves x at the last
        // completed iteration, never mid-update.
        if (execShouldStop(cfg.exec)) {
            res.status = cfg.exec->stopStatus();
            if (res.iterations == 0)
                res.relResidual = 1.0;
            return res;
        }
        a.spmv(x, ax);
        ++res.spmvCalls;
        double rNorm = 0.0;
        for (std::size_t i = 0; i < b.size(); ++i) {
            const double r = b[i] - ax[i];
            rNorm += r * r;
            x[i] += r / d[i];
        }
        ++res.axpyCalls;
        ++res.iterations;
        res.relResidual = std::sqrt(rNorm) / bNorm;
        ++res.dotCalls;
        if (res.relResidual <= cfg.tolerance) {
            res.converged = true;
            break;
        }
    }
    res.status = res.converged ? SolveStatus::Converged
                               : SolveStatus::MaxIterations;
    return res;
}

SolverResult
sor(const Csr &a, std::span<const double> b, std::span<double> x,
    double omega, const SolverConfig &cfg)
{
    if (omega <= 0.0 || omega >= 2.0)
        fatal("sor: omega must lie in (0, 2), got ", omega);
    const auto d = diagonalOf(a);
    if (b.size() != d.size() || x.size() != d.size())
        fatal("sor: dimension mismatch");
    SolverResult res;
    res.vectorLength = b.size();
    const double bNorm = norm2(b);
    ++res.dotCalls;
    if (bNorm == 0.0) {
        std::fill(x.begin(), x.end(), 0.0);
        res.converged = true;
        res.status = SolveStatus::Converged;
        return res;
    }

    std::vector<double> scratch(b.size());
    for (int it = 0; it < cfg.maxIterations; ++it) {
        if (execShouldStop(cfg.exec)) {
            res.status = cfg.exec->stopStatus();
            if (res.iterations == 0)
                res.relResidual = 1.0;
            return res;
        }
        // In-place forward sweep.
        for (std::int32_t i = 0; i < a.rows(); ++i) {
            const auto cols = a.rowCols(i);
            const auto vals = a.rowVals(i);
            double acc = b[static_cast<std::size_t>(i)];
            for (std::size_t k = 0; k < cols.size(); ++k) {
                if (cols[k] != i)
                    acc -= vals[k] *
                           x[static_cast<std::size_t>(cols[k])];
            }
            const double gs = acc / d[static_cast<std::size_t>(i)];
            x[static_cast<std::size_t>(i)] =
                (1.0 - omega) * x[static_cast<std::size_t>(i)] +
                omega * gs;
        }
        ++res.spmvCalls; // one sweep touches every nonzero once
        ++res.iterations;
        res.relResidual =
            relResidualNorm(a, b, x, bNorm, scratch);
        ++res.dotCalls;
        if (res.relResidual <= cfg.tolerance) {
            res.converged = true;
            break;
        }
    }
    res.status = res.converged ? SolveStatus::Converged
                               : SolveStatus::MaxIterations;
    return res;
}

SolverResult
gaussSeidel(const Csr &a, std::span<const double> b,
            std::span<double> x, const SolverConfig &cfg)
{
    return sor(a, b, x, 1.0, cfg);
}

double
jacobiSpectralRadius(const Csr &a, int iterations,
                     std::uint64_t seed)
{
    const auto d = diagonalOf(a);
    const std::size_t n = d.size();
    Rng rng(seed);
    std::vector<double> v(n), w(n);
    for (auto &val : v)
        val = rng.uniform(-1.0, 1.0);
    double norm = norm2(v);
    for (auto &val : v)
        val /= norm;

    double lambda = 0.0;
    for (int it = 0; it < iterations; ++it) {
        // w = D^-1 (L + U) v = D^-1 (A v - D v).
        a.spmv(v, w);
        for (std::size_t i = 0; i < n; ++i)
            w[i] = (w[i] - d[i] * v[i]) / d[i];
        lambda = norm2(w);
        if (lambda == 0.0)
            return 0.0;
        for (std::size_t i = 0; i < n; ++i)
            v[i] = w[i] / lambda;
    }
    return lambda;
}

} // namespace msc
