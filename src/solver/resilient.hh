/**
 * @file
 * Self-healing solver runtime: detect -> correct -> reprogram ->
 * degrade.
 *
 * The plain Krylov solvers (solver.hh) assume a faithful operator;
 * on a memristive accelerator the operator itself can fail mid-solve
 * (stuck cells, ADC upsets, drift, dead crossbars -- src/fault).
 * ResilientSolver runs any of the mainstream methods in bounded
 * segments, monitors the residual stream between segments, and walks
 * a bounded escalation ladder when something looks wrong:
 *
 *  1. detect   -- NaN/Inf in the residual or iterate, divergence
 *                 (residual blowup vs the best seen), or stagnation
 *                 (no progress over several segments);
 *  2. correct  -- AN-readback scrub of the mapped blocks to locate
 *                 damaged hardware (RecoverableOperator::scrub);
 *  3. reprogram-- rewrite the offending cluster (spare-row remap
 *                 clears stuck cells, a fresh write clears drift);
 *  4. restart  -- restore the iterate from the last good checkpoint
 *                 and rebuild the Krylov space from there, instead
 *                 of from scratch;
 *  5. degrade  -- blocks whose hardware cannot be healed (dead
 *                 crossbars, saturated ADC columns) fall back to the
 *                 exact digital CSR path, permanently.
 *
 * Every action is recorded in RecoveryStats (surfaced through
 * SolverResult), and the whole run is deterministic given the fault
 * campaign seed: two identical configs produce identical stats and
 * iteration counts.
 *
 * Execution robustness (runtime/exec_context.hh): the escalation
 * ladder draws from a bounded RetryBudget (maxRecoveries attempts
 * with seeded exponential backoff, recorded but never slept on);
 * exhausting it degrades every block and stamps the result
 * SolveStatus::Degraded. Transient execution faults -- bad_alloc
 * from the workspace, a worker-task exception surfaced by the pool
 * -- are absorbed as one more ladder rung (checkpoint restore +
 * scrub), while cancellation/deadline stops propagate as structured
 * status and programming errors (PanicError) still escape.
 */

#ifndef MSC_SOLVER_RESILIENT_HH
#define MSC_SOLVER_RESILIENT_HH

#include <vector>

#include "solver/solver.hh"

namespace msc {

/**
 * A block-mapped operator the runtime can health-check and repair.
 * Implemented by FaultyAccelOperator (fault/faulty_operator.hh); any
 * hardware-backed operator with per-block maintenance fits.
 */
class RecoverableOperator : public LinearOperator
{
  public:
    /** Number of independently mapped (repairable) blocks. */
    virtual std::size_t blockCount() const = 0;

    /**
     * AN-readback scrub: scan the mapped blocks for persistent
     * damage and return the suspect block indices (ascending).
     * Transient upsets leave no trace and are not reported.
     */
    virtual std::vector<std::size_t> scrub() = 0;

    /**
     * Rewrite one block's crossbars (clears stuck cells via spare
     * remap, resets drift). Returns false when the fault is in
     * unrepairable periphery (dead crossbar, saturated ADC column).
     */
    virtual bool reprogram(std::size_t block) = 0;

    /** Permanently route one block through the exact CSR path. */
    virtual void degrade(std::size_t block) = 0;

    virtual bool isDegraded(std::size_t block) const = 0;
};

/** Knobs of the escalation ladder. */
struct RecoveryPolicy
{
    /** Iterations per solver segment; the checkpoint cadence. */
    int checkpointInterval = 25;
    /** Total detection events tolerated before the runtime degrades
     *  every remaining block to the exact path. */
    int maxRecoveries = 10;
    /** Rewrites attempted per block before it is degraded. */
    int maxReprogramsPerBlock = 2;
    /** A segment must shrink the residual below this factor or it
     *  counts toward stagnation. */
    double stagnationTol = 0.999;
    /** Consecutive non-improving segments that trigger escalation. */
    int stagnationSegments = 4;
    /** Residual blowup over the best seen that counts as divergence. */
    double divergenceFactor = 1e4;
    /** Background scrub cadence (segments); 0 disables. Dead
     *  hardware that only *silences* contributions may never perturb
     *  the residual stream -- periodic scrubbing catches it. */
    int scrubEverySegments = 8;
    /** Jitter seed of the retry budget (maxRecoveries attempts). */
    std::uint64_t retrySeed = 1;
    /** Exponential backoff base / cap handed to the RetryBudget.
     *  Recorded in RecoveryStats::backoffNanos, never slept on. */
    std::chrono::nanoseconds backoffBase =
        std::chrono::microseconds(100);
    std::chrono::nanoseconds backoffCap =
        std::chrono::milliseconds(100);
};

/**
 * Resilient wrapper around conjugateGradient / biCgStab / gmres.
 * solve() never propagates NaN into the caller's x: on detection the
 * iterate is restored from the last good checkpoint.
 */
class ResilientSolver
{
  public:
    explicit ResilientSolver(RecoverableOperator &op,
                             SolverKind kind = SolverKind::Cg,
                             const SolverConfig &config = {},
                             const RecoveryPolicy &policy = {});

    /** GMRES restart depth when kind == Gmres. */
    int gmresRestart = 30;

    SolverResult solve(std::span<const double> b,
                       std::span<double> x);

    /**
     * Batched independent-RHS campaign over column-major n x k
     * panels: runs solve() per column in column order, reusing the
     * member workspace (and the operator's accumulated degradation
     * state) across columns. cfg.exec is polled at column
     * boundaries: once a stop fires, the remaining columns are
     * stamped with the stop status and their X columns are left
     * untouched. Returns one SolverResult per column.
     */
    std::vector<SolverResult> solveBatch(std::span<const double> B,
                                         std::span<double> X,
                                         unsigned k);

  private:
    SolverResult runSegment(std::span<const double> b,
                            std::span<double> x, int iters);

    RecoverableOperator &op;
    SolverKind kind;
    SolverConfig cfg;
    RecoveryPolicy policy;
    /** Scratch vectors shared by every segment of a solve: the
     *  segmented loop would otherwise reallocate them per segment. */
    SolverWorkspace workspace;
};

} // namespace msc

#endif // MSC_SOLVER_RESILIENT_HH
