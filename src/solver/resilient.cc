#include "solver/resilient.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

// Mirrors of the RecoveryStats tallies, so a fault campaign's
// detect -> correct -> reprogram -> degrade ladder shows up in the
// exported metrics alongside the solver and accelerator counters.
constinit telemetry::Counter ctrSegments{"resilient.segments"};
constinit telemetry::Counter ctrScrubs{"resilient.scrubs"};
constinit telemetry::Counter ctrReprograms{"resilient.reprograms"};
constinit telemetry::Counter
    ctrReprogramFailures{"resilient.reprogram_failures"};
constinit telemetry::Counter
    ctrRestarts{"resilient.checkpoint_restarts"};
constinit telemetry::Counter ctrFallbacks{"resilient.fallbacks"};
constinit telemetry::Counter ctrNan{"resilient.nan_events"};
constinit telemetry::Counter
    ctrDivergence{"resilient.divergence_events"};
constinit telemetry::Counter
    ctrStagnation{"resilient.stagnation_events"};

bool
allFinite(std::span<const double> v)
{
    for (double x : v) {
        if (!std::isfinite(x))
            return false;
    }
    return true;
}

} // namespace

ResilientSolver::ResilientSolver(RecoverableOperator &oper,
                                 SolverKind solverKind,
                                 const SolverConfig &config,
                                 const RecoveryPolicy &recovery)
    : op(oper), kind(solverKind), cfg(config), policy(recovery)
{
    if (policy.checkpointInterval < 1)
        fatal("ResilientSolver: checkpointInterval must be >= 1");
    // Auto is an experiment-level concept (core/experiment); at this
    // layer default it to the general-purpose method.
    if (kind == SolverKind::Auto)
        kind = SolverKind::BiCgStab;
}

SolverResult
ResilientSolver::runSegment(std::span<const double> b,
                            std::span<double> x, int iters)
{
    SolverConfig seg = cfg;
    seg.maxIterations = iters;
    switch (kind) {
      case SolverKind::Auto: // mapped in the constructor
      case SolverKind::BiCgStab:
        return biCgStab(op, b, x, seg, &workspace);
      case SolverKind::Cg:
        return conjugateGradient(op, b, x, seg, &workspace);
      case SolverKind::Gmres:
        return gmres(op, b, x, seg,
                     std::min(gmresRestart, iters), &workspace);
    }
    fatal("ResilientSolver: unreachable solver kind");
}

SolverResult
ResilientSolver::solve(std::span<const double> b, std::span<double> x)
{
    if (b.size() != x.size() ||
        b.size() != static_cast<std::size_t>(op.rows()))
        fatal("ResilientSolver: dimension mismatch");

    telemetry::Span solveSpan("resilient.solve");
    SolverResult total;
    total.vectorLength = b.size();
    RecoveryStats &rec = total.recovery;

    std::vector<double> xGood(x.begin(), x.end());
    if (!allFinite(xGood))
        fatal("ResilientSolver: initial guess is not finite");

    std::vector<int> repairs(op.blockCount(), 0);
    const double inf = std::numeric_limits<double>::infinity();
    double bestRes = inf;  //!< best finite residual seen
    double prevRes = inf;  //!< previous segment's residual
    double lastRes = inf;  //!< last finite residual
    int stagnant = 0;
    int itersUsed = 0;
    RetryBudget budget(policy.maxRecoveries, policy.retrySeed,
                       policy.backoffBase, policy.backoffCap);
    bool degradedAll = false; //!< budget exhausted: all-exact rung
    bool interrupted = false; //!< cancel / deadline stop
    SolveStatus stopStatus = SolveStatus::Cancelled;
    SolveStatus lastSegStatus = SolveStatus::MaxIterations;

    // Reprogram-or-degrade every suspect block; returns true when
    // any maintenance action was taken.
    const auto repairSuspects =
        [&](const std::vector<std::size_t> &suspects) {
            bool acted = false;
            for (std::size_t k : suspects) {
                if (op.isDegraded(k))
                    continue;
                if (repairs[k] < policy.maxReprogramsPerBlock) {
                    ++repairs[k];
                    ++rec.reprograms;
                    ctrReprograms.add();
                    if (!op.reprogram(k)) {
                        ++rec.reprogramFailures;
                        ctrReprogramFailures.add();
                        op.degrade(k);
                        ++rec.fallbacks;
                        ctrFallbacks.add();
                    }
                } else {
                    // Healed twice and damaged again: stop trusting
                    // the hardware for this block.
                    op.degrade(k);
                    ++rec.fallbacks;
                    ctrFallbacks.add();
                }
                acted = true;
            }
            return acted;
        };

    // One rung of the ladder after a detection event. @p restore
    // rewinds the iterate to the last good checkpoint first.
    const auto escalate = [&](bool restore) {
        telemetry::Span span("resilient.escalate");
        if (restore) {
            std::copy(xGood.begin(), xGood.end(), x.begin());
            ++rec.checkpointRestarts;
            ctrRestarts.add();
        }
        ++rec.scrubs;
        ctrScrubs.add();
        repairSuspects(op.scrub());
        budget.tryAcquire();
        if (budget.exhausted()) {
            // Final rung: graceful degradation of everything still
            // mapped; the solve finishes on exact arithmetic.
            for (std::size_t k = 0; k < op.blockCount(); ++k) {
                if (!op.isDegraded(k)) {
                    op.degrade(k);
                    ++rec.fallbacks;
                    ctrFallbacks.add();
                }
            }
            degradedAll = true;
        }
        stagnant = 0;
        prevRes = inf;
    };

    while (itersUsed < cfg.maxIterations) {
        // Poll before each segment, not only inside it: a segment
        // that dies before the inner solver's first checkpoint (the
        // workspace grant can throw under memory pressure) would
        // otherwise spin the whole escalation ladder with an armed
        // cancel or expired deadline ignored.
        if (execShouldStop(cfg.exec)) {
            stopStatus = cfg.exec->stopStatus();
            interrupted = true;
            break;
        }
        const int segIters = std::min(policy.checkpointInterval,
                                      cfg.maxIterations - itersUsed);
        SolverResult seg;
        bool segFailed = false;
        try {
            telemetry::Span segSpan("resilient.segment");
            seg = runSegment(b, x, segIters);
        } catch (const CancelledError &e) {
            // The inner solvers translate cancellation themselves;
            // this only catches a stop that fired outside a solve
            // (e.g. inside scrub-driven operator work).
            stopStatus = e.status();
            interrupted = true;
            break;
        } catch (const std::bad_alloc &) {
            ++rec.allocFailures;
            segFailed = true;
        } catch (const PanicError &) {
            throw; // programming error: never absorb
        } catch (const FatalError &) {
            throw; // config/usage error: never absorb
        } catch (const std::exception &e) {
            // A worker task died (chaos injection, transient device
            // library failure). The pool already quiesced the job;
            // treat it like any other detection event.
            ++rec.workerFaults;
            warn("ResilientSolver: segment failed (", e.what(),
                 "); retrying");
            segFailed = true;
        }
        ++rec.segments;
        ctrSegments.add();
        if (segFailed) {
            // The segment died mid-flight: x may hold a partial
            // initial residual state, so rewind to the checkpoint
            // before burning a retry attempt on the ladder.
            itersUsed += 1;
            std::copy(xGood.begin(), xGood.end(), x.begin());
            ++rec.checkpointRestarts;
            ctrRestarts.add();
            if (degradedAll) {
                // Already on the all-exact rung and still failing:
                // retrying cannot help.
                break;
            }
            escalate(false);
            continue;
        }
        lastSegStatus = seg.status;
        // Breakdown segments can report zero iterations; always
        // charge at least one so the loop is bounded.
        itersUsed += std::max(1, seg.iterations);
        total.spmvCalls += seg.spmvCalls;
        total.dotCalls += seg.dotCalls;
        total.axpyCalls += seg.axpyCalls;
        total.precondApplies += seg.precondApplies;
        if (seg.status == SolveStatus::Cancelled ||
            seg.status == SolveStatus::DeadlineExceeded) {
            stopStatus = seg.status;
            interrupted = true;
            break;
        }

        const double res = seg.relResidual;
        if (!std::isfinite(res) || !allFinite(x)) {
            ++rec.nanEvents;
            ctrNan.add();
            escalate(true);
            continue;
        }
        lastRes = res;

        if (seg.converged) {
            // Trust but verify: a residual computed by damaged
            // hardware can look converged. Scrub once; only a clean
            // scan makes the result final.
            ++rec.scrubs;
            ctrScrubs.add();
            const auto suspects = op.scrub();
            if (suspects.empty()) {
                total.converged = true;
                break;
            }
            repairSuspects(suspects);
            continue;
        }

        if (res > policy.divergenceFactor * bestRes) {
            ++rec.divergenceEvents;
            ctrDivergence.add();
            escalate(true);
            continue;
        }
        if (res > policy.stagnationTol * prevRes) {
            if (++stagnant >= policy.stagnationSegments) {
                ++rec.stagnationEvents;
                ctrStagnation.add();
                // Keep the iterate unless it regressed past the
                // checkpoint.
                escalate(res > bestRes);
                continue;
            }
        } else {
            stagnant = 0;
        }
        if (res < bestRes) {
            bestRes = res;
            std::copy(x.begin(), x.end(), xGood.begin());
        }
        prevRes = res;

        // Background scrub: silent faults (a dead crossbar simply
        // omits its contribution) may never perturb the residual
        // stream; catch them on a fixed cadence.
        if (policy.scrubEverySegments > 0 &&
            rec.segments %
                    static_cast<std::uint64_t>(
                        policy.scrubEverySegments) ==
                0) {
            ++rec.scrubs;
            ctrScrubs.add();
            repairSuspects(op.scrub());
        }
    }

    if (!allFinite(x))
        std::copy(xGood.begin(), xGood.end(), x.begin());
    total.iterations = itersUsed;
    total.relResidual = std::isfinite(lastRes) ? lastRes : bestRes;
    if (!std::isfinite(total.relResidual))
        total.relResidual = 1.0; // never report NaN/Inf upward
    if (!total.converged && !interrupted)
        total.converged = total.relResidual <= cfg.tolerance;
    // Structured terminal status. A stop request wins; Degraded
    // outranks Converged so callers see the solve ran on degraded
    // hardware even when it still met the tolerance.
    if (interrupted) {
        total.status = stopStatus;
    } else if (degradedAll) {
        total.status = SolveStatus::Degraded;
    } else if (total.converged) {
        total.status = SolveStatus::Converged;
    } else if (lastSegStatus == SolveStatus::Breakdown) {
        total.status = SolveStatus::Breakdown;
    } else {
        total.status = SolveStatus::MaxIterations;
    }
    rec.retryAttempts =
        static_cast<std::uint64_t>(budget.attemptsUsed());
    rec.backoffNanos =
        static_cast<std::uint64_t>(budget.totalDelay().count());
    for (std::size_t k = 0; k < op.blockCount(); ++k)
        rec.degradedBlocks += op.isDegraded(k) ? 1 : 0;
    return total;
}

std::vector<SolverResult>
ResilientSolver::solveBatch(std::span<const double> B,
                            std::span<double> X, unsigned k)
{
    const auto n = static_cast<std::size_t>(op.rows());
    if (k == 0)
        fatal("ResilientSolver::solveBatch: empty batch");
    if (B.size() != n * k || X.size() != n * k)
        fatal("ResilientSolver::solveBatch: panel size mismatch");

    telemetry::Span span("resilient.solve_batch");
    std::vector<SolverResult> results;
    results.reserve(k);
    for (unsigned c = 0; c < k; ++c) {
        if (execShouldStop(cfg.exec)) {
            // Stamp the remaining columns without touching their X:
            // a stop request mid-campaign abandons the queue, it
            // does not zero half-initialized iterates.
            SolverResult stopped;
            stopped.vectorLength = n;
            stopped.relResidual = 1.0;
            stopped.status = cfg.exec->stopStatus();
            while (results.size() < k)
                results.push_back(stopped);
            break;
        }
        results.push_back(
            solve(B.subspan(c * n, n), X.subspan(c * n, n)));
    }
    return results;
}

} // namespace msc
