#include "solver/block.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

// One tick per block iteration (each covers all k columns) + the
// worst per-column residual as a gauge.
constinit telemetry::Counter
    ctrBlockIterations{"solver.block_iterations"};
constinit telemetry::Gauge gBlockResidual{"solver.block_residual"};

/** RAII context binding, mirroring the scalar solvers (solver.cc):
 *  attach cfg.exec to the operator for the duration of the solve so
 *  block-batched operators poll it mid-apply. */
class ExecBinding
{
  public:
    ExecBinding(LinearOperator &op, const ExecContext *ctx)
        : a(op), bound(ctx != nullptr)
    {
        if (bound)
            a.setExecContext(ctx);
    }

    ~ExecBinding()
    {
        if (bound)
            a.setExecContext(nullptr);
    }

    ExecBinding(const ExecBinding &) = delete;
    ExecBinding &operator=(const ExecBinding &) = delete;

  private:
    LinearOperator &a;
    bool bound;
};

/** Breakdown guard on an elimination pivot (see solver.cc). */
bool
breakdownPivot(double pivot)
{
    return !std::isfinite(pivot) || std::fabs(pivot) < 1e-300;
}

/**
 * Solve S A = RHS for the ka x ka coefficient matrix A by Gaussian
 * elimination with partial pivoting. S and rhs (both row-major) are
 * overwritten; the solution lands in rhs. Returns false when a
 * pivot is breakdown-grade (rank-deficient block).
 */
bool
solveSmall(std::vector<double> &s, std::vector<double> &rhs,
           unsigned ka)
{
    for (unsigned col = 0; col < ka; ++col) {
        unsigned piv = col;
        double best = std::fabs(s[col * ka + col]);
        for (unsigned r = col + 1; r < ka; ++r) {
            const double v = std::fabs(s[r * ka + col]);
            if (v > best) {
                best = v;
                piv = r;
            }
        }
        if (breakdownPivot(s[piv * ka + col]))
            return false;
        if (piv != col) {
            for (unsigned j = 0; j < ka; ++j) {
                std::swap(s[col * ka + j], s[piv * ka + j]);
                std::swap(rhs[col * ka + j], rhs[piv * ka + j]);
            }
        }
        const double d = s[col * ka + col];
        for (unsigned r = col + 1; r < ka; ++r) {
            const double f = s[r * ka + col] / d;
            if (f == 0.0)
                continue;
            for (unsigned j = col; j < ka; ++j)
                s[r * ka + j] -= f * s[col * ka + j];
            for (unsigned j = 0; j < ka; ++j)
                rhs[r * ka + j] -= f * rhs[col * ka + j];
        }
    }
    for (unsigned col = ka; col-- > 0;) {
        const double d = s[col * ka + col];
        for (unsigned j = 0; j < ka; ++j) {
            double sum = rhs[col * ka + j];
            for (unsigned r = col + 1; r < ka; ++r)
                sum -= s[col * ka + r] * rhs[r * ka + j];
            rhs[col * ka + j] = sum / d;
        }
    }
    return true;
}

/** M[i][j] = U_i . V_j over n-length panel columns (row-major M). */
void
gramMatrix(const double *u, const double *v, std::size_t n,
           unsigned ka, std::vector<double> &m)
{
    m.resize(static_cast<std::size_t>(ka) * ka);
    for (unsigned i = 0; i < ka; ++i) {
        for (unsigned j = 0; j < ka; ++j) {
            m[static_cast<std::size_t>(i) * ka + j] =
                dot(std::span<const double>(u + i * n, n),
                    std::span<const double>(v + j * n, n));
        }
    }
}

/** Y_c += sign * sum_j Z_j M[j][c] (column-major panels). */
void
panelMulAdd(double *y, const double *z, const double *m,
            std::size_t n, unsigned ka, double sign)
{
    for (unsigned c = 0; c < ka; ++c) {
        double *yc = y + static_cast<std::size_t>(c) * n;
        for (unsigned j = 0; j < ka; ++j) {
            const double f =
                sign * m[static_cast<std::size_t>(j) * ka + c];
            if (f == 0.0)
                continue;
            const double *zj = z + static_cast<std::size_t>(j) * n;
            for (std::size_t i = 0; i < n; ++i)
                yc[i] += f * zj[i];
        }
    }
}

} // namespace

BlockSolverResult
blockConjugateGradient(LinearOperator &a, std::span<const double> B,
                       std::span<double> X, unsigned k,
                       const SolverConfig &cfg, SolverWorkspace *ws)
{
    if (a.rows() != a.cols())
        fatal("blockCG: operator must be square");
    const auto n = static_cast<std::size_t>(a.rows());
    if (k == 0)
        fatal("blockCG: empty batch");
    if (B.size() != n * k || X.size() != n * k)
        fatal("blockCG: panel size mismatch");

    telemetry::Span span("solver.block_cg");
    BlockSolverResult res;
    res.vectorLength = n;
    res.columns = k;
    res.relResiduals.assign(k, 0.0);

    // Deflate exactly-zero RHS columns upfront: their solution is
    // zero, and keeping them in the block would make every R'R Gram
    // matrix singular.
    std::vector<unsigned> live;
    std::vector<double> bNorm(k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        bNorm[c] = norm2(B.subspan(c * n, n));
        ++res.dotCalls;
        if (bNorm[c] == 0.0) {
            const auto xc = X.subspan(c * n, n);
            std::fill(xc.begin(), xc.end(), 0.0);
        } else {
            live.push_back(c);
        }
    }
    const auto ka = static_cast<unsigned>(live.size());
    if (ka == 0) {
        res.converged = true;
        res.status = SolveStatus::Converged;
        return res;
    }

    // Panel scratch: the live columns of B and X gathered into
    // contiguous column-major panels (the batched operator contract),
    // plus the block-CG recurrence panels.
    const std::size_t pn = static_cast<std::size_t>(ka) * n;
    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<double> &bw = wsp.vec(0, pn);
    std::vector<double> &xw = wsp.vec(1, pn);
    std::vector<double> &r = wsp.vec(2, pn);
    std::vector<double> &p = wsp.vec(3, pn);
    std::vector<double> &q = wsp.vec(4, pn);
    std::vector<double> &pNew = wsp.vec(5, pn);
    for (unsigned j = 0; j < ka; ++j) {
        const std::size_t c = live[j];
        std::copy_n(B.data() + c * n, n, bw.data() + j * n);
        std::copy_n(X.data() + c * n, n, xw.data() + j * n);
    }

    // Small (ka x ka) factors of the recurrence; sMat is the
    // scratch solveSmall overwrites.
    std::vector<double> rho, rhoNew, sMat, coef;

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;

    // Refresh the per-column residual report from diag(R'R); the
    // off-diagonal entries only feed the recurrence.
    const auto reportResiduals = [&]() {
        double worst = 0.0;
        for (unsigned j = 0; j < ka; ++j) {
            const double rr =
                rho[static_cast<std::size_t>(j) * ka + j];
            const double rel =
                std::sqrt(rr < 0.0 ? 0.0 : rr) / bNorm[live[j]];
            res.relResiduals[live[j]] = rel;
            worst = rel > worst ? rel : worst;
        }
        return worst;
    };

    try {
        execCheckpoint(cfg.exec);
        // R = B - A X (one panel apply), P = R.
        a.applyBatch(xw, r, ka);
        ++res.spmmCalls;
        for (std::size_t i = 0; i < pn; ++i)
            r[i] = bw[i] - r[i];
        p = r;

        gramMatrix(r.data(), r.data(), n, ka, rho);
        res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

        for (int it = 0; it < cfg.maxIterations; ++it) {
            const double worst = reportResiduals();
            if (worst <= cfg.tolerance) {
                res.converged = true;
                break;
            }
            execCheckpoint(cfg.exec);

            a.applyBatch(p, q, ka);
            ++res.spmmCalls;
            gramMatrix(p.data(), q.data(), n, ka, sMat);
            res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

            // alpha = (P'Q)^-1 (R'R)
            coef = rho;
            if (!solveSmall(sMat, coef, ka)) {
                warn("blockCG: singular P'AP block at iteration ",
                     it, "; aborting");
                stop = SolveStatus::Breakdown;
                break;
            }
            // X += P alpha ; R -= Q alpha. X moves only here, after
            // the full coefficient solve, so a cancel landing inside
            // an apply leaves the last completed block iterate.
            panelMulAdd(xw.data(), p.data(), coef.data(), n, ka,
                        1.0);
            panelMulAdd(r.data(), q.data(), coef.data(), n, ka,
                        -1.0);
            res.axpyCalls += 2ull * ka * ka;

            gramMatrix(r.data(), r.data(), n, ka, rhoNew);
            res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

            // beta = (R'R)^-1 (R'R)_new
            sMat = rho;
            coef = rhoNew;
            if (!solveSmall(sMat, coef, ka)) {
                warn("blockCG: singular R'R block at iteration ", it,
                     "; aborting");
                rho = rhoNew;
                ++res.iterations;
                ctrBlockIterations.add();
                stop = SolveStatus::Breakdown;
                break;
            }
            // P = R + P beta.
            pNew = r;
            panelMulAdd(pNew.data(), p.data(), coef.data(), n, ka,
                        1.0);
            res.axpyCalls += static_cast<std::uint64_t>(ka) * ka;
            std::swap(p, pNew);

            rho = rhoNew;
            ++res.iterations;
            ctrBlockIterations.add();
            gBlockResidual.set(reportResiduals());
        }
    } catch (const CancelledError &e) {
        // relResiduals already reflect the last completed iteration;
        // xw holds its iterate (X only moves through the serial
        // panel update above).
        stop = e.status();
        interrupted = true;
    }

    // Scatter the live columns back (deflated columns were zeroed
    // upfront and never touched again).
    for (unsigned j = 0; j < ka; ++j) {
        const std::size_t c = live[j];
        std::copy_n(xw.data() + j * n, n, X.data() + c * n);
    }

    if (interrupted) {
        res.status = stop;
        return res;
    }
    res.converged = res.worstResidual() <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

namespace {

// Same interned cells as the scalar solvers (solver.cc): lockstep
// columns tick "solver.iterations" exactly as standalone CG would,
// so the telemetry totals of a coalesced batch match k direct
// solves.
constinit telemetry::Counter ctrIterations{"solver.iterations"};
constinit telemetry::Gauge gResidual{"solver.residual"};

} // namespace

std::vector<SolverResult>
lockstepConjugateGradient(LinearOperator &a,
                          std::span<const double> B,
                          std::span<double> X, unsigned k,
                          std::span<const LockstepColumnControl> ctl,
                          SolverWorkspace *ws)
{
    if (a.rows() != a.cols())
        fatal("lockstepCG: operator must be square");
    const auto n = static_cast<std::size_t>(a.rows());
    if (k == 0)
        fatal("lockstepCG: empty panel");
    if (B.size() != n * k || X.size() != n * k)
        fatal("lockstepCG: panel size mismatch");

    telemetry::Span span("solver.lockstep_cg");

    const LockstepColumnControl defaultCtl;
    const auto colCtl = [&](unsigned c) -> const auto & {
        if (ctl.empty())
            return defaultCtl;
        return ctl[std::min<std::size_t>(c, ctl.size() - 1)];
    };

    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    // Panel-sized scratch: per-column r/p/ap columns plus the packed
    // panels the batched applies run over.
    std::vector<double> &R = wsp.vec(0, n * k);
    std::vector<double> &P = wsp.vec(1, n * k);
    std::vector<double> &AP = wsp.vec(2, n * k);
    std::vector<double> &pack = wsp.vec(3, n * k);
    std::vector<double> &packOut = wsp.vec(4, n * k);

    std::vector<SolverResult> results(k);
    std::vector<double> rr(k, 0.0), bNorm(k, 0.0);
    std::vector<bool> active(k, false);

    // Finalize a column the way standalone CG's normal exit does:
    // recompute convergence from the current residual, Converged
    // winning over the provided stop reason.
    const auto finalize = [&](unsigned c, SolveStatus stop) {
        SolverResult &res = results[c];
        res.relResidual = std::sqrt(rr[c]) / bNorm[c];
        res.converged = res.relResidual <= colCtl(c).tolerance;
        res.status =
            res.converged ? SolveStatus::Converged : stop;
        active[c] = false;
    };
    // Finalize a column the way standalone CG's CancelledError
    // handler does: keep the last completed iterate, report the
    // stop status, never claim convergence.
    const auto interrupt = [&](unsigned c, SolveStatus stop) {
        SolverResult &res = results[c];
        res.relResidual = (bNorm[c] > 0.0 && rr[c] > 0.0)
                              ? std::sqrt(rr[c]) / bNorm[c]
                              : 1.0;
        res.status = stop;
        active[c] = false;
    };

    // Pack the active columns' @p src columns into a contiguous
    // panel, run ONE batched apply, and scatter back into @p dst.
    // Copies carry bits unchanged, and applyBatch is pinned bitwise
    // to the sequential applies, so each column sees exactly the
    // apply() result standalone CG would have computed.
    const auto batchApply = [&](std::span<const double> src,
                                std::span<double> dst) {
        unsigned ka = 0;
        for (unsigned c = 0; c < k; ++c)
            if (active[c])
                std::copy_n(src.data() + c * n, n,
                            pack.data() + (ka++) * n);
        if (ka == 0)
            return;
        a.applyBatch(
            std::span<const double>(pack.data(), ka * n),
            std::span<double>(packOut.data(), ka * n), ka);
        unsigned j = 0;
        for (unsigned c = 0; c < k; ++c)
            if (active[c]) {
                std::copy_n(packOut.data() + j * n, n,
                            dst.data() + c * n);
                ++j;
                ++results[c].spmvCalls;
            }
    };

    // --- initial residuals: r = b - A x, p = r -------------------
    for (unsigned c = 0; c < k; ++c) {
        results[c].vectorLength = n;
        const ExecContext *exec = colCtl(c).exec;
        if (execShouldStop(exec)) {
            interrupt(c, exec->stopStatus());
            continue;
        }
        active[c] = true;
    }
    batchApply(X, std::span<double>(R));
    for (unsigned c = 0; c < k; ++c) {
        if (!active[c])
            continue;
        const auto b = B.subspan(c * n, n);
        const auto r = std::span<double>(R).subspan(c * n, n);
        for (std::size_t i = 0; i < n; ++i)
            r[i] = b[i] - r[i];
        std::copy_n(r.data(), n, P.data() + c * n);

        bNorm[c] = norm2(b);
        ++results[c].dotCalls;
        if (bNorm[c] == 0.0) {
            auto x = X.subspan(c * n, n);
            std::fill(x.begin(), x.end(), 0.0);
            results[c].converged = true;
            results[c].status = SolveStatus::Converged;
            active[c] = false;
            continue;
        }
        rr[c] = dot(r, r);
        ++results[c].dotCalls;
    }

    // --- lockstep iterations -------------------------------------
    for (;;) {
        // Per-column loop head: exactly standalone CG's checks, in
        // its order (iteration budget is the for-loop condition,
        // then convergence, then the exec poll).
        for (unsigned c = 0; c < k; ++c) {
            if (!active[c])
                continue;
            const LockstepColumnControl &cc = colCtl(c);
            if (results[c].iterations >= cc.maxIterations) {
                finalize(c, SolveStatus::MaxIterations);
                continue;
            }
            if (std::sqrt(rr[c]) / bNorm[c] <= cc.tolerance) {
                finalize(c, SolveStatus::MaxIterations);
                continue;
            }
            if (execShouldStop(cc.exec))
                interrupt(c, cc.exec->stopStatus());
        }

        bool any = false;
        for (unsigned c = 0; c < k; ++c)
            any = any || active[c];
        if (!any)
            break;

        // One panel apply advances every live column: ap = A p.
        batchApply(P, std::span<double>(AP));

        for (unsigned c = 0; c < k; ++c) {
            if (!active[c])
                continue;
            SolverResult &res = results[c];
            const auto p =
                std::span<const double>(P).subspan(c * n, n);
            const auto ap =
                std::span<const double>(AP).subspan(c * n, n);
            const auto r = std::span<double>(R).subspan(c * n, n);
            const auto x = X.subspan(c * n, n);

            const double pap = dot(p, ap);
            ++res.dotCalls;
            if (pap <= 0.0) {
                warn("lockstep CG: operator not positive definite "
                     "(p'Ap = ",
                     pap, ") on column ", c, "; aborting it");
                finalize(c, SolveStatus::Breakdown);
                continue;
            }
            const double alpha = rr[c] / pap;
            axpy(alpha, p, x);
            axpy(-alpha, ap, r);
            res.axpyCalls += 2;
            const double rrNew = dot(r, r);
            ++res.dotCalls;
            const double beta = rrNew / rr[c];
            auto pw = std::span<double>(P).subspan(c * n, n);
            for (std::size_t i = 0; i < n; ++i)
                pw[i] = r[i] + beta * pw[i];
            ++res.axpyCalls;
            rr[c] = rrNew;
            ++res.iterations;
            ctrIterations.add();
            gResidual.set(std::sqrt(rr[c]) / bNorm[c]);
        }
    }
    return results;
}

} // namespace msc
