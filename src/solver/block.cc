#include "solver/block.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace msc {

namespace {

// One tick per block iteration (each covers all k columns) + the
// worst per-column residual as a gauge.
constinit telemetry::Counter
    ctrBlockIterations{"solver.block_iterations"};
constinit telemetry::Gauge gBlockResidual{"solver.block_residual"};

/** RAII context binding, mirroring the scalar solvers (solver.cc):
 *  attach cfg.exec to the operator for the duration of the solve so
 *  block-batched operators poll it mid-apply. */
class ExecBinding
{
  public:
    ExecBinding(LinearOperator &op, const ExecContext *ctx)
        : a(op), bound(ctx != nullptr)
    {
        if (bound)
            a.setExecContext(ctx);
    }

    ~ExecBinding()
    {
        if (bound)
            a.setExecContext(nullptr);
    }

    ExecBinding(const ExecBinding &) = delete;
    ExecBinding &operator=(const ExecBinding &) = delete;

  private:
    LinearOperator &a;
    bool bound;
};

/** Breakdown guard on an elimination pivot (see solver.cc). */
bool
breakdownPivot(double pivot)
{
    return !std::isfinite(pivot) || std::fabs(pivot) < 1e-300;
}

/**
 * Solve S A = RHS for the ka x ka coefficient matrix A by Gaussian
 * elimination with partial pivoting. S and rhs (both row-major) are
 * overwritten; the solution lands in rhs. Returns false when a
 * pivot is breakdown-grade (rank-deficient block).
 */
bool
solveSmall(std::vector<double> &s, std::vector<double> &rhs,
           unsigned ka)
{
    for (unsigned col = 0; col < ka; ++col) {
        unsigned piv = col;
        double best = std::fabs(s[col * ka + col]);
        for (unsigned r = col + 1; r < ka; ++r) {
            const double v = std::fabs(s[r * ka + col]);
            if (v > best) {
                best = v;
                piv = r;
            }
        }
        if (breakdownPivot(s[piv * ka + col]))
            return false;
        if (piv != col) {
            for (unsigned j = 0; j < ka; ++j) {
                std::swap(s[col * ka + j], s[piv * ka + j]);
                std::swap(rhs[col * ka + j], rhs[piv * ka + j]);
            }
        }
        const double d = s[col * ka + col];
        for (unsigned r = col + 1; r < ka; ++r) {
            const double f = s[r * ka + col] / d;
            if (f == 0.0)
                continue;
            for (unsigned j = col; j < ka; ++j)
                s[r * ka + j] -= f * s[col * ka + j];
            for (unsigned j = 0; j < ka; ++j)
                rhs[r * ka + j] -= f * rhs[col * ka + j];
        }
    }
    for (unsigned col = ka; col-- > 0;) {
        const double d = s[col * ka + col];
        for (unsigned j = 0; j < ka; ++j) {
            double sum = rhs[col * ka + j];
            for (unsigned r = col + 1; r < ka; ++r)
                sum -= s[col * ka + r] * rhs[r * ka + j];
            rhs[col * ka + j] = sum / d;
        }
    }
    return true;
}

/** M[i][j] = U_i . V_j over n-length panel columns (row-major M). */
void
gramMatrix(const double *u, const double *v, std::size_t n,
           unsigned ka, std::vector<double> &m)
{
    m.resize(static_cast<std::size_t>(ka) * ka);
    for (unsigned i = 0; i < ka; ++i) {
        for (unsigned j = 0; j < ka; ++j) {
            m[static_cast<std::size_t>(i) * ka + j] =
                dot(std::span<const double>(u + i * n, n),
                    std::span<const double>(v + j * n, n));
        }
    }
}

/** Y_c += sign * sum_j Z_j M[j][c] (column-major panels). */
void
panelMulAdd(double *y, const double *z, const double *m,
            std::size_t n, unsigned ka, double sign)
{
    for (unsigned c = 0; c < ka; ++c) {
        double *yc = y + static_cast<std::size_t>(c) * n;
        for (unsigned j = 0; j < ka; ++j) {
            const double f =
                sign * m[static_cast<std::size_t>(j) * ka + c];
            if (f == 0.0)
                continue;
            const double *zj = z + static_cast<std::size_t>(j) * n;
            for (std::size_t i = 0; i < n; ++i)
                yc[i] += f * zj[i];
        }
    }
}

} // namespace

BlockSolverResult
blockConjugateGradient(LinearOperator &a, std::span<const double> B,
                       std::span<double> X, unsigned k,
                       const SolverConfig &cfg, SolverWorkspace *ws)
{
    if (a.rows() != a.cols())
        fatal("blockCG: operator must be square");
    const auto n = static_cast<std::size_t>(a.rows());
    if (k == 0)
        fatal("blockCG: empty batch");
    if (B.size() != n * k || X.size() != n * k)
        fatal("blockCG: panel size mismatch");

    telemetry::Span span("solver.block_cg");
    BlockSolverResult res;
    res.vectorLength = n;
    res.columns = k;
    res.relResiduals.assign(k, 0.0);

    // Deflate exactly-zero RHS columns upfront: their solution is
    // zero, and keeping them in the block would make every R'R Gram
    // matrix singular.
    std::vector<unsigned> live;
    std::vector<double> bNorm(k, 0.0);
    for (unsigned c = 0; c < k; ++c) {
        bNorm[c] = norm2(B.subspan(c * n, n));
        ++res.dotCalls;
        if (bNorm[c] == 0.0) {
            const auto xc = X.subspan(c * n, n);
            std::fill(xc.begin(), xc.end(), 0.0);
        } else {
            live.push_back(c);
        }
    }
    const auto ka = static_cast<unsigned>(live.size());
    if (ka == 0) {
        res.converged = true;
        res.status = SolveStatus::Converged;
        return res;
    }

    // Panel scratch: the live columns of B and X gathered into
    // contiguous column-major panels (the batched operator contract),
    // plus the block-CG recurrence panels.
    const std::size_t pn = static_cast<std::size_t>(ka) * n;
    SolverWorkspace local;
    SolverWorkspace &wsp = ws ? *ws : local;
    std::vector<double> &bw = wsp.vec(0, pn);
    std::vector<double> &xw = wsp.vec(1, pn);
    std::vector<double> &r = wsp.vec(2, pn);
    std::vector<double> &p = wsp.vec(3, pn);
    std::vector<double> &q = wsp.vec(4, pn);
    std::vector<double> &pNew = wsp.vec(5, pn);
    for (unsigned j = 0; j < ka; ++j) {
        const std::size_t c = live[j];
        std::copy_n(B.data() + c * n, n, bw.data() + j * n);
        std::copy_n(X.data() + c * n, n, xw.data() + j * n);
    }

    // Small (ka x ka) factors of the recurrence; sMat is the
    // scratch solveSmall overwrites.
    std::vector<double> rho, rhoNew, sMat, coef;

    ExecBinding bind(a, cfg.exec);
    SolveStatus stop = SolveStatus::MaxIterations;
    bool interrupted = false;

    // Refresh the per-column residual report from diag(R'R); the
    // off-diagonal entries only feed the recurrence.
    const auto reportResiduals = [&]() {
        double worst = 0.0;
        for (unsigned j = 0; j < ka; ++j) {
            const double rr =
                rho[static_cast<std::size_t>(j) * ka + j];
            const double rel =
                std::sqrt(rr < 0.0 ? 0.0 : rr) / bNorm[live[j]];
            res.relResiduals[live[j]] = rel;
            worst = rel > worst ? rel : worst;
        }
        return worst;
    };

    try {
        execCheckpoint(cfg.exec);
        // R = B - A X (one panel apply), P = R.
        a.applyBatch(xw, r, ka);
        ++res.spmmCalls;
        for (std::size_t i = 0; i < pn; ++i)
            r[i] = bw[i] - r[i];
        p = r;

        gramMatrix(r.data(), r.data(), n, ka, rho);
        res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

        for (int it = 0; it < cfg.maxIterations; ++it) {
            const double worst = reportResiduals();
            if (worst <= cfg.tolerance) {
                res.converged = true;
                break;
            }
            execCheckpoint(cfg.exec);

            a.applyBatch(p, q, ka);
            ++res.spmmCalls;
            gramMatrix(p.data(), q.data(), n, ka, sMat);
            res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

            // alpha = (P'Q)^-1 (R'R)
            coef = rho;
            if (!solveSmall(sMat, coef, ka)) {
                warn("blockCG: singular P'AP block at iteration ",
                     it, "; aborting");
                stop = SolveStatus::Breakdown;
                break;
            }
            // X += P alpha ; R -= Q alpha. X moves only here, after
            // the full coefficient solve, so a cancel landing inside
            // an apply leaves the last completed block iterate.
            panelMulAdd(xw.data(), p.data(), coef.data(), n, ka,
                        1.0);
            panelMulAdd(r.data(), q.data(), coef.data(), n, ka,
                        -1.0);
            res.axpyCalls += 2ull * ka * ka;

            gramMatrix(r.data(), r.data(), n, ka, rhoNew);
            res.dotCalls += static_cast<std::uint64_t>(ka) * ka;

            // beta = (R'R)^-1 (R'R)_new
            sMat = rho;
            coef = rhoNew;
            if (!solveSmall(sMat, coef, ka)) {
                warn("blockCG: singular R'R block at iteration ", it,
                     "; aborting");
                rho = rhoNew;
                ++res.iterations;
                ctrBlockIterations.add();
                stop = SolveStatus::Breakdown;
                break;
            }
            // P = R + P beta.
            pNew = r;
            panelMulAdd(pNew.data(), p.data(), coef.data(), n, ka,
                        1.0);
            res.axpyCalls += static_cast<std::uint64_t>(ka) * ka;
            std::swap(p, pNew);

            rho = rhoNew;
            ++res.iterations;
            ctrBlockIterations.add();
            gBlockResidual.set(reportResiduals());
        }
    } catch (const CancelledError &e) {
        // relResiduals already reflect the last completed iteration;
        // xw holds its iterate (X only moves through the serial
        // panel update above).
        stop = e.status();
        interrupted = true;
    }

    // Scatter the live columns back (deflated columns were zeroed
    // upfront and never touched again).
    for (unsigned j = 0; j < ka; ++j) {
        const std::size_t c = live[j];
        std::copy_n(xw.data() + j * n, n, X.data() + c * n);
    }

    if (interrupted) {
        res.status = stop;
        return res;
    }
    res.converged = res.worstResidual() <= cfg.tolerance;
    res.status =
        res.converged ? SolveStatus::Converged : stop;
    return res;
}

} // namespace msc
