/**
 * @file
 * Stationary iterative solvers.
 *
 * Section II-B: "Iterative methods are subdivided into stationary
 * and Krylov subspace methods." The paper focuses on the Krylov
 * family; the classical stationary methods (Jacobi, Gauss-Seidel,
 * SOR) complete the taxonomy and double as smoothers. Each iteration
 * is one SpMV-class sweep, so they map onto the accelerator's
 * kernels the same way CG's building blocks do.
 */

#ifndef MSC_SOLVER_STATIONARY_HH
#define MSC_SOLVER_STATIONARY_HH

#include "solver/solver.hh"

namespace msc {

/** x_{k+1} = x_k + D^-1 (b - A x_k). */
SolverResult jacobiIteration(const Csr &a, std::span<const double> b,
                             std::span<double> x,
                             const SolverConfig &cfg = {});

/** Forward Gauss-Seidel sweeps: (D + L) x_{k+1} = b - U x_k. */
SolverResult gaussSeidel(const Csr &a, std::span<const double> b,
                         std::span<double> x,
                         const SolverConfig &cfg = {});

/**
 * Successive over-relaxation with factor @p omega in (0, 2);
 * omega = 1 reduces to Gauss-Seidel.
 */
SolverResult sor(const Csr &a, std::span<const double> b,
                 std::span<double> x, double omega,
                 const SolverConfig &cfg = {});

/**
 * Power-iteration estimate of the spectral radius of D^-1 (L + U)
 * (the Jacobi iteration matrix): < 1 iff Jacobi converges, and its
 * magnitude predicts the convergence rate.
 */
double jacobiSpectralRadius(const Csr &a, int iterations = 100,
                            std::uint64_t seed = 1);

} // namespace msc

#endif // MSC_SOLVER_STATIONARY_HH
