/**
 * @file
 * Krylov subspace solvers (Section II-B, VI).
 *
 * The paper evaluates conjugate gradient (CG) for symmetric positive
 * definite systems and BiCG-STAB for the rest; GMRES(m) is provided
 * as the third mainstream method the paper names. Solvers are
 * written against an abstract operator so the same code runs on the
 * plain CSR matrix, the accelerator functional model, or the noisy
 * device model (Figures 12/13).
 *
 * Kernel-call counts are recorded so the timing models can translate
 * one solve into accelerator and GPU execution time (Section VI-A:
 * sparse MVM, dot product, AXPY).
 */

#ifndef MSC_SOLVER_SOLVER_HH
#define MSC_SOLVER_SOLVER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "runtime/exec_context.hh"
#include "sparse/csr.hh"

namespace msc {

/** Abstract y = A x operator. */
class LinearOperator
{
  public:
    virtual ~LinearOperator() = default;

    virtual std::int32_t rows() const = 0;
    virtual std::int32_t cols() const = 0;

    /** y = A x. */
    virtual void apply(std::span<const double> x,
                       std::span<double> y) = 0;

    /**
     * Batched multi-RHS apply over column-major k-column panels:
     * Y column c = A (X column c). The default loops apply() in
     * column order, so every override is behaviorally pinned to
     * that: implementations may share setup across columns but must
     * stay bitwise identical to the k sequential applies.
     */
    virtual void
    applyBatch(std::span<const double> X, std::span<double> Y,
               unsigned k)
    {
        const auto nc = static_cast<std::size_t>(cols());
        const auto nr = static_cast<std::size_t>(rows());
        for (unsigned c = 0; c < k; ++c)
            apply(X.subspan(c * nc, nc), Y.subspan(c * nr, nr));
    }

    /**
     * Adopt an execution context: operators that batch work over
     * blocks (accel/, fault/) poll it per batch so a cancel or
     * deadline lands mid-apply, not only at the next solver
     * iteration. The default is a no-op; @p ctx must outlive the
     * applies it governs (nullptr detaches).
     */
    virtual void setExecContext(const ExecContext *ctx)
    {
        (void)ctx;
    }
};

/** Operator that can also apply its transpose (needed by BiCG). */
class TransposableOperator : public LinearOperator
{
  public:
    /** y = A^T x. */
    virtual void applyTranspose(std::span<const double> x,
                                std::span<double> y) = 0;
};

/** Plain CSR-backed operator (the CPU/GPU reference arithmetic). */
class CsrOperator : public TransposableOperator
{
  public:
    explicit CsrOperator(const Csr &m) : mat(&m) {}

    std::int32_t rows() const override { return mat->rows(); }
    std::int32_t cols() const override { return mat->cols(); }

    void
    apply(std::span<const double> x, std::span<double> y) override
    {
        mat->spmv(x, y);
    }

    void
    applyTranspose(std::span<const double> x,
                   std::span<double> y) override
    {
        mat->spmvTranspose(x, y);
    }

  private:
    const Csr *mat;
};

/**
 * Reusable scratch vectors for the Krylov solvers.
 *
 * Each solver call needs a handful of n-length work vectors. A
 * workspace keeps their capacity alive across calls, so repeated
 * solves on the same system -- the segmented loop in
 * ResilientSolver, parameter sweeps, benches -- stop paying an
 * allocation per segment. vec() hands out a zeroed vector exactly
 * like a freshly constructed one, so results are unchanged.
 */
class SolverWorkspace
{
  public:
    /** Zeroed n-length vector for @p slot (grown on demand). */
    std::vector<double> &
    vec(std::size_t slot, std::size_t n)
    {
        if (const AllocHook hook =
                allocHook.load(std::memory_order_acquire))
            hook(n);
        if (slot >= pool.size())
            pool.resize(slot + 1);
        pool[slot].assign(n, 0.0);
        return pool[slot];
    }

    /**
     * Chaos-harness allocation hook: called with the requested
     * length before every vec() grant and may throw std::bad_alloc
     * to model memory pressure. Process-global; nullptr uninstalls.
     * One relaxed load per grant when unset.
     */
    using AllocHook = void (*)(std::size_t n);
    static void
    setAllocHook(AllocHook hook)
    {
        allocHook.store(hook, std::memory_order_release);
    }

  private:
    /** Deque, not vector: growing it must not move the vectors a
     *  solver already holds references to. */
    std::deque<std::vector<double>> pool;

    static std::atomic<AllocHook> allocHook; //!< defined in solver.cc
};

/** Which Krylov method to run. */
enum class SolverKind
{
    Auto, //!< CG for SPD entries, BiCG-STAB otherwise (the paper)
    Cg,
    BiCgStab,
    Gmres,
};

/**
 * Resumable mid-solve state for cooperative preemption (currently
 * CG only: the service's preemptible path).
 *
 * When SolverConfig::checkpoint is attached and the ExecContext's
 * yield flag fires, the solver stops at the next iteration boundary,
 * deep-copies its full recurrence state (iterate, residual, search
 * direction, scalars, kernel tallies) into the checkpoint, and
 * returns SolveStatus::Preempted. A later call with the same
 * checkpoint (valid == true) restores that exact state and continues
 * the recurrence, so the concatenated segments produce bitwise the
 * iterate sequence -- and hence the result -- of an uninterrupted
 * solve. That identity is what lets a scheduler preempt a long solve
 * for a short-deadline one without changing any answer bit.
 */
struct SolverCheckpoint
{
    bool valid = false;    //!< holds a resumable state
    int iterationsDone = 0;
    double rr = 0.0;       //!< r'r of the saved residual
    double bNorm = 0.0;
    std::vector<double> x; //!< iterate at the yield boundary
    std::vector<double> r; //!< residual
    std::vector<double> p; //!< search direction
    /** Kernel tallies of the completed segments, folded into the
     *  final SolverResult so it matches an uninterrupted run. */
    std::uint64_t spmvCalls = 0;
    std::uint64_t dotCalls = 0;
    std::uint64_t axpyCalls = 0;

    void
    reset()
    {
        *this = SolverCheckpoint{};
    }
};

struct SolverConfig
{
    double tolerance = 1e-10;  //!< relative residual target
    int maxIterations = 5000;
    /**
     * Optional execution context (deadline / cancellation), polled
     * once per iteration and forwarded to the operator for
     * per-block-batch polls. Not owned; must outlive the solve.
     * nullptr (the default) adds no per-iteration cost.
     */
    const ExecContext *exec = nullptr;
    /**
     * Optional preemption checkpoint sink/source (CG only). Non-null
     * enables cooperative yield: exec->yieldRequested() is honored
     * at iteration boundaries (see SolverCheckpoint). A valid
     * checkpoint resumes the saved recurrence instead of starting
     * from x. Not owned.
     */
    SolverCheckpoint *checkpoint = nullptr;
};

/**
 * Escalation record of a resilient solve (solver/resilient.hh).
 * Zero-initialized (and meaningless) for plain solver runs.
 */
struct RecoveryStats
{
    // Detection events on the residual stream.
    std::uint64_t nanEvents = 0;        //!< NaN/Inf in residual or x
    std::uint64_t divergenceEvents = 0; //!< residual blowup vs best
    std::uint64_t stagnationEvents = 0; //!< no progress over segments
    // Escalation actions taken.
    std::uint64_t scrubs = 0;             //!< AN-readback scans
    std::uint64_t reprograms = 0;         //!< crossbar rewrites
    std::uint64_t reprogramFailures = 0;  //!< rewrite did not heal
    std::uint64_t checkpointRestarts = 0; //!< x restored to last good
    std::uint64_t fallbacks = 0;          //!< blocks degraded to CSR
    std::uint64_t segments = 0;           //!< solver segments run
    std::uint64_t degradedBlocks = 0;     //!< blocks exact at exit
    // Execution-fault record (retry budget, absorbed failures).
    std::uint64_t retryAttempts = 0; //!< RetryBudget grants consumed
    std::uint64_t backoffNanos = 0;  //!< scheduled backoff, summed
    std::uint64_t allocFailures = 0; //!< bad_alloc absorbed
    std::uint64_t workerFaults = 0;  //!< worker throws absorbed

    std::uint64_t
    events() const
    {
        return nanEvents + divergenceEvents + stagnationEvents;
    }

    std::uint64_t
    actions() const
    {
        return reprograms + checkpointRestarts + fallbacks;
    }
};

struct SolverResult
{
    bool converged = false;
    int iterations = 0;
    /** Why the solve ended. Cancelled/DeadlineExceeded results hold
     *  the last completed iterate in x, never a partial update. */
    SolveStatus status = SolveStatus::MaxIterations;
    double relResidual = 0.0; //!< ||b - Ax|| / ||b|| at exit
    /** Kernel-call counts for the platform timing models. */
    std::uint64_t spmvCalls = 0;
    std::uint64_t dotCalls = 0;
    std::uint64_t axpyCalls = 0;
    std::uint64_t precondApplies = 0;
    std::uint64_t vectorLength = 0;
    /** Fault-recovery record when run under ResilientSolver. */
    RecoveryStats recovery;
};

/** Conjugate gradient; requires a symmetric positive definite A.
 *  An optional workspace reuses the solver's scratch vectors
 *  across calls (results are identical either way). */
SolverResult conjugateGradient(LinearOperator &a,
                               std::span<const double> b,
                               std::span<double> x,
                               const SolverConfig &cfg = {},
                               SolverWorkspace *ws = nullptr);

/** Stabilized bi-conjugate gradient (van der Vorst). */
SolverResult biCgStab(LinearOperator &a, std::span<const double> b,
                      std::span<double> x,
                      const SolverConfig &cfg = {},
                      SolverWorkspace *ws = nullptr);

/** Plain bi-conjugate gradient (needs A^T; Section II-B names it
 *  among the mainstream non-SPD methods). */
SolverResult biCg(TransposableOperator &a, std::span<const double> b,
                  std::span<double> x, const SolverConfig &cfg = {},
                  SolverWorkspace *ws = nullptr);

/** Restarted GMRES(m) with modified Gram-Schmidt. */
SolverResult gmres(LinearOperator &a, std::span<const double> b,
                   std::span<double> x, const SolverConfig &cfg = {},
                   int restart = 30, SolverWorkspace *ws = nullptr);

} // namespace msc

#endif // MSC_SOLVER_SOLVER_HH
