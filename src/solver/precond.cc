#include "solver/precond.hh"

#include <cmath>

#include "util/logging.hh"

namespace msc {

namespace {

std::vector<double>
extractDiagonal(const Csr &m)
{
    if (m.rows() != m.cols())
        fatal("preconditioner: matrix must be square");
    std::vector<double> d(static_cast<std::size_t>(m.rows()), 0.0);
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        const auto cols = m.rowCols(r);
        const auto vals = m.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] == r)
                d[static_cast<std::size_t>(r)] = vals[k];
        }
        if (d[static_cast<std::size_t>(r)] == 0.0)
            fatal("preconditioner: zero diagonal at row ", r);
    }
    return d;
}

} // namespace

JacobiPreconditioner::JacobiPreconditioner(const Csr &m)
{
    const auto d = extractDiagonal(m);
    invDiag.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        invDiag[i] = 1.0 / d[i];
}

void
JacobiPreconditioner::apply(std::span<const double> r,
                            std::span<double> z) const
{
    if (r.size() != invDiag.size() || z.size() != invDiag.size())
        fatal("JacobiPreconditioner: size mismatch");
    for (std::size_t i = 0; i < r.size(); ++i)
        z[i] = r[i] * invDiag[i];
}

SymmetricGaussSeidelPreconditioner::SymmetricGaussSeidelPreconditioner(
    const Csr &m)
    : mat(&m), diag(extractDiagonal(m))
{
}

void
SymmetricGaussSeidelPreconditioner::apply(std::span<const double> r,
                                          std::span<double> z) const
{
    const std::int32_t n = mat->rows();
    if (r.size() != static_cast<std::size_t>(n) ||
        z.size() != static_cast<std::size_t>(n))
        fatal("SymmetricGaussSeidelPreconditioner: size mismatch");

    // Forward sweep: (D + L) y = r.
    for (std::int32_t i = 0; i < n; ++i) {
        double acc = r[static_cast<std::size_t>(i)];
        const auto cols = mat->rowCols(i);
        const auto vals = mat->rowVals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] < i)
                acc -= vals[k] *
                       z[static_cast<std::size_t>(cols[k])];
        }
        z[static_cast<std::size_t>(i)] =
            acc / diag[static_cast<std::size_t>(i)];
    }
    // Scale by D: w = D y.
    for (std::int32_t i = 0; i < n; ++i)
        z[static_cast<std::size_t>(i)] *=
            diag[static_cast<std::size_t>(i)];
    // Backward sweep: (D + U) z = w.
    for (std::int32_t i = n; i-- > 0;) {
        double acc = z[static_cast<std::size_t>(i)];
        const auto cols = mat->rowCols(i);
        const auto vals = mat->rowVals(i);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            if (cols[k] > i)
                acc -= vals[k] *
                       z[static_cast<std::size_t>(cols[k])];
        }
        z[static_cast<std::size_t>(i)] =
            acc / diag[static_cast<std::size_t>(i)];
    }
}

Ilu0Preconditioner::Ilu0Preconditioner(const Csr &m)
    : factors(m)
{
    if (m.rows() != m.cols())
        fatal("Ilu0Preconditioner: matrix must be square");
    const std::int32_t n = factors.rows();
    const auto rowPtr = factors.rowPtr();
    const auto colIdx = factors.colIndex();
    auto vals = factors.values();

    // Position of (i, i) per row, and a column->position scatter
    // index reused across rows.
    std::vector<std::int32_t> diagPos(static_cast<std::size_t>(n),
                                      -1);
    std::vector<std::int32_t> scatter(static_cast<std::size_t>(n),
                                      -1);
    for (std::int32_t i = 0; i < n; ++i) {
        for (std::int32_t p = rowPtr[i]; p < rowPtr[i + 1]; ++p) {
            if (colIdx[p] == i)
                diagPos[static_cast<std::size_t>(i)] = p;
        }
        if (diagPos[static_cast<std::size_t>(i)] < 0)
            fatal("Ilu0Preconditioner: missing diagonal at row ", i);
    }

    for (std::int32_t i = 0; i < n; ++i) {
        // Scatter row i's positions.
        for (std::int32_t p = rowPtr[i]; p < rowPtr[i + 1]; ++p)
            scatter[static_cast<std::size_t>(colIdx[p])] = p;

        for (std::int32_t p = rowPtr[i]; p < rowPtr[i + 1]; ++p) {
            const std::int32_t k = colIdx[p];
            if (k >= i)
                break; // columns are sorted; strict lower part done
            const double ukk =
                vals[static_cast<std::size_t>(
                    diagPos[static_cast<std::size_t>(k)])];
            if (ukk == 0.0)
                fatal("Ilu0Preconditioner: zero pivot at row ", k);
            const double lik = vals[static_cast<std::size_t>(p)] /
                               ukk;
            vals[static_cast<std::size_t>(p)] = lik;
            // Update the remainder of row i against row k's upper
            // part, restricted to row i's pattern (zero fill-in).
            for (std::int32_t q =
                     diagPos[static_cast<std::size_t>(k)] + 1;
                 q < rowPtr[k + 1]; ++q) {
                const std::int32_t j = colIdx[q];
                const std::int32_t pos =
                    scatter[static_cast<std::size_t>(j)];
                if (pos >= 0) {
                    vals[static_cast<std::size_t>(pos)] -=
                        lik * vals[static_cast<std::size_t>(q)];
                }
            }
        }

        // Clear the scatter index.
        for (std::int32_t p = rowPtr[i]; p < rowPtr[i + 1]; ++p)
            scatter[static_cast<std::size_t>(colIdx[p])] = -1;
    }

    invDiagU.resize(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i) {
        const double uii = vals[static_cast<std::size_t>(
            diagPos[static_cast<std::size_t>(i)])];
        if (uii == 0.0)
            fatal("Ilu0Preconditioner: singular U at row ", i);
        invDiagU[static_cast<std::size_t>(i)] = 1.0 / uii;
    }
}

void
Ilu0Preconditioner::apply(std::span<const double> r,
                          std::span<double> z) const
{
    const std::int32_t n = factors.rows();
    if (r.size() != static_cast<std::size_t>(n) ||
        z.size() != static_cast<std::size_t>(n))
        fatal("Ilu0Preconditioner: size mismatch");

    // Forward: L y = r (L has implicit unit diagonal).
    for (std::int32_t i = 0; i < n; ++i) {
        double acc = r[static_cast<std::size_t>(i)];
        const auto cols = factors.rowCols(i);
        const auto vals = factors.rowVals(i);
        for (std::size_t p = 0; p < cols.size(); ++p) {
            if (cols[p] >= i)
                break;
            acc -= vals[p] * z[static_cast<std::size_t>(cols[p])];
        }
        z[static_cast<std::size_t>(i)] = acc;
    }
    // Backward: U z = y.
    for (std::int32_t i = n; i-- > 0;) {
        double acc = z[static_cast<std::size_t>(i)];
        const auto cols = factors.rowCols(i);
        const auto vals = factors.rowVals(i);
        for (std::size_t p = cols.size(); p-- > 0;) {
            if (cols[p] <= i)
                break;
            acc -= vals[p] * z[static_cast<std::size_t>(cols[p])];
        }
        z[static_cast<std::size_t>(i)] =
            acc * invDiagU[static_cast<std::size_t>(i)];
    }
}

SolverResult
preconditionedCg(LinearOperator &a, const Preconditioner &m,
                 std::span<const double> b, std::span<double> x,
                 const SolverConfig &cfg)
{
    if (a.rows() != a.cols())
        fatal("preconditionedCg: operator must be square");
    if (b.size() != static_cast<std::size_t>(a.rows()) ||
        x.size() != b.size())
        fatal("preconditionedCg: dimension mismatch");

    const std::size_t n = b.size();
    SolverResult res;
    res.vectorLength = n;

    std::vector<double> r(n), z(n), p(n), ap(n);
    a.apply(x, r);
    ++res.spmvCalls;
    for (std::size_t i = 0; i < n; ++i)
        r[i] = b[i] - r[i];

    const double bNorm = norm2(b);
    ++res.dotCalls;
    if (bNorm == 0.0) {
        std::fill(x.begin(), x.end(), 0.0);
        res.converged = true;
        return res;
    }

    m.apply(r, z);
    ++res.precondApplies;
    p = z;
    double rz = dot(r, z);
    ++res.dotCalls;

    double rNorm = norm2(r);
    ++res.dotCalls;
    for (int it = 0; it < cfg.maxIterations; ++it) {
        if (rNorm / bNorm <= cfg.tolerance) {
            res.converged = true;
            break;
        }
        a.apply(p, ap);
        ++res.spmvCalls;
        const double pap = dot(p, ap);
        ++res.dotCalls;
        if (pap <= 0.0) {
            warn("PCG: operator or preconditioner not SPD (p'Ap = ",
                 pap, ")");
            break;
        }
        const double alpha = rz / pap;
        axpy(alpha, p, x);
        axpy(-alpha, ap, r);
        res.axpyCalls += 2;
        m.apply(r, z);
        ++res.precondApplies;
        const double rzNew = dot(r, z);
        ++res.dotCalls;
        const double beta = rzNew / rz;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = z[i] + beta * p[i];
        ++res.axpyCalls;
        rz = rzNew;
        rNorm = norm2(r);
        ++res.dotCalls;
        ++res.iterations;
    }
    res.relResidual = rNorm / bNorm;
    res.converged = res.relResidual <= cfg.tolerance;
    return res;
}

} // namespace msc
