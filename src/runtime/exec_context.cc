#include "runtime/exec_context.hh"

#include <algorithm>

namespace msc {

const char *
toString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Converged:
        return "converged";
      case SolveStatus::MaxIterations:
        return "max_iterations";
      case SolveStatus::Breakdown:
        return "breakdown";
      case SolveStatus::Cancelled:
        return "cancelled";
      case SolveStatus::DeadlineExceeded:
        return "deadline_exceeded";
      case SolveStatus::Degraded:
        return "degraded";
      case SolveStatus::Overloaded:
        return "overloaded";
      case SolveStatus::Failed:
        return "failed";
      case SolveStatus::Preempted:
        return "preempted";
    }
    return "unknown";
}

namespace {

std::uint64_t
splitmix(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

bool
RetryBudget::tryAcquire()
{
    if (exhausted())
        return false;
    // base * 2^attempt, saturating and capped: the shift alone would
    // overflow past attempt ~60.
    const int attempt = used++;
    const auto baseNs = base.count();
    std::int64_t backoff;
    if (attempt >= 62 || baseNs > (cap.count() >> std::min(attempt,
                                                           62))) {
        backoff = cap.count();
    } else {
        backoff = std::min<std::int64_t>(cap.count(),
                                         baseNs << attempt);
    }
    // Up to +25% seeded jitter, still capped: decorrelates retry
    // storms across tenants without ever exceeding the cap.
    const std::uint64_t draw = splitmix(jitterState);
    const std::int64_t jitter = static_cast<std::int64_t>(
        (static_cast<unsigned __int128>(draw) *
         static_cast<std::uint64_t>(backoff / 4)) >>
        64);
    backoff = std::min<std::int64_t>(cap.count(), backoff + jitter);
    last = std::chrono::nanoseconds(backoff);
    total += last;
    return true;
}

} // namespace msc
