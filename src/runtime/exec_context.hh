/**
 * @file
 * Execution-control layer: deadlines, cooperative cancellation, and
 * retry budgets for every long-running path in the stack.
 *
 * The library is growing into a long-running multi-tenant solver
 * service (ROADMAP item 1). A service cannot admit iterative-solver
 * workloads -- which dominate end-to-end runtime on ReRAM
 * accelerators -- without being able to bound or abort a solve: a
 * pathological matrix, a fault-escalation loop, or a hung shard must
 * not run forever and take the process with it.
 *
 * An ExecContext carries three independent controls:
 *
 *  - a monotonic deadline (std::chrono::steady_clock), checked
 *    cooperatively once per solver iteration and once per block
 *    batch on the accelerator paths;
 *  - a CancelToken, a shared flag any thread may fire to abort the
 *    work promptly (bounded by one iteration / one block batch);
 *  - a RetryBudget, a bounded attempt counter with exponential
 *    backoff and seeded jitter, consumed by recovery ladders
 *    (solver/resilient.hh) so transient failures are retried a
 *    bounded number of times instead of looping forever.
 *
 * Cost model: with no deadline and no cancellation armed, a
 * shouldStop() poll is one relaxed atomic load -- cheap enough for
 * per-iteration checks -- and results are byte-identical to an
 * uncontrolled run because the context only ever stops work early,
 * never reorders it. The clock is read only when a deadline is set.
 *
 * Cancellation is delivered as a CancelledError exception carrying
 * the structured terminal status (Cancelled vs DeadlineExceeded);
 * the solvers catch it at the iteration boundary and return a
 * SolverResult with that status and the last completed iterate, so
 * no partial garbage ever propagates into the caller's x.
 */

#ifndef MSC_RUNTIME_EXEC_CONTEXT_HH
#define MSC_RUNTIME_EXEC_CONTEXT_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>

namespace msc {

/**
 * Structured terminal status of a solve (SolverResult::status).
 * Replaces the warn-and-continue convention: callers (and the
 * future service scheduler) can branch on *why* a solve ended
 * without parsing log output.
 */
enum class SolveStatus
{
    Converged,        //!< residual target met (and verified, when
                      //!< run under ResilientSolver)
    MaxIterations,    //!< iteration budget exhausted
    Breakdown,        //!< Krylov breakdown (zero/non-finite pivot)
    Cancelled,        //!< CancelToken fired mid-solve
    DeadlineExceeded, //!< ExecContext deadline passed mid-solve
    Degraded,         //!< retry budget exhausted: the resilient
                      //!< runtime degraded all hardware to the exact
                      //!< path (the solve may still have converged)
    Overloaded,       //!< service admission rejected the request
                      //!< (queue full or tenant out of tickets);
                      //!< the solve never started
    Failed,           //!< unrecoverable execution failure surfaced
                      //!< as a structured terminal status (service
                      //!< runtime; never thrown past the API)
    Preempted,        //!< cooperative yield at a checkpoint boundary:
                      //!< the solve saved a resumable checkpoint and
                      //!< stepped aside (service-internal; the
                      //!< service resumes it, callers never see it
                      //!< as a terminal status)
};

/** Stable lowercase name (logs, JSON reports, tests). */
const char *toString(SolveStatus status);

/**
 * Shared cancellation flag. Copies observe the same flag, so a
 * controller thread can hold one copy and fire it while the solve
 * thread polls another. cancel() is idempotent and thread-safe.
 */
class CancelToken
{
  public:
    CancelToken() : flag(std::make_shared<std::atomic<bool>>(false))
    {}

    void
    cancel()
    {
        flag->store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return flag->load(std::memory_order_acquire);
    }

  private:
    std::shared_ptr<std::atomic<bool>> flag;
};

/**
 * Thrown by ExecContext::checkpoint() (and by the thread pool's
 * chunk-boundary polls) when the context wants the work stopped.
 * Solvers translate it into SolverResult::status; it never escapes
 * a solve() call.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(SolveStatus s)
        : std::runtime_error(s == SolveStatus::DeadlineExceeded
                                 ? "execution deadline exceeded"
                                 : "execution cancelled"),
          st(s)
    {}

    SolveStatus status() const { return st; }

  private:
    SolveStatus st;
};

/**
 * Bounded retry/backoff budget with seeded jitter.
 *
 * Recovery ladders consume one attempt per escalation; when the
 * budget is exhausted the caller must stop retrying and degrade.
 * nextDelay() returns the exponential backoff for the attempt just
 * consumed -- base * 2^attempt, capped, plus up to 25% seeded
 * jitter -- as a duration. The simulator never sleeps on it by
 * default (a solve is compute-bound); the delay is recorded so a
 * service scheduler can honor it, and the jitter stream derives
 * purely from the seed, so two identical configs produce identical
 * schedules.
 */
class RetryBudget
{
  public:
    explicit RetryBudget(
        int maxAttemptsIn = 10, std::uint64_t seedIn = 1,
        std::chrono::nanoseconds baseIn = std::chrono::microseconds(
            100),
        std::chrono::nanoseconds capIn = std::chrono::milliseconds(
            100))
        : maxAttempts(maxAttemptsIn < 0 ? 0 : maxAttemptsIn),
          base(baseIn), cap(capIn), jitterState(seedIn)
    {}

    bool exhausted() const { return used >= maxAttempts; }
    int attemptsUsed() const { return used; }
    int attemptsLeft() const { return maxAttempts - used; }

    /**
     * Consume one attempt. Returns false (and consumes nothing)
     * when the budget is already exhausted; otherwise records the
     * attempt and computes its backoff delay (lastDelay()).
     */
    bool tryAcquire();

    /** Backoff computed for the most recent successful tryAcquire(). */
    std::chrono::nanoseconds lastDelay() const { return last; }

    /** Sum of every backoff delay handed out so far. */
    std::chrono::nanoseconds totalDelay() const { return total; }

  private:
    int maxAttempts;
    int used = 0;
    std::chrono::nanoseconds base;
    std::chrono::nanoseconds cap;
    std::chrono::nanoseconds last{0};
    std::chrono::nanoseconds total{0};
    std::uint64_t jitterState; //!< splitmix64 walk, seed-determined
};

/**
 * The per-solve execution context. Not copyable (worker threads and
 * the solve thread poll the same object); pass by pointer via
 * SolverConfig::exec or the operators' setExecContext().
 *
 * A default-constructed context never stops anything and costs one
 * relaxed load per poll. Arm a deadline with setDeadline()/
 * withDeadline(), cancellation through token(), and deterministic
 * forced cancellation (the chaos harness's mid-solve cancel
 * injection) with cancelAfterChecks().
 */
class ExecContext
{
  public:
    using Clock = std::chrono::steady_clock;

    ExecContext() = default;
    ExecContext(const ExecContext &) = delete;
    ExecContext &operator=(const ExecContext &) = delete;

    /** Context that expires @p budget from now. */
    static ExecContext
    withDeadline(std::chrono::nanoseconds budget)
    {
        ExecContext ctx;
        ctx.setDeadline(Clock::now() + budget);
        return ctx;
    }

    ExecContext(ExecContext &&other) noexcept { moveFrom(other); }

    ExecContext &
    operator=(ExecContext &&other) noexcept
    {
        if (this != &other)
            moveFrom(other);
        return *this;
    }

    /** Arm (or move) the absolute monotonic deadline. */
    void
    setDeadline(Clock::time_point when)
    {
        deadlinePoint = when;
        hasDeadlineFlag = true;
    }

    bool hasDeadline() const { return hasDeadlineFlag; }
    Clock::time_point deadline() const { return deadlinePoint; }

    /** The shared cancellation flag (copy it to other threads). */
    CancelToken &token() { return tok; }
    const CancelToken &token() const { return tok; }

    /**
     * Chaos/testing surface: fire the cancel token on the @p n-th
     * future shouldStop() poll (n >= 1), deterministically. 0
     * disarms. Counted across all polling threads.
     */
    void
    cancelAfterChecks(std::uint64_t n)
    {
        checksUntilCancel.store(static_cast<std::int64_t>(n),
                                std::memory_order_relaxed);
    }

    bool cancelled() const { return tok.cancelled(); }

    /**
     * Cooperative preemption surface. A yield request asks the
     * running solve to stop at its next checkpoint boundary, save a
     * resumable checkpoint (SolverConfig::checkpoint), and return
     * SolveStatus::Preempted -- unlike cancellation it never
     * discards work and the resumed recurrence is bitwise identical
     * to an uninterrupted run. Solvers only act on it when a
     * checkpoint sink is attached; otherwise the flag is ignored.
     * The dispatcher clears the flag (clearYield) before each
     * dispatch of the request.
     */
    void
    requestYield()
    {
        yieldFlag.store(true, std::memory_order_release);
    }

    bool
    yieldRequested() const
    {
        return yieldFlag.load(std::memory_order_acquire);
    }

    void
    clearYield()
    {
        yieldFlag.store(false, std::memory_order_release);
    }

    /**
     * Chaos/testing surface: request a yield on the @p n-th future
     * shouldStop() poll (n >= 1), deterministically -- the yield
     * analogue of cancelAfterChecks(). 0 disarms.
     */
    void
    yieldAfterChecks(std::uint64_t n)
    {
        checksUntilYield.store(static_cast<std::int64_t>(n),
                               std::memory_order_relaxed);
    }

    bool
    expired() const
    {
        return hasDeadlineFlag && Clock::now() >= deadlinePoint;
    }

    /**
     * Cooperative poll: true when the work should stop. One relaxed
     * load when nothing is armed; reads the clock only under an
     * armed deadline.
     */
    bool
    shouldStop() const
    {
        // Forced-cancellation countdown (chaos campaigns): fire the
        // token when the armed poll count is consumed.
        if (checksUntilCancel.load(std::memory_order_relaxed) > 0 &&
            checksUntilCancel.fetch_sub(
                1, std::memory_order_relaxed) == 1) {
            tok.cancel();
        }
        // Forced-yield countdown: same mechanism, but a yield never
        // stops the work here -- the solver acts on the flag at its
        // next checkpoint boundary.
        if (checksUntilYield.load(std::memory_order_relaxed) > 0 &&
            checksUntilYield.fetch_sub(
                1, std::memory_order_relaxed) == 1) {
            yieldFlag.store(true, std::memory_order_release);
        }
        if (tok.cancelled())
            return true;
        return expired();
    }

    /** Explicit cancellation wins over deadline expiry. */
    SolveStatus
    stopStatus() const
    {
        return tok.cancelled() ? SolveStatus::Cancelled
                               : SolveStatus::DeadlineExceeded;
    }

    /** Poll and throw CancelledError when the work should stop. */
    void
    checkpoint() const
    {
        if (shouldStop())
            throw CancelledError(stopStatus());
    }

  private:
    void
    moveFrom(ExecContext &other)
    {
        tok = other.tok;
        hasDeadlineFlag = other.hasDeadlineFlag;
        deadlinePoint = other.deadlinePoint;
        checksUntilCancel.store(other.checksUntilCancel.load(
                                    std::memory_order_relaxed),
                                std::memory_order_relaxed);
        yieldFlag.store(
            other.yieldFlag.load(std::memory_order_relaxed),
            std::memory_order_relaxed);
        checksUntilYield.store(other.checksUntilYield.load(
                                   std::memory_order_relaxed),
                               std::memory_order_relaxed);
    }

    mutable CancelToken tok;
    bool hasDeadlineFlag = false;
    Clock::time_point deadlinePoint{};
    /** > 0: polls remaining until a forced cancel; <= 0 disarmed. */
    mutable std::atomic<std::int64_t> checksUntilCancel{0};
    /** Cooperative-preemption request (see requestYield). */
    mutable std::atomic<bool> yieldFlag{false};
    /** > 0: polls remaining until a forced yield; <= 0 disarmed. */
    mutable std::atomic<std::int64_t> checksUntilYield{0};
};

/** Null-safe poll helper for optional contexts. */
inline bool
execShouldStop(const ExecContext *ctx)
{
    return ctx != nullptr && ctx->shouldStop();
}

/** Null-safe checkpoint helper for optional contexts. */
inline void
execCheckpoint(const ExecContext *ctx)
{
    if (ctx != nullptr)
        ctx->checkpoint();
}

} // namespace msc

#endif // MSC_RUNTIME_EXEC_CONTEXT_HH
