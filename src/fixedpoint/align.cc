#include "fixedpoint/align.hh"

#include "util/logging.hh"

namespace msc {

ExpRange
expRangeOf(std::span<const double> values)
{
    ExpRange r;
    for (double v : values) {
        const Fp64Parts p = decompose(v);
        if (!p.isFinite())
            fatal("expRangeOf: non-finite value");
        if (p.isZero())
            continue;
        // Use the exponent of the actual leading bit so subnormals
        // report their true magnitude.
        const int lead = p.exp -
            (52 - (63 - std::countl_zero(p.mant)));
        if (!r.anyNonZero) {
            r.minExp = r.maxExp = lead;
            r.anyNonZero = true;
        } else {
            r.minExp = std::min(r.minExp, lead);
            r.maxExp = std::max(r.maxExp, lead);
        }
    }
    return r;
}

BitVec
AlignedSet::bitSlice(unsigned k) const
{
    BitVec bits(mag.size());
    for (std::size_t i = 0; i < mag.size(); ++i) {
        if (mag[i].bit(k))
            bits.set(i);
    }
    return bits;
}

AlignedSet
alignValues(std::span<const double> values)
{
    AlignedSet out;
    out.range = expRangeOf(values);
    if (!out.range.fits()) {
        fatal("alignValues: exponent range ", out.range.span(),
              " exceeds ", fxp::maxExpRange);
    }

    out.mag.reserve(values.size());
    out.neg.reserve(values.size());
    // Common scale: bit 0 of every magnitude weighs 2^(minMantExp)
    // where minMantExp is the scale of the least significant mantissa
    // bit of the smallest nonzero value.
    const int minMantExp = out.range.anyNonZero
        ? out.range.minExp - 52 : 0;
    out.scale = minMantExp;

    for (double v : values) {
        const Fp64Parts p = decompose(v);
        if (p.isZero()) {
            out.mag.emplace_back();
            out.neg.push_back(0);
            continue;
        }
        // v = mant * 2^(exp - 52); shift so bit 0 sits at minMantExp.
        const int shift = (p.exp - 52) - minMantExp;
        if (shift < 0)
            panic("alignValues: negative shift ", shift);
        U128 m(p.mant);
        m <<= static_cast<unsigned>(shift);
        out.magBits = std::max(out.magBits, m.bitLength());
        out.mag.push_back(m);
        out.neg.push_back(p.sign ? 1 : 0);
    }

    if (out.magBits > fxp::maxMagBits) {
        panic("alignValues: operand width ", out.magBits,
              " exceeds ", fxp::maxMagBits);
    }
    return out;
}

BiasedSet
biasEncode(const AlignedSet &aligned)
{
    BiasedSet out;
    out.scale = aligned.scale;
    // The smallest power of two exceeding every magnitude; zero-range
    // blocks still need one bit.
    out.biasBits = std::max(aligned.magBits, 1u);
    const U128 bias = out.bias();

    out.stored.reserve(aligned.size());
    for (std::size_t i = 0; i < aligned.size(); ++i) {
        if (aligned.neg[i])
            out.stored.push_back(bias - aligned.mag[i]);
        else
            out.stored.push_back(bias + aligned.mag[i]);
    }
    return out;
}

std::vector<VectorSlice>
activeBitSlices(const BiasedSet &set)
{
    std::vector<VectorSlice> active;
    active.reserve(set.width());
    for (unsigned k = set.width(); k-- > 0;) {
        BitVec slice(set.size());
        for (std::size_t j = 0; j < set.size(); ++j) {
            if (set.stored[j].bit(k))
                slice.set(j);
        }
        const auto pc =
            static_cast<std::uint64_t>(slice.popcount());
        if (pc == 0)
            continue;
        active.push_back({k, std::move(slice), pc});
    }
    return active;
}

std::size_t
activeBitSlices(const BiasedSet &set, std::vector<VectorSlice> &buf)
{
    std::size_t count = 0;
    for (unsigned k = set.width(); k-- > 0;) {
        if (count == buf.size())
            buf.emplace_back();
        VectorSlice &vs = buf[count];
        vs.k = k;
        vs.bits.resize(set.size());
        std::uint64_t pc = 0;
        for (std::size_t j = 0; j < set.size(); ++j) {
            if (set.stored[j].bit(k)) {
                vs.bits.set(j);
                ++pc;
            }
        }
        vs.pc = pc;
        if (pc != 0)
            ++count; // keep; a zero slice's entry is reused next k
    }
    return count;
}

void
biasDecode(const BiasedSet &set, std::size_t i, U128 &mag, bool &neg)
{
    const U128 bias = set.bias();
    if (set.stored[i] >= bias) {
        mag = set.stored[i] - bias;
        neg = false;
    } else {
        mag = bias - set.stored[i];
        neg = true;
    }
}

} // namespace msc
