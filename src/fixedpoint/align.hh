/**
 * @file
 * Conversion of IEEE-754 doubles into block-aligned fixed point.
 *
 * Within a block, values that are summed in the analog domain must
 * share a common binary point (paper Section IV-A). Each value
 * (-1)^s * m * 2^(e-52) is stored as the integer m << (e - minExp)
 * at the common scale 2^(minExp - 52). Exponent range locality keeps
 * the pad small: a block is mappable only when its exponent range is
 * at most maxExpRange (64), bounding operands at 117 magnitude bits
 * plus a sign, i.e. the paper's 118-bit operand.
 */

#ifndef MSC_FIXEDPOINT_ALIGN_HH
#define MSC_FIXEDPOINT_ALIGN_HH

#include <cstdint>
#include <span>
#include <vector>

#include "fp/float64.hh"
#include "util/bitvec.hh"
#include "wideint/wideint.hh"

namespace msc {

namespace fxp {

constexpr unsigned mantissaBits = 53;  //!< incl. the implicit 1
constexpr unsigned maxPadBits = 64;    //!< alignment padding budget
constexpr unsigned maxMagBits = 117;   //!< mantissa + padding
constexpr unsigned operandBits = 118;  //!< + sign bit
constexpr unsigned anCheckBits = 9;    //!< AN code (A = 251) overhead
constexpr unsigned encodedBits = 127;  //!< full crossbar operand
/** Maximum exponent spread mappable without precision loss. */
constexpr int maxExpRange = static_cast<int>(maxPadBits);

} // namespace fxp

/** Exponent statistics over the nonzero entries of a value set. */
struct ExpRange
{
    int minExp = 0;
    int maxExp = 0;
    bool anyNonZero = false;

    int span() const { return anyNonZero ? maxExp - minExp : 0; }
    bool fits() const { return span() <= fxp::maxExpRange; }
};

/** Compute the exponent range over nonzero values; fatal on inf/NaN. */
ExpRange expRangeOf(std::span<const double> values);

/**
 * A set of values aligned to a common fixed-point scale.
 *
 * value_i = (-1)^neg_i * mag_i * 2^scale, with mag_i exact (no
 * precision loss). Zero values have mag 0.
 */
struct AlignedSet
{
    std::vector<U128> mag;
    std::vector<std::uint8_t> neg;
    int scale = 0;         //!< power-of-two scale of bit 0
    unsigned magBits = 0;  //!< max significant bits over the set
    ExpRange range;

    std::size_t size() const { return mag.size(); }

    /** Exact double value of entry @p i (for testing). */
    double
    valueOf(std::size_t i) const
    {
        return fixedToDouble(neg[i], U256::from(mag[i]), scale);
    }

    /**
     * Extract bit slice @p k: bit k of every magnitude.
     * Used for vector slices driven onto crossbar rows.
     */
    BitVec bitSlice(unsigned k) const;
};

/**
 * Align a value set to its own minimum exponent.
 *
 * Fatal if the exponent range exceeds maxExpRange (callers filter
 * with expRangeOf / the blocking preprocessor first) or if any value
 * is non-finite.
 */
AlignedSet alignValues(std::span<const double> values);

/**
 * Biased (unsigned) representation of an aligned set.
 *
 * Stored_i = mag_i * (-1)^neg_i + bias with the per-block bias
 * constant 2^biasBits chosen from the actual exponent range (paper
 * Section IV-C), so every stored operand is a nonnegative integer of
 * at most biasBits+1 bits. Zero entries store exactly bias.
 */
struct BiasedSet
{
    std::vector<U128> stored;
    unsigned biasBits = 0; //!< bias = 2^biasBits
    int scale = 0;

    std::size_t size() const { return stored.size(); }
    U128 bias() const { return U128(1) << biasBits; }
    /** Operand width in bits (biasBits + 1). */
    unsigned width() const { return biasBits + 1; }
};

/** Bias-encode an aligned set (paper Section IV-C). */
BiasedSet biasEncode(const AlignedSet &aligned);

/**
 * One active (nonzero) vector bit slice: the slice index k, the
 * bitmap over the set's entries whose stored word has bit k, and its
 * popcount. This is exactly what the hardware drives onto the
 * crossbar rows per cycle, and what the functional model uses to
 * gate per-element contributions.
 */
struct VectorSlice
{
    unsigned k = 0;
    BitVec bits;
    std::uint64_t pc = 0;
};

/**
 * Build the nonzero bit slices of a biased set, MSB first. All-zero
 * slices are omitted: they drive no rows and contribute nothing.
 */
std::vector<VectorSlice> activeBitSlices(const BiasedSet &set);

/**
 * In-place variant for hot paths: fills buf[0, count) MSB first and
 * returns count. Entries past the count are stale but keep their
 * heap storage, so repeated calls on a reused buffer stop allocating
 * once it has grown to the widest operand seen.
 */
std::size_t activeBitSlices(const BiasedSet &set,
                            std::vector<VectorSlice> &buf);

/** Recover the signed value of one biased entry (for testing). */
void biasDecode(const BiasedSet &set, std::size_t i, U128 &mag,
                bool &neg);

} // namespace msc

#endif // MSC_FIXEDPOINT_ALIGN_HH
