/**
 * @file
 * Structural and numerical statistics of sparse matrices.
 *
 * These are the quantities Table II of the paper reports (NNZ, rows,
 * NNZ/row) plus the exponent statistics that drive the fixed-point
 * conversion cost (Section VIII-B ties energy to exponent range).
 */

#ifndef MSC_SPARSE_STATS_HH
#define MSC_SPARSE_STATS_HH

#include <string>

#include "sparse/csr.hh"

namespace msc {

struct MatrixStats
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::size_t nnz = 0;
    double nnzPerRow = 0.0;
    double density = 0.0;        //!< nnz / (rows * cols)
    std::int64_t maxRowNnz = 0;
    std::int32_t bandwidth = 0;  //!< max |row - col| over nonzeros
    bool structurallySymmetric = false;
    int expMin = 0;              //!< min exponent over nonzeros
    int expMax = 0;              //!< max exponent over nonzeros
    int expRange = 0;

    std::string toString(const std::string &name = "") const;
};

MatrixStats computeStats(const Csr &m);

} // namespace msc

#endif // MSC_SPARSE_STATS_HH
