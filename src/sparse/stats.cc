#include "sparse/stats.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "fixedpoint/align.hh"

namespace msc {

MatrixStats
computeStats(const Csr &m)
{
    MatrixStats s;
    s.rows = m.rows();
    s.cols = m.cols();
    s.nnz = m.nnz();
    if (s.rows > 0)
        s.nnzPerRow = static_cast<double>(s.nnz) / s.rows;
    if (s.rows > 0 && s.cols > 0) {
        s.density = static_cast<double>(s.nnz) /
                    (static_cast<double>(s.rows) * s.cols);
    }

    for (std::int32_t r = 0; r < m.rows(); ++r) {
        s.maxRowNnz = std::max(s.maxRowNnz, m.rowNnz(r));
        for (std::int32_t c : m.rowCols(r))
            s.bandwidth = std::max(s.bandwidth, std::abs(c - r));
    }

    const ExpRange er = expRangeOf(m.values());
    s.expMin = er.minExp;
    s.expMax = er.maxExp;
    s.expRange = er.span();

    if (s.rows == s.cols) {
        const Csr t = m.transpose();
        s.structurallySymmetric =
            std::equal(t.colIndex().begin(), t.colIndex().end(),
                       m.colIndex().begin(), m.colIndex().end()) &&
            std::equal(t.rowPtr().begin(), t.rowPtr().end(),
                       m.rowPtr().begin(), m.rowPtr().end());
    }
    return s;
}

std::string
MatrixStats::toString(const std::string &name) const
{
    std::ostringstream os;
    if (!name.empty())
        os << name << ": ";
    os << rows << "x" << cols << ", nnz=" << nnz << ", nnz/row="
       << nnzPerRow << ", bw=" << bandwidth << ", expRange=["
       << expMin << "," << expMax << "]";
    return os.str();
}

} // namespace msc
