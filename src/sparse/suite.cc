#include "sparse/suite.hh"

#include "util/logging.hh"

namespace msc {

namespace {

/** Convenience builder for a tiled entry. */
SuiteEntry
tiledEntry(const std::string &name, const std::string &domain,
           bool spd, std::size_t paperNnz, std::int32_t paperRows,
           double paperNnzPerRow, double paperBlockedPct,
           const TiledParams &params)
{
    SuiteEntry e;
    e.name = name;
    e.domain = domain;
    e.spd = spd;
    e.paperNnz = paperNnz;
    e.paperRows = paperRows;
    e.paperNnzPerRow = paperNnzPerRow;
    e.paperBlockedPct = paperBlockedPct;
    e.family = SuiteEntry::Family::Tiled;
    e.tiled = params;
    return e;
}

TiledParams
base(std::int32_t rows, bool spd, std::uint64_t seed)
{
    TiledParams p;
    p.rows = rows;
    p.symmetricPattern = spd;
    p.spd = spd;
    p.diagDominance = 0.05;
    p.seed = seed;
    p.values.tileExpSigma = 2.5;
    p.values.elemExpSigma = 1.2;
    return p;
}

std::vector<SuiteEntry>
makeSuite()
{
    std::vector<SuiteEntry> suite;

    // ---------------- SPD matrices (CG) ---------------------------
    {
        // Electromagnetics: moderately blockable shell structure.
        TiledParams p = base(101492, true, 1001);
        p.tile = 48;
        p.tileDensity = 0.165;
        p.scatterPerRow = 3.65;
        p.diagDominance = 0.012;
        suite.push_back(tiledEntry(
            "2cubes_sphere", "electromagnetics", true,
            1647264, 101492, 16.2, 49.7, p));
    }
    {
        // FEM crystal vibration: dense band, highly blockable.
        TiledParams p = base(24696, true, 1002);
        p.tile = 48;
        p.tileDensity = 0.45;
        p.scatterPerRow = 0.5;
        p.diagDominance = 0.05;
        suite.push_back(tiledEntry(
            "crystm03", "materials", true,
            583770, 24696, 23.6, 94.7, p));
    }
    {
        // Financial portfolio optimization: hierarchical, mixed.
        TiledParams p = base(74752, true, 1003);
        p.tile = 32;
        p.tileDensity = 0.24;
        p.tileRowProb = 0.45;
        p.scatterPerRow = 1.75;
        p.diagDominance = 0.05;
        suite.push_back(tiledEntry(
            "finan512", "economics", true,
            596992, 74752, 7.9, 46.7, p));
    }
    {
        // Circuit simulation (AMD): sparse rows, clustered part.
        TiledParams p = base(150102, true, 1004);
        p.tile = 16;
        p.tileDensity = 0.55;
        p.tileRowProb = 0.28;
        p.scatterPerRow = 0.52;
        p.diagDominance = 0.15;
        suite.push_back(tiledEntry(
            "G2_circuit", "circuit simulation", true,
            726674, 150102, 4.5, 60.9, p));
    }
    {
        // Shuttle rocket booster FEM: dense band, wide exponents.
        TiledParams p = base(54870, true, 1005);
        p.tile = 64;
        p.diagTiles = 2;
        p.tileDensity = 0.375;
        p.scatterPerRow = 0.05;
        p.values.tileExpSigma = 6.0;
        p.values.elemExpSigma = 11.0;
        p.values.outlierProb = 3e-4;
        p.values.outlierMag = 85.0;
        p.diagDominance = 0.15;
        suite.push_back(tiledEntry(
            "nasasrb", "structural", true,
            2677324, 54870, 49.8, 99.1, p));
    }
    {
        // Pressure Poisson FEM: dense band, very narrow exponents.
        TiledParams p = base(14822, true, 1006);
        p.tile = 64;
        p.diagTiles = 2;
        p.tileDensity = 0.36;
        p.scatterPerRow = 0.3;
        p.values.tileExpSigma = 0.8;
        p.values.elemExpSigma = 0.4;
        p.diagDominance = 0.0004;
        suite.push_back(tiledEntry(
            "Pres_Poisson", "computational fluid dynamics", true,
            715804, 14822, 48.3, 96.4, p));
    }
    {
        // FEM acoustics: blockable band.
        TiledParams p = base(66127, true, 1007);
        p.tile = 48;
        p.diagTiles = 2;
        p.tileDensity = 0.24;
        p.scatterPerRow = 0.5;
        p.diagDominance = 0.12;
        suite.push_back(tiledEntry(
            "qa8fm", "acoustics", true,
            1660579, 66127, 25.1, 92.8, p));
    }
    {
        // Ship structure FEM: very dense rows, partially blockable.
        TiledParams p = base(34920, true, 1008);
        p.tile = 64;
        p.diagTiles = 2;
        p.tileDensity = 0.56;
        p.scatterPerRow = 19.0;
        p.diagDominance = 0.0015;
        suite.push_back(tiledEntry(
            "ship_001", "structural", true,
            3896496, 34920, 111.6, 66.4, p));
    }
    {
        // Thermomechanics: uniform scatter, effectively unblockable.
        // Scatter density per blocking candidate is kept at the
        // full-scale value (see suite.hh).
        TiledParams p = base(102158, true, 1009);
        p.diagTiles = 0;
        p.tileDensity = 0.0;
        p.scatterPerRow = 2.9;
        p.diagDominance = 0.004;
        suite.push_back(tiledEntry(
            "thermomech_TC", "thermal", true,
            711558, 102158, 6.8, 0.8, p));
    }
    {
        // Trefethen_20000 (exact construction, scaled to 5000).
        SuiteEntry e;
        e.name = "Trefethen_20000";
        e.domain = "combinatorial";
        e.spd = true;
        e.paperNnz = 554466;
        e.paperRows = 20000;
        e.paperNnzPerRow = 27.7;
        e.paperBlockedPct = 63.3;
        e.family = SuiteEntry::Family::Trefethen;
        e.trefethenN = 20000;
        suite.push_back(e);
    }

    // ---------------- non-SPD matrices (BiCG-STAB) -----------------
    {
        // Large ASIC netlist: clustered + long-range nets.
        TiledParams p = base(99340, false, 2001);
        p.tile = 24;
        p.tileDensity = 0.33;
        p.tileRowProb = 0.70;
        p.scatterPerRow = 3.0;
        p.diagDominance = 0.05;
        suite.push_back(tiledEntry(
            "ASIC_100K", "circuit simulation", false,
            940621, 99340, 9.5, 60.9, p));
    }
    {
        // Bipolar circuit: sparse rows, clustered part.
        TiledParams p = base(68902, false, 2002);
        p.tile = 16;
        p.tileDensity = 0.32;
        p.tileRowProb = 0.65;
        p.scatterPerRow = 1.1;
        p.diagDominance = 0.08;
        suite.push_back(tiledEntry(
            "bcircuit", "circuit simulation", false,
            375558, 68902, 5.4, 64.9, p));
    }
    {
        // Plasma physics: banded, mostly blockable.
        TiledParams p = base(84617, false, 2003);
        p.tile = 16;
        p.tileDensity = 0.29;
        p.tileRowProb = 0.80;
        p.scatterPerRow = 0.8;
        p.diagDominance = 0.15;
        suite.push_back(tiledEntry(
            "epb3", "plasma physics", false,
            463625, 84617, 5.5, 72.2, p));
    }
    {
        // Quantum chemistry: dense clusters + long-range coupling.
        TiledParams p = base(61349, false, 2004);
        p.tile = 64;
        p.tileDensity = 0.59;
        p.scatterPerRow = 16.0;
        p.diagDominance = 0.0012;
        suite.push_back(tiledEntry(
            "GaAsH6", "quantum chemistry", false,
            3381809, 61349, 55.12, 69.2, p));
    }
    {
        // 3D Navier-Stokes: uniform spread, effectively unblockable
        // (Figure 11). Scatter density per candidate kept at the
        // full-scale value.
        TiledParams p = base(20414, false, 2005);
        p.diagTiles = 0;
        p.tileDensity = 0.0;
        p.scatterPerRow = 81.0;
        p.diagDominance = 0.0006;
        suite.push_back(tiledEntry(
            "ns3Da", "computational fluid dynamics", false,
            1679599, 20414, 82.0, 3.2, p));
    }
    {
        // Quantum chemistry, larger: half blockable.
        TiledParams p = base(97569, false, 2006);
        p.tile = 64;
        p.tileDensity = 0.44;
        p.scatterPerRow = 24.0;
        p.diagDominance = 0.0015;
        suite.push_back(tiledEntry(
            "Si34H36", "quantum chemistry", false,
            5156379, 97569, 52.8, 53.7, p));
    }
    {
        // Torso bioengineering mesh: tight band, highly blockable.
        TiledParams p = base(115697, false, 2007);
        p.tile = 32;
        p.tileDensity = 0.24;
        p.scatterPerRow = 0.15;
        p.scatterBand = 96;
        p.diagDominance = 0.15;
        suite.push_back(tiledEntry(
            "torso2", "bioengineering", false,
            1033473, 115697, 8.9, 98.1, p));
    }
    {
        // Unstructured CFD (Venkatakrishnan): mostly blockable.
        TiledParams p = base(62424, false, 2008);
        p.tile = 48;
        p.diagTiles = 2;
        p.tileDensity = 0.23;
        p.scatterPerRow = 4.5;
        p.diagDominance = 0.002;
        suite.push_back(tiledEntry(
            "venkat25", "computational fluid dynamics", false,
            1717792, 62424, 27.5, 79.8, p));
    }
    {
        // Semiconductor device simulation.
        TiledParams p = base(26064, false, 2009);
        p.tile = 16;
        p.tileDensity = 0.29;
        p.tileRowProb = 0.90;
        p.scatterPerRow = 1.6;
        p.diagDominance = 0.06;
        suite.push_back(tiledEntry(
            "wang3", "semiconductor devices", false,
            177168, 26064, 6.8, 64.6, p));
    }
    {
        // Materials (xenon): banded, blockable.
        TiledParams p = base(48600, false, 2010);
        p.tile = 48;
        p.diagTiles = 2;
        p.tileDensity = 0.205;
        p.scatterPerRow = 3.6;
        p.diagDominance = 0.003;
        suite.push_back(tiledEntry(
            "xenon1", "materials", false,
            1181120, 48600, 24.3, 81.0, p));
    }
    return suite;
}

} // namespace

const std::vector<SuiteEntry> &
suiteMatrices()
{
    static const std::vector<SuiteEntry> suite = makeSuite();
    return suite;
}

const SuiteEntry &
suiteEntry(const std::string &name)
{
    for (const auto &e : suiteMatrices()) {
        if (e.name == name)
            return e;
    }
    fatal("suiteEntry: unknown matrix ", name);
}

Csr
buildSuiteMatrix(const SuiteEntry &entry)
{
    switch (entry.family) {
      case SuiteEntry::Family::Tiled:
        return genTiled(entry.tiled);
      case SuiteEntry::Family::Trefethen:
        return genTrefethen(entry.trefethenN);
    }
    panic("buildSuiteMatrix: bad family");
}

} // namespace msc
