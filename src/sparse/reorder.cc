#include "sparse/reorder.hh"

#include <algorithm>
#include <queue>

#include "util/logging.hh"

namespace msc {

std::vector<std::int32_t>
reverseCuthillMcKee(const Csr &m)
{
    if (m.rows() != m.cols())
        fatal("reverseCuthillMcKee: matrix must be square");
    const std::int32_t n = m.rows();

    // Symmetrized adjacency (pattern of A + A^T, no diagonal).
    const Csr t = m.transpose();
    std::vector<std::vector<std::int32_t>> adj(
        static_cast<std::size_t>(n));
    auto addEdges = [&](const Csr &mat) {
        for (std::int32_t r = 0; r < n; ++r) {
            for (std::int32_t c : mat.rowCols(r)) {
                if (c != r)
                    adj[static_cast<std::size_t>(r)].push_back(c);
            }
        }
    };
    addEdges(m);
    addEdges(t);
    std::vector<std::int32_t> degree(static_cast<std::size_t>(n));
    for (std::int32_t r = 0; r < n; ++r) {
        auto &nb = adj[static_cast<std::size_t>(r)];
        std::sort(nb.begin(), nb.end());
        nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
        degree[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(nb.size());
    }

    std::vector<std::int32_t> order;
    order.reserve(static_cast<std::size_t>(n));
    std::vector<std::uint8_t> visited(static_cast<std::size_t>(n),
                                      0);

    // Candidate start nodes sorted by degree (min-degree heuristic).
    std::vector<std::int32_t> byDegree(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
        byDegree[static_cast<std::size_t>(i)] = i;
    std::sort(byDegree.begin(), byDegree.end(),
              [&](std::int32_t a, std::int32_t b) {
                  return degree[static_cast<std::size_t>(a)] <
                         degree[static_cast<std::size_t>(b)];
              });

    for (std::int32_t seed : byDegree) {
        if (visited[static_cast<std::size_t>(seed)])
            continue;
        // BFS in degree order (Cuthill-McKee).
        std::queue<std::int32_t> frontier;
        frontier.push(seed);
        visited[static_cast<std::size_t>(seed)] = 1;
        while (!frontier.empty()) {
            const std::int32_t v = frontier.front();
            frontier.pop();
            order.push_back(v);
            std::vector<std::int32_t> next;
            for (std::int32_t nb : adj[static_cast<std::size_t>(v)]) {
                if (!visited[static_cast<std::size_t>(nb)]) {
                    visited[static_cast<std::size_t>(nb)] = 1;
                    next.push_back(nb);
                }
            }
            std::sort(next.begin(), next.end(),
                      [&](std::int32_t a, std::int32_t b) {
                          return degree[static_cast<std::size_t>(a)] <
                                 degree[static_cast<std::size_t>(b)];
                      });
            for (std::int32_t nb : next)
                frontier.push(nb);
        }
    }

    // Reverse (the "R" in RCM).
    std::reverse(order.begin(), order.end());
    return order;
}

Csr
permuteSymmetric(const Csr &m, std::span<const std::int32_t> perm)
{
    if (m.rows() != m.cols())
        fatal("permuteSymmetric: matrix must be square");
    if (perm.size() != static_cast<std::size_t>(m.rows()))
        fatal("permuteSymmetric: permutation size mismatch");
    // inverse[old] = new
    std::vector<std::int32_t> inverse(perm.size(), -1);
    for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] < 0 ||
            perm[i] >= static_cast<std::int32_t>(perm.size()))
            fatal("permuteSymmetric: bad permutation entry");
        if (inverse[static_cast<std::size_t>(perm[i])] != -1)
            fatal("permuteSymmetric: not a permutation");
        inverse[static_cast<std::size_t>(perm[i])] =
            static_cast<std::int32_t>(i);
    }

    Coo coo;
    coo.rows = coo.cols = m.rows();
    coo.entries.reserve(m.nnz());
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        const auto cols = m.rowCols(r);
        const auto vals = m.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            coo.add(inverse[static_cast<std::size_t>(r)],
                    inverse[static_cast<std::size_t>(cols[k])],
                    vals[k]);
        }
    }
    return Csr::fromCoo(coo);
}

std::vector<double>
permuteVector(std::span<const double> v,
              std::span<const std::int32_t> perm)
{
    if (v.size() != perm.size())
        fatal("permuteVector: size mismatch");
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = v[static_cast<std::size_t>(perm[i])];
    return out;
}

std::vector<double>
unpermuteVector(std::span<const double> v,
                std::span<const std::int32_t> perm)
{
    if (v.size() != perm.size())
        fatal("unpermuteVector: size mismatch");
    std::vector<double> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[static_cast<std::size_t>(perm[i])] = v[i];
    return out;
}

} // namespace msc
