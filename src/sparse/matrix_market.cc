#include "sparse/matrix_market.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace msc {

namespace {

std::string
lowered(std::string s)
{
    for (auto &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

/** Throw the structured loader error, message formatted like
 *  fatal() so existing catch-and-print sites look unchanged. */
template <typename... Args>
[[noreturn]] void
mmFail(MatrixMarketError::Reason why, std::uint64_t parsed,
       Args &&...args)
{
    throw MatrixMarketError(
        why,
        detail::concat("fatal: ", std::forward<Args>(args)...),
        parsed);
}

/** Drop a trailing '\r': files written on Windows arrive with CRLF
 *  line endings, and the '\r' must not leak into the last token of
 *  an entry (where it fails the >> extraction) or the banner. */
void
stripCr(std::string &line)
{
    if (!line.empty() && line.back() == '\r')
        line.pop_back();
}

} // namespace

MatrixMarketHeader
readMatrixMarketHeader(std::istream &in)
{
    using Reason = MatrixMarketError::Reason;
    std::string line;
    if (!std::getline(in, line)) {
        if (in.bad())
            mmFail(Reason::StreamError, 0,
                   "matrix market: read error on banner line");
        mmFail(Reason::EmptyInput, 0, "matrix market: empty input");
    }
    stripCr(line);
    // A UTF-8 byte-order mark before the banner is produced by some
    // Windows editors; the spec's banner match is byte-exact, so the
    // BOM must be stripped rather than folded into the tag.
    if (line.size() >= 3 && line[0] == '\xef' && line[1] == '\xbb' &&
        line[2] == '\xbf') {
        line.erase(0, 3);
    }

    std::istringstream banner(line);
    std::string tag, object, format, field, symmetry;
    banner >> tag >> object >> format >> field >> symmetry;
    if (tag != "%%MatrixMarket")
        mmFail(Reason::BadBanner, 0,
               "matrix market: bad banner: ", line);
    object = lowered(object);
    format = lowered(format);
    field = lowered(field);
    symmetry = lowered(symmetry);
    if (object != "matrix" || format != "coordinate")
        mmFail(Reason::Unsupported, 0,
               "matrix market: only coordinate matrices supported");
    if (field != "real" && field != "integer" && field != "pattern")
        mmFail(Reason::Unsupported, 0,
               "matrix market: unsupported field: ", field);
    MatrixMarketHeader h;
    h.pattern = (field == "pattern");
    if (symmetry == "general") {
        // nothing
    } else if (symmetry == "symmetric") {
        h.symmetric = true;
    } else if (symmetry == "skew-symmetric") {
        h.symmetric = true;
        h.skewSymmetric = true;
    } else {
        mmFail(Reason::Unsupported, 0,
               "matrix market: unsupported symmetry: ", symmetry);
    }
    // The MM spec allows pattern matrices to be general or symmetric
    // only: a skew-symmetric pattern has no values to negate, and
    // mirroring the implicit 1.0 as -1.0 would fabricate data.
    if (h.pattern && h.skewSymmetric)
        mmFail(Reason::Unsupported, 0,
               "matrix market: pattern field cannot be "
               "skew-symmetric");

    // Skip comments.
    bool haveSizeLine = false;
    while (std::getline(in, line)) {
        stripCr(line);
        if (!line.empty() && line[0] != '%') {
            haveSizeLine = true;
            break;
        }
    }
    if (!haveSizeLine) {
        if (in.bad())
            mmFail(Reason::StreamError, 0,
                   "matrix market: read error before size line");
        mmFail(Reason::Truncated, 0,
               "matrix market: missing size line");
    }
    std::istringstream sizes(line);
    long long rows = 0, cols = 0, declaredNnz = 0;
    sizes >> rows >> cols >> declaredNnz;
    if (sizes.fail() || rows <= 0 || cols <= 0 || declaredNnz < 0)
        mmFail(Reason::BadSize, 0,
               "matrix market: bad size line: ", line);
    constexpr long long dimMax = 0x7fffffff; // int32 storage
    if (rows > dimMax || cols > dimMax)
        mmFail(Reason::BadSize, 0,
               "matrix market: dimensions out of range: ", line);
    h.rows = static_cast<std::int32_t>(rows);
    h.cols = static_cast<std::int32_t>(cols);
    h.declaredEntries = static_cast<std::uint64_t>(declaredNnz);
    return h;
}

void
forEachMatrixMarketEntry(
    std::istream &in, const MatrixMarketHeader &header,
    const std::function<void(std::int32_t, std::int32_t, double)>
        &sink)
{
    using Reason = MatrixMarketError::Reason;
    std::string line;
    for (std::uint64_t k = 0; k < header.declaredEntries; ++k) {
        const std::uint64_t parsed = k;
        if (!std::getline(in, line)) {
            // EOF mid-entry is a truncated file (partial download);
            // badbit is the device failing underneath us. Both were
            // previously one message -- callers retrying a download
            // need to tell them apart.
            if (in.bad())
                mmFail(Reason::StreamError, parsed,
                       "matrix market: read error after ", k,
                       " entries");
            mmFail(Reason::Truncated, parsed,
                   "matrix market: truncated after ", k,
                   " entries");
        }
        stripCr(line);
        if (line.empty() || line[0] == '%') {
            --k;
            continue;
        }
        std::istringstream entry(line);
        long long r = 0, c = 0;
        double v = 1.0;
        entry >> r >> c;
        if (!header.pattern)
            entry >> v;
        if (entry.fail())
            mmFail(Reason::BadEntry, parsed,
                   "matrix market: bad entry line: ", line);
        // Checked on the wide value: a huge 1-based index must not
        // wrap through the int32 cast into a valid-looking slot.
        if (r < 1 || r > header.rows || c < 1 || c > header.cols)
            mmFail(Reason::BadEntry, parsed,
                   "matrix market: entry index out of range: ",
                   line);
        // Skew-symmetry forces a zero diagonal; a nonzero explicit
        // diagonal entry contradicts the declared symmetry and must
        // not be silently stored.
        if (header.skewSymmetric && r == c && v != 0.0) {
            mmFail(Reason::BadEntry, parsed,
                   "matrix market: nonzero diagonal entry in "
                   "skew-symmetric matrix: ", line);
        }
        sink(static_cast<std::int32_t>(r - 1),
             static_cast<std::int32_t>(c - 1), v);
        if (header.symmetric && r != c) {
            sink(static_cast<std::int32_t>(c - 1),
                 static_cast<std::int32_t>(r - 1),
                 header.skewSymmetric ? -v : v);
        }
    }
    // Anything beyond the declared count other than blank lines or
    // comments means the file does not end where its header claims:
    // a concatenation accident or corruption, never ignorable.
    while (std::getline(in, line)) {
        stripCr(line);
        if (line.empty() || line[0] == '%')
            continue;
        mmFail(Reason::BadEntry, header.declaredEntries,
               "matrix market: trailing garbage after ",
               header.declaredEntries, " declared entries: ", line);
    }
    if (in.bad())
        mmFail(Reason::StreamError, header.declaredEntries,
               "matrix market: read error after last entry");
}

Csr
readMatrixMarket(std::istream &in)
{
    const MatrixMarketHeader h = readMatrixMarketHeader(in);
    Coo coo;
    coo.rows = h.rows;
    coo.cols = h.cols;
    // A hostile nnz in the header must not abort on allocation; the
    // vector grows on demand and a lying header surfaces as a
    // truncation error in the entry walk. Clamp before the symmetric
    // doubling so the product cannot wrap std::size_t.
    coo.entries.reserve(
        std::min<std::uint64_t>(h.declaredEntries, 1ull << 20) *
        (h.symmetric ? 2 : 1));
    forEachMatrixMarketEntry(
        in, h, [&coo](std::int32_t r, std::int32_t c, double v) {
            coo.add(r, c, v);
        });
    return Csr::fromCoo(coo);
}

Csr
readMatrixMarket(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        mmFail(MatrixMarketError::Reason::CannotOpen, 0,
               "matrix market: cannot open ", path);
    return readMatrixMarket(in);
}

void
writeMatrixMarket(const Csr &m, std::ostream &out)
{
    out << "%%MatrixMarket matrix coordinate real general\n";
    out << "% written by mscsim\n";
    out << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
    out.precision(17);
    for (std::int32_t r = 0; r < m.rows(); ++r) {
        const auto cols = m.rowCols(r);
        const auto vals = m.rowVals(r);
        for (std::size_t k = 0; k < cols.size(); ++k) {
            out << (r + 1) << " " << (cols[k] + 1) << " " << vals[k]
                << "\n";
        }
    }
}

void
writeMatrixMarket(const Csr &m, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("matrix market: cannot open ", path, " for writing");
    writeMatrixMarket(m, out);
}

} // namespace msc
