#include "sparse/binio.hh"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "sparse/matrix_market.hh"
#include "util/telemetry.hh"

#if __has_include(<sys/mman.h>)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define MSC_BINIO_HAVE_MMAP 1
#else
#define MSC_BINIO_HAVE_MMAP 0
#endif

namespace msc {

namespace {

constinit telemetry::Counter ctrMapHits{"binio.map_hits"};
constinit telemetry::Counter
    ctrFallbackParse{"binio.fallback_parse"};
constinit telemetry::Counter
    ctrStaleSidecar{"binio.stale_sidecar"};

constexpr char kMagic[8] = {'M', 'S', 'C', 'B', 'I', 'N', '1', '\n'};
constexpr std::uint64_t kVersion = 1;
/** Stored little-endian; a big-endian host reads it permuted and
 *  rejects the file instead of silently mis-decoding. */
constexpr std::uint64_t kEndianTag = 0x0102030405060708ULL;
constexpr std::size_t kAlign = 64;
constexpr std::size_t kFixedHeaderBytes = 112;
constexpr std::uint64_t kFlagHasPlan = 1;
constexpr std::uint64_t kMaxSections = 16;

enum class Sec : std::uint64_t
{
    RowPtr = 1,
    ColIdx = 2,
    Values = 3,
    PlanStats = 4,
    BlockDir = 5,
    BlockElems = 6,
    UnbRowPtr = 7,
    UnbColIdx = 8,
    UnbValues = 9,
};

/** On-disk block directory entry. */
struct DirEntry
{
    std::int32_t rowOrigin;
    std::int32_t colOrigin;
    std::uint32_t size;
    std::uint32_t pad;
    std::uint64_t elemOffset; //!< into BlockElems, in elements
    std::uint64_t elemCount;
};

static_assert(sizeof(DirEntry) == 32);
static_assert(sizeof(Triplet) == 16,
              "BlockElems aliases the in-memory Triplet layout");

template <typename... Args>
[[noreturn]] void
bfail(BinioError::Reason why, Args &&...args)
{
    throw BinioError(
        why, detail::concat("fatal: ", std::forward<Args>(args)...));
}

std::size_t
alignUp(std::size_t v)
{
    return (v + kAlign - 1) & ~(kAlign - 1);
}

/** One section staged for writing. */
struct OutSection
{
    Sec id;
    const void *data;
    std::size_t bytes;
};

/** The checksum covers the header's semantic fields (geometry,
 *  keys, flags) as well as every section byte: a bit flip anywhere
 *  that could change what the loader hands out must fail the
 *  checksum, not map to a plausible-but-different matrix. Only
 *  alignment padding is uncovered (and unread). */
void
checksumHeader(Hash128 &h, std::uint64_t rows, std::uint64_t cols,
               std::uint64_t nnz, Digest128 matKey,
               std::uint64_t flags, Digest128 blkKey)
{
    h.u64(rows);
    h.u64(cols);
    h.u64(nnz);
    h.u64(matKey.hi);
    h.u64(matKey.lo);
    h.u64(flags);
    h.u64(blkKey.hi);
    h.u64(blkKey.lo);
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    const std::size_t at = buf.size();
    buf.resize(at + 8);
    std::memcpy(buf.data() + at, &v, 8);
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

} // namespace

Digest128
csrContentKey(const Csr &m)
{
    Hash128 h;
    h.u64(static_cast<std::uint64_t>(m.rows()));
    h.u64(static_cast<std::uint64_t>(m.cols()));
    h.u64(m.nnz());
    const auto rp = m.rowPtr();
    h.bytes(rp.data(), rp.size_bytes());
    const auto ci = m.colIndex();
    h.bytes(ci.data(), ci.size_bytes());
    const auto vals = m.values();
    h.bytes(vals.data(), vals.size_bytes());
    return h.digest();
}

Digest128
blockingConfigKey(const BlockingConfig &config)
{
    Hash128 h;
    h.u64(config.sizes.size());
    for (unsigned s : config.sizes)
        h.u64(s);
    h.f64(config.densityFactor);
    h.u64(static_cast<std::uint64_t>(config.maxExpRange));
    return h.digest();
}

std::string
artifactSidecarPath(const std::string &matrixPath)
{
    const std::string ext = ".mscbin";
    if (matrixPath.size() >= ext.size() &&
        matrixPath.compare(matrixPath.size() - ext.size(),
                           ext.size(), ext) == 0) {
        return matrixPath;
    }
    return matrixPath + ext;
}

void
writeArtifact(const std::string &path, const Csr &m,
              const BlockPlan *plan, const BlockingConfig &config)
{
    const auto rp = m.rowPtr();
    const auto ci = m.colIndex();
    const auto vals = m.values();

    std::vector<OutSection> sections;
    sections.push_back(
        {Sec::RowPtr, rp.data(), rp.size_bytes()});
    sections.push_back(
        {Sec::ColIdx, ci.data(), ci.size_bytes()});
    sections.push_back(
        {Sec::Values, vals.data(), vals.size_bytes()});

    // Serialized plan sections (owned buffers).
    std::vector<std::uint8_t> statsBuf;
    std::vector<DirEntry> dir;
    std::vector<Triplet> elems;
    if (plan != nullptr) {
        if (plan->rows != m.rows() || plan->cols != m.cols())
            fatal("writeArtifact: plan dimensions disagree with "
                  "matrix");
        if (plan->stats.blocksPerSize.size() != config.sizes.size())
            fatal("writeArtifact: plan/config size-class mismatch");
        putU64(statsBuf, plan->stats.totalNnz);
        putU64(statsBuf, plan->stats.blockedNnz);
        putU64(statsBuf, plan->stats.unblockedNnz);
        putU64(statsBuf, plan->stats.expRangeEvictions);
        putU64(statsBuf, plan->stats.elementVisits);
        putU64(statsBuf, config.sizes.size());
        for (std::size_t si = 0; si < config.sizes.size(); ++si) {
            putU64(statsBuf, config.sizes[si]);
            putU64(statsBuf, plan->stats.blocksPerSize[si]);
        }

        dir.reserve(plan->blocks.size());
        std::uint64_t at = 0;
        for (const MatrixBlock &b : plan->blocks) {
            dir.push_back({b.rowOrigin, b.colOrigin, b.size, 0, at,
                           b.elems.size()});
            at += b.elems.size();
        }
        elems.reserve(at);
        for (const MatrixBlock &b : plan->blocks)
            elems.insert(elems.end(), b.elems.begin(),
                         b.elems.end());

        const auto urp = plan->unblocked.rowPtr();
        const auto uci = plan->unblocked.colIndex();
        const auto uva = plan->unblocked.values();
        sections.push_back(
            {Sec::PlanStats, statsBuf.data(), statsBuf.size()});
        sections.push_back(
            {Sec::BlockDir, dir.data(),
             dir.size() * sizeof(DirEntry)});
        sections.push_back(
            {Sec::BlockElems, elems.data(),
             elems.size() * sizeof(Triplet)});
        sections.push_back(
            {Sec::UnbRowPtr, urp.data(), urp.size_bytes()});
        sections.push_back(
            {Sec::UnbColIdx, uci.data(), uci.size_bytes()});
        sections.push_back(
            {Sec::UnbValues, uva.data(), uva.size_bytes()});
    }

    // Lay out the payload.
    const std::size_t headerBytes =
        kFixedHeaderBytes + sections.size() * 24;
    std::vector<std::uint64_t> offsets(sections.size());
    std::size_t at = alignUp(headerBytes);
    for (std::size_t i = 0; i < sections.size(); ++i) {
        offsets[i] = at;
        at = alignUp(at + sections[i].bytes);
    }

    const Digest128 matKey = csrContentKey(m);
    const Digest128 blkKey =
        plan ? blockingConfigKey(config) : Digest128{};
    Hash128 sumHash;
    checksumHeader(sumHash, static_cast<std::uint64_t>(m.rows()),
                   static_cast<std::uint64_t>(m.cols()), m.nnz(),
                   matKey, plan ? kFlagHasPlan : 0, blkKey);
    for (const OutSection &s : sections) {
        sumHash.u64(static_cast<std::uint64_t>(s.id));
        sumHash.bytes(s.data, s.bytes);
    }
    const Digest128 sum = sumHash.digest();

    std::vector<std::uint8_t> header;
    header.reserve(headerBytes);
    header.insert(header.end(), kMagic, kMagic + 8);
    putU64(header, kVersion);
    putU64(header, kEndianTag);
    putU64(header, static_cast<std::uint64_t>(m.rows()));
    putU64(header, static_cast<std::uint64_t>(m.cols()));
    putU64(header, m.nnz());
    putU64(header, matKey.hi);
    putU64(header, matKey.lo);
    putU64(header, plan ? kFlagHasPlan : 0);
    putU64(header, blkKey.hi);
    putU64(header, blkKey.lo);
    putU64(header, sum.hi);
    putU64(header, sum.lo);
    putU64(header, sections.size());
    for (std::size_t i = 0; i < sections.size(); ++i) {
        putU64(header, static_cast<std::uint64_t>(sections[i].id));
        putU64(header, offsets[i]);
        putU64(header, sections[i].bytes);
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("writeArtifact: cannot open ", path, " for writing");
    out.write(reinterpret_cast<const char *>(header.data()),
              static_cast<std::streamsize>(header.size()));
    std::size_t written = header.size();
    static constexpr char zeros[kAlign] = {};
    for (std::size_t i = 0; i < sections.size(); ++i) {
        while (written < offsets[i]) {
            const std::size_t pad = std::min<std::size_t>(
                offsets[i] - written, kAlign);
            out.write(zeros, static_cast<std::streamsize>(pad));
            written += pad;
        }
        if (sections[i].bytes > 0) { // empty vectors may hand null
            out.write(
                static_cast<const char *>(sections[i].data),
                static_cast<std::streamsize>(sections[i].bytes));
        }
        written += sections[i].bytes;
    }
    out.flush();
    if (!out)
        fatal("writeArtifact: write failed for ", path);
}

MappedArtifact::~MappedArtifact()
{
#if MSC_BINIO_HAVE_MMAP
    if (usedMmap && base != nullptr)
        ::munmap(const_cast<std::uint8_t *>(base), mapBytes);
#endif
}

std::shared_ptr<MappedArtifact>
MappedArtifact::map(const std::string &path)
{
    using Reason = BinioError::Reason;
    // shared_ptr with access to the private ctor.
    std::shared_ptr<MappedArtifact> art(new MappedArtifact());

#if MSC_BINIO_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        bfail(Reason::CannotOpen, "binio: cannot open ", path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        bfail(Reason::CannotOpen, "binio: cannot stat ", path);
    }
    art->mapBytes = static_cast<std::size_t>(st.st_size);
    if (art->mapBytes > 0) {
        void *p = ::mmap(nullptr, art->mapBytes, PROT_READ,
                         MAP_PRIVATE, fd, 0);
        ::close(fd);
        if (p == MAP_FAILED)
            bfail(Reason::CannotOpen, "binio: mmap failed for ",
                  path);
        art->base = static_cast<const std::uint8_t *>(p);
        art->usedMmap = true;
    } else {
        ::close(fd);
    }
#else
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        bfail(Reason::CannotOpen, "binio: cannot open ", path);
    const std::streamoff sz = in.tellg();
    in.seekg(0);
    art->mapBytes = static_cast<std::size_t>(sz);
    art->fallbackBuf =
        std::make_unique<std::uint8_t[]>(art->mapBytes);
    in.read(reinterpret_cast<char *>(art->fallbackBuf.get()),
            static_cast<std::streamsize>(art->mapBytes));
    if (!in)
        bfail(Reason::CannotOpen, "binio: read failed for ", path);
    art->base = art->fallbackBuf.get();
#endif

    const std::uint8_t *b = art->base;
    const std::size_t n = art->mapBytes;
    if (n < 8)
        bfail(Reason::Truncated, "binio: ", path,
              " too short for a magic number (", n, " bytes)");
    if (std::memcmp(b, kMagic, 8) != 0)
        bfail(Reason::BadMagic, "binio: ", path,
              " is not an msc artifact");
    if (n < kFixedHeaderBytes)
        bfail(Reason::Truncated, "binio: ", path,
              " truncated inside the header");
    const std::uint64_t version = getU64(b + 8);
    if (version != kVersion)
        bfail(Reason::BadVersion, "binio: ", path,
              " is format version ", version, "; this build reads ",
              kVersion);
    if (getU64(b + 16) != kEndianTag)
        bfail(Reason::Unsupported, "binio: ", path,
              " byte order does not match this host");

    const std::uint64_t rows = getU64(b + 24);
    const std::uint64_t cols = getU64(b + 32);
    const std::uint64_t nnz = getU64(b + 40);
    if (rows > 0x7fffffffULL || cols > 0x7fffffffULL)
        bfail(Reason::Unsupported, "binio: ", path,
              " dimensions exceed int32");
    // Bound nnz before any size arithmetic depends on it: a forged
    // count like 2^62 would wrap the nnz*4 / nnz*8 expected-section
    // sizes to 0, match empty sections, and send the content checks
    // iterating past the mapping. rows and cols are capped at int32
    // above, so rows*cols cannot overflow uint64; the file-size
    // bound (ColIdx alone needs 4 bytes per nonzero) then keeps
    // every later nnz-derived product within the mapping.
    if (nnz > rows * cols)
        bfail(Reason::BadSection, "binio: ", path, " declares ",
              nnz, " nonzeros in a ", rows, "x", cols, " matrix");
    if (nnz > n / 4)
        bfail(Reason::Truncated, "binio: ", path, " declares ", nnz,
              " nonzeros; the file cannot hold them");
    art->nRows = static_cast<std::int32_t>(rows);
    art->nCols = static_cast<std::int32_t>(cols);
    art->nz = static_cast<std::size_t>(nnz);
    art->matKey = {getU64(b + 48), getU64(b + 56)};
    const std::uint64_t flags = getU64(b + 64);
    art->planPresent = (flags & kFlagHasPlan) != 0;
    art->blkKey = {getU64(b + 72), getU64(b + 80)};
    const Digest128 storedSum{getU64(b + 88), getU64(b + 96)};
    const std::uint64_t sectionCount = getU64(b + 104);
    if (sectionCount > kMaxSections)
        bfail(Reason::BadSection, "binio: ", path, " declares ",
              sectionCount, " sections");
    const std::size_t headerBytes =
        kFixedHeaderBytes + sectionCount * 24;
    if (n < headerBytes)
        bfail(Reason::Truncated, "binio: ", path,
              " truncated inside the section table");

    // Resolve and bounds-check every section before touching any
    // payload byte: a short mapping must fail structurally, never
    // fault.
    struct Found
    {
        const std::uint8_t *p = nullptr;
        std::size_t bytes = 0;
        bool present = false;
    };
    Found found[10];
    for (std::uint64_t i = 0; i < sectionCount; ++i) {
        const std::uint8_t *e = b + kFixedHeaderBytes + i * 24;
        const std::uint64_t id = getU64(e);
        const std::uint64_t off = getU64(e + 8);
        const std::uint64_t bytes = getU64(e + 16);
        if (id == 0 || id > 9)
            bfail(Reason::BadSection, "binio: ", path,
                  " has unknown section id ", id);
        if (found[id].present)
            bfail(Reason::BadSection, "binio: ", path,
                  " has duplicate section id ", id);
        if (off % 8 != 0)
            bfail(Reason::BadSection, "binio: ", path,
                  " section ", id, " is misaligned");
        if (off > n || bytes > n - off)
            bfail(Reason::Truncated, "binio: ", path, " section ",
                  id, " extends past end of file");
        found[id] = {b + off, static_cast<std::size_t>(bytes),
                     true};
    }

    auto need = [&](Sec id, std::size_t expectBytes,
                    const char *what) -> const std::uint8_t * {
        const Found &f = found[static_cast<std::size_t>(id)];
        if (!f.present)
            bfail(Reason::BadSection, "binio: ", path,
                  " is missing its ", what, " section");
        if (f.bytes != expectBytes)
            bfail(Reason::BadSection, "binio: ", path, " ", what,
                  " section is ", f.bytes, " bytes; expected ",
                  expectBytes);
        return f.p;
    };

    const std::size_t rowPtrBytes =
        (static_cast<std::size_t>(art->nRows) + 1) * 8;
    art->rowPtrSec = reinterpret_cast<const std::int64_t *>(
        need(Sec::RowPtr, rowPtrBytes, "row-pointer"));
    art->colIdxSec = reinterpret_cast<const std::int32_t *>(
        need(Sec::ColIdx, art->nz * 4, "column-index"));
    art->valsSec = reinterpret_cast<const double *>(
        need(Sec::Values, art->nz * 8, "values"));

    if (art->planPresent) {
        const Found &ps =
            found[static_cast<std::size_t>(Sec::PlanStats)];
        if (!ps.present || ps.bytes < 48 || (ps.bytes - 48) % 16 != 0)
            bfail(Reason::BadSection, "binio: ", path,
                  " plan-stats section malformed");
        // Divide the trusted section length instead of multiplying
        // the untrusted count: 48 + nSizes*16 wraps for a forged
        // nSizes near 2^60 and would pass an equality check, then
        // blow up the decodePlan resize.
        if (getU64(ps.p + 40) != (ps.bytes - 48) / 16)
            bfail(Reason::BadSection, "binio: ", path,
                  " plan-stats size-class count disagrees with the "
                  "section length");
        art->planStatsSec = ps.p;
        art->planStatsBytes = ps.bytes;

        const Found &bd =
            found[static_cast<std::size_t>(Sec::BlockDir)];
        if (!bd.present || bd.bytes % sizeof(DirEntry) != 0)
            bfail(Reason::BadSection, "binio: ", path,
                  " block-directory section malformed");
        art->blockDirSec = bd.p;
        art->blockDirCount = bd.bytes / sizeof(DirEntry);

        const Found &be =
            found[static_cast<std::size_t>(Sec::BlockElems)];
        if (!be.present || be.bytes % sizeof(Triplet) != 0)
            bfail(Reason::BadSection, "binio: ", path,
                  " block-elements section malformed");
        art->blockElemsSec = be.p;
        art->blockElemCount = be.bytes / sizeof(Triplet);

        art->unbRowPtrSec = reinterpret_cast<const std::int64_t *>(
            need(Sec::UnbRowPtr, rowPtrBytes,
                 "unblocked row-pointer"));
        const Found &uc =
            found[static_cast<std::size_t>(Sec::UnbColIdx)];
        if (!uc.present || uc.bytes % 4 != 0)
            bfail(Reason::BadSection, "binio: ", path,
                  " unblocked column-index section malformed");
        art->unbNnz = uc.bytes / 4;
        art->unbColIdxSec =
            reinterpret_cast<const std::int32_t *>(uc.p);
        art->unbValsSec = reinterpret_cast<const double *>(
            need(Sec::UnbValues, art->unbNnz * 8,
                 "unblocked values"));
    }

    // Header + payload checksum: any bit flip below this line is
    // already excluded, so the content checks after it only guard
    // against a consistently-checksummed-but-wrong writer.
    {
        Hash128 h;
        checksumHeader(h, rows, cols, nnz, art->matKey, flags,
                       art->blkKey);
        for (std::uint64_t i = 0; i < sectionCount; ++i) {
            const std::uint8_t *e = b + kFixedHeaderBytes + i * 24;
            h.u64(getU64(e));
            h.bytes(b + getU64(e + 8), getU64(e + 16));
        }
        if (h.digest() != storedSum)
            bfail(Reason::BadChecksum, "binio: ", path,
                  " payload checksum mismatch");
    }

    // Content validation: the mapped arrays feed unchecked index
    // arithmetic (spmv, cluster scratch), so every index must be
    // proven in range here, once.
    auto checkCsr = [&](const std::int64_t *rp,
                        const std::int32_t *ci, std::size_t count,
                        const char *what) {
        if (rp[0] != 0 ||
            rp[art->nRows] != static_cast<std::int64_t>(count))
            bfail(Reason::BadSection, "binio: ", path, " ", what,
                  " row pointers do not span the nonzeros");
        for (std::int32_t r = 0; r < art->nRows; ++r) {
            if (rp[r] > rp[r + 1])
                bfail(Reason::BadSection, "binio: ", path, " ",
                      what, " row pointers are not monotonic");
        }
        for (std::size_t k = 0; k < count; ++k) {
            if (ci[k] < 0 || ci[k] >= art->nCols)
                bfail(Reason::BadSection, "binio: ", path, " ",
                      what, " column index out of range");
        }
    };
    checkCsr(art->rowPtrSec, art->colIdxSec, art->nz, "matrix");
    if (art->planPresent) {
        checkCsr(art->unbRowPtrSec, art->unbColIdxSec, art->unbNnz,
                 "unblocked");
        for (std::size_t i = 0; i < art->blockDirCount; ++i) {
            DirEntry d;
            std::memcpy(&d, art->blockDirSec + i * sizeof(DirEntry),
                        sizeof d);
            if (d.size == 0 || d.rowOrigin < 0 || d.colOrigin < 0 ||
                d.rowOrigin >= art->nRows ||
                d.colOrigin >= art->nCols ||
                d.elemOffset > art->blockElemCount ||
                d.elemCount >
                    art->blockElemCount - d.elemOffset) {
                bfail(Reason::BadSection, "binio: ", path,
                      " block directory entry ", i,
                      " is out of range");
            }
        }
    }

    // The stored matrix key is what PrepareCache and the service key
    // on *without* rehashing the payload, and cache entries are
    // shared across tenants. The checksum only proves the file is
    // internally consistent -- a mis-packed (or adversarial) artifact
    // can store another matrix's digest with a matching checksum and
    // poison the shared entry under that digest. Recompute the key
    // from the mapped bytes once, here, so every downstream consumer
    // may trust matrixKey() == csrContentKey(matrixView()).
    if (csrContentKey(art->matrixView()) != art->matKey)
        bfail(Reason::BadChecksum, "binio: ", path,
              " stored matrix key does not match the mapped matrix");

    return art;
}

Csr
MappedArtifact::matrixView() const
{
    return Csr::view(nRows, nCols, rowPtrSec, colIdxSec, valsSec,
                     nz);
}

BlockPlan
MappedArtifact::decodePlan() const
{
    if (!planPresent)
        panic("MappedArtifact::decodePlan: artifact has no plan");
    BlockPlan plan;
    plan.rows = nRows;
    plan.cols = nCols;

    const std::uint8_t *ps = planStatsSec;
    plan.stats.totalNnz = getU64(ps);
    plan.stats.blockedNnz = getU64(ps + 8);
    plan.stats.unblockedNnz = getU64(ps + 16);
    plan.stats.expRangeEvictions = getU64(ps + 24);
    plan.stats.elementVisits = getU64(ps + 32);
    const std::uint64_t nSizes = getU64(ps + 40);
    // map() guarantees planStatsBytes >= 48; dividing the section
    // length (instead of multiplying the stored count) cannot wrap.
    if (nSizes != (planStatsBytes - 48) / 16) {
        throw BinioError(BinioError::Reason::BadSection,
                         "fatal: binio: plan-stats size-class count "
                         "disagrees with section length");
    }
    plan.stats.blocksPerSize.resize(nSizes);
    for (std::uint64_t si = 0; si < nSizes; ++si)
        plan.stats.blocksPerSize[si] = getU64(ps + 56 + si * 16);

    plan.blocks.reserve(blockDirCount);
    for (std::size_t i = 0; i < blockDirCount; ++i) {
        DirEntry d;
        std::memcpy(&d, blockDirSec + i * sizeof(DirEntry),
                    sizeof d);
        MatrixBlock blk;
        blk.rowOrigin = d.rowOrigin;
        blk.colOrigin = d.colOrigin;
        blk.size = d.size;
        blk.elems.resize(d.elemCount);
        std::memcpy(blk.elems.data(),
                    blockElemsSec + d.elemOffset * sizeof(Triplet),
                    d.elemCount * sizeof(Triplet));
        for (const Triplet &t : blk.elems) {
            if (t.row < 0 || t.col < 0 ||
                static_cast<std::uint32_t>(t.row) >= d.size ||
                static_cast<std::uint32_t>(t.col) >= d.size) {
                throw BinioError(
                    BinioError::Reason::BadSection,
                    "fatal: binio: block element outside its "
                    "block");
            }
        }
        plan.blocks.push_back(std::move(blk));
    }

    plan.unblocked = Csr::view(nRows, nCols, unbRowPtrSec,
                               unbColIdxSec, unbValsSec, unbNnz);
    return plan;
}

namespace {

/** A sidecar packed before its source file was last rewritten is
 *  stale: a regenerated matrix must never silently resolve to the
 *  old artifact bytes. An unreadable timestamp on either side keeps
 *  the artifact eligible (the map's own validation still gates it). */
bool
sidecarIsStale(const std::string &matrixPath,
               const std::string &sidecarPath)
{
    std::error_code srcEc, artEc;
    const auto src =
        std::filesystem::last_write_time(matrixPath, srcEc);
    const auto art =
        std::filesystem::last_write_time(sidecarPath, artEc);
    return !srcEc && !artEc && art < src;
}

} // namespace

LoadedMatrix
loadMatrixFile(const std::string &path)
{
    if (artifactSidecarPath(path) == path) {
        // Direct artifact path: errors propagate, no text fallback.
        auto art = MappedArtifact::map(path);
        ctrMapHits.add();
        LoadedMatrix lm;
        lm.csr = art->matrixView();
        lm.artifact = std::move(art);
        return lm;
    }
    const std::string sidecar = artifactSidecarPath(path);
    if (sidecarIsStale(path, sidecar)) {
        ctrStaleSidecar.add();
    } else {
        try {
            auto art = MappedArtifact::map(sidecar);
            ctrMapHits.add();
            LoadedMatrix lm;
            lm.csr = art->matrixView();
            lm.artifact = std::move(art);
            return lm;
        } catch (const BinioError &) {
            // Missing or invalid sidecar: corruption costs
            // performance, never correctness.
        }
    }
    ctrFallbackParse.add();
    LoadedMatrix lm;
    lm.csr = readMatrixMarket(path);
    return lm;
}

} // namespace msc
