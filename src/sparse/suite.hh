/**
 * @file
 * The evaluated matrix suite (Table II of the paper).
 *
 * Twenty matrices from the SuiteSparse collection are regenerated
 * synthetically (see DESIGN.md for the substitution rationale): each
 * entry pairs the paper's reference statistics with generator
 * parameters tuned to reproduce the structural class -- banded FEM
 * stencils, circuit networks, quantum-chemistry clusters, uniform
 * scatter, and the exact Trefethen construction -- at the paper's
 * full row counts and nonzeros per row, so that the accelerator/GPU
 * comparison is not distorted by scale (cluster latency is
 * size-independent while GPU kernel time is not).
 */

#ifndef MSC_SPARSE_SUITE_HH
#define MSC_SPARSE_SUITE_HH

#include <string>
#include <vector>

#include "sparse/gen.hh"

namespace msc {

struct SuiteEntry
{
    std::string name;
    std::string domain;
    bool spd = false; //!< CG when true, BiCG-STAB otherwise

    /** Paper Table II reference values (full scale). */
    std::size_t paperNnz = 0;
    std::int32_t paperRows = 0;
    double paperNnzPerRow = 0.0;
    double paperBlockedPct = 0.0; //!< blocking efficiency, percent

    /** Generator recipe (scaled). */
    enum class Family { Tiled, Trefethen } family = Family::Tiled;
    TiledParams tiled;       //!< when family == Tiled
    std::int32_t trefethenN = 0;
};

/** The 20-entry suite, SPD matrices first (Table II order). */
const std::vector<SuiteEntry> &suiteMatrices();

/** Look up an entry by name; fatal if unknown. */
const SuiteEntry &suiteEntry(const std::string &name);

/** Generate the matrix for an entry. */
Csr buildSuiteMatrix(const SuiteEntry &entry);

} // namespace msc

#endif // MSC_SPARSE_SUITE_HH
