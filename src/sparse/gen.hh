/**
 * @file
 * Synthetic sparse matrix generators.
 *
 * The paper evaluates on 20 SuiteSparse matrices (Table II). Those
 * files are not redistributable here, so this module regenerates
 * structurally equivalent matrices: the tiled generator produces the
 * dense-subblock-on-a-band structure of FEM/circuit matrices with
 * controllable blocking efficiency, scatter density, and value
 * exponent locality; genTrefethen reproduces the actual construction
 * of the Trefethen matrices. See DESIGN.md for the substitution
 * rationale.
 */

#ifndef MSC_SPARSE_GEN_HH
#define MSC_SPARSE_GEN_HH

#include <cstdint>

#include "sparse/csr.hh"

namespace msc {

/** Statistical model of coefficient magnitudes. */
struct ValueModel
{
    double centerExp = 0.0;     //!< mean log2 magnitude
    double tileExpSigma = 2.0;  //!< per-tile exponent offset sigma
    double elemExpSigma = 1.0;  //!< within-tile exponent sigma
    double negFraction = 0.45;  //!< fraction of negative coefficients
    double outlierProb = 0.0;   //!< chance of an exponent outlier
    double outlierMag = 80.0;   //!< +/- exponent swing of outliers
};

/**
 * Parameters of the tiled matrix generator.
 *
 * The pattern is a band of dense square tiles around the diagonal
 * (the blockable part) plus uniform scatter (the unblockable part).
 * Blocking efficiency is controlled by the ratio of tile nonzeros to
 * scatter nonzeros and by the tile density.
 */
struct TiledParams
{
    std::int32_t rows = 1024;
    std::int32_t tile = 48;       //!< tile edge length
    int diagTiles = 1;            //!< tiles picked per tile-row
    /** Probability a tile-row receives tiles at all; models
     *  matrices where only part of the rows form dense clusters. */
    double tileRowProb = 1.0;
    int tileSpread = 2;           //!< how far off-diagonal tiles sit
    double tileDensity = 0.5;     //!< fill probability inside a tile
    double scatterPerRow = 0.0;   //!< scattered nonzeros per row
    std::int32_t scatterBand = -1; //!< scatter bandwidth, -1 = full row
    bool symmetricPattern = true;
    bool spd = false;             //!< make symmetric positive definite
    double diagDominance = 0.05;  //!< Gershgorin margin on the diagonal
    ValueModel values;
    std::uint64_t seed = 1;
};

/** Generate a tiled band matrix; always has a full diagonal. */
Csr genTiled(const TiledParams &p);

/**
 * The Trefethen_n matrix: A(i,i) = i-th prime, A(i,j) = 1 when
 * |i - j| is a power of two. Symmetric positive definite.
 */
Csr genTrefethen(std::int32_t n);

/** First @p n primes (exposed for tests). */
std::vector<std::int64_t> firstPrimes(std::int32_t n);

} // namespace msc

#endif // MSC_SPARSE_GEN_HH
