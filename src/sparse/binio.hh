/**
 * @file
 * Binary matrix artifact: mmap-backed, zero-copy CSR + blocking
 * placement, the cross-process extension of the in-process
 * PrepareCache.
 *
 * A cold solve pays Matrix Market text parsing plus the blocking
 * preprocessor; both are pure functions of the file bytes and the
 * blocking configuration, so they belong in a durable artifact
 * written once (tools/msc_pack) and mapped read-only by every
 * service instance. The format is versioned, checksummed, and
 * explicitly little-endian 64-bit:
 *
 *   magic "MSCBIN1\n" | version | endian tag | rows cols nnz |
 *   128-bit matrix content key | flags | 128-bit blocking key |
 *   128-bit payload checksum | section table | payload
 *
 * Sections are 64-byte aligned so mapped arrays satisfy any vector
 * alignment; the loader memcpy-free aliases int64/int32/double
 * arrays straight out of the mapping (Csr::view). The matrix
 * content key reuses the PrepareCache 128-bit keying
 * (csrContentKey): an artifact packed on one machine resolves to
 * the same cache entry a text parse would, which is what lets a
 * cache miss with a sidecar artifact skip parse+preprocess
 * entirely.
 *
 * Validation story (satellite: never UB on a short mapping): magic,
 * version, and endian tag gate first; header counts (nnz, plan
 * size classes) are bounded against the file size before any
 * size arithmetic can wrap; every section-table entry is
 * bounds-checked against the actual file size before any payload
 * byte is dereferenced; the checksum -- covering the header's
 * semantic fields and every section byte -- is verified on every
 * map; and the stored matrix key is recomputed from the mapped
 * bytes, so a consistently-checksummed artifact claiming another
 * matrix's digest cannot poison the shared prepare cache. A failure
 * is a structured BinioError, and loadMatrixFile falls back to text
 * parsing -- corruption costs performance, never correctness. A
 * sidecar older than its source file is treated as stale and
 * skipped (`binio.stale_sidecar`): regenerating the matrix without
 * repacking costs a parse, never a wrong answer.
 */

#ifndef MSC_SPARSE_BINIO_HH
#define MSC_SPARSE_BINIO_HH

#include <cstdint>
#include <memory>
#include <string>

#include "blocking/blocking.hh"
#include "sparse/csr.hh"
#include "util/hash128.hh"
#include "util/logging.hh"

namespace msc {

/** Structured artifact failure; see Reason for the taxonomy. */
class BinioError : public FatalError
{
  public:
    enum class Reason
    {
        CannotOpen,  //!< open/stat/map failed
        BadMagic,    //!< not an artifact file
        BadVersion,  //!< artifact format newer/older than this build
        Unsupported, //!< endianness mismatch or absurd geometry
        Truncated,   //!< file shorter than the header/sections claim
        BadChecksum, //!< payload bytes fail the stored checksum
        BadSection,  //!< section table inconsistent with the header
    };

    BinioError(Reason why, const std::string &msg)
        : FatalError(msg), r(why)
    {}

    Reason reason() const { return r; }

  private:
    Reason r;
};

/** 128-bit content key of a Csr: dimensions, structure, and value
 *  bit patterns. The matrix half of the PrepareCache key, and the
 *  key stored in packed artifacts. */
Digest128 csrContentKey(const Csr &m);

/** 128-bit key of a blocking configuration: every field that
 *  changes planBlocks decisions. Stored in artifacts that carry a
 *  placement plan, so a loader only reuses a plan computed under
 *  its own configuration. */
Digest128 blockingConfigKey(const BlockingConfig &config);

/** Conventional sidecar path for a matrix file: path + ".mscbin"
 *  (a path already ending in .mscbin is returned unchanged). */
std::string artifactSidecarPath(const std::string &matrixPath);

/**
 * Write a packed artifact for @p m, optionally with its blocking
 * plan. @p plan (when non-null) must be planBlocks(m, config) or
 * the bitwise-equal streaming equivalent; @p config is hashed into
 * the stored blocking key. Fatal on I/O failure.
 */
void writeArtifact(const std::string &path, const Csr &m,
                   const BlockPlan *plan = nullptr,
                   const BlockingConfig &config = BlockingConfig{});

/**
 * A validated, read-only mapping of a packed artifact. All views
 * handed out (matrixView, decodePlan's unblocked CSR) alias the
 * mapping and are valid only while this object lives; hold the
 * shared_ptr alongside them.
 */
class MappedArtifact
{
  public:
    /** Map and fully validate @p path. Throws BinioError. */
    static std::shared_ptr<MappedArtifact>
    map(const std::string &path);

    ~MappedArtifact();
    MappedArtifact(const MappedArtifact &) = delete;
    MappedArtifact &operator=(const MappedArtifact &) = delete;

    std::int32_t rows() const { return nRows; }
    std::int32_t cols() const { return nCols; }
    std::size_t nnz() const { return nz; }

    /** Stored matrix content key. map() recomputes it from the
     *  mapped bytes and rejects a mismatch, so this is guaranteed
     *  == csrContentKey(matrixView()) -- cache keying may trust it
     *  without rehashing. */
    Digest128 matrixKey() const { return matKey; }

    bool hasPlan() const { return planPresent; }
    /** Blocking configuration the stored plan was computed under
     *  (meaningful only when hasPlan()). */
    Digest128 blockingKey() const { return blkKey; }

    /** Zero-copy CSR view over the mapped arrays. */
    Csr matrixView() const;

    /**
     * Decode the stored placement plan. Block element lists are
     * copied out of the mapping (MatrixBlock owns its elements);
     * the leftover CSR is a zero-copy view. Panics if !hasPlan().
     */
    BlockPlan decodePlan() const;

    /** Bytes of the underlying file (diagnostics/benchmarks). */
    std::size_t fileBytes() const { return mapBytes; }

  private:
    MappedArtifact() = default;

    const std::uint8_t *base = nullptr;
    std::size_t mapBytes = 0;
    bool usedMmap = false;
    std::unique_ptr<std::uint8_t[]> fallbackBuf; //!< non-mmap hosts

    std::int32_t nRows = 0;
    std::int32_t nCols = 0;
    std::size_t nz = 0;
    Digest128 matKey;
    Digest128 blkKey;
    bool planPresent = false;

    // Validated section pointers into the mapping.
    const std::int64_t *rowPtrSec = nullptr;
    const std::int32_t *colIdxSec = nullptr;
    const double *valsSec = nullptr;
    const std::uint8_t *planStatsSec = nullptr;
    std::size_t planStatsBytes = 0;
    const std::uint8_t *blockDirSec = nullptr;
    std::size_t blockDirCount = 0;
    const std::uint8_t *blockElemsSec = nullptr;
    std::size_t blockElemCount = 0;
    const std::int64_t *unbRowPtrSec = nullptr;
    const std::int32_t *unbColIdxSec = nullptr;
    const double *unbValsSec = nullptr;
    std::size_t unbNnz = 0;
};

/**
 * A matrix resolved from a file path: the artifact fast path when a
 * valid sidecar (or a direct .mscbin path) exists, text parsing
 * otherwise. `csr` is a zero-copy view when `artifact` is non-null
 * -- keep the struct (or the artifact pointer) alive as long as the
 * matrix is used.
 */
struct LoadedMatrix
{
    Csr csr;
    std::shared_ptr<MappedArtifact> artifact; //!< null on text parse
};

/**
 * Resolve @p path: a .mscbin path maps directly (BinioError
 * propagates); otherwise a valid sidecar artifact no older than the
 * matrix file is preferred (telemetry `binio.map_hits`), a sidecar
 * whose mtime predates the matrix file is skipped as stale
 * (`binio.stale_sidecar`), and any artifact failure, staleness, or
 * absence falls back to Matrix Market parsing
 * (`binio.fallback_parse`).
 */
LoadedMatrix loadMatrixFile(const std::string &path);

} // namespace msc

#endif // MSC_SPARSE_BINIO_HH
