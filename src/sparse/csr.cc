#include "sparse/csr.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace msc {

void
Csr::rebind()
{
    rp = rowStore.empty() ? nullptr : rowStore.data();
    ci = colStore.data();
    vl = valStore.data();
    nz = colStore.size();
    viewMode = false;
}

void
Csr::materializeFrom(const Csr &o)
{
    nRows = o.nRows;
    nCols = o.nCols;
    rowStore.assign(o.rowPtr().begin(), o.rowPtr().end());
    colStore.assign(o.colIndex().begin(), o.colIndex().end());
    valStore.assign(o.values().begin(), o.values().end());
    rebind();
}

Csr::Csr(const Csr &o)
{
    materializeFrom(o);
}

Csr &
Csr::operator=(const Csr &o)
{
    if (this != &o)
        materializeFrom(o);
    return *this;
}

Csr::Csr(Csr &&o) noexcept
    : nRows(o.nRows), nCols(o.nCols), viewMode(o.viewMode),
      nz(o.nz), rowStore(std::move(o.rowStore)),
      colStore(std::move(o.colStore)),
      valStore(std::move(o.valStore)), rp(o.rp), ci(o.ci), vl(o.vl)
{
    if (!viewMode)
        rebind();
    o.nRows = o.nCols = 0;
    o.nz = 0;
    o.viewMode = false;
    o.rp = nullptr;
    o.ci = nullptr;
    o.vl = nullptr;
}

Csr &
Csr::operator=(Csr &&o) noexcept
{
    if (this == &o)
        return *this;
    nRows = o.nRows;
    nCols = o.nCols;
    viewMode = o.viewMode;
    nz = o.nz;
    rowStore = std::move(o.rowStore);
    colStore = std::move(o.colStore);
    valStore = std::move(o.valStore);
    rp = o.rp;
    ci = o.ci;
    vl = o.vl;
    if (!viewMode)
        rebind();
    o.nRows = o.nCols = 0;
    o.nz = 0;
    o.viewMode = false;
    o.rp = nullptr;
    o.ci = nullptr;
    o.vl = nullptr;
    return *this;
}

std::span<double>
Csr::values()
{
    if (viewMode)
        panic("Csr::values: mutable access to a zero-copy view "
              "(mapped storage is read-only)");
    return {valStore.data(), nz};
}

Csr
Csr::view(std::int32_t rows, std::int32_t cols,
          const std::int64_t *rowPtr, const std::int32_t *colIdx,
          const double *vals, std::size_t nnz)
{
    if (rows < 0 || cols < 0 || rowPtr == nullptr)
        panic("Csr::view: malformed arguments");
    if (rowPtr[0] != 0 ||
        rowPtr[rows] != static_cast<std::int64_t>(nnz))
        panic("Csr::view: row pointer endpoints disagree with nnz");
    Csr m;
    m.nRows = rows;
    m.nCols = cols;
    m.viewMode = true;
    m.nz = nnz;
    m.rp = rowPtr;
    m.ci = colIdx;
    m.vl = vals;
    return m;
}

Csr
Csr::fromCoo(const Coo &coo)
{
    Csr m;
    m.nRows = coo.rows;
    m.nCols = coo.cols;

    for (const auto &t : coo.entries) {
        if (t.row < 0 || t.row >= coo.rows || t.col < 0 ||
            t.col >= coo.cols) {
            fatal("Csr::fromCoo: entry (", t.row, ",", t.col,
                  ") outside ", coo.rows, "x", coo.cols);
        }
    }

    std::vector<std::size_t> order(coo.entries.size());
    std::iota(order.begin(), order.end(), 0);
    // stable_sort: duplicates accumulate in insertion order, so a
    // symmetric emission (v at (r,c) and at (c,r)) sums in the same
    // order on both sides and stays bit-identical.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const auto &ea = coo.entries[a];
                         const auto &eb = coo.entries[b];
                         if (ea.row != eb.row)
                             return ea.row < eb.row;
                         return ea.col < eb.col;
                     });

    m.rowStore.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
    m.colStore.reserve(coo.entries.size());
    m.valStore.reserve(coo.entries.size());

    for (std::size_t k = 0; k < order.size(); ++k) {
        const Triplet &t = coo.entries[order[k]];
        if (k > 0) {
            const Triplet &prev = coo.entries[order[k - 1]];
            if (prev.row == t.row && prev.col == t.col) {
                m.valStore.back() += t.val; // duplicate: accumulate
                continue;
            }
        }
        m.colStore.push_back(t.col);
        m.valStore.push_back(t.val);
        m.rowStore[static_cast<std::size_t>(t.row) + 1] += 1;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(coo.rows); ++r)
        m.rowStore[r + 1] += m.rowStore[r];
    m.rebind();
    return m;
}

Csr
Csr::identity(std::int32_t n)
{
    Coo coo;
    coo.rows = coo.cols = n;
    coo.entries.reserve(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
        coo.add(i, i, 1.0);
    return fromCoo(coo);
}

void
Csr::spmv(std::span<const double> x, std::span<double> y) const
{
    if (x.size() != static_cast<std::size_t>(nCols) ||
        y.size() != static_cast<std::size_t>(nRows))
        fatal("Csr::spmv: dimension mismatch");
    for (std::int32_t r = 0; r < nRows; ++r) {
        double acc = 0.0;
        for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k)
            acc += vl[k] * x[static_cast<std::size_t>(ci[k])];
        y[static_cast<std::size_t>(r)] = acc;
    }
}

void
Csr::spmvTranspose(std::span<const double> x, std::span<double> y) const
{
    if (x.size() != static_cast<std::size_t>(nRows) ||
        y.size() != static_cast<std::size_t>(nCols))
        fatal("Csr::spmvTranspose: dimension mismatch");
    std::fill(y.begin(), y.end(), 0.0);
    for (std::int32_t r = 0; r < nRows; ++r) {
        const double xr = x[static_cast<std::size_t>(r)];
        for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k)
            y[static_cast<std::size_t>(ci[k])] += vl[k] * xr;
    }
}

Csr
Csr::transpose() const
{
    Coo coo;
    coo.rows = nCols;
    coo.cols = nRows;
    coo.entries.reserve(nnz());
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k)
            coo.add(ci[k], r, vl[k]);
    }
    return fromCoo(coo);
}

bool
Csr::isSymmetric(double relTol) const
{
    if (nRows != nCols)
        return false;
    const Csr t = transpose();
    const auto tc = t.colIndex(), c = colIndex();
    const auto trp = t.rowPtr(), mrp = rowPtr();
    if (!std::equal(tc.begin(), tc.end(), c.begin(), c.end()) ||
        !std::equal(trp.begin(), trp.end(), mrp.begin(), mrp.end()))
        return false;
    for (std::size_t k = 0; k < nz; ++k) {
        const double d = std::fabs(vl[k] - t.vl[k]);
        const double scale = std::max(std::fabs(vl[k]),
                                      std::fabs(t.vl[k]));
        if (d > relTol * scale && d != 0.0)
            return false;
    }
    return true;
}

Coo
Csr::toCoo() const
{
    Coo coo;
    coo.rows = nRows;
    coo.cols = nCols;
    coo.entries.reserve(nnz());
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k)
            coo.add(r, ci[k], vl[k]);
    }
    return coo;
}

std::vector<double>
Csr::rowSums() const
{
    std::vector<double> sums(static_cast<std::size_t>(nRows), 0.0);
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int64_t k = rp[r]; k < rp[r + 1]; ++k)
            sums[static_cast<std::size_t>(r)] += vl[k];
    }
    return sums;
}

void
axpy(double a, std::span<const double> x, std::span<double> y)
{
    if (x.size() != y.size())
        fatal("axpy: length mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += a * x[i];
}

double
dot(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size())
        fatal("dot: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x[i] * y[i];
    return acc;
}

double
norm2(std::span<const double> x)
{
    return std::sqrt(dot(x, x));
}

} // namespace msc
