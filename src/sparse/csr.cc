#include "sparse/csr.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace msc {

Csr
Csr::fromCoo(const Coo &coo)
{
    Csr m;
    m.nRows = coo.rows;
    m.nCols = coo.cols;

    for (const auto &t : coo.entries) {
        if (t.row < 0 || t.row >= coo.rows || t.col < 0 ||
            t.col >= coo.cols) {
            fatal("Csr::fromCoo: entry (", t.row, ",", t.col,
                  ") outside ", coo.rows, "x", coo.cols);
        }
    }

    std::vector<std::size_t> order(coo.entries.size());
    std::iota(order.begin(), order.end(), 0);
    // stable_sort: duplicates accumulate in insertion order, so a
    // symmetric emission (v at (r,c) and at (c,r)) sums in the same
    // order on both sides and stays bit-identical.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         const auto &ea = coo.entries[a];
                         const auto &eb = coo.entries[b];
                         if (ea.row != eb.row)
                             return ea.row < eb.row;
                         return ea.col < eb.col;
                     });

    m.rowStart.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
    m.colIdx.reserve(coo.entries.size());
    m.vals.reserve(coo.entries.size());

    for (std::size_t k = 0; k < order.size(); ++k) {
        const Triplet &t = coo.entries[order[k]];
        if (k > 0) {
            const Triplet &prev = coo.entries[order[k - 1]];
            if (prev.row == t.row && prev.col == t.col) {
                m.vals.back() += t.val; // duplicate: accumulate
                continue;
            }
        }
        m.colIdx.push_back(t.col);
        m.vals.push_back(t.val);
        m.rowStart[static_cast<std::size_t>(t.row) + 1] += 1;
    }
    for (std::size_t r = 0; r < static_cast<std::size_t>(coo.rows); ++r)
        m.rowStart[r + 1] += m.rowStart[r];
    return m;
}

Csr
Csr::identity(std::int32_t n)
{
    Coo coo;
    coo.rows = coo.cols = n;
    coo.entries.reserve(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
        coo.add(i, i, 1.0);
    return fromCoo(coo);
}

void
Csr::spmv(std::span<const double> x, std::span<double> y) const
{
    if (x.size() != static_cast<std::size_t>(nCols) ||
        y.size() != static_cast<std::size_t>(nRows))
        fatal("Csr::spmv: dimension mismatch");
    for (std::int32_t r = 0; r < nRows; ++r) {
        double acc = 0.0;
        for (std::int32_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            acc += vals[k] * x[static_cast<std::size_t>(colIdx[k])];
        y[static_cast<std::size_t>(r)] = acc;
    }
}

void
Csr::spmvTranspose(std::span<const double> x, std::span<double> y) const
{
    if (x.size() != static_cast<std::size_t>(nRows) ||
        y.size() != static_cast<std::size_t>(nCols))
        fatal("Csr::spmvTranspose: dimension mismatch");
    std::fill(y.begin(), y.end(), 0.0);
    for (std::int32_t r = 0; r < nRows; ++r) {
        const double xr = x[static_cast<std::size_t>(r)];
        for (std::int32_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            y[static_cast<std::size_t>(colIdx[k])] += vals[k] * xr;
    }
}

Csr
Csr::transpose() const
{
    Coo coo;
    coo.rows = nCols;
    coo.cols = nRows;
    coo.entries.reserve(nnz());
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int32_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            coo.add(colIdx[k], r, vals[k]);
    }
    return fromCoo(coo);
}

bool
Csr::isSymmetric(double relTol) const
{
    if (nRows != nCols)
        return false;
    const Csr t = transpose();
    if (t.colIdx != colIdx || t.rowStart != rowStart)
        return false;
    for (std::size_t k = 0; k < vals.size(); ++k) {
        const double d = std::fabs(vals[k] - t.vals[k]);
        const double scale = std::max(std::fabs(vals[k]),
                                      std::fabs(t.vals[k]));
        if (d > relTol * scale && d != 0.0)
            return false;
    }
    return true;
}

Coo
Csr::toCoo() const
{
    Coo coo;
    coo.rows = nRows;
    coo.cols = nCols;
    coo.entries.reserve(nnz());
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int32_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            coo.add(r, colIdx[k], vals[k]);
    }
    return coo;
}

std::vector<double>
Csr::rowSums() const
{
    std::vector<double> sums(static_cast<std::size_t>(nRows), 0.0);
    for (std::int32_t r = 0; r < nRows; ++r) {
        for (std::int32_t k = rowStart[r]; k < rowStart[r + 1]; ++k)
            sums[static_cast<std::size_t>(r)] += vals[k];
    }
    return sums;
}

void
axpy(double a, std::span<const double> x, std::span<double> y)
{
    if (x.size() != y.size())
        fatal("axpy: length mismatch");
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += a * x[i];
}

double
dot(std::span<const double> x, std::span<const double> y)
{
    if (x.size() != y.size())
        fatal("dot: length mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
        acc += x[i] * y[i];
    return acc;
}

double
norm2(std::span<const double> x)
{
    return std::sqrt(dot(x, x));
}

} // namespace msc
