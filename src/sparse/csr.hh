/**
 * @file
 * Sparse matrix containers: coordinate (COO) and compressed sparse
 * row (CSR) formats.
 *
 * CSR is the format the paper's local processors use for elements
 * that cannot be blocked (Section VI-A1), and the base representation
 * from which the blocking preprocessor works.
 *
 * Row offsets are 64-bit: the out-of-core pipeline (sparse/binio)
 * removes the RAM bound on problem size, so nnz can legitimately
 * exceed 2^31 and a 32-bit row-pointer array would silently wrap.
 * Column indices stay 32-bit (dimensions are capped at 2^31-1 by the
 * loaders), which keeps the per-nonzero footprint at 12 bytes.
 *
 * A Csr either owns its arrays (fromCoo/identity and every mutation
 * path) or is a non-owning *view* over external storage -- the
 * zero-copy case for an mmap-ed binio artifact. Views are read-only;
 * copying a view deep-copies it into owned storage (always safe),
 * while moving transfers the view. The external storage must outlive
 * a view and every span taken from it.
 */

#ifndef MSC_SPARSE_CSR_HH
#define MSC_SPARSE_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

namespace msc {

/** One nonzero entry of a sparse matrix. */
struct Triplet
{
    std::int32_t row = 0;
    std::int32_t col = 0;
    double val = 0.0;
};

/** Unordered coordinate-format sparse matrix. */
struct Coo
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::vector<Triplet> entries;

    void
    add(std::int32_t r, std::int32_t c, double v)
    {
        entries.push_back({r, c, v});
    }

    std::size_t nnz() const { return entries.size(); }
};

/** Compressed sparse row matrix with double coefficients. */
class Csr
{
  public:
    Csr() = default;

    /** Copying always yields an owning matrix: a copied view is
     *  deep-copied so it can outlive the mapped storage. */
    Csr(const Csr &o);
    Csr &operator=(const Csr &o);
    /** Moving preserves view-ness (the source is left empty). */
    Csr(Csr &&o) noexcept;
    Csr &operator=(Csr &&o) noexcept;
    ~Csr() = default;

    /** Build from COO; duplicate entries are summed. */
    static Csr fromCoo(const Coo &coo);

    /** Build an n x n identity. */
    static Csr identity(std::int32_t n);

    /**
     * Non-owning zero-copy view over external CSR arrays (the binio
     * mmap path). @p rowPtr must have rows+1 entries with
     * rowPtr[0] == 0 and rowPtr[rows] == nnz; the caller keeps the
     * backing memory alive for the view's lifetime.
     */
    static Csr view(std::int32_t rows, std::int32_t cols,
                    const std::int64_t *rowPtr,
                    const std::int32_t *colIdx, const double *vals,
                    std::size_t nnz);

    /** False for a zero-copy view over external storage. */
    bool owning() const { return !viewMode; }

    std::int32_t rows() const { return nRows; }
    std::int32_t cols() const { return nCols; }
    std::size_t nnz() const { return nz; }

    std::span<const std::int64_t>
    rowPtr() const
    {
        return rp == nullptr
            ? std::span<const std::int64_t>{}
            : std::span<const std::int64_t>{
                  rp, static_cast<std::size_t>(nRows) + 1};
    }

    std::span<const std::int32_t>
    colIndex() const
    {
        return {ci, nz};
    }

    std::span<const double> values() const { return {vl, nz}; }

    /** Mutable coefficient access; panics on a view (external
     *  storage is mapped read-only). */
    std::span<double> values();

    /** Number of nonzeros in row @p r. */
    std::int64_t
    rowNnz(std::int32_t r) const
    {
        return rp[r + 1] - rp[r];
    }

    /** Column indices of row @p r. */
    std::span<const std::int32_t>
    rowCols(std::int32_t r) const
    {
        return {ci + rp[r], static_cast<std::size_t>(rowNnz(r))};
    }

    /** Values of row @p r. */
    std::span<const double>
    rowVals(std::int32_t r) const
    {
        return {vl + rp[r], static_cast<std::size_t>(rowNnz(r))};
    }

    /** y = A * x (plain double accumulation). */
    void spmv(std::span<const double> x, std::span<double> y) const;

    /** y = A^T * x. */
    void spmvTranspose(std::span<const double> x,
                       std::span<double> y) const;

    Csr transpose() const;

    /** Pattern and numeric symmetry within relative tolerance. */
    bool isSymmetric(double relTol = 0.0) const;

    /** Convert back to COO (row-major ordered). */
    Coo toCoo() const;

    /** Sum of entries in each row (used for diagnostics). */
    std::vector<double> rowSums() const;

  private:
    /** Point the access pointers at the owned vectors. */
    void rebind();
    /** Deep-copy any source (owning or view) into owned storage. */
    void materializeFrom(const Csr &o);

    std::int32_t nRows = 0;
    std::int32_t nCols = 0;
    bool viewMode = false;
    std::size_t nz = 0;
    /** Owned storage; empty when this Csr is a view. */
    std::vector<std::int64_t> rowStore; //!< size rows+1
    std::vector<std::int32_t> colStore;
    std::vector<double> valStore;
    /** Active arrays: the owned vectors, or external (mmap) memory
     *  for views. */
    const std::int64_t *rp = nullptr;
    const std::int32_t *ci = nullptr;
    const double *vl = nullptr;
};

/** y = a*x + y elementwise (the AXPY kernel of Section VI-A3). */
void axpy(double a, std::span<const double> x, std::span<double> y);

/** Dense dot product (the kernel of Section VI-A2). */
double dot(std::span<const double> x, std::span<const double> y);

/** Euclidean norm. */
double norm2(std::span<const double> x);

} // namespace msc

#endif // MSC_SPARSE_CSR_HH
