/**
 * @file
 * Sparse matrix containers: coordinate (COO) and compressed sparse
 * row (CSR) formats.
 *
 * CSR is the format the paper's local processors use for elements
 * that cannot be blocked (Section VI-A1), and the base representation
 * from which the blocking preprocessor works.
 */

#ifndef MSC_SPARSE_CSR_HH
#define MSC_SPARSE_CSR_HH

#include <cstdint>
#include <span>
#include <vector>

namespace msc {

/** One nonzero entry of a sparse matrix. */
struct Triplet
{
    std::int32_t row = 0;
    std::int32_t col = 0;
    double val = 0.0;
};

/** Unordered coordinate-format sparse matrix. */
struct Coo
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    std::vector<Triplet> entries;

    void
    add(std::int32_t r, std::int32_t c, double v)
    {
        entries.push_back({r, c, v});
    }

    std::size_t nnz() const { return entries.size(); }
};

/** Compressed sparse row matrix with double coefficients. */
class Csr
{
  public:
    Csr() = default;

    /** Build from COO; duplicate entries are summed. */
    static Csr fromCoo(const Coo &coo);

    /** Build an n x n identity. */
    static Csr identity(std::int32_t n);

    std::int32_t rows() const { return nRows; }
    std::int32_t cols() const { return nCols; }
    std::size_t nnz() const { return colIdx.size(); }

    std::span<const std::int32_t> rowPtr() const { return rowStart; }
    std::span<const std::int32_t> colIndex() const { return colIdx; }
    std::span<const double> values() const { return vals; }
    std::span<double> values() { return vals; }

    /** Number of nonzeros in row @p r. */
    std::int32_t
    rowNnz(std::int32_t r) const
    {
        return rowStart[r + 1] - rowStart[r];
    }

    /** Column indices of row @p r. */
    std::span<const std::int32_t>
    rowCols(std::int32_t r) const
    {
        return {colIdx.data() + rowStart[r],
                static_cast<std::size_t>(rowNnz(r))};
    }

    /** Values of row @p r. */
    std::span<const double>
    rowVals(std::int32_t r) const
    {
        return {vals.data() + rowStart[r],
                static_cast<std::size_t>(rowNnz(r))};
    }

    /** y = A * x (plain double accumulation). */
    void spmv(std::span<const double> x, std::span<double> y) const;

    /** y = A^T * x. */
    void spmvTranspose(std::span<const double> x,
                       std::span<double> y) const;

    Csr transpose() const;

    /** Pattern and numeric symmetry within relative tolerance. */
    bool isSymmetric(double relTol = 0.0) const;

    /** Convert back to COO (row-major ordered). */
    Coo toCoo() const;

    /** Sum of entries in each row (used for diagnostics). */
    std::vector<double> rowSums() const;

  private:
    std::int32_t nRows = 0;
    std::int32_t nCols = 0;
    std::vector<std::int32_t> rowStart; //!< size rows+1
    std::vector<std::int32_t> colIdx;
    std::vector<double> vals;
};

/** y = a*x + y elementwise (the AXPY kernel of Section VI-A3). */
void axpy(double a, std::span<const double> x, std::span<double> y);

/** Dense dot product (the kernel of Section VI-A2). */
double dot(std::span<const double> x, std::span<const double> y);

/** Euclidean norm. */
double norm2(std::span<const double> x);

} // namespace msc

#endif // MSC_SPARSE_CSR_HH
