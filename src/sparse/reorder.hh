/**
 * @file
 * Bandwidth-reducing matrix reordering.
 *
 * The blocking preprocessor captures nonzeros that cluster near the
 * diagonal; matrices with scattered numbering can often be made
 * blockable by renumbering. Reverse Cuthill-McKee is the standard
 * bandwidth-reducing permutation and is provided as a preprocessing
 * option (see the run_matrix example's --rcm flag).
 */

#ifndef MSC_SPARSE_REORDER_HH
#define MSC_SPARSE_REORDER_HH

#include <vector>

#include "sparse/csr.hh"

namespace msc {

/**
 * Reverse Cuthill-McKee ordering of the symmetrized pattern.
 *
 * @return perm with perm[newIndex] = oldIndex, covering every row
 *         (disconnected components are ordered one after another,
 *         each from a minimum-degree start).
 */
std::vector<std::int32_t> reverseCuthillMcKee(const Csr &m);

/** Apply a symmetric permutation: B = P A P^T, with
 *  B(i, j) = A(perm[i], perm[j]). */
Csr permuteSymmetric(const Csr &m,
                     std::span<const std::int32_t> perm);

/** Permute a vector to the new ordering: out[i] = v[perm[i]]. */
std::vector<double> permuteVector(std::span<const double> v,
                                  std::span<const std::int32_t> perm);

/** Undo a permutation on a solution vector: out[perm[i]] = v[i]. */
std::vector<double>
unpermuteVector(std::span<const double> v,
                std::span<const std::int32_t> perm);

} // namespace msc

#endif // MSC_SPARSE_REORDER_HH
