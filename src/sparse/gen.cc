#include "sparse/gen.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/random.hh"

namespace msc {

namespace {

/** Draw a coefficient magnitude around 2^exp. */
double
drawValue(Rng &rng, const ValueModel &vm, double tileExp)
{
    double e = tileExp + rng.normal(0.0, vm.elemExpSigma);
    if (vm.outlierProb > 0.0 && rng.chance(vm.outlierProb))
        e += rng.uniform(-vm.outlierMag, vm.outlierMag);
    // Clamp to a safely representable exponent window.
    e = std::clamp(e, -960.0, 960.0);
    const double mag =
        std::ldexp(rng.uniform(1.0, 2.0), static_cast<int>(e));
    const bool neg = rng.chance(vm.negFraction);
    return neg ? -mag : mag;
}

} // namespace

Csr
genTiled(const TiledParams &p)
{
    if (p.rows <= 0 || p.tile <= 0)
        fatal("genTiled: bad dimensions");
    if (p.spd && !p.symmetricPattern)
        fatal("genTiled: spd requires symmetricPattern");
    Rng rng(p.seed);

    const std::int32_t n = p.rows;
    const std::int32_t tilesAcross = (n + p.tile - 1) / p.tile;

    // Off-diagonal entries are collected as triplets; duplicates
    // (e.g. scatter landing inside a tile) are summed by
    // Csr::fromCoo, which keeps the pattern symmetric because every
    // emission mirrors both halves with the same value.
    Coo coo;
    coo.rows = coo.cols = n;
    const double expectedTileNnz = p.tileRowProb * p.diagTiles *
        static_cast<double>(p.tile) * p.tile * p.tileDensity *
        tilesAcross;
    const double expectedScatter =
        p.scatterPerRow * static_cast<double>(n);
    coo.entries.reserve(static_cast<std::size_t>(
        (expectedTileNnz + expectedScatter) *
        (p.symmetricPattern ? 2.2 : 1.1)) +
        static_cast<std::size_t>(n));

    auto emit = [&](std::int32_t r, std::int32_t c, double v) {
        if (r == c)
            return; // the diagonal is placed in a dedicated pass
        coo.add(r, c, v);
        if (p.symmetricPattern)
            coo.add(c, r, v);
    };

    // --- dense tiles along the band --------------------------------
    for (std::int32_t tr = 0; tr < tilesAcross; ++tr) {
        if (p.tileRowProb < 1.0 && !rng.chance(p.tileRowProb))
            continue;
        for (int t = 0; t < p.diagTiles; ++t) {
            std::int32_t tc = tr;
            if (t > 0) {
                tc = tr + static_cast<std::int32_t>(
                    rng.range(-p.tileSpread, p.tileSpread));
                tc = std::clamp(tc, std::int32_t{0}, tilesAcross - 1);
            }
            if (p.symmetricPattern && tc < tr)
                continue; // lower half comes from mirroring
            const double tileExp =
                p.values.centerExp +
                rng.normal(0.0, p.values.tileExpSigma);
            const std::int32_t r0 = tr * p.tile;
            const std::int32_t c0 = tc * p.tile;
            for (std::int32_t r = r0;
                 r < std::min<std::int32_t>(r0 + p.tile, n); ++r) {
                for (std::int32_t c = c0;
                     c < std::min<std::int32_t>(c0 + p.tile, n);
                     ++c) {
                    if (p.symmetricPattern && tc == tr && c <= r)
                        continue; // upper triangle only, mirrored
                    if (!rng.chance(p.tileDensity))
                        continue;
                    emit(r, c, drawValue(rng, p.values, tileExp));
                }
            }
        }
    }

    // --- uniform scatter --------------------------------------------
    if (p.scatterPerRow > 0.0) {
        for (std::int32_t r = 0; r < n; ++r) {
            int k = static_cast<int>(p.scatterPerRow);
            if (rng.chance(p.scatterPerRow - k))
                ++k;
            for (int i = 0; i < k; ++i) {
                std::int32_t c;
                if (p.scatterBand > 0) {
                    c = r + static_cast<std::int32_t>(
                        rng.range(-p.scatterBand, p.scatterBand));
                    if (c < 0 || c >= n)
                        continue;
                } else {
                    c = static_cast<std::int32_t>(rng.below(
                        static_cast<std::uint64_t>(n)));
                }
                emit(r, c, drawValue(rng, p.values,
                                     p.values.centerExp));
            }
        }
    }

    // --- dominant diagonal -------------------------------------------
    std::vector<double> absSum(static_cast<std::size_t>(n), 0.0);
    for (const auto &t : coo.entries)
        absSum[static_cast<std::size_t>(t.row)] += std::fabs(t.val);
    for (std::int32_t r = 0; r < n; ++r) {
        double d = absSum[static_cast<std::size_t>(r)] *
                   (1.0 + p.diagDominance);
        if (d == 0.0)
            d = std::ldexp(1.0, static_cast<int>(p.values.centerExp));
        coo.add(r, r, d);
    }

    return Csr::fromCoo(coo);
}

std::vector<std::int64_t>
firstPrimes(std::int32_t n)
{
    std::vector<std::int64_t> primes;
    primes.reserve(static_cast<std::size_t>(n));
    // Upper bound on the n-th prime: n (ln n + ln ln n) for n >= 6.
    std::size_t limit = 100;
    if (n >= 6) {
        const double dn = n;
        limit = static_cast<std::size_t>(
            dn * (std::log(dn) + std::log(std::log(dn))) + 10);
    }
    std::vector<bool> sieve(limit + 1, true);
    for (std::size_t i = 2; i <= limit && primes.size() <
         static_cast<std::size_t>(n); ++i) {
        if (!sieve[i])
            continue;
        primes.push_back(static_cast<std::int64_t>(i));
        for (std::size_t j = i * i; j <= limit; j += i)
            sieve[j] = false;
    }
    if (primes.size() < static_cast<std::size_t>(n))
        panic("firstPrimes: sieve bound too small");
    return primes;
}

Csr
genTrefethen(std::int32_t n)
{
    const auto primes = firstPrimes(n);
    Coo coo;
    coo.rows = coo.cols = n;
    for (std::int32_t i = 0; i < n; ++i) {
        coo.add(i, i, static_cast<double>(
            primes[static_cast<std::size_t>(i)]));
        for (std::int32_t d = 1; i + d < n; d *= 2) {
            coo.add(i, i + d, 1.0);
            coo.add(i + d, i, 1.0);
        }
    }
    return Csr::fromCoo(coo);
}

} // namespace msc
