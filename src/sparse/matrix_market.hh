/**
 * @file
 * Matrix Market (MM) coordinate format I/O.
 *
 * The paper's inputs come from the SuiteSparse collection, which is
 * distributed in Matrix Market format. This reader/writer supports
 * the coordinate real/integer/pattern banner with general or
 * symmetric storage, which covers the collection.
 *
 * Two consumption modes share one validation core:
 *  - readMatrixMarket() parses the whole file into a Csr;
 *  - readMatrixMarketHeader() + forEachMatrixMarketEntry() stream
 *    logical entries (symmetric storage expanded) to a callback
 *    without materializing a Coo, which is what the out-of-core
 *    blocking preprocessor (blocking/stream.hh) uses for its
 *    bounded-memory rescan passes.
 *
 * Robustness: CRLF line endings and a UTF-8 BOM before the banner
 * are accepted (SuiteSparse mirrors serve both), while trailing
 * non-comment garbage after the declared entry count is rejected --
 * it usually means a concatenated or corrupted download, and
 * silently ignoring it would hide real data loss.
 */

#ifndef MSC_SPARSE_MATRIX_MARKET_HH
#define MSC_SPARSE_MATRIX_MARKET_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "sparse/csr.hh"
#include "util/logging.hh"

namespace msc {

/**
 * Structured loader failure. Derives from FatalError (existing
 * catch sites keep working) but carries a machine-readable reason
 * and how many entries had been parsed, so callers -- and the fuzz
 * tests -- can distinguish a truncated download (Truncated, with
 * progress) from a malformed file (BadEntry) or a failing device
 * (StreamError) without parsing the message.
 */
class MatrixMarketError : public FatalError
{
  public:
    enum class Reason
    {
        EmptyInput,  //!< no banner line at all
        BadBanner,   //!< first line is not a MatrixMarket banner
        Unsupported, //!< valid banner, unsupported format/field
        BadSize,     //!< size line malformed or out of range
        Truncated,   //!< EOF before the declared entry count
        BadEntry,    //!< entry line malformed or inconsistent
        StreamError, //!< read failed (I/O error, not EOF)
        CannotOpen,  //!< file open failed
    };

    MatrixMarketError(Reason why, const std::string &msg,
                      std::uint64_t entriesParsed = 0)
        : FatalError(msg), r(why), parsed(entriesParsed)
    {}

    Reason reason() const { return r; }

    /** Entries successfully parsed before the failure (meaningful
     *  for Truncated/BadEntry/StreamError). */
    std::uint64_t entriesRead() const { return parsed; }

  private:
    Reason r;
    std::uint64_t parsed;
};

/** Parsed banner + size line of a coordinate MM stream. */
struct MatrixMarketHeader
{
    std::int32_t rows = 0;
    std::int32_t cols = 0;
    /** Entry lines declared by the size line (before symmetric
     *  expansion). */
    std::uint64_t declaredEntries = 0;
    bool pattern = false;
    bool symmetric = false;
    bool skewSymmetric = false;
};

/** Parse banner, comments, and size line; leaves @p in positioned
 *  at the first entry line. Throws MatrixMarketError. */
MatrixMarketHeader readMatrixMarketHeader(std::istream &in);

/**
 * Stream every logical entry in file order into @p sink: explicit
 * entries as written, each off-diagonal of a symmetric matrix
 * followed immediately by its mirrored partner. Performs the same
 * validation as readMatrixMarket (range checks, skew diagonal,
 * trailing-garbage rejection); rescanning a file therefore delivers
 * an identical entry sequence every pass.
 */
void forEachMatrixMarketEntry(
    std::istream &in, const MatrixMarketHeader &header,
    const std::function<void(std::int32_t, std::int32_t, double)>
        &sink);

/** Read a Matrix Market file; symmetric storage is expanded.
 *  Throws MatrixMarketError on malformed or unreadable input. */
Csr readMatrixMarket(const std::string &path);

/** Read Matrix Market data from a stream. */
Csr readMatrixMarket(std::istream &in);

/**
 * Write a matrix in Matrix Market coordinate real general format.
 * One-based indices per the specification.
 */
void writeMatrixMarket(const Csr &m, const std::string &path);
void writeMatrixMarket(const Csr &m, std::ostream &out);

} // namespace msc

#endif // MSC_SPARSE_MATRIX_MARKET_HH
