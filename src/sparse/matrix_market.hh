/**
 * @file
 * Matrix Market (MM) coordinate format I/O.
 *
 * The paper's inputs come from the SuiteSparse collection, which is
 * distributed in Matrix Market format. This reader/writer supports
 * the coordinate real/integer/pattern banner with general or
 * symmetric storage, which covers the collection.
 */

#ifndef MSC_SPARSE_MATRIX_MARKET_HH
#define MSC_SPARSE_MATRIX_MARKET_HH

#include <iosfwd>
#include <string>

#include "sparse/csr.hh"

namespace msc {

/** Read a Matrix Market file; symmetric storage is expanded. */
Csr readMatrixMarket(const std::string &path);

/** Read Matrix Market data from a stream. */
Csr readMatrixMarket(std::istream &in);

/**
 * Write a matrix in Matrix Market coordinate real general format.
 * One-based indices per the specification.
 */
void writeMatrixMarket(const Csr &m, const std::string &path);
void writeMatrixMarket(const Csr &m, std::ostream &out);

} // namespace msc

#endif // MSC_SPARSE_MATRIX_MARKET_HH
