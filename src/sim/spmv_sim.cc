#include "sim/spmv_sim.hh"

#include <algorithm>

#include <sstream>

#include "sim/event_queue.hh"
#include "util/stats.hh"
#include "util/logging.hh"

namespace msc {

namespace {

/** Per-bank processor state evolved by interrupt events. */
struct BankState
{
    double csrLeft = 0.0;        //!< seconds of CSR work remaining
    double lastT = 0.0;          //!< last time state was advanced
    double serviceBusyUntil = 0.0;
    int interruptsLeft = 0;
    double worstBacklog = 0.0;
    double finish = 0.0;

    /** Account CSR progress in the idle gap up to time @p t. */
    void
    advanceTo(double t)
    {
        const double gapStart = std::max(lastT, serviceBusyUntil);
        if (t > gapStart)
            csrLeft = std::max(0.0, csrLeft - (t - gapStart));
        lastT = std::max(lastT, t);
    }
};

} // namespace

SpmvSimResult
simulateSpmv(const SpmvSimConfig &config,
             const std::vector<SimClusterOp> &ops)
{
    if (config.banks <= 0)
        fatal("simulateSpmv: need at least one bank");
    if (config.csrNnzPerBank.size() !=
        static_cast<std::size_t>(config.banks))
        fatal("simulateSpmv: csrNnzPerBank size mismatch");

    const Bank bankModel(config.proc, config.mem);
    const double f = config.proc.clockHz;
    const double startCmd = config.startCommandCycles / f;
    const double serviceT =
        config.proc.clusterServiceCycles / f;

    EventQueue queue;
    std::vector<BankState> banks(
        static_cast<std::size_t>(config.banks));
    std::vector<int> opsPerBank(
        static_cast<std::size_t>(config.banks), 0);
    for (const auto &op : ops) {
        if (op.bank < 0 || op.bank >= config.banks)
            fatal("simulateSpmv: bad bank index");
        ++opsPerBank[static_cast<std::size_t>(op.bank)];
    }

    for (int bk = 0; bk < config.banks; ++bk) {
        BankState &st = banks[static_cast<std::size_t>(bk)];
        st.interruptsLeft =
            opsPerBank[static_cast<std::size_t>(bk)];
        // The processor issues its start commands first, then starts
        // on the CSR leftovers.
        const double startPhase =
            st.interruptsLeft * startCmd +
            config.proc.kernelStartupCycles / f;
        st.lastT = startPhase;
        st.serviceBusyUntil = startPhase;
        st.csrLeft =
            bankModel.csrCycles(config.csrNnzPerBank[
                static_cast<std::size_t>(bk)]) / f;
        if (st.interruptsLeft == 0)
            st.finish = startPhase + st.csrLeft;
    }

    // Cluster completions: start commands are issued in order, so
    // the k-th op of a bank starts at k*startCmd.
    std::vector<int> issued(static_cast<std::size_t>(config.banks),
                            0);
    for (const auto &op : ops) {
        const auto bk = static_cast<std::size_t>(op.bank);
        const double start = (issued[bk] + 1) * startCmd;
        ++issued[bk];
        const double done = start + op.latency;
        queue.schedule(done, [&banks, bk, serviceT, done]() {
            BankState &st = banks[bk];
            st.advanceTo(done);
            const double begin =
                std::max(done, st.serviceBusyUntil);
            st.worstBacklog =
                std::max(st.worstBacklog, begin - done);
            st.serviceBusyUntil = begin + serviceT;
            --st.interruptsLeft;
            if (st.interruptsLeft == 0) {
                // Remaining CSR work runs after the last service.
                st.finish = st.serviceBusyUntil + st.csrLeft;
            }
        }, "cluster-done");
    }

    queue.run();

    SpmvSimResult res;
    res.events = queue.eventsRun();
    res.bankFinish.reserve(banks.size());
    for (const BankState &st : banks) {
        res.bankFinish.push_back(st.finish);
        res.slowestBankTime =
            std::max(res.slowestBankTime, st.finish);
        res.maxInterruptQueue =
            std::max(res.maxInterruptQueue, st.worstBacklog);
    }
    res.totalTime = res.slowestBankTime + config.mem.barrierLatency;
    return res;
}

std::string
formatSpmvSimStats(const SpmvSimResult &result)
{
    stats::Group group("spmvSim");
    stats::Distribution finish(group, "bankFinish",
                               "per-bank completion time [s]");
    stats::Scalar events(group, "events", "simulation events run");
    stats::Scalar total(group, "totalTime",
                        "SpMV completion incl. barrier [s]");
    stats::Formula balance(group, "loadBalance",
                           "mean/max bank finish time", [&] {
                               return finish.maxValue() > 0.0
                                   ? finish.mean() /
                                         finish.maxValue()
                                   : 0.0;
                           });
    for (double t : result.bankFinish)
        finish.sample(t);
    events.set(static_cast<double>(result.events));
    total.set(result.totalTime);
    std::ostringstream os;
    group.dump(os);
    return os.str();
}

} // namespace msc
