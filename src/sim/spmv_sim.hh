/**
 * @file
 * Event-driven simulation of one sparse MVM on the accelerator
 * (Section VI-A1 played out in time).
 *
 * Per bank: the local processor first writes the start registers of
 * its clusters (one command each), then chews the unblocked CSR
 * elements. Cluster completions raise interrupts; the processor
 * preempts its CSR work to service them (reading the result buffer
 * into the partial-result accumulation). The bank is done when its
 * clusters are all serviced and the CSR pass is finished; the system
 * barriers on the slowest bank.
 *
 * Compared with the closed-form model in Accelerator::prepare(),
 * this captures interrupt serialization on the processor and the
 * skew between cluster latencies, which matter when many clusters
 * share one bank.
 */

#ifndef MSC_SIM_SPMV_SIM_HH
#define MSC_SIM_SPMV_SIM_HH

#include <vector>

#include "bank/bank.hh"
#include "util/stats.hh"

namespace msc {

/** One cluster operation to simulate. */
struct SimClusterOp
{
    int bank = 0;
    double latency = 0.0; //!< seconds from start command to done
};

struct SpmvSimConfig
{
    ProcessorModelParams proc;
    MemoryModelParams mem;
    int banks = 1;
    /** CSR nonzeros each bank's processor must handle. */
    std::vector<double> csrNnzPerBank;
    /** Cycles for one cluster start command. */
    double startCommandCycles = 20.0;
};

struct SpmvSimResult
{
    double totalTime = 0.0;       //!< including the final barrier
    double slowestBankTime = 0.0;
    double maxInterruptQueue = 0.0; //!< worst service backlog, s
    std::uint64_t events = 0;
    std::vector<double> bankFinish; //!< per-bank completion time
};

/** Run the event-driven SpMV model. */
SpmvSimResult simulateSpmv(const SpmvSimConfig &config,
                           const std::vector<SimClusterOp> &ops);

/** Render a simulation result as a stats-package report. */
std::string formatSpmvSimStats(const SpmvSimResult &result);

} // namespace msc

#endif // MSC_SIM_SPMV_SIM_HH
