#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace msc {

void
EventQueue::schedule(double when, Callback fn, std::string label)
{
    if (when < currentTime) {
        panic("EventQueue: scheduling into the past (", when, " < ",
              currentTime, ") for ", label);
    }
    heap.push(Event{when, nextSeq++, std::move(fn),
                    std::move(label)});
}

void
EventQueue::scheduleAfter(double delay, Callback fn,
                          std::string label)
{
    schedule(currentTime + delay, std::move(fn), std::move(label));
}

double
EventQueue::run(std::uint64_t maxEvents)
{
    while (!heap.empty()) {
        if (executed >= maxEvents)
            fatal("EventQueue: event limit reached (runaway "
                  "simulation?)");
        // priority_queue::top is const; move out via const_cast is
        // avoided by copying the (small) event.
        Event ev = heap.top();
        heap.pop();
        currentTime = ev.when;
        ++executed;
        ev.fn();
    }
    return currentTime;
}

} // namespace msc
