/**
 * @file
 * A small discrete-event simulation kernel.
 *
 * The closed-form kernel cost models in accel/ assume perfect
 * overlap between cluster operations and the local processors' CSR
 * work. The event-driven SpMV simulator (sim/spmv_sim.hh) checks
 * that assumption by actually playing out cluster completions,
 * interrupt servicing, and barrier arrival; this header provides the
 * queue it runs on.
 */

#ifndef MSC_SIM_EVENT_QUEUE_HH
#define MSC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace msc {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule @p fn at absolute time @p when (seconds). */
    void schedule(double when, Callback fn,
                  std::string label = {});

    /** Schedule @p fn at now() + @p delay. */
    void scheduleAfter(double delay, Callback fn,
                       std::string label = {});

    /** Current simulated time (valid inside callbacks). */
    double now() const { return currentTime; }

    /** Events executed so far. */
    std::uint64_t eventsRun() const { return executed; }

    bool empty() const { return heap.empty(); }

    /**
     * Run until the queue drains or @p maxEvents fire.
     * @return the time of the last executed event.
     */
    double run(std::uint64_t maxEvents = 100'000'000);

  private:
    struct Event
    {
        double when = 0.0;
        std::uint64_t seq = 0; //!< FIFO tie-break at equal times
        Callback fn;
        std::string label;

        bool
        operator>(const Event &o) const
        {
            if (when != o.when)
                return when > o.when;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>,
                        std::greater<Event>>
        heap;
    double currentTime = 0.0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace msc

#endif // MSC_SIM_EVENT_QUEUE_HH
