#include "blocking/stream.hh"

#include <fstream>
#include <numeric>

#include "sparse/matrix_market.hh"
#include "util/logging.hh"

namespace msc {

std::int32_t
stripHeightFor(const BlockingConfig &config)
{
    if (config.sizes.empty())
        fatal("stripHeightFor: no candidate block sizes");
    std::int64_t h = 1;
    for (unsigned s : config.sizes) {
        if (s == 0)
            fatal("stripHeightFor: zero block size");
        h = std::lcm<std::int64_t>(h, s);
        if (h > 0x7fffffff)
            fatal("stripHeightFor: strip height overflows int32");
    }
    return static_cast<std::int32_t>(h);
}

BlockPlan
planBlocksStreaming(std::int32_t rows, std::int32_t cols,
                    const EntrySource &entries,
                    const BlockingConfig &config,
                    std::int32_t stripRows)
{
    const std::int32_t lcm = stripHeightFor(config);
    if (stripRows == 0)
        stripRows = lcm;
    if (stripRows <= 0 || stripRows % lcm != 0) {
        fatal("planBlocksStreaming: strip height ", stripRows,
              " is not a positive multiple of the size LCM ", lcm);
    }
    if (rows < 0 || cols < 0)
        fatal("planBlocksStreaming: negative dimensions");

    BlockPlan plan;
    plan.rows = rows;
    plan.cols = cols;
    plan.stats.blocksPerSize.assign(config.sizes.size(), 0);

    // Per-size block lists across strips: the global algorithm emits
    // size-major (all strips at one size before the next size), the
    // per-strip runs emit strip-major, so the stitch reorders.
    std::vector<std::vector<MatrixBlock>> bySize(config.sizes.size());
    Coo leftover;
    leftover.rows = rows;
    leftover.cols = cols;

    for (std::int32_t r0 = 0; r0 < rows; r0 += stripRows) {
        const std::int32_t h =
            std::min<std::int32_t>(stripRows, rows - r0);

        // Pass: keep only this strip's entries, rows rebased to the
        // strip origin. Delivery order is preserved, so duplicate
        // coordinates accumulate exactly as the global fromCoo does.
        Coo strip;
        strip.rows = h;
        strip.cols = cols;
        entries([&](std::int32_t r, std::int32_t c, double v) {
            if (r < 0 || r >= rows || c < 0 || c >= cols) {
                fatal("planBlocksStreaming: entry (", r, ",", c,
                      ") outside ", rows, "x", cols);
            }
            if (r >= r0 && r < r0 + h)
                strip.add(r - r0, c, v);
        });

        BlockPlan sp =
            planBlocks(Csr::fromCoo(strip), config);

        for (auto &block : sp.blocks) {
            block.rowOrigin += r0;
            std::size_t si = 0;
            while (si < config.sizes.size() &&
                   config.sizes[si] != block.size) {
                ++si;
            }
            if (si == config.sizes.size())
                panic("planBlocksStreaming: block of unknown size");
            bySize[si].push_back(std::move(block));
        }

        // Strip leftovers, rebased back to global rows. toCoo walks
        // the strip's leftover CSR row-major, and strips are visited
        // in ascending row order, so the concatenation is globally
        // (row, col)-sorted -- fromCoo below re-sorts stably into
        // the identical layout the in-core run produces.
        for (const Triplet &t : sp.unblocked.toCoo().entries)
            leftover.add(t.row + r0, t.col, t.val);

        plan.stats.totalNnz += sp.stats.totalNnz;
        plan.stats.blockedNnz += sp.stats.blockedNnz;
        plan.stats.unblockedNnz += sp.stats.unblockedNnz;
        plan.stats.expRangeEvictions += sp.stats.expRangeEvictions;
        plan.stats.elementVisits += sp.stats.elementVisits;
        for (std::size_t si = 0; si < config.sizes.size(); ++si)
            plan.stats.blocksPerSize[si] += sp.stats.blocksPerSize[si];
    }

    for (auto &sized : bySize) {
        for (auto &block : sized)
            plan.blocks.push_back(std::move(block));
    }
    plan.unblocked = Csr::fromCoo(leftover);
    return plan;
}

EntrySource
matrixMarketEntrySource(const std::string &path)
{
    return [path](const EntrySink &sink) {
        std::ifstream in(path);
        if (!in) {
            throw MatrixMarketError(
                MatrixMarketError::Reason::CannotOpen,
                detail::concat("fatal: matrix market: cannot open ",
                               path));
        }
        const MatrixMarketHeader h = readMatrixMarketHeader(in);
        forEachMatrixMarketEntry(in, h, sink);
    };
}

} // namespace msc
