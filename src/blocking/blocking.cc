#include "blocking/blocking.hh"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>

#include "fp/float64.hh"
#include "util/logging.hh"

namespace msc {

namespace {

constexpr int expAny = std::numeric_limits<int>::min();

/** Leading-bit exponent of a finite double; expAny for zero. */
int
leadExponent(double v)
{
    const Fp64Parts p = decompose(v);
    if (!p.isFinite())
        fatal("planBlocks: non-finite matrix coefficient");
    if (p.isZero())
        return expAny;
    return p.exp - (52 - (63 - std::countl_zero(p.mant)));
}

} // namespace

BlockPlan
planBlocks(const Csr &matrix, const BlockingConfig &config)
{
    BlockPlan plan;
    plan.rows = matrix.rows();
    plan.cols = matrix.cols();
    plan.stats.totalNnz = matrix.nnz();
    plan.stats.blocksPerSize.assign(config.sizes.size(), 0);

    for (std::size_t i = 0; i + 1 < config.sizes.size(); ++i) {
        if (config.sizes[i] <= config.sizes[i + 1])
            fatal("planBlocks: sizes must be strictly decreasing");
    }

    const auto rowPtr = matrix.rowPtr();
    const auto colIdx = matrix.colIndex();
    const auto vals = matrix.values();
    std::vector<std::uint8_t> mapped(matrix.nnz(), 0);
    std::vector<int> leadExp(matrix.nnz());
    for (std::size_t k = 0; k < matrix.nnz(); ++k)
        leadExp[k] = leadExponent(vals[k]);

    // CSR-position -> row lookup. Positions are 64-bit (row offsets
    // are std::int64_t now that out-of-core lifts the RAM bound), so
    // they must never be squeezed through a 32-bit Triplet field.
    std::vector<std::int32_t> rowOf(matrix.nnz());
    for (std::int32_t r = 0; r < matrix.rows(); ++r) {
        for (std::int64_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k)
            rowOf[static_cast<std::size_t>(k)] = r;
    }

    for (std::size_t si = 0; si < config.sizes.size(); ++si) {
        const unsigned s = config.sizes[si];
        // Dimension-dependent threshold: constant *density* rather
        // than constant per-row count, i.e. quadratic in the edge
        // length. A thin band that fills a 64-candidate does not
        // justify occupying (and paying the N-cycle column scan of)
        // a 512-crossbar; this reproduces the small-blocks-on-the-
        // band patterns of Figures 7 and 11.
        const auto threshold = static_cast<std::size_t>(
            config.densityFactor * s * (static_cast<double>(s) /
                                        config.sizes.back()));

        for (std::int32_t r0 = 0; r0 < matrix.rows();
             r0 += static_cast<std::int32_t>(s)) {
            // Bucket the strip's unmapped elements by column block.
            std::map<std::int32_t, std::vector<std::size_t>> buckets;
            const std::int32_t rEnd =
                std::min<std::int32_t>(r0 + s, matrix.rows());
            for (std::int32_t r = r0; r < rEnd; ++r) {
                for (std::int64_t k = rowPtr[r]; k < rowPtr[r + 1];
                     ++k) {
                    if (mapped[static_cast<std::size_t>(k)])
                        continue;
                    ++plan.stats.elementVisits;
                    buckets[colIdx[k] / static_cast<std::int32_t>(s)]
                        .push_back(static_cast<std::size_t>(k));
                }
            }

            for (auto &[cb, elems] : buckets) {
                if (elems.size() < threshold)
                    continue;

                // Exponent-window filter: keep the densest window of
                // width maxExpRange; zeros fit any window.
                std::vector<std::pair<int, std::size_t>> ranged;
                std::size_t zeros = 0;
                for (std::size_t k : elems) {
                    if (leadExp[k] == expAny)
                        ++zeros;
                    else
                        ranged.push_back({leadExp[k], k});
                }
                std::sort(ranged.begin(), ranged.end());
                std::size_t bestLo = 0, bestCount = ranged.size();
                if (!ranged.empty() &&
                    ranged.back().first - ranged.front().first >
                        config.maxExpRange) {
                    bestCount = 0;
                    std::size_t lo = 0;
                    for (std::size_t hi = 0; hi < ranged.size();
                         ++hi) {
                        while (ranged[hi].first - ranged[lo].first >
                               config.maxExpRange)
                            ++lo;
                        if (hi - lo + 1 > bestCount) {
                            bestCount = hi - lo + 1;
                            bestLo = lo;
                        }
                    }
                }
                if (bestCount + zeros < threshold)
                    continue; // too sparse once range-filtered

                // Accept the block.
                const std::int32_t c0 =
                    cb * static_cast<std::int32_t>(s);
                MatrixBlock block;
                block.rowOrigin = r0;
                block.colOrigin = c0;
                block.size = s;
                block.elems.reserve(bestCount + zeros);
                const int wLo = ranged.empty()
                    ? 0 : ranged[bestLo].first;
                for (std::size_t k : elems) {
                    const bool keep = leadExp[k] == expAny ||
                        (leadExp[k] >= wLo &&
                         leadExp[k] - wLo <= config.maxExpRange);
                    if (!keep) {
                        ++plan.stats.expRangeEvictions;
                        continue;
                    }
                    block.elems.push_back(
                        {rowOf[k] - r0, colIdx[k] - c0, vals[k]});
                    mapped[k] = 1;
                    plan.stats.blockedNnz += 1;
                }
                plan.stats.blocksPerSize[si] += 1;
                plan.blocks.push_back(std::move(block));
            }
        }
    }

    // Leftovers to CSR for the local processor.
    Coo leftover;
    leftover.rows = matrix.rows();
    leftover.cols = matrix.cols();
    for (std::size_t k = 0; k < matrix.nnz(); ++k) {
        if (!mapped[k]) {
            leftover.add(rowOf[k], colIdx[k], vals[k]);
        }
    }
    plan.stats.unblockedNnz = leftover.entries.size();
    plan.unblocked = Csr::fromCoo(leftover);
    return plan;
}

} // namespace msc
