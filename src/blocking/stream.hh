/**
 * @file
 * Streaming blocking preprocessor: planBlocks over bounded-memory
 * strip passes, bit-identical to the in-core algorithm.
 *
 * planBlocks (blocking/blocking.hh) needs the whole matrix resident
 * plus O(nnz) side arrays, which caps the packable problem size at
 * RAM. This variant exploits a structural property of the
 * preprocessor: when the strip height is a common multiple of every
 * candidate block size, every decision -- bucketing, the density
 * threshold, the exponent-window filter, acceptance order -- is
 * local to one strip of rows, because block candidates never cross a
 * strip boundary and the `mapped` state only couples sizes within
 * the rows they share. Running planBlocks per strip and stitching
 * the per-strip outputs size-major therefore reproduces the global
 * run exactly: the same blocks with the same elements in the same
 * order, the same leftover CSR, and the same statistics, bit for
 * bit (pinned by tests/test_binio.cc and the msc_check binio
 * module).
 *
 * The input is a re-iterable entry source rather than a Csr: each
 * strip pass rescans the source and keeps only the entries of its
 * row range, so peak memory is one strip's nonzeros plus the
 * (output-sized) plan under construction -- the matrix itself never
 * needs to be in memory at once. For a Matrix Market file the source
 * re-reads the file once per strip (time traded for space, the
 * out-of-core contract); tools/msc_pack uses exactly that to pack
 * matrices larger than RAM.
 */

#ifndef MSC_BLOCKING_STREAM_HH
#define MSC_BLOCKING_STREAM_HH

#include <functional>
#include <string>

#include "blocking/blocking.hh"

namespace msc {

/** Receives one coordinate entry (global row/col). */
using EntrySink =
    std::function<void(std::int32_t, std::int32_t, double)>;

/**
 * Re-iterable source of coordinate entries. Invoked once per strip
 * pass; it must deliver the identical entry sequence on every
 * invocation (duplicate coordinates accumulate in delivery order,
 * so a reordered rescan would change low-order result bits).
 */
using EntrySource = std::function<void(const EntrySink &)>;

/**
 * Smallest legal strip height for @p config: the least common
 * multiple of the candidate block sizes. Any positive multiple of
 * this is also legal (fewer, larger passes).
 */
std::int32_t stripHeightFor(const BlockingConfig &config);

/**
 * Run the blocking preprocessor over @p entries in strip passes.
 *
 * @param rows, cols  global matrix dimensions
 * @param entries     re-iterable coordinate source (global indices)
 * @param config      preprocessor configuration
 * @param stripRows   strip height; 0 picks stripHeightFor(config).
 *                    Must be a positive multiple of every candidate
 *                    size's LCM, or the call is fatal.
 *
 * Result is bitwise identical to
 * planBlocks(Csr::fromCoo(all entries), config).
 */
BlockPlan planBlocksStreaming(std::int32_t rows, std::int32_t cols,
                              const EntrySource &entries,
                              const BlockingConfig &config
                              = BlockingConfig{},
                              std::int32_t stripRows = 0);

/**
 * Entry source over a Matrix Market file: every invocation re-opens
 * and re-parses @p path (header validation included), delivering
 * the symmetric-expanded entry sequence in file order. Throws
 * MatrixMarketError from inside the pass on a malformed file.
 */
EntrySource matrixMarketEntrySource(const std::string &path);

} // namespace msc

#endif // MSC_BLOCKING_STREAM_HH
