/**
 * @file
 * Heterogeneous blocking preprocessor (Section V-B1).
 *
 * Maps the dense sub-blocks of a sparse matrix onto the accelerator's
 * heterogeneous set of crossbar sizes. Grid-aligned block candidates
 * are evaluated from the largest size down; a candidate is accepted
 * when, after evicting elements that violate the 64-bit exponent
 * alignment window, its nonzero count passes a size-dependent
 * threshold. Elements of rejected candidates remain available to
 * smaller sizes; anything left over (and every exponent eviction)
 * goes to the local processor in CSR form.
 *
 * The preprocessor touches the unmapped nonzeros at most once per
 * block size, so the worst case is sizes.size() * NNZ element visits
 * (the paper's 4x NNZ bound); early acceptance of large blocks gives
 * the ~1.8x NNZ average the paper reports.
 */

#ifndef MSC_BLOCKING_BLOCKING_HH
#define MSC_BLOCKING_BLOCKING_HH

#include <cstdint>
#include <vector>

#include "cluster/cluster.hh"
#include "sparse/csr.hh"

namespace msc {

/** Blocking preprocessor configuration. */
struct BlockingConfig
{
    /** Candidate block sizes, largest first (Table I). */
    std::vector<unsigned> sizes = {512, 256, 128, 64};
    /**
     * Acceptance threshold: a candidate of edge length s is accepted
     * when its (in-range) nonzero count is at least
     * densityFactor * s * (s / smallestSize) -- i.e. a constant
     * minimum *density* of densityFactor/smallestSize. The default
     * (3 nonzeros per block row at the 64 size, 4.7% density)
     * rejects uniform scatter (thermomech_TC, ns3Da) while accepting
     * banded stencils, and sends thin bands to small blocks rather
     * than wasting 512-crossbar column scans on them (Figures 7/11).
     */
    double densityFactor = 3.0;
    /** Maximum exponent spread a block may keep (Section V-B1). */
    int maxExpRange = fxp::maxExpRange;
};

/** Statistics of one blocking run. */
struct BlockingStats
{
    std::size_t totalNnz = 0;
    std::size_t blockedNnz = 0;
    std::size_t unblockedNnz = 0;
    std::size_t expRangeEvictions = 0;
    /** Element visits performed (for the 4x / 1.8x NNZ claims). */
    std::size_t elementVisits = 0;
    /** Accepted blocks per size, aligned with BlockingConfig::sizes. */
    std::vector<std::size_t> blocksPerSize;

    double
    blockingEfficiency() const
    {
        return totalNnz == 0
            ? 0.0
            : static_cast<double>(blockedNnz) / totalNnz;
    }

    double
    visitsPerNnz() const
    {
        return totalNnz == 0
            ? 0.0
            : static_cast<double>(elementVisits) / totalNnz;
    }
};

/** Result of the preprocessing step. */
struct BlockPlan
{
    std::vector<MatrixBlock> blocks;
    /** Elements the crossbars cannot handle, for the local processor
     *  (compressed sparse row, Section VI-A1). */
    Csr unblocked;
    BlockingStats stats;
    std::int32_t rows = 0;
    std::int32_t cols = 0;
};

/** Run the preprocessor on a matrix. */
BlockPlan planBlocks(const Csr &matrix, const BlockingConfig &config
                     = BlockingConfig{});

} // namespace msc

#endif // MSC_BLOCKING_BLOCKING_HH
