#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>

#include "util/intlog.hh"
#include "util/logging.hh"

namespace msc {

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), xbarModel(config.size, config.xbar, config.cic),
      an(config.anConstant, fxp::operandBits)
{
    if (cfg.targetMantissaBits == 0 || cfg.targetMantissaBits > 53)
        fatal("Cluster: targetMantissaBits must be in [1, 53]");
    if (cfg.anProtect && an.uniqueWindow() < fxp::encodedBits) {
        warn("Cluster: AN constant ", cfg.anConstant,
             " cannot uniquely correct over ", fxp::encodedBits,
             " bits (window ", an.uniqueWindow(), ")");
    }
    // ADC start bits never exceed bitsForCount(size) (a column has at
    // most `size` stored ones); memoize the per-conversion energy so
    // the per-group accounting loop is a table load instead of a
    // model evaluation.
    const unsigned maxStart = bitsForCount(cfg.size);
    convEnergyByStart.resize(maxStart + 1);
    for (unsigned s = 0; s <= maxStart; ++s)
        convEnergyByStart[s] = xbarModel.conversionEnergy(s);
    arrayOpE = xbarModel.arrayOpEnergy();
}

ClusterProgramInfo
Cluster::program(const MatrixBlock &block)
{
    if (block.size == 0 || block.size > cfg.size) {
        fatal("Cluster::program: block size ", block.size,
              " does not fit cluster size ", cfg.size);
    }
    blockSize = block.size;

    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems) {
        if (t.row < 0 || t.col < 0 ||
            t.row >= static_cast<std::int32_t>(block.size) ||
            t.col >= static_cast<std::int32_t>(block.size)) {
            fatal("Cluster::program: element outside block");
        }
        vals.push_back(t.val);
    }

    // Exponent-range locality: alignValues is fatal beyond 64; the
    // blocking preprocessor must have evicted out-of-range elements.
    const AlignedSet aligned = alignValues(vals);
    const BiasedSet biased = biasEncode(aligned);
    blockScale = aligned.scale;
    storedBits = biased.width();

    storedBias = cfg.anProtect ? an.encode(biased.bias())
                               : U256::from(biased.bias());

    // Flatten the elements row-major (CSR-like): the multiply hot
    // loop walks each row's columns and contribution-table entries
    // linearly instead of chasing per-row vectors.
    const std::size_t nnz = block.elems.size();
    rowPtr.assign(blockSize + 1, 0);
    for (const Triplet &t : block.elems)
        ++rowPtr[static_cast<std::size_t>(t.row) + 1];
    for (unsigned i = 0; i < blockSize; ++i)
        rowPtr[i + 1] += rowPtr[i];
    elemCol.assign(nnz, 0);
    elemStored.assign(nnz, U256{});
    rowSumF.assign(blockSize, {});
    std::vector<std::uint32_t> cursor(rowPtr.begin(),
                                      rowPtr.end() - 1);
    encodedBits = storedBias.bitLength();
    for (std::size_t e = 0; e < nnz; ++e) {
        const Triplet &t = block.elems[e];
        const U256 stored = cfg.anProtect
            ? an.encode(biased.stored[e])
            : U256::from(biased.stored[e]);
        encodedBits = std::max(encodedBits, stored.bitLength());
        const auto row = static_cast<std::size_t>(t.row);
        const std::uint32_t at = cursor[row]++;
        elemCol[at] = t.col;
        elemStored[at] = stored;
        rowSumF[row].add(aligned.neg[e] != 0,
                         U256::from(aligned.mag[e]));
    }
    if (encodedBits > fxp::encodedBits) {
        panic("Cluster::program: encoded operand width ", encodedBits,
              " exceeds ", fxp::encodedBits);
    }

    // Per (slice, block row) stored-ones census for CIC and ADC
    // headstart. Zero cells store the bias pattern.
    sliceOnes.assign(encodedBits,
                     std::vector<std::uint16_t>(blockSize, 0));
    progInfo = ClusterProgramInfo{};
    std::uint64_t setBits = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        const auto zeroCells = static_cast<std::uint32_t>(
            blockSize - (rowPtr[i + 1] - rowPtr[i]));
        for (unsigned b = 0; b < encodedBits; ++b) {
            std::uint32_t ones = 0;
            if (storedBias.bit(b))
                ones += zeroCells;
            for (std::uint32_t e = rowPtr[i]; e < rowPtr[i + 1]; ++e)
                ones += elemStored[e].bit(b) ? 1 : 0;
            if (2 * ones > blockSize) {
                ++progInfo.cicInvertedColumns;
                ones = blockSize - ones;
            } else if (2 * ones == blockSize && ones != 0) {
                ++progInfo.cicCornerCases;
            }
            sliceOnes[b][i] = static_cast<std::uint16_t>(ones);
            setBits += ones;
        }
    }

    progInfo.matrixSlices = encodedBits;
    progInfo.storedBits = storedBits;
    progInfo.scale = blockScale;
    // Only SET operations cost write energy; bulk RESET of the bank
    // is amortized. Programming proceeds row-by-row within a
    // crossbar, bit slices sequentially (one write driver set per
    // cluster), clusters in parallel.
    progInfo.cellsWritten = setBits;
    progInfo.programTime = encodedBits * xbarModel.programTime();
    progInfo.programEnergy = xbarModel.programEnergy(setBits);
    isProgrammed = true;
    return progInfo;
}

bool
Cluster::settled(const U256 &mag, int bound, unsigned prec)
{
    const int len = static_cast<int>(mag.bitLength());
    const int wb = len - static_cast<int>(prec);
    if (wb <= bound + 1)
        return false;
    // The gap (bound, wb) must hold a 0 (absorbs the single carry the
    // remaining positive contributions can generate) and a 1 (absorbs
    // the single borrow the remaining negative contributions can
    // generate), so the top prec bits and the leading-one position
    // are final.
    bool sawZero = false;
    bool sawOne = false;
    const int lo = std::max(bound + 1, 0);
    for (int p = lo; p < wb; ++p) {
        if (mag.bit(static_cast<unsigned>(p)))
            sawOne = true;
        else
            sawZero = true;
        if (sawZero && sawOne)
            return true;
    }
    return false;
}

double
Cluster::convert(const SignedAcc &acc, int scale, bool exact) const
{
    U256 mag = acc.mag;
    if (cfg.anProtect) {
        const std::uint64_t rem = mag.divSmall(cfg.anConstant);
        if (exact && rem != 0) {
            panic("Cluster::convert: accumulator not a multiple of A "
                  "(residue ", rem, ")");
        }
    }
    if (exact) {
        return fixedToDouble(acc.neg, mag, scale, cfg.rounding,
                             cfg.targetMantissaBits);
    }

    // Early-terminated: the top target+guard bits are settled and
    // the true remainder is strictly between 0 and one guard-ulp.
    // Clear the unsettled tail and synthesize a sticky bit.
    const unsigned prec = cfg.targetMantissaBits + 3;
    const unsigned len = mag.bitLength();
    if (len <= prec)
        panic("Cluster::convert: terminated accumulator too narrow");
    const unsigned wb = len - prec;
    U256 head = mag >> wb;
    U256 synth = head << wb;
    synth.setBit(wb - 1);
    return fixedToDouble(acc.neg, synth, scale, cfg.rounding,
                         cfg.targetMantissaBits);
}

ClusterStats
Cluster::multiply(std::span<const double> x, std::span<double> y,
                  std::vector<std::int32_t> *peeled)
{
    if (!isProgrammed)
        fatal("Cluster::multiply: no block programmed");
    if (x.size() != blockSize || y.size() != blockSize)
        fatal("Cluster::multiply: vector size mismatch");

    ClusterStats stats;

    // --- vector alignment with exponent-window peeling ------------
    std::vector<double> masked(x.begin(), x.end());
    if (peeled)
        peeled->clear();
    {
        // Choose the 64-wide exponent window keeping the most
        // elements; peel the rest for digital handling by the bank.
        std::vector<std::pair<int, std::int32_t>> exps;
        for (std::size_t j = 0; j < masked.size(); ++j) {
            const Fp64Parts p = decompose(masked[j]);
            if (!p.isFinite())
                fatal("Cluster::multiply: non-finite vector element");
            if (p.isZero())
                continue;
            const int lead = p.exp -
                (52 - (63 - std::countl_zero(p.mant)));
            exps.push_back({lead, static_cast<std::int32_t>(j)});
        }
        std::sort(exps.begin(), exps.end());
        if (!exps.empty() &&
            exps.back().first - exps.front().first > fxp::maxExpRange) {
            // Sliding window over sorted exponents.
            std::size_t bestLo = 0, bestCount = 0, lo = 0;
            for (std::size_t hi = 0; hi < exps.size(); ++hi) {
                while (exps[hi].first - exps[lo].first >
                       fxp::maxExpRange)
                    ++lo;
                if (hi - lo + 1 > bestCount) {
                    bestCount = hi - lo + 1;
                    bestLo = lo;
                }
            }
            for (std::size_t idx = 0; idx < exps.size(); ++idx) {
                const bool keep = idx >= bestLo &&
                    exps[idx].first - exps[bestLo].first <=
                        fxp::maxExpRange;
                if (!keep) {
                    masked[static_cast<std::size_t>(
                        exps[idx].second)] = 0.0;
                    ++stats.peeledVectorElements;
                    if (peeled)
                        peeled->push_back(exps[idx].second);
                }
            }
        }
    }

    const AlignedSet vx = alignValues(masked);
    const BiasedSet ux = biasEncode(vx);
    const unsigned vecBits = ux.width();
    const int outScale = blockScale + vx.scale;

    // --- schedule ---------------------------------------------------
    const ActivationSchedule schedule(encodedBits, vecBits,
                                      cfg.schedule, cfg.hybridSkew);
    stats.matrixSlices = encodedBits;
    stats.vectorSlices = vecBits;
    stats.groupsTotal = schedule.groups().size();

    // --- accumulators ------------------------------------------------
    std::vector<SignedAcc> acc(blockSize);
    std::vector<std::uint8_t> done(blockSize, 0);
    std::size_t alive = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        if (rowPtr[i + 1] == rowPtr[i]) {
            // Bias cells cancel exactly; the hardware settles these
            // immediately.
            done[i] = 1;
            y[i] = 0.0;
            ++stats.emptyColumns;
            continue;
        }
        ++alive;
        // Fold the vector-bias debias constant -bX * rowSumF into the
        // initial running sum (known at program/apply time).
        U256 init = rowSumF[i].mag << (ux.biasBits);
        if (cfg.anProtect)
            init.mulSmall(cfg.anConstant);
        acc[i].neg = !rowSumF[i].neg;
        acc[i].mag = init;
        if (init.isZero())
            acc[i].neg = false;
    }

    const unsigned nBits = bitsForCount(blockSize);
    const int anShift = cfg.anProtect
        ? static_cast<int>(an.codeBits() - an.dataBits() - 1) : 0;
    // anShift = 8 for A=269: floor(log2(269)).
    const unsigned resBits = xbarModel.adcResolutionBits();
    const int sigCellBits = static_cast<int>(
        bitsForCount(std::min(encodedBits, vecBits)));

    // --- precomputed slice-group kernels ------------------------------
    // Vector bit-slice bitmaps, shared with the hardware model's
    // dataflow: slice k gates which elements contribute in a segment
    // at weight 2^k. All-zero slices gate everything out, so their
    // segments are skipped entirely.
    const std::vector<VectorSlice> vslices = activeBitSlices(ux);
    std::vector<const BitVec *> sliceByK(vecBits, nullptr);
    for (const VectorSlice &vs : vslices)
        sliceByK[vs.k] = &vs.bits;

    // The schedule reuses a small set of distinct slice ranges
    // (bLo, bHi) across its groups: for skewed schedules the ranges
    // are the stagger runs, and the vertical schedule has exactly
    // one. For each range the per-element signed masked contribution
    //     ((stored & mask) - (storedBias & mask)) >> bLo
    // depends on neither the group nor the vector slice k, so it is
    // computed once per range and reused by every row scan at weight
    // 2^(bLo + k). Ranges narrow enough for int16 deltas (width <=
    // 15; every skewed schedule in practice) use a flat int16 table;
    // wider ranges fall back to sign + U128 magnitude. Both store
    // the masked difference exactly, so the accumulator sequence is
    // bit-identical to the straight-line evaluation.
    struct RangeTable
    {
        unsigned bLo = 0;
        bool small = false;
        std::vector<std::int16_t> delta; //!< small: signed deltas
        std::vector<std::uint8_t> negW;  //!< wide: sign per element
        std::vector<U128> magW;          //!< wide: |delta| >> bLo
    };
    const std::size_t nnz = elemCol.size();
    std::vector<RangeTable> tables;
    std::vector<std::int16_t> tableIdx(
        static_cast<std::size_t>(fxp::encodedBits + 1) *
            (fxp::encodedBits + 1),
        -1);
    const auto rangeKey = [](unsigned bLo, unsigned bHi) {
        return static_cast<std::size_t>(bLo) *
                   (fxp::encodedBits + 1) +
               bHi;
    };
    for (const ScheduleGroup &group : schedule.groups()) {
        for (const auto &seg : group.segments) {
            auto &idx = tableIdx[rangeKey(seg.bLo, seg.bHi)];
            if (idx >= 0)
                continue;
            idx = static_cast<std::int16_t>(tables.size());
            RangeTable t;
            t.bLo = seg.bLo;
            const unsigned width = seg.bHi - seg.bLo + 1;
            t.small = width <= 15;
            if (t.small) {
                const auto biasPart = static_cast<std::int32_t>(
                    storedBias.extractBits(seg.bLo, width));
                t.delta.resize(nnz);
                for (std::size_t e = 0; e < nnz; ++e) {
                    t.delta[e] = static_cast<std::int16_t>(
                        static_cast<std::int32_t>(
                            elemStored[e].extractBits(seg.bLo,
                                                      width)) -
                        biasPart);
                }
            } else {
                U256 mask;
                for (unsigned b = seg.bLo; b <= seg.bHi; ++b)
                    mask.setBit(b);
                const U256 biasPart = storedBias & mask;
                t.negW.resize(nnz);
                t.magW.resize(nnz);
                for (std::size_t e = 0; e < nnz; ++e) {
                    const U256 val = elemStored[e] & mask;
                    U256 d;
                    if (val >= biasPart) {
                        d = val - biasPart;
                        t.negW[e] = 0;
                    } else {
                        d = biasPart - val;
                        t.negW[e] = 1;
                    }
                    d >>= seg.bLo;
                    t.magW[e] = U128::from(d);
                }
            }
            tables.push_back(std::move(t));
        }
    }

    // Add m * 2^shift (m < 2^15) without materializing a full-width
    // shifted temporary: at most two words are nonzero.
    const auto addSmall = [](SignedAcc &a, bool neg, std::uint64_t m,
                             unsigned shift) {
        U256 v;
        const unsigned wi = shift / 64;
        const unsigned bi = shift % 64;
        v.setWord(wi, m << bi);
        if (bi && wi + 1 < U256::numWords)
            v.setWord(wi + 1, m >> (64 - bi));
        a.add(neg, v);
    };

    /** One segment of the current group, resolved to its kernel
     *  inputs: contribution table, gating slice, and weight. */
    struct SegKernel
    {
        const RangeTable *tab = nullptr;
        const BitVec *gate = nullptr;
        unsigned shift = 0; //!< bLo + k
    };
    std::vector<SegKernel> kernels;

    // --- group-granular execution ------------------------------------
    const auto &groups = schedule.groups();
    for (std::size_t g = 0; g < groups.size() && alive > 0; ++g) {
        const ScheduleGroup &group = groups[g];
        ++stats.groupsExecuted;
        stats.xbarActivations += group.activations();

        // ADC conversions: every active crossbar scans the alive
        // columns; terminated columns are skipped (Section III-B).
        stats.adcConversions +=
            static_cast<std::uint64_t>(group.activations()) * alive;
        stats.conversionsSkipped +=
            static_cast<std::uint64_t>(group.activations()) *
            (blockSize - alive);

        // Energy: full-array activation energy per crossbar op plus
        // per-conversion ADC energy with the headstart preset. The
        // whole array pulls current during an operation regardless of
        // how many columns are converted.
        stats.arrayEnergy += group.activations() * arrayOpE;
        for (const auto &seg : group.segments) {
            for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                const auto &ones = sliceOnes[b];
                for (unsigned i = 0; i < blockSize; ++i) {
                    if (done[i])
                        continue;
                    const unsigned start = cfg.adcHeadstart
                        ? bitsForCount(ones[i]) : resBits;
                    stats.adcEnergy += convEnergyByStart[start];
                }
            }
        }

        // Functional contribution, per alive output row: resolve the
        // group's segments to their precomputed kernels once, then
        // scan each row gating on the vector-slice bitmaps. A zero
        // delta is an exact no-op on the sign-magnitude accumulator
        // and is skipped.
        kernels.clear();
        for (const auto &seg : group.segments) {
            const BitVec *gate = sliceByK[seg.k];
            if (!gate)
                continue;
            kernels.push_back(
                {&tables[static_cast<std::size_t>(
                     tableIdx[rangeKey(seg.bLo, seg.bHi)])],
                 gate, seg.bLo + seg.k});
        }
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            SignedAcc &a = acc[i];
            for (const SegKernel &kr : kernels) {
                const BitVec &gate = *kr.gate;
                if (kr.tab->small) {
                    const std::int16_t *d = kr.tab->delta.data();
                    for (std::uint32_t e = rowPtr[i];
                         e < rowPtr[i + 1]; ++e) {
                        if (!gate.get(static_cast<std::size_t>(
                                elemCol[e])))
                            continue;
                        const std::int32_t m = d[e];
                        if (m == 0)
                            continue;
                        addSmall(a, m < 0,
                                 static_cast<std::uint64_t>(
                                     m < 0 ? -m : m),
                                 kr.shift);
                    }
                } else {
                    for (std::uint32_t e = rowPtr[i];
                         e < rowPtr[i + 1]; ++e) {
                        if (!gate.get(static_cast<std::size_t>(
                                elemCol[e])))
                            continue;
                        if (kr.tab->magW[e].isZero())
                            continue;
                        U256 v = U256::from(kr.tab->magW[e]);
                        v <<= kr.shift;
                        a.add(kr.tab->negW[e] != 0, v);
                    }
                }
            }
        }

        // Early termination check (between groups).
        if (!cfg.earlyTermination)
            continue;
        const int remSig = schedule.maxRemainingSignificance(g);
        if (remSig < 0)
            break; // grid exhausted; exact completion below
        // Remaining contribution bound: each remaining cell (b, k)
        // contributes at most N * 2^(b+k); at most min(B, K) cells
        // share a significance level, and the geometric sum over
        // levels <= remSig doubles the top one.
        const int bound = remSig + static_cast<int>(nBits) +
                          sigCellBits + 2;
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            U256 decoded = acc[i].mag;
            int boundDec = bound;
            if (cfg.anProtect) {
                decoded.divSmall(cfg.anConstant);
                boundDec = bound - anShift + 2;
            }
            if (settled(decoded, boundDec,
                        cfg.targetMantissaBits + 3)) {
                done[i] = 1;
                --alive;
                ++stats.columnsEarlyTerminated;
                y[i] = convert(acc[i], outScale, false);
            }
        }
    }

    // Exact completion for rows that never terminated early.
    for (unsigned i = 0; i < blockSize; ++i) {
        if (!done[i])
            y[i] = convert(acc[i], outScale, true);
    }

    // --- timing ---------------------------------------------------
    stats.cycles = stats.groupsExecuted * cfg.size + 12;
    stats.latency = static_cast<double>(stats.cycles) /
                    cfg.xbar.fClkHz;
    stats.energy = stats.arrayEnergy + stats.adcEnergy;
    return stats;
}

} // namespace msc
