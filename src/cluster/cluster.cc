#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/intlog.hh"
#include "util/logging.hh"

namespace msc {

ClusterStats &
operator+=(ClusterStats &into, const ClusterStats &s)
{
    into.matrixSlices += s.matrixSlices;
    into.vectorSlices += s.vectorSlices;
    into.groupsTotal += s.groupsTotal;
    into.groupsExecuted += s.groupsExecuted;
    into.xbarActivations += s.xbarActivations;
    into.adcConversions += s.adcConversions;
    into.conversionsSkipped += s.conversionsSkipped;
    into.columnsEarlyTerminated += s.columnsEarlyTerminated;
    into.emptyColumns += s.emptyColumns;
    into.peeledVectorElements += s.peeledVectorElements;
    into.cycles += s.cycles;
    into.latency += s.latency;
    into.energy += s.energy;
    into.adcEnergy += s.adcEnergy;
    into.arrayEnergy += s.arrayEnergy;
    return into;
}

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), xbarModel(config.size, config.xbar, config.cic),
      an(config.anConstant, fxp::operandBits)
{
    if (cfg.targetMantissaBits == 0 || cfg.targetMantissaBits > 53)
        fatal("Cluster: targetMantissaBits must be in [1, 53]");
    if (cfg.anProtect && an.uniqueWindow() < fxp::encodedBits) {
        warn("Cluster: AN constant ", cfg.anConstant,
             " cannot uniquely correct over ", fxp::encodedBits,
             " bits (window ", an.uniqueWindow(), ")");
    }
    // ADC start bits never exceed bitsForCount(size) (a column has at
    // most `size` stored ones); memoize the per-conversion energy so
    // the per-group accounting loop is a table load instead of a
    // model evaluation.
    const unsigned maxStart = bitsForCount(cfg.size);
    convEnergyByStart.resize(maxStart + 1);
    for (unsigned s = 0; s <= maxStart; ++s)
        convEnergyByStart[s] = xbarModel.conversionEnergy(s);
    arrayOpE = xbarModel.arrayOpEnergy();
}

ClusterProgramInfo
Cluster::program(const MatrixBlock &block)
{
    if (block.size == 0 || block.size > cfg.size) {
        fatal("Cluster::program: block size ", block.size,
              " does not fit cluster size ", cfg.size);
    }
    blockSize = block.size;

    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems) {
        if (t.row < 0 || t.col < 0 ||
            t.row >= static_cast<std::int32_t>(block.size) ||
            t.col >= static_cast<std::int32_t>(block.size)) {
            fatal("Cluster::program: element outside block");
        }
        vals.push_back(t.val);
    }

    // Exponent-range locality: alignValues is fatal beyond 64; the
    // blocking preprocessor must have evicted out-of-range elements.
    const AlignedSet aligned = alignValues(vals);
    const BiasedSet biased = biasEncode(aligned);
    blockScale = aligned.scale;
    storedBits = biased.width();

    storedBias = cfg.anProtect ? an.encode(biased.bias())
                               : U256::from(biased.bias());

    // Flatten the elements row-major (CSR-like): the multiply hot
    // loop walks each row's columns and contribution-table entries
    // linearly instead of chasing per-row vectors.
    const std::size_t nnz = block.elems.size();
    rowPtr.assign(blockSize + 1, 0);
    for (const Triplet &t : block.elems)
        ++rowPtr[static_cast<std::size_t>(t.row) + 1];
    for (unsigned i = 0; i < blockSize; ++i)
        rowPtr[i + 1] += rowPtr[i];
    elemCol.assign(nnz, 0);
    elemStored.assign(nnz, U256{});
    rowSumF.assign(blockSize, {});
    std::vector<std::uint32_t> cursor(rowPtr.begin(),
                                      rowPtr.end() - 1);
    encodedBits = storedBias.bitLength();
    for (std::size_t e = 0; e < nnz; ++e) {
        const Triplet &t = block.elems[e];
        const U256 stored = cfg.anProtect
            ? an.encode(biased.stored[e])
            : U256::from(biased.stored[e]);
        encodedBits = std::max(encodedBits, stored.bitLength());
        const auto row = static_cast<std::size_t>(t.row);
        const std::uint32_t at = cursor[row]++;
        elemCol[at] = t.col;
        elemStored[at] = stored;
        rowSumF[row].add(aligned.neg[e] != 0,
                         U256::from(aligned.mag[e]));
    }
    if (encodedBits > fxp::encodedBits) {
        panic("Cluster::program: encoded operand width ", encodedBits,
              " exceeds ", fxp::encodedBits);
    }

    // Per (slice, block row) stored-ones census for CIC and ADC
    // headstart. Zero cells store the bias pattern.
    sliceOnes.assign(encodedBits,
                     std::vector<std::uint16_t>(blockSize, 0));
    progInfo = ClusterProgramInfo{};
    std::uint64_t setBits = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        const auto zeroCells = static_cast<std::uint32_t>(
            blockSize - (rowPtr[i + 1] - rowPtr[i]));
        for (unsigned b = 0; b < encodedBits; ++b) {
            std::uint32_t ones = 0;
            if (storedBias.bit(b))
                ones += zeroCells;
            for (std::uint32_t e = rowPtr[i]; e < rowPtr[i + 1]; ++e)
                ones += elemStored[e].bit(b) ? 1 : 0;
            if (2 * ones > blockSize) {
                ++progInfo.cicInvertedColumns;
                ones = blockSize - ones;
            } else if (2 * ones == blockSize && ones != 0) {
                ++progInfo.cicCornerCases;
            }
            sliceOnes[b][i] = static_cast<std::uint16_t>(ones);
            setBits += ones;
        }
    }

    // Resolve the per-conversion ADC energy once per (slice, row):
    // the headstart preset depends only on the stored-ones census,
    // so every multiply -- and every column of a batched multiply --
    // reads the same table instead of re-deriving start bits.
    const unsigned resBits = xbarModel.adcResolutionBits();
    adcConvE.assign(
        static_cast<std::size_t>(encodedBits) * blockSize, 0.0);
    for (unsigned b = 0; b < encodedBits; ++b) {
        for (unsigned i = 0; i < blockSize; ++i) {
            const unsigned start = cfg.adcHeadstart
                ? bitsForCount(sliceOnes[b][i]) : resBits;
            adcConvE[static_cast<std::size_t>(b) * blockSize + i] =
                convEnergyByStart[start];
        }
    }

    // The contribution tables derive from the stored operands:
    // invalidate the cache; multiplies rebuild ranges lazily.
    tables.clear();
    tableIdx.assign(static_cast<std::size_t>(encodedBits + 1) *
                        (encodedBits + 1),
                    -1);

    progInfo.matrixSlices = encodedBits;
    progInfo.storedBits = storedBits;
    progInfo.scale = blockScale;
    // Only SET operations cost write energy; bulk RESET of the bank
    // is amortized. Programming proceeds row-by-row within a
    // crossbar, bit slices sequentially (one write driver set per
    // cluster), clusters in parallel.
    progInfo.cellsWritten = setBits;
    progInfo.programTime = encodedBits * xbarModel.programTime();
    progInfo.programEnergy = xbarModel.programEnergy(setBits);
    isProgrammed = true;
    return progInfo;
}

bool
Cluster::settled(const U256 &mag, int bound, unsigned prec)
{
    const int len = static_cast<int>(mag.bitLength());
    const int wb = len - static_cast<int>(prec);
    if (wb <= bound + 1)
        return false;
    // The gap (bound, wb) must hold a 0 (absorbs the single carry the
    // remaining positive contributions can generate) and a 1 (absorbs
    // the single borrow the remaining negative contributions can
    // generate), so the top prec bits and the leading-one position
    // are final.
    bool sawZero = false;
    bool sawOne = false;
    const int lo = std::max(bound + 1, 0);
    for (int p = lo; p < wb; ++p) {
        if (mag.bit(static_cast<unsigned>(p)))
            sawOne = true;
        else
            sawZero = true;
        if (sawZero && sawOne)
            return true;
    }
    return false;
}

double
Cluster::convert(const SignedAcc &acc, int scale, bool exact) const
{
    U256 mag = acc.mag;
    if (cfg.anProtect) {
        const std::uint64_t rem = mag.divSmall(cfg.anConstant);
        if (exact && rem != 0) {
            panic("Cluster::convert: accumulator not a multiple of A "
                  "(residue ", rem, ")");
        }
    }
    if (exact) {
        return fixedToDouble(acc.neg, mag, scale, cfg.rounding,
                             cfg.targetMantissaBits);
    }

    // Early-terminated: the top target+guard bits are settled and
    // the true remainder is strictly between 0 and one guard-ulp.
    // Clear the unsettled tail and synthesize a sticky bit.
    const unsigned prec = cfg.targetMantissaBits + 3;
    const unsigned len = mag.bitLength();
    if (len <= prec)
        panic("Cluster::convert: terminated accumulator too narrow");
    const unsigned wb = len - prec;
    U256 head = mag >> wb;
    U256 synth = head << wb;
    synth.setBit(wb - 1);
    return fixedToDouble(acc.neg, synth, scale, cfg.rounding,
                         cfg.targetMantissaBits);
}

const Cluster::RangeTable &
Cluster::rangeTable(unsigned bLo, unsigned bHi)
{
    // NOTE: building a new range may reallocate `tables`; callers
    // pre-build every range of a schedule (one pass over its groups)
    // before caching RangeTable pointers in kernels.
    const std::size_t dim = encodedBits + 1;
    std::int16_t &idx = tableIdx[bLo * dim + bHi];
    if (idx >= 0)
        return tables[static_cast<std::size_t>(idx)];

    const std::size_t nnz = elemCol.size();
    RangeTable t;
    t.bLo = bLo;
    const unsigned width = bHi - bLo + 1;
    t.small = width <= 15;
    if (t.small) {
        const auto biasPart = static_cast<std::int32_t>(
            storedBias.extractBits(bLo, width));
        t.delta.resize(nnz);
        for (std::size_t e = 0; e < nnz; ++e) {
            t.delta[e] = static_cast<std::int16_t>(
                static_cast<std::int32_t>(
                    elemStored[e].extractBits(bLo, width)) -
                biasPart);
        }
    } else {
        U256 mask;
        for (unsigned b = bLo; b <= bHi; ++b)
            mask.setBit(b);
        const U256 biasPart = storedBias & mask;
        t.negW.resize(nnz);
        t.magW.resize(nnz);
        for (std::size_t e = 0; e < nnz; ++e) {
            const U256 val = elemStored[e] & mask;
            U256 d;
            if (val >= biasPart) {
                d = val - biasPart;
                t.negW[e] = 0;
            } else {
                d = biasPart - val;
                t.negW[e] = 1;
            }
            d >>= bLo;
            t.magW[e] = U128::from(d);
        }
    }
    idx = static_cast<std::int16_t>(tables.size());
    tables.push_back(std::move(t));
    return tables.back();
}

void
Cluster::addSmall(SignedAcc &a, bool neg, std::uint64_t m,
                  unsigned shift)
{
    U256 v;
    const unsigned wi = shift / 64;
    const unsigned bi = shift % 64;
    v.setWord(wi, m << bi);
    if (bi && wi + 1 < U256::numWords)
        v.setWord(wi + 1, m >> (64 - bi));
    a.add(neg, v);
}

void
Cluster::peelVector(std::span<const double> x,
                    std::span<double> masked, ClusterStats &stats,
                    std::vector<std::int32_t> *peeled)
{
    std::copy(x.begin(), x.end(), masked.begin());
    if (peeled)
        peeled->clear();
    // Choose the 64-wide exponent window keeping the most elements;
    // peel the rest for digital handling by the bank.
    auto &exps = expsScratch;
    exps.clear();
    for (std::size_t j = 0; j < masked.size(); ++j) {
        const Fp64Parts p = decompose(masked[j]);
        if (!p.isFinite())
            fatal("Cluster::multiply: non-finite vector element");
        if (p.isZero())
            continue;
        const int lead = p.exp -
            (52 - (63 - std::countl_zero(p.mant)));
        exps.push_back({lead, static_cast<std::int32_t>(j)});
    }
    std::sort(exps.begin(), exps.end());
    if (!exps.empty() &&
        exps.back().first - exps.front().first > fxp::maxExpRange) {
        // Sliding window over sorted exponents.
        std::size_t bestLo = 0, bestCount = 0, lo = 0;
        for (std::size_t hi = 0; hi < exps.size(); ++hi) {
            while (exps[hi].first - exps[lo].first >
                   fxp::maxExpRange)
                ++lo;
            if (hi - lo + 1 > bestCount) {
                bestCount = hi - lo + 1;
                bestLo = lo;
            }
        }
        for (std::size_t idx = 0; idx < exps.size(); ++idx) {
            const bool keep = idx >= bestLo &&
                exps[idx].first - exps[bestLo].first <=
                    fxp::maxExpRange;
            if (!keep) {
                masked[static_cast<std::size_t>(
                    exps[idx].second)] = 0.0;
                ++stats.peeledVectorElements;
                if (peeled)
                    peeled->push_back(exps[idx].second);
            }
        }
    }
}

ClusterStats
Cluster::multiply(std::span<const double> x, std::span<double> y,
                  std::vector<std::int32_t> *peeled)
{
    if (!isProgrammed)
        fatal("Cluster::multiply: no block programmed");
    if (x.size() != blockSize || y.size() != blockSize)
        fatal("Cluster::multiply: vector size mismatch");

    ClusterStats stats;

    // --- vector alignment with exponent-window peeling ------------
    maskedScratch.resize(blockSize);
    peelVector(x, maskedScratch, stats, peeled);

    const AlignedSet vx = alignValues(maskedScratch);
    const BiasedSet ux = biasEncode(vx);
    const unsigned vecBits = ux.width();
    const int outScale = blockScale + vx.scale;

    // --- schedule ---------------------------------------------------
    const ActivationSchedule schedule(encodedBits, vecBits,
                                      cfg.schedule, cfg.hybridSkew);
    stats.matrixSlices = encodedBits;
    stats.vectorSlices = vecBits;
    stats.groupsTotal = schedule.groups().size();

    // --- accumulators ------------------------------------------------
    accScratch.assign(blockSize, SignedAcc{});
    doneScratch.assign(blockSize, 0);
    SignedAcc *const acc = accScratch.data();
    std::uint8_t *const done = doneScratch.data();
    std::size_t alive = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        if (rowPtr[i + 1] == rowPtr[i]) {
            // Bias cells cancel exactly; the hardware settles these
            // immediately.
            done[i] = 1;
            y[i] = 0.0;
            ++stats.emptyColumns;
            continue;
        }
        ++alive;
        // Fold the vector-bias debias constant -bX * rowSumF into the
        // initial running sum (known at program/apply time).
        U256 init = rowSumF[i].mag << (ux.biasBits);
        if (cfg.anProtect)
            init.mulSmall(cfg.anConstant);
        acc[i].neg = !rowSumF[i].neg;
        acc[i].mag = init;
        if (init.isZero())
            acc[i].neg = false;
    }

    const unsigned nBits = bitsForCount(blockSize);
    const int anShift = cfg.anProtect
        ? static_cast<int>(an.codeBits() - an.dataBits() - 1) : 0;
    // anShift = 8 for A=269: floor(log2(269)).
    const int sigCellBits = static_cast<int>(
        bitsForCount(std::min(encodedBits, vecBits)));

    // --- precomputed slice-group kernels ------------------------------
    // Vector bit-slice bitmaps, shared with the hardware model's
    // dataflow: slice k gates which elements contribute in a segment
    // at weight 2^k. All-zero slices gate everything out, so their
    // segments are skipped entirely.
    const std::size_t nActive = activeBitSlices(ux, vslicesScratch);
    sliceByKScratch.assign(vecBits, nullptr);
    for (std::size_t s = 0; s < nActive; ++s)
        sliceByKScratch[vslicesScratch[s].k] = &vslicesScratch[s].bits;
    const BitVec *const *sliceByK = sliceByKScratch.data();

    // Pre-build the contribution tables (see rangeTable()) for every
    // distinct (bLo, bHi) range of this schedule, so the kernel
    // resolution below can hold stable RangeTable pointers.
    for (const ScheduleGroup &group : schedule.groups()) {
        for (const auto &seg : group.segments)
            rangeTable(seg.bLo, seg.bHi);
    }

    std::vector<SegKernel> &kernels = kernelScratch;

    // --- group-granular execution ------------------------------------
    const auto &groups = schedule.groups();
    for (std::size_t g = 0; g < groups.size() && alive > 0; ++g) {
        const ScheduleGroup &group = groups[g];
        ++stats.groupsExecuted;
        stats.xbarActivations += group.activations();

        // ADC conversions: every active crossbar scans the alive
        // columns; terminated columns are skipped (Section III-B).
        stats.adcConversions +=
            static_cast<std::uint64_t>(group.activations()) * alive;
        stats.conversionsSkipped +=
            static_cast<std::uint64_t>(group.activations()) *
            (blockSize - alive);

        // Energy: full-array activation energy per crossbar op plus
        // per-conversion ADC energy from the per-(slice, row) table
        // program() resolved (headstart preset included). The whole
        // array pulls current during an operation regardless of how
        // many columns are converted.
        stats.arrayEnergy += group.activations() * arrayOpE;
        for (const auto &seg : group.segments) {
            for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                const double *ce =
                    &adcConvE[static_cast<std::size_t>(b) *
                              blockSize];
                for (unsigned i = 0; i < blockSize; ++i) {
                    if (done[i])
                        continue;
                    stats.adcEnergy += ce[i];
                }
            }
        }

        // Functional contribution, per alive output row: resolve the
        // group's segments to their precomputed kernels once, then
        // scan each row gating on the vector-slice bitmaps. A zero
        // delta is an exact no-op on the sign-magnitude accumulator
        // and is skipped.
        kernels.clear();
        for (const auto &seg : group.segments) {
            const BitVec *gate = sliceByK[seg.k];
            if (!gate)
                continue;
            kernels.push_back({&rangeTable(seg.bLo, seg.bHi), gate,
                               seg.bLo + seg.k});
        }
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            SignedAcc &a = acc[i];
            for (const SegKernel &kr : kernels) {
                const BitVec &gate = *kr.gate;
                if (kr.tab->small) {
                    const std::int16_t *d = kr.tab->delta.data();
                    for (std::uint32_t e = rowPtr[i];
                         e < rowPtr[i + 1]; ++e) {
                        if (!gate.get(static_cast<std::size_t>(
                                elemCol[e])))
                            continue;
                        const std::int32_t m = d[e];
                        if (m == 0)
                            continue;
                        addSmall(a, m < 0,
                                 static_cast<std::uint64_t>(
                                     m < 0 ? -m : m),
                                 kr.shift);
                    }
                } else {
                    for (std::uint32_t e = rowPtr[i];
                         e < rowPtr[i + 1]; ++e) {
                        if (!gate.get(static_cast<std::size_t>(
                                elemCol[e])))
                            continue;
                        if (kr.tab->magW[e].isZero())
                            continue;
                        U256 v = U256::from(kr.tab->magW[e]);
                        v <<= kr.shift;
                        a.add(kr.tab->negW[e] != 0, v);
                    }
                }
            }
        }

        // Early termination check (between groups).
        if (!cfg.earlyTermination)
            continue;
        const int remSig = schedule.maxRemainingSignificance(g);
        if (remSig < 0)
            break; // grid exhausted; exact completion below
        // Remaining contribution bound: each remaining cell (b, k)
        // contributes at most N * 2^(b+k); at most min(B, K) cells
        // share a significance level, and the geometric sum over
        // levels <= remSig doubles the top one.
        const int bound = remSig + static_cast<int>(nBits) +
                          sigCellBits + 2;
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            U256 decoded = acc[i].mag;
            int boundDec = bound;
            if (cfg.anProtect) {
                decoded.divSmall(cfg.anConstant);
                boundDec = bound - anShift + 2;
            }
            if (settled(decoded, boundDec,
                        cfg.targetMantissaBits + 3)) {
                done[i] = 1;
                --alive;
                ++stats.columnsEarlyTerminated;
                y[i] = convert(acc[i], outScale, false);
            }
        }
    }

    // Exact completion for rows that never terminated early.
    for (unsigned i = 0; i < blockSize; ++i) {
        if (!done[i])
            y[i] = convert(acc[i], outScale, true);
    }

    // --- timing ---------------------------------------------------
    stats.cycles = stats.groupsExecuted * cfg.size + 12;
    stats.latency = static_cast<double>(stats.cycles) /
                    cfg.xbar.fClkHz;
    stats.energy = stats.arrayEnergy + stats.adcEnergy;
    return stats;
}

ClusterStats
Cluster::multiply(std::span<const double> X, std::span<double> Y,
                  unsigned k,
                  std::vector<std::vector<std::int32_t>> *peeled,
                  std::vector<ClusterStats> *colStatsOut)
{
    if (!isProgrammed)
        fatal("Cluster::multiply: no block programmed");
    if (k == 0)
        fatal("Cluster::multiply: batch needs at least one column");
    const std::size_t panel =
        static_cast<std::size_t>(blockSize) * k;
    if (X.size() != panel || Y.size() != panel)
        fatal("Cluster::multiply: panel size mismatch");
    if (peeled)
        peeled->resize(k);

    // --- per-column front end: peel, align, encode -----------------
    // Alignment is input-dependent, so it stays per column; the
    // programmed-side state (contribution tables, ADC energy table,
    // schedules, gate transposes) is shared below.
    maskedBatch.resize(panel);
    std::vector<ClusterStats> colStats(k);
    std::vector<BiasedSet> uxs(k);
    std::vector<int> outScale(k);
    std::vector<std::vector<VectorSlice>> vslices(k);
    std::vector<std::vector<const BitVec *>> sliceByK(k);
    for (unsigned c = 0; c < k; ++c) {
        const std::span<double> mc(
            maskedBatch.data() +
                static_cast<std::size_t>(c) * blockSize,
            blockSize);
        peelVector(X.subspan(static_cast<std::size_t>(c) * blockSize,
                             blockSize),
                   mc, colStats[c],
                   peeled ? &(*peeled)[c] : nullptr);
        const AlignedSet vx = alignValues(mc);
        uxs[c] = biasEncode(vx);
        outScale[c] = blockScale + vx.scale;
        const std::size_t nActive =
            activeBitSlices(uxs[c], vslices[c]);
        sliceByK[c].assign(uxs[c].width(), nullptr);
        for (std::size_t s = 0; s < nActive; ++s)
            sliceByK[c][vslices[c][s].k] = &vslices[c][s].bits;
        colStats[c].matrixSlices = encodedBits;
        colStats[c].vectorSlices = uxs[c].width();
    }

    // --- per-column accumulators -----------------------------------
    accBatch.assign(panel, SignedAcc{});
    doneBatch.assign(panel, 0);
    std::vector<std::size_t> alive(k, 0);
    for (unsigned c = 0; c < k; ++c) {
        SignedAcc *const acc =
            accBatch.data() + static_cast<std::size_t>(c) * blockSize;
        std::uint8_t *const done =
            doneBatch.data() +
            static_cast<std::size_t>(c) * blockSize;
        const std::span<double> yc = Y.subspan(
            static_cast<std::size_t>(c) * blockSize, blockSize);
        for (unsigned i = 0; i < blockSize; ++i) {
            if (rowPtr[i + 1] == rowPtr[i]) {
                done[i] = 1;
                yc[i] = 0.0;
                ++colStats[c].emptyColumns;
                continue;
            }
            ++alive[c];
            U256 init = rowSumF[i].mag << (uxs[c].biasBits);
            if (cfg.anProtect)
                init.mulSmall(cfg.anConstant);
            acc[i].neg = !rowSumF[i].neg;
            acc[i].mag = init;
            if (init.isZero())
                acc[i].neg = false;
        }
    }

    const unsigned nBits = bitsForCount(blockSize);
    const int anShift = cfg.anProtect
        ? static_cast<int>(an.codeBits() - an.dataBits() - 1) : 0;

    // --- vector-width groups ----------------------------------------
    // The activation schedule depends on the input only through the
    // biased operand width, so columns sharing a width share one
    // schedule, one table-ensure pass, and one gate transpose.
    // Groups run in ascending width order; within a group columns
    // stay in ascending index order. Per-column trajectory state
    // keeps every column bitwise independent, so ordering across
    // columns is irrelevant to the outputs.
    std::vector<unsigned> order(k);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                         return uxs[a].width() < uxs[b].width();
                     });

    std::vector<unsigned> cols;
    for (std::size_t at = 0; at < order.size();) {
        const unsigned vecBits = uxs[order[at]].width();
        cols.clear();
        while (at < order.size() &&
               uxs[order[at]].width() == vecBits)
            cols.push_back(order[at++]);
        const std::size_t kg = cols.size();

        const ActivationSchedule schedule(
            encodedBits, vecBits, cfg.schedule, cfg.hybridSkew);
        const auto &groups = schedule.groups();
        for (unsigned c : cols)
            colStats[c].groupsTotal = groups.size();
        const int sigCellBits = static_cast<int>(
            bitsForCount(std::min(encodedBits, vecBits)));

        // Ensure every range's contribution table exists before the
        // group loop takes references (rangeTable() may reallocate).
        for (const ScheduleGroup &group : groups) {
            for (const auto &seg : group.segments)
                rangeTable(seg.bLo, seg.bHi);
        }

        // Gate transpose: per (vector slice k, element column j) a
        // kg-wide 0/1 row, so the inner loop reads the gates of all
        // columns in one contiguous stride instead of probing kg
        // bitmaps per element.
        gateTBatch.assign(
            static_cast<std::size_t>(vecBits) * blockSize * kg, 0);
        for (std::size_t idx = 0; idx < kg; ++idx) {
            const unsigned c = cols[idx];
            for (unsigned kc = 0; kc < vecBits; ++kc) {
                const BitVec *gate = sliceByK[c][kc];
                if (!gate)
                    continue;
                std::int16_t *gT =
                    &gateTBatch[static_cast<std::size_t>(kc) *
                                blockSize * kg];
                gate->forEachSetBit([&](std::size_t j) {
                    gT[j * kg + idx] = 1;
                });
            }
        }

        std::size_t aliveGroup = 0;
        for (unsigned c : cols)
            aliveGroup += alive[c];

        sumBatch.assign(kg, 0);
        actBatch.assign(kg, 0);

        // --- group-granular execution (all columns of this width) --
        for (std::size_t g = 0;
             g < groups.size() && aliveGroup > 0; ++g) {
            const ScheduleGroup &group = groups[g];

            // Per-column bookkeeping: a column participates in this
            // group iff it still has alive rows, mirroring the
            // single-RHS loop-exit condition.
            for (unsigned c : cols) {
                if (alive[c] == 0)
                    continue;
                ClusterStats &cs = colStats[c];
                ++cs.groupsExecuted;
                cs.xbarActivations += group.activations();
                cs.adcConversions +=
                    static_cast<std::uint64_t>(
                        group.activations()) * alive[c];
                cs.conversionsSkipped +=
                    static_cast<std::uint64_t>(
                        group.activations()) *
                    (blockSize - alive[c]);
                cs.arrayEnergy += group.activations() * arrayOpE;
                const std::uint8_t *done =
                    doneBatch.data() +
                    static_cast<std::size_t>(c) * blockSize;
                for (const auto &seg : group.segments) {
                    for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                        const double *ce = &adcConvE[
                            static_cast<std::size_t>(b) * blockSize];
                        for (unsigned i = 0; i < blockSize; ++i) {
                            if (done[i])
                                continue;
                            cs.adcEnergy += ce[i];
                        }
                    }
                }
            }

            // Functional contribution, k-wide. Within a group the
            // sign-magnitude adds are exact integer arithmetic, so
            // the accumulator value after the group is invariant
            // under regrouping: a row's gated int16 deltas collapse
            // into one int32 sum per column (bounded by nnz * 2^15 <
            // 2^31) and land in a single two-word add -- bitwise the
            // state the element-order single-RHS adds reach, and the
            // termination checks that observe it only run between
            // groups.
            for (const auto &seg : group.segments) {
                bool anyGate = false;
                for (unsigned c : cols) {
                    if (sliceByK[c][seg.k]) {
                        anyGate = true;
                        break;
                    }
                }
                if (!anyGate)
                    continue;
                const RangeTable &tab =
                    rangeTable(seg.bLo, seg.bHi);
                const unsigned shift = seg.bLo + seg.k;
                if (tab.small) {
                    const std::int16_t *gT = &gateTBatch[
                        static_cast<std::size_t>(seg.k) * blockSize *
                        kg];
                    const std::int16_t *d = tab.delta.data();
                    std::int32_t *const s = sumBatch.data();
                    std::uint8_t *const act = actBatch.data();
                    for (unsigned i = 0; i < blockSize; ++i) {
                        bool anyAlive = false;
                        for (std::size_t idx = 0; idx < kg; ++idx) {
                            const bool a = !doneBatch[
                                static_cast<std::size_t>(cols[idx]) *
                                    blockSize + i];
                            act[idx] = a ? 1 : 0;
                            anyAlive |= a;
                        }
                        if (!anyAlive)
                            continue;
                        for (std::size_t idx = 0; idx < kg; ++idx)
                            s[idx] = 0;
                        for (std::uint32_t e = rowPtr[i];
                             e < rowPtr[i + 1]; ++e) {
                            const std::int32_t dv = d[e];
                            if (dv == 0)
                                continue;
                            const std::int16_t *g = &gT[
                                static_cast<std::size_t>(
                                    elemCol[e]) * kg];
                            for (std::size_t idx = 0; idx < kg;
                                 ++idx)
                                s[idx] += dv * g[idx];
                        }
                        for (std::size_t idx = 0; idx < kg; ++idx) {
                            if (!act[idx])
                                continue;
                            const std::int32_t m = s[idx];
                            if (m == 0)
                                continue;
                            addSmall(
                                accBatch[static_cast<std::size_t>(
                                             cols[idx]) *
                                             blockSize + i],
                                m < 0,
                                static_cast<std::uint64_t>(
                                    m < 0 ? -static_cast<std::int64_t>(
                                                m)
                                          : m),
                                shift);
                        }
                    }
                } else {
                    // Wide range (vertical schedules): element-wise
                    // adds per column, the single-RHS inner loop.
                    for (unsigned c : cols) {
                        const BitVec *gate = sliceByK[c][seg.k];
                        if (!gate)
                            continue;
                        SignedAcc *const acc =
                            accBatch.data() +
                            static_cast<std::size_t>(c) * blockSize;
                        const std::uint8_t *done =
                            doneBatch.data() +
                            static_cast<std::size_t>(c) * blockSize;
                        for (unsigned i = 0; i < blockSize; ++i) {
                            if (done[i])
                                continue;
                            for (std::uint32_t e = rowPtr[i];
                                 e < rowPtr[i + 1]; ++e) {
                                if (!gate->get(
                                        static_cast<std::size_t>(
                                            elemCol[e])))
                                    continue;
                                if (tab.magW[e].isZero())
                                    continue;
                                U256 v = U256::from(tab.magW[e]);
                                v <<= shift;
                                acc[i].add(tab.negW[e] != 0, v);
                            }
                        }
                    }
                }
            }

            // Early termination check (between groups), per column.
            if (!cfg.earlyTermination)
                continue;
            const int remSig =
                schedule.maxRemainingSignificance(g);
            if (remSig < 0)
                break; // grid exhausted; exact completion below
            const int bound = remSig + static_cast<int>(nBits) +
                              sigCellBits + 2;
            for (unsigned c : cols) {
                if (alive[c] == 0)
                    continue;
                SignedAcc *const acc =
                    accBatch.data() +
                    static_cast<std::size_t>(c) * blockSize;
                std::uint8_t *const done =
                    doneBatch.data() +
                    static_cast<std::size_t>(c) * blockSize;
                const std::span<double> yc = Y.subspan(
                    static_cast<std::size_t>(c) * blockSize,
                    blockSize);
                for (unsigned i = 0; i < blockSize; ++i) {
                    if (done[i])
                        continue;
                    U256 decoded = acc[i].mag;
                    int boundDec = bound;
                    if (cfg.anProtect) {
                        decoded.divSmall(cfg.anConstant);
                        boundDec = bound - anShift + 2;
                    }
                    if (settled(decoded, boundDec,
                                cfg.targetMantissaBits + 3)) {
                        done[i] = 1;
                        --alive[c];
                        --aliveGroup;
                        ++colStats[c].columnsEarlyTerminated;
                        yc[i] = convert(acc[i], outScale[c], false);
                    }
                }
            }
        }

        // Exact completion + timing for this width group's columns.
        for (unsigned c : cols) {
            const SignedAcc *acc =
                accBatch.data() +
                static_cast<std::size_t>(c) * blockSize;
            const std::uint8_t *done =
                doneBatch.data() +
                static_cast<std::size_t>(c) * blockSize;
            const std::span<double> yc = Y.subspan(
                static_cast<std::size_t>(c) * blockSize, blockSize);
            for (unsigned i = 0; i < blockSize; ++i) {
                if (!done[i])
                    yc[i] = convert(acc[i], outScale[c], true);
            }
            ClusterStats &cs = colStats[c];
            cs.cycles = cs.groupsExecuted * cfg.size + 12;
            cs.latency =
                static_cast<double>(cs.cycles) / cfg.xbar.fClkHz;
            cs.energy = cs.arrayEnergy + cs.adcEnergy;
        }
    }

    // Aggregate in column order: bitwise the sum a caller looping
    // the single-RHS path and folding its stats would compute.
    ClusterStats agg;
    for (unsigned c = 0; c < k; ++c)
        agg += colStats[c];
    if (colStatsOut)
        *colStatsOut = std::move(colStats);
    return agg;
}

} // namespace msc
