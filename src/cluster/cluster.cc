#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace msc {

namespace {

/** ceil(log2(n+1)): bits needed to represent values 0..n. */
unsigned
bitsFor(unsigned n)
{
    unsigned bits = 0;
    while ((1ull << bits) < n + 1ull)
        ++bits;
    return bits;
}

} // namespace

Cluster::Cluster(const ClusterConfig &config)
    : cfg(config), xbarModel(config.size, config.xbar, config.cic),
      an(config.anConstant, fxp::operandBits)
{
    if (cfg.targetMantissaBits == 0 || cfg.targetMantissaBits > 53)
        fatal("Cluster: targetMantissaBits must be in [1, 53]");
    if (cfg.anProtect && an.uniqueWindow() < fxp::encodedBits) {
        warn("Cluster: AN constant ", cfg.anConstant,
             " cannot uniquely correct over ", fxp::encodedBits,
             " bits (window ", an.uniqueWindow(), ")");
    }
}

ClusterProgramInfo
Cluster::program(const MatrixBlock &block)
{
    if (block.size == 0 || block.size > cfg.size) {
        fatal("Cluster::program: block size ", block.size,
              " does not fit cluster size ", cfg.size);
    }
    blockSize = block.size;

    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems) {
        if (t.row < 0 || t.col < 0 ||
            t.row >= static_cast<std::int32_t>(block.size) ||
            t.col >= static_cast<std::int32_t>(block.size)) {
            fatal("Cluster::program: element outside block");
        }
        vals.push_back(t.val);
    }

    // Exponent-range locality: alignValues is fatal beyond 64; the
    // blocking preprocessor must have evicted out-of-range elements.
    const AlignedSet aligned = alignValues(vals);
    const BiasedSet biased = biasEncode(aligned);
    blockScale = aligned.scale;
    storedBits = biased.width();

    storedBias = cfg.anProtect ? an.encode(biased.bias())
                               : U256::from(biased.bias());

    rowsElems.assign(blockSize, {});
    rowSumF.assign(blockSize, {});
    encodedBits = storedBias.bitLength();
    for (std::size_t e = 0; e < block.elems.size(); ++e) {
        const Triplet &t = block.elems[e];
        Element el;
        el.col = t.col;
        el.mag = aligned.mag[e];
        el.neg = aligned.neg[e] != 0;
        el.stored = cfg.anProtect ? an.encode(biased.stored[e])
                                  : U256::from(biased.stored[e]);
        encodedBits = std::max(encodedBits, el.stored.bitLength());
        rowsElems[static_cast<std::size_t>(t.row)].push_back(el);
        rowSumF[static_cast<std::size_t>(t.row)]
            .add(el.neg, U256::from(el.mag));
    }
    if (encodedBits > fxp::encodedBits) {
        panic("Cluster::program: encoded operand width ", encodedBits,
              " exceeds ", fxp::encodedBits);
    }

    // Per (slice, block row) stored-ones census for CIC and ADC
    // headstart. Zero cells store the bias pattern.
    sliceOnes.assign(encodedBits,
                     std::vector<std::uint16_t>(blockSize, 0));
    progInfo = ClusterProgramInfo{};
    std::uint64_t setBits = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        const auto zeroCells = static_cast<std::uint32_t>(
            blockSize - rowsElems[i].size());
        for (unsigned b = 0; b < encodedBits; ++b) {
            std::uint32_t ones = 0;
            if (storedBias.bit(b))
                ones += zeroCells;
            for (const Element &el : rowsElems[i])
                ones += el.stored.bit(b) ? 1 : 0;
            if (2 * ones > blockSize) {
                ++progInfo.cicInvertedColumns;
                ones = blockSize - ones;
            } else if (2 * ones == blockSize && ones != 0) {
                ++progInfo.cicCornerCases;
            }
            sliceOnes[b][i] = static_cast<std::uint16_t>(ones);
            setBits += ones;
        }
    }

    progInfo.matrixSlices = encodedBits;
    progInfo.storedBits = storedBits;
    progInfo.scale = blockScale;
    // Only SET operations cost write energy; bulk RESET of the bank
    // is amortized. Programming proceeds row-by-row within a
    // crossbar, bit slices sequentially (one write driver set per
    // cluster), clusters in parallel.
    progInfo.cellsWritten = setBits;
    progInfo.programTime = encodedBits * xbarModel.programTime();
    progInfo.programEnergy = xbarModel.programEnergy(setBits);
    isProgrammed = true;
    return progInfo;
}

bool
Cluster::settled(const U256 &mag, int bound, unsigned prec)
{
    const int len = static_cast<int>(mag.bitLength());
    const int wb = len - static_cast<int>(prec);
    if (wb <= bound + 1)
        return false;
    // The gap (bound, wb) must hold a 0 (absorbs the single carry the
    // remaining positive contributions can generate) and a 1 (absorbs
    // the single borrow the remaining negative contributions can
    // generate), so the top prec bits and the leading-one position
    // are final.
    bool sawZero = false;
    bool sawOne = false;
    const int lo = std::max(bound + 1, 0);
    for (int p = lo; p < wb; ++p) {
        if (mag.bit(static_cast<unsigned>(p)))
            sawOne = true;
        else
            sawZero = true;
        if (sawZero && sawOne)
            return true;
    }
    return false;
}

double
Cluster::convert(const SignedAcc &acc, int scale, bool exact) const
{
    U256 mag = acc.mag;
    if (cfg.anProtect) {
        const std::uint64_t rem = mag.divSmall(cfg.anConstant);
        if (exact && rem != 0) {
            panic("Cluster::convert: accumulator not a multiple of A "
                  "(residue ", rem, ")");
        }
    }
    if (exact) {
        return fixedToDouble(acc.neg, mag, scale, cfg.rounding,
                             cfg.targetMantissaBits);
    }

    // Early-terminated: the top target+guard bits are settled and
    // the true remainder is strictly between 0 and one guard-ulp.
    // Clear the unsettled tail and synthesize a sticky bit.
    const unsigned prec = cfg.targetMantissaBits + 3;
    const unsigned len = mag.bitLength();
    if (len <= prec)
        panic("Cluster::convert: terminated accumulator too narrow");
    const unsigned wb = len - prec;
    U256 head = mag >> wb;
    U256 synth = head << wb;
    synth.setBit(wb - 1);
    return fixedToDouble(acc.neg, synth, scale, cfg.rounding,
                         cfg.targetMantissaBits);
}

ClusterStats
Cluster::multiply(std::span<const double> x, std::span<double> y,
                  std::vector<std::int32_t> *peeled)
{
    if (!isProgrammed)
        fatal("Cluster::multiply: no block programmed");
    if (x.size() != blockSize || y.size() != blockSize)
        fatal("Cluster::multiply: vector size mismatch");

    ClusterStats stats;

    // --- vector alignment with exponent-window peeling ------------
    std::vector<double> masked(x.begin(), x.end());
    if (peeled)
        peeled->clear();
    {
        // Choose the 64-wide exponent window keeping the most
        // elements; peel the rest for digital handling by the bank.
        std::vector<std::pair<int, std::int32_t>> exps;
        for (std::size_t j = 0; j < masked.size(); ++j) {
            const Fp64Parts p = decompose(masked[j]);
            if (!p.isFinite())
                fatal("Cluster::multiply: non-finite vector element");
            if (p.isZero())
                continue;
            const int lead = p.exp -
                (52 - (63 - std::countl_zero(p.mant)));
            exps.push_back({lead, static_cast<std::int32_t>(j)});
        }
        std::sort(exps.begin(), exps.end());
        if (!exps.empty() &&
            exps.back().first - exps.front().first > fxp::maxExpRange) {
            // Sliding window over sorted exponents.
            std::size_t bestLo = 0, bestCount = 0, lo = 0;
            for (std::size_t hi = 0; hi < exps.size(); ++hi) {
                while (exps[hi].first - exps[lo].first >
                       fxp::maxExpRange)
                    ++lo;
                if (hi - lo + 1 > bestCount) {
                    bestCount = hi - lo + 1;
                    bestLo = lo;
                }
            }
            for (std::size_t idx = 0; idx < exps.size(); ++idx) {
                const bool keep = idx >= bestLo &&
                    exps[idx].first - exps[bestLo].first <=
                        fxp::maxExpRange;
                if (!keep) {
                    masked[static_cast<std::size_t>(
                        exps[idx].second)] = 0.0;
                    ++stats.peeledVectorElements;
                    if (peeled)
                        peeled->push_back(exps[idx].second);
                }
            }
        }
    }

    const AlignedSet vx = alignValues(masked);
    const BiasedSet ux = biasEncode(vx);
    const unsigned vecBits = ux.width();
    const int outScale = blockScale + vx.scale;

    // --- schedule ---------------------------------------------------
    const ActivationSchedule schedule(encodedBits, vecBits,
                                      cfg.schedule, cfg.hybridSkew);
    stats.matrixSlices = encodedBits;
    stats.vectorSlices = vecBits;
    stats.groupsTotal = schedule.groups().size();

    // --- accumulators ------------------------------------------------
    std::vector<SignedAcc> acc(blockSize);
    std::vector<std::uint8_t> done(blockSize, 0);
    std::size_t alive = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        if (rowsElems[i].empty()) {
            // Bias cells cancel exactly; the hardware settles these
            // immediately.
            done[i] = 1;
            y[i] = 0.0;
            ++stats.emptyColumns;
            continue;
        }
        ++alive;
        // Fold the vector-bias debias constant -bX * rowSumF into the
        // initial running sum (known at program/apply time).
        U256 init = rowSumF[i].mag << (ux.biasBits);
        if (cfg.anProtect)
            init.mulSmall(cfg.anConstant);
        acc[i].neg = !rowSumF[i].neg;
        acc[i].mag = init;
        if (init.isZero())
            acc[i].neg = false;
    }

    const unsigned nBits = bitsFor(blockSize);
    const int anShift = cfg.anProtect
        ? static_cast<int>(an.codeBits() - an.dataBits() - 1) : 0;
    // anShift = 8 for A=269: floor(log2(269)).

    // --- group-granular execution ------------------------------------
    const auto &groups = schedule.groups();
    for (std::size_t g = 0; g < groups.size() && alive > 0; ++g) {
        const ScheduleGroup &group = groups[g];
        ++stats.groupsExecuted;
        stats.xbarActivations += group.activations();

        // ADC conversions: every active crossbar scans the alive
        // columns; terminated columns are skipped (Section III-B).
        stats.adcConversions +=
            static_cast<std::uint64_t>(group.activations()) * alive;
        stats.conversionsSkipped +=
            static_cast<std::uint64_t>(group.activations()) *
            (blockSize - alive);

        // Energy: full-array activation energy per crossbar op plus
        // per-conversion ADC energy with the headstart preset. The
        // whole array pulls current during an operation regardless of
        // how many columns are converted.
        stats.arrayEnergy +=
            group.activations() * xbarModel.arrayOpEnergy();
        for (const auto &seg : group.segments) {
            for (unsigned b = seg.bLo; b <= seg.bHi; ++b) {
                for (unsigned i = 0; i < blockSize; ++i) {
                    if (done[i])
                        continue;
                    const unsigned start = cfg.adcHeadstart
                        ? bitsFor(sliceOnes[b][i])
                        : xbarModel.adcResolutionBits();
                    stats.adcEnergy +=
                        xbarModel.conversionEnergy(start);
                }
            }
        }

        // Functional contribution, per alive output row.
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            for (const auto &seg : group.segments) {
                U256 mask;
                for (unsigned b = seg.bLo; b <= seg.bHi; ++b)
                    mask.setBit(b);
                const U256 biasPart = storedBias & mask;
                for (const Element &el : rowsElems[i]) {
                    if (!ux.stored[static_cast<std::size_t>(el.col)]
                             .bit(seg.k))
                        continue;
                    const U256 val = el.stored & mask;
                    if (val >= biasPart) {
                        acc[i].add(false, (val - biasPart) << seg.k);
                    } else {
                        acc[i].add(true, (biasPart - val) << seg.k);
                    }
                }
            }
        }

        // Early termination check (between groups).
        if (!cfg.earlyTermination)
            continue;
        const int remSig = schedule.maxRemainingSignificance(g);
        if (remSig < 0)
            break; // grid exhausted; exact completion below
        // Remaining contribution bound: each remaining cell (b, k)
        // contributes at most N * 2^(b+k); at most min(B, K) cells
        // share a significance level, and the geometric sum over
        // levels <= remSig doubles the top one.
        const int sigCellBits = static_cast<int>(
            bitsFor(std::min(encodedBits, vecBits)));
        const int bound = remSig + static_cast<int>(nBits) +
                          sigCellBits + 2;
        for (unsigned i = 0; i < blockSize; ++i) {
            if (done[i])
                continue;
            U256 decoded = acc[i].mag;
            int boundDec = bound;
            if (cfg.anProtect) {
                decoded.divSmall(cfg.anConstant);
                boundDec = bound - anShift + 2;
            }
            if (settled(decoded, boundDec,
                        cfg.targetMantissaBits + 3)) {
                done[i] = 1;
                --alive;
                ++stats.columnsEarlyTerminated;
                y[i] = convert(acc[i], outScale, false);
            }
        }
    }

    // Exact completion for rows that never terminated early.
    for (unsigned i = 0; i < blockSize; ++i) {
        if (!done[i])
            y[i] = convert(acc[i], outScale, true);
    }

    // --- timing ---------------------------------------------------
    stats.cycles = stats.groupsExecuted * cfg.size + 12;
    stats.latency = static_cast<double>(stats.cycles) /
                    cfg.xbar.fClkHz;
    stats.energy = stats.arrayEnergy + stats.adcEnergy;
    return stats;
}

} // namespace msc
