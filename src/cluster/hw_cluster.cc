#include "cluster/hw_cluster.hh"

#include <algorithm>

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

// ADC activity and AN-code outcomes per multiply, recorded from the
// merged stats on the calling thread (deterministic totals).
constinit telemetry::Counter ctrAdc{"hw.adc_conversions"};
constinit telemetry::Counter ctrAnClean{"hw.an_clean"};
constinit telemetry::Counter ctrAnCorrected{"hw.an_corrected"};
constinit telemetry::Counter
    ctrAnUncorrectable{"hw.an_uncorrectable"};
constinit telemetry::Counter
    ctrCicInverted{"hw.cic_inverted_columns"};

/** Signed accumulator in sign-magnitude form. */
struct SignedAcc
{
    bool neg = false;
    U256 mag;

    void
    add(bool vNeg, const U256 &v)
    {
        if (vNeg == neg) {
            mag += v;
        } else if (mag >= v) {
            mag -= v;
        } else {
            mag = v - mag;
            neg = vNeg;
        }
        if (mag.isZero())
            neg = false;
    }
};

} // namespace

HwCluster::HwCluster(const Config &config)
    : cfg(config), an(config.anConstant, fxp::operandBits)
{
    if (cfg.size < 2)
        fatal("HwCluster: size must be >= 2");
}

void
HwCluster::program(const MatrixBlock &block)
{
    if (block.size == 0 || block.size > cfg.size)
        fatal("HwCluster::program: block does not fit");
    blockSize = block.size;

    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems) {
        if (t.row < 0 || t.col < 0 ||
            t.row >= static_cast<std::int32_t>(blockSize) ||
            t.col >= static_cast<std::int32_t>(blockSize))
            fatal("HwCluster::program: element outside block");
        vals.push_back(t.val);
    }
    const AlignedSet aligned = alignValues(vals);
    const BiasedSet biased = biasEncode(aligned);
    blockScale = aligned.scale;
    storedBias = cfg.anProtect ? an.encode(biased.bias())
                               : U256::from(biased.bias());

    // Dense stored-word grid: zero cells hold the bias pattern.
    std::vector<U256> stored(
        static_cast<std::size_t>(blockSize) * blockSize, storedBias);
    rowSumF.assign(blockSize, {});
    nSlices = storedBias.bitLength();
    for (std::size_t e = 0; e < block.elems.size(); ++e) {
        const Triplet &t = block.elems[e];
        const U256 word = cfg.anProtect
            ? an.encode(biased.stored[e])
            : U256::from(biased.stored[e]);
        stored[static_cast<std::size_t>(t.row) * blockSize +
               static_cast<std::size_t>(t.col)] = word;
        nSlices = std::max(nSlices, word.bitLength());
        RowSum &rs = rowSumF[static_cast<std::size_t>(t.row)];
        SignedAcc tmp{rs.neg, rs.mag};
        tmp.add(aligned.neg[e] != 0, U256::from(aligned.mag[e]));
        rs.neg = tmp.neg;
        rs.mag = tmp.mag;
    }
    if (nSlices > fxp::encodedBits)
        panic("HwCluster::program: operand too wide");

    // Materialize one binary crossbar per bit slice. Crossbar row =
    // block column (vector input); crossbar column = block row.
    slices.assign(nSlices, BinaryCrossbar(blockSize, blockSize));
    for (unsigned i = 0; i < blockSize; ++i) {
        for (unsigned j = 0; j < blockSize; ++j) {
            const U256 &word =
                stored[static_cast<std::size_t>(i) * blockSize + j];
            for (unsigned b = 0; b < nSlices; ++b) {
                if (word.bit(b))
                    slices[b].set(j, i);
            }
        }
    }
    if (cfg.cic) {
        for (auto &xbar : slices)
            xbar.applyCic();
    }
    programmed = true;
}

void
HwCluster::injectStuckCell(unsigned slice, unsigned blockRow,
                           unsigned blockCol, bool value)
{
    if (!programmed)
        fatal("HwCluster::injectStuckCell: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::injectStuckCell: no such slice");
    // The physical cell stores the (possibly CIC-inverted) bit.
    const bool stored = slices[slice].columnInverted(blockRow)
        ? !value : value;
    slices[slice].set(blockCol, blockRow, stored);
}

void
HwCluster::flipCell(unsigned slice, unsigned blockRow,
                    unsigned blockCol)
{
    if (!programmed)
        fatal("HwCluster::flipCell: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::flipCell: no such slice");
    const bool cur = slices[slice].get(blockCol, blockRow);
    slices[slice].set(blockCol, blockRow, !cur);
}

void
HwCluster::killSlice(unsigned slice)
{
    if (!programmed)
        fatal("HwCluster::killSlice: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::killSlice: no such slice");
    slices[slice].clear();
}

std::size_t
HwCluster::scrub() const
{
    if (!programmed)
        fatal("HwCluster::scrub: program() first");
    if (!cfg.anProtect)
        return 0;
    std::size_t corrupt = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        for (unsigned j = 0; j < blockSize; ++j) {
            // Reconstruct the logical stored word at block (i, j):
            // crossbar row j, column i, un-inverting CIC columns.
            U256 word;
            for (unsigned b = 0; b < nSlices; ++b) {
                bool bit = slices[b].get(j, i);
                if (slices[b].columnInverted(i))
                    bit = !bit;
                if (bit)
                    word.setBit(b);
            }
            if (!an.check(word))
                ++corrupt;
        }
    }
    return corrupt;
}

HwClusterStats
HwCluster::multiply(std::span<const double> x, std::span<double> y,
                    Rng *rng)
{
    if (!programmed)
        fatal("HwCluster::multiply: program() first");
    if (x.size() != blockSize || y.size() != blockSize)
        fatal("HwCluster::multiply: vector size mismatch");

    telemetry::Span span("hw.multiply");
    HwClusterStats stats;
    for (const auto &xbar : slices) {
        for (unsigned i = 0; i < blockSize; ++i)
            stats.cicInvertedColumns +=
                xbar.columnInverted(i) ? 1 : 0;
    }

    // Vector alignment (no peeling here: the verification harness
    // feeds in-range vectors; out-of-range input is a fatal).
    const AlignedSet vx = alignValues(
        std::vector<double>(x.begin(), x.end()));
    const BiasedSet ux = biasEncode(vx);
    const unsigned vecSlices = ux.width();
    const int outScale = blockScale + vx.scale;

    const ColumnReadModel readModel(cfg.cell);

    // Running sums initialized with the folded vector-bias
    // correction -bX * rowSumF (known at apply time).
    std::vector<SignedAcc> acc(blockSize);
    for (unsigned i = 0; i < blockSize; ++i) {
        U256 init = rowSumF[i].mag << ux.biasBits;
        if (cfg.anProtect)
            init.mulSmall(cfg.anConstant);
        acc[i].neg = !rowSumF[i].neg;
        acc[i].mag = init;
        if (init.isZero())
            acc[i].neg = false;
    }

    // 1. Build the active vector slices (MSB first) once: they are
    // shared read-only by every output row.
    struct VecSlice
    {
        unsigned k = 0;
        BitVec bits;
        std::uint64_t pc = 0;
    };
    std::vector<VecSlice> active;
    active.reserve(vecSlices);
    for (unsigned k = vecSlices; k-- > 0;) {
        BitVec slice(blockSize);
        for (unsigned j = 0; j < blockSize; ++j) {
            if (ux.stored[j].bit(k))
                slice.set(j);
        }
        const auto pc =
            static_cast<std::uint64_t>(slice.popcount());
        if (pc == 0)
            continue;
        active.push_back({k, std::move(slice), pc});
    }

    // One output row through every active slice: steps 2-6 of the
    // dataflow. Rows are independent of each other.
    auto scanRow = [&](unsigned i, Rng *rowRng,
                       HwClusterStats &st) {
        for (const VecSlice &vs : active) {
            // 2. + 3. ADC scans and shift-and-add reduction.
            U256 reduced;
            for (unsigned b = 0; b < nSlices; ++b) {
                std::int64_t count;
                if (cfg.analogReads) {
                    count = slices[b].readColumnNoisy(
                        i, vs.bits, readModel, rowRng);
                } else {
                    count = slices[b].readColumn(i, vs.bits);
                }
                // Transient upsets and stuck ADC columns strike the
                // raw conversion, before the digital CIC correction.
                if (injector) {
                    count = injector->faultedRead(
                        b, i, count,
                        static_cast<std::int64_t>(blockSize));
                }
                if (slices[b].columnInverted(i)) {
                    count = static_cast<std::int64_t>(vs.pc) - count;
                    // An analog over-read can push the digital CIC
                    // correction negative; clamp like hardware would.
                    count = std::max<std::int64_t>(count, 0);
                }
                U256 contrib(static_cast<std::uint64_t>(count));
                reduced.addShifted(contrib, b);
            }
            ++st.sliceWords;

            // 4. de-bias: subtract storedBias * popcount.
            U256 biasTerm = storedBias;
            biasTerm.mulSmall(vs.pc);
            SignedAcc word;
            if (reduced >= biasTerm) {
                word.neg = false;
                word.mag = reduced - biasTerm;
            } else {
                word.neg = true;
                word.mag = biasTerm - reduced;
            }

            // 5. AN correction on the de-biased (signed) word.
            if (cfg.anProtect) {
                switch (an.correctSigned(word.mag, word.neg)) {
                  case AnCode::Outcome::Clean:
                    ++st.cleanWords;
                    break;
                  case AnCode::Outcome::Corrected:
                    ++st.correctedWords;
                    break;
                  case AnCode::Outcome::Uncorrectable:
                    ++st.uncorrectableWords;
                    break;
                }
            } else {
                ++st.cleanWords;
            }

            // 6. update the running sum at weight 2^k.
            acc[i].add(word.neg, word.mag << vs.k);
        }
    };

    if (injector) {
        // faultedRead mutates shared injector state (its transient
        // stream and counters), so an attached injector pins the
        // scan to the sequential row-major order.
        for (unsigned i = 0; i < blockSize; ++i)
            scanRow(i, rng, stats);
    } else {
        // Per-row noise streams are split off the caller's generator
        // up front, in row order, so the draws a row sees depend
        // only on its index -- never on the lane count.
        std::vector<Rng> rowRngs;
        if (cfg.analogReads && rng) {
            rowRngs.reserve(blockSize);
            for (unsigned i = 0; i < blockSize; ++i)
                rowRngs.emplace_back(rng->next());
        }
        std::vector<HwClusterStats> part(blockSize);
        parallelFor(blockSize, [&](std::size_t i) {
            scanRow(static_cast<unsigned>(i),
                    rowRngs.empty() ? nullptr : &rowRngs[i],
                    part[i]);
        });
        for (const HwClusterStats &p : part) {
            stats.sliceWords += p.sliceWords;
            stats.cleanWords += p.cleanWords;
            stats.correctedWords += p.correctedWords;
            stats.uncorrectableWords += p.uncorrectableWords;
        }
    }

    // Final conversion: decode and round.
    for (unsigned i = 0; i < blockSize; ++i) {
        U256 mag = acc[i].mag;
        if (cfg.anProtect) {
            const std::uint64_t rem = mag.divSmall(cfg.anConstant);
            if (rem != 0) {
                // Residual uncorrected damage: fold the remainder
                // away (truncation) and count it.
                ++stats.uncorrectableWords;
            }
        }
        y[i] = fixedToDouble(acc[i].neg, mag, outScale,
                             cfg.rounding);
    }
    // Every reduced word took one ADC conversion per weight slice.
    ctrAdc.add(stats.sliceWords * nSlices);
    ctrAnClean.add(stats.cleanWords);
    ctrAnCorrected.add(stats.correctedWords);
    ctrAnUncorrectable.add(stats.uncorrectableWords);
    ctrCicInverted.add(stats.cicInvertedColumns);
    return stats;
}

} // namespace msc
