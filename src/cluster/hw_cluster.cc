#include "cluster/hw_cluster.hh"

#include <algorithm>
#include <bit>

#include "fault/fault.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"
#include "util/threadpool.hh"

namespace msc {

namespace {

// ADC activity and AN-code outcomes per multiply, recorded from the
// merged stats on the calling thread (deterministic totals).
constinit telemetry::Counter ctrAdc{"hw.adc_conversions"};
constinit telemetry::Counter ctrAnClean{"hw.an_clean"};
constinit telemetry::Counter ctrAnCorrected{"hw.an_corrected"};
constinit telemetry::Counter
    ctrAnUncorrectable{"hw.an_uncorrectable"};
constinit telemetry::Counter
    ctrCicInverted{"hw.cic_inverted_columns"};

/**
 * Exact, unfaulted reduction of one (row, vector-slice) scan: counts
 * are <= blockSize, so the whole shift-and-add reduction fits a raw
 * 4-limb accumulator with explicit carry chains -- the same integer
 * sum addShifted computes, without a U256 temporary per read.
 * Overflow past limb 3 is discarded exactly as addShifted discards
 * bits above 2^256. Shared verbatim by the single- and multi-RHS
 * exact-read paths so they cannot diverge.
 */
inline U256
reduceRowSlice(const std::uint64_t *rowCols,
               const std::uint8_t *rowInv, const std::uint64_t *in,
               std::uint64_t pc, unsigned nSlices, unsigned nw)
{
    std::uint64_t rw[4] = {0, 0, 0, 0};
    const auto spill = [&rw](unsigned wi, std::uint64_t v) {
        while (v && wi < 4) {
            const std::uint64_t old = rw[wi];
            rw[wi] = old + v;
            v = rw[wi] < old ? 1 : 0;
            ++wi;
        }
    };
    if (nw == 1) {
        // Blocks up to 64 wide: a column read is one
        // word-AND-popcount; keep the scan branchless on memory and
        // stride-1 on rowCols.
        const std::uint64_t in0 = in[0];
        for (unsigned b = 0; b < nSlices; ++b) {
            std::uint64_t n = static_cast<std::uint64_t>(
                std::popcount(rowCols[b] & in0));
            // Exact reads never exceed pc, so the CIC correction
            // cannot go negative here.
            if (rowInv[b])
                n = pc - n;
            if (!n)
                continue;
            const unsigned wi = b / 64;
            const unsigned bi = b % 64;
            spill(wi, n << bi);
            if (bi)
                spill(wi + 1, n >> (64 - bi));
        }
    } else {
        for (unsigned b = 0; b < nSlices; ++b) {
            const std::uint64_t *cw =
                rowCols + static_cast<std::size_t>(b) * nw;
            std::uint64_t n = 0;
            for (unsigned w = 0; w < nw; ++w)
                n += static_cast<std::uint64_t>(
                    std::popcount(cw[w] & in[w]));
            if (rowInv[b])
                n = pc - n;
            if (!n)
                continue;
            const unsigned wi = b / 64;
            const unsigned bi = b % 64;
            spill(wi, n << bi);
            if (bi)
                spill(wi + 1, n >> (64 - bi));
        }
    }
    U256 reduced;
    for (unsigned w = 0; w < 4; ++w)
        reduced.setWord(w, rw[w]);
    return reduced;
}

} // namespace

HwClusterStats &
operator+=(HwClusterStats &into, const HwClusterStats &s)
{
    into.sliceWords += s.sliceWords;
    into.cleanWords += s.cleanWords;
    into.correctedWords += s.correctedWords;
    into.uncorrectableWords += s.uncorrectableWords;
    into.cicInvertedColumns += s.cicInvertedColumns;
    return into;
}

HwCluster::HwCluster(const Config &config)
    : cfg(config), an(config.anConstant, fxp::operandBits)
{
    if (cfg.size < 2)
        fatal("HwCluster: size must be >= 2");
}

void
HwCluster::program(const MatrixBlock &block)
{
    if (block.size == 0 || block.size > cfg.size)
        fatal("HwCluster::program: block does not fit");
    blockSize = block.size;

    std::vector<double> vals;
    vals.reserve(block.elems.size());
    for (const auto &t : block.elems) {
        if (t.row < 0 || t.col < 0 ||
            t.row >= static_cast<std::int32_t>(blockSize) ||
            t.col >= static_cast<std::int32_t>(blockSize))
            fatal("HwCluster::program: element outside block");
        vals.push_back(t.val);
    }
    const AlignedSet aligned = alignValues(vals);
    const BiasedSet biased = biasEncode(aligned);
    blockScale = aligned.scale;
    storedBias = cfg.anProtect ? an.encode(biased.bias())
                               : U256::from(biased.bias());

    // Dense stored-word grid: zero cells hold the bias pattern.
    std::vector<U256> stored(
        static_cast<std::size_t>(blockSize) * blockSize, storedBias);
    rowSumF.assign(blockSize, {});
    nSlices = storedBias.bitLength();
    for (std::size_t e = 0; e < block.elems.size(); ++e) {
        const Triplet &t = block.elems[e];
        const U256 word = cfg.anProtect
            ? an.encode(biased.stored[e])
            : U256::from(biased.stored[e]);
        stored[static_cast<std::size_t>(t.row) * blockSize +
               static_cast<std::size_t>(t.col)] = word;
        nSlices = std::max(nSlices, word.bitLength());
        RowSum &rs = rowSumF[static_cast<std::size_t>(t.row)];
        SignedWord tmp{rs.neg, rs.mag};
        tmp.add(aligned.neg[e] != 0, U256::from(aligned.mag[e]));
        rs.neg = tmp.neg;
        rs.mag = tmp.mag;
    }
    if (nSlices > fxp::encodedBits)
        panic("HwCluster::program: operand too wide");

    // Materialize one binary crossbar per bit slice. Crossbar row =
    // block column (vector input); crossbar column = block row.
    slices.assign(nSlices, BinaryCrossbar(blockSize, blockSize));
    for (unsigned i = 0; i < blockSize; ++i) {
        for (unsigned j = 0; j < blockSize; ++j) {
            const U256 &word =
                stored[static_cast<std::size_t>(i) * blockSize + j];
            for (unsigned b = 0; b < nSlices; ++b) {
                if (word.bit(b))
                    slices[b].set(j, i);
            }
        }
    }
    if (cfg.cic) {
        for (auto &xbar : slices)
            xbar.applyCic();
    }
    programmed = true;
}

void
HwCluster::injectStuckCell(unsigned slice, unsigned blockRow,
                           unsigned blockCol, bool value)
{
    if (!programmed)
        fatal("HwCluster::injectStuckCell: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::injectStuckCell: no such slice");
    // The physical cell stores the (possibly CIC-inverted) bit.
    const bool stored = slices[slice].columnInverted(blockRow)
        ? !value : value;
    slices[slice].set(blockCol, blockRow, stored);
}

void
HwCluster::flipCell(unsigned slice, unsigned blockRow,
                    unsigned blockCol)
{
    if (!programmed)
        fatal("HwCluster::flipCell: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::flipCell: no such slice");
    const bool cur = slices[slice].get(blockCol, blockRow);
    slices[slice].set(blockCol, blockRow, !cur);
}

void
HwCluster::killSlice(unsigned slice)
{
    if (!programmed)
        fatal("HwCluster::killSlice: program() first");
    if (slice >= nSlices)
        fatal("HwCluster::killSlice: no such slice");
    slices[slice].clear();
}

std::size_t
HwCluster::scrub() const
{
    if (!programmed)
        fatal("HwCluster::scrub: program() first");
    if (!cfg.anProtect)
        return 0;
    std::size_t corrupt = 0;
    for (unsigned i = 0; i < blockSize; ++i) {
        for (unsigned j = 0; j < blockSize; ++j) {
            // Reconstruct the logical stored word at block (i, j):
            // crossbar row j, column i, un-inverting CIC columns.
            U256 word;
            for (unsigned b = 0; b < nSlices; ++b) {
                bool bit = slices[b].get(j, i);
                if (slices[b].columnInverted(i))
                    bit = !bit;
                if (bit)
                    word.setBit(b);
            }
            if (!an.check(word))
                ++corrupt;
        }
    }
    return corrupt;
}

void
HwCluster::flattenColumns(unsigned nw)
{
    colWordsScratch.resize(
        static_cast<std::size_t>(blockSize) * nSlices * nw);
    colInvScratch.resize(
        static_cast<std::size_t>(blockSize) * nSlices);
    for (unsigned b = 0; b < nSlices; ++b) {
        for (unsigned i = 0; i < blockSize; ++i) {
            const auto &words = slices[b].column(i).raw();
            std::uint64_t *dst = &colWordsScratch[
                (static_cast<std::size_t>(i) * nSlices + b) * nw];
            for (unsigned w = 0; w < nw; ++w)
                dst[w] = words[w];
            colInvScratch[static_cast<std::size_t>(i) * nSlices + b] =
                slices[b].columnInverted(i) ? 1 : 0;
        }
    }
}

HwClusterStats
HwCluster::multiply(std::span<const double> x, std::span<double> y,
                    Rng *rng)
{
    if (!programmed)
        fatal("HwCluster::multiply: program() first");
    if (x.size() != blockSize || y.size() != blockSize)
        fatal("HwCluster::multiply: vector size mismatch");

    telemetry::Span span("hw.multiply");
    HwClusterStats stats;
    for (const auto &xbar : slices) {
        for (unsigned i = 0; i < blockSize; ++i)
            stats.cicInvertedColumns +=
                xbar.columnInverted(i) ? 1 : 0;
    }

    // Vector alignment (no peeling here: the verification harness
    // feeds in-range vectors; out-of-range input is a fatal).
    const AlignedSet vx = alignValues(x);
    const BiasedSet ux = biasEncode(vx);
    const int outScale = blockScale + vx.scale;

    const ColumnReadModel readModel(cfg.cell);

    // Running sums initialized with the folded vector-bias
    // correction -bX * rowSumF (known at apply time).
    accScratch.assign(blockSize, SignedWord{});
    SignedWord *const acc = accScratch.data();
    for (unsigned i = 0; i < blockSize; ++i) {
        U256 init = rowSumF[i].mag << ux.biasBits;
        if (cfg.anProtect)
            init.mulSmall(cfg.anConstant);
        acc[i].neg = !rowSumF[i].neg;
        acc[i].mag = init;
        if (init.isZero())
            acc[i].neg = false;
    }

    // 1. Build the active vector slices (MSB first) once: they are
    // shared read-only by every output row. The de-bias term of a
    // reduced word, storedBias * popcount(slice), depends only on
    // the slice, so it is precomputed here instead of per (row,
    // slice) in the scan.
    const std::size_t nActive = activeBitSlices(ux, vslicesScratch);
    const VectorSlice *const active = vslicesScratch.data();
    biasTermsScratch.clear();
    for (std::size_t si = 0; si < nActive; ++si) {
        U256 term = storedBias;
        term.mulSmall(active[si].pc);
        biasTermsScratch.push_back(term);
    }

    // Exact reads are popcounts against the stored column bits, so
    // flatten every (row, slice) column into one contiguous word
    // matrix up front -- [row][slice][word], inner scan order -- and
    // hoist the CIC flags next to it. One multiply reads each column
    // activeSlices times; the flatten pays the BitVec indirections
    // once instead of per read. Analog reads keep drawing through
    // the device model, which owns the noise stream order.
    const unsigned nw =
        static_cast<unsigned>((blockSize + 63) / 64);
    if (!cfg.analogReads)
        flattenColumns(nw);

    // One output row through every active slice: steps 2-6 of the
    // dataflow. Rows are independent of each other.
    auto scanRow = [&](unsigned i, Rng *rowRng,
                       HwClusterStats &st) {
        const std::uint64_t *rowCols = cfg.analogReads
            ? nullptr
            : &colWordsScratch[
                  static_cast<std::size_t>(i) * nSlices * nw];
        const std::uint8_t *rowInv = cfg.analogReads
            ? nullptr
            : &colInvScratch[static_cast<std::size_t>(i) * nSlices];
        const bool fastReads = !cfg.analogReads && !injector;
        for (std::size_t si = 0; si < nActive; ++si) {
            const VectorSlice &vs = active[si];
            const std::uint64_t *in = vs.bits.raw().data();
            // 2. + 3. ADC scans and shift-and-add reduction.
            U256 reduced;
            if (fastReads) {
                reduced = reduceRowSlice(rowCols, rowInv, in, vs.pc,
                                         nSlices, nw);
            } else {
                for (unsigned b = 0; b < nSlices; ++b) {
                    std::int64_t count;
                    bool invertedCol;
                    if (cfg.analogReads) {
                        count = slices[b].readColumnNoisy(
                            i, vs.bits, readModel, rowRng);
                        invertedCol = slices[b].columnInverted(i);
                    } else {
                        const std::uint64_t *cw = rowCols +
                            static_cast<std::size_t>(b) * nw;
                        std::uint64_t n = 0;
                        for (unsigned w = 0; w < nw; ++w)
                            n += static_cast<std::uint64_t>(
                                std::popcount(cw[w] & in[w]));
                        count = static_cast<std::int64_t>(n);
                        invertedCol = rowInv[b] != 0;
                    }
                    // Transient upsets and stuck ADC columns strike
                    // the raw conversion, before the digital CIC
                    // correction.
                    if (injector) {
                        count = injector->faultedRead(
                            b, i, count,
                            static_cast<std::int64_t>(blockSize));
                    }
                    if (invertedCol) {
                        count =
                            static_cast<std::int64_t>(vs.pc) - count;
                        // An analog over-read can push the digital
                        // CIC correction negative; clamp like
                        // hardware would.
                        count = std::max<std::int64_t>(count, 0);
                    }
                    U256 contrib(static_cast<std::uint64_t>(count));
                    reduced.addShifted(contrib, b);
                }
            }
            ++st.sliceWords;

            // 4. de-bias: subtract storedBias * popcount.
            const U256 &biasTerm = biasTermsScratch[si];
            SignedWord word;
            if (reduced >= biasTerm) {
                word.neg = false;
                word.mag = reduced - biasTerm;
            } else {
                word.neg = true;
                word.mag = biasTerm - reduced;
            }

            // 5. AN correction on the de-biased (signed) word.
            if (cfg.anProtect) {
                switch (an.correctSigned(word.mag, word.neg)) {
                  case AnCode::Outcome::Clean:
                    ++st.cleanWords;
                    break;
                  case AnCode::Outcome::Corrected:
                    ++st.correctedWords;
                    break;
                  case AnCode::Outcome::Uncorrectable:
                    ++st.uncorrectableWords;
                    break;
                }
            } else {
                ++st.cleanWords;
            }

            // 6. update the running sum at weight 2^k.
            acc[i].add(word.neg, word.mag << vs.k);
        }
    };

    if (injector) {
        // faultedRead mutates shared injector state (its transient
        // stream and counters), so an attached injector pins the
        // scan to the sequential row-major order.
        for (unsigned i = 0; i < blockSize; ++i)
            scanRow(i, rng, stats);
    } else {
        // Per-row noise streams are split off the caller's generator
        // up front, in row order, so the draws a row sees depend
        // only on its index -- never on the lane count.
        std::vector<Rng> rowRngs;
        if (cfg.analogReads && rng) {
            rowRngs.reserve(blockSize);
            for (unsigned i = 0; i < blockSize; ++i)
                rowRngs.emplace_back(rng->next());
        }
        partScratch.assign(blockSize, HwClusterStats{});
        parallelFor(blockSize, [&](std::size_t i) {
            scanRow(static_cast<unsigned>(i),
                    rowRngs.empty() ? nullptr : &rowRngs[i],
                    partScratch[i]);
        });
        for (const HwClusterStats &p : partScratch) {
            stats.sliceWords += p.sliceWords;
            stats.cleanWords += p.cleanWords;
            stats.correctedWords += p.correctedWords;
            stats.uncorrectableWords += p.uncorrectableWords;
        }
    }

    // Final conversion: decode and round.
    for (unsigned i = 0; i < blockSize; ++i) {
        U256 mag = acc[i].mag;
        if (cfg.anProtect) {
            const std::uint64_t rem = mag.divSmall(cfg.anConstant);
            if (rem != 0) {
                // Residual uncorrected damage: fold the remainder
                // away (truncation) and count it.
                ++stats.uncorrectableWords;
            }
        }
        y[i] = fixedToDouble(acc[i].neg, mag, outScale,
                             cfg.rounding);
    }
    // Every reduced word took one ADC conversion per weight slice.
    ctrAdc.add(stats.sliceWords * nSlices);
    ctrAnClean.add(stats.cleanWords);
    ctrAnCorrected.add(stats.correctedWords);
    ctrAnUncorrectable.add(stats.uncorrectableWords);
    ctrCicInverted.add(stats.cicInvertedColumns);
    return stats;
}

HwClusterStats
HwCluster::multiply(std::span<const double> X, std::span<double> Y,
                    unsigned k, Rng *rng)
{
    if (!programmed)
        fatal("HwCluster::multiply: program() first");
    if (k == 0)
        fatal("HwCluster::multiply: batch needs at least one column");
    const std::size_t panel =
        static_cast<std::size_t>(blockSize) * k;
    if (X.size() != panel || Y.size() != panel)
        fatal("HwCluster::multiply: panel size mismatch");

    // Analog reads and attached injectors own the order of their
    // noise draws / fault streams; that configuration must replay
    // the k sequential single-RHS calls literally.
    if (cfg.analogReads || injector) {
        HwClusterStats agg;
        for (unsigned c = 0; c < k; ++c) {
            agg += multiply(
                X.subspan(static_cast<std::size_t>(c) * blockSize,
                          blockSize),
                Y.subspan(static_cast<std::size_t>(c) * blockSize,
                          blockSize),
                rng);
        }
        return agg;
    }

    telemetry::Span span("hw.multiply_batch");
    HwClusterStats stats;
    for (const auto &xbar : slices) {
        for (unsigned i = 0; i < blockSize; ++i)
            stats.cicInvertedColumns +=
                xbar.columnInverted(i) ? 1 : 0;
    }
    // Each single-RHS call reports the same census.
    stats.cicInvertedColumns *= k;

    // Per-column front end: alignment, active slices, de-bias terms,
    // running-sum init. All input-dependent, so per column; the
    // flatten below is the shared programmed-side state.
    accBatch.assign(panel, SignedWord{});
    std::vector<int> outScale(k);
    std::vector<std::vector<VectorSlice>> activeC(k);
    std::vector<std::vector<U256>> biasTermsC(k);
    for (unsigned c = 0; c < k; ++c) {
        const AlignedSet vx = alignValues(X.subspan(
            static_cast<std::size_t>(c) * blockSize, blockSize));
        const BiasedSet ux = biasEncode(vx);
        outScale[c] = blockScale + vx.scale;
        activeC[c] = activeBitSlices(ux);
        biasTermsC[c].reserve(activeC[c].size());
        for (const VectorSlice &vs : activeC[c]) {
            U256 term = storedBias;
            term.mulSmall(vs.pc);
            biasTermsC[c].push_back(term);
        }
        SignedWord *const acc =
            accBatch.data() + static_cast<std::size_t>(c) * blockSize;
        for (unsigned i = 0; i < blockSize; ++i) {
            U256 init = rowSumF[i].mag << ux.biasBits;
            if (cfg.anProtect)
                init.mulSmall(cfg.anConstant);
            acc[i].neg = !rowSumF[i].neg;
            acc[i].mag = init;
            if (init.isZero())
                acc[i].neg = false;
        }
    }

    // Shared flatten: built once, read by every (row, column) scan.
    const unsigned nw =
        static_cast<unsigned>((blockSize + 63) / 64);
    flattenColumns(nw);

    // Row-parallel scan, k columns per row: the per-(row, column)
    // reductions and running sums are independent, and the stats
    // counters are order-independent integer totals, so the merge
    // equals the k sequential single-RHS merges bitwise.
    partScratch.assign(blockSize, HwClusterStats{});
    parallelFor(blockSize, [&](std::size_t i) {
        HwClusterStats &st = partScratch[i];
        const std::uint64_t *rowCols = &colWordsScratch[
            static_cast<std::size_t>(i) * nSlices * nw];
        const std::uint8_t *rowInv =
            &colInvScratch[static_cast<std::size_t>(i) * nSlices];
        for (unsigned c = 0; c < k; ++c) {
            SignedWord &a =
                accBatch[static_cast<std::size_t>(c) * blockSize + i];
            const auto &active = activeC[c];
            const auto &biasTerms = biasTermsC[c];
            for (std::size_t si = 0; si < active.size(); ++si) {
                const VectorSlice &vs = active[si];
                const U256 reduced = reduceRowSlice(
                    rowCols, rowInv, vs.bits.raw().data(), vs.pc,
                    nSlices, nw);
                ++st.sliceWords;

                const U256 &biasTerm = biasTerms[si];
                SignedWord word;
                if (reduced >= biasTerm) {
                    word.neg = false;
                    word.mag = reduced - biasTerm;
                } else {
                    word.neg = true;
                    word.mag = biasTerm - reduced;
                }

                if (cfg.anProtect) {
                    switch (an.correctSigned(word.mag, word.neg)) {
                      case AnCode::Outcome::Clean:
                        ++st.cleanWords;
                        break;
                      case AnCode::Outcome::Corrected:
                        ++st.correctedWords;
                        break;
                      case AnCode::Outcome::Uncorrectable:
                        ++st.uncorrectableWords;
                        break;
                    }
                } else {
                    ++st.cleanWords;
                }

                a.add(word.neg, word.mag << vs.k);
            }
        }
    });
    for (const HwClusterStats &p : partScratch) {
        stats.sliceWords += p.sliceWords;
        stats.cleanWords += p.cleanWords;
        stats.correctedWords += p.correctedWords;
        stats.uncorrectableWords += p.uncorrectableWords;
    }

    // Final conversion, column-major like the sequential calls.
    for (unsigned c = 0; c < k; ++c) {
        const SignedWord *acc =
            accBatch.data() + static_cast<std::size_t>(c) * blockSize;
        const std::span<double> yc = Y.subspan(
            static_cast<std::size_t>(c) * blockSize, blockSize);
        for (unsigned i = 0; i < blockSize; ++i) {
            U256 mag = acc[i].mag;
            if (cfg.anProtect) {
                const std::uint64_t rem =
                    mag.divSmall(cfg.anConstant);
                if (rem != 0)
                    ++stats.uncorrectableWords;
            }
            yc[i] = fixedToDouble(acc[i].neg, mag, outScale[c],
                                  cfg.rounding);
        }
    }

    ctrAdc.add(stats.sliceWords * nSlices);
    ctrAnClean.add(stats.cleanWords);
    ctrAnCorrected.add(stats.correctedWords);
    ctrAnUncorrectable.add(stats.uncorrectableWords);
    ctrCicInverted.add(stats.cicInvertedColumns);
    return stats;
}

} // namespace msc
