/**
 * @file
 * Hardware-faithful cluster model.
 *
 * Where Cluster (cluster/cluster.hh) computes at element granularity
 * for speed, HwCluster materializes the actual bit-slice crossbars
 * of Figure 3 and executes the hardware dataflow literally:
 *
 *   per vector bit slice k (MSB first):
 *     1. the slice drives the rows of every crossbar;
 *     2. each crossbar's ADC scans its columns (optionally through
 *        the analog device model);
 *     3. the shift-and-add reduction combines the B bit slices into
 *        one fixed-point word per output;
 *     4. the word is de-biased (bias * popcount, Section IV-C);
 *     5. AN-code correction runs on the de-biased word -- after the
 *        reduction, before leading-one detection (Section IV-E);
 *     6. the running sum in the partial result buffer is updated.
 *
 * Because every stored cell physically exists here, faults can be
 * injected (stuck cells, transient flips) and the error-correction
 * path observed end to end. Used by the verification tests and the
 * fault-injection study; the fast functional model remains the
 * vehicle for full-matrix simulation.
 */

#ifndef MSC_CLUSTER_HW_CLUSTER_HH
#define MSC_CLUSTER_HW_CLUSTER_HH

#include <memory>
#include <vector>

#include "ancode/ancode.hh"
#include "cluster/cluster.hh"
#include "device/cell.hh"
#include "xbar/crossbar.hh"

namespace msc {

class FaultInjector;

/** Per-multiply error-handling statistics. */
struct HwClusterStats
{
    std::uint64_t sliceWords = 0;     //!< reduced words produced
    std::uint64_t cleanWords = 0;
    std::uint64_t correctedWords = 0;
    std::uint64_t uncorrectableWords = 0;
    std::uint64_t cicInvertedColumns = 0;
};

/** Field-wise sum; every counter is an order-independent total, so
 *  the batched multiply's aggregate equals folding k single-RHS
 *  results. */
HwClusterStats &operator+=(HwClusterStats &into,
                           const HwClusterStats &s);

class HwCluster
{
  public:
    struct Config
    {
        unsigned size = 64;
        RoundingMode rounding = RoundingMode::TowardNegInf;
        bool anProtect = true;
        std::uint64_t anConstant = 269;
        bool cic = true;
        CellParams cell;       //!< device model for noisy reads
        bool analogReads = false; //!< route reads through the device
    };

    explicit HwCluster(const Config &config);

    const Config &config() const { return cfg; }
    unsigned matrixSlices() const { return nSlices; }

    /** Map a block onto the crossbars (builds nSlices binary
     *  crossbars of size x size). */
    void program(const MatrixBlock &block);

    /**
     * Force the stored bit of crossbar @p slice at block position
     * (row @p blockRow, col @p blockCol) to @p value: a stuck-at
     * fault. Takes effect until the next program().
     */
    void injectStuckCell(unsigned slice, unsigned blockRow,
                         unsigned blockCol, bool value);

    /** Flip a stored bit (models an RTN/retention upset). */
    void flipCell(unsigned slice, unsigned blockRow,
                  unsigned blockCol);

    /**
     * Kill an entire bit-slice crossbar: every cell reads zero
     * current until the next program() (driver/selector failure).
     */
    void killSlice(unsigned slice);

    /**
     * Register a fault injector whose transient/stuck-column models
     * are applied to every ADC conversion in multiply(). Cleared by
     * passing nullptr; program() keeps the attachment (the faults
     * live in the injector, not the stored data).
     */
    void attachInjector(FaultInjector *inj) { injector = inj; }

    /**
     * AN-code readback scrub (Section IV-E applied to maintenance):
     * reconstruct every stored operand word from the bit-slice
     * crossbars and count the words whose AN residue is nonzero,
     * i.e. cells damaged since programming. Returns 0 when anProtect
     * is off (no redundancy to check against).
     */
    std::size_t scrub() const;

    /** y[i] = round(sum_j block[i][j] * x[j]) via the full hardware
     *  dataflow. */
    HwClusterStats multiply(std::span<const double> x,
                            std::span<double> y, Rng *rng = nullptr);

    /**
     * Batched multi-RHS multiply over a column-major k-column panel,
     * bitwise identical to k single-RHS multiply() calls in column
     * order. With exact digital reads the flattened column-word
     * matrix is built once and shared across all k columns; analog
     * reads or an attached injector own stateful draw/fault-stream
     * order, so that configuration replays the k sequential calls
     * literally. Returns the per-column stats folded (operator+=).
     */
    HwClusterStats multiply(std::span<const double> X,
                            std::span<double> Y, unsigned k,
                            Rng *rng = nullptr);

  private:
    /** Signed word / running sum in sign-magnitude form. */
    struct SignedWord
    {
        bool neg = false;
        U256 mag;

        void
        add(bool vNeg, const U256 &v)
        {
            if (vNeg == neg) {
                mag += v;
            } else if (mag >= v) {
                mag -= v;
            } else {
                mag = v - mag;
                neg = vNeg;
            }
            if (mag.isZero())
                neg = false;
        }
    };

    /** Rebuild the flattened (row, slice) column-word matrix and CIC
     *  flags into the scratch members (reads injected cell faults,
     *  so it runs per multiply, not per program). */
    void flattenColumns(unsigned nw);

    Config cfg;
    AnCode an;
    FaultInjector *injector = nullptr;
    bool programmed = false;
    unsigned blockSize = 0;
    unsigned nSlices = 0;
    int blockScale = 0;
    U256 storedBias;
    /** Signed row sums of aligned coefficients. */
    struct RowSum
    {
        bool neg = false;
        U256 mag;
    };
    std::vector<RowSum> rowSumF;
    /** One binary crossbar per operand bit slice. Crossbar rows are
     *  block columns (vector inputs); crossbar columns are block
     *  rows (outputs). */
    std::vector<BinaryCrossbar> slices;

    // Reusable per-call scratch, hoisted so steady-state multiplies
    // stop allocating on the exact-read path (the aligners' internal
    // vectors are the only per-call allocations left).
    std::vector<SignedWord> accScratch;
    std::vector<VectorSlice> vslicesScratch;
    std::vector<U256> biasTermsScratch;
    std::vector<std::uint64_t> colWordsScratch;
    std::vector<std::uint8_t> colInvScratch;
    std::vector<HwClusterStats> partScratch;
    // Batched-path scratch: per-column running sums.
    std::vector<SignedWord> accBatch;
};

} // namespace msc

#endif // MSC_CLUSTER_HW_CLUSTER_HH
