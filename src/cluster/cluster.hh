/**
 * @file
 * Functional + timing/energy model of one cluster (Section III-B).
 *
 * A cluster is a group of up to 127 bit-slice crossbars with a
 * shift-and-add reduction tree that multiplies one fixed-size matrix
 * block by a vector, in IEEE-754-compatible double precision. The
 * model implements, bit-exactly:
 *
 *  - block alignment to fixed point (exponent range locality, IV-A/B)
 *  - per-block bias encoding of negative values (IV-C)
 *  - AN-code protection of stored operands (IV-E)
 *  - static activation scheduling (vertical/diagonal/hybrid, IV-B)
 *  - per-output early termination with carry/borrow barriers (IV-B)
 *  - final conversion to IEEE-754 under four rounding modes (IV-D)
 *
 * With no device noise, multiply() returns exactly
 * round(sum_j A_ij x_j) per block row, with the rounding applied once
 * to the infinitely-precise sum -- verified against exactDot() by the
 * property tests.
 *
 * Termination soundness note: the paper describes carry absorption
 * for non-negative partial products (Figure 5). Because the running
 * sum here is de-biased per incoming group, contributions are
 * signed, so the criterion is generalized symmetrically: the mantissa
 * is settled once the gap between the remaining-contribution bound
 * and the mantissa contains both a 0 (absorbs the single potential
 * carry) and a 1 (absorbs the single potential borrow). With AN
 * protection on, the check runs on the decoded (divided-by-A) sum.
 */

#ifndef MSC_CLUSTER_CLUSTER_HH
#define MSC_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ancode/ancode.hh"
#include "cluster/schedule.hh"
#include "fixedpoint/align.hh"
#include "fp/float64.hh"
#include "sparse/csr.hh"
#include "xbar/model.hh"

namespace msc {

/** Static configuration of a cluster. */
struct ClusterConfig
{
    unsigned size = 512;
    SchedulePolicy schedule = SchedulePolicy::Hybrid;
    unsigned hybridSkew = 2;
    RoundingMode rounding = RoundingMode::TowardNegInf;
    /** Target significand width. 53 = IEEE double; smaller targets
     *  ("architected to arbitrary precision requirements", paper
     *  abstract) terminate earlier and save slices/energy. */
    unsigned targetMantissaBits = 53;
    bool earlyTermination = true;
    bool anProtect = true;
    std::uint64_t anConstant = 269;
    bool cic = true;
    bool adcHeadstart = true;
    XbarModelParams xbar;
};

/** A dense sub-block of a sparse matrix, in block-local coordinates. */
struct MatrixBlock
{
    std::int32_t rowOrigin = 0;
    std::int32_t colOrigin = 0;
    unsigned size = 0;
    std::vector<Triplet> elems; //!< local row/col in [0, size)
};

/** Result of programming a block into the cluster. */
struct ClusterProgramInfo
{
    unsigned matrixSlices = 0;  //!< crossbars in use (<= 127)
    unsigned storedBits = 0;    //!< operand width before AN coding
    int scale = 0;              //!< fixed-point scale of the block
    std::uint64_t cellsWritten = 0;
    double programTime = 0.0;   //!< seconds
    double programEnergy = 0.0; //!< joules
    unsigned cicInvertedColumns = 0;
    unsigned cicCornerCases = 0;
    std::size_t droppedElems = 0; //!< exp-range evictions (callers
                                  //!< should have filtered already)
};

/** Per-multiply statistics. */
struct ClusterStats
{
    unsigned matrixSlices = 0;
    unsigned vectorSlices = 0;
    std::uint64_t groupsTotal = 0;
    std::uint64_t groupsExecuted = 0;
    std::uint64_t xbarActivations = 0;
    std::uint64_t adcConversions = 0;
    std::uint64_t conversionsSkipped = 0;
    std::uint64_t columnsEarlyTerminated = 0;
    std::uint64_t emptyColumns = 0;
    std::uint64_t peeledVectorElements = 0;
    std::uint64_t cycles = 0;
    double latency = 0.0;     //!< seconds
    double energy = 0.0;      //!< joules
    double adcEnergy = 0.0;   //!< joules (subset of energy)
    double arrayEnergy = 0.0; //!< joules (subset of energy)
};

/**
 * Functional cluster. program() maps a block; multiply() performs
 * the block MVM at the (matrix slice x vector slice) group
 * granularity the hardware uses.
 */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);

    const ClusterConfig &config() const { return cfg; }
    const XbarModel &model() const { return xbarModel; }
    bool programmed() const { return isProgrammed; }
    const ClusterProgramInfo &programInfo() const { return progInfo; }

    /**
     * Program a matrix block. The block must fit the cluster size
     * and the 64-exponent alignment range (the blocking preprocessor
     * guarantees both); otherwise fatal.
     */
    ClusterProgramInfo program(const MatrixBlock &block);

    /**
     * y[i] = round(sum_j block[i][j] * x[j]) for every block row i.
     *
     * @param x        local input vector (block size)
     * @param y        output (block size); overwritten
     * @param peeled   optional out: indices of vector elements whose
     *                 exponents fell outside the 64-bit alignment
     *                 window; their column contributions are NOT in y
     *                 and must be handled digitally by the caller.
     */
    ClusterStats multiply(std::span<const double> x,
                          std::span<double> y,
                          std::vector<std::int32_t> *peeled = nullptr);

  private:
    /** Signed accumulator in sign-magnitude form. */
    struct SignedAcc
    {
        bool neg = false;
        U256 mag;

        void
        add(bool vNeg, const U256 &v)
        {
            if (vNeg == neg) {
                mag += v;
            } else if (mag >= v) {
                mag -= v;
            } else {
                mag = v - mag;
                neg = vNeg;
            }
            if (mag.isZero())
                neg = false;
        }
    };

    /**
     * Settled test: can the top @p prec bits of |acc| still change,
     * given that the remaining contribution is bounded by 2^bound?
     */
    static bool settled(const U256 &mag, int bound, unsigned prec);

    /** Convert a (possibly early-terminated) accumulator. */
    double convert(const SignedAcc &acc, int scale, bool exact) const;

    ClusterConfig cfg;
    XbarModel xbarModel;
    AnCode an;

    /** conversionEnergy memoized over ADC start bits (the model call
     *  rebuilds a reference crossbar and evaluates pow() every time;
     *  the table makes the per-conversion energy loop a load). */
    std::vector<double> convEnergyByStart;
    double arrayOpE = 0.0; //!< cached xbarModel.arrayOpEnergy()

    bool isProgrammed = false;
    ClusterProgramInfo progInfo;
    unsigned blockSize = 0;
    int blockScale = 0;            //!< scale of aligned magnitudes
    unsigned storedBits = 0;       //!< width incl. bias (pre-AN)
    unsigned encodedBits = 0;      //!< width of stored operands
    U256 storedBias;               //!< bias word as stored (AN-coded)
    /** Programmed elements, flattened row-major (CSR-like): row i's
     *  entries are [rowPtr[i], rowPtr[i+1]). The multiply hot loop
     *  walks elemCol/contribution tables linearly. */
    std::vector<std::uint32_t> rowPtr;
    std::vector<std::int32_t> elemCol;
    std::vector<U256> elemStored; //!< biased (and AN-coded) operands
    /** Signed row sums of aligned coefficients (for vector debias). */
    std::vector<SignedAcc> rowSumF;
    /** Per (slice b, block row i): stored ones count, for CIC and
     *  ADC headstart accounting. */
    std::vector<std::vector<std::uint16_t>> sliceOnes;
};

} // namespace msc

#endif // MSC_CLUSTER_CLUSTER_HH
