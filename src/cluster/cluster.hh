/**
 * @file
 * Functional + timing/energy model of one cluster (Section III-B).
 *
 * A cluster is a group of up to 127 bit-slice crossbars with a
 * shift-and-add reduction tree that multiplies one fixed-size matrix
 * block by a vector, in IEEE-754-compatible double precision. The
 * model implements, bit-exactly:
 *
 *  - block alignment to fixed point (exponent range locality, IV-A/B)
 *  - per-block bias encoding of negative values (IV-C)
 *  - AN-code protection of stored operands (IV-E)
 *  - static activation scheduling (vertical/diagonal/hybrid, IV-B)
 *  - per-output early termination with carry/borrow barriers (IV-B)
 *  - final conversion to IEEE-754 under four rounding modes (IV-D)
 *
 * With no device noise, multiply() returns exactly
 * round(sum_j A_ij x_j) per block row, with the rounding applied once
 * to the infinitely-precise sum -- verified against exactDot() by the
 * property tests.
 *
 * Termination soundness note: the paper describes carry absorption
 * for non-negative partial products (Figure 5). Because the running
 * sum here is de-biased per incoming group, contributions are
 * signed, so the criterion is generalized symmetrically: the mantissa
 * is settled once the gap between the remaining-contribution bound
 * and the mantissa contains both a 0 (absorbs the single potential
 * carry) and a 1 (absorbs the single potential borrow). With AN
 * protection on, the check runs on the decoded (divided-by-A) sum.
 */

#ifndef MSC_CLUSTER_CLUSTER_HH
#define MSC_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <span>
#include <vector>

#include "ancode/ancode.hh"
#include "cluster/schedule.hh"
#include "fixedpoint/align.hh"
#include "fp/float64.hh"
#include "sparse/csr.hh"
#include "xbar/model.hh"

namespace msc {

/** Static configuration of a cluster. */
struct ClusterConfig
{
    unsigned size = 512;
    SchedulePolicy schedule = SchedulePolicy::Hybrid;
    unsigned hybridSkew = 2;
    RoundingMode rounding = RoundingMode::TowardNegInf;
    /** Target significand width. 53 = IEEE double; smaller targets
     *  ("architected to arbitrary precision requirements", paper
     *  abstract) terminate earlier and save slices/energy. */
    unsigned targetMantissaBits = 53;
    bool earlyTermination = true;
    bool anProtect = true;
    std::uint64_t anConstant = 269;
    bool cic = true;
    bool adcHeadstart = true;
    XbarModelParams xbar;
};

/** A dense sub-block of a sparse matrix, in block-local coordinates. */
struct MatrixBlock
{
    std::int32_t rowOrigin = 0;
    std::int32_t colOrigin = 0;
    unsigned size = 0;
    std::vector<Triplet> elems; //!< local row/col in [0, size)
};

/** Result of programming a block into the cluster. */
struct ClusterProgramInfo
{
    unsigned matrixSlices = 0;  //!< crossbars in use (<= 127)
    unsigned storedBits = 0;    //!< operand width before AN coding
    int scale = 0;              //!< fixed-point scale of the block
    std::uint64_t cellsWritten = 0;
    double programTime = 0.0;   //!< seconds
    double programEnergy = 0.0; //!< joules
    unsigned cicInvertedColumns = 0;
    unsigned cicCornerCases = 0;
    std::size_t droppedElems = 0; //!< exp-range evictions (callers
                                  //!< should have filtered already)
};

/** Per-multiply statistics. */
struct ClusterStats
{
    unsigned matrixSlices = 0;
    unsigned vectorSlices = 0;
    std::uint64_t groupsTotal = 0;
    std::uint64_t groupsExecuted = 0;
    std::uint64_t xbarActivations = 0;
    std::uint64_t adcConversions = 0;
    std::uint64_t conversionsSkipped = 0;
    std::uint64_t columnsEarlyTerminated = 0;
    std::uint64_t emptyColumns = 0;
    std::uint64_t peeledVectorElements = 0;
    std::uint64_t cycles = 0;
    double latency = 0.0;     //!< seconds
    double energy = 0.0;      //!< joules
    double adcEnergy = 0.0;   //!< joules (subset of energy)
    double arrayEnergy = 0.0; //!< joules (subset of energy)
};

/** Field-wise sum; the batched multiply reports the per-column stats
 *  folded in column order through this, so the aggregate is bitwise
 *  what summing k single-RHS results in the same order yields. */
ClusterStats &operator+=(ClusterStats &into, const ClusterStats &s);

/**
 * Functional cluster. program() maps a block; multiply() performs
 * the block MVM at the (matrix slice x vector slice) group
 * granularity the hardware uses.
 */
class Cluster
{
  public:
    explicit Cluster(const ClusterConfig &config);

    const ClusterConfig &config() const { return cfg; }
    const XbarModel &model() const { return xbarModel; }
    bool programmed() const { return isProgrammed; }
    const ClusterProgramInfo &programInfo() const { return progInfo; }

    /**
     * Program a matrix block. The block must fit the cluster size
     * and the 64-exponent alignment range (the blocking preprocessor
     * guarantees both); otherwise fatal.
     */
    ClusterProgramInfo program(const MatrixBlock &block);

    /**
     * y[i] = round(sum_j block[i][j] * x[j]) for every block row i.
     *
     * @param x        local input vector (block size)
     * @param y        output (block size); overwritten
     * @param peeled   optional out: indices of vector elements whose
     *                 exponents fell outside the 64-bit alignment
     *                 window; their column contributions are NOT in y
     *                 and must be handled digitally by the caller.
     */
    ClusterStats multiply(std::span<const double> x,
                          std::span<double> y,
                          std::vector<std::int32_t> *peeled = nullptr);

    /**
     * Batched multi-RHS multiply: Y column c = round(block * X
     * column c) for k right-hand sides, bitwise identical to k
     * single-RHS multiply() calls in column order.
     *
     * @param X       column-major panel, k columns of block size
     * @param Y       column-major output panel; overwritten
     * @param k       number of right-hand sides (>= 1)
     * @param peeled  optional out: resized to k; entry c receives the
     *                peeled vector-element indices of column c (see
     *                the single-RHS overload)
     *
     * The contribution tables, ADC energy tables, and gate-bitmap
     * transposes are built once and shared across all k columns;
     * per-column trajectory state (gates, termination, stats,
     * peeling) is kept independent. Returns the per-column stats
     * folded in column order (operator+=); @p colStats (optional)
     * receives the k per-column records, each bitwise what the
     * corresponding single-RHS call returns -- callers that fold
     * stats across blocks AND columns (the operator adapters) need
     * them to reproduce the sequential fold order exactly.
     */
    ClusterStats multiply(
        std::span<const double> X, std::span<double> Y, unsigned k,
        std::vector<std::vector<std::int32_t>> *peeled = nullptr,
        std::vector<ClusterStats> *colStats = nullptr);

  private:
    /** Signed accumulator in sign-magnitude form. */
    struct SignedAcc
    {
        bool neg = false;
        U256 mag;

        void
        add(bool vNeg, const U256 &v)
        {
            if (vNeg == neg) {
                mag += v;
            } else if (mag >= v) {
                mag -= v;
            } else {
                mag = v - mag;
                neg = vNeg;
            }
            if (mag.isZero())
                neg = false;
        }
    };

    /**
     * Settled test: can the top @p prec bits of |acc| still change,
     * given that the remaining contribution is bounded by 2^bound?
     */
    static bool settled(const U256 &mag, int bound, unsigned prec);

    /** Convert a (possibly early-terminated) accumulator. */
    double convert(const SignedAcc &acc, int scale, bool exact) const;

    /**
     * Precomputed per-(bLo, bHi) contribution table: the signed
     * masked difference ((stored & mask) - (storedBias & mask)) >>
     * bLo per element. It depends only on the programmed data, so
     * program() invalidates the cache and every multiply -- single-
     * or multi-RHS -- builds a range lazily on first use and reuses
     * it across columns and across calls. Ranges narrow enough for
     * int16 deltas (width <= 15; every skewed schedule in practice)
     * use a flat int16 table; wider ranges fall back to sign + U128
     * magnitude.
     */
    struct RangeTable
    {
        unsigned bLo = 0;
        bool small = false;
        std::vector<std::int16_t> delta; //!< small: signed deltas
        std::vector<std::uint8_t> negW;  //!< wide: sign per element
        std::vector<U128> magW;          //!< wide: |delta| >> bLo
    };

    /** One segment of a schedule group, resolved to its kernel
     *  inputs: contribution table, gating slice, and weight. */
    struct SegKernel
    {
        const RangeTable *tab = nullptr;
        const BitVec *gate = nullptr;
        unsigned shift = 0; //!< bLo + k
    };

    /** Lazily built table for the range (bLo, bHi) of the current
     *  program; stable reference until the next program(). */
    const RangeTable &rangeTable(unsigned bLo, unsigned bHi);

    /** Add m * 2^shift to @p a without materializing a full-width
     *  shifted temporary: at most two words are nonzero (m < 2^63,
     *  which covers both the single int16 delta and the batched
     *  per-row delta sum, bounded by nnz * 2^15). */
    static void addSmall(SignedAcc &a, bool neg, std::uint64_t m,
                         unsigned shift);

    /** Exponent-window peeling of an input vector: copy x into
     *  masked with out-of-window elements zeroed, recording their
     *  indices. Shared by the single- and multi-RHS paths. */
    void peelVector(std::span<const double> x,
                    std::span<double> masked, ClusterStats &stats,
                    std::vector<std::int32_t> *peeled);

    ClusterConfig cfg;
    XbarModel xbarModel;
    AnCode an;

    /** conversionEnergy memoized over ADC start bits (the model call
     *  rebuilds a reference crossbar and evaluates pow() every time;
     *  the table makes the per-conversion energy loop a load). */
    std::vector<double> convEnergyByStart;
    double arrayOpE = 0.0; //!< cached xbarModel.arrayOpEnergy()

    bool isProgrammed = false;
    ClusterProgramInfo progInfo;
    unsigned blockSize = 0;
    int blockScale = 0;            //!< scale of aligned magnitudes
    unsigned storedBits = 0;       //!< width incl. bias (pre-AN)
    unsigned encodedBits = 0;      //!< width of stored operands
    U256 storedBias;               //!< bias word as stored (AN-coded)
    /** Programmed elements, flattened row-major (CSR-like): row i's
     *  entries are [rowPtr[i], rowPtr[i+1]). The multiply hot loop
     *  walks elemCol/contribution tables linearly. */
    std::vector<std::uint32_t> rowPtr;
    std::vector<std::int32_t> elemCol;
    std::vector<U256> elemStored; //!< biased (and AN-coded) operands
    /** Signed row sums of aligned coefficients (for vector debias). */
    std::vector<SignedAcc> rowSumF;
    /** Per (slice b, block row i): stored ones count, for CIC and
     *  ADC headstart accounting. */
    std::vector<std::vector<std::uint16_t>> sliceOnes;
    /** Per (slice b, block row i), flattened b * blockSize + i: ADC
     *  conversion energy with the headstart preset resolved. Built by
     *  program(); turns the per-group energy accounting into a gated
     *  table sum shared by all RHS columns. */
    std::vector<double> adcConvE;

    // Contribution-table cache (see RangeTable). tableIdx is a dense
    // (encodedBits+1)^2 map from (bLo, bHi) to an index in tables,
    // -1 = not built yet; program() resets it.
    std::vector<RangeTable> tables;
    std::vector<std::int16_t> tableIdx;

    // Reusable per-call scratch, hoisted out of the multiply hot
    // paths so steady-state calls stop allocating (the aligners'
    // internal vectors are the only per-call allocations left).
    std::vector<double> maskedScratch;
    std::vector<std::pair<int, std::int32_t>> expsScratch;
    std::vector<SignedAcc> accScratch;
    std::vector<std::uint8_t> doneScratch;
    std::vector<VectorSlice> vslicesScratch;
    std::vector<const BitVec *> sliceByKScratch;
    std::vector<SegKernel> kernelScratch;
    // Batched-path scratch: per-column accumulators/termination
    // flags, the per-(slice k, element, column) gate transpose, and
    // the k-wide delta sums of the inner loop.
    std::vector<SignedAcc> accBatch;
    std::vector<std::uint8_t> doneBatch;
    std::vector<double> maskedBatch;
    std::vector<std::int16_t> gateTBatch;
    std::vector<std::int32_t> sumBatch;
    std::vector<std::uint8_t> actBatch;
};

} // namespace msc

#endif // MSC_CLUSTER_CLUSTER_HH
