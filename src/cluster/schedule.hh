/**
 * @file
 * Static crossbar activation scheduling (Section IV-B, Figure 6).
 *
 * An MVM over bit-sliced operands is a grid of (matrix slice b,
 * vector slice k) activations; the partial product of cell (b, k)
 * has significance b + k. A schedule partitions the grid into
 * ordered groups (time steps) with at most one cell per matrix slice
 * per group (each physical crossbar can process only one vector
 * slice at a time). Execution proceeds group by group and may stop
 * early once every output's mantissa has settled, so groups that
 * only carry low significance may be skipped.
 *
 * All three policies in the paper are instances of one skewed
 * family: within group g, matrix slice b processes vector slice
 *   k(b, g) = (K - 1) - g + floor((B - 1 - b) / skew)
 * (clipped to the valid range), where B and K are the matrix and
 * vector slice counts.
 *
 *   skew = inf (no stagger)  -> vertical grouping
 *   skew = 1                 -> diagonal grouping (anti-diagonals)
 *   skew = 2                 -> the paper's hybrid grouping
 *
 * On the paper's 4x4 example with termination at significance 2
 * this reproduces Figure 6 exactly: vertical 16 activations / 4
 * steps, diagonal 13 / 5, hybrid 14 / 4.
 */

#ifndef MSC_CLUSTER_SCHEDULE_HH
#define MSC_CLUSTER_SCHEDULE_HH

#include <cstdint>
#include <vector>

namespace msc {

enum class SchedulePolicy
{
    Vertical,
    Diagonal,
    Hybrid,
};

const char *toString(SchedulePolicy policy);

/** One time step: a set of (b, k) cells, one per active b. */
struct ScheduleGroup
{
    /** Contiguous run of matrix slices all processing vector slice
     *  k; runs are disjoint in b within a group. */
    struct Segment
    {
        unsigned k = 0;
        unsigned bLo = 0;
        unsigned bHi = 0; //!< inclusive

        unsigned width() const { return bHi - bLo + 1; }
    };

    std::vector<Segment> segments;
    unsigned maxSignificance = 0; //!< max (b + k) within this group

    /** Number of crossbar activations in this group. */
    unsigned
    activations() const
    {
        unsigned n = 0;
        for (const auto &s : segments)
            n += s.width();
        return n;
    }
};

/**
 * A complete static schedule over a B x K slice grid.
 */
class ActivationSchedule
{
  public:
    /**
     * @param matrixSlices  B: number of matrix bit slices
     * @param vectorSlices  K: number of vector bit slices
     * @param policy        grouping policy
     * @param hybridSkew    stagger for the hybrid policy (>= 2)
     */
    ActivationSchedule(unsigned matrixSlices, unsigned vectorSlices,
                       SchedulePolicy policy, unsigned hybridSkew = 2);

    const std::vector<ScheduleGroup> &groups() const { return grps; }
    unsigned matrixSlices() const { return nB; }
    unsigned vectorSlices() const { return nK; }
    SchedulePolicy policy() const { return pol; }

    /**
     * Maximum significance (b + k) over all cells in groups strictly
     * after @p g; used to bound the remaining contribution for early
     * termination. Returns -1 when no cells remain.
     */
    int maxRemainingSignificance(std::size_t g) const;

    /** Total activations if every group runs. */
    std::uint64_t totalActivations() const;

    /**
     * Static accounting used by the Figure 6 experiment: number of
     * groups (time steps) and activations needed when every partial
     * product of significance >= minSignificance must be computed.
     * A group executes if it contains at least one needed cell and
     * no earlier-terminating knowledge exists (groups run in order
     * until the last needed group).
     */
    struct StaticCost
    {
        std::uint64_t timeSteps = 0;
        std::uint64_t activations = 0;
    };

    StaticCost costForThreshold(unsigned minSignificance) const;

  private:
    void buildSkewed(unsigned skew); //!< skew 0 means vertical

    unsigned nB;
    unsigned nK;
    SchedulePolicy pol;
    std::vector<ScheduleGroup> grps;
    std::vector<int> remainingSig; //!< per group index
};

} // namespace msc

#endif // MSC_CLUSTER_SCHEDULE_HH
