#include "cluster/schedule.hh"

#include "util/logging.hh"

namespace msc {

const char *
toString(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::Vertical:
        return "vertical";
      case SchedulePolicy::Diagonal:
        return "diagonal";
      case SchedulePolicy::Hybrid:
        return "hybrid";
    }
    return "?";
}

ActivationSchedule::ActivationSchedule(unsigned matrixSlices,
                                       unsigned vectorSlices,
                                       SchedulePolicy policy,
                                       unsigned hybridSkew)
    : nB(matrixSlices), nK(vectorSlices), pol(policy)
{
    if (nB == 0 || nK == 0)
        fatal("ActivationSchedule: empty slice grid");
    switch (policy) {
      case SchedulePolicy::Vertical:
        buildSkewed(0);
        break;
      case SchedulePolicy::Diagonal:
        buildSkewed(1);
        break;
      case SchedulePolicy::Hybrid:
        if (hybridSkew < 2)
            fatal("ActivationSchedule: hybrid skew must be >= 2");
        buildSkewed(hybridSkew);
        break;
    }

    // Suffix maxima of group significance for termination bounds.
    remainingSig.assign(grps.size(), -1);
    int suffix = -1;
    for (std::size_t g = grps.size(); g-- > 0;) {
        remainingSig[g] = suffix;
        suffix = std::max(suffix,
                          static_cast<int>(grps[g].maxSignificance));
    }
}

void
ActivationSchedule::buildSkewed(unsigned skew)
{
    // Stagger of matrix slice b relative to slice B-1, in vector
    // slice positions. skew == 0 encodes the vertical policy (no
    // stagger).
    auto stagger = [&](unsigned b) -> unsigned {
        if (skew == 0)
            return 0;
        return (nB - 1 - b) / skew;
    };

    const unsigned maxStagger = stagger(0);
    const unsigned numGroups = nK + maxStagger;
    grps.reserve(numGroups);
    for (unsigned g = 0; g < numGroups; ++g) {
        ScheduleGroup group;
        // Walk b from the top; k is non-decreasing as b falls, so
        // contiguous segments form naturally.
        for (unsigned b = nB; b-- > 0;) {
            const long k = static_cast<long>(nK) - 1 -
                           static_cast<long>(g) + stagger(b);
            if (k < 0 || k >= static_cast<long>(nK))
                continue;
            const unsigned ku = static_cast<unsigned>(k);
            if (!group.segments.empty() &&
                group.segments.back().k == ku &&
                group.segments.back().bLo == b + 1) {
                group.segments.back().bLo = b;
            } else {
                group.segments.push_back({ku, b, b});
            }
            group.maxSignificance =
                std::max(group.maxSignificance, b + ku);
        }
        if (!group.segments.empty())
            grps.push_back(std::move(group));
    }
}

int
ActivationSchedule::maxRemainingSignificance(std::size_t g) const
{
    if (g >= remainingSig.size())
        return -1;
    return remainingSig[g];
}

std::uint64_t
ActivationSchedule::totalActivations() const
{
    std::uint64_t n = 0;
    for (const auto &g : grps)
        n += g.activations();
    return n;
}

ActivationSchedule::StaticCost
ActivationSchedule::costForThreshold(unsigned minSignificance) const
{
    // Groups run in order; the run stops after the last group that
    // contains a needed partial product.
    std::size_t lastNeeded = 0;
    bool any = false;
    for (std::size_t g = 0; g < grps.size(); ++g) {
        if (grps[g].maxSignificance >= minSignificance) {
            lastNeeded = g;
            any = true;
        }
    }
    StaticCost cost;
    if (!any)
        return cost;
    cost.timeSteps = lastNeeded + 1;
    for (std::size_t g = 0; g <= lastNeeded; ++g)
        cost.activations += grps[g].activations();
    return cost;
}

} // namespace msc
