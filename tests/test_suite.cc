/**
 * @file
 * Tests for the 20-matrix evaluation suite (Table II).
 *
 * Matrices are full scale (up to ~5M nonzeros), so each is generated
 * and blocked once and cached for all tests in this file.
 */

#include <gtest/gtest.h>

#include <map>

#include "blocking/blocking.hh"
#include "sparse/suite.hh"
#include "util/logging.hh"

namespace msc {
namespace {

struct Cached
{
    Csr matrix;
    BlockPlan plan;
};

const Cached &
cached(const SuiteEntry &e)
{
    static std::map<std::string, Cached> cache;
    auto it = cache.find(e.name);
    if (it == cache.end()) {
        Cached c;
        c.matrix = buildSuiteMatrix(e);
        c.plan = planBlocks(c.matrix);
        it = cache.emplace(e.name, std::move(c)).first;
    }
    return it->second;
}

TEST(Suite, HasTwentyEntriesSpdFirst)
{
    const auto &suite = suiteMatrices();
    ASSERT_EQ(suite.size(), 20u);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_TRUE(suite[i].spd) << suite[i].name;
    for (std::size_t i = 10; i < 20; ++i)
        EXPECT_FALSE(suite[i].spd) << suite[i].name;
}

TEST(Suite, LookupByName)
{
    EXPECT_EQ(suiteEntry("torso2").paperRows, 115697);
    EXPECT_EQ(suiteEntry("Trefethen_20000").family,
              SuiteEntry::Family::Trefethen);
    EXPECT_THROW(suiteEntry("nonesuch"), FatalError);
}

TEST(Suite, PaperReferenceValuesPresent)
{
    for (const auto &e : suiteMatrices()) {
        EXPECT_GT(e.paperNnz, 0u) << e.name;
        EXPECT_GT(e.paperRows, 0) << e.name;
        EXPECT_GT(e.paperNnzPerRow, 0.0) << e.name;
        EXPECT_GE(e.paperBlockedPct, 0.0) << e.name;
        EXPECT_LE(e.paperBlockedPct, 100.0) << e.name;
        EXPECT_FALSE(e.domain.empty()) << e.name;
    }
}

TEST(Suite, GeneratedMatricesMatchTable2)
{
    double sumVisits = 0.0;
    for (const auto &e : suiteMatrices()) {
        const Cached &c = cached(e);

        // Full-scale reproduction: generated rows equal the paper's.
        EXPECT_EQ(c.matrix.rows(), e.paperRows) << e.name;
        EXPECT_EQ(c.matrix.cols(), e.paperRows) << e.name;
        EXPECT_GT(c.matrix.nnz(), 0u) << e.name;

        // Blocking efficiency within 12 points of Table II; scatter
        // matrices must stay "effectively unblocked".
        const double measured =
            100.0 * c.plan.stats.blockingEfficiency();
        if (e.paperBlockedPct < 5.0) {
            EXPECT_LT(measured, 6.0) << e.name;
        } else {
            EXPECT_NEAR(measured, e.paperBlockedPct, 12.0) << e.name;
        }

        // Preprocessing visit bound (worst case 4x NNZ).
        EXPECT_LE(c.plan.stats.visitsPerNnz(), 4.0 + 1e-9) << e.name;
        sumVisits += c.plan.stats.visitsPerNnz();
    }
    // The paper reports ~1.8x NNZ on average; our density-based
    // thresholds send thin bands through more size passes, landing
    // somewhat higher but still well under the 4x worst case.
    const double avg = sumVisits / suiteMatrices().size();
    EXPECT_GT(avg, 1.2);
    EXPECT_LT(avg, 3.5);
}

TEST(Suite, SpdEntriesAreSymmetric)
{
    for (const auto &e : suiteMatrices()) {
        if (!e.spd)
            continue;
        EXPECT_TRUE(cached(e).matrix.isSymmetric()) << e.name;
    }
}

TEST(Suite, NasasrbHasWideExponentsAndEvictions)
{
    EXPECT_GT(cached(suiteEntry("nasasrb"))
                  .plan.stats.expRangeEvictions, 0u);
    // Pres_Poisson by contrast has a narrow range and none.
    EXPECT_EQ(cached(suiteEntry("Pres_Poisson"))
                  .plan.stats.expRangeEvictions, 0u);
}

} // namespace
} // namespace msc
