/**
 * @file
 * Tests for the differential oracle harness itself (src/check): the
 * BigNat oracle must be right before it can judge WideUInt, the
 * harness bookkeeping must count and cap correctly, reports must be
 * byte-stable, and every registered module must run green at a
 * modest iteration count (tools/msc_check scales the same sweep to
 * the 10k-iteration acceptance runs).
 *
 * All suites are prefixed Check so the preset test filters
 * (CMakePresets.json) select this tier by name.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "check/bignum.hh"
#include "check/check.hh"

namespace {

using namespace msc;
using check::BigNat;

// --- the oracle's own arithmetic, judged by __int128 ---------------

TEST(CheckBigNat, MatchesNativeArithmetic)
{
    Rng rng(2001);
    for (int trial = 0; trial < 2000; ++trial) {
        const std::uint64_t a = rng.next() >> (rng.below(64));
        const std::uint64_t b = rng.next() >> (rng.below(64));
        const BigNat ba = BigNat::fromU64(a);
        const BigNat bb = BigNat::fromU64(b);

        EXPECT_EQ(ba.add(bb).word64(0), a + b);
        if (a >= b) {
            EXPECT_EQ(ba.sub(bb).word64(0), a - b);
        }
        const unsigned __int128 prod =
            static_cast<unsigned __int128>(a) * b;
        const BigNat bp = ba.mul(bb);
        EXPECT_EQ(bp.word64(0), static_cast<std::uint64_t>(prod));
        EXPECT_EQ(bp.word64(1),
                  static_cast<std::uint64_t>(prod >> 64));
        if (b != 0) {
            BigNat q, r;
            ba.divmod(bb, q, r);
            EXPECT_EQ(q.word64(0), a / b);
            EXPECT_EQ(r.word64(0), a % b);
        }
        EXPECT_EQ(ba.popcount(),
                  static_cast<unsigned>(__builtin_popcountll(a)));
        EXPECT_EQ(ba.bitLength(),
                  a ? 64u - static_cast<unsigned>(
                                __builtin_clzll(a))
                    : 0u);
        EXPECT_EQ(ba.compare(bb), a < b ? -1 : (a == b ? 0 : 1));
    }
}

TEST(CheckBigNat, ShiftAndTruncateIdentities)
{
    Rng rng(2003);
    for (int trial = 0; trial < 500; ++trial) {
        const std::uint64_t a = rng.next();
        const unsigned s = static_cast<unsigned>(rng.below(200));
        const BigNat ba = BigNat::fromU64(a);
        // shr undoes shl exactly.
        EXPECT_EQ(ba.shl(s).shr(s).compare(ba), 0);
        EXPECT_EQ(ba.shl(s).bitLength(),
                  a ? ba.bitLength() + s : 0u);
        // truncate below the width is identity.
        EXPECT_EQ(ba.truncate(64).word64(0), a);
        EXPECT_EQ(ba.truncate(17).word64(0),
                  a & ((std::uint64_t{1} << 17) - 1));
        // divmod reconstructs: a == q*d + r with r < d.
        const std::uint64_t d = (rng.next() >> 32) | 1;
        BigNat q, r;
        ba.divmod(BigNat::fromU64(d), q, r);
        EXPECT_EQ(q.mul(BigNat::fromU64(d)).add(r).compare(ba), 0);
        EXPECT_LT(r.word64(0), d);
    }
}

TEST(CheckBigNat, MultiWordCarryChains)
{
    // 2^192 - 1 plus one carries through three 64-bit words.
    const std::uint64_t ones[] = {~0ull, ~0ull, ~0ull};
    const BigNat big = BigNat::fromWords(ones, 3);
    const BigNat bump = big.add(BigNat::fromU64(1));
    EXPECT_EQ(bump.bitLength(), 193u);
    EXPECT_EQ(bump.popcount(), 1u);
    EXPECT_EQ(bump.countTrailingZeros(), 192u);
    EXPECT_EQ(bump.sub(BigNat::fromU64(1)).compare(big), 0);
    EXPECT_EQ(bump.toHex(),
              "0x1000000000000000000000000000000000000000000000000");
}

// --- harness bookkeeping -------------------------------------------

TEST(CheckHarness, IterationSeedsDecorrelate)
{
    std::set<std::uint64_t> seen;
    for (const char *mod : {"wideint", "align", "xbar"}) {
        for (std::uint64_t it = 0; it < 100; ++it) {
            seen.insert(check::iterationSeed(1, mod, it));
            seen.insert(check::iterationSeed(2, mod, it));
        }
    }
    EXPECT_EQ(seen.size(), 600u); // no collisions across the lattice
}

TEST(CheckHarness, ExpectCountsAndCapsMessages)
{
    check::ModuleReport rep;
    rep.name = "t";
    check::Context ctx(Rng(1), 7, rep, 2);
    EXPECT_TRUE(ctx.expect(true, "never built"));
    EXPECT_FALSE(ctx.expect(false, "first: ", 42));
    EXPECT_FALSE(ctx.expect(false, "second"));
    EXPECT_FALSE(ctx.expect(false, "third (beyond cap)"));
    EXPECT_EQ(rep.checks, 4u);
    EXPECT_EQ(rep.failures, 3u);
    ASSERT_EQ(rep.messages.size(), 2u); // capped, counting continues
    EXPECT_EQ(rep.messages[0], "iter 7: first: 42");
}

TEST(CheckHarness, ModuleFilterSelectsBySubstring)
{
    check::Options opt;
    opt.iters = 1;
    opt.module = "align";
    const check::Report rep = check::runChecks(opt);
    ASSERT_EQ(rep.modules.size(), 1u);
    EXPECT_EQ(rep.modules[0].name, "align");
    EXPECT_GT(rep.totalChecks, 0u);

    opt.module = "no-such-module";
    const check::Report none = check::runChecks(opt);
    EXPECT_TRUE(none.modules.empty());
    EXPECT_TRUE(none.ok());
    EXPECT_EQ(none.totalChecks, 0u);
}

TEST(CheckHarness, ReportsAreByteStableAcrossRuns)
{
    check::Options opt;
    opt.seed = 42;
    opt.iters = 25;
    opt.module = "wideint";
    const std::string a = check::runChecks(opt).toJson();
    const std::string b = check::runChecks(opt).toJson();
    EXPECT_EQ(a, b);
    // A different seed must actually change the drawn work, which
    // the byte-stable report only reflects through counts; at least
    // confirm the report parses the seed through.
    opt.seed = 43;
    const std::string c = check::runChecks(opt).toJson();
    EXPECT_NE(a, c);
}

TEST(CheckHarness, UlpDistanceIsAMetricOnDoubles)
{
    EXPECT_EQ(check::ulpDistance(1.0, 1.0), 0u);
    EXPECT_EQ(check::ulpDistance(0.0, -0.0), 0u);
    EXPECT_EQ(check::ulpDistance(
                  1.0, std::nextafter(1.0, 2.0)), 1u);
    EXPECT_EQ(check::ulpDistance(
                  1.0, std::nextafter(1.0, 0.0)), 1u);
    EXPECT_EQ(check::ulpDistance(-1.0, -1.0), 0u);
    EXPECT_GT(check::ulpDistance(-1.0, 1.0), 1ull << 60);
    EXPECT_EQ(check::ulpDistance(0.0, 0x1.0p-1074), 1u);
    EXPECT_EQ(check::ulpDistance(-0x1.0p-1074, 0x1.0p-1074), 2u);
}

TEST(CheckHarness, ListsAllEightLayers)
{
    const auto names = check::moduleNames();
    ASSERT_EQ(names.size(), 8u);
    const std::set<std::string> set(names.begin(), names.end());
    for (const char *expect : {"wideint", "align", "xbar", "cluster",
                               "accel", "spmm", "solver", "binio"})
        EXPECT_TRUE(set.count(expect)) << expect;
}

// --- every module runs green at sweep scale ------------------------

void
expectClean(const char *module, std::uint64_t iters)
{
    check::Options opt;
    opt.seed = 20260806;
    opt.iters = iters;
    opt.module = module;
    const check::Report rep = check::runChecks(opt);
    EXPECT_GT(rep.totalChecks, 0u) << module;
    EXPECT_EQ(rep.totalFailures, 0u) << rep.toJson();
}

TEST(CheckModules, WideIntGreen) { expectClean("wideint", 300); }
TEST(CheckModules, AlignGreen) { expectClean("align", 300); }
TEST(CheckModules, XbarGreen) { expectClean("xbar", 150); }
TEST(CheckModules, ClusterGreen) { expectClean("cluster", 40); }
TEST(CheckModules, AccelGreen) { expectClean("accel", 4); }
TEST(CheckModules, SpmmGreen) { expectClean("spmm", 8); }
TEST(CheckModules, SolverGreen) { expectClean("solver", 12); }
TEST(CheckModules, BinioGreen) { expectClean("binio", 40); }

} // namespace
