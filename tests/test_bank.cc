/**
 * @file
 * Tests for the bank processor/memory cost models.
 */

#include <gtest/gtest.h>

#include "bank/bank.hh"

namespace msc {
namespace {

TEST(Bank, CsrTimeScalesLinearly)
{
    const Bank bank{ProcessorModelParams{}, MemoryModelParams{}};
    const double t1 = bank.csrTime(1000.0);
    const double t2 = bank.csrTime(2000.0);
    // Startup is constant; the per-element slope doubles.
    const double startup = bank.csrTime(0.0);
    EXPECT_NEAR(t2 - startup, 2.0 * (t1 - startup), 1e-15);
    EXPECT_GT(startup, 0.0);
}

TEST(Bank, KernelTimesMatchCycleModel)
{
    ProcessorModelParams proc;
    proc.clockHz = 1.0e9;
    proc.cyclesPerCsrNnz = 4.0;
    proc.cyclesPerDotElem = 2.0;
    proc.cyclesPerAxpyElem = 2.5;
    proc.kernelStartupCycles = 100.0;
    const Bank bank{proc, MemoryModelParams{}};
    EXPECT_NEAR(bank.csrTime(50.0), (100.0 + 200.0) / 1e9, 1e-18);
    EXPECT_NEAR(bank.dotTime(50.0), (100.0 + 100.0) / 1e9, 1e-18);
    EXPECT_NEAR(bank.axpyTime(40.0), (100.0 + 100.0) / 1e9, 1e-18);
    EXPECT_NEAR(bank.serviceTime(3.0),
                3.0 * proc.clusterServiceCycles / 1e9, 1e-18);
}

TEST(Bank, EnergyFollowsCycles)
{
    ProcessorModelParams proc;
    proc.energyPerCycle = 10e-12;
    const Bank bank{proc, MemoryModelParams{}};
    EXPECT_DOUBLE_EQ(bank.procEnergy(1000.0), 1e-8);
    EXPECT_DOUBLE_EQ(bank.csrCycles(10.0),
                     10.0 * proc.cyclesPerCsrNnz);
    EXPECT_DOUBLE_EQ(bank.dotCycles(10.0),
                     10.0 * proc.cyclesPerDotElem);
    EXPECT_DOUBLE_EQ(bank.axpyCycles(10.0),
                     10.0 * proc.cyclesPerAxpyElem);
}

} // namespace
} // namespace msc
