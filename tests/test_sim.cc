/**
 * @file
 * Tests for the discrete-event kernel and the event-driven SpMV
 * simulation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "accel/accel.hh"
#include "sim/event_queue.hh"
#include "sim/spmv_sim.hh"
#include "sparse/gen.hh"
#include "util/logging.hh"

namespace msc {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    const double end = q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(end, 3.0);
    EXPECT_EQ(q.eventsRun(), 3u);
}

TEST(EventQueue, EqualTimesFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMore)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1.0, [&] {
        ++fired;
        q.scheduleAfter(0.5, [&] { ++fired; });
    });
    const double end = q.run();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(end, 1.5);
}

TEST(EventQueue, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(2.0, [&] {
        EXPECT_THROW(q.schedule(1.0, [] {}), PanicError);
    });
    q.run();
}

TEST(EventQueue, EventLimitIsFatal)
{
    EventQueue q;
    // Self-perpetuating event chain.
    std::function<void()> again = [&] {
        q.scheduleAfter(1.0, again);
    };
    q.schedule(0.0, again);
    EXPECT_THROW(q.run(100), FatalError);
}

TEST(SpmvSim, CsrOnlyBankMatchesClosedForm)
{
    SpmvSimConfig cfg;
    cfg.banks = 1;
    cfg.csrNnzPerBank = {12000.0};
    const SpmvSimResult r = simulateSpmv(cfg, {});
    const Bank bank(cfg.proc, cfg.mem);
    const double expect =
        cfg.proc.kernelStartupCycles / cfg.proc.clockHz +
        bank.csrCycles(12000.0) / cfg.proc.clockHz +
        cfg.mem.barrierLatency;
    EXPECT_NEAR(r.totalTime, expect, 1e-12);
}

TEST(SpmvSim, ClusterBoundBank)
{
    // One slow cluster, negligible CSR: total ~ cluster latency +
    // service + barrier.
    SpmvSimConfig cfg;
    cfg.banks = 1;
    cfg.csrNnzPerBank = {0.0};
    std::vector<SimClusterOp> ops{{0, 50e-6}};
    const SpmvSimResult r = simulateSpmv(cfg, ops);
    EXPECT_GT(r.totalTime, 50e-6);
    EXPECT_LT(r.totalTime, 52e-6);
}

TEST(SpmvSim, InterruptSerializationShowsUp)
{
    // 64 clusters finishing at the same instant on one bank: the
    // processor services them one by one.
    SpmvSimConfig cfg;
    cfg.banks = 1;
    cfg.csrNnzPerBank = {0.0};
    std::vector<SimClusterOp> ops;
    for (int i = 0; i < 64; ++i)
        ops.push_back({0, 10e-6});
    const SpmvSimResult r = simulateSpmv(cfg, ops);
    const double serviceT =
        cfg.proc.clusterServiceCycles / cfg.proc.clockHz;
    EXPECT_GT(r.totalTime, 10e-6 + 60 * serviceT);
    EXPECT_GT(r.maxInterruptQueue, 10 * serviceT);
}

TEST(SpmvSim, BanksRunInParallel)
{
    SpmvSimConfig cfg;
    cfg.banks = 4;
    cfg.csrNnzPerBank = {1000.0, 1000.0, 1000.0, 1000.0};
    std::vector<SimClusterOp> ops;
    for (int bk = 0; bk < 4; ++bk)
        ops.push_back({bk, 20e-6});
    const SpmvSimResult quad = simulateSpmv(cfg, ops);

    SpmvSimConfig one;
    one.banks = 1;
    one.csrNnzPerBank = {4000.0};
    std::vector<SimClusterOp> opsOne;
    for (int i = 0; i < 4; ++i)
        opsOne.push_back({0, 20e-6});
    const SpmvSimResult single = simulateSpmv(one, opsOne);
    EXPECT_LT(quad.totalTime, single.totalTime);
    ASSERT_EQ(quad.bankFinish.size(), 4u);
}

TEST(SpmvSim, FormatStatsReport)
{
    SpmvSimConfig cfg;
    cfg.banks = 2;
    cfg.csrNnzPerBank = {100.0, 200.0};
    std::vector<SimClusterOp> ops{{0, 5e-6}, {1, 7e-6}};
    const SpmvSimResult r = simulateSpmv(cfg, ops);
    const std::string report = formatSpmvSimStats(r);
    EXPECT_NE(report.find("bankFinish"), std::string::npos);
    EXPECT_NE(report.find("loadBalance"), std::string::npos);
    EXPECT_NE(report.find("events"), std::string::npos);
}

TEST(SpmvSim, RejectsBadInput)
{
    SpmvSimConfig cfg;
    cfg.banks = 2;
    cfg.csrNnzPerBank = {1.0}; // wrong size
    EXPECT_THROW(simulateSpmv(cfg, {}), FatalError);
    cfg.csrNnzPerBank = {1.0, 1.0};
    std::vector<SimClusterOp> ops{{5, 1e-6}}; // bad bank
    EXPECT_THROW(simulateSpmv(cfg, ops), FatalError);
}

TEST(SpmvSim, AgreesWithClosedFormOnRealMatrix)
{
    setLogQuiet(true);
    TiledParams p;
    p.rows = 16384;
    p.tile = 48;
    p.tileDensity = 0.3;
    p.scatterPerRow = 0.5;
    p.spd = true;
    p.symmetricPattern = true;
    p.seed = 901;
    const Csr m = genTiled(p);
    Accelerator accel;
    accel.prepare(m);
    const SpmvSimResult sim = accel.simulateSpmv();
    const double closed = accel.spmvCost().time;
    // The event-driven time must bracket the closed-form estimate
    // within a small factor (it adds queueing the closed form lacks,
    // but shares the dominant terms).
    EXPECT_GT(sim.totalTime, 0.3 * closed);
    EXPECT_LT(sim.totalTime, 3.0 * closed);
    EXPECT_GT(sim.events, 0u);
}

} // namespace
} // namespace msc
