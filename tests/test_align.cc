/**
 * @file
 * Tests for block-aligned fixed-point conversion and bias encoding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fixedpoint/align.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(ExpRangeOf, BasicRange)
{
    const std::vector<double> v{1.0, 8.0, 0.25};
    const ExpRange r = expRangeOf(v);
    EXPECT_TRUE(r.anyNonZero);
    EXPECT_EQ(r.minExp, -2);
    EXPECT_EQ(r.maxExp, 3);
    EXPECT_EQ(r.span(), 5);
    EXPECT_TRUE(r.fits());
}

TEST(ExpRangeOf, IgnoresZeros)
{
    const std::vector<double> v{0.0, 2.0, 0.0};
    const ExpRange r = expRangeOf(v);
    EXPECT_EQ(r.minExp, 1);
    EXPECT_EQ(r.maxExp, 1);
}

TEST(ExpRangeOf, AllZeros)
{
    const std::vector<double> v{0.0, -0.0};
    const ExpRange r = expRangeOf(v);
    EXPECT_FALSE(r.anyNonZero);
    EXPECT_EQ(r.span(), 0);
    EXPECT_TRUE(r.fits());
}

TEST(ExpRangeOf, SubnormalUsesTrueLeadingBit)
{
    // 2^-1074 has its leading bit at exponent -1074, not -1022.
    const std::vector<double> v{0x1.0p-1074, 0x1.0p-1070};
    const ExpRange r = expRangeOf(v);
    EXPECT_EQ(r.minExp, -1074);
    EXPECT_EQ(r.maxExp, -1070);
}

TEST(ExpRangeOf, RangeBeyond64DoesNotFit)
{
    const std::vector<double> v{1.0, 0x1.0p65};
    EXPECT_FALSE(expRangeOf(v).fits());
    const std::vector<double> w{1.0, 0x1.0p64};
    EXPECT_TRUE(expRangeOf(w).fits());
}

TEST(ExpRangeOf, RejectsNonFinite)
{
    const std::vector<double> v{1.0, NAN};
    EXPECT_THROW(expRangeOf(v), FatalError);
}

TEST(AlignValues, ExactRoundTrip)
{
    const std::vector<double> v{1.5, -0.375, 1024.0, 0.0, -3.0};
    const AlignedSet s = alignValues(v);
    ASSERT_EQ(s.size(), v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(s.valueOf(i), v[i]) << "i=" << i;
}

TEST(AlignValues, RandomRoundTripWithinRange)
{
    Rng rng(37);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> v;
        const int base = static_cast<int>(rng.range(-500, 500));
        for (int i = 0; i < 32; ++i) {
            const int e = base + static_cast<int>(rng.range(0, 60));
            v.push_back(std::ldexp(rng.uniform(1.0, 2.0), e) *
                        (rng.chance(0.5) ? -1 : 1));
        }
        const AlignedSet s = alignValues(v);
        EXPECT_LE(s.magBits, fxp::maxMagBits);
        for (std::size_t i = 0; i < v.size(); ++i)
            EXPECT_EQ(s.valueOf(i), v[i]);
    }
}

TEST(AlignValues, MagBitsMatchesExponentSpan)
{
    // span = 10 -> the widest operand has 53 + 10 bits.
    const std::vector<double> v{1.0, 0x1.0p10};
    const AlignedSet s = alignValues(v);
    EXPECT_EQ(s.magBits, 63u);
    EXPECT_EQ(s.range.span(), 10);
}

TEST(AlignValues, MaxRangeProducesFullWidthOperand)
{
    const std::vector<double> v{0x1.fffffffffffffp0, 0x1.0p-64};
    const AlignedSet s = alignValues(v);
    EXPECT_EQ(s.magBits, fxp::maxMagBits);
    EXPECT_EQ(s.valueOf(0), v[0]);
    EXPECT_EQ(s.valueOf(1), v[1]);
}

TEST(AlignValues, FatalBeyondRange)
{
    const std::vector<double> v{1.0, 0x1.0p100};
    EXPECT_THROW(alignValues(v), FatalError);
}

TEST(AlignValues, BitSliceReconstructsValues)
{
    const std::vector<double> v{6.25, -0.5, 3.0};
    const AlignedSet s = alignValues(v);
    // Rebuild each magnitude from its bit slices.
    for (std::size_t i = 0; i < v.size(); ++i) {
        U128 rebuilt;
        for (unsigned k = 0; k < s.magBits; ++k) {
            if (s.bitSlice(k).get(i))
                rebuilt.setBit(k);
        }
        EXPECT_EQ(rebuilt, s.mag[i]);
    }
}

TEST(BiasEncode, StoredValuesAreUnsignedAndDecode)
{
    const std::vector<double> v{2.0, -2.0, 0.0, -0.125, 7.75};
    const AlignedSet s = alignValues(v);
    const BiasedSet b = biasEncode(s);
    ASSERT_EQ(b.size(), v.size());
    EXPECT_LE(b.width(), fxp::operandBits);
    for (std::size_t i = 0; i < v.size(); ++i) {
        U128 mag;
        bool neg = false;
        biasDecode(b, i, mag, neg);
        EXPECT_EQ(mag, s.mag[i]);
        if (!mag.isZero())
            EXPECT_EQ(neg, static_cast<bool>(s.neg[i]));
    }
}

TEST(BiasEncode, ZeroStoresExactlyBias)
{
    const std::vector<double> v{0.0, 1.0};
    const BiasedSet b = biasEncode(alignValues(v));
    EXPECT_EQ(b.stored[0], b.bias());
}

TEST(BiasEncode, BiasCoversWorstOperand)
{
    Rng rng(41);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> v;
        for (int i = 0; i < 16; ++i) {
            v.push_back(std::ldexp(rng.uniform(1.0, 2.0),
                                   static_cast<int>(rng.range(0, 50)))
                        * (rng.chance(0.5) ? -1 : 1));
        }
        const AlignedSet s = alignValues(v);
        const BiasedSet b = biasEncode(s);
        for (std::size_t i = 0; i < v.size(); ++i) {
            // stored = bias +/- mag must never wrap below zero and
            // must fit in the operand width.
            EXPECT_LE(b.stored[i].bitLength(), b.width());
        }
    }
}

TEST(BiasEncode, MaxRangeOperandFitsPaperWidth)
{
    // Full 64-bit exponent spread: 117 magnitude bits + sign -> the
    // paper's 118-bit operand.
    const std::vector<double> v{-0x1.fffffffffffffp64, 0x1.0p0};
    const BiasedSet b = biasEncode(alignValues(v));
    EXPECT_EQ(b.width(), fxp::operandBits);
}

} // namespace
} // namespace msc
