/**
 * @file
 * Tests for Reverse Cuthill-McKee reordering and permutation
 * utilities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "blocking/blocking.hh"
#include "sparse/reorder.hh"
#include "sparse/stats.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace msc {
namespace {

TEST(Reorder, RcmIsAPermutation)
{
    Rng rng(1301);
    Coo coo;
    coo.rows = coo.cols = 200;
    for (int k = 0; k < 900; ++k) {
        coo.add(static_cast<std::int32_t>(rng.below(200)),
                static_cast<std::int32_t>(rng.below(200)), 1.0);
    }
    for (std::int32_t i = 0; i < 200; ++i)
        coo.add(i, i, 4.0);
    const Csr m = Csr::fromCoo(coo);
    const auto perm = reverseCuthillMcKee(m);
    ASSERT_EQ(perm.size(), 200u);
    std::vector<std::int32_t> sorted(perm.begin(), perm.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::int32_t i = 0; i < 200; ++i)
        EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Reorder, RcmReducesBandwidthOfShuffledBand)
{
    // Build a banded matrix, shuffle its numbering, and verify RCM
    // recovers a small bandwidth.
    Rng rng(1303);
    const std::int32_t n = 400;
    std::vector<std::int32_t> shuffle(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
        shuffle[static_cast<std::size_t>(i)] = i;
    for (std::int32_t i = n - 1; i > 0; --i) {
        std::swap(shuffle[static_cast<std::size_t>(i)],
                  shuffle[rng.below(
                      static_cast<std::uint64_t>(i + 1))]);
    }
    Coo coo;
    coo.rows = coo.cols = n;
    for (std::int32_t i = 0; i < n; ++i) {
        coo.add(shuffle[static_cast<std::size_t>(i)],
                shuffle[static_cast<std::size_t>(i)], 4.0);
        for (std::int32_t d = 1; d <= 3; ++d) {
            if (i + d < n) {
                coo.add(shuffle[static_cast<std::size_t>(i)],
                        shuffle[static_cast<std::size_t>(i + d)],
                        -1.0);
                coo.add(shuffle[static_cast<std::size_t>(i + d)],
                        shuffle[static_cast<std::size_t>(i)],
                        -1.0);
            }
        }
    }
    const Csr scrambled = Csr::fromCoo(coo);
    const MatrixStats before = computeStats(scrambled);
    const auto perm = reverseCuthillMcKee(scrambled);
    const Csr ordered = permuteSymmetric(scrambled, perm);
    const MatrixStats after = computeStats(ordered);
    EXPECT_LT(after.bandwidth, before.bandwidth / 4);
    EXPECT_LE(after.bandwidth, 16); // near the original band of 3
}

TEST(Reorder, PermutedSpmvIsConsistent)
{
    // (P A P^T)(P x) = P (A x).
    Rng rng(1307);
    Coo coo;
    coo.rows = coo.cols = 64;
    for (int k = 0; k < 400; ++k) {
        coo.add(static_cast<std::int32_t>(rng.below(64)),
                static_cast<std::int32_t>(rng.below(64)),
                rng.uniform(-1, 1));
    }
    const Csr m = Csr::fromCoo(coo);
    const auto perm = reverseCuthillMcKee(m);
    const Csr pm = permuteSymmetric(m, perm);

    std::vector<double> x(64);
    for (auto &v : x)
        v = rng.uniform(-1, 1);
    std::vector<double> y(64), py(64);
    m.spmv(x, y);
    const auto px = permuteVector(x, perm);
    pm.spmv(px, py);
    const auto expect = permuteVector(y, perm);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(py[i], expect[i], 1e-13);
}

TEST(Reorder, UnpermuteInvertsPermute)
{
    Rng rng(1311);
    std::vector<std::int32_t> perm{3, 1, 4, 0, 2};
    std::vector<double> v{10, 11, 12, 13, 14};
    const auto p = permuteVector(v, perm);
    const auto back = unpermuteVector(p, perm);
    EXPECT_EQ(back, v);
}

TEST(Reorder, RcmImprovesBlockability)
{
    // Scrambled banded system: near-zero blocking before RCM,
    // recovered after.
    Rng rng(1313);
    const std::int32_t n = 4096;
    std::vector<std::int32_t> shuffle(static_cast<std::size_t>(n));
    for (std::int32_t i = 0; i < n; ++i)
        shuffle[static_cast<std::size_t>(i)] = i;
    for (std::int32_t i = n - 1; i > 0; --i) {
        std::swap(shuffle[static_cast<std::size_t>(i)],
                  shuffle[rng.below(
                      static_cast<std::uint64_t>(i + 1))]);
    }
    Coo coo;
    coo.rows = coo.cols = n;
    for (std::int32_t i = 0; i < n; ++i) {
        coo.add(shuffle[static_cast<std::size_t>(i)],
                shuffle[static_cast<std::size_t>(i)], 8.0);
        for (std::int32_t d = 1; d <= 8; ++d) {
            if (i + d < n) {
                const double v = rng.uniform(0.5, 1.0);
                coo.add(shuffle[static_cast<std::size_t>(i)],
                        shuffle[static_cast<std::size_t>(i + d)], v);
                coo.add(shuffle[static_cast<std::size_t>(i + d)],
                        shuffle[static_cast<std::size_t>(i)], v);
            }
        }
    }
    const Csr scrambled = Csr::fromCoo(coo);
    const double before =
        planBlocks(scrambled).stats.blockingEfficiency();
    const auto perm = reverseCuthillMcKee(scrambled);
    const Csr ordered = permuteSymmetric(scrambled, perm);
    const double after =
        planBlocks(ordered).stats.blockingEfficiency();
    EXPECT_LT(before, 0.1);
    EXPECT_GT(after, 0.8);
}

TEST(Reorder, RejectsBadPermutations)
{
    const Csr m = Csr::identity(4);
    std::vector<std::int32_t> dup{0, 0, 1, 2};
    EXPECT_THROW(permuteSymmetric(m, dup), FatalError);
    std::vector<std::int32_t> outOfRange{0, 1, 2, 7};
    EXPECT_THROW(permuteSymmetric(m, outOfRange), FatalError);
    std::vector<std::int32_t> wrongSize{0, 1};
    EXPECT_THROW(permuteSymmetric(m, wrongSize), FatalError);
}

} // namespace
} // namespace msc
