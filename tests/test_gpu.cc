/**
 * @file
 * Tests for the Tesla P100 baseline model.
 */

#include <gtest/gtest.h>

#include "gpu/gpu.hh"

namespace msc {
namespace {

MatrixStats
fakeStats(std::int32_t rows, std::size_t nnz, std::int32_t bandwidth)
{
    MatrixStats s;
    s.rows = s.cols = rows;
    s.nnz = nnz;
    s.nnzPerRow = static_cast<double>(nnz) / rows;
    s.bandwidth = bandwidth;
    return s;
}

TEST(GpuModel, SpmvScalesWithNnz)
{
    const GpuModel gpu;
    const GpuCost small = gpu.spmv(fakeStats(10000, 100000, 500));
    const GpuCost big = gpu.spmv(fakeStats(10000, 1000000, 500));
    EXPECT_GT(big.time, small.time);
    EXPECT_GT(big.energy, small.energy);
    // 10x the nonzeros does not cost 10x (launch overhead floors).
    EXPECT_LT(big.time, 10.0 * small.time);
}

TEST(GpuModel, LaunchOverheadFloorsSmallKernels)
{
    const GpuModel gpu;
    const GpuCost tiny = gpu.spmv(fakeStats(64, 256, 8));
    EXPECT_GE(tiny.time, gpu.params().kernelLaunch);
}

TEST(GpuModel, WideBandwidthGathersSlower)
{
    const GpuModel gpu;
    const GpuCost narrow = gpu.spmv(fakeStats(100000, 1000000, 100));
    const GpuCost wide =
        gpu.spmv(fakeStats(100000, 1000000, 100000));
    EXPECT_GT(wide.time, narrow.time);
}

TEST(GpuModel, DotIncludesReductionSync)
{
    const GpuModel gpu;
    const GpuCost dotCost = gpu.dotProduct(100000);
    const GpuCost axpyCost = gpu.axpy(100000);
    // dot reads 16 B/elem + sync; axpy moves 24 B/elem without sync.
    EXPECT_GT(dotCost.time,
              gpu.params().kernelLaunch + gpu.params().reduceSync);
    EXPECT_GT(axpyCost.time, gpu.params().kernelLaunch);
}

TEST(GpuModel, SolveComposesKernelCounts)
{
    const GpuModel gpu;
    const MatrixStats stats = fakeStats(50000, 500000, 1000);
    SolverResult run;
    run.spmvCalls = 100;
    run.dotCalls = 200;
    run.axpyCalls = 300;
    run.vectorLength = 50000;
    const GpuCost total = gpu.solve(stats, run);
    const double expectTime = 100 * gpu.spmv(stats).time +
                              200 * gpu.dotProduct(50000).time +
                              300 * gpu.axpy(50000).time;
    EXPECT_NEAR(total.time, expectTime, 1e-12);
    // Energy includes the idle baseline on top of kernel energy.
    EXPECT_GT(total.energy, expectTime * gpu.params().busyPower);
}

TEST(GpuModel, EnergyTracksPower)
{
    GpuModelParams hot;
    hot.busyPower = 300.0;
    GpuModelParams cold;
    cold.busyPower = 100.0;
    const MatrixStats stats = fakeStats(10000, 100000, 100);
    EXPECT_GT(GpuModel(hot).spmv(stats).energy,
              GpuModel(cold).spmv(stats).energy);
}

} // namespace
} // namespace msc
