/**
 * @file
 * Tests for the device-noise model (Section VIII-G).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "device/noisy.hh"
#include "sparse/gen.hh"

namespace msc {
namespace {

CellParams
cellWith(unsigned bits, double range, double progErr)
{
    CellParams c;
    c.bitsPerCell = bits;
    c.rOn = 2e3;
    c.rOff = c.rOn * range;
    c.progErrorSigma = progErr;
    return c;
}

Csr
testMatrix()
{
    TiledParams p;
    p.rows = 512;
    p.tile = 32;
    p.tileDensity = 0.3;
    p.spd = true;
    p.symmetricPattern = true;
    p.seed = 401;
    return genTiled(p);
}

TEST(ConversionError, IdealSingleBitCellIsClean)
{
    // Table I devices: 1-bit, range 1500, no programming error. The
    // off-state leakage of ~205 active rows stays far below half an
    // LSB -- the paper's rationale for capping blocks at 512.
    const auto e = conversionError(cellWith(1, 1500, 0.0),
                                   0.40 * 512, 20.0);
    EXPECT_EQ(e.mean, 0.0);
    EXPECT_EQ(e.errProb, 0.0);
}

TEST(ConversionError, TwoBitLowRangeIsDeterministicallyWrong)
{
    // 2-bit cells at range 750: leakage ~0.8 LSB -> every conversion
    // misreads (Figure 12's worst configuration).
    const auto e = conversionError(cellWith(2, 750, 0.0),
                                   0.40 * 512, 20.0);
    EXPECT_GE(e.mean, 0.9);
    EXPECT_GT(e.errProb, 0.9);
}

TEST(ConversionError, TwoBitMidRangeIsMarginal)
{
    // 2-bit at 1500: leakage sits just below the half step; popcount
    // variation produces occasional errors ("some computational
    // error", Section VIII-G).
    const auto e = conversionError(cellWith(2, 1500, 0.0),
                                   0.40 * 512, 20.0);
    EXPECT_LT(e.mean, 0.5);
    EXPECT_GT(e.errProb, 0.0);
    EXPECT_LT(e.errProb, 0.2);
}

TEST(ConversionError, ProgrammingErrorRaisesProbability)
{
    const auto clean = conversionError(cellWith(1, 1500, 0.0),
                                       0.40 * 512, 20.0);
    const auto e1 = conversionError(cellWith(1, 1500, 0.01),
                                    0.40 * 512, 20.0);
    const auto e5 = conversionError(cellWith(1, 1500, 0.05),
                                    0.40 * 512, 20.0);
    EXPECT_EQ(clean.errProb, 0.0);
    EXPECT_GE(e5.errProb, e1.errProb);
    EXPECT_GT(e5.errProb, 0.0);
}

TEST(NoisyOperator, IdealDevicesAreExact)
{
    const Csr m = testMatrix();
    NoisyCsrOperator op(m, cellWith(1, 1500, 0.0), 1);
    EXPECT_EQ(op.glitchCount(), 0u);
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> yNoisy(x.size()), yExact(x.size());
    op.apply(x, yNoisy);
    m.spmv(x, yExact);
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(yNoisy[i], yExact[i]);
}

TEST(NoisyOperator, GlitchesAreStaticPerProgramming)
{
    const Csr m = testMatrix();
    NoisyCsrOperator op(m, cellWith(1, 1500, 0.05), 7);
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 0.5);
    std::vector<double> y1(x.size()), y2(x.size());
    op.apply(x, y1);
    op.apply(x, y2);
    // Same x through the same programming: identical perturbation.
    for (std::size_t i = 0; i < x.size(); ++i)
        EXPECT_EQ(y1[i], y2[i]);
}

TEST(NoisyOperator, SeedsChangeTheGlitchPattern)
{
    const Csr m = testMatrix();
    NoisyCsrOperator opA(m, cellWith(2, 1500, 0.02), 7);
    NoisyCsrOperator opB(m, cellWith(2, 1500, 0.02), 8);
    EXPECT_GT(opA.glitchCount() + opB.glitchCount(), 0u);
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> ya(x.size()), yb(x.size());
    opA.apply(x, ya);
    opB.apply(x, yb);
    bool differ = false;
    for (std::size_t i = 0; i < x.size(); ++i)
        differ |= (ya[i] != yb[i]);
    EXPECT_TRUE(differ);
}

TEST(NoisyOperator, DenseErrorRegimeShiftsResults)
{
    const Csr m = testMatrix();
    NoisyCsrOperator op(m, cellWith(2, 750, 0.0), 3);
    std::vector<double> x(static_cast<std::size_t>(m.rows()), 1.0);
    std::vector<double> yNoisy(x.size()), yExact(x.size());
    op.apply(x, yNoisy);
    m.spmv(x, yExact);
    double maxRel = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        if (yExact[i] != 0.0) {
            maxRel = std::max(maxRel,
                              std::fabs(yNoisy[i] - yExact[i]) /
                                  std::fabs(yExact[i]));
        }
    }
    EXPECT_GT(maxRel, 0.01); // visibly corrupted
}

} // namespace
} // namespace msc
