/**
 * @file
 * Tests for the heterogeneous blocking preprocessor (Section V-B1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "blocking/blocking.hh"
#include "sparse/gen.hh"
#include "util/random.hh"

namespace msc {
namespace {

/** SpMV through the plan must reproduce the matrix exactly:
 *  blocks + unblocked leftovers partition the nonzeros. */
void
checkPlanIsAPartition(const Csr &m, const BlockPlan &plan)
{
    std::size_t blockNnz = 0;
    for (const auto &b : plan.blocks) {
        blockNnz += b.elems.size();
        for (const auto &el : b.elems) {
            ASSERT_GE(el.row, 0);
            ASSERT_LT(el.row, static_cast<std::int32_t>(b.size));
            ASSERT_GE(el.col, 0);
            ASSERT_LT(el.col, static_cast<std::int32_t>(b.size));
        }
    }
    EXPECT_EQ(blockNnz, plan.stats.blockedNnz);
    EXPECT_EQ(blockNnz + plan.unblocked.nnz(), m.nnz());

    // Dense reconstruction on small matrices.
    if (m.rows() <= 512 && m.cols() <= 512) {
        std::vector<double> dense(
            static_cast<std::size_t>(m.rows()) * m.cols(), 0.0);
        auto at = [&](std::int32_t r, std::int32_t c) -> double & {
            return dense[static_cast<std::size_t>(r) * m.cols() + c];
        };
        for (const auto &b : plan.blocks) {
            for (const auto &el : b.elems)
                at(b.rowOrigin + el.row, b.colOrigin + el.col) +=
                    el.val;
        }
        for (std::int32_t r = 0; r < plan.unblocked.rows(); ++r) {
            const auto cols = plan.unblocked.rowCols(r);
            const auto vals = plan.unblocked.rowVals(r);
            for (std::size_t k = 0; k < cols.size(); ++k)
                at(r, cols[k]) += vals[k];
        }
        for (std::int32_t r = 0; r < m.rows(); ++r) {
            const auto cols = m.rowCols(r);
            const auto vals = m.rowVals(r);
            for (std::size_t k = 0; k < cols.size(); ++k) {
                EXPECT_EQ(at(r, cols[k]), vals[k])
                    << "(" << r << "," << cols[k] << ")";
                at(r, cols[k]) = 0.0;
            }
        }
        for (double v : dense)
            EXPECT_EQ(v, 0.0); // nothing invented
    }
}

TEST(Blocking, DenseTileIsCaptured)
{
    // A fully dense 64x64 corner must be blocked at size 64.
    Coo coo;
    coo.rows = coo.cols = 256;
    for (std::int32_t r = 0; r < 64; ++r)
        for (std::int32_t c = 0; c < 64; ++c)
            coo.add(r, c, 1.0 + r + c);
    // Plus scattered singletons elsewhere.
    for (std::int32_t i = 64; i < 256; ++i)
        coo.add(i, i, 2.0);
    const Csr m = Csr::fromCoo(coo);

    BlockingConfig cfg;
    cfg.sizes = {128, 64};
    const BlockPlan plan = planBlocks(m, cfg);
    checkPlanIsAPartition(m, plan);
    EXPECT_GE(plan.stats.blockedNnz, 4096u);
    EXPECT_GT(plan.stats.blockingEfficiency(), 0.9);
}

TEST(Blocking, UniformScatterIsNotBlocked)
{
    Rng rng(151);
    Coo coo;
    coo.rows = coo.cols = 1024;
    for (int k = 0; k < 4096; ++k) {
        coo.add(static_cast<std::int32_t>(rng.below(1024)),
                static_cast<std::int32_t>(rng.below(1024)),
                rng.uniform(0.5, 2.0));
    }
    const Csr m = Csr::fromCoo(coo);
    const BlockPlan plan = planBlocks(m);
    checkPlanIsAPartition(m, plan);
    // ~4 nnz per 64x64 candidate: far below every threshold.
    EXPECT_LT(plan.stats.blockingEfficiency(), 0.05);
    EXPECT_EQ(plan.blocks.size(), 0u);
}

TEST(Blocking, PrefersLargerBlocks)
{
    // A dense 256x256 matrix: one 256 block (not four 128s or
    // sixteen 64s) when 256 is the largest candidate size.
    Coo coo;
    coo.rows = coo.cols = 256;
    Rng rng(157);
    for (std::int32_t r = 0; r < 256; ++r)
        for (std::int32_t c = 0; c < 256; ++c)
            if (rng.chance(0.3))
                coo.add(r, c, rng.uniform(1.0, 2.0));
    const Csr m = Csr::fromCoo(coo);
    BlockingConfig cfg;
    cfg.sizes = {256, 128, 64};
    const BlockPlan plan = planBlocks(m, cfg);
    checkPlanIsAPartition(m, plan);
    ASSERT_EQ(plan.stats.blocksPerSize.size(), 3u);
    EXPECT_EQ(plan.stats.blocksPerSize[0], 1u); // one 256 block
    EXPECT_EQ(plan.stats.blocksPerSize[1], 0u);
    EXPECT_EQ(plan.stats.blocksPerSize[2], 0u);
}

TEST(Blocking, MixedStructureUsesMultipleSizes)
{
    // Three grid-aligned dense regions whose nonzero counts select
    // three different block sizes under the default density-based
    // threshold of 3 * s * s/64 nonzeros (512 -> 12288, 256 -> 3072,
    // 128 -> 768, 64 -> 192).
    Rng rng(163);
    Coo coo;
    coo.rows = coo.cols = 2048;
    // ~8200 nnz in a 128 region at (0,0): > 3072 -> a 256 block.
    for (std::int32_t r = 0; r < 128; ++r)
        for (std::int32_t c = 0; c < 128; ++c)
            if (rng.chance(0.5))
                coo.add(r, c, rng.uniform(1.0, 2.0));
    // ~1230 nnz at (1024,1024): < 3072, >= 768 -> a 128 block.
    for (std::int32_t r = 1024; r < 1088; ++r)
        for (std::int32_t c = 1024; c < 1088; ++c)
            if (rng.chance(0.3))
                coo.add(r, c, rng.uniform(1.0, 2.0));
    // ~290 nnz at (1536,1536): < 768, >= 192 -> a 64 block.
    for (std::int32_t r = 1536; r < 1600; ++r)
        for (std::int32_t c = 1536; c < 1600; ++c)
            if (rng.chance(0.07))
                coo.add(r, c, rng.uniform(1.0, 2.0));
    const Csr m = Csr::fromCoo(coo);
    const BlockPlan plan = planBlocks(m);
    checkPlanIsAPartition(m, plan);
    EXPECT_GE(plan.stats.blocksPerSize[1], 1u); // 256
    EXPECT_GE(plan.stats.blocksPerSize[2], 1u); // 128
    EXPECT_GE(plan.stats.blocksPerSize[3], 1u); // 64
}

TEST(Blocking, ExponentOutliersAreEvicted)
{
    // Dense tile with a handful of 2^200-scaled entries: those must
    // go to the local processor, the rest must still be blocked.
    Rng rng(167);
    Coo coo;
    coo.rows = coo.cols = 64;
    int outliers = 0;
    for (std::int32_t r = 0; r < 64; ++r) {
        for (std::int32_t c = 0; c < 64; ++c) {
            double v = rng.uniform(1.0, 2.0);
            if (rng.chance(0.01)) {
                v *= 0x1.0p200;
                ++outliers;
            }
            coo.add(r, c, v);
        }
    }
    const Csr m = Csr::fromCoo(coo);
    BlockingConfig cfg;
    cfg.sizes = {64};
    const BlockPlan plan = planBlocks(m, cfg);
    checkPlanIsAPartition(m, plan);
    ASSERT_GT(outliers, 0);
    EXPECT_EQ(plan.stats.expRangeEvictions,
              static_cast<std::size_t>(outliers));
    EXPECT_EQ(plan.unblocked.nnz(),
              static_cast<std::size_t>(outliers));
    ASSERT_EQ(plan.blocks.size(), 1u);
    // The accepted block must actually be programmable.
    Cluster cluster{[] {
        ClusterConfig c;
        c.size = 64;
        return c;
    }()};
    EXPECT_NO_THROW(cluster.program(plan.blocks[0]));
}

TEST(Blocking, ExplicitZerosFitAnyWindow)
{
    Coo coo;
    coo.rows = coo.cols = 64;
    for (std::int32_t r = 0; r < 64; ++r)
        for (std::int32_t c = 0; c < 64; ++c)
            coo.add(r, c, (r + c) % 5 == 0 ? 0.0 : 1.0);
    const Csr m = Csr::fromCoo(coo);
    const BlockPlan plan = planBlocks(m);
    EXPECT_EQ(plan.stats.blockedNnz, m.nnz());
    EXPECT_EQ(plan.stats.expRangeEvictions, 0u);
}

TEST(Blocking, VisitBoundHolds)
{
    Rng rng(173);
    TiledParams p;
    p.rows = 2048;
    p.tile = 64;
    p.tileDensity = 0.5;
    p.scatterPerRow = 2.0;
    p.seed = 7;
    const Csr m = genTiled(p);
    const BlockPlan plan = planBlocks(m);
    EXPECT_LE(plan.stats.visitsPerNnz(), 4.0 + 1e-9);
    EXPECT_GE(plan.stats.visitsPerNnz(), 1.0);
    // Blockable structure: early acceptance keeps the average well
    // below the worst case (the paper reports ~1.8x).
    EXPECT_LT(plan.stats.visitsPerNnz(), 3.0);
}

TEST(Blocking, ThresholdControlsAcceptance)
{
    Rng rng(179);
    Coo coo;
    coo.rows = coo.cols = 64;
    for (std::int32_t r = 0; r < 64; ++r)
        for (std::int32_t c = 0; c < 64; ++c)
            if (rng.chance(0.05)) // ~205 nnz: 3.2 per row
                coo.add(r, c, 1.0);
    const Csr m = Csr::fromCoo(coo);
    BlockingConfig strict;
    strict.densityFactor = 4.0;
    EXPECT_EQ(planBlocks(m, strict).blocks.size(), 0u);
    BlockingConfig loose;
    loose.densityFactor = 1.0;
    EXPECT_EQ(planBlocks(m, loose).blocks.size(), 1u);
}

TEST(Blocking, EdgeBlocksAtMatrixBoundary)
{
    // Matrix not a multiple of the block size: the tail strip still
    // forms (logically square, partially filled) blocks.
    Coo coo;
    coo.rows = coo.cols = 96; // 64 + 32
    for (std::int32_t r = 64; r < 96; ++r)
        for (std::int32_t c = 64; c < 96; ++c)
            coo.add(r, c, 2.0);
    const Csr m = Csr::fromCoo(coo);
    BlockingConfig cfg;
    cfg.sizes = {64};
    const BlockPlan plan = planBlocks(m, cfg);
    checkPlanIsAPartition(m, plan);
    ASSERT_EQ(plan.blocks.size(), 1u);
    EXPECT_EQ(plan.blocks[0].rowOrigin, 64);
    EXPECT_EQ(plan.blocks[0].colOrigin, 64);
}

TEST(Blocking, RectangularMatrices)
{
    // Blocking operates on row strips x column blocks and must
    // handle non-square inputs (e.g. least-squares systems).
    Rng rng(191);
    Coo coo;
    coo.rows = 256;
    coo.cols = 512;
    for (std::int32_t r = 0; r < 64; ++r)
        for (std::int32_t c = 448; c < 512; ++c)
            if (rng.chance(0.6))
                coo.add(r, c, rng.uniform(1.0, 2.0));
    for (int k = 0; k < 200; ++k)
        coo.add(static_cast<std::int32_t>(rng.below(256)),
                static_cast<std::int32_t>(rng.below(512)), 1.0);
    const Csr m = Csr::fromCoo(coo);
    BlockingConfig cfg;
    cfg.sizes = {64};
    const BlockPlan plan = planBlocks(m, cfg);
    checkPlanIsAPartition(m, plan);
    ASSERT_GE(plan.blocks.size(), 1u);
    bool foundCorner = false;
    for (const auto &b : plan.blocks)
        foundCorner |= (b.rowOrigin == 0 && b.colOrigin == 448);
    EXPECT_TRUE(foundCorner);
}

TEST(Blocking, RejectsNonDecreasingSizes)
{
    const Csr m = Csr::identity(16);
    BlockingConfig cfg;
    cfg.sizes = {64, 64};
    EXPECT_THROW(planBlocks(m, cfg), FatalError);
}

TEST(Blocking, TiledGeneratorMatchesTargetEfficiency)
{
    // The tiled generator + preprocessor must land high blocking
    // efficiency for banded FEM-style matrices...
    TiledParams fem;
    fem.rows = 4096;
    fem.tile = 48;
    fem.diagTiles = 2;
    fem.tileDensity = 0.55;
    fem.scatterPerRow = 0.3;
    fem.seed = 11;
    const BlockPlan femPlan = planBlocks(genTiled(fem));
    EXPECT_GT(femPlan.stats.blockingEfficiency(), 0.7);

    // ...and near-zero for uniform scatter.
    TiledParams scatter;
    scatter.rows = 4096;
    scatter.tile = 48;
    scatter.diagTiles = 0;
    scatter.tileDensity = 0.0;
    scatter.scatterPerRow = 7.0;
    scatter.seed = 13;
    const BlockPlan scatterPlan = planBlocks(genTiled(scatter));
    EXPECT_LT(scatterPlan.stats.blockingEfficiency(), 0.1);
}

} // namespace
} // namespace msc
